(** S4 remote procedure calls (the paper's Table 1).

    Requests carry the caller's credential — the drive, not the host
    OS, decides what is allowed. Read-type operations take an optional
    [at] time for history-pool access. All modifications create new
    versions; nothing a client can send destroys data inside the
    detection window. The administrative commands ([Flush],
    [Flush_object], [Set_window], [Read_audit]) require the admin
    credential. *)

type credential = {
  user : int;
  client : int;  (** originating client machine *)
  admin : bool;  (** secure administrative access (e.g. via a physical
                     switch or well-protected key) *)
}

val user_cred : user:int -> client:int -> credential
val admin_cred : credential

type req =
  | Create of { acl : Acl.t }
  | Delete of { oid : int64 }
  | Read of { oid : int64; off : int; len : int; at : int64 option }
  | Write of { oid : int64; off : int; len : int; data : Bytes.t option }
  | Append of { oid : int64; len : int; data : Bytes.t option }
  | Truncate of { oid : int64; size : int }
  | Get_attr of { oid : int64; at : int64 option }
  | Set_attr of { oid : int64; attr : Bytes.t }
  | Get_acl_by_user of { oid : int64; acl_user : int; at : int64 option }
  | Get_acl_by_index of { oid : int64; index : int; at : int64 option }
  | Set_acl of { oid : int64; index : int; entry : Acl.entry }
  | P_create of { name : string; oid : int64 }
  | P_delete of { name : string }
  | P_list of { at : int64 option }
  | P_mount of { name : string; at : int64 option }
  | Sync
  | Flush of { until : int64 }
      (** admin: age out all versions older than [until] *)
  | Flush_object of { oid : int64; until : int64 }
  | Set_window of { window : int64 }
  | Read_audit of { since : int64; until : int64 }
  | Verify_log of { from : S4_integrity.Chain.head option }
      (** admin: re-walk the persisted audit hash chain, optionally
          resuming from a previously trusted head *)

type error =
  | Not_found
  | Permission_denied
  | Object_deleted
  | No_space
  | Bad_request of string
  | Io_error of string
      (** a permanent media fault the drive could not retry through *)

type resp =
  | R_unit
  | R_oid of int64
  | R_data of Bytes.t
  | R_size of int
  | R_attr of Bytes.t
  | R_acl of Acl.entry
  | R_names of string list
  | R_audit of Audit.record list
  | R_verify of S4_integrity.Chain.verify_result
  | R_error of error

val op_name : req -> string
(** Lower-case RPC name for audit records. *)

val op_info : req -> string
(** Compact argument rendering for audit records. *)

val is_mutation : req -> bool
(** Whether the request changes drive state (and thus must reach every
    replica of a mirrored pair, or be journalled for a lagging one).
    Shared by [Mirror] and the shard [Router]. *)

val is_admin_op : req -> bool

val req_wire_bytes : req -> int
(** Estimated on-the-wire request size (header + arguments + data). *)

val resp_wire_bytes : resp -> int
val pp_error : Format.formatter -> error -> unit
val pp_resp : Format.formatter -> resp -> unit

val err_tag : error -> string
(** Stable short tag for an error ([not_found], [denied], [deleted],
    [no_space], [bad_request], [io_error]). The single home for error
    naming: trace spans, the net server, the router and the translator
    all share it. *)

val error_to_string : error -> string
(** [pp_error] rendered to a string, for one-line diagnostics. *)
