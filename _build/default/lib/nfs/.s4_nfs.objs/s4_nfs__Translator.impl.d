lib/nfs/translator.ml: Array Bytes Hashtbl List Nfs_types S4 S4_seglog S4_store S4_util String
