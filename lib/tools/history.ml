module Rpc = S4.Rpc
module Store = S4_store.Obj_store
module Entry = S4_store.Entry
module N = S4_nfs.Nfs_types

type t = { target : Target.t; cred : Rpc.credential }

let of_target ?(cred = Rpc.admin_cred) target = { target; cred }
let create ?cred drive = of_target ?cred (Target.Drive drive)
let call t req = Target.handle t.target t.cred req

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let mount_at t ?at name =
  match call t (Rpc.P_mount { name; at }) with
  | Rpc.R_oid oid -> Ok oid
  | Rpc.R_error e -> err "pmount %s: %a" name Rpc.pp_error e
  | _ -> err "pmount %s: unexpected response" name

let stat t ?at fh =
  match call t (Rpc.Get_attr { oid = fh; at }) with
  | Rpc.R_attr b when Bytes.length b > 0 -> Ok (N.decode_attr b)
  | Rpc.R_attr _ -> err "object %Ld has no attributes" fh
  | Rpc.R_error e -> err "getattr %Ld: %a" fh Rpc.pp_error e
  | _ -> err "getattr %Ld: unexpected response" fh

let read_whole t ?at fh size =
  match call t (Rpc.Read { oid = fh; off = 0; len = size; at }) with
  | Rpc.R_data b -> Ok b
  | Rpc.R_error e -> err "read %Ld: %a" fh Rpc.pp_error e
  | _ -> err "read %Ld: unexpected response" fh

let ls t ?at fh =
  match stat t ?at fh with
  | Error _ as e -> e |> Result.map (fun _ -> [])
  | Ok attr ->
    if attr.N.ftype <> N.Fdir then err "%Ld is not a directory" fh
    else begin
      match read_whole t ?at fh attr.N.size with
      | Error _ as e -> e |> Result.map (fun _ -> [])
      | Ok data ->
        let entries = N.decode_dir data in
        let annotated =
          List.filter_map
            (fun (e : N.dirent) ->
              match stat t ?at e.N.fh with
              | Ok a -> Some (e, a)
              | Error _ -> None)
            entries
        in
        Ok annotated
    end

let split_path path = String.split_on_char '/' path |> List.filter (fun s -> s <> "")

let resolve t ?at path =
  match mount_at t ?at "root" with
  | Error _ as e -> e
  | Ok root ->
    let rec walk fh = function
      | [] -> Ok fh
      | name :: rest ->
        (match ls t ?at fh with
         | Error _ as e -> e |> Result.map (fun _ -> 0L)
         | Ok entries ->
           (match List.find_opt (fun ((e : N.dirent), _) -> e.N.name = name) entries with
            | Some ((e : N.dirent), _) -> walk e.N.fh rest
            | None -> err "%s: no such entry%s" name
                        (match at with Some _ -> " at that time" | None -> "")))
    in
    walk root (split_path path)

let cat t ?at fh =
  match stat t ?at fh with
  | Error e -> Error e
  | Ok attr -> read_whole t ?at fh attr.N.size

let cat_path t ?at path =
  match resolve t ?at path with
  | Error e -> Error e
  | Ok fh -> cat t ?at fh

let versions_of t fh = Store.versions (Target.store_of t.target fh) fh

let version_times t fh =
  versions_of t fh
  |> List.map (fun (e : Entry.t) -> e.Entry.time)
  |> List.sort_uniq (fun a b -> compare b a)
