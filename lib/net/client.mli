(** Resilient networked client presenting the [Drive.handle] surface.

    One logical connection to an S4 server over any {!Transport.t}.
    Connects lazily, handshakes ({!Wire.Hello} → {!Wire.Hello_ack}),
    and reconnects transparently after a drop. Requests that time out
    or lose their connection are retried — with exponential backoff
    and deterministic jitter — only when idempotent (not
    [Rpc.is_mutation]); mutations surface [Io_error] immediately
    rather than risk double execution. Retries and reconnects are
    counted under [net/retry] and [net/reconnect]. *)

type config = {
  req_timeout_s : float;  (** per-request receive timeout *)
  max_retries : int;  (** for idempotent requests *)
  backoff_ms : float;  (** base backoff, doubled per retry *)
  jitter : float;  (** multiplicative jitter fraction, e.g. 0.25 *)
  seed : int;  (** jitter rng seed (deterministic) *)
  claim_client : int;  (** client id claimed in the handshake *)
  advertise_version : int;
      (** protocol version offered in [Hello] (default
          {!Wire.version}); set 1 to force the pipelining fallback *)
  max_batch : int;  (** largest [Batch] frame sent; bigger submissions are sliced *)
  cache_budget : int;
      (** lease-cache LRU budget in bytes; 0 (the default) disables
          the client cache. Only effective on a v3 session: an older
          server grants no leases, leaving the cache permanently
          empty. *)
  cache_journal : bool;
      (** record the cache's grant/hit/invalidate journal so
          {!Cache.check} can prove no stale reply was ever served *)
}

val default_config : config

type t

val connect : ?config:config -> Transport.t -> t
(** Lazy: no io happens until the first request. *)

val handle : t -> S4.Rpc.credential -> ?sync:bool -> S4.Rpc.req -> S4.Rpc.resp
(** Same shape as [Drive.handle]. Never raises: permanent transport
    failure becomes [R_error (Io_error _)]. With a cache configured, a
    read covered by an unexpired lease is answered locally without
    touching the wire; a mutation drops the cached entries it could
    supersede before its response is returned. *)

val pipeline :
  t -> S4.Rpc.credential -> ?sync:bool -> S4.Rpc.req list -> S4.Rpc.resp list
(** Send the whole batch before reading any response (request-id
    multiplexing); responses come back in request order. No retries —
    a drop mid-batch yields [Io_error] for the unanswered tail. *)

val submit :
  t -> S4.Rpc.credential -> ?sync:bool -> S4.Rpc.req array -> S4.Rpc.resp array
(** Vectored submission with group commit. On a v2 session the batch
    crosses the wire as ONE [Batch] frame and the server pays a single
    durability barrier after the last request; on a session negotiated
    down to v1 it falls back to pipelined [Request] frames with [sync]
    riding on the last one. Submissions larger than the batch limit
    (the server's [Stat_ack] advertisement once known, else
    [config.max_batch]) are sliced, the barrier still only on the
    final slice. Retried (bounded backoff) only when the whole
    submission is idempotent; a failure mid-way yields [Io_error] for
    the unexecuted tail. Never raises. *)

val backend : clock:S4_util.Simclock.t -> keep_data:bool -> t -> S4.Backend.t
(** This connection as the uniform {!S4.Backend.t} surface. [clock]
    and [keep_data] describe the server-side stack (the wire carries
    no clock). [Backend.close] sends [Goodbye]. *)

val capacity : t -> int * int
(** (total_bytes, free_bytes) via [Stat]; (0, 0) if unreachable. Also
    learns the server's batch limit on a v2 session. *)

val version : t -> int
(** Protocol version negotiated at the last handshake. *)

val server_batch_limit : t -> int
(** Max batch the server advertised in [Stat_ack]; 0 until a [Stat]
    has been answered on a v2 session. *)

val identity : t -> int
(** Connection identity the server assigned (from {!Wire.Hello_ack});
    0 before the first successful handshake. *)

val server_now : t -> int64
(** Freshest server simulated-clock value observed on any reply frame
    (v3 piggybacks it on every response). *)

val cache : t -> Cache.t option
(** The lease cache, when [config.cache_budget > 0] — for hit/miss
    stats and the {!Cache.check} safety rule. *)

val retries : t -> int
val reconnects : t -> int

val close : t -> unit
(** Best-effort [Goodbye], then drop the connection. The client may be
    used again afterwards (it will reconnect). *)
