(** Factory for the four experimental systems of the paper's
    evaluation (Section 5.1.1):

    + {b S4-remote} (Fig. 1a): S4 drive as a network-attached object
      store; the translator runs client-side and S4 RPCs cross the
      network.
    + {b S4-NFS} (Fig. 1b): translator combined with the drive into an
      S4-enhanced NFS server; NFS crosses the network.
    + {b BSD-FFS}: FreeBSD-style FFS NFS server (synchronous metadata).
    + {b Linux-ext2}: ext2 with the sync-mount metadata-coalescing
      flaw.

    All four run over identical simulated disks and networks, and are
    driven through the common {!S4_nfs.Server.t} interface.

    Every constructor takes one {!Config.t} record (default:
    {!Config.default}) instead of the old per-constructor optional
    arguments; build variations with record update syntax:
    [{ Config.default with disk_mb = Some 64; mirrored = true }]. *)

type t = {
  name : string;
  server : S4_nfs.Server.t;
  clock : S4_util.Simclock.t;
  disk : S4_disk.Sim_disk.t;
  drive : S4.Drive.t option;  (** the S4 systems expose their drive *)
  translator : S4_nfs.Translator.t option;
  router : S4_shard.Router.t option;  (** the sharded array exposes its router *)
}

(** One configuration record for every system constructor. Fields a
    given system does not use are ignored (e.g. [mirrored] outside
    {!s4_array}, [server_config] outside the wire-protocol systems). *)
module Config : sig
  type sys = t

  type t = {
    disk_mb : int option;
        (** member-disk capacity in MiB; [None] = the paper's 9 GB
            Cheetah *)
    drive_config : S4.Drive.config;  (** default {!benchmark_drive_config} *)
    mirrored : bool;  (** each array shard is a two-drive mirror *)
    balanced : bool;  (** mirrored reads served from either replica *)
    read_overlap : bool;
        (** charge batch read runs as concurrent cross-shard work *)
    domains : int;
        (** array worker-domain knob ([Router.set_domains]); 1 =
            serial *)
    server_config : S4_net.Server.config option;  (** leases / QoS *)
    client_config : S4_net.Client.config option;  (** client cache *)
  }

  val default : t
  (** 9 GB disks, {!benchmark_drive_config}, single drives, serial
      charging, [domains] from the [S4_DOMAINS] environment variable
      (1 when unset or unparsable). *)

  val serial : t
  (** {!default} with [domains = 1] regardless of [S4_DOMAINS] — for
      tests that assert the serial bit-identity contract. *)

  val content : t
  (** {!default} with {!content_drive_config} (object contents
      retained), for correctness-checking workloads. *)

  val domains_from_env : unit -> int
  (** The [S4_DOMAINS] knob as {!default} reads it. *)
end

val s4_remote : ?config:Config.t -> unit -> t

val s4_nfs_server : ?config:Config.t -> unit -> t

val s4_array : ?config:Config.t -> shards:int -> unit -> t
(** A sharded scale-out array: [shards] drives (each [disk_mb] big)
    behind an {!S4_shard.Router}, mounted through the translator's
    [Backend] transport so it is driven exactly like the
    single-drive systems. All member disks share one clock and run in
    phantom mode (parallel-device accounting). [config.mirrored] makes
    every shard a two-drive {!S4_multi.Mirror}; [config.balanced]
    additionally serves mirrored reads from either replica;
    [config.read_overlap] charges batch read runs as concurrent
    cross-shard work; [config.domains] > 1 executes disjoint shard
    sub-batches on per-shard OCaml domains
    ([Router.set_domains]). *)

val s4_direct : ?config:Config.t -> unit -> t
(** Translator linked directly to the drive (in-process [Local]
    transport, no modeled network): the reference point for the
    networked-equivalence tests and the net bench. *)

val s4_loopback : ?config:Config.t -> unit -> t
(** Like {!s4_direct} but every S4 RPC is encoded through the
    {!S4_net.Wire} codec and executed by a {!S4_net.Server.Session}
    over the deterministic in-memory loopback transport. Adds no
    simulated time, so it must produce a bit-identical disk image.
    [config.server_config] turns on leases/QoS; [config.client_config]
    sizes the lease-backed client cache. *)

val s4_tcp : ?config:Config.t -> unit -> t * (unit -> unit)
(** Like {!s4_loopback} but over a real TCP socket to an in-process
    {!S4_net.Server.serve_tcp} daemon on 127.0.0.1. Returns the system
    and a [stop] thunk that closes the client and shuts the daemon
    down (call it; threads otherwise linger). *)

val bsd_ffs : ?config:Config.t -> unit -> t
val linux_ext2 : ?config:Config.t -> unit -> t

val all_four : ?config:Config.t -> unit -> t list
(** Fresh instances of all four systems sharing one config. *)

val content_drive_config : S4.Drive.config
(** Like {!benchmark_drive_config} but retaining data contents, for
    correctness-checking workloads. *)

val benchmark_drive_config : S4.Drive.config
(** Drive configuration for timing experiments: contents not retained
    ([keep_data:false]), paper cache sizes, throttle off. *)

(** The pre-{!Config} constructor signatures, kept for exactly one
    release as thin wrappers. New code builds a {!Config.t}. *)
module Legacy : sig
  val s4_remote : ?disk_mb:int -> ?drive_config:S4.Drive.config -> unit -> t
  val s4_nfs_server : ?disk_mb:int -> ?drive_config:S4.Drive.config -> unit -> t

  val s4_array :
    ?disk_mb:int ->
    ?drive_config:S4.Drive.config ->
    ?mirrored:bool ->
    ?balanced:bool ->
    ?read_overlap:bool ->
    shards:int ->
    unit ->
    t

  val s4_direct : ?disk_mb:int -> ?drive_config:S4.Drive.config -> unit -> t

  val s4_loopback :
    ?disk_mb:int ->
    ?drive_config:S4.Drive.config ->
    ?server_config:S4_net.Server.config ->
    ?client_config:S4_net.Client.config ->
    unit ->
    t

  val s4_tcp : ?disk_mb:int -> ?drive_config:S4.Drive.config -> unit -> t * (unit -> unit)
  val bsd_ffs : ?disk_mb:int -> unit -> t
  val linux_ext2 : ?disk_mb:int -> unit -> t
  val all_four : ?disk_mb:int -> ?drive_config:S4.Drive.config -> unit -> t list
end
[@@ocaml.deprecated "build a Systems.Config.t and call the primary constructors"]

val elapsed_seconds : t -> (unit -> 'a) -> float * 'a
(** Run a thunk and report the simulated seconds it consumed. *)

val drop_all_caches : t -> unit
(** Cold caches: translator/client caches and, for S4 systems, the
    drive's block and object caches. *)

val run_cleaner : t -> unit
(** No-op for non-S4 systems. *)

val ensure_space : t -> min_free_segments:int -> unit
(** Run the drive cleaner repeatedly while log free space is below the
    threshold and progress is being made (models the cleaner waking
    under space pressure). No-op for non-S4 systems. *)
