lib/analysis/capacity.mli: Format S4_workload
