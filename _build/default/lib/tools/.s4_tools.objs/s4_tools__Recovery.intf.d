lib/tools/recovery.mli: Format Nfs_fh S4
