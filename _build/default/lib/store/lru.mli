(** Generic LRU cache with a cost budget.

    Entries carry an integer cost (bytes, typically); inserting past
    the budget evicts least-recently-used entries, invoking the
    eviction callback (used by the object cache to checkpoint dirty
    metadata before it leaves memory). *)

type ('k, 'v) t

val create : ?on_evict:('k -> 'v -> unit) -> budget:int -> unit -> ('k, 'v) t
val budget : ('k, 'v) t -> int
val cost : ('k, 'v) t -> int
(** Sum of costs of resident entries. *)

val length : ('k, 'v) t -> int
val mem : ('k, 'v) t -> 'k -> bool
val find : ('k, 'v) t -> 'k -> 'v option
(** Touches the entry (moves it to most-recent). *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** No touch. *)

val insert : ('k, 'v) t -> 'k -> 'v -> cost:int -> unit
(** Adds or replaces; evicts LRU entries until within budget. An entry
    larger than the whole budget is still admitted alone. *)

val remove : ('k, 'v) t -> 'k -> unit
(** Removes without invoking the eviction callback. *)

val clear : ('k, 'v) t -> unit
(** Drops everything without invoking the eviction callback. *)

val flush : ('k, 'v) t -> unit
(** Invokes the eviction callback on everything, then drops it. *)

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
(** [find] result counters. *)

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
