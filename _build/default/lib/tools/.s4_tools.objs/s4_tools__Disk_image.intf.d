lib/tools/disk_image.mli: S4_disk S4_util
