(** Cross-shard integrity catalog: the meta shard's replicated copy of
    every member drive's sealed chain head, refreshed at each
    array-wide barrier. Entries are a floor — the member's chain must
    contain the catalog head as an ancestor. *)

type entry = { shard : int; replica : int; head : Chain.head }

val encode : entry list -> Bytes.t
val decode : Bytes.t -> entry list option
val find : entry list -> shard:int -> replica:int -> Chain.head option
val set : entry list -> shard:int -> replica:int -> Chain.head -> entry list

type status =
  | Consistent
  | Stale_catalog
  | Rolled_back
  | Forked

val check : catalog:Chain.head -> member:Chain.head -> status
