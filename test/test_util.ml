(* Unit and property tests for the s4_util foundation library. *)

module Crc32 = S4_util.Crc32
module Rng = S4_util.Rng
module Bcodec = S4_util.Bcodec
module Simclock = S4_util.Simclock
module Units = S4_util.Units
module Histogram = S4_util.Histogram

let check = Alcotest.check
let qtest = Qseed.qtest

(* --- CRC32 --------------------------------------------------------- *)

let test_crc_known_vectors () =
  (* Standard test vector: CRC-32("123456789") = 0xCBF43926. *)
  check Alcotest.int32 "123456789" 0xCBF43926l (Crc32.string "123456789");
  check Alcotest.int32 "empty" 0l (Crc32.string "");
  check Alcotest.int32 "a" 0xE8B7BE43l (Crc32.string "a")

let test_crc_incremental () =
  let whole = Crc32.string "hello world" in
  let b = Bytes.of_string "hello world" in
  let acc = Crc32.update Crc32.init b ~pos:0 ~len:5 in
  let acc = Crc32.update acc b ~pos:5 ~len:6 in
  check Alcotest.int32 "incremental = one-shot" whole (Crc32.finish acc)

let test_crc_sub () =
  let b = Bytes.of_string "xxhelloxx" in
  check Alcotest.int32 "sub range" (Crc32.string "hello") (Crc32.sub b ~pos:2 ~len:5)

let test_crc_bad_range () =
  Alcotest.check_raises "out of range" (Invalid_argument "Crc32.update") (fun () ->
      ignore (Crc32.update Crc32.init (Bytes.create 4) ~pos:2 ~len:4))

let prop_crc_detects_single_bit_flip =
  QCheck.Test.make ~name:"crc32 detects any single-bit flip" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 64)) (pair small_nat small_nat))
    (fun (s, (i, bit)) ->
      QCheck.assume (String.length s > 0);
      let i = i mod String.length s and bit = bit mod 8 in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      Crc32.bytes b <> Crc32.string s)

(* --- RNG ----------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 4)

let test_rng_copy_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.copy a in
  check Alcotest.int64 "copies agree" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check Alcotest.bool "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let r = Rng.create ~seed:4 in
  let seen_min = ref false and seen_max = ref false in
  for _ = 1 to 2000 do
    let v = Rng.int_in r ~min:5 ~max:9 in
    check Alcotest.bool "in range" true (v >= 5 && v <= 9);
    if v = 5 then seen_min := true;
    if v = 9 then seen_max := true
  done;
  check Alcotest.bool "covers endpoints" true (!seen_min && !seen_max)

let test_rng_float_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    check Alcotest.bool "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:6 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "mean close to 3" true (abs_float (mean -. 3.0) < 0.2)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:8 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "still a permutation" (Array.init 50 Fun.id) sorted

let test_rng_zipf_skew () =
  let r = Rng.create ~seed:9 in
  let counts = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let v = Rng.zipf r ~n:100 ~theta:0.8 in
    counts.(v) <- counts.(v) + 1
  done;
  check Alcotest.bool "rank 0 beats rank 50" true (counts.(0) > counts.(50))

let test_rng_invalid_args () =
  let r = Rng.create ~seed:1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int") (fun () -> ignore (Rng.int r 0));
  Alcotest.check_raises "bad range" (Invalid_argument "Rng.int_in") (fun () ->
      ignore (Rng.int_in r ~min:3 ~max:2))

(* --- Bcodec -------------------------------------------------------- *)

let test_bcodec_scalars () =
  let w = Bcodec.writer () in
  Bcodec.w_u8 w 0xAB;
  Bcodec.w_u16 w 0xBEEF;
  Bcodec.w_u32 w 0xDEADBEEF;
  Bcodec.w_i64 w (-1L);
  let r = Bcodec.reader (Bcodec.contents w) in
  check Alcotest.int "u8" 0xAB (Bcodec.r_u8 r);
  check Alcotest.int "u16" 0xBEEF (Bcodec.r_u16 r);
  check Alcotest.int "u32" 0xDEADBEEF (Bcodec.r_u32 r);
  check Alcotest.int64 "i64" (-1L) (Bcodec.r_i64 r);
  check Alcotest.int "consumed" 0 (Bcodec.remaining r)

let test_bcodec_varint_edge () =
  List.iter
    (fun v ->
      let w = Bcodec.writer () in
      Bcodec.w_int w v;
      let r = Bcodec.reader (Bcodec.contents w) in
      check Alcotest.int (Printf.sprintf "varint %d" v) v (Bcodec.r_int r))
    [ 0; 1; 127; 128; 255; 16_383; 16_384; 1 lsl 30; (1 lsl 62) - 1 ]

let test_bcodec_truncation () =
  let w = Bcodec.writer () in
  Bcodec.w_u32 w 42;
  let short = Bytes.sub (Bcodec.contents w) 0 2 in
  let r = Bcodec.reader short in
  check Alcotest.bool "raises Decode_error" true
    (try
       ignore (Bcodec.r_u32 r);
       false
     with Bcodec.Decode_error _ -> true)

let test_bcodec_negative_varint_rejected () =
  let w = Bcodec.writer () in
  Alcotest.check_raises "negative" (Invalid_argument "Bcodec.w_int: negative") (fun () ->
      Bcodec.w_int w (-1))

(* A random program of scalar writes must read back verbatim and
   consume the buffer exactly. *)
let prop_bcodec_program_roundtrip =
  let gen_op =
    QCheck.Gen.(
      oneof
        [
          map (fun n -> `U8 n) (int_bound 0xFF);
          map (fun n -> `U16 n) (int_bound 0xFFFF);
          map (fun n -> `U32 n) (int_bound 0xFFFFFFFF);
          map (fun n -> `I64 (Int64.of_int n)) int;
          oneofl [ `I64 Int64.min_int; `I64 Int64.max_int; `I64 0L; `I64 (-1L) ];
          map (fun n -> `Int (n land max_int)) int;
          map (fun s -> `Str s) (string_size (int_bound 64));
        ])
  in
  let arb =
    QCheck.make
      ~print:(fun ops -> Printf.sprintf "<%d scalar ops>" (List.length ops))
      QCheck.Gen.(list_size (int_bound 50) gen_op)
  in
  QCheck.Test.make ~name:"bcodec random scalar program roundtrip" ~count:300 arb (fun ops ->
      let w = Bcodec.writer () in
      List.iter
        (function
          | `U8 n -> Bcodec.w_u8 w n
          | `U16 n -> Bcodec.w_u16 w n
          | `U32 n -> Bcodec.w_u32 w n
          | `I64 n -> Bcodec.w_i64 w n
          | `Int n -> Bcodec.w_int w n
          | `Str s -> Bcodec.w_string w s)
        ops;
      let r = Bcodec.reader (Bcodec.contents w) in
      let ok =
        List.for_all
          (function
            | `U8 n -> Bcodec.r_u8 r = n
            | `U16 n -> Bcodec.r_u16 r = n
            | `U32 n -> Bcodec.r_u32 r = n
            | `I64 n -> Bcodec.r_i64 r = n
            | `Int n -> Bcodec.r_int r = n
            | `Str s -> Bcodec.r_string r = s)
          ops
      in
      ok && Bcodec.remaining r = 0)

let prop_bcodec_roundtrip =
  QCheck.Test.make ~name:"bcodec bytes/string/varint roundtrip" ~count:200
    QCheck.(triple (string_of_size Gen.(0 -- 200)) small_nat (list small_nat))
    (fun (s, n, ints) ->
      let w = Bcodec.writer () in
      Bcodec.w_string w s;
      Bcodec.w_int w n;
      List.iter (Bcodec.w_int w) ints;
      Bcodec.w_bytes w (Bytes.of_string s);
      let r = Bcodec.reader (Bcodec.contents w) in
      let s' = Bcodec.r_string r in
      let n' = Bcodec.r_int r in
      let ints' = List.map (fun _ -> Bcodec.r_int r) ints in
      let b' = Bcodec.r_bytes r in
      s' = s && n' = n && ints' = ints && Bytes.to_string b' = s)

(* --- Simclock ------------------------------------------------------ *)

let test_clock_advance () =
  let c = Simclock.create () in
  check Alcotest.int64 "starts at 0" 0L (Simclock.now c);
  Simclock.advance c 1500L;
  Simclock.advance_s c 0.5;
  check Alcotest.int64 "1500ns + 0.5s" 500_001_500L (Simclock.now c)

let test_clock_no_backward () =
  let c = Simclock.create () in
  Simclock.advance c 100L;
  Alcotest.check_raises "backward set" (Invalid_argument "Simclock.set: backward") (fun () ->
      Simclock.set c 50L);
  Alcotest.check_raises "negative advance"
    (Invalid_argument "Simclock.advance: negative") (fun () -> Simclock.advance c (-1L))

let test_clock_conversions () =
  check Alcotest.int64 "1ms" 1_000_000L (Simclock.of_ms 1.0);
  check Alcotest.int64 "2us" 2_000L (Simclock.of_us 2.0);
  check (Alcotest.float 1e-9) "roundtrip" 1.5 (Simclock.to_seconds (Simclock.of_seconds 1.5))

(* --- Units --------------------------------------------------------- *)

let test_units_pp () =
  check Alcotest.string "bytes" "512 B" (Format.asprintf "%a" Units.pp_bytes 512);
  check Alcotest.string "kib" "4.0 KiB" (Format.asprintf "%a" Units.pp_bytes 4096);
  check Alcotest.string "gib" "2.00 GiB" (Format.asprintf "%a" Units.pp_bytes (2 * Units.gib))

let test_units_stats () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Units.mean [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "stddev" 1.0 (Units.stddev [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "percent" 25.0 (Units.percent 1.0 4.0);
  check (Alcotest.float 1e-9) "percent of zero" 0.0 (Units.percent 1.0 0.0)

(* --- Histogram ----------------------------------------------------- *)

let test_histogram_basic () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1.0; 2.0; 4.0; 8.0 ];
  check Alcotest.int "count" 4 (Histogram.count h);
  check (Alcotest.float 1e-9) "total" 15.0 (Histogram.total h);
  check (Alcotest.float 1e-9) "mean" 3.75 (Histogram.mean h);
  check (Alcotest.float 1e-9) "max" 8.0 (Histogram.max_value h);
  check (Alcotest.float 1e-9) "min" 1.0 (Histogram.min_value h)

let test_histogram_percentile_monotone () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i)
  done;
  let p50 = Histogram.percentile h 50.0 and p99 = Histogram.percentile h 99.0 in
  check Alcotest.bool "p50 <= p99" true (p50 <= p99);
  check Alcotest.bool "p99 within 2x of true value" true (p99 >= 990.0 /. 2.0 && p99 <= 990.0 *. 2.0)

let test_histogram_empty () =
  let h = Histogram.create () in
  check (Alcotest.float 1e-9) "empty percentile" 0.0 (Histogram.percentile h 99.0);
  check (Alcotest.float 1e-9) "empty mean" 0.0 (Histogram.mean h)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 1.0;
  Histogram.add b 5.0;
  let m = Histogram.merge a b in
  check Alcotest.int "merged count" 2 (Histogram.count m);
  check (Alcotest.float 1e-9) "merged total" 6.0 (Histogram.total m)

(* --- LRU (lives in s4_store but is generic) ------------------------ *)

module Lru = S4_store.Lru

let test_lru_basic () =
  let c = Lru.create ~budget:3 () in
  Lru.insert c "a" 1 ~cost:1;
  Lru.insert c "b" 2 ~cost:1;
  Lru.insert c "c" 3 ~cost:1;
  check (Alcotest.option Alcotest.int) "find a" (Some 1) (Lru.find c "a");
  Lru.insert c "d" 4 ~cost:1;
  (* "b" was least recently used ("a" was touched by find). *)
  check (Alcotest.option Alcotest.int) "b evicted" None (Lru.peek c "b");
  check (Alcotest.option Alcotest.int) "a kept" (Some 1) (Lru.peek c "a")

let test_lru_eviction_callback () =
  let evicted = ref [] in
  let c = Lru.create ~on_evict:(fun k v -> evicted := (k, v) :: !evicted) ~budget:2 () in
  Lru.insert c 1 "one" ~cost:1;
  Lru.insert c 2 "two" ~cost:1;
  Lru.insert c 3 "three" ~cost:1;
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string)) "evicted 1" [ (1, "one") ] !evicted

let test_lru_cost_accounting () =
  let c = Lru.create ~budget:10 () in
  Lru.insert c "x" 0 ~cost:4;
  Lru.insert c "y" 0 ~cost:4;
  check Alcotest.int "cost" 8 (Lru.cost c);
  Lru.insert c "x" 0 ~cost:6;
  (* replacing x with cost 6: total 10, fits *)
  check Alcotest.int "replaced cost" 10 (Lru.cost c);
  Lru.insert c "z" 0 ~cost:5;
  check Alcotest.bool "evicted to fit" true (Lru.cost c <= 10)

let test_lru_oversized_entry_tolerated () =
  let c = Lru.create ~budget:4 () in
  Lru.insert c "big" 0 ~cost:100;
  check Alcotest.int "still resident" 1 (Lru.length c);
  Lru.insert c "small" 0 ~cost:1;
  check Alcotest.bool "big evicted for small" true (Lru.peek c "big" = None)

let test_lru_remove_and_clear () =
  let evictions = ref 0 in
  let c = Lru.create ~on_evict:(fun _ _ -> incr evictions) ~budget:10 () in
  Lru.insert c 1 () ~cost:1;
  Lru.insert c 2 () ~cost:1;
  Lru.remove c 1;
  check Alcotest.int "remove silent" 0 !evictions;
  Lru.flush c;
  check Alcotest.int "flush evicts" 1 !evictions;
  check Alcotest.int "empty" 0 (Lru.length c)

let test_lru_hits_misses () =
  let c = Lru.create ~budget:10 () in
  Lru.insert c 1 () ~cost:1;
  ignore (Lru.find c 1);
  ignore (Lru.find c 2);
  check Alcotest.int "hits" 1 (Lru.hits c);
  check Alcotest.int "misses" 1 (Lru.misses c)

let prop_lru_never_exceeds_budget_with_unit_costs =
  QCheck.Test.make ~name:"lru respects budget" ~count:100
    QCheck.(list (pair small_nat bool))
    (fun ops ->
      let c = Lru.create ~budget:8 () in
      List.iter
        (fun (k, ins) -> if ins then Lru.insert c k () ~cost:1 else ignore (Lru.find c k))
        ops;
      Lru.cost c <= 8)

(* Model-based check: the cache must behave exactly like a naive
   MRU-first assoc list with the same eviction rule (evict the tail
   while over budget, but never down to zero entries). Recency order
   is observed through the eviction callback sequence. *)
let prop_lru_matches_model =
  let budget = 6 in
  let arb =
    QCheck.(
      list
        (triple (int_bound 3) (* 0=insert 1=find 2=peek 3=remove *)
           (int_bound 7) (* key *)
           (int_bound 4) (* cost, inserts only *)))
  in
  QCheck.Test.make ~name:"lru matches assoc-list model" ~count:300 arb (fun ops ->
      let evicted = ref [] in
      let c = Lru.create ~on_evict:(fun k v -> evicted := (k, v) :: !evicted) ~budget () in
      let model = ref [] in
      (* MRU-first: (key, (value, cost)) *)
      let m_evicted = ref [] in
      let m_hits = ref 0 and m_misses = ref 0 in
      let m_cost () = List.fold_left (fun a (_, (_, c)) -> a + c) 0 !model in
      let m_evict () =
        while m_cost () > budget && List.length !model > 1 do
          let rec split = function
            | [ last ] -> ([], last)
            | x :: rest ->
              let pre, l = split rest in
              (x :: pre, l)
            | [] -> assert false
          in
          let pre, (k, (v, _)) = split !model in
          model := pre;
          m_evicted := (k, v) :: !m_evicted
        done
      in
      let ok = ref true in
      let vcounter = ref 0 in
      List.iter
        (fun (op, k, cost) ->
          match op with
          | 0 ->
            incr vcounter;
            let v = !vcounter in
            Lru.insert c k v ~cost;
            model := (k, (v, cost)) :: List.remove_assoc k !model;
            m_evict ()
          | 1 -> (
            let r = Lru.find c k in
            match List.assoc_opt k !model with
            | Some (v, cost) ->
              incr m_hits;
              model := (k, (v, cost)) :: List.remove_assoc k !model;
              if r <> Some v then ok := false
            | None ->
              incr m_misses;
              if r <> None then ok := false)
          | 2 -> if Lru.peek c k <> Option.map fst (List.assoc_opt k !model) then ok := false
          | _ ->
            Lru.remove c k;
            model := List.remove_assoc k !model)
        ops;
      !ok
      && Lru.cost c = m_cost ()
      && Lru.length c = List.length !model
      && Lru.hits c = !m_hits
      && Lru.misses c = !m_misses
      && !evicted = !m_evicted
      && List.for_all (fun (k, (v, _)) -> Lru.peek c k = Some v) !model)

let () =
  Alcotest.run "s4_util"
    [
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc_known_vectors;
          Alcotest.test_case "incremental" `Quick test_crc_incremental;
          Alcotest.test_case "sub range" `Quick test_crc_sub;
          Alcotest.test_case "bad range" `Quick test_crc_bad_range;
          qtest prop_crc_detects_single_bit_flip;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in inclusive" `Quick test_rng_int_in;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
          Alcotest.test_case "invalid args" `Quick test_rng_invalid_args;
        ] );
      ( "bcodec",
        [
          Alcotest.test_case "scalars" `Quick test_bcodec_scalars;
          Alcotest.test_case "varint edges" `Quick test_bcodec_varint_edge;
          Alcotest.test_case "truncation" `Quick test_bcodec_truncation;
          Alcotest.test_case "negative varint" `Quick test_bcodec_negative_varint_rejected;
          qtest prop_bcodec_roundtrip;
          qtest prop_bcodec_program_roundtrip;
        ] );
      ( "simclock",
        [
          Alcotest.test_case "advance" `Quick test_clock_advance;
          Alcotest.test_case "no backward" `Quick test_clock_no_backward;
          Alcotest.test_case "conversions" `Quick test_clock_conversions;
        ] );
      ( "units",
        [
          Alcotest.test_case "pp" `Quick test_units_pp;
          Alcotest.test_case "stats" `Quick test_units_stats;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basic" `Quick test_histogram_basic;
          Alcotest.test_case "percentile monotone" `Quick test_histogram_percentile_monotone;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basic" `Quick test_lru_basic;
          Alcotest.test_case "eviction callback" `Quick test_lru_eviction_callback;
          Alcotest.test_case "cost accounting" `Quick test_lru_cost_accounting;
          Alcotest.test_case "oversized entry" `Quick test_lru_oversized_entry_tolerated;
          Alcotest.test_case "remove and clear" `Quick test_lru_remove_and_clear;
          Alcotest.test_case "hits and misses" `Quick test_lru_hits_misses;
          qtest prop_lru_never_exceeds_budget_with_unit_costs;
          qtest prop_lru_matches_model;
        ] );
    ]
