(** Mirrored self-securing drives (the paper's Section 6 multi-device
    coordination).

    Two S4 drives process the same mutation stream, so both hold the
    full current state {e and} the full history pool — recovery
    operations coordinate old versions simply because both devices have
    them. Because drive-assigned ObjectIDs are a deterministic function
    of the mutation history, identical streams yield identical ids and
    either replica can serve any request, including time-based reads.

    When a replica fails, the mirror keeps running on the survivor and
    journals the missed mutations; {!resync} replays them when the
    replica returns. Divergence (e.g. after injected faults) is
    detectable with {!divergence}.

    The secondary's disk runs in phantom mode: mirrored writes proceed
    in parallel on real hardware, so only the primary's service time
    advances the simulated clock. *)

type t

type replica = Primary | Secondary

type read_policy =
  | Primary_only  (** reads always hit the primary (legacy behaviour) *)
  | Balanced
      (** reads alternate across live replicas — safe because versions
          are immutable once written — except that a read routes to the
          authoritative replica whenever the missed-op journal holds a
          mutation that could change what it observes: a journalled op
          on the same oid, a journalled namespace op for [P_list]/
          [P_mount], or any journalled [Sync]/[Flush]/[Set_window].
          The rule survives faults: a read failing over from a faulted
          replica re-checks it against the survivor, and reads whose
          only live replica lags answer with an error rather than
          stale data.

          Audit-trail reads are served by the authoritative replica,
          but since each replica audits only the reads it itself
          served, a [Read_audit] answer merges the peer's read-class
          records into the authoritative log — the forensic trail is
          complete even though reads were split. [Verify_log] stays
          strictly per-replica: each replica's hash chain covers its
          own log, so verifying the pair means verifying each
          replica's drive directly. *)

val create : S4.Drive.t -> S4.Drive.t -> t
(** Both drives must be freshly formatted with identical
    configurations (identical mutation history so far). Read policy
    starts as [Primary_only]. *)

val set_read_policy : t -> read_policy -> unit
val read_policy : t -> read_policy

val read_counts : t -> int * int
(** Reads served by (primary, secondary) since creation — how balanced
    the balancing actually is. *)

val handle : t -> S4.Rpc.credential -> ?sync:bool -> S4.Rpc.req -> S4.Rpc.resp
(** Mutations are applied to every live replica (responses must agree
    — a mismatch is reported as a [Bad_request] error and the
    secondary is dropped as failed); reads are served per the
    {!read_policy} (default: the first live replica). *)

val submit :
  t -> S4.Rpc.credential -> ?sync:bool -> S4.Rpc.req array -> S4.Rpc.resp array
(** Batched {!handle}: requests run in order (unsynced), then one
    {!barrier} makes the whole batch durable when [sync]. If the
    barrier fails on every live replica, successful responses are
    rewritten to the barrier's error. *)

val barrier : t -> S4.Rpc.error option
(** Durability barrier on every live replica. A replica whose barrier
    fails is failed over (like an [Io_error] response); the result is
    [None] as long as one replica persisted the batch. *)

val set_failed : t -> replica -> bool -> unit
(** Fault injection / repair. While a replica is failed its missed
    mutations are journalled for {!resync}. *)

val is_failed : t -> replica -> bool

val lagging : t -> replica option
(** The replica the journalled mutations are destined for ([None] when
    the replicas are in sync). While a replica lags, the other one is
    the authoritative copy. *)

val lag : t -> int
(** Journalled mutations awaiting resync. *)

val resync : t -> (int, string) result
(** Replay missed mutations to the (repaired) lagging replica; returns
    how many were replayed. Fails if both replicas were failed or a
    replayed response diverges. *)

val divergence : t -> string list
(** Compare the replicas' object stores (existence, size, content
    digest of every object, current and audit record counts); empty
    means the replicas agree. *)

val drive : t -> replica -> S4.Drive.t
