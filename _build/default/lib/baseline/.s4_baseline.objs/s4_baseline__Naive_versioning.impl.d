lib/baseline/naive_versioning.ml: Hashtbl
