(* Tests for the S4 drive: ACLs, audit log, throttle, and the full
   RPC security perimeter. *)

module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Net = S4_disk.Net
module Log = S4_seglog.Log
module Store = S4_store.Obj_store
module Acl = S4.Acl
module Audit = S4.Audit
module Rpc = S4.Rpc
module Throttle = S4.Throttle
module Drive = S4.Drive
module Client = S4.Client

let check = Alcotest.check
let qtest = Qseed.qtest
let bytes_of = Bytes.of_string

let geom mb = Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(mb * 1024 * 1024)

let mk_drive ?(mb = 64) ?config () =
  let clock = Simclock.create () in
  let disk = Sim_disk.create ~geometry:(geom mb) clock in
  (clock, disk, Drive.format ?config disk)

let alice = Rpc.user_cred ~user:1 ~client:100
let bob = Rpc.user_cred ~user:2 ~client:200
let admin = Rpc.admin_cred
let tick clock = Simclock.advance clock 1_000_000L

let expect_oid = function
  | Rpc.R_oid oid -> oid
  | r -> Alcotest.failf "expected oid, got %a" Rpc.pp_resp r

let expect_data = function
  | Rpc.R_data b -> b
  | r -> Alcotest.failf "expected data, got %a" Rpc.pp_resp r

let expect_unit = function
  | Rpc.R_unit -> ()
  | r -> Alcotest.failf "expected unit, got %a" Rpc.pp_resp r

let expect_error expected = function
  | Rpc.R_error e when e = expected -> ()
  | r -> Alcotest.failf "expected error, got %a" Rpc.pp_resp r

let create_file drive cred ?(acl = []) content =
  let oid = expect_oid (Drive.handle drive cred (Rpc.Create { acl })) in
  expect_unit
    (Drive.handle drive cred
       (Rpc.Write { oid; off = 0; len = String.length content; data = Some (bytes_of content) }));
  oid

let read_str drive cred ?at oid =
  Bytes.to_string (expect_data (Drive.handle drive cred (Rpc.Read { oid; off = 0; len = 1 lsl 20; at })))

(* --- ACL ------------------------------------------------------------- *)

let test_acl_roundtrip () =
  let acl =
    [
      Acl.owner_entry ~user:7;
      { Acl.user = 3; client = 5; perms = [ Acl.Read; Acl.Write ]; recovery = false };
      Acl.public_read;
    ]
  in
  check Alcotest.bool "roundtrip" true (Acl.decode (Acl.encode acl) = acl);
  check Alcotest.bool "empty" true (Acl.decode Bytes.empty = [])

let test_acl_matching () =
  let acl = [ Acl.owner_entry ~user:7; Acl.public_read ] in
  check Alcotest.bool "owner write" true (Acl.allows acl ~user:7 ~client:9 Acl.Write);
  check Alcotest.bool "stranger read" true (Acl.allows acl ~user:3 ~client:9 Acl.Read);
  check Alcotest.bool "stranger write" false (Acl.allows acl ~user:3 ~client:9 Acl.Write);
  check Alcotest.bool "owner recovery" true (Acl.allows_recovery acl ~user:7 ~client:9);
  check Alcotest.bool "stranger recovery" false (Acl.allows_recovery acl ~user:3 ~client:9)

let test_acl_client_scoping () =
  let acl = [ { Acl.user = 1; client = 5; perms = [ Acl.Read ]; recovery = false } ] in
  check Alcotest.bool "right client" true (Acl.allows acl ~user:1 ~client:5 Acl.Read);
  check Alcotest.bool "wrong client" false (Acl.allows acl ~user:1 ~client:6 Acl.Read)

let test_acl_indexing () =
  let acl = [ Acl.owner_entry ~user:1; Acl.public_read ] in
  check Alcotest.bool "nth 1" true (Acl.nth acl 1 = Some Acl.public_read);
  check Alcotest.bool "nth out" true (Acl.nth acl 5 = None);
  let e = { Acl.user = 9; client = -1; perms = [ Acl.Read ]; recovery = true } in
  let acl2 = Acl.set_nth acl 1 e in
  check Alcotest.bool "replaced" true (Acl.nth acl2 1 = Some e);
  let acl3 = Acl.set_nth acl 10 e in
  check Alcotest.int "appended" 3 (List.length acl3)

let prop_acl_roundtrip =
  QCheck.Test.make ~name:"acl encode/decode roundtrip" ~count:200
    QCheck.(
      list_of_size
        Gen.(0 -- 10)
        (quad (int_range (-1) 100) (int_range (-1) 100) (int_bound 31) bool))
    (fun raw ->
      let perms_of bits =
        List.filter_map
          (fun (b, p) -> if bits land b <> 0 then Some p else None)
          [ (1, Acl.Read); (2, Acl.Write); (4, Acl.Delete); (8, Acl.Set_attr); (16, Acl.Set_acl) ]
      in
      let acl =
        List.map (fun (u, c, bits, rec_) -> { Acl.user = u; client = c; perms = perms_of bits; recovery = rec_ }) raw
      in
      Acl.decode (Acl.encode acl) = acl)

(* --- Audit ------------------------------------------------------------ *)

let mk_log ?(mb = 64) () =
  let clock = Simclock.create () in
  let disk = Sim_disk.create ~geometry:(geom mb) clock in
  (clock, disk, Log.create disk)

let rec_ at op = { Audit.at; user = 1; client = 2; op; oid = 42L; info = "x=1"; ok = true }

let test_audit_record_block_roundtrip () =
  let records = [ rec_ 1L "read"; rec_ 2L "write"; rec_ 3L "delete" ] in
  let _, _, log = mk_log () in
  let audit = Audit.create log in
  List.iter (Audit.append audit) records;
  Audit.flush audit;
  check Alcotest.int "one block" 1 (Audit.block_count audit);
  let back = Audit.records audit () in
  check Alcotest.bool "records roundtrip" true (back = records)

let test_audit_buffering () =
  let _, _, log = mk_log () in
  let audit = Audit.create log in
  (* Small records buffer in memory; no block until ~4KB accumulate. *)
  for i = 1 to 10 do
    Audit.append audit (rec_ (Int64.of_int i) "op")
  done;
  check Alcotest.int "still buffered" 0 (Audit.block_count audit);
  for i = 11 to 300 do
    Audit.append audit (rec_ (Int64.of_int i) "some-longer-operation-name")
  done;
  check Alcotest.bool "blocks written" true (Audit.block_count audit > 0);
  check Alcotest.int "all records visible" 300 (List.length (Audit.records audit ()))

let test_audit_time_filter () =
  let _, _, log = mk_log () in
  let audit = Audit.create log in
  List.iter (Audit.append audit) [ rec_ 10L "a"; rec_ 20L "b"; rec_ 30L "c" ];
  let mid = Audit.records audit ~since:15L ~until:25L () in
  check Alcotest.int "one in range" 1 (List.length mid);
  check Alcotest.string "the right one" "b" (List.hd mid).Audit.op

let test_audit_disabled () =
  let _, _, log = mk_log () in
  let audit = Audit.create ~enabled:false log in
  Audit.append audit (rec_ 1L "x");
  check Alcotest.int "nothing recorded" 0 (Audit.record_count audit)

let test_audit_expire () =
  let _, _, log = mk_log () in
  let audit = Audit.create log in
  Audit.append audit (rec_ 5L "old");
  Audit.flush audit;
  Audit.append audit (rec_ 100L "new");
  Audit.flush audit;
  check Alcotest.int "two blocks" 2 (Audit.block_count audit);
  let freed = Audit.expire audit ~cutoff:50L in
  check Alcotest.int "one freed" 1 freed;
  let remaining = Audit.records audit () in
  check Alcotest.int "one block left" 1 (List.length remaining);
  check Alcotest.string "new survives" "new" (List.hd remaining).Audit.op

let test_audit_recover () =
  let _, disk, log = mk_log () in
  let audit = Audit.create log in
  List.iter (Audit.append audit) [ rec_ 1L "r1"; rec_ 2L "r2" ];
  Audit.flush audit;
  Log.sync log;
  let log2 = Log.reattach disk in
  let audit2 = Audit.create log2 in
  Audit.recover audit2;
  check Alcotest.int "block refound" 1 (Audit.block_count audit2);
  check Alcotest.int "records refound" 2 (List.length (Audit.records audit2 ()))

(* --- Throttle ---------------------------------------------------------- *)

let test_throttle_quiescent () =
  let clock = Simclock.create () in
  let th = Throttle.create clock in
  Throttle.note_write th ~client:1 ~bytes:1_000_000;
  check Alcotest.int64 "no pressure, no penalty" 0L (Throttle.penalty th ~client:1)

let test_throttle_abuser_penalised () =
  let clock = Simclock.create () in
  let th = Throttle.create clock in
  Throttle.note_write th ~client:666 ~bytes:100_000_000;
  Throttle.note_write th ~client:1 ~bytes:1_000;
  Throttle.set_pool_pressure th 0.95;
  check Alcotest.bool "abuser throttled" true (Throttle.is_throttled th ~client:666);
  check Alcotest.bool "abuser pays" true (Int64.compare (Throttle.penalty th ~client:666) 0L > 0);
  check Alcotest.bool "innocent free" false (Throttle.is_throttled th ~client:1);
  check Alcotest.int64 "innocent penalty" 0L (Throttle.penalty th ~client:1);
  check (Alcotest.list Alcotest.int) "listing" [ 666 ] (Throttle.throttled_clients th)

let test_throttle_decay () =
  let clock = Simclock.create () in
  let th = Throttle.create clock in
  Throttle.note_write th ~client:1 ~bytes:1_000_000;
  let s1 = Throttle.client_share th ~client:1 in
  check (Alcotest.float 1e-6) "sole writer" 1.0 s1;
  (* Long after, a new writer dominates the decayed counter. *)
  Simclock.advance clock 100_000_000_000L;
  Throttle.note_write th ~client:2 ~bytes:1_000_000;
  check Alcotest.bool "old client decayed" true (Throttle.client_share th ~client:1 < 0.01)

let test_throttle_penalty_scales_with_pressure () =
  let clock = Simclock.create () in
  let th = Throttle.create clock in
  Throttle.note_write th ~client:1 ~bytes:1_000_000;
  Throttle.set_pool_pressure th 0.85;
  let p1 = Throttle.penalty th ~client:1 in
  Throttle.set_pool_pressure th 1.0;
  let p2 = Throttle.penalty th ~client:1 in
  check Alcotest.bool "higher pressure, higher penalty" true (Int64.compare p2 p1 > 0)

(* --- Drive: basic RPC behaviour ---------------------------------------- *)

let test_drive_create_write_read () =
  let _, _, drive = mk_drive () in
  let oid = create_file drive alice "hello s4" in
  check Alcotest.string "read back" "hello s4" (read_str drive alice oid)

let test_drive_all_table1_rpcs () =
  (* Exercise every RPC from Table 1 at least once. *)
  let clock, _, drive = mk_drive () in
  let oid = expect_oid (Drive.handle drive alice (Rpc.Create { acl = [] })) in
  expect_unit (Drive.handle drive alice (Rpc.Write { oid; off = 0; len = 4; data = Some (bytes_of "abcd") }));
  expect_unit (Drive.handle drive alice (Rpc.Append { oid; len = 4; data = Some (bytes_of "efgh") }));
  check Alcotest.string "write+append" "abcdefgh" (read_str drive alice oid);
  expect_unit (Drive.handle drive alice (Rpc.Truncate { oid; size = 4 }));
  expect_unit (Drive.handle drive alice (Rpc.Set_attr { oid; attr = bytes_of "nfs-attrs" }));
  (match Drive.handle drive alice (Rpc.Get_attr { oid; at = None }) with
   | Rpc.R_attr b -> check Alcotest.string "attr" "nfs-attrs" (Bytes.to_string b)
   | r -> Alcotest.failf "getattr: %a" Rpc.pp_resp r);
  (match Drive.handle drive alice (Rpc.Get_acl_by_user { oid; acl_user = 1; at = None }) with
   | Rpc.R_acl e -> check Alcotest.int "owner acl" 1 e.Acl.user
   | r -> Alcotest.failf "getacl: %a" Rpc.pp_resp r);
  (match Drive.handle drive alice (Rpc.Get_acl_by_index { oid; index = 0; at = None }) with
   | Rpc.R_acl _ -> ()
   | r -> Alcotest.failf "getacl idx: %a" Rpc.pp_resp r);
  expect_unit (Drive.handle drive alice (Rpc.Set_acl { oid; index = 1; entry = Acl.public_read }));
  check Alcotest.string "bob can read now" "abcd" (read_str drive bob oid);
  expect_unit (Drive.handle drive alice (Rpc.P_create { name = "home"; oid }));
  (match Drive.handle drive bob (Rpc.P_list { at = None }) with
   | Rpc.R_names [ "home" ] -> ()
   | r -> Alcotest.failf "plist: %a" Rpc.pp_resp r);
  (match Drive.handle drive bob (Rpc.P_mount { name = "home"; at = None }) with
   | Rpc.R_oid o -> check Alcotest.int64 "pmount" oid o
   | r -> Alcotest.failf "pmount: %a" Rpc.pp_resp r);
  expect_unit (Drive.handle drive alice Rpc.Sync);
  expect_unit (Drive.handle drive alice (Rpc.P_delete { name = "home" }));
  tick clock;
  expect_unit (Drive.handle drive alice (Rpc.Delete { oid }));
  expect_unit (Drive.handle drive admin (Rpc.Set_window { window = 1_000_000_000L }));
  expect_unit (Drive.handle drive admin (Rpc.Flush_object { oid; until = 0L }));
  expect_unit (Drive.handle drive admin (Rpc.Flush { until = 0L }));
  (match Drive.handle drive admin (Rpc.Read_audit { since = 0L; until = Int64.max_int }) with
   | Rpc.R_audit rs -> check Alcotest.bool "audited" true (List.length rs > 10)
   | r -> Alcotest.failf "readaudit: %a" Rpc.pp_resp r)

let test_drive_permission_checks () =
  let _, _, drive = mk_drive () in
  let oid = create_file drive alice "private" in
  expect_error Rpc.Permission_denied (Drive.handle drive bob (Rpc.Read { oid; off = 0; len = 7; at = None }));
  expect_error Rpc.Permission_denied
    (Drive.handle drive bob (Rpc.Write { oid; off = 0; len = 1; data = Some (bytes_of "x") }));
  expect_error Rpc.Permission_denied (Drive.handle drive bob (Rpc.Delete { oid }));
  expect_error Rpc.Permission_denied (Drive.handle drive bob (Rpc.Set_attr { oid; attr = Bytes.empty }));
  expect_error Rpc.Permission_denied
    (Drive.handle drive bob (Rpc.Set_acl { oid; index = 0; entry = Acl.owner_entry ~user:2 }));
  (* Admin RPCs refused to ordinary users — even the owner. *)
  expect_error Rpc.Permission_denied (Drive.handle drive alice (Rpc.Flush { until = 0L }));
  expect_error Rpc.Permission_denied (Drive.handle drive alice (Rpc.Set_window { window = 1L }));
  expect_error Rpc.Permission_denied
    (Drive.handle drive alice (Rpc.Read_audit { since = 0L; until = 1L }))

let test_drive_admin_bypasses_acl () =
  let _, _, drive = mk_drive () in
  let oid = create_file drive alice "secret" in
  check Alcotest.string "admin reads anything" "secret" (read_str drive admin oid)

let test_drive_time_based_read_requires_recovery_flag () =
  let clock, _, drive = mk_drive () in
  (* Alice grants bob read, but NOT recovery. *)
  let acl =
    [ Acl.owner_entry ~user:1; { Acl.user = 2; client = -1; perms = [ Acl.Read ]; recovery = false } ]
  in
  let oid = create_file drive alice ~acl "version-one" in
  let t1 = Simclock.now clock in
  tick clock;
  expect_unit
    (Drive.handle drive alice (Rpc.Write { oid; off = 0; len = 11; data = Some (bytes_of "version-two") }));
  (* Bob reads current fine, but history is denied. *)
  check Alcotest.string "bob current" "version-two" (read_str drive bob oid);
  expect_error Rpc.Permission_denied
    (Drive.handle drive bob (Rpc.Read { oid; off = 0; len = 11; at = Some t1 }));
  (* Alice (owner, recovery) and admin can see the old version. *)
  check Alcotest.string "alice history" "version-one" (read_str drive alice ~at:t1 oid);
  check Alcotest.string "admin history" "version-one" (read_str drive admin ~at:t1 oid)

(* The headline property: even with the owner's credential, an
   intruder cannot remove pre-intrusion data within the window. *)
let test_drive_intruder_cannot_destroy_history () =
  let clock, _, drive = mk_drive () in
  let oid = create_file drive alice "system log: normal activity" in
  let before_intrusion = Simclock.now clock in
  tick clock;
  (* Intruder with alice's credential scrubs the log and deletes it. *)
  expect_unit (Drive.handle drive alice (Rpc.Truncate { oid; size = 0 }));
  expect_unit
    (Drive.handle drive alice (Rpc.Write { oid; off = 0; len = 6; data = Some (bytes_of "hacked") }));
  expect_unit (Drive.handle drive alice (Rpc.Delete { oid }));
  (* Flush/SetWindow with stolen user credentials fail. *)
  expect_error Rpc.Permission_denied (Drive.handle drive alice (Rpc.Flush { until = Int64.max_int }));
  (* The administrator recovers the pre-intrusion contents. *)
  check Alcotest.string "history intact" "system log: normal activity"
    (read_str drive admin ~at:before_intrusion oid);
  (* And the audit log shows exactly what the intruder did. *)
  match Drive.handle drive admin (Rpc.Read_audit { since = 0L; until = Int64.max_int }) with
  | Rpc.R_audit rs ->
    let ops = List.map (fun r -> r.Audit.op) rs in
    check Alcotest.bool "truncate audited" true (List.mem "truncate" ops);
    check Alcotest.bool "delete audited" true (List.mem "delete" ops)
  | r -> Alcotest.failf "audit: %a" Rpc.pp_resp r

let test_drive_rejected_requests_are_audited () =
  let _, _, drive = mk_drive () in
  let oid = create_file drive alice "data" in
  ignore (Drive.handle drive bob (Rpc.Read { oid; off = 0; len = 4; at = None }));
  match Drive.handle drive admin (Rpc.Read_audit { since = 0L; until = Int64.max_int }) with
  | Rpc.R_audit rs ->
    check Alcotest.bool "denied request recorded" true
      (List.exists (fun r -> r.Audit.user = 2 && not r.Audit.ok) rs)
  | r -> Alcotest.failf "audit: %a" Rpc.pp_resp r

let test_drive_not_found_and_deleted_errors () =
  let _, _, drive = mk_drive () in
  expect_error Rpc.Not_found (Drive.handle drive admin (Rpc.Read { oid = 9999L; off = 0; len = 1; at = None }));
  let oid = create_file drive alice "x" in
  expect_unit (Drive.handle drive alice (Rpc.Delete { oid }));
  expect_error Rpc.Object_deleted
    (Drive.handle drive alice (Rpc.Write { oid; off = 0; len = 1; data = Some (bytes_of "y") }))

let test_drive_partition_table_is_versioned () =
  let clock, _, drive = mk_drive () in
  let oid = create_file drive alice "fs root" in
  expect_unit (Drive.handle drive alice (Rpc.P_create { name = "vol0"; oid }));
  let t = Simclock.now clock in
  tick clock;
  expect_unit (Drive.handle drive alice (Rpc.P_delete { name = "vol0" }));
  (match Drive.handle drive alice (Rpc.P_list { at = None }) with
   | Rpc.R_names [] -> ()
   | r -> Alcotest.failf "plist now: %a" Rpc.pp_resp r);
  (* Admin sees the old partition table. *)
  match Drive.handle drive admin (Rpc.P_mount { name = "vol0"; at = Some t }) with
  | Rpc.R_oid o -> check Alcotest.int64 "old table entry" oid o
  | r -> Alcotest.failf "pmount at: %a" Rpc.pp_resp r

let test_drive_duplicate_partition_rejected () =
  let _, _, drive = mk_drive () in
  let oid = create_file drive alice "root" in
  expect_unit (Drive.handle drive alice (Rpc.P_create { name = "a"; oid }));
  match Drive.handle drive alice (Rpc.P_create { name = "a"; oid }) with
  | Rpc.R_error (Rpc.Bad_request _) -> ()
  | r -> Alcotest.failf "expected bad request, got %a" Rpc.pp_resp r

let test_drive_flush_ages_history () =
  let clock, _, drive = mk_drive () in
  let oid = create_file drive alice "v1" in
  let t1 = Simclock.now clock in
  tick clock;
  expect_unit (Drive.handle drive alice (Rpc.Write { oid; off = 0; len = 2; data = Some (bytes_of "v2") }));
  expect_unit (Drive.handle drive alice Rpc.Sync);
  tick clock;
  expect_unit (Drive.handle drive admin (Rpc.Flush { until = Simclock.now clock }));
  (* v1 was admin-flushed; current still fine. *)
  check Alcotest.string "current survives flush" "v2" (read_str drive admin oid);
  ignore t1

let test_drive_fsck_clean () =
  let clock, _, drive = mk_drive () in
  let oid = create_file drive alice "fsck me" in
  expect_unit (Drive.handle drive alice (Rpc.Write { oid; off = 0; len = 7; data = Some (bytes_of "fsck me") }));
  expect_unit (Drive.handle drive alice Rpc.Sync);
  tick clock;
  ignore (Drive.run_cleaner drive);
  check (Alcotest.list Alcotest.string) "no violations" [] (Drive.fsck drive)

let test_drive_crash_recovery () =
  let clock, disk, drive = mk_drive () in
  let oid = create_file drive alice "persistent data" in
  let t = Simclock.now clock in
  tick clock;
  expect_unit (Drive.handle drive alice (Rpc.Write { oid; off = 0; len = 10; data = Some (bytes_of "new conten") }));
  expect_unit (Drive.handle drive alice Rpc.Sync);
  S4.Audit.flush (Drive.audit drive);
  Log.sync (Drive.log drive);
  (* Crash; reattach from the same disk. *)
  let drive2 = Drive.attach disk in
  check Alcotest.string "current recovered" "new conten data" (read_str drive2 admin oid);
  check Alcotest.string "history recovered" "persistent data" (read_str drive2 admin ~at:t oid);
  (match Drive.handle drive2 admin (Rpc.Read_audit { since = 0L; until = Int64.max_int }) with
   | Rpc.R_audit rs -> check Alcotest.bool "audit recovered" true (List.length rs > 0)
   | r -> Alcotest.failf "audit: %a" Rpc.pp_resp r);
  check (Alcotest.list Alcotest.string) "fsck after recovery" [] (Drive.fsck drive2)

let test_drive_window_persists_across_crash () =
  let _, disk, drive = mk_drive () in
  expect_unit (Drive.handle drive admin (Rpc.Set_window { window = 42_000_000_000L }));
  expect_unit (Drive.handle drive admin Rpc.Sync);
  Log.sync (Drive.log drive);
  let drive2 = Drive.attach disk in
  check Alcotest.int64 "window recovered" 42_000_000_000L (Drive.window drive2)

let test_drive_throttling_under_pressure () =
  (* A tiny drive with a small history reserve: an abuser filling the
     pool gets slowed; a well-behaved client is not throttled. *)
  let config =
    { Drive.default_config with
      history_reserve = 0.02;
      window = Int64.mul 365L (Int64.mul 86_400L 1_000_000_000L) }
  in
  let clock, _, drive = mk_drive ~mb:32 ~config () in
  let abuser = Rpc.user_cred ~user:66 ~client:666 in
  let oid = expect_oid (Drive.handle drive abuser (Rpc.Create { acl = [] })) in
  let junk = Bytes.make 8192 'j' in
  for _ = 1 to 2000 do
    expect_unit (Drive.handle drive abuser (Rpc.Write { oid; off = 0; len = 8192; data = Some junk }));
    tick clock
  done;
  ignore (Drive.handle drive abuser Rpc.Sync);
  let th = Option.get (Drive.throttle drive) in
  Throttle.set_pool_pressure th (Drive.pool_pressure drive);
  check Alcotest.bool "pressure high" true (Drive.pool_pressure drive > 0.8);
  check Alcotest.bool "abuser throttled" true (Throttle.is_throttled th ~client:666);
  check Alcotest.bool "innocent not throttled" false (Throttle.is_throttled th ~client:100);
  (* The penalty manifests as added latency on the abuser's next op. *)
  let before = Simclock.now clock in
  ignore (Drive.handle drive abuser (Rpc.Get_attr { oid; at = None }));
  let abuser_cost = Int64.sub (Simclock.now clock) before in
  check Alcotest.bool "abuser delayed" true (Int64.compare abuser_cost (Simclock.of_ms 1.0) > 0)

let test_drive_detection_window_guarantee () =
  (* The contract: a version is recoverable for at least the window,
     and may be reclaimed after it. *)
  let window = Simclock.of_seconds 10.0 in
  let config = { Drive.default_config with Drive.window } in
  let clock, _, drive = mk_drive ~config () in
  let oid = create_file drive alice "inside the window" in
  let t1 = Simclock.now clock in
  tick clock;
  expect_unit
    (Drive.handle drive alice (Rpc.Write { oid; off = 0; len = 17; data = Some (bytes_of "OVERWRITTEN nowww") }));
  expect_unit (Drive.handle drive alice Rpc.Sync);
  (* Just inside the window: the cleaner must not touch v1. *)
  Simclock.advance clock (Simclock.of_seconds 5.0);
  ignore (Drive.run_cleaner drive);
  check Alcotest.string "still recoverable inside window" "inside the window"
    (read_str drive admin ~at:t1 oid);
  (* Well past the window: aging may reclaim it. *)
  Simclock.advance clock (Simclock.of_seconds 60.0);
  ignore (Drive.run_cleaner drive);
  (match Drive.handle drive admin (Rpc.Read { oid; off = 0; len = 17; at = Some t1 }) with
   | Rpc.R_data b when Bytes.to_string b = "inside the window" ->
     Alcotest.fail "expired version should have been reclaimed"
   | _ -> ());
  (* The current version is of course untouched. *)
  check Alcotest.string "current intact" "OVERWRITTEN nowww" (read_str drive admin oid);
  check (Alcotest.list Alcotest.string) "fsck clean" [] (Drive.fsck drive)

let test_drive_set_window_shrinks_guarantee () =
  let config = { Drive.default_config with Drive.window = Simclock.of_seconds 3600.0 } in
  let clock, _, drive = mk_drive ~config () in
  let oid = create_file drive alice "history" in
  let t1 = Simclock.now clock in
  tick clock;
  expect_unit (Drive.handle drive alice (Rpc.Write { oid; off = 0; len = 3; data = Some (bytes_of "new") }));
  expect_unit (Drive.handle drive alice Rpc.Sync);
  Simclock.advance clock (Simclock.of_seconds 60.0);
  ignore (Drive.run_cleaner drive);
  check Alcotest.string "long window keeps it" "history" (read_str drive admin ~at:t1 oid);
  (* Admin shrinks the window; the old version becomes reclaimable. *)
  expect_unit (Drive.handle drive admin (Rpc.Set_window { window = Simclock.of_seconds 1.0 }));
  ignore (Drive.run_cleaner drive);
  match Drive.handle drive admin (Rpc.Read { oid; off = 0; len = 7; at = Some t1 }) with
  | Rpc.R_data b when Bytes.to_string b = "history" -> Alcotest.fail "window shrink ignored"
  | _ -> ()

(* --- Client / network ---------------------------------------------------- *)

let test_drive_no_space_is_an_error_not_a_crash () =
  (* Fill a tiny drive (no cleaner runs, generous window): the drive
     must fail requests with No_space, not die. *)
  let clock, _, drive = mk_drive ~mb:4 () in
  let oid = create_file drive alice "seed" in
  let filler = create_file drive alice "filler" in
  let junk = Bytes.make 65536 'f' in
  let saw_no_space = ref false in
  (try
     for i = 1 to 200 do
       match
         Drive.handle drive alice
           (Rpc.Write { oid = filler; off = i * 65536; len = 65536; data = Some junk })
       with
       | Rpc.R_error Rpc.No_space ->
         saw_no_space := true;
         raise Exit
       | _ -> tick clock
     done
   with Exit -> ());
  check Alcotest.bool "No_space surfaced" true !saw_no_space;
  (* Reads still work. *)
  check Alcotest.string "drive still serves reads" "seed" (read_str drive alice oid)

let test_client_rpc_costs_time () =
  let clock, _, drive = mk_drive () in
  let net = Net.create clock in
  let client = Client.connect net drive in
  let before = Simclock.now clock in
  let oid = expect_oid (Client.call client alice (Rpc.Create { acl = [] })) in
  check Alcotest.bool "network time charged" true (Int64.compare (Simclock.now clock) before > 0);
  check Alcotest.int "rpc counted" 1 (Client.rpc_count client);
  ignore oid

let test_client_payload_costs_bandwidth () =
  let clock, _, drive = mk_drive () in
  let net = Net.create clock in
  let client = Client.connect net drive in
  let oid = expect_oid (Client.call client alice (Rpc.Create { acl = [] })) in
  let t0 = Simclock.now clock in
  ignore (Client.call_exn client alice (Rpc.Write { oid; off = 0; len = 64; data = Some (Bytes.make 64 'a') }));
  let small = Int64.sub (Simclock.now clock) t0 in
  let t1 = Simclock.now clock in
  ignore
    (Client.call_exn client alice
       (Rpc.Write { oid; off = 0; len = 1 lsl 20; data = Some (Bytes.make (1 lsl 20) 'b') }));
  let big = Int64.sub (Simclock.now clock) t1 in
  check Alcotest.bool "1MB write much slower than 64B" true
    (Int64.to_float big > 5.0 *. Int64.to_float small)

let test_client_call_exn () =
  let clock, _, drive = mk_drive () in
  let net = Net.create clock in
  let client = Client.connect net drive in
  check Alcotest.bool "raises on error" true
    (try
       ignore (Client.call_exn client alice (Rpc.Delete { oid = 4242L }));
       false
     with Failure _ -> true)

let () =
  Alcotest.run "s4_core"
    [
      ( "acl",
        [
          Alcotest.test_case "roundtrip" `Quick test_acl_roundtrip;
          Alcotest.test_case "matching" `Quick test_acl_matching;
          Alcotest.test_case "client scoping" `Quick test_acl_client_scoping;
          Alcotest.test_case "indexing" `Quick test_acl_indexing;
          qtest prop_acl_roundtrip;
        ] );
      ( "audit",
        [
          Alcotest.test_case "block roundtrip" `Quick test_audit_record_block_roundtrip;
          Alcotest.test_case "buffering" `Quick test_audit_buffering;
          Alcotest.test_case "time filter" `Quick test_audit_time_filter;
          Alcotest.test_case "disabled" `Quick test_audit_disabled;
          Alcotest.test_case "expire" `Quick test_audit_expire;
          Alcotest.test_case "recover" `Quick test_audit_recover;
        ] );
      ( "throttle",
        [
          Alcotest.test_case "quiescent" `Quick test_throttle_quiescent;
          Alcotest.test_case "abuser penalised" `Quick test_throttle_abuser_penalised;
          Alcotest.test_case "decay" `Quick test_throttle_decay;
          Alcotest.test_case "penalty scaling" `Quick test_throttle_penalty_scales_with_pressure;
        ] );
      ( "drive",
        [
          Alcotest.test_case "create/write/read" `Quick test_drive_create_write_read;
          Alcotest.test_case "all Table-1 RPCs" `Quick test_drive_all_table1_rpcs;
          Alcotest.test_case "permission checks" `Quick test_drive_permission_checks;
          Alcotest.test_case "admin bypass" `Quick test_drive_admin_bypasses_acl;
          Alcotest.test_case "recovery flag" `Quick test_drive_time_based_read_requires_recovery_flag;
          Alcotest.test_case "intruder cannot destroy history" `Quick
            test_drive_intruder_cannot_destroy_history;
          Alcotest.test_case "rejections audited" `Quick test_drive_rejected_requests_are_audited;
          Alcotest.test_case "error mapping" `Quick test_drive_not_found_and_deleted_errors;
          Alcotest.test_case "partition table versioned" `Quick test_drive_partition_table_is_versioned;
          Alcotest.test_case "duplicate partition" `Quick test_drive_duplicate_partition_rejected;
          Alcotest.test_case "flush ages history" `Quick test_drive_flush_ages_history;
          Alcotest.test_case "fsck clean" `Quick test_drive_fsck_clean;
          Alcotest.test_case "crash recovery" `Quick test_drive_crash_recovery;
          Alcotest.test_case "window persists" `Quick test_drive_window_persists_across_crash;
          Alcotest.test_case "throttling" `Quick test_drive_throttling_under_pressure;
          Alcotest.test_case "no-space error" `Quick test_drive_no_space_is_an_error_not_a_crash;
          Alcotest.test_case "detection window guarantee" `Quick test_drive_detection_window_guarantee;
          Alcotest.test_case "setwindow shrinks" `Quick test_drive_set_window_shrinks_guarantee;
        ] );
      ( "client",
        [
          Alcotest.test_case "rpc costs time" `Quick test_client_rpc_costs_time;
          Alcotest.test_case "bandwidth" `Quick test_client_payload_costs_bandwidth;
          Alcotest.test_case "call_exn" `Quick test_client_call_exn;
        ] );
    ]
