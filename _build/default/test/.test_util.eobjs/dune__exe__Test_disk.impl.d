test/test_disk.ml: Alcotest Bytes Char Int64 S4_disk S4_util
