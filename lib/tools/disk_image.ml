(* Host-file persistence for simulated disks, so the CLI can operate on
   a drive across invocations. The image holds the geometry, the
   simulated clock, and the sparse sector contents.

   v2 images carry a trailing CRC-32 over everything between the magic
   and the checksum, and [save] is atomic: the new image is written to
   a temp file, fsynced, renamed over the old one, and the directory
   entry flushed — a crash mid-save leaves the previous image intact.
   v1 images (no CRC) are still readable. *)

module Bcodec = S4_util.Bcodec
module Crc32 = S4_util.Crc32
module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module File_disk = S4_disk.File_disk
module Chain = S4_integrity.Chain

let magic_v1 = "S4IMG1\n"
let magic = "S4IMG2\n"

let corrupt path fmt =
  Printf.ksprintf (fun s -> failwith (path ^ ": corrupt image (" ^ s ^ ")")) fmt

(* ------------------------------------------------------------------ *)
(* Save                                                                *)

let encode_body (clock : Simclock.t) (disk : Sim_disk.t) =
  let g = Sim_disk.geometry disk in
  let w = Bcodec.writer () in
  Geometry.encode w g;
  Bcodec.w_i64 w (Simclock.now clock);
  (* The sealed audit-chain head rides in the image header: a saved
     image is a device-level copy, anchor included. Absent entirely in
     pre-integrity images (header ends after the clock). *)
  (match Sim_disk.current_head disk with
   | None -> Bcodec.w_u8 w 0
   | Some h ->
     Bcodec.w_u8 w 1;
     Chain.write_head w h);
  let header = Bcodec.contents w in
  let body = Buffer.create (1 lsl 20) in
  Buffer.add_int32_be body (Int32.of_int (Bytes.length header));
  Buffer.add_bytes body header;
  (* Sparse sector dump: scan for sectors with content. *)
  let ss = g.Geometry.sector_size in
  let zero = Bytes.make ss '\000' in
  let count = ref 0 in
  let payload = Buffer.create (1 lsl 20) in
  for lba = 0 to g.Geometry.sectors - 1 do
    let b = Sim_disk.peek disk ~lba ~sectors:1 in
    if not (Bytes.equal b zero) then begin
      incr count;
      Buffer.add_int32_be payload (Int32.of_int lba);
      Buffer.add_bytes payload b
    end
  done;
  Buffer.add_int32_be body (Int32.of_int !count);
  Buffer.add_buffer body payload;
  Buffer.contents body

let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let save path (clock : Simclock.t) (disk : Sim_disk.t) =
  let body = encode_body clock disk in
  let crc = Int32.to_int (Crc32.string body) land 0xFFFFFFFF in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc magic;
     output_string oc body;
     let tail = Bytes.create 4 in
     Bytes.set_int32_be tail 0 (Int32.of_int crc);
     output_bytes oc tail;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  fsync_dir path

(* ------------------------------------------------------------------ *)
(* Load                                                                *)

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A decoding cursor over the in-memory body with explicit bounds
   checks; nothing is trusted before it is range-checked. *)
type cursor = { buf : string; mutable pos : int; path : string }

let need c n what =
  if n < 0 || c.pos + n > String.length c.buf then
    corrupt c.path "truncated (%s at offset %d)" what c.pos

let r_u32 c what =
  need c 4 what;
  let v = Int32.to_int (String.get_int32_be c.buf c.pos) in
  c.pos <- c.pos + 4;
  v

let r_bytes c n what =
  need c n what;
  let b = Bytes.of_string (String.sub c.buf c.pos n) in
  c.pos <- c.pos + n;
  b

let remaining c = String.length c.buf - c.pos

let decode_geometry_v1 r =
  let name = Bcodec.r_string r in
  let sector_size = Bcodec.r_int r in
  let sectors = Bcodec.r_int r in
  let rpm = Bcodec.r_int r in
  let track_sectors = Bcodec.r_int r in
  let min_seek_ms = Int64.float_of_bits (Bcodec.r_i64 r) in
  let avg_seek_ms = Int64.float_of_bits (Bcodec.r_i64 r) in
  let max_seek_ms = Int64.float_of_bits (Bcodec.r_i64 r) in
  let transfer_mb_s = Int64.float_of_bits (Bcodec.r_i64 r) in
  if sector_size <= 0 || sector_size > 1 lsl 20 || sectors <= 0 then
    raise (Bcodec.Decode_error "implausible geometry");
  {
    Geometry.name;
    sector_size;
    sectors;
    rpm;
    track_sectors;
    min_seek_ms;
    avg_seek_ms;
    max_seek_ms;
    transfer_mb_s;
  }

let load_body ~v1 path body =
  let c = { buf = body; pos = 0; path } in
  let hlen = r_u32 c "header length" in
  if hlen < 0 || hlen > remaining c then corrupt path "bad header length %d" hlen;
  let header = r_bytes c hlen "header" in
  let geometry, now, head =
    match
      let r = Bcodec.reader header in
      let g = if v1 then decode_geometry_v1 r else Geometry.decode r in
      let now = Bcodec.r_i64 r in
      let head =
        if v1 || Bcodec.remaining r = 0 then None
        else if Bcodec.r_u8 r = 0 then None
        else Some (Chain.read_head r)
      in
      (g, now, head)
    with
    | g, now, head -> (g, now, head)
    | exception Bcodec.Decode_error m -> corrupt path "bad header: %s" m
  in
  if Int64.compare now 0L < 0 then corrupt path "negative clock";
  let ss = geometry.Geometry.sector_size in
  let count = r_u32 c "sector count" in
  if count < 0 then corrupt path "negative sector count %d" count;
  if count * (4 + ss) <> remaining c then
    corrupt path "sector payload size mismatch (%d sectors declared, %d bytes remain)"
      count (remaining c);
  let clock = Simclock.create () in
  Simclock.set clock now;
  let disk = Sim_disk.create ~geometry clock in
  Sim_disk.set_saved_head disk head;
  for _ = 1 to count do
    let lba = r_u32 c "sector lba" in
    if lba < 0 || lba >= geometry.Geometry.sectors then
      corrupt path "sector lba %d outside [0, %d)" lba geometry.Geometry.sectors;
    let data = r_bytes c ss "sector data" in
    Sim_disk.poke disk ~lba ~data
  done;
  (clock, disk)

let load path =
  let raw = read_whole_file path in
  let starts m = String.length raw >= String.length m && String.sub raw 0 (String.length m) = m in
  if starts magic then begin
    (* v2: trailing CRC-32 over everything between magic and checksum. *)
    let mlen = String.length magic in
    if String.length raw < mlen + 4 then corrupt path "truncated (no checksum)";
    let body = String.sub raw mlen (String.length raw - mlen - 4) in
    let stored =
      Int32.to_int (String.get_int32_be raw (String.length raw - 4)) land 0xFFFFFFFF
    in
    let crc = Int32.to_int (Crc32.string body) land 0xFFFFFFFF in
    if stored <> crc then
      corrupt path "checksum mismatch (stored %08x, computed %08x)" stored crc;
    load_body ~v1:false path body
  end
  else if starts magic_v1 then
    load_body ~v1:true path (String.sub raw (String.length magic_v1)
                               (String.length raw - String.length magic_v1))
  else failwith (path ^ ": not an S4 image")

(* ------------------------------------------------------------------ *)
(* Format dispatch: serialized images vs. file-backed stores            *)

type kind = Image | File_store | Unknown

let kind path =
  match open_in_bin path with
  | exception Sys_error _ -> Unknown
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = min (in_channel_length ic) (String.length File_disk.magic) in
        let probe = really_input_string ic n in
        let starts m =
          String.length probe >= String.length m && String.sub probe 0 (String.length m) = m
        in
        if starts File_disk.magic then File_store
        else if starts magic || starts magic_v1 then Image
        else Unknown)

let load_any ?(dsync = false) path =
  match kind path with
  | File_store ->
    let disk = Sim_disk.of_file (File_disk.open_file ~dsync path) in
    (Sim_disk.clock disk, disk)
  | Image -> load path
  | Unknown ->
    if Sys.file_exists path then failwith (path ^ ": not an S4 image or file-backed store")
    else raise (Sys_error (path ^ ": No such file or directory"))

let save_any path (clock : Simclock.t) (disk : Sim_disk.t) =
  match Sim_disk.file_backing disk with
  | Some f ->
    Sim_disk.set_saved_head disk (Sim_disk.current_head disk);
    File_disk.set_head f (Sim_disk.saved_head disk);
    File_disk.sync f ~clock_ns:(Simclock.now clock)
  | None -> save path clock disk
