(* Differential testing: the S4-backed NFS systems and the
   update-in-place comparison servers implement the same NFSv2
   semantics, so any random operation sequence must leave all four
   systems with identical observable state (namespace, contents,
   sizes) and produce the same per-operation outcome. *)

module Rng = S4_util.Rng
module N = S4_nfs.Nfs_types
module Server = S4_nfs.Server
module Systems = S4_workload.Systems

let check = Alcotest.check
let qtest = Qseed.qtest

(* Abstract operations over a small fixed namespace. *)
type aop =
  | Acreate of int * int  (* dir index, file index *)
  | Awrite of int * int * int * int * char
  | Atruncate of int * int * int
  | Aremove of int * int
  | Arename of int * int * int * int
  | Amkdir_file_clash of int * int  (* mkdir with a file's name *)
  | Aread of int * int

let dir_name i = Printf.sprintf "dir%d" i
let file_name i = Printf.sprintf "file%d" i

let outcome_string = function
  | N.R_attr a -> Printf.sprintf "attr:%d" a.N.size
  | N.R_fh (_, a) -> Printf.sprintf "fh:%d" a.N.size
  | N.R_data b -> Printf.sprintf "data:%s" (Digest.to_hex (Digest.bytes b))
  | N.R_entries es ->
    Printf.sprintf "entries:%s" (String.concat "," (List.sort compare (List.map (fun e -> e.N.name) es)))
  | N.R_link s -> "link:" ^ s
  | N.R_unit -> "ok"
  | N.R_statfs _ -> "statfs"
  | N.R_error e -> Format.asprintf "error:%a" N.pp_error e

(* Apply one abstract op; returns a string outcome for comparison. *)
let apply sys dirs op =
  let handle req = sys.Systems.server.Server.handle req in
  let lookup d n =
    match handle (N.Lookup { dir = dirs.(d); name = file_name n }) with
    | N.R_fh (fh, a) -> Some (fh, a)
    | _ -> None
  in
  match op with
  | Acreate (d, n) -> outcome_string (handle (N.Create { dir = dirs.(d); name = file_name n; mode = 0o644 }))
  | Awrite (d, n, off, len, c) ->
    (match lookup d n with
     | Some (fh, _) -> outcome_string (handle (N.Write { fh; off; data = Bytes.make len c }))
     | None -> "no-file")
  | Atruncate (d, n, size) ->
    (match lookup d n with
     | Some (fh, _) -> outcome_string (handle (N.Setattr { fh; mode = None; size = Some size }))
     | None -> "no-file")
  | Aremove (d, n) -> outcome_string (handle (N.Remove { dir = dirs.(d); name = file_name n }))
  | Arename (d1, n1, d2, n2) ->
    outcome_string
      (handle
         (N.Rename
            { from_dir = dirs.(d1); from_name = file_name n1; to_dir = dirs.(d2); to_name = file_name n2 }))
  | Amkdir_file_clash (d, n) ->
    outcome_string (handle (N.Mkdir { dir = dirs.(d); name = file_name n; mode = 0o755 }))
  | Aread (d, n) ->
    (match lookup d n with
     | Some (fh, a) -> outcome_string (handle (N.Read { fh; off = 0; len = a.N.size }))
     | None -> "no-file")

(* Observable final state: sorted (dir, name, size, content digest). *)
let snapshot sys dirs =
  let handle req = sys.Systems.server.Server.handle req in
  List.concat
    (List.mapi
       (fun d dir ->
         match handle (N.Readdir dir) with
         | N.R_entries es ->
           List.map
             (fun (e : N.dirent) ->
               match handle (N.Getattr e.N.fh) with
               | N.R_attr a ->
                 let digest =
                   match handle (N.Read { fh = e.N.fh; off = 0; len = a.N.size }) with
                   | N.R_data b -> Digest.to_hex (Digest.bytes b)
                   | _ -> "?"
                 in
                 Printf.sprintf "%d/%s size=%d %s" d e.N.name a.N.size digest
               | _ -> Printf.sprintf "%d/%s ?" d e.N.name)
             es
         | _ -> [ Printf.sprintf "%d unreadable" d ])
       (Array.to_list dirs))
  |> List.sort compare

let setup sys =
  Array.init 2 (fun i ->
      match
        sys.Systems.server.Server.handle
          (N.Mkdir { dir = sys.Systems.server.Server.root; name = dir_name i; mode = 0o755 })
      with
      | N.R_fh (fh, _) -> fh
      | _ -> failwith "setup mkdir")

let gen_ops =
  QCheck.Gen.(
    list_size (1 -- 40)
      (oneof
         [
           map2 (fun d n -> Acreate (d, n)) (0 -- 1) (0 -- 4);
           (let* d = 0 -- 1 and* n = 0 -- 4 and* off = 0 -- 6000 and* len = 1 -- 5000 and* c = char_range 'a' 'z' in
            return (Awrite (d, n, off, len, c)));
           map3 (fun d n s -> Atruncate (d, n, s)) (0 -- 1) (0 -- 4) (0 -- 8000);
           map2 (fun d n -> Aremove (d, n)) (0 -- 1) (0 -- 4);
           (let* d1 = 0 -- 1 and* n1 = 0 -- 4 and* d2 = 0 -- 1 and* n2 = 0 -- 4 in
            return (Arename (d1, n1, d2, n2)));
           map2 (fun d n -> Amkdir_file_clash (d, n)) (0 -- 1) (0 -- 4);
           map2 (fun d n -> Aread (d, n)) (0 -- 1) (0 -- 4);
         ]))

let pp_aop = function
  | Acreate (d, n) -> Printf.sprintf "create(%d,%d)" d n
  | Awrite (d, n, off, len, c) -> Printf.sprintf "write(%d,%d,%d,%d,%c)" d n off len c
  | Atruncate (d, n, s) -> Printf.sprintf "trunc(%d,%d,%d)" d n s
  | Aremove (d, n) -> Printf.sprintf "rm(%d,%d)" d n
  | Arename (a, b, c, d) -> Printf.sprintf "mv(%d,%d->%d,%d)" a b c d
  | Amkdir_file_clash (d, n) -> Printf.sprintf "mkdir(%d,%d)" d n
  | Aread (d, n) -> Printf.sprintf "read(%d,%d)" d n

let arb_ops =
  QCheck.make ~print:(fun l -> String.concat "; " (List.map pp_aop l)) gen_ops

let run_equivalence ops =
  let systems =
    (* Content retention on the S4 drives: we compare actual bytes.
       The sharded arrays must be indistinguishable from the
       single-drive systems at the NFS surface: a 1-shard array is the
       router's identity case, and a 3-shard array additionally
       exercises placement, forwarding and the meta shard. *)
    Systems.all_four ~disk_mb:128 ~drive_config:Systems.content_drive_config ()
    @ [
        Systems.s4_array ~disk_mb:128 ~drive_config:Systems.content_drive_config ~shards:1 ();
        Systems.s4_array ~disk_mb:128 ~drive_config:Systems.content_drive_config ~shards:3 ();
      ]
  in
  let states =
    List.map
      (fun sys ->
        let dirs = setup sys in
        let outcomes = List.map (apply sys dirs) ops in
        (sys.Systems.name, outcomes, snapshot sys dirs))
      systems
  in
  match states with
  | [] -> true
  | (_, ref_out, ref_snap) :: rest ->
    List.for_all
      (fun (name, out, snap) ->
        if out <> ref_out then begin
          QCheck.Test.fail_reportf "%s diverged in outcomes:\n%s\nvs\n%s" name
            (String.concat ";" out) (String.concat ";" ref_out)
        end;
        if snap <> ref_snap then begin
          QCheck.Test.fail_reportf "%s diverged in final state:\n%s\nvs\n%s" name
            (String.concat "\n" snap) (String.concat "\n" ref_snap)
        end;
        true)
      rest

let prop_four_systems_agree =
  QCheck.Test.make ~name:"all four systems implement identical NFS semantics" ~count:30 arb_ops
    run_equivalence

(* A couple of fixed regression sequences (cheap to debug when they
   break). *)
let test_fixed_sequence () =
  let ops =
    [
      Acreate (0, 0);
      Awrite (0, 0, 0, 100, 'x');
      Acreate (0, 0);
      (* EEXIST everywhere *)
      Arename (0, 0, 1, 1);
      Awrite (1, 1, 50, 100, 'y');
      Atruncate (1, 1, 70);
      Aread (1, 1);
      Aremove (0, 0);
      (* ENOENT everywhere *)
      Amkdir_file_clash (1, 1);
      (* EEXIST *)
      Aremove (1, 1);
    ]
  in
  check Alcotest.bool "agree" true (run_equivalence ops)

let test_sparse_and_grow () =
  let ops =
    [ Acreate (0, 2); Awrite (0, 2, 7000, 10, 'z'); Aread (0, 2); Atruncate (0, 2, 9000); Aread (0, 2) ]
  in
  check Alcotest.bool "agree" true (run_equivalence ops)

(* --- Tracing is observationally free ---------------------------------- *)

(* The span tracer's hard correctness requirement: with tracing
   enabled, a run must be bit- and simulated-time-identical to the
   same run untraced. We drive two fresh instances of the same system
   through the same operation sequence — one traced, one not — then
   compare the final simulated clock and a sector-by-sector digest of
   every member disk. *)

module Trace = S4_obs.Trace
module Check = S4_obs.Check
module Simclock = S4_util.Simclock
module Sim_disk = S4_disk.Sim_disk
module Geometry = S4_disk.Geometry
module Log = S4_seglog.Log
module Drive = S4.Drive
module Audit = S4.Audit
module Router = S4_shard.Router

let disk_digest disk =
  let g = Sim_disk.geometry disk in
  let chunk = 4096 in
  let b = Buffer.create 1024 in
  let lba = ref 0 in
  while !lba < g.Geometry.sectors do
    let n = min chunk (g.Geometry.sectors - !lba) in
    Buffer.add_string b (Digest.to_hex (Digest.bytes (Sim_disk.peek disk ~lba:!lba ~sectors:n)));
    lba := !lba + n
  done;
  Digest.to_hex (Digest.string (Buffer.contents b))

let member_disks sys =
  match sys.Systems.router with
  | Some r -> List.map (fun d -> Log.disk (Drive.log d)) (Router.all_drives r)
  | None -> [ sys.Systems.disk ]

let trace_free_ops =
  [
    Acreate (0, 0); Awrite (0, 0, 0, 3000, 'a'); Acreate (1, 1);
    Awrite (1, 1, 500, 2000, 'b'); Aread (0, 0); Atruncate (0, 0, 1200);
    Arename (0, 0, 1, 2); Aread (1, 2); Aremove (1, 1); Awrite (1, 2, 100, 400, 'c');
    Amkdir_file_clash (1, 2); Aread (1, 2);
  ]

let run_traced_pair mk =
  (* Untraced reference run. *)
  let ref_sys = mk () in
  let ref_dirs = setup ref_sys in
  let ref_out = List.map (apply ref_sys ref_dirs) trace_free_ops in
  let ref_snap = snapshot ref_sys ref_dirs in
  let ref_clock = Simclock.now ref_sys.Systems.clock in
  let ref_digests = List.map disk_digest (member_disks ref_sys) in
  (* Same workload with the tracer on for the whole run. *)
  Trace.clear ();
  Trace.enable ();
  let sys, out, snap =
    Fun.protect ~finally:Trace.disable (fun () ->
        let sys = mk () in
        let dirs = setup sys in
        let out = List.map (apply sys dirs) trace_free_ops in
        (sys, out, snapshot sys dirs))
  in
  let clock = Simclock.now sys.Systems.clock in
  let digests = List.map disk_digest (member_disks sys) in
  check (Alcotest.list Alcotest.string) "traced run: same op outcomes" ref_out out;
  check (Alcotest.list Alcotest.string) "traced run: same final namespace" ref_snap snap;
  check Alcotest.int64 "traced run: identical final simulated clock" ref_clock clock;
  check (Alcotest.list Alcotest.string) "traced run: identical disk images" ref_digests digests;
  check Alcotest.bool "tracer actually recorded spans" true (Trace.count () > 0);
  sys

let test_tracing_free_single_drive () =
  let sys =
    run_traced_pair (fun () ->
        Systems.s4_nfs_server ~disk_mb:64 ~drive_config:Systems.content_drive_config ())
  in
  (* The trace and the audit log independently witnessed the same run:
     make them corroborate each other, exhaustively in both
     directions. *)
  let drive = Option.get sys.Systems.drive in
  let audit =
    List.map
      (fun (r : Audit.record) ->
        { Check.a_at = r.Audit.at; a_op = r.Audit.op; a_oid = r.Audit.oid; a_ok = r.Audit.ok })
      (Audit.records (Drive.audit drive) ())
  in
  let r = Check.run ~audit ~complete:true (Trace.spans ()) in
  if r.Check.violations <> [] then
    Alcotest.failf "trace checker: %s" (String.concat "; " r.Check.violations);
  check Alcotest.bool "audit records matched to spans" true (r.Check.audit_matched > 0);
  Trace.clear ()

let test_tracing_free_array () =
  let sys =
    run_traced_pair (fun () ->
        Systems.s4_array ~disk_mb:64 ~drive_config:Systems.content_drive_config ~shards:3 ())
  in
  ignore sys;
  let r = Check.run (Trace.spans ()) in
  if r.Check.violations <> [] then
    Alcotest.failf "trace checker: %s" (String.concat "; " r.Check.violations);
  Trace.clear ()

(* --- The network layer is semantically invisible ---------------------- *)

(* Serving every S4 RPC through the wire codec and a server session
   (loopback transport) must be indistinguishable from calling the
   drive in process: same NFS outcomes, same namespace, and — because
   the net layer adds no simulated time — the same final simulated
   clock and a sector-identical disk image. *)

let run_networked_pair ops =
  let mk f = f ?disk_mb:(Some 64) ?drive_config:(Some Systems.content_drive_config) () in
  let run sys =
    let dirs = setup sys in
    let out = List.map (apply sys dirs) ops in
    ( out,
      snapshot sys dirs,
      Simclock.now sys.Systems.clock,
      List.map disk_digest (member_disks sys) )
  in
  let d_out, d_snap, d_clock, d_digests = run (mk Systems.s4_direct) in
  let l_out, l_snap, l_clock, l_digests = run (mk Systems.s4_loopback) in
  check (Alcotest.list Alcotest.string) "networked: same op outcomes" d_out l_out;
  check (Alcotest.list Alcotest.string) "networked: same final namespace" d_snap l_snap;
  check Alcotest.int64 "networked: identical final simulated clock" d_clock l_clock;
  check (Alcotest.list Alcotest.string) "networked: identical disk images" d_digests l_digests

let test_networked_fixed () = run_networked_pair trace_free_ops

let prop_networked_agree =
  QCheck.Test.make ~name:"loopback-served S4 is bit-identical to in-process" ~count:15 arb_ops
    (fun ops ->
      run_networked_pair ops;
      true)

let () =
  Alcotest.run "s4_equivalence"
    [
      ( "differential",
        [
          Alcotest.test_case "fixed sequence" `Quick test_fixed_sequence;
          Alcotest.test_case "sparse and grow" `Quick test_sparse_and_grow;
          qtest prop_four_systems_agree;
        ] );
      ( "traced",
        [
          Alcotest.test_case "tracing is free (single drive)" `Quick
            test_tracing_free_single_drive;
          Alcotest.test_case "tracing is free (3-shard array)" `Quick test_tracing_free_array;
        ] );
      ( "networked",
        [
          Alcotest.test_case "fixed sequence over loopback" `Quick test_networked_fixed;
          qtest prop_networked_agree;
        ] );
    ]
