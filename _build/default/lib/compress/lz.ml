module Bcodec = S4_util.Bcodec

let magic = 0x5A4C (* "LZ" *)
let window = 1 lsl 16
let min_match = 4
let max_match = min_match + 255
let hash_bits = 15
let hash_size = 1 lsl hash_bits

(* Hash of the 4 bytes starting at [i]. *)
let hash4 b i =
  let v =
    Char.code (Bytes.unsafe_get b i)
    lor (Char.code (Bytes.unsafe_get b (i + 1)) lsl 8)
    lor (Char.code (Bytes.unsafe_get b (i + 2)) lsl 16)
    lor (Char.code (Bytes.unsafe_get b (i + 3)) lsl 24)
  in
  (v * 2654435761) lsr (31 - hash_bits) land (hash_size - 1)

let match_length b i j limit =
  let n = ref 0 in
  while !n < limit && Bytes.unsafe_get b (i + !n) = Bytes.unsafe_get b (j + !n) do
    incr n
  done;
  !n

let compress input =
  let n = Bytes.length input in
  let w = Bcodec.writer ~capacity:(n / 2 + 16) () in
  Bcodec.w_u16 w magic;
  Bcodec.w_int w n;
  (* head.(h): most recent position with hash h; chain.(pos mod window):
     previous position with the same hash. *)
  let head = Array.make hash_size (-1) in
  let chain = Array.make window (-1) in
  let flags = Buffer.create 1 in
  let group = Buffer.create 64 in
  let nflags = ref 0 in
  let flagbyte = ref 0 in
  let flush_group () =
    if !nflags > 0 then begin
      Bcodec.w_u8 w !flagbyte;
      Bcodec.w_raw w (Buffer.to_bytes group);
      Buffer.clear group;
      flagbyte := 0;
      nflags := 0
    end
  in
  ignore flags;
  let add_literal c =
    Buffer.add_char group c;
    incr nflags;
    if !nflags = 8 then flush_group ()
  in
  let add_match ~offset ~len =
    flagbyte := !flagbyte lor (1 lsl !nflags);
    Buffer.add_char group (Char.chr (offset land 0xFF));
    Buffer.add_char group (Char.chr ((offset lsr 8) land 0xFF));
    Buffer.add_char group (Char.chr (len - min_match));
    incr nflags;
    if !nflags = 8 then flush_group ()
  in
  let insert pos =
    if pos + min_match <= n then begin
      let h = hash4 input pos in
      chain.(pos land (window - 1)) <- head.(h);
      head.(h) <- pos
    end
  in
  let find_match pos =
    if pos + min_match > n then None
    else begin
      let h = hash4 input pos in
      let limit = min max_match (n - pos) in
      let best_len = ref 0 and best_off = ref 0 in
      let cand = ref head.(h) in
      let tries = ref 32 in
      while !cand >= 0 && !tries > 0 do
        if pos - !cand < window && pos - !cand > 0 then begin
          let len = match_length input !cand pos limit in
          if len > !best_len then begin
            best_len := len;
            best_off := pos - !cand
          end
        end;
        let next = chain.(!cand land (window - 1)) in
        cand := if next < !cand then next else -1;
        decr tries
      done;
      if !best_len >= min_match then Some (!best_off, !best_len) else None
    end
  in
  let pos = ref 0 in
  while !pos < n do
    (match find_match !pos with
     | Some (offset, len) ->
       add_match ~offset ~len;
       for p = !pos to !pos + len - 1 do
         insert p
       done;
       pos := !pos + len
     | None ->
       add_literal (Bytes.get input !pos);
       insert !pos;
       incr pos)
  done;
  flush_group ();
  Bcodec.contents w

let decompress input =
  let r = Bcodec.reader input in
  let m = Bcodec.r_u16 r in
  if m <> magic then raise (Bcodec.Decode_error "Lz: bad magic");
  let n = Bcodec.r_int r in
  let out = Bytes.create n in
  let opos = ref 0 in
  while !opos < n do
    let flagbyte = Bcodec.r_u8 r in
    let i = ref 0 in
    while !i < 8 && !opos < n do
      if flagbyte land (1 lsl !i) <> 0 then begin
        let lo = Bcodec.r_u8 r in
        let hi = Bcodec.r_u8 r in
        let len = Bcodec.r_u8 r + min_match in
        let offset = lo lor (hi lsl 8) in
        if offset = 0 || offset > !opos || !opos + len > n then
          raise (Bcodec.Decode_error "Lz: bad match");
        (* Byte-by-byte copy: matches may overlap themselves. *)
        for k = 0 to len - 1 do
          Bytes.unsafe_set out (!opos + k) (Bytes.unsafe_get out (!opos - offset + k))
        done;
        opos := !opos + len
      end
      else begin
        Bytes.set out !opos (Char.chr (Bcodec.r_u8 r));
        incr opos
      end;
      incr i
    done
  done;
  out

let ratio input =
  let n = Bytes.length input in
  if n = 0 then 1.0
  else float_of_int (Bytes.length (compress input)) /. float_of_int n
