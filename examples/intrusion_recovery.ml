(* The paper's motivating scenario, end to end.

   An intruder compromises a user account on the host, scrubs the
   system log, trojans a daemon binary, plants a backdoor and covers
   their tracks. The host OS is helpless — but the storage is
   self-securing: the administrator uses the drive's audit log to
   diagnose the intrusion and the history pool to restore the system,
   without reinstalling and without losing the legitimate work that
   happened before the break-in.

   Run with: dune exec examples/intrusion_recovery.exe *)

module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Drive = S4.Drive
module Rpc = S4.Rpc
module N = S4_nfs.Nfs_types
module Translator = S4_nfs.Translator
module History = S4_tools.History
module Recovery = S4_tools.Recovery
module Diagnosis = S4_tools.Diagnosis
module Diag_target = S4_tools.Target

let section title = Printf.printf "\n=== %s ===\n" title

let write tr path s =
  match Translator.write_file tr path (Bytes.of_string s) with
  | Ok fh -> fh
  | Error e -> Format.kasprintf failwith "write %s: %a" path N.pp_error e

let cat tr path =
  match Translator.read_file tr path with
  | Ok b -> Bytes.to_string b
  | Error e -> Format.kasprintf failwith "read %s: %a" path N.pp_error e

let () =
  let clock = Simclock.create () in
  let disk =
    Sim_disk.create ~geometry:(Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(128 * 1024 * 1024)) clock
  in
  let drive = Drive.format disk in
  (* The legitimate user's NFS mount (Fig. 1b configuration). *)
  let user_cred = Rpc.user_cred ~user:1 ~client:10 in
  let tr = Translator.mount ~cred:user_cred (Translator.Local drive) in

  section "day 1: normal operation";
  ignore (write tr "var/log/auth.log" "08:00 login alice from 10.0.0.5\n08:30 logout alice\n");
  ignore (write tr "usr/sbin/sshd" "SSHD-BINARY v1.2.27 (clean build)");
  ignore (write tr "home/alice/thesis.tex" "\\chapter{Introduction} Storage that defends itself...");
  Printf.printf "system files and user data written\n";
  Simclock.advance clock (Simclock.of_seconds 3600.0);
  let pre_intrusion = Simclock.now clock in

  section "day 2: the intrusion (using the stolen account)";
  (* The intruder holds alice's credential — exactly the threat model:
     compromising the host gains real users' identities. *)
  let dirty = Translator.mount ~cred:user_cred (Translator.Local drive) in
  ignore (write dirty "usr/sbin/sshd" "SSHD-BINARY v1.2.27 +BACKDOOR on port 31337");
  ignore (write dirty "var/log/auth.log" "08:00 login alice from 10.0.0.5\n08:30 logout alice\n");
  (* ^ log scrubbed: the intruder's own login line never appears *)
  ignore (write dirty "tmp/.hidden_rootkit.sh" "#!/bin/sh\nnc -l 31337 -e /bin/sh\n");
  (* The legitimate user keeps working, entangling her changes. *)
  Simclock.advance clock (Simclock.of_seconds 600.0);
  ignore (write tr "home/alice/thesis.tex" "\\chapter{Introduction} Storage that defends itself. NEW PARAGRAPH written after the break-in.");
  Printf.printf "log scrubbed, daemon trojaned, rootkit planted; user kept working\n";

  (* The intruder tries to destroy the evidence wholesale — and cannot:
     destructive administrative commands need the admin credential. *)
  (match Drive.handle drive user_cred (Rpc.Flush { until = Int64.max_int }) with
   | Rpc.R_error Rpc.Permission_denied -> Printf.printf "intruder's Flush attempt: DENIED (and audited)\n"
   | _ -> failwith "security perimeter breached!");

  section "day 3: diagnosis from inside the perimeter";
  Simclock.advance clock (Simclock.of_seconds 3600.0);
  let report = Diagnosis.damage_report ~client:10 ~since:pre_intrusion ~until:(Simclock.now clock) (Diag_target.of_drive drive) in
  Printf.printf "objects touched by the compromised client since the intrusion:\n";
  List.iter (fun a -> Format.printf "  %a@." Diagnosis.pp_activity a) report;
  let denials = Diagnosis.suspicious_denials ~since:pre_intrusion ~until:(Simclock.now clock) (Diag_target.of_drive drive) in
  Printf.printf "denied (probing) requests: %d\n" (List.length denials);

  (* The scrubbed log lines are still in the history pool. (The
     admin's client caches nothing from before the intrusion.) *)
  Translator.invalidate_caches tr;
  let h = History.create drive in
  Printf.printf "\nauth.log as the intruder left it:\n  %S\n" (cat tr "var/log/auth.log");
  (match History.cat_path h ~at:pre_intrusion "var/log/auth.log" with
   | Ok b -> Printf.printf "auth.log as it really was (history pool):\n  %S\n" (Bytes.to_string b)
   | Error m -> failwith m);
  (* Even the deleted rootkit would be recoverable; here it still sits
     in tmp — show the trojan diff instead. *)
  (match History.cat_path h ~at:pre_intrusion "usr/sbin/sshd" with
   | Ok b -> Printf.printf "sshd before: %S\n" (Bytes.to_string b)
   | Error m -> failwith m);
  Printf.printf "sshd now:    %S\n" (cat tr "usr/sbin/sshd");

  section "recovery: restore the system tree, keep the user's new work";
  let rec_ = Recovery.create drive in
  (match Recovery.restore_tree rec_ ~at:pre_intrusion ~path:"usr" with
   | Ok r -> Format.printf "usr: %a@." Recovery.pp_report r
   | Error m -> failwith m);
  (match Recovery.restore_tree rec_ ~at:pre_intrusion ~path:"var" with
   | Ok r -> Format.printf "var: %a@." Recovery.pp_report r
   | Error m -> failwith m);
  (* tmp did not even exist before the intrusion, so the rootkit is
     removed surgically (the damage report above pointed straight at
     it); the object itself stays in the history pool as evidence. *)
  ignore rec_;
  Translator.invalidate_caches tr;
  (match Translator.lookup_path tr "tmp" with
   | Ok (dir, _) ->
     (match Translator.handle tr (N.Remove { dir; name = ".hidden_rootkit.sh" }) with
      | N.R_unit -> Printf.printf "tmp: rootkit removed from the namespace\n"
      | _ -> failwith "remove rootkit")
   | Error e -> Format.kasprintf failwith "lookup tmp: %a" N.pp_error e);
  Translator.invalidate_caches tr;
  Printf.printf "\nafter recovery:\n";
  Printf.printf "  sshd     : %S\n" (cat tr "usr/sbin/sshd");
  Printf.printf "  auth.log : %S\n" (cat tr "var/log/auth.log");
  Printf.printf "  thesis   : %S\n" (cat tr "home/alice/thesis.tex");
  (match Translator.lookup_path tr "tmp/.hidden_rootkit.sh" with
   | Error N.Enoent -> Printf.printf "  rootkit  : gone from the namespace\n"
   | _ -> failwith "rootkit survived?!");
  (* ... but the forensic copy is still there for the investigators. *)
  match History.cat_path h ~at:(Int64.add pre_intrusion (Simclock.of_seconds 300.0)) "tmp/.hidden_rootkit.sh" with
  | Ok b -> Printf.printf "  evidence : %S (from the history pool)\n" (Bytes.to_string b)
  | Error m -> failwith m
