lib/multi/mirror.mli: S4
