test/test_tools.ml: Alcotest Bytes Filename Format Fun Int64 List S4 S4_disk S4_nfs S4_seglog S4_tools S4_util Sys
