lib/baseline/upfs.mli: S4_disk S4_nfs
