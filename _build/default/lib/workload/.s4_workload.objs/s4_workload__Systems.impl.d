lib/workload/systems.ml: Int64 S4 S4_baseline S4_disk S4_nfs S4_seglog S4_store S4_util
