test/test_workload.ml: Alcotest Bytes Filename Float List Option S4 S4_compress S4_nfs S4_util S4_workload
