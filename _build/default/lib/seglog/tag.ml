module Bcodec = S4_util.Bcodec

type t =
  | Data of { oid : int64; fblock : int }
  | Journal
  | Checkpoint of { oid : int64 }
  | Ckpack
  | Objmap
  | Audit
  | Summary
  | Unknown

let equal a b = a = b

let encode w = function
  | Data { oid; fblock } ->
    Bcodec.w_u8 w 0;
    Bcodec.w_i64 w oid;
    Bcodec.w_int w fblock
  | Journal -> Bcodec.w_u8 w 1
  | Checkpoint { oid } ->
    Bcodec.w_u8 w 2;
    Bcodec.w_i64 w oid
  | Ckpack -> Bcodec.w_u8 w 7
  | Objmap -> Bcodec.w_u8 w 3
  | Audit -> Bcodec.w_u8 w 4
  | Summary -> Bcodec.w_u8 w 5
  | Unknown -> Bcodec.w_u8 w 6

let decode r =
  match Bcodec.r_u8 r with
  | 0 ->
    let oid = Bcodec.r_i64 r in
    let fblock = Bcodec.r_int r in
    Data { oid; fblock }
  | 1 -> Journal
  | 2 ->
    let oid = Bcodec.r_i64 r in
    Checkpoint { oid }
  | 3 -> Objmap
  | 4 -> Audit
  | 5 -> Summary
  | 6 -> Unknown
  | 7 -> Ckpack
  | k -> raise (Bcodec.Decode_error (Printf.sprintf "Tag: bad kind %d" k))

let pp ppf = function
  | Data { oid; fblock } -> Format.fprintf ppf "data(%Ld,%d)" oid fblock
  | Journal -> Format.fprintf ppf "journal"
  | Checkpoint { oid } -> Format.fprintf ppf "checkpoint(%Ld)" oid
  | Ckpack -> Format.fprintf ppf "ckpack"
  | Objmap -> Format.fprintf ppf "objmap"
  | Audit -> Format.fprintf ppf "audit"
  | Summary -> Format.fprintf ppf "summary"
  | Unknown -> Format.fprintf ppf "unknown"

let oid = function
  | Data { oid; _ } | Checkpoint { oid } -> Some oid
  | Journal | Ckpack | Objmap | Audit | Summary | Unknown -> None
