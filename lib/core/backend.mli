(** The one backend call surface.

    Every S4 request producer in the repo — the in-process drive, a
    mirrored pair behind a shard router, the sharded array itself, the
    wire-protocol client, the modelled-network client stub — exposes
    this single record, and every consumer (NFS translator, s4cli,
    crashtest, the benches) speaks it. It replaces the translator's
    private [backend] record and the half-dozen near-duplicate
    [Drive.handle]-shaped closures that used to be rebuilt at each
    layer boundary.

    The surface is {e vectored}: {!submit} takes an array of requests
    and returns the positionally matching array of responses. Requests
    execute in array order with full per-request semantics (throttle,
    ACL check, audit record, trace span), but the durability barrier
    — when [sync:true] — is paid {e once}, after the last request
    (group commit). Atomicity is per-request: a failed request yields
    its [R_error] in its slot and the rest of the batch still runs.
    If the end-of-batch barrier itself fails, every response that
    reported success is rewritten to the barrier's [Io_error] — the
    caller must not believe un-persisted mutations are stable, exactly
    as with single-request [sync]. *)

type t = {
  clock : S4_util.Simclock.t;  (** the clock every request charges *)
  keep_data : bool;
      (** whether the backing store retains object contents (content
          systems) or only sizes (timing-only benchmark config) *)
  capacity : unit -> int * int;
      (** (total bytes, free bytes) of the backing store *)
  submit : Rpc.credential -> ?sync:bool -> Rpc.req array -> Rpc.resp array;
      (** Execute a batch in order; one durability barrier at batch
          end when [sync]. Response [i] answers request [i]. An empty
          batch with [sync:true] is a pure barrier (no audit records). *)
  close : unit -> unit;
      (** Release transport resources (sockets, threads). In-process
          backends make this a no-op. *)
}

val handle : t -> Rpc.credential -> ?sync:bool -> Rpc.req -> Rpc.resp
(** Single-request compatibility shim: [submit] of a one-element
    batch. [handle b cred ~sync req] is bit-for-bit equivalent to the
    old per-layer [handle] functions. *)

val make :
  clock:S4_util.Simclock.t ->
  keep_data:bool ->
  capacity:(unit -> int * int) ->
  ?close:(unit -> unit) ->
  (Rpc.credential -> ?sync:bool -> Rpc.req array -> Rpc.resp array) ->
  t

val of_handle :
  clock:S4_util.Simclock.t ->
  keep_data:bool ->
  capacity:(unit -> int * int) ->
  ?close:(unit -> unit) ->
  (Rpc.credential -> ?sync:bool -> Rpc.req -> Rpc.resp) ->
  t
(** Wrap a legacy single-request handler that has no native group
    commit: the batch runs one request at a time with [sync:false]
    and, when [sync], the barrier is a trailing [Rpc.Sync] request.
    Producers with a real group-commit path (drive, router, wire
    client) should implement [submit] natively instead. *)
