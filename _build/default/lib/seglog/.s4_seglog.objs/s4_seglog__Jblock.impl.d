lib/seglog/jblock.ml: Bytes Int32 Int64 List S4_util
