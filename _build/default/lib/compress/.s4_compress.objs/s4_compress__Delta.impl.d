lib/compress/delta.ml: Bytes Char Hashtbl Int32 List Option Printf S4_util
