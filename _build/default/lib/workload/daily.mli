(** Daily-write-rate workloads from the three studies the paper's
    Figure 7 projects from:

    - Spasojevic & Satyanarayanan's AFS study: ~143 MB/day per server;
    - Vogels' Windows NT study: ~1 GB/day per server;
    - Santry et al. (Elephant): ~110 MB/day.

    Besides the published rates (used analytically by
    {!S4_analysis.Capacity}), this module can {e replay} a scaled-down
    version of a study against a real S4 drive to measure actual
    history-pool growth per day, including metadata overheads the
    analytical projection ignores. *)

type study = {
  study_name : string;
  description : string;
  daily_write_bytes : int;
}

val afs : study
val nt : study
val santry : study
val all : study list

type measurement = {
  m_study : string;
  days : int;
  scale : float;  (** fraction of the study's daily volume replayed *)
  history_bytes_per_day : float;  (** measured, at replay scale *)
  scaled_up_bytes_per_day : float;  (** extrapolated to full volume *)
  metadata_fraction : float;  (** journal+checkpoint share of growth *)
}

val replay : ?seed:int -> ?scale:float -> ?days:int -> study -> Systems.t -> measurement
(** Replays [days] (default 5) simulated days at [scale] (default
    0.01) of the study's write volume — a mix of new files, overwrites
    and appends — against an S4 system, running the drive cleaner once
    per simulated day. Requires a system with a drive. *)

val pp_measurement : Format.formatter -> measurement -> unit
