(** Disk geometry and mechanical service-time parameters.

    The simulator needs only enough geometry to reproduce the relative
    cost of sequential vs. random access: seek as a function of
    distance, rotational latency, and media transfer rate. *)

type t = {
  name : string;
  sector_size : int;  (** bytes per sector (512 throughout) *)
  sectors : int;  (** total capacity in sectors *)
  rpm : int;  (** spindle speed *)
  track_sectors : int;  (** sectors per track (averaged over zones) *)
  min_seek_ms : float;  (** track-to-track *)
  avg_seek_ms : float;
  max_seek_ms : float;  (** full stroke *)
  transfer_mb_s : float;  (** sustained media rate, MB/s *)
}

val cheetah_9gb : t
(** Seagate Cheetah 9LP-class drive: the 9 GB 10 000 RPM Ultra2 SCSI
    disk used in the paper's experimental setup. *)

val cheetah_2gb : t
(** The same mechanics restricted to a 2 GB address space; used for the
    Figure 5 cleaner experiment, which the paper ran on a 2 GB disk. *)

val modern_50gb : t
(** A 2000-era 50 GB drive for the Figure 7 capacity analysis. *)

val with_capacity : t -> bytes:int -> t
(** Same mechanics, different capacity. *)

val capacity_bytes : t -> int

val encode : S4_util.Bcodec.writer -> t -> unit
(** Append the full geometry to a writer; the codec shared by the
    serialized-image format and the file-backed store header. *)

val decode : S4_util.Bcodec.reader -> t
(** @raise S4_util.Bcodec.Decode_error on truncation or an implausible
    geometry (non-positive sector size or count). *)

val rotation_ms : t -> float
(** Time of one full revolution in milliseconds. *)

val seek_ms : t -> distance_sectors:int -> float
(** Seek time for a head movement spanning the given LBA distance,
    using the standard [min + (max-min) * sqrt(d/D)] model; 0 for
    distance 0. *)

val transfer_ms : t -> bytes:int -> float
val pp : Format.formatter -> t -> unit
