module Histogram = S4_util.Histogram

(* Domain-safe registry. Counters are [Atomic.t] cells so concurrent
   [incr]s from server threads or shard worker domains never lose an
   update (the old [int ref] read-modify-write did); the tables and
   histogram buffers are guarded by one registry mutex, taken only on
   first-use registration and on the (rare, report-time) read paths.
   The hot path — bumping an existing counter — is one Hashtbl lookup
   plus one [Atomic.fetch_and_add], no lock. That lock-free lookup is
   safe because counters are never removed except by [reset], which is
   documented as quiescent-only. *)

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counters_tbl : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 64
let histograms_tbl : (string, Histogram.t) Hashtbl.t = Hashtbl.create 64

let counter_cell name =
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> c
  | None ->
    locked (fun () ->
        match Hashtbl.find_opt counters_tbl name with
        | Some c -> c
        | None ->
          let c = Atomic.make 0 in
          Hashtbl.replace counters_tbl name c;
          c)

let incr ?(by = 1) name = ignore (Atomic.fetch_and_add (counter_cell name) by)

(* Gauge semantics: overwrite instead of accumulate (e.g. a decaying
   per-client byte counter exported on each refresh). *)
let set name v = Atomic.set (counter_cell name) v

let observe name v =
  locked (fun () ->
      let h =
        match Hashtbl.find_opt histograms_tbl name with
        | Some h -> h
        | None ->
          let h = Histogram.create () in
          Hashtbl.replace histograms_tbl name h;
          h
      in
      Histogram.add h v)

let counter name =
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> Atomic.get c
  | None -> 0

let histogram name = locked (fun () -> Hashtbl.find_opt histograms_tbl name)

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters () = locked (fun () -> sorted_bindings counters_tbl Atomic.get)
let histograms () = locked (fun () -> sorted_bindings histograms_tbl Fun.id)

let reset () =
  locked (fun () ->
      Hashtbl.reset counters_tbl;
      Hashtbl.reset histograms_tbl)

let pp ppf () =
  let cs = counters () and hs = histograms () in
  if cs = [] && hs = [] then Format.fprintf ppf "(no metrics recorded)"
  else begin
    List.iter (fun (name, v) -> Format.fprintf ppf "%-32s %d@." name v) cs;
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf "%-32s n=%d mean=%.1f p50=%.1f p95=%.1f max=%.1f@." name
          (Histogram.count h) (Histogram.mean h) (Histogram.percentile h 50.0)
          (Histogram.percentile h 95.0) (Histogram.max_value h))
      hs
  end
