(* Tests for the comparison servers: update-in-place NFS (FFS/ext2)
   and the conventional-versioning space model. *)

module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module N = S4_nfs.Nfs_types
module Upfs = S4_baseline.Upfs
module Nv = S4_baseline.Naive_versioning

let check = Alcotest.check

let geom mb = Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(mb * 1024 * 1024)

let mk ?(mb = 256) ?(cfg = Upfs.ffs) () =
  let clock = Simclock.create () in
  let disk = Sim_disk.create ~geometry:(geom mb) clock in
  (clock, disk, Upfs.create cfg disk)

let fh_of = function
  | N.R_fh (fh, _) -> fh
  | N.R_error e -> Alcotest.failf "error %a" N.pp_error e
  | _ -> Alcotest.fail "expected fh"

let create t ~dir name = fh_of (Upfs.handle t (N.Create { dir; name; mode = 0o644 }))
let mkdir t ~dir name = fh_of (Upfs.handle t (N.Mkdir { dir; name; mode = 0o755 }))

let write t fh off s =
  match Upfs.handle t (N.Write { fh; off; data = Bytes.of_string s }) with
  | N.R_attr a -> a
  | _ -> Alcotest.fail "write"

let read t fh off len =
  match Upfs.handle t (N.Read { fh; off; len }) with
  | N.R_data b -> Bytes.to_string b
  | _ -> Alcotest.fail "read"

(* --- Upfs functional behaviour ---------------------------------------- *)

let test_upfs_basic () =
  let _, _, t = mk () in
  let root = Upfs.root t in
  let d = mkdir t ~dir:root "dir" in
  let f = create t ~dir:d "file" in
  let a = write t f 0 "some content" in
  check Alcotest.int "size" 12 a.N.size;
  check Alcotest.string "read" "some content" (read t f 0 100);
  check Alcotest.string "offset" "content" (read t f 5 100)

let test_upfs_namespace () =
  let _, _, t = mk () in
  let root = Upfs.root t in
  let d = mkdir t ~dir:root "d" in
  ignore (create t ~dir:d "a");
  ignore (create t ~dir:d "b");
  (match Upfs.handle t (N.Readdir d) with
   | N.R_entries es ->
     check (Alcotest.list Alcotest.string) "entries" [ "a"; "b" ]
       (List.sort compare (List.map (fun e -> e.N.name) es))
   | _ -> Alcotest.fail "readdir");
  (match Upfs.handle t (N.Remove { dir = d; name = "a" }) with
   | N.R_unit -> ()
   | _ -> Alcotest.fail "remove");
  match Upfs.handle t (N.Lookup { dir = d; name = "a" }) with
  | N.R_error N.Enoent -> ()
  | _ -> Alcotest.fail "a should be gone"

let test_upfs_rename_and_overwrite () =
  let _, _, t = mk () in
  let root = Upfs.root t in
  let f = create t ~dir:root "x" in
  ignore (write t f 0 "XX");
  let g = create t ~dir:root "y" in
  ignore (write t g 0 "YY");
  (match Upfs.handle t (N.Rename { from_dir = root; from_name = "x"; to_dir = root; to_name = "y" }) with
   | N.R_unit -> ()
   | _ -> Alcotest.fail "rename");
  match Upfs.handle t (N.Lookup { dir = root; name = "y" }) with
  | N.R_fh (fh, _) ->
    check Alcotest.int64 "x took y's place" f fh;
    check Alcotest.string "content" "XX" (read t fh 0 10)
  | _ -> Alcotest.fail "lookup y"

let test_upfs_truncate_grow_shrink () =
  let _, _, t = mk () in
  let root = Upfs.root t in
  let f = create t ~dir:root "t" in
  ignore (write t f 0 "0123456789");
  (match Upfs.handle t (N.Setattr { fh = f; mode = None; size = Some 3 }) with
   | N.R_attr a -> check Alcotest.int "shrunk" 3 a.N.size
   | _ -> Alcotest.fail "setattr");
  check Alcotest.string "prefix" "012" (read t f 0 100);
  (match Upfs.handle t (N.Setattr { fh = f; mode = None; size = Some 6 }) with
   | N.R_attr a -> check Alcotest.int "grown" 6 a.N.size
   | _ -> Alcotest.fail "setattr grow");
  check Alcotest.string "zero filled" "012\000\000\000" (read t f 0 100)

let test_upfs_in_place_no_history () =
  (* The whole point of the baseline: overwrites destroy data. *)
  let _, _, t = mk () in
  let root = Upfs.root t in
  let f = create t ~dir:root "victim" in
  ignore (write t f 0 "original");
  ignore (write t f 0 "TAMPERED");
  check Alcotest.string "only the new data exists" "TAMPERED" (read t f 0 100)

let test_upfs_block_reuse () =
  (* Deleting a file frees its blocks for reuse — update-in-place. *)
  let _, _, t = mk ~mb:16 () in
  let root = Upfs.root t in
  (* Churn more data than the disk holds: only possible with reuse. *)
  for i = 0 to 63 do
    let f = create t ~dir:root (Printf.sprintf "f%d" i) in
    ignore (write t f 0 (String.make 500_000 'x'));
    match Upfs.handle t (N.Remove { dir = root; name = Printf.sprintf "f%d" i }) with
    | N.R_unit -> ()
    | _ -> Alcotest.fail "remove"
  done;
  match Upfs.handle t N.Statfs with
  | N.R_statfs { free_bytes; total_bytes } ->
    check Alcotest.bool "space reclaimed" true (free_bytes > total_bytes / 2)
  | _ -> Alcotest.fail "statfs"

let test_upfs_sync_metadata_writes () =
  let _, _, t = mk ~cfg:Upfs.ffs () in
  let root = Upfs.root t in
  for i = 0 to 19 do
    ignore (create t ~dir:root (Printf.sprintf "f%02d" i))
  done;
  (* FFS: synchronous metadata -> roughly one physical metadata write
     per metadata update (modulo the write-cache coalescing window). *)
  check Alcotest.bool "many metadata writes" true (Upfs.metadata_writes t > 10)

let test_ext2_coalesces_metadata () =
  let _, _, ffs = mk ~cfg:Upfs.ffs () in
  let _, _, ext2 = mk ~cfg:Upfs.ext2_sync () in
  let workload t =
    let root = Upfs.root t in
    for i = 0 to 99 do
      let f = create t ~dir:root (Printf.sprintf "f%03d" i) in
      ignore (write t f 0 "data")
    done
  in
  workload ffs;
  workload ext2;
  check Alcotest.bool "ext2 flaw: far fewer metadata I/Os" true
    (Upfs.metadata_writes ext2 * 3 < Upfs.metadata_writes ffs)

let test_ffs_slower_than_log_for_small_sync_writes () =
  (* Sanity of the core performance claim: synchronous in-place small
     writes cost positioning; check FFS costs real time. *)
  let clock, _, t = mk () in
  let root = Upfs.root t in
  let t0 = Simclock.now clock in
  for i = 0 to 49 do
    let f = create t ~dir:root (Printf.sprintf "s%d" i) in
    ignore (write t f 0 "tiny")
  done;
  let per_op = Simclock.to_seconds (Int64.sub (Simclock.now clock) t0) /. 100.0 in
  check Alcotest.bool "costs milliseconds per op" true (per_op > 0.001 && per_op < 0.05)

(* --- Naive versioning (Fig. 2 model) ----------------------------------- *)

let test_nv_direct_write () =
  let t = Nv.create () in
  Nv.write t ~off:0 ~len:4096;
  let s = Nv.stats t in
  check Alcotest.int "data" 1 s.Nv.data_blocks;
  check Alcotest.int "no indirects" 0 s.Nv.indirect_blocks;
  check Alcotest.int "inode copy" 1 s.Nv.inode_blocks

let test_nv_single_indirect () =
  let t = Nv.create () in
  (* Block index 12 (first beyond the 12 direct pointers). *)
  Nv.write t ~off:(12 * 4096) ~len:4096;
  let s = Nv.stats t in
  check Alcotest.int "one indirect copied" 1 s.Nv.indirect_blocks

let test_nv_double_indirect () =
  let t = Nv.create () in
  (* Beyond 12 + 1024 blocks: double-indirect territory. *)
  Nv.write t ~off:((12 + 1024 + 5) * 4096) ~len:4096;
  let s = Nv.stats t in
  check Alcotest.int "root + leaf copied" 2 s.Nv.indirect_blocks

let test_nv_triple_indirect () =
  let t = Nv.create () in
  Nv.write t ~off:((12 + 1024 + (1024 * 1024) + 5) * 4096) ~len:4096;
  let s = Nv.stats t in
  check Alcotest.int "three levels copied" 3 s.Nv.indirect_blocks

let test_nv_blowup_factor () =
  (* The paper's observation: repeatedly updating single blocks deep in
     a large file can cost ~4x the data in metadata copies. *)
  let t = Nv.create () in
  for i = 0 to 99 do
    Nv.write t ~off:((12 + 1024 + (1024 * 1024) + (i * 7)) * 4096) ~len:4096
  done;
  let factor = 1.0 +. Nv.metadata_overhead t in
  check Alcotest.bool "~4x growth" true (factor > 3.5 && factor <= 5.0)

let test_nv_shared_indirects_counted_once () =
  let t = Nv.create () in
  (* Two blocks under the same single-indirect block, one update. *)
  Nv.write t ~off:(13 * 4096) ~len:8192;
  let s = Nv.stats t in
  check Alcotest.int "data 2" 2 s.Nv.data_blocks;
  check Alcotest.int "indirect shared" 1 s.Nv.indirect_blocks;
  check Alcotest.int "one inode" 1 s.Nv.inode_blocks

let test_nv_vs_s4_journal_metadata () =
  (* Head-to-head with the real S4 store: same update pattern, compare
     metadata bytes. Journal-based metadata must be far smaller. *)
  let clock = Simclock.create () in
  let disk = Sim_disk.create ~geometry:(geom 128) clock in
  let log = S4_seglog.Log.create disk in
  let store = S4_store.Obj_store.create ~config:{ S4_store.Obj_store.default_config with keep_data = false } log in
  let oid = S4_store.Obj_store.create_object store in
  let nv = Nv.create () in
  (* Build a large file, then update single blocks through indirect
     territory. *)
  let base = (12 + 1024 + 50) * 4096 in
  S4_store.Obj_store.write store oid ~off:0 ~len:(base + 4096) ();
  Nv.write nv ~off:0 ~len:(base + 4096);
  let meta_before = (S4_store.Obj_store.stats store).S4_store.Obj_store.journal_bytes in
  let nv_meta_before = Nv.metadata_bytes nv in
  for i = 0 to 49 do
    let off = (12 + 1024 + i) * 4096 in
    S4_store.Obj_store.write store oid ~off ~len:4096 ();
    Nv.write nv ~off ~len:4096
  done;
  S4_store.Obj_store.sync store;
  let s4_meta = (S4_store.Obj_store.stats store).S4_store.Obj_store.journal_bytes - meta_before in
  let nv_meta = Nv.metadata_bytes nv - nv_meta_before in
  check Alcotest.bool "journal metadata 50x smaller" true (s4_meta * 50 < nv_meta)

let () =
  Alcotest.run "s4_baseline"
    [
      ( "upfs",
        [
          Alcotest.test_case "basic" `Quick test_upfs_basic;
          Alcotest.test_case "namespace" `Quick test_upfs_namespace;
          Alcotest.test_case "rename overwrite" `Quick test_upfs_rename_and_overwrite;
          Alcotest.test_case "truncate" `Quick test_upfs_truncate_grow_shrink;
          Alcotest.test_case "no history" `Quick test_upfs_in_place_no_history;
          Alcotest.test_case "block reuse" `Quick test_upfs_block_reuse;
          Alcotest.test_case "sync metadata" `Quick test_upfs_sync_metadata_writes;
          Alcotest.test_case "ext2 coalescing flaw" `Quick test_ext2_coalesces_metadata;
          Alcotest.test_case "sync write cost" `Quick test_ffs_slower_than_log_for_small_sync_writes;
        ] );
      ( "naive-versioning",
        [
          Alcotest.test_case "direct write" `Quick test_nv_direct_write;
          Alcotest.test_case "single indirect" `Quick test_nv_single_indirect;
          Alcotest.test_case "double indirect" `Quick test_nv_double_indirect;
          Alcotest.test_case "triple indirect" `Quick test_nv_triple_indirect;
          Alcotest.test_case "4x blowup" `Quick test_nv_blowup_factor;
          Alcotest.test_case "shared indirects" `Quick test_nv_shared_indirects_counted_once;
          Alcotest.test_case "vs S4 journal metadata" `Quick test_nv_vs_s4_journal_metadata;
        ] );
    ]
