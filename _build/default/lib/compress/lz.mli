(** LZSS-family byte-oriented compressor.

    Used by the cleaner's history-pool compaction and by the
    Section 5.2 differencing + compression study. The format is
    self-contained: a short header carrying the uncompressed length,
    then flag-byte groups of literals and (offset, length) matches over
    a 64 KiB window.

    This is not zlib, but it captures the same behaviour class (LZ77
    matching), which is all the paper's space-efficiency analysis
    depends on. *)

val compress : Bytes.t -> Bytes.t
(** Never fails; incompressible input grows by ~1/8 plus header. *)

val decompress : Bytes.t -> Bytes.t
(** Inverse of {!compress}.
    @raise S4_util.Bcodec.Decode_error on malformed input. *)

val ratio : Bytes.t -> float
(** [compressed_size / original_size] for the given input (1.0 for
    empty input). *)
