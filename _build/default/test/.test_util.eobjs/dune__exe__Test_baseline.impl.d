test/test_baseline.ml: Alcotest Bytes Int64 List Printf S4_baseline S4_disk S4_nfs S4_seglog S4_store S4_util String
