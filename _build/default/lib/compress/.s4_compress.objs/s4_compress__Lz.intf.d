lib/compress/lz.mli: Bytes
