(** Concurrent wire-protocol server for any {!S4.Backend.t}.

    The protocol engine is sans-IO: a {!Session.t} consumes raw bytes,
    parses frames, queues requests and produces response bytes, with no
    socket in sight. The deterministic loopback transport and the
    threaded TCP daemon both drive the exact same session code, so
    every protocol decision exercised over TCP is also exercised — byte
    for byte — in the deterministic test suite.

    {b Identity is connection-derived.} Whatever [client] id a request
    frame carries, the session overwrites it with the identity bound to
    the connection before the backend sees it. A compromised client
    host can therefore neither dodge the drive's growth throttle nor
    frame another machine in the audit trail — the self-securing
    boundary of the paper, applied to the network edge.

    {b Hostile input.} A frame {!Wire.decode} rejects is answered with
    a [Proto_error], counted under [net/decode_reject], reported to the
    backend's garbage-audit hook, and the connection is closed. Nothing
    a peer sends can make the server raise or allocate beyond the
    configured frame cap. *)

type audit_garbage = client:int -> info:string -> unit
(** Record a protocol-level rejection in the audit trail. *)

type config = {
  max_frame : int;  (** largest accepted frame payload, bytes *)
  max_inflight : int;
      (** queued-but-unexecuted requests per connection (a batch of
          [n] counts as [n]) *)
  max_io : int;  (** largest single read/write/append/truncate, bytes *)
  allow_admin : bool;
      (** accept frames whose credential claims [admin]; refuse with
          [Permission_denied] when false (admin stays console-only) *)
  max_batch : int;
      (** largest accepted [Batch] frame (requests per batch);
          advertised to v2 peers in [Stat_ack] *)
  lease_ns : int64;
      (** client-cache lease term: every successful [Read]/[Get_attr]
          reply on a v3 session carries an absolute expiry of
          [now + lease_ns], authorizing the client to serve that
          answer from its cache until then. The server honours the
          classic lease discipline in return: a mutation that could
          change what another client's live lease observes is delayed
          (the clock advances, counted under [net/lease_wait]) until
          that lease expires, so a cached read is never superseded
          while servable — which also bounds mutation latency by
          [lease_ns]; keep the term small. 0 grants no leases. *)
  qos : bool;
      (** serve queued work in weighted-fair order across {e every}
          session instead of per-session FIFO, so one flooding client
          cannot starve the rest (the paper's DoS stance, upgraded
          for multi-tenancy) *)
}

val default_config : config
(** 4 MiB frames, 64 in-flight, 16 MiB io, admin allowed, 256-request
    batches, no leases, FIFO scheduling. *)

type t

val create :
  ?config:config ->
  ?audit_garbage:audit_garbage ->
  ?weight_of:(int -> float) ->
  S4.Backend.t ->
  t
(** Serve any backend — a drive, a shard router, a mirrored pair.

    {b Threading model.} A {!S4.Backend.Serial} backend (a bare drive)
    is guarded by an internal server lock, so one server safely
    carries many concurrent connections to a single (single-owner)
    drive stack. When the backend declares itself
    {!S4.Backend.Domain_safe} (the shard router) and neither [qos] nor
    leases ([lease_ns = 0]) are enabled, that lock is bypassed:
    connections call straight into the backend, which handles its own
    synchronization — per-session request order is unchanged (each
    session drains its own FIFO), but independent sessions stop
    serializing at the server. Enabling [qos] or leases reinstates the
    lock, which then also guards the shared fair queue and the lease
    registry.

    [weight_of] is the per-client weight source sampled by the [qos]
    scheduler (default: everyone weighs 1.0). *)

val of_drive : ?config:config -> ?weight_of:(int -> float) -> S4.Drive.t -> t
(** [create] over {!S4.Drive.backend} with the drive's garbage-audit
    hook wired: garbage frames land in its audit log under op
    ["net_reject"]. When the drive runs a {!S4.Throttle} and no
    explicit [weight_of] is given, QoS weights come from
    {!S4.Throttle.weight}: a client with an active history-pool
    penalty is served proportionally less often. *)

val config : t -> config

val scheduler : t -> (unit -> unit) S4_qos.Wfq.t option
(** The shared weighted-fair queue, when [config.qos] is set — for
    observability ([Wfq.served], [Wfq.virtual_time]) in tests and
    benchmarks. *)

(** {1 Protocol sessions (sans-IO)} *)

module Session : sig
  type s

  val create : ?identity:int -> ?trace:bool -> t -> s
  (** A connection bound to [identity] (default 1, the translator's
      default credential client). [trace] (default false) wraps each
      executed request in a [net] span — only safe where the session
      runs on the tracer's thread, i.e. the loopback transport. *)

  val feed : s -> Bytes.t -> int -> int -> unit
  (** Consume raw bytes from the peer. Parses as many complete frames
      as are present; control frames are answered immediately, requests
      are queued for {!step}. Input after close is discarded. *)

  val step : s -> bool
  (** Execute one queued request — or one whole queued batch, as ONE
      vectored backend submission with a single group-commit barrier —
      under the server lock (or lock-free against a [Domain_safe]
      backend, see {!create}), and queue its response bytes. False if
      nothing was pending. *)

  val run : s -> unit
  (** {!step} until the pending queue is empty. In [qos] mode this
      drains the {e shared} weighted-fair queue: a session's [run] may
      execute other sessions' work (and emit into their buffers) in
      fair order. *)

  val output : s -> Bytes.t
  (** Drain the bytes owed to the peer (empty when none). *)

  val closing : s -> bool
  (** No further input will be accepted (goodbye, EOF or protocol
      error); pending requests are still executed and flushed. *)

  val finished : s -> bool
  (** Closing, nothing pending, nothing buffered: drop the connection. *)

  val identity : s -> int

  val version : s -> int
  (** Negotiated protocol version (set by the peer's [Hello]; starts
      at {!Wire.version}). Batch frames are refused below 2. *)
end

(** {1 TCP daemon} *)

type listener

val serve_tcp : ?host:string -> ?port:int -> t -> listener
(** Listen on [host:port] (default 127.0.0.1, port 0 = ephemeral) with
    one thread per connection. Connection identity is interned from the
    peer address: every distinct peer IP gets a distinct id, stable for
    the listener's lifetime. *)

val port : listener -> int
val connections : listener -> int
(** Connections accepted so far. *)

val shutdown : listener -> unit
(** Graceful: stop accepting, let every live connection drain its
    queued requests and flush responses, then join all threads. *)
