(** Shared alias so tool signatures read naturally. *)

type fh = int64
