module Daily = S4_workload.Daily

type projection = {
  p_study : string;
  daily_write_bytes : int;
  pool_bytes : int;
  baseline_days : float;
  differenced_days : float;
  compressed_days : float;
}

let default_pool_bytes = 10 * 1024 * 1024 * 1024
let paper_differencing_factor = 3.0
let paper_compression_factor = 5.0

let project ?(pool_bytes = default_pool_bytes) ?(diff_factor = paper_differencing_factor)
    ?(comp_factor = paper_compression_factor) (study : Daily.study) =
  if diff_factor < 1.0 || comp_factor < diff_factor then invalid_arg "Capacity.project";
  let baseline = float_of_int pool_bytes /. float_of_int study.Daily.daily_write_bytes in
  {
    p_study = study.Daily.study_name;
    daily_write_bytes = study.Daily.daily_write_bytes;
    pool_bytes;
    baseline_days = baseline;
    differenced_days = baseline *. diff_factor;
    compressed_days = baseline *. comp_factor;
  }

let project_all ?pool_bytes ?diff_factor ?comp_factor () =
  List.map (project ?pool_bytes ?diff_factor ?comp_factor) Daily.all

let pp_projection ppf p =
  Format.fprintf ppf "%-7s %7.1f MB/day -> baseline %6.1f d | +diff %6.1f d | +diff+comp %6.1f d"
    p.p_study
    (float_of_int p.daily_write_bytes /. 1048576.0)
    p.baseline_days p.differenced_days p.compressed_days
