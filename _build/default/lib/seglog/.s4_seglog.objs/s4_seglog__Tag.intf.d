lib/seglog/tag.mli: Format S4_util
