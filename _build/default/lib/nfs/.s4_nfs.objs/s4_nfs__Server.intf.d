lib/nfs/server.mli: Nfs_types S4_disk Translator
