(* Doubly-linked list threaded through a hash table; head = most
   recently used, tail = eviction victim. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable node_cost : int;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  table : ('k, ('k, 'v) node) Hashtbl.t;
  on_evict : 'k -> 'v -> unit;
  budget : int;
  mutable total_cost : int;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
}

let create ?(on_evict = fun _ _ -> ()) ~budget () =
  if budget < 0 then invalid_arg "Lru.create";
  {
    table = Hashtbl.create 1024;
    on_evict;
    budget;
    total_cost = 0;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
  }

let budget t = t.budget
let cost t = t.total_cost
let length t = Hashtbl.length t.table
let mem t k = Hashtbl.mem t.table k
let hits t = t.hits
let misses t = t.misses

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let is_head t n = match t.head with Some h -> h == n | None -> false

let touch t n =
  if not (is_head t n) then begin
    unlink t n;
    push_front t n
  end

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some n ->
    t.hits <- t.hits + 1;
    touch t n;
    Some n.value
  | None ->
    t.misses <- t.misses + 1;
    None

let peek t k = Option.map (fun n -> n.value) (Hashtbl.find_opt t.table k)

let drop_node t n ~evict =
  unlink t n;
  Hashtbl.remove t.table n.key;
  t.total_cost <- t.total_cost - n.node_cost;
  if evict then t.on_evict n.key n.value

let rec evict_until_fits t =
  if t.total_cost > t.budget && Hashtbl.length t.table > 1 then
    match t.tail with
    | Some n ->
      drop_node t n ~evict:true;
      evict_until_fits t
    | None -> ()
(* a single oversized entry is tolerated *)

let insert t k v ~cost =
  if cost < 0 then invalid_arg "Lru.insert: negative cost";
  (match Hashtbl.find_opt t.table k with
   | Some n ->
     t.total_cost <- t.total_cost - n.node_cost + cost;
     n.value <- v;
     n.node_cost <- cost;
     touch t n
   | None ->
     let n = { key = k; value = v; node_cost = cost; prev = None; next = None } in
     Hashtbl.replace t.table k n;
     t.total_cost <- t.total_cost + cost;
     push_front t n);
  evict_until_fits t

let remove t k =
  match Hashtbl.find_opt t.table k with
  | Some n -> drop_node t n ~evict:false
  | None -> ()

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.total_cost <- 0

let flush t =
  let rec loop () =
    match t.tail with
    | Some n ->
      drop_node t n ~evict:true;
      loop ()
    | None -> ()
  in
  loop ()

let iter t f = Hashtbl.iter (fun k n -> f k n.value) t.table
