(** Time-enhanced file system browsing (the paper's Section 3.6
    version/administration tools: "time-enhanced versions of standard
    utilities such as ls and cp").

    These tools bridge the gap between the raw versions the drive
    stores and a file-level view: they understand the NFS overlay
    (directory slots, attribute encoding) and use the drive's
    time-based read interface, so an administrator can explore the
    file system exactly as it was at any instant inside the detection
    window. *)

type t

val create : ?cred:S4.Rpc.credential -> S4.Drive.t -> t
(** Default credential: the administrator (needed to see other users'
    history and deleted objects). *)

val of_target : ?cred:S4.Rpc.credential -> Target.t -> t
(** Same, over a drive or a whole sharded array. *)

val mount_at : t -> ?at:int64 -> string -> (Nfs_fh.fh, string) result
(** Root handle of a partition as of [at] (PMount with time). *)

val ls : t -> ?at:int64 -> Nfs_fh.fh -> ((S4_nfs.Nfs_types.dirent * S4_nfs.Nfs_types.attr) list, string) result
(** Directory listing as of [at]. *)

val resolve : t -> ?at:int64 -> string -> (Nfs_fh.fh, string) result
(** Resolve a slash path from the "root" partition as of [at]. *)

val cat : t -> ?at:int64 -> Nfs_fh.fh -> (Bytes.t, string) result
(** Whole-file contents as of [at]. *)

val cat_path : t -> ?at:int64 -> string -> (Bytes.t, string) result

val stat : t -> ?at:int64 -> Nfs_fh.fh -> (S4_nfs.Nfs_types.attr, string) result

val versions_of : t -> Nfs_fh.fh -> S4_store.Entry.t list
(** Version-creating journal entries of an object, newest first
    (device-side administrative access). *)

val version_times : t -> Nfs_fh.fh -> int64 list
(** Distinct times at which the object changed, newest first — the
    instants worth passing as [?at]. *)
