module Bcodec = S4_util.Bcodec
module Crc32 = S4_util.Crc32

type instruction =
  | Copy of { src_off : int; len : int }
  | Insert of Bytes.t

let magic = 0x4C44 (* "DL" *)
let block = 16
let max_candidates = 8

let hash_block b i =
  (* FNV-1a over [block] bytes (62-bit truncated offset basis). *)
  let h = ref 0x2bf29ce484222325 in
  for k = i to i + block - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b k)) * 0x100000001b3
  done;
  !h land max_int

(* Index the source at block-aligned offsets. *)
let index_source source =
  let n = Bytes.length source in
  let idx : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  let off = ref 0 in
  while !off + block <= n do
    let h = hash_block source !off in
    let existing = Option.value ~default:[] (Hashtbl.find_opt idx h) in
    if List.length existing < max_candidates then Hashtbl.replace idx h (!off :: existing);
    off := !off + block
  done;
  idx

let extend_forward source target soff toff =
  let smax = Bytes.length source and tmax = Bytes.length target in
  let n = ref 0 in
  while
    soff + !n < smax
    && toff + !n < tmax
    && Bytes.unsafe_get source (soff + !n) = Bytes.unsafe_get target (toff + !n)
  do
    incr n
  done;
  !n

let extend_backward source target soff toff limit =
  let n = ref 0 in
  while
    !n < limit
    && soff - !n > 0
    && toff - !n > 0
    && Bytes.unsafe_get source (soff - !n - 1) = Bytes.unsafe_get target (toff - !n - 1)
  do
    incr n
  done;
  !n

let emit_insert w target ~from ~until =
  if until > from then begin
    Bcodec.w_u8 w 0;
    Bcodec.w_int w (until - from);
    Bcodec.w_raw w (Bytes.sub target from (until - from))
  end

let encode ~source ~target =
  let w = Bcodec.writer ~capacity:(Bytes.length target / 4 + 32) () in
  Bcodec.w_u16 w magic;
  Bcodec.w_int w (Bytes.length source);
  Bcodec.w_int w (Bytes.length target);
  Bcodec.w_u32 w (Int32.to_int (Crc32.bytes target) land 0xFFFFFFFF);
  let idx = index_source source in
  let n = Bytes.length target in
  let lit_start = ref 0 in
  let pos = ref 0 in
  while !pos + block <= n do
    let h = hash_block target !pos in
    let best = ref None in
    (match Hashtbl.find_opt idx h with
     | None -> ()
     | Some candidates ->
       let consider soff =
         if Bytes.sub source soff block = Bytes.sub target !pos block then begin
           let fwd = extend_forward source target soff !pos in
           let bwd = extend_backward source target soff !pos (!pos - !lit_start) in
           let total = fwd + bwd in
           match !best with
           | Some (_, _, best_total) when best_total >= total -> ()
           | _ -> best := Some (soff - bwd, !pos - bwd, total)
         end
       in
       List.iter consider candidates);
    (match !best with
     | Some (soff, toff, len) when len >= block ->
       emit_insert w target ~from:!lit_start ~until:toff;
       Bcodec.w_u8 w 1;
       Bcodec.w_int w soff;
       Bcodec.w_int w len;
       pos := toff + len;
       lit_start := !pos
     | Some _ | None -> incr pos)
  done;
  emit_insert w target ~from:!lit_start ~until:n;
  Bcodec.contents w

let read_header r =
  let m = Bcodec.r_u16 r in
  if m <> magic then raise (Bcodec.Decode_error "Delta: bad magic");
  let src_len = Bcodec.r_int r in
  let tgt_len = Bcodec.r_int r in
  let crc = Bcodec.r_u32 r in
  (src_len, tgt_len, crc)

let apply ~source ~delta =
  let r = Bcodec.reader delta in
  let src_len, tgt_len, crc = read_header r in
  if Bytes.length source <> src_len then
    raise (Bcodec.Decode_error "Delta: source length mismatch");
  let out = Bytes.create tgt_len in
  let opos = ref 0 in
  while !opos < tgt_len do
    match Bcodec.r_u8 r with
    | 0 ->
      let len = Bcodec.r_int r in
      if !opos + len > tgt_len then raise (Bcodec.Decode_error "Delta: insert overflow");
      let lit = Bcodec.r_raw r len in
      Bytes.blit lit 0 out !opos len;
      opos := !opos + len
    | 1 ->
      let soff = Bcodec.r_int r in
      let len = Bcodec.r_int r in
      if soff + len > src_len || !opos + len > tgt_len then
        raise (Bcodec.Decode_error "Delta: copy out of range");
      Bytes.blit source soff out !opos len;
      opos := !opos + len
    | op -> raise (Bcodec.Decode_error (Printf.sprintf "Delta: bad opcode %d" op))
  done;
  if Int32.to_int (Crc32.bytes out) land 0xFFFFFFFF <> crc then
    raise (Bcodec.Decode_error "Delta: target CRC mismatch");
  out

let instructions ~delta =
  let r = Bcodec.reader delta in
  let _, tgt_len, _ = read_header r in
  let rec loop acc produced =
    if produced >= tgt_len then List.rev acc
    else
      match Bcodec.r_u8 r with
      | 0 ->
        let len = Bcodec.r_int r in
        let lit = Bcodec.r_raw r len in
        loop (Insert lit :: acc) (produced + len)
      | 1 ->
        let src_off = Bcodec.r_int r in
        let len = Bcodec.r_int r in
        loop (Copy { src_off; len } :: acc) (produced + len)
      | op -> raise (Bcodec.Decode_error (Printf.sprintf "Delta: bad opcode %d" op))
  in
  loop [] 0

let saved ~source ~target =
  let n = Bytes.length target in
  if n = 0 then 0.0
  else begin
    let d = encode ~source ~target in
    1.0 -. (float_of_int (Bytes.length d) /. float_of_int n)
  end
