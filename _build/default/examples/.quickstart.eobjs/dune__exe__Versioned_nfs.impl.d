examples/versioned_nfs.ml: Bytes Format List Printf S4 S4_disk S4_nfs S4_tools S4_util String
