exception Closed
exception Timeout

type endpoint = {
  ep_peer : string;
  ep_send : Bytes.t -> unit;
  ep_recv : Bytes.t -> int -> int -> int;
  ep_set_timeout : float option -> unit;
  ep_close : unit -> unit;
}

type t = { label : string; connect : unit -> endpoint }

(* ------------------------------------------------------------------ *)
(* TCP                                                                 *)

let tcp ~host ~port =
  let peer = Printf.sprintf "%s:%d" host port in
  let connect () =
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> raise Closed)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (addr, port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    let closed = ref false in
    let ep_close () =
      if not !closed then begin
        closed := true;
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
    in
    let ep_send b =
      if !closed then raise Closed;
      let len = Bytes.length b in
      let off = ref 0 in
      try
        while !off < len do
          match Unix.write fd b !off (len - !off) with
          | n -> off := !off + n
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        ep_close ();
        raise Closed
    in
    let ep_recv buf off len =
      if !closed then raise Closed;
      match Unix.read fd buf off len with
      | n -> n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
        ->
        raise Timeout
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> raise Timeout
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
        ep_close ();
        raise Closed
    in
    let ep_set_timeout = function
      | None -> ( try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0. with Unix.Unix_error _ -> ())
      | Some s -> (
        try Unix.setsockopt_float fd Unix.SO_RCVTIMEO (max 0.001 s)
        with Unix.Unix_error _ -> ())
    in
    { ep_peer = peer; ep_send; ep_recv; ep_set_timeout; ep_close }
  in
  { label = "tcp:" ^ peer; connect }

(* ------------------------------------------------------------------ *)
(* Deterministic in-memory loopback                                    *)

let loopback ?(identity = 1) srv =
  let connect () =
    let sess = Server.Session.create ~identity ~trace:true srv in
    let closed = ref false in
    let pending = ref Bytes.empty in
    let ppos = ref 0 in
    let refill () =
      if !ppos >= Bytes.length !pending then begin
        Server.Session.run sess;
        pending := Server.Session.output sess;
        ppos := 0
      end
    in
    let ep_send b =
      if !closed || Server.Session.closing sess then raise Closed;
      Server.Session.feed sess b 0 (Bytes.length b);
      Server.Session.run sess
    in
    let ep_recv buf off len =
      if !closed then raise Closed;
      refill ();
      let avail = Bytes.length !pending - !ppos in
      if avail = 0 then
        if Server.Session.finished sess then 0 else raise Timeout
      else begin
        let n = min len avail in
        Bytes.blit !pending !ppos buf off n;
        ppos := !ppos + n;
        n
      end
    in
    {
      ep_peer = "loopback";
      ep_send;
      ep_recv;
      ep_set_timeout = (fun _ -> ());
      ep_close = (fun () -> closed := true);
    }
  in
  { label = "loopback"; connect }
