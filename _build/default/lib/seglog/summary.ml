module Bcodec = S4_util.Bcodec
module Crc32 = S4_util.Crc32

type t = { epoch : int; tags : Tag.t array }

let magic = 0x5353 (* "SS" *)

let encode ~block_size t =
  let w = Bcodec.writer ~capacity:block_size () in
  Bcodec.w_u16 w magic;
  Bcodec.w_int w t.epoch;
  Bcodec.w_int w (Array.length t.tags);
  Array.iter (Tag.encode w) t.tags;
  if Bcodec.length w + 4 > block_size then invalid_arg "Summary.encode: does not fit";
  let out = Bytes.make block_size '\000' in
  let body = Bcodec.contents w in
  Bytes.blit body 0 out 0 (Bytes.length body);
  let crc = Crc32.sub out ~pos:0 ~len:(block_size - 4) in
  Bcodec.set_u32 out (block_size - 4) (Int32.to_int crc land 0xFFFFFFFF);
  out

let decode b =
  let n = Bytes.length b in
  if n < 10 then None
  else if Bcodec.get_u16 b 0 <> magic then None
  else begin
    let stored = Bcodec.get_u32 b (n - 4) in
    let crc = Int32.to_int (Crc32.sub b ~pos:0 ~len:(n - 4)) land 0xFFFFFFFF in
    if stored <> crc then None
    else begin
      try
        let r = Bcodec.reader ~pos:2 b in
        let epoch = Bcodec.r_int r in
        let count = Bcodec.r_int r in
        let tags = Array.init count (fun _ -> Tag.decode r) in
        Some { epoch; tags }
      with Bcodec.Decode_error _ -> None
    end
  end
