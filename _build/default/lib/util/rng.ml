type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: used only to expand the integer seed into four non-zero
   state words, as recommended by the xoshiro authors. *)
let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let st = ref (bits64 t) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

(* Top 62 bits as a non-negative OCaml int. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  (* Rejection sampling to avoid modulo bias. *)
  let max_int62 = (1 lsl 62) - 1 in
  let limit = max_int62 - (max_int62 mod bound) in
  let rec loop () =
    let v = bits t in
    if v >= limit then loop () else v mod bound
  in
  loop ()

let int_in t ~min ~max =
  if max < min then invalid_arg "Rng.int_in";
  min + int t (max - min + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (int t 256))
  done;
  b

let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Rng.zipf";
  if theta <= 0.0 || theta >= 1.0 then invalid_arg "Rng.zipf theta";
  (* Power-law approximation: floor(n * u^(1/(1-theta))) is heavily
     skewed toward 0; adequate for generating skewed file popularity. *)
  let u = float t 1.0 in
  let r = int_of_float (float_of_int n *. (u ** (1.0 /. (1.0 -. theta) *. 2.0))) in
  if r >= n then n - 1 else r
