module N = S4_nfs.Nfs_types
module Server = S4_nfs.Server
module Sim_disk = S4_disk.Sim_disk
module Simclock = S4_util.Simclock
module Lru = S4_store.Lru

type config = {
  name : string;
  block_size : int;
  groups : int;
  metadata_coalesce : int;
  cache_bytes : int;
  cpu_us_per_op : float;
}

let ffs =
  {
    name = "BSD-FFS/NFS";
    block_size = 8192;
    groups = 64;
    metadata_coalesce = 1;
    cache_bytes = 448 * 1024 * 1024;
    cpu_us_per_op = 150.0;
  }

let ext2_sync =
  {
    name = "Linux-ext2/NFS(sync)";
    block_size = 4096;
    groups = 64;
    metadata_coalesce = 8;
    cache_bytes = 448 * 1024 * 1024;
    cpu_us_per_op = 130.0;
  }

type group = {
  g_inode_base : int;  (* block addr of the inode region *)
  g_data_base : int;
  g_limit : int;  (* first block beyond the group *)
  mutable g_next : int;
  mutable g_free : int list;
}

type t = {
  cfg : config;
  disk : Sim_disk.t;
  clock : Simclock.t;
  spb : int;  (* sectors per block *)
  inode_region : int;  (* blocks per group reserved for inodes *)
  grps : group array;
  attrs : (N.fh, N.attr) Hashtbl.t;
  contents : (N.fh, Bytes.t) Hashtbl.t;  (* regular files and symlinks *)
  maps : (N.fh, int list) Hashtbl.t;  (* fh -> allocated block addrs *)
  dirs : (N.fh, N.dirent list) Hashtbl.t;
  groups_of : (N.fh, int) Hashtbl.t;
  cache : (int, unit) Lru.t;
  mutable next_fh : int64;
  mutable meta_pending : int;
  mutable meta_writes : int;
  mutable data_writes : int;
  mutable op_serial : int;
  recent_meta : (int, int) Hashtbl.t;  (* block addr -> op serial of last write *)
  root : N.fh;
}

exception Err of N.error

let fail e = raise (Err e)
let now t = Simclock.now t.clock
let cpu t = Simclock.advance t.clock (Simclock.of_us t.cfg.cpu_us_per_op)

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)

let alloc_in g =
  match g.g_free with
  | a :: rest ->
    g.g_free <- rest;
    Some a
  | [] ->
    if g.g_next < g.g_limit then begin
      let a = g.g_next in
      g.g_next <- a + 1;
      Some a
    end
    else None

let alloc_block t ~group =
  let n = Array.length t.grps in
  let rec try_from i tried =
    if tried >= n then fail N.Enospc
    else
      match alloc_in t.grps.(i mod n) with
      | Some a -> a
      | None -> try_from (i + 1) (tried + 1)
  in
  try_from group 0

let free_blocks t fh =
  match Hashtbl.find_opt t.maps fh with
  | None -> ()
  | Some blocks ->
    let group = Option.value ~default:0 (Hashtbl.find_opt t.groups_of fh) in
    let g = t.grps.(group) in
    g.g_free <- blocks @ g.g_free;
    Hashtbl.remove t.maps fh

(* ------------------------------------------------------------------ *)
(* Timed block I/O                                                     *)

let write_block t addr =
  Sim_disk.write t.disk ~tcq:true ~lba:(addr * t.spb) ~sectors:t.spb ();
  Lru.insert t.cache addr () ~cost:t.cfg.block_size

let read_block t addr =
  match Lru.find t.cache addr with
  | Some () -> ()
  | None ->
    Sim_disk.read t.disk ~lba:(addr * t.spb) ~sectors:t.spb;
    Lru.insert t.cache addr () ~cost:t.cfg.block_size

(* Synchronous-metadata policy with the ext2 coalescing flaw. A block
   rewritten within a couple of operations coalesces in the drive's
   write queue rather than paying another rotation. *)
let meta_write t addr =
  t.meta_pending <- t.meta_pending + 1;
  if t.meta_pending >= t.cfg.metadata_coalesce then begin
    t.meta_pending <- 0;
    match Hashtbl.find_opt t.recent_meta addr with
    | Some serial when t.op_serial - serial <= 2 -> ()
    | Some _ | None ->
      Hashtbl.replace t.recent_meta addr t.op_serial;
      t.meta_writes <- t.meta_writes + 1;
      write_block t addr
  end

let inode_addr t fh =
  let group = Option.value ~default:0 (Hashtbl.find_opt t.groups_of fh) in
  let g = t.grps.(group) in
  g.g_inode_base + Int64.to_int (Int64.rem fh (Int64.of_int t.inode_region))

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create cfg disk =
  let g = Sim_disk.geometry disk in
  let spb = cfg.block_size / g.S4_disk.Geometry.sector_size in
  let total_blocks = Sim_disk.capacity_sectors disk / spb in
  let span = total_blocks / cfg.groups in
  let inode_region = max 8 (span / 64) in
  let grps =
    Array.init cfg.groups (fun i ->
        let base = i * span in
        {
          g_inode_base = base;
          g_data_base = base + inode_region;
          g_limit = base + span;
          g_next = base + inode_region;
          g_free = [];
        })
  in
  let t =
    {
      cfg;
      disk;
      clock = Sim_disk.clock disk;
      spb;
      inode_region;
      grps;
      attrs = Hashtbl.create 4096;
      contents = Hashtbl.create 4096;
      maps = Hashtbl.create 4096;
      dirs = Hashtbl.create 256;
      groups_of = Hashtbl.create 4096;
      cache = Lru.create ~budget:cfg.cache_bytes ();
      next_fh = 2L;
      meta_pending = 0;
      meta_writes = 0;
      data_writes = 0;
      op_serial = 0;
      recent_meta = Hashtbl.create 1024;
      root = 2L;
    }
  in
  let root_attr = N.fresh_attr N.Fdir ~uid:0 ~now:0L in
  Hashtbl.replace t.attrs t.root root_attr;
  Hashtbl.replace t.dirs t.root [];
  Hashtbl.replace t.groups_of t.root 0;
  t.next_fh <- 3L;
  t

let root t = t.root
let metadata_writes t = t.meta_writes
let data_writes t = t.data_writes

(* ------------------------------------------------------------------ *)
(* Node helpers                                                        *)

let attr_of t fh =
  match Hashtbl.find_opt t.attrs fh with Some a -> a | None -> fail N.Enoent

let dir_of t fh =
  let a = attr_of t fh in
  if a.N.ftype <> N.Fdir then fail N.Enotdir;
  match Hashtbl.find_opt t.dirs fh with Some e -> e | None -> []

let set_attr t fh a = Hashtbl.replace t.attrs fh a

(* Directory contents occupy one or more blocks; namespace updates
   write the first dir block plus the directory inode. *)
let dir_block t fh =
  match Hashtbl.find_opt t.maps fh with
  | Some (a :: _) -> a
  | Some [] | None ->
    let group = Option.value ~default:0 (Hashtbl.find_opt t.groups_of fh) in
    let a = alloc_block t ~group in
    Hashtbl.replace t.maps fh [ a ];
    a

let write_dir t fh entries =
  Hashtbl.replace t.dirs fh entries;
  write_block t (dir_block t fh);
  meta_write t (inode_addr t fh);
  let a = attr_of t fh in
  set_attr t fh { a with N.mtime = now t }

let find_entry entries name = List.find_opt (fun (e : N.dirent) -> e.N.name = name) entries

let fresh_node t ~parent ~ftype ~mode =
  let fh = t.next_fh in
  t.next_fh <- Int64.add t.next_fh 1L;
  let group =
    match ftype with
    | N.Fdir ->
      (* Directories spread across groups (FFS policy). *)
      Int64.to_int (Int64.rem fh (Int64.of_int (Array.length t.grps)))
    | N.Freg | N.Flnk ->
      Option.value ~default:0 (Hashtbl.find_opt t.groups_of parent)
  in
  Hashtbl.replace t.groups_of fh group;
  let attr = { (N.fresh_attr ftype ~uid:1 ~now:(now t)) with N.mode } in
  Hashtbl.replace t.attrs fh attr;
  (match ftype with
   | N.Fdir -> Hashtbl.replace t.dirs fh []
   | N.Freg | N.Flnk -> Hashtbl.replace t.contents fh Bytes.empty);
  fh

let blocks_of_size t size = (size + t.cfg.block_size - 1) / t.cfg.block_size

(* Grow or shrink the physical block map to match [size]. *)
let resize_map t fh ~size =
  let want = blocks_of_size t size in
  let have = Option.value ~default:[] (Hashtbl.find_opt t.maps fh) in
  let n = List.length have in
  if want > n then begin
    let group = Option.value ~default:0 (Hashtbl.find_opt t.groups_of fh) in
    let fresh = List.init (want - n) (fun _ -> alloc_block t ~group) in
    Hashtbl.replace t.maps fh (have @ fresh)
  end
  else if want < n then begin
    let kept = List.filteri (fun i _ -> i < want) have in
    let dropped = List.filteri (fun i _ -> i >= want) have in
    let group = Option.value ~default:0 (Hashtbl.find_opt t.groups_of fh) in
    t.grps.(group).g_free <- dropped @ t.grps.(group).g_free;
    Hashtbl.replace t.maps fh kept
  end

let content_of t fh =
  match Hashtbl.find_opt t.contents fh with Some b -> b | None -> fail N.Eisdir

let blocks_in_range t fh ~off ~len =
  let blocks = Option.value ~default:[] (Hashtbl.find_opt t.maps fh) in
  let first = off / t.cfg.block_size in
  let last = if len = 0 then first - 1 else (off + len - 1) / t.cfg.block_size in
  List.filteri (fun i _ -> i >= first && i <= last) blocks

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)

let do_write t fh off data =
  let a = attr_of t fh in
  if a.N.ftype = N.Fdir then fail N.Eisdir;
  let len = Bytes.length data in
  let old = content_of t fh in
  let new_size = max (Bytes.length old) (off + len) in
  let merged =
    if Bytes.length old >= new_size then Bytes.copy old
    else begin
      let b = Bytes.make new_size '\000' in
      Bytes.blit old 0 b 0 (Bytes.length old);
      b
    end
  in
  Bytes.blit data 0 merged off len;
  Hashtbl.replace t.contents fh merged;
  resize_map t fh ~size:new_size;
  (* Synchronous data writes, block by block, at fixed locations. *)
  List.iter
    (fun addr ->
      t.data_writes <- t.data_writes + 1;
      write_block t addr)
    (blocks_in_range t fh ~off ~len);
  meta_write t (inode_addr t fh);
  let attr = { a with N.size = new_size; mtime = now t } in
  set_attr t fh attr;
  attr

let do_read t fh off len =
  let a = attr_of t fh in
  if a.N.ftype = N.Fdir then fail N.Eisdir;
  let content = content_of t fh in
  if off >= Bytes.length content then Bytes.empty
  else begin
    let len = min len (Bytes.length content - off) in
    List.iter (read_block t) (blocks_in_range t fh ~off ~len);
    Bytes.sub content off len
  end

let do_create t dir name mode ftype =
  let entries = dir_of t dir in
  (match find_entry entries name with Some _ -> fail N.Eexist | None -> ());
  let fh = fresh_node t ~parent:dir ~ftype ~mode in
  meta_write t (inode_addr t fh);
  write_dir t dir (entries @ [ { N.name; fh } ]);
  (fh, attr_of t fh)

let do_remove t dir name ~want_dir =
  let entries = dir_of t dir in
  match find_entry entries name with
  | None -> fail N.Enoent
  | Some { N.fh; _ } ->
    let a = attr_of t fh in
    (match (a.N.ftype, want_dir) with
     | N.Fdir, false -> fail N.Eisdir
     | (N.Freg | N.Flnk), true -> fail N.Enotdir
     | N.Fdir, true -> if dir_of t fh <> [] then fail N.Enotempty
     | (N.Freg | N.Flnk), false -> ());
    free_blocks t fh;
    Hashtbl.remove t.attrs fh;
    Hashtbl.remove t.contents fh;
    Hashtbl.remove t.dirs fh;
    meta_write t (inode_addr t fh);
    write_dir t dir (List.filter (fun (e : N.dirent) -> e.N.name <> name) entries)

let do_rename t from_dir from_name to_dir to_name =
  let src = dir_of t from_dir in
  match find_entry src from_name with
  | None -> fail N.Enoent
  | Some { N.fh; _ } ->
    (match find_entry (dir_of t to_dir) to_name with
     | Some target when target.N.fh <> fh ->
       free_blocks t target.N.fh;
       Hashtbl.remove t.attrs target.N.fh;
       Hashtbl.remove t.contents target.N.fh;
       Hashtbl.remove t.dirs target.N.fh
     | Some _ | None -> ());
    if from_dir = to_dir then begin
      let entries =
        List.filter (fun (e : N.dirent) -> e.N.name <> from_name && e.N.name <> to_name) src
        @ [ { N.name = to_name; fh } ]
      in
      write_dir t from_dir entries
    end
    else begin
      write_dir t from_dir (List.filter (fun (e : N.dirent) -> e.N.name <> from_name) src);
      let dst = dir_of t to_dir in
      write_dir t to_dir
        (List.filter (fun (e : N.dirent) -> e.N.name <> to_name) dst @ [ { N.name = to_name; fh } ])
    end

let do_setattr t fh mode size =
  let a = attr_of t fh in
  let a = match mode with Some m -> { a with N.mode = m } | None -> a in
  let a =
    match size with
    | Some s ->
      let content = content_of t fh in
      let b =
        if s <= Bytes.length content then Bytes.sub content 0 s
        else begin
          let b = Bytes.make s '\000' in
          Bytes.blit content 0 b 0 (Bytes.length content);
          b
        end
      in
      Hashtbl.replace t.contents fh b;
      resize_map t fh ~size:s;
      { a with N.size = s; mtime = now t }
    | None -> a
  in
  meta_write t (inode_addr t fh);
  set_attr t fh { a with N.ctime = now t };
  attr_of t fh

let statfs t =
  let total =
    Array.fold_left (fun acc g -> acc + (g.g_limit - g.g_data_base)) 0 t.grps * t.cfg.block_size
  in
  let used =
    Array.fold_left (fun acc g -> acc + (g.g_next - g.g_data_base - List.length g.g_free)) 0 t.grps
    * t.cfg.block_size
  in
  N.R_statfs { total_bytes = total; free_bytes = total - used }

let handle t req =
  t.op_serial <- t.op_serial + 1;
  cpu t;
  try
    match req with
    | N.Getattr fh -> N.R_attr (attr_of t fh)
    | N.Setattr { fh; mode; size } -> N.R_attr (do_setattr t fh mode size)
    | N.Lookup { dir; name } ->
      (match find_entry (dir_of t dir) name with
       | Some { N.fh; _ } -> N.R_fh (fh, attr_of t fh)
       | None -> N.R_error N.Enoent)
    | N.Readlink fh ->
      let a = attr_of t fh in
      if a.N.ftype <> N.Flnk then N.R_error (N.Eio "not a symlink")
      else N.R_link (Bytes.to_string (content_of t fh))
    | N.Read { fh; off; len } -> N.R_data (do_read t fh off len)
    | N.Write { fh; off; data } -> N.R_attr (do_write t fh off data)
    | N.Create { dir; name; mode } ->
      let fh, attr = do_create t dir name mode N.Freg in
      N.R_fh (fh, attr)
    | N.Remove { dir; name } ->
      do_remove t dir name ~want_dir:false;
      N.R_unit
    | N.Rename { from_dir; from_name; to_dir; to_name } ->
      do_rename t from_dir from_name to_dir to_name;
      N.R_unit
    | N.Mkdir { dir; name; mode } ->
      let fh, attr = do_create t dir name mode N.Fdir in
      N.R_fh (fh, attr)
    | N.Rmdir { dir; name } ->
      do_remove t dir name ~want_dir:true;
      N.R_unit
    | N.Readdir fh ->
      read_block t (dir_block t fh);
      N.R_entries (dir_of t fh)
    | N.Symlink { dir; name; target } ->
      let fh, _ = do_create t dir name 0o777 N.Flnk in
      Hashtbl.replace t.contents fh (Bytes.of_string target);
      let a = attr_of t fh in
      set_attr t fh { a with N.size = String.length target };
      N.R_unit
    | N.Statfs -> statfs t
  with
  | Err e -> N.R_error e
  | Invalid_argument m -> N.R_error (N.Eio m)

let server t =
  {
    Server.name = t.cfg.name;
    root = t.root;
    handle = handle t;
    reset_caches = (fun () -> Lru.clear t.cache);
  }
