(** Segment summary codec.

    A summary records, for every block slot of a segment, what was
    written there (its {!Tag.t}), plus the segment's allocation epoch —
    a monotonically increasing counter that lets crash recovery replay
    segments in the order they were filled. The summary occupies the
    last block slot of its segment and is written when the segment
    closes. *)

type t = { epoch : int; tags : Tag.t array }

val encode : block_size:int -> t -> Bytes.t
val decode : Bytes.t -> t option
(** [None] if the block is not a valid summary (magic/CRC). *)
