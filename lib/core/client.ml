module Net = S4_disk.Net

type t = { net : Net.t; drive : Drive.t; mutable rpcs : int }

let connect net drive = { net; drive; rpcs = 0 }
let net t = t.net
let drive t = t.drive
let rpc_count t = t.rpcs

let call t cred ?(sync = false) req =
  t.rpcs <- t.rpcs + 1;
  let resp = Drive.handle t.drive cred ~sync req in
  Net.rpc t.net ~req_bytes:(Rpc.req_wire_bytes req) ~resp_bytes:(Rpc.resp_wire_bytes resp);
  resp

let call_exn t cred ?sync req =
  match call t cred ?sync req with
  | Rpc.R_error e -> failwith (Format.asprintf "S4 RPC %s failed: %a" (Rpc.op_name req) Rpc.pp_error e)
  | resp -> resp

let submit t cred ?(sync = false) reqs =
  (* One batched submission crosses the network as one exchange, but
     each request still pays its transfer size; the drive does the
     group commit. *)
  t.rpcs <- t.rpcs + Array.length reqs;
  let resps = Drive.submit t.drive cred ~sync reqs in
  Array.iteri
    (fun i req ->
      Net.rpc t.net ~req_bytes:(Rpc.req_wire_bytes req)
        ~resp_bytes:(Rpc.resp_wire_bytes resps.(i)))
    reqs;
  resps

let backend t =
  Backend.make ~clock:(Drive.clock t.drive)
    ~keep_data:(S4_store.Obj_store.config (Drive.store t.drive)).S4_store.Obj_store.keep_data
    ~capacity:(fun () -> Drive.capacity t.drive)
    (submit t)
