lib/baseline/naive_versioning.mli:
