(** Small-file microbenchmark (the paper's Figure 6 workload):
    create 10 000 1 KB files split across 10 directories, read them
    back in creation order from cold caches, then delete them in
    creation order. Used to isolate the audit-log overhead. *)

type config = {
  files : int;
  directories : int;
  file_bytes : int;
  cold_read : bool;  (** drop all caches between create and read *)
}

val default : config

type result = {
  system : string;
  create_seconds : float;
  read_seconds : float;
  delete_seconds : float;
}

val run : ?config:config -> Systems.t -> result
val pp_result : Format.formatter -> result -> unit
