lib/store/obj_store.mli: Bytes Entry Format S4_seglog S4_util
