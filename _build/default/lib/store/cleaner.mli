(** History-pool cleaner (policy).

    Following the paper's design, the cleaner is object-aware rather
    than purely segment-oriented: it first *expires* journal entries
    (and the blocks they superseded) that have aged beyond the
    detection window — only aging may reclaim history — then reclaims
    fully dead segments for free, and finally *compacts* fragmented
    closed segments by moving their remaining live blocks to the log
    head (the extra reads this needs are the paper's explanation for
    S4 cleaning being costlier than stock LFS cleaning).

    The cleaner can run [charged] (its I/O competes with foreground
    work — the dashed line of Figure 5) or uncharged (state changes
    only — the "no cleaning cost" baseline). *)

type t

type report = {
  expired_entries : int;
  expired_blocks : int;
  expired_objects : int;
  segments_reclaimed : int;
  segments_compacted : int;
  blocks_moved : int;
  free_segments_before : int;
  free_segments_after : int;
}

val create :
  ?window:int64 ->
  ?live_threshold:float ->
  ?max_segments_per_run:int ->
  Obj_store.t ->
  t
(** Defaults: window 7 simulated days, compact closed segments whose
    live ratio is below [live_threshold] (0.75), at most
    [max_segments_per_run] (8) compactions per {!run}. *)

val window : t -> int64
val set_window : t -> int64 -> unit
(** The guaranteed detection window in simulated nanoseconds
    (administrative [SetWindow]). *)

type mode =
  | Charged  (** cleaner I/O fully competes with foreground (default) *)
  | Free  (** state changes only, no simulated cost — baselines *)
  | Overlapped
      (** cleaner I/O consumes idle disk time first; only the excess is
          charged (a background cleaner thread on a real system). The
          idle credit is supplied per run via [?idle_ns]. *)

val set_mode : t -> mode -> unit
val mode : t -> mode

val set_charged : t -> bool -> unit
(** [set_charged t false] = [set_mode t Free]; convenience. *)

val set_on_audit_move : t -> (Obj_store.addr -> Obj_store.addr -> unit) -> unit
(** Callback invoked when compaction relocates an audit-log block. *)

val cutoff : t -> int64
(** [now - window], clamped at 0: versions strictly older are
    reclaimable. *)

val run : ?idle_ns:int64 -> t -> report
(** One full pass: expire, reclaim, compact up to the per-run budget,
    then sync. In [Overlapped] mode, [idle_ns] is the foreground idle
    disk time available to absorb cleaning I/O. *)

val run_if_needed : t -> min_free_segments:int -> report option
(** {!run} only when free space is low. *)

val totals : t -> report
(** Cumulative counters across all runs. *)

type differencing = {
  history_blocks : int;
  history_bytes : int;
  delta_bytes : int;  (** after cross-version differencing *)
  delta_compressed_bytes : int;  (** differencing + LZ compression *)
}

val measure_differencing : t -> differencing
(** Size the history pool as-is, after xdelta-style differencing of
    each superseded block against its successor version, and after
    additionally LZ-compressing the deltas — the Section 5.2
    technology. Requires a store that keeps data contents; with
    [keep_data:false] the result degenerates (all-zero blocks). *)
