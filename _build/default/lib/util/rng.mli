(** Deterministic pseudo-random number generation.

    All simulation components draw randomness from an explicit [t] so
    that every benchmark and test run is reproducible. The generator is
    xoshiro256** seeded through SplitMix64, which has good statistical
    quality and is trivially portable. *)

type t

val create : seed:int -> t
(** Fresh generator; equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val split : t -> t
(** Derive a new, statistically independent generator. The parent
    stream advances. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be
    positive. Unbiased via rejection sampling. *)

val int_in : t -> min:int -> max:int -> int
(** Uniform in the inclusive range [\[min, max\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val bytes : t -> int -> Bytes.t
(** [bytes t n] is [n] random bytes. *)

val zipf : t -> n:int -> theta:float -> int
(** Zipf-like sample in [\[0, n)]: rank 0 most popular. [theta] in
    (0, 1); higher is more skewed. Uses the standard power
    approximation, adequate for workload generation. *)
