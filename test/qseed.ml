(* Reproducible qcheck runs: every property suite draws its random
   state from one seed, settable via S4_QCHECK_SEED. A failure prints
   the seed so the exact run can be replayed:

     S4_QCHECK_SEED=1234 dune runtest *)

let seed =
  match Sys.getenv_opt "S4_QCHECK_SEED" with
  | Some s ->
    (match int_of_string_opt s with
     | Some n -> n
     | None ->
       Printf.eprintf "S4_QCHECK_SEED=%S is not an integer\n%!" s;
       exit 2)
  | None -> 0x5345_4544 (* "SEED" *)

let qtest (QCheck2.Test.Test cell) =
  let name = QCheck2.Test.get_name cell in
  Alcotest.test_case name `Quick (fun () ->
      try QCheck2.Test.check_cell_exn ~rand:(Random.State.make [| seed |]) cell
      with e ->
        Printf.eprintf "qcheck %S failed (replay with S4_QCHECK_SEED=%d)\n%!" name seed;
        raise e)
