(** Host-file persistence for simulated disks.

    Lets tools (notably [bin/s4cli] and [bin/s4d]) keep a whole
    self-securing drive — geometry, simulated clock, and sparse sector
    contents — in an ordinary file across process runs, exercising the
    crash-recovery path ({!S4.Drive.attach}) on every load.

    Two on-disk formats exist:
    - {e serialized images} ("S4IMG2\n", legacy "S4IMG1\n"): a one-shot
      dump written by {!save}; v2 adds a trailing CRC-32 and every load
      bounds-checks the sector records against the declared geometry.
    - {e file-backed stores} ({!S4_disk.File_disk}, "S4FDSK1\n"):
      sectors live at fixed offsets and are pwritten as the drive runs,
      so acknowledged writes survive [kill -9].

    {!kind}, {!load_any} and {!save_any} dispatch on the format so the
    daemon and CLI work with either transparently. *)

val save : string -> S4_util.Simclock.t -> S4_disk.Sim_disk.t -> unit
(** Atomically replace [path] with a v2 image: write to [path ^ ".tmp"],
    fsync, rename over [path], and fsync the directory. A crash at any
    point leaves either the old or the new image, never a torn one.
    @raise Sys_error on I/O problems (the temp file is removed). *)

val load : string -> S4_util.Simclock.t * S4_disk.Sim_disk.t
(** Load a serialized image (v2 or legacy v1), verifying the v2
    checksum and bounds-checking the header and every sector record.
    @raise Failure ["<path>: not an S4 image"] on a foreign file,
    ["<path>: corrupt image (...)"] on a damaged one;
    @raise Sys_error on I/O problems. *)

type kind = Image | File_store | Unknown

val kind : string -> kind
(** Probe the first bytes of [path]; [Unknown] for unreadable or
    foreign files. *)

val load_any : ?dsync:bool -> string -> S4_util.Simclock.t * S4_disk.Sim_disk.t
(** Open either format: a file-backed store yields a disk whose writes
    persist as they happen ([dsync] selects [O_DSYNC] mode); a
    serialized image is loaded into memory as with {!load}.
    @raise Failure as {!load}, or "...: not an S4 image or file-backed
    store". *)

val save_any : string -> S4_util.Simclock.t -> S4_disk.Sim_disk.t -> unit
(** Persist the drive to [path]: a barrier ({!S4_disk.File_disk.sync})
    for file-backed disks, an atomic {!save} otherwise. *)
