test/test_util.ml: Alcotest Array Bytes Char Format Fun Gen List Printf QCheck QCheck_alcotest S4_store S4_util String
