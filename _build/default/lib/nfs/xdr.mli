(** XDR (RFC 1014) marshalling for the NFSv2 procedures used here.

    The simulator mostly needs message *sizes*, but encoding for real
    keeps the network model honest (RPC header, 32-byte opaque file
    handles, 4-byte alignment, padded strings) and gives the test suite
    a wire format to round-trip. Layouts follow RFC 1094; the RPC
    header is a fixed null-auth call/reply. *)

val proc_number : Nfs_types.req -> int
(** NFSv2 procedure number (GETATTR=1 ... STATFS=17). *)

val encode_req : xid:int -> Nfs_types.req -> Bytes.t
val decode_req : Bytes.t -> int * Nfs_types.req
(** Returns (xid, request).
    @raise S4_util.Bcodec.Decode_error on malformed input. *)

val encode_resp : xid:int -> proc:int -> Nfs_types.resp -> Bytes.t
val decode_resp : proc:int -> Bytes.t -> int * Nfs_types.resp
(** The reply body layout depends on the procedure, as in ONC RPC. *)

val req_wire_bytes : Nfs_types.req -> int
val resp_wire_bytes : Nfs_types.resp -> int
(** Exact encoded sizes (encoding then measuring). *)
