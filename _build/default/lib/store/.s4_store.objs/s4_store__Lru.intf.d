lib/store/lru.mli:
