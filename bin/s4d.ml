(* s4d: serve a self-securing drive image over the wire protocol.

     s4cli format -i disk.img --size-mb 64
     s4d -i disk.img --port 7777 &
     s4cli --connect 127.0.0.1:7777 write /etc/passwd --data "root:x:0:0"

   The daemon owns the image for its lifetime: it loads the drive at
   startup, serves any number of concurrent client connections, and on
   SIGINT/SIGTERM drains in-flight requests, flushes the audit log and
   saves the image back before exiting. *)

module Simclock = S4_util.Simclock
module Drive = S4.Drive
module Rpc = S4.Rpc
module Audit = S4.Audit
module Log = S4_seglog.Log
module Netserver = S4_net.Server

open Cmdliner

let image_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "i"; "image" ] ~docv:"FILE" ~doc:"Disk image file (create with s4cli format).")

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Listen address.")

let port_arg =
  Arg.(value & opt int 7777 & info [ "port" ] ~docv:"PORT" ~doc:"Listen port (0 = ephemeral).")

let max_frame_arg =
  Arg.(
    value
    & opt int Netserver.default_config.Netserver.max_frame
    & info [ "max-frame" ] ~docv:"BYTES" ~doc:"Largest accepted frame payload.")

let max_inflight_arg =
  Arg.(
    value
    & opt int Netserver.default_config.Netserver.max_inflight
    & info [ "max-inflight" ] ~docv:"N" ~doc:"Pipelined requests allowed per connection.")

let max_batch_arg =
  Arg.(
    value
    & opt int Netserver.default_config.Netserver.max_batch
    & info [ "max-batch" ] ~docv:"N"
        ~doc:"Largest accepted batch frame (advertised to v2 clients in Stat).")

let no_admin_arg =
  Arg.(
    value & flag
    & info [ "no-admin" ]
        ~doc:"Refuse admin credentials over the network (admin stays console-only).")

let max_seconds_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "max-seconds" ] ~docv:"SECS"
        ~doc:"Exit (gracefully) after this long; for scripted runs.")

let dsync_arg =
  Arg.(
    value & flag
    & info [ "dsync" ]
        ~doc:"Open a file-backed store with O_DSYNC (every write synchronous); ignored for \
              serialized images.")

let stop = ref false

let install_signals () =
  let handler = Sys.Signal_handle (fun _ -> stop := true) in
  (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ()

let run image host port max_frame max_inflight max_batch no_admin max_seconds dsync =
  if not (Sys.file_exists image) then begin
    Printf.eprintf "error: no such image %s (create one with: s4cli format -i %s)\n" image image;
    exit 1
  end;
  let clock, disk = S4_tools.Disk_image.load_any ~dsync image in
  let drive = Drive.attach disk in
  let config =
    {
      Netserver.default_config with
      Netserver.max_frame;
      max_inflight;
      max_batch;
      allow_admin = not no_admin;
    }
  in
  let srv = Netserver.of_drive ~config drive in
  let listener = Netserver.serve_tcp ~host ~port srv in
  install_signals ();
  Printf.printf "s4d: serving %s on %s:%d (window %.1f days, batches up to %d%s)\n%!" image
    host (Netserver.port listener)
    (Simclock.to_seconds (Drive.window drive) /. 86400.0)
    config.Netserver.max_batch
    (if no_admin then ", admin refused" else "");
  let t0 = Unix.gettimeofday () in
  while
    (not !stop)
    && match max_seconds with None -> true | Some s -> Unix.gettimeofday () -. t0 < s
  do
    Unix.sleepf 0.25
  done;
  Printf.printf "s4d: shutting down (%d connections served)\n%!"
    (Netserver.connections listener);
  Netserver.shutdown listener;
  (* The final flush must not fail silently: if any step errors, leave
     the previous on-disk image intact (save is atomic; a file-backed
     store keeps its last barrier) and exit nonzero so scripts notice. *)
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        Printf.eprintf "s4d: shutdown sync FAILED: %s (previous image kept)\n%!" s;
        exit 1)
      fmt
  in
  (match Drive.handle drive Rpc.admin_cred Rpc.Sync with
   | Rpc.R_unit -> ()
   | Rpc.R_error e -> fail "final Sync refused: %s" (Format.asprintf "%a" Rpc.pp_error e)
   | _ -> fail "final Sync returned an unexpected ack"
   | exception e -> fail "final Sync raised: %s" (Printexc.to_string e));
  (try
     Audit.flush (Drive.audit drive);
     Log.sync (Drive.log drive);
     S4_tools.Disk_image.save_any image clock disk;
     S4_disk.Sim_disk.close disk
   with e -> fail "%s" (Printexc.to_string e));
  Printf.printf "s4d: image saved\n%!"

let () =
  let doc = "network daemon for a simulated self-securing (S4) drive" in
  let info = Cmd.info "s4d" ~version:"1.0" ~doc in
  let term =
    Term.(
      const run $ image_arg $ host_arg $ port_arg $ max_frame_arg $ max_inflight_arg
      $ max_batch_arg $ no_admin_arg $ max_seconds_arg $ dsync_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
