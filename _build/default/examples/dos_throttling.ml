(* History-pool exhaustion attack and the drive's hybrid defence
   (Section 3.3): space exhaustion cannot be prevented outright, so the
   drive detects probable abuse and throttles the offending client,
   keeping well-behaved users responsive while the administrator
   reacts.

   Run with: dune exec examples/dos_throttling.exe *)

module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Drive = S4.Drive
module Rpc = S4.Rpc
module Throttle = S4.Throttle

let () =
  let clock = Simclock.create () in
  let disk =
    Sim_disk.create ~geometry:(Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(48 * 1024 * 1024)) clock
  in
  (* A small history reserve makes the attack bite quickly. *)
  let config =
    {
      Drive.default_config with
      Drive.history_reserve = 0.05;
      window = Int64.mul 365L (Int64.mul 86_400L 1_000_000_000L);
    }
  in
  let drive = Drive.format ~config disk in
  let attacker = Rpc.user_cred ~user:66 ~client:666 in
  let honest = Rpc.user_cred ~user:1 ~client:10 in

  let mk cred =
    match Drive.handle drive cred (Rpc.Create { acl = [] }) with
    | Rpc.R_oid oid -> oid
    | _ -> failwith "create"
  in
  let victim = mk attacker in
  let own = mk honest in

  let latency cred req =
    let t0 = Simclock.now clock in
    ignore (Drive.handle drive cred req);
    Int64.to_float (Int64.sub (Simclock.now clock) t0) /. 1e6
  in

  Printf.printf "baseline request latencies:\n";
  Printf.printf "  attacker getattr: %.2f ms\n" (latency attacker (Rpc.Get_attr { oid = victim; at = None }));
  Printf.printf "  honest   getattr: %.2f ms\n\n" (latency honest (Rpc.Get_attr { oid = own; at = None }));

  (* The attack: overwrite the same object over and over, pushing an
     unbounded stream of versions into the history pool. *)
  Printf.printf "attacker floods the history pool with overwrites...\n";
  let junk = Bytes.make 8192 'j' in
  let rounds = ref 0 in
  let throttled_at = ref None in
  (try
     for i = 1 to 4000 do
       (match Drive.handle drive attacker (Rpc.Write { oid = victim; off = 0; len = 8192; data = Some junk }) with
        | Rpc.R_error Rpc.No_space -> raise Exit
        | _ -> ());
       incr rounds;
       Simclock.advance clock (Simclock.of_ms 1.0);
       match (!throttled_at, Drive.throttle drive) with
       | None, Some th when Throttle.is_throttled th ~client:666 -> throttled_at := Some i
       | _ -> ()
     done
   with Exit -> ());
  ignore (Drive.handle drive attacker Rpc.Sync);
  Printf.printf "  %d overwrites accepted; pool pressure now %.0f%%\n" !rounds (100.0 *. Drive.pool_pressure drive);
  (match !throttled_at with
   | Some i -> Printf.printf "  abuse detected and throttling engaged after %d writes\n" i
   | None -> Printf.printf "  (throttle did not engage)\n");

  (match Drive.throttle drive with
   | Some th ->
     Printf.printf "\nper-client standing with the pool under pressure:\n";
     Printf.printf "  attacker share of recent growth: %.0f%%  throttled: %b\n"
       (100.0 *. Throttle.client_share th ~client:666)
       (Throttle.is_throttled th ~client:666);
     Printf.printf "  honest   share of recent growth: %.0f%%  throttled: %b\n"
       (100.0 *. Throttle.client_share th ~client:10)
       (Throttle.is_throttled th ~client:10)
   | None -> ());

  Printf.printf "\nlatencies under attack:\n";
  Printf.printf "  attacker getattr: %.2f ms  <- penalised\n"
    (latency attacker (Rpc.Get_attr { oid = victim; at = None }));
  Printf.printf "  honest   getattr: %.2f ms  <- unaffected\n"
    (latency honest (Rpc.Get_attr { oid = own; at = None }));

  (* The administrator reacts: shrink the window and flush the junk. *)
  Printf.printf "\nadministrator intervenes: SetWindow + Flush of the attack period\n";
  ignore (Drive.handle drive Rpc.admin_cred (Rpc.Set_window { window = Simclock.of_seconds 60.0 }));
  ignore (Drive.handle drive Rpc.admin_cred (Rpc.Flush { until = Simclock.now clock }));
  ignore (Drive.run_cleaner drive);
  Printf.printf "  pool pressure after flush: %.0f%%\n" (100.0 *. Drive.pool_pressure drive)
