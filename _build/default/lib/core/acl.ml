module Bcodec = S4_util.Bcodec

type perm =
  | Read
  | Write
  | Delete
  | Set_attr
  | Set_acl

type entry = { user : int; client : int; perms : perm list; recovery : bool }
type t = entry list

let any_user = -1
let any_client = -1
let all_perms = [ Read; Write; Delete; Set_attr; Set_acl ]
let owner_entry ~user = { user; client = any_client; perms = all_perms; recovery = true }
let public_read = { user = any_user; client = any_client; perms = [ Read ]; recovery = false }
let default ~owner = [ owner_entry ~user:owner ]

let matches e ~user ~client =
  (e.user = any_user || e.user = user) && (e.client = any_client || e.client = client)

let allows t ~user ~client perm =
  List.exists (fun e -> matches e ~user ~client && List.mem perm e.perms) t

let allows_recovery t ~user ~client =
  List.exists (fun e -> matches e ~user ~client && e.recovery) t

let find_by_user t ~user = List.find_opt (fun e -> e.user = user) t
let nth t i = List.nth_opt t i

let set_nth t i entry =
  if i >= List.length t then t @ [ entry ]
  else List.mapi (fun j e -> if j = i then entry else e) t

let perm_bit = function
  | Read -> 1
  | Write -> 2
  | Delete -> 4
  | Set_attr -> 8
  | Set_acl -> 16

let perms_of_bits bits =
  List.filter (fun p -> bits land perm_bit p <> 0) all_perms

let encode t =
  let w = Bcodec.writer () in
  Bcodec.w_int w (List.length t);
  List.iter
    (fun e ->
      Bcodec.w_int w (e.user + 1);
      Bcodec.w_int w (e.client + 1);
      Bcodec.w_u8 w (List.fold_left (fun acc p -> acc lor perm_bit p) 0 e.perms);
      Bcodec.w_u8 w (if e.recovery then 1 else 0))
    t;
  Bcodec.contents w

let decode b =
  if Bytes.length b = 0 then []
  else begin
    let r = Bcodec.reader b in
    let n = Bcodec.r_int r in
    List.init n (fun _ ->
        let user = Bcodec.r_int r - 1 in
        let client = Bcodec.r_int r - 1 in
        let perms = perms_of_bits (Bcodec.r_u8 r) in
        let recovery = Bcodec.r_u8 r = 1 in
        { user; client; perms; recovery })
  end

let pp_perm ppf = function
  | Read -> Format.pp_print_char ppf 'r'
  | Write -> Format.pp_print_char ppf 'w'
  | Delete -> Format.pp_print_char ppf 'd'
  | Set_attr -> Format.pp_print_char ppf 'a'
  | Set_acl -> Format.pp_print_char ppf 'c'

let pp_entry ppf e =
  let pr ppf = function
    | -1 -> Format.pp_print_char ppf '*'
    | v -> Format.pp_print_int ppf v
  in
  Format.fprintf ppf "user=%a client=%a perms=%a%s" pr e.user pr e.client
    (fun ppf ps -> List.iter (pp_perm ppf) ps)
    e.perms
    (if e.recovery then "+recovery" else "")

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_entry)
    t
