lib/analysis/diffstudy.mli: Format
