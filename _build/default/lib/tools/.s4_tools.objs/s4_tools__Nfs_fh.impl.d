lib/tools/nfs_fh.ml:
