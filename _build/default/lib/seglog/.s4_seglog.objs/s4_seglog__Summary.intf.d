lib/seglog/summary.mli: Bytes Tag
