(** Lease-based client-side read cache.

    Holds attribute and data read replies keyed by (credential, oid,
    version instant, range), each guarded by a server-granted lease:
    an absolute server-clock instant piggybacked on v3 reply frames
    until which the client may answer the same read locally. The
    credential (user + admin flag) is part of the key because the
    server ACL-checks every request per credential: a reply earned by
    one principal is never replayed to another, so a user the object's
    ACL denies still gets [Permission_denied] from the server — the
    cache cannot be used to launder access across principals sharing
    one connection. A cached reply is dropped the moment the client
    sends any mutation touching its oid (the client's own writes are
    the only coherence events it can cause; other clients' writes are
    fenced by the server, which delays a conflicting mutation until
    every other client's lease on the object has expired), and the
    whole cache is dropped on history-pruning operations
    ([Flush]/[Set_window]) whose effect is not per-oid.

    The drive never trusts this cache: it is a client-local
    optimization, invisible to the server's audit and access-control
    path. A compromised client can at worst serve itself stale data.

    With [journal:true] every grant, hit and invalidation is recorded;
    {!check} replays the journal and proves the safety rule: {e no
    reply was served from cache after its lease expired or was
    invalidated}. *)

module Rpc := S4.Rpc

type key =
  | K_data of {
      user : int;
      admin : bool;
      oid : int64;
      at : int64 option;
      off : int;
      len : int;
    }
  | K_attr of { user : int; admin : bool; oid : int64; at : int64 option }

type event =
  | Grant of { key : key; expiry : int64; now : int64 }
  | Hit of { key : key; now : int64 }
  | Invalidate of { oid : int64; now : int64 }
  | Clear of { now : int64 }

type t

val create : ?journal:bool -> budget:int -> unit -> t
(** [budget] is the LRU cost budget in bytes. [journal] (default
    false) records the event stream for {!check}. *)

val observe_now : t -> int64 -> unit
(** Feed an observed server clock value (from any reply frame); the
    cache keeps the maximum. Lease expiry is judged against this. *)

val now : t -> int64

val key_of_req : Rpc.credential -> Rpc.req -> key option
(** The cache key for a cacheable read ([Read]/[Get_attr]) issued
    under [cred], [None] for everything else. The credential's [user]
    and [admin] fields key the entry; [client] does not — the server
    overwrites it with the connection identity, which is constant for
    all requests through one client. *)

val find : t -> Rpc.credential -> Rpc.req -> Rpc.resp option
(** Serve [req] locally if a fresh, unexpired entry exists {e for this
    credential}. An entry whose lease has expired (against the
    observed server clock) is discarded, never returned. Counts
    hits/misses. *)

val store : t -> Rpc.credential -> Rpc.req -> Rpc.resp -> lease:int64 -> unit
(** Remember a server reply under its lease ([lease] is the absolute
    expiry instant; 0 or an already-past instant stores nothing).
    Error responses are never cached. *)

val invalidate_req : t -> Rpc.req -> unit
(** The client is about to apply [req] at the server: drop every entry
    the mutation could supersede (entries for its oid; everything for
    [Flush]/[Set_window]). Non-mutations invalidate nothing. *)

val hits : t -> int
(** Reads actually served from cache. An entry found but discarded as
    lease-expired counts as a miss, not a hit — hits are exactly the
    requests that never reached the wire. *)

val misses : t -> int
val length : t -> int

val events : t -> event list
(** The journal, oldest first (empty unless [journal:true]). *)

val check : t -> (unit, string) result
(** Replay the journal: every {!Hit} must name a key with a live grant
    — granted, not superseded by an invalidation or clear, and with
    [expiry > now] at the moment of the hit. *)
