(** Randomized crash-recovery harness.

    The paper's guarantees are only as good as the recovery path, and
    recovery code that is never crashed is assumed-correct, not
    correct. This harness runs a deterministic randomized workload
    against a drive whose disk carries a {!S4_disk.Fault} policy,
    crashes the device at an arbitrary write (every run deterministic
    in its seed and crash point), reattaches, and checks the paper's
    invariants against an independently maintained oracle:

    - {b window survival}: every object state captured at a successful
      sync is still readable with a time-based read at the sync time;
    - {b audit continuity}: the recovered audit trail is a contiguous
      prefix of the requests actually handled (a crash may lose the
      buffered tail, never a middle record);
    - {b replay correctness}: the recovered store passes a full fsck
      and keeps serving new requests;
    - {b mirror convergence}: after a partial resync failure, retrying
      converges the replicas with no divergence ({!resync_run}).

    All randomness flows from explicit seeds; any failure is
    reproducible from its [seed] and [crash_after]. *)

type report = {
  seed : int;
  crash_after : int;  (** crash on this many workload disk writes (0 = none) *)
  crashed : bool;  (** whether the crash point was reached *)
  ops_before_crash : int;  (** RPCs completed before the crash *)
  snapshots : int;  (** synced snapshots checked after recovery *)
  audit_checked : int;  (** recovered audit records matched *)
  violations : string list;  (** empty = all invariants held *)
}

val workload_writes : ?ops:int -> seed:int -> unit -> int
(** Disk writes the seeded workload issues after format when run
    fault-free — the valid crash-point range for {!run}. *)

val run : ?ops:int -> seed:int -> crash_after:int -> unit -> report
(** One crash-recovery cycle: format, run the workload, crash on the
    [crash_after]-th disk write, reattach, verify. [crash_after = 0]
    disables the crash (the workload runs to completion and only the
    in-flight sanity checks apply). *)

val boundary_sweep : ?ops:int -> seed:int -> unit -> report list
(** {!run} once per possible crash point: every disk write boundary of
    the workload, [1 .. workload_writes]. *)

val sweep : ?ops:int -> seed:int -> runs:int -> unit -> report list
(** [runs] crash points drawn uniformly from the workload's write
    range, each with a distinct derived workload seed. *)

val rebalance_run : ?ops:int -> seed:int -> crash_after:int -> unit -> report
(** Sharded-array crash mid-rebalance: run the workload over a 2-shard
    array, add a third drive to the live array, and crash the whole
    array on the new drive's [crash_after]-th disk write during the
    migration. Every drive is then individually reattached and the
    array reassembled with [Router.attach]; verification checks that
    each object has exactly one authoritative holder, that every
    synced in-window version still answers through the routed surface,
    and that the interrupted migrations complete cleanly.
    [audit_checked] is always 0 for array runs. *)

val rebalance_writes : ?ops:int -> seed:int -> unit -> int
(** Disk writes the seeded rebalance issues on the newly added drive
    when run crash-free — the valid crash-point range for
    {!rebalance_run}. *)

val rebalance_sweep : seed:int -> runs:int -> unit -> report list
(** {!rebalance_run} at [runs] crash points drawn uniformly from each
    derived workload's rebalance write range. *)

val kill9_run :
  ?dir:string -> seed:int -> kill_after:int -> midflight:bool -> unit -> report
(** A {e real} crash: format a file-backed store under [dir], fork a
    child that serves it over TCP, run the seeded workload through a
    network client for [kill_after] acked requests (snapshot instants
    taken from the server's clock at each acked Sync), then [kill -9]
    the child and verify the surviving host file with the same oracle
    as {!run}. With [midflight] a 64-write batch is put in flight on a
    second connection just before the kill; it is never acked, so the
    oracle ignores it, and the audit check tolerates its trailing
    records ([crash_after] reports [kill_after]; [crashed] is always
    true). The store file is deleted on a clean report, kept for
    post-mortem otherwise. *)

val kill9_sweep : ?dir:string -> seed:int -> runs:int -> unit -> report list
(** {!kill9_run} at [runs] randomized kill points (8–79 acked ops,
    midflight on a coin flip), each with a distinct derived seed. *)

type resync_report = {
  r_seed : int;
  fail_writes : int;  (** secondary disk writes forced to fail *)
  first_error : bool;  (** whether the first resync attempt failed *)
  attempts : int;  (** resync calls until [Ok] *)
  r_violations : string list;
}

val resync_run : seed:int -> fail_writes:int -> unit -> resync_report
(** Mirror partial-failure scenario: the secondary fails, misses
    mutations, is repaired, and its first [fail_writes] disk writes
    during resync fail permanently. Resync is retried until it
    succeeds; the replicas must then be divergence-free with no
    residual lag — double-applied replay entries show up here. *)

val resync_sweep : seed:int -> runs:int -> unit -> resync_report list

(** {1 Tamper injection}

    The attacker of the paper's threat model: full control of the host,
    and here even of the platter, between two admin verifications. Each
    scenario runs the seeded workload to a sealed chain, injects one
    class of damage into the persisted audit log (recomputing block
    CRCs, as any attacker can), and re-verifies against the previously
    trusted head. *)

type tamper =
  | Rewrite  (** forge a CRC-valid edit of a sealed audit record *)
  | Drop  (** zero a middle audit block *)
  | Reorder  (** relocate a block's claimed position on the chain *)
  | Fork  (** restore a stale image behind a "crash" and regrow
              different history past the trusted head *)

val tamper_name : tamper -> string

val tamper_run : seed:int -> tamper -> bool * string list
(** [(detected, errors)]: whether [verify-log] against the pre-tamper
    trusted head flagged the damage, and what it reported. Every
    tamper class must come back [true]. *)

val tamper_clean : seed:int -> bool * string list
(** Control: the same scenario with no injection must verify clean
    ([false], no errors). *)

val seal_gap_run :
  ?dir:string -> seed:int -> unit -> report * S4_integrity.Chain.verify_result
(** Seal-atomicity regression: flush and sync audit records, tear the
    flushed block to its first sector, and abandon the process without
    sealing — the state a SIGKILL leaves when it lands between the
    record write and the seal write of one barrier. The report must be
    violation-free (lenient recovery reads it as a crash) and the
    strict re-walk must show no chain error and no bad record — tail
    truncation, never tampering. *)

(** {1 PostMark under kill -9} *)

type postmark_report = {
  pm_seed : int;
  pm_completed : bool;  (** PostMark finished all transactions before the kill *)
  pm_checkpoints : int;  (** durability checkpoints captured *)
  pm_acked : int;  (** audit records covered by the newest checkpoint *)
  pm_recovered : int;  (** audit records recovered after the kill *)
  pm_violations : string list;
}

val kill9_postmark_run :
  ?dir:string -> ?transactions:int -> ?checkpoints:int -> seed:int -> unit -> postmark_report
(** Full PostMark (files, subdirectories, create/delete/read/append
    transactions) through the NFS translator and wire protocol against
    a forked server that is then SIGKILLed mid-run. A second
    connection meanwhile checkpoints durability: server instant,
    [Sync], [Read_audit] up to that instant — every record strictly
    below the instant was acked durable by the Sync. Verification
    reattaches the surviving file and asserts {e zero acked-write
    loss}: each checkpoint's records recovered verbatim, fsck clean,
    the hash chain crash-consistent, every surviving name mountable,
    and the drive still serving. *)

val pp_postmark_report : Format.formatter -> postmark_report -> unit

val failed_reports : report list -> report list
(** Reports with at least one violation. *)

val pp_report : Format.formatter -> report -> unit
