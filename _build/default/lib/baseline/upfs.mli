(** Update-in-place NFS comparison servers.

    A simplified FFS/ext2-class file server over the simulated disk:
    cylinder-group block allocation, an in-memory namespace, a large
    buffer cache, and — the behaviour the paper's comparison hinges on
    — synchronous in-place writes: every modifying NFSv2 operation
    forces the data, inode and directory blocks to the disk at their
    fixed locations, paying positioning costs that S4's log batching
    avoids.

    Two presets reproduce the paper's comparison servers:
    - {!ffs}: FreeBSD FFS over NFSv2 — every metadata update is its own
      synchronous inode/directory write.
    - {!ext2_sync}: Linux ext2 mounted sync — models the flaw the paper
      observed ("a much lower number of write I/Os ... due to a flaw in
      the synchronous mount option under Linux") by coalescing several
      metadata updates per physical write. *)

type config = {
  name : string;
  block_size : int;
  groups : int;  (** cylinder groups for allocation locality *)
  metadata_coalesce : int;
      (** physical inode/dir-block writes happen once per this many
          metadata updates (1 = strictly synchronous) *)
  cache_bytes : int;
  cpu_us_per_op : float;  (** server CPU cost per NFS operation *)
}

val ffs : config
val ext2_sync : config

type t

val create : config -> S4_disk.Sim_disk.t -> t
(** Format the disk as an empty file system with a root directory. *)

val server : t -> S4_nfs.Server.t
val root : t -> S4_nfs.Nfs_types.fh
val handle : t -> S4_nfs.Nfs_types.req -> S4_nfs.Nfs_types.resp
val metadata_writes : t -> int
val data_writes : t -> int
