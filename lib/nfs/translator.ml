module Rpc = S4.Rpc
module Drive = S4.Drive
module Client = S4.Client
module Backend = S4.Backend
module N = Nfs_types
module Trace = S4_obs.Trace

type transport =
  | Local of Drive.t
  | Remote of Client.t
  | Backend of Backend.t

(* Every transport normalizes to the one vectored backend surface; the
   constructors only exist so callers can hand over a raw drive or
   simulated client without building the record themselves. *)
let backend_of = function
  | Local d -> Drive.backend d
  | Remote c -> Client.backend c
  | Backend b -> b

(* Cached directory image: occupied slots and the slot-array length. *)
type dircache = { mutable dents : (N.dirent * int) list; mutable nslots : int }

(* Client-daemon processing cost per S4 RPC it issues (user-level
   translation, marshalling), and the loopback-NFS hop each request
   pays in the Fig. 1a configuration (app -> kernel NFS client -> UDP
   loopback -> user-level daemon). *)
let daemon_cpu_us = 250.0
let loopback_us = 400.0

type t = {
  transport : transport;
  backend : Backend.t;
  cred : Rpc.credential;
  root : N.fh;
  attr_cache : (N.fh, N.attr) Hashtbl.t;
  dir_cache : (N.fh, dircache) Hashtbl.t;
  mutable rpcs : int;
  mutable attr_hits : int;
  mutable attr_misses : int;
}

exception Err of N.error

let clock_of t = t.backend.Backend.clock

let fail e = raise (Err e)

let nfs_of_rpc_error = function
  | Rpc.Not_found -> N.Enoent
  | Rpc.Permission_denied -> N.Eacces
  | Rpc.Object_deleted -> N.Enoent
  | Rpc.No_space -> N.Enospc
  | Rpc.Bad_request m -> N.Eio m
  | Rpc.Io_error m -> N.Eio m

let lift = function
  | Rpc.R_error e -> fail (nfs_of_rpc_error e)
  | resp -> resp

let call t ?sync req =
  t.rpcs <- t.rpcs + 1;
  S4_util.Simclock.advance (clock_of t) (S4_util.Simclock.of_us daemon_cpu_us);
  lift (Backend.handle t.backend t.cred ?sync req)

(* Vectored submission: the daemon still pays per-request marshalling
   cpu, but the whole array crosses the backend as ONE submit — with
   [sync] that is one group-commit barrier instead of one per request.
   Responses are positional and NOT lifted: batch callers must inspect
   each slot (a failed slot must not mask its successors). *)
let call_batch t ~sync reqs =
  let n = Array.length reqs in
  t.rpcs <- t.rpcs + n;
  S4_util.Simclock.advance (clock_of t)
    (S4_util.Simclock.of_us (daemon_cpu_us *. float_of_int n));
  t.backend.Backend.submit t.cred ~sync reqs

let expect_unit = function
  | Rpc.R_unit -> ()
  | _ -> fail (N.Eio "unexpected response")

let expect_data = function
  | Rpc.R_data b -> b
  | _ -> fail (N.Eio "unexpected response")

let expect_oid = function
  | Rpc.R_oid oid -> oid
  | _ -> fail (N.Eio "unexpected response")

let now t = S4_util.Simclock.now (clock_of t)

(* ------------------------------------------------------------------ *)
(* Attribute and directory access with read caching                    *)

let get_attr t fh =
  match Hashtbl.find_opt t.attr_cache fh with
  | Some a ->
    t.attr_hits <- t.attr_hits + 1;
    a
  | None ->
    t.attr_misses <- t.attr_misses + 1;
    (match call t (Rpc.Get_attr { oid = fh; at = None }) with
     | Rpc.R_attr b when Bytes.length b > 0 ->
       let a = N.decode_attr b in
       Hashtbl.replace t.attr_cache fh a;
       a
     | Rpc.R_attr _ -> fail (N.Eio "missing attributes")
     | _ -> fail (N.Eio "unexpected response"))

let set_attr t ?sync fh attr =
  expect_unit (call t ?sync (Rpc.Set_attr { oid = fh; attr = N.encode_attr attr }));
  Hashtbl.replace t.attr_cache fh attr

let load_dir t fh =
  match Hashtbl.find_opt t.dir_cache fh with
  | Some dc -> dc
  | None ->
    let attr = get_attr t fh in
    if attr.N.ftype <> N.Fdir then fail N.Enotdir;
    let data = expect_data (call t (Rpc.Read { oid = fh; off = 0; len = attr.N.size; at = None })) in
    let dents, nslots = N.decode_dir_slots data in
    let dc = { dents; nslots } in
    Hashtbl.replace t.dir_cache fh dc;
    dc

let read_dir t fh = List.map fst (load_dir t fh).dents

(* Namespace updates touch exactly one 64-byte directory slot. *)
let write_slot t ~sync fh ~slot entry =
  expect_unit
    (call t ~sync
       (Rpc.Write
          { oid = fh; off = slot * N.slot_size; len = N.slot_size; data = Some (N.encode_slot entry) }))

let add_entry t ?(sync = false) fh entry =
  let dc = load_dir t fh in
  let used = Array.make (dc.nslots + 1) false in
  List.iter (fun (_, i) -> used.(i) <- true) dc.dents;
  let slot =
    let rec find i = if i >= dc.nslots then dc.nslots else if used.(i) then find (i + 1) else i in
    find 0
  in
  let grows = slot >= dc.nslots in
  write_slot t ~sync:(sync && not grows) fh ~slot (Some entry);
  dc.dents <- (entry, slot) :: dc.dents;
  if grows then begin
    dc.nslots <- slot + 1;
    let attr = get_attr t fh in
    set_attr t ~sync fh { attr with N.size = dc.nslots * N.slot_size; mtime = now t }
  end

let remove_entry t ?(sync = false) fh name =
  let dc = load_dir t fh in
  match List.find_opt (fun (e, _) -> e.N.name = name) dc.dents with
  | None -> fail N.Enoent
  | Some (_, slot) ->
    write_slot t ~sync fh ~slot None;
    dc.dents <- List.filter (fun (_, i) -> i <> slot) dc.dents

let invalidate t fh =
  Hashtbl.remove t.attr_cache fh;
  Hashtbl.remove t.dir_cache fh

(* ------------------------------------------------------------------ *)
(* Mount                                                               *)

let mount ?(partition = "root") ?(cred = Rpc.user_cred ~user:1 ~client:1) transport =
  let backend = backend_of transport in
  let call ?sync req = lift (Backend.handle backend cred ?sync req) in
  let root =
    match Backend.handle backend cred (Rpc.P_mount { name = partition; at = None }) with
    | Rpc.R_oid oid -> oid
    | Rpc.R_error Rpc.Not_found ->
      let clock = backend.Backend.clock in
      let oid = expect_oid (call (Rpc.Create { acl = [] })) in
      let attr = N.fresh_attr N.Fdir ~uid:cred.Rpc.user ~now:(S4_util.Simclock.now clock) in
      expect_unit (call (Rpc.Set_attr { oid; attr = N.encode_attr attr }));
      expect_unit (call ~sync:true (Rpc.P_create { name = partition; oid }));
      oid
    | _ -> fail (N.Eio "mount failed")
  in
  {
    transport;
    backend;
    cred;
    root;
    attr_cache = Hashtbl.create 1024;
    dir_cache = Hashtbl.create 256;
    rpcs = 0;
    attr_hits = 0;
    attr_misses = 0;
  }

let root t = t.root
let transport t = t.transport
let cred t = t.cred
let rpc_count t = t.rpcs
let attr_cache_stats t = (t.attr_hits, t.attr_misses)

let invalidate_caches t =
  Hashtbl.reset t.attr_cache;
  (* A timing-only drive (keep_data:false) cannot serve directory
     contents back, so the directory cache is the namespace's only
     authoritative copy and must survive cache-drop experiments. *)
  if t.backend.Backend.keep_data then Hashtbl.reset t.dir_cache

(* ------------------------------------------------------------------ *)
(* NFS operations                                                      *)

let find_entry entries name = List.find_opt (fun e -> e.N.name = name) entries

let create_object t ftype ~mode ~sync_last:_ =
  let oid = expect_oid (call t (Rpc.Create { acl = [] })) in
  let attr = { (N.fresh_attr ftype ~uid:t.cred.Rpc.user ~now:(now t)) with N.mode } in
  set_attr t oid attr;
  (oid, attr)

let do_create t ~dir ~name ~mode ~ftype =
  (match find_entry (read_dir t dir) name with Some _ -> fail N.Eexist | None -> ());
  let fh, attr = create_object t ftype ~mode ~sync_last:false in
  add_entry t ~sync:true dir { N.name; fh };
  (fh, attr)

let do_remove t ~dir ~name ~want_dir =
  let entries = read_dir t dir in
  match find_entry entries name with
  | None -> fail N.Enoent
  | Some { N.fh; _ } ->
    let attr = get_attr t fh in
    (match (attr.N.ftype, want_dir) with
     | N.Fdir, false -> fail N.Eisdir
     | (N.Freg | N.Flnk), true -> fail N.Enotdir
     | N.Fdir, true -> if read_dir t fh <> [] then fail N.Enotempty
     | (N.Freg | N.Flnk), false -> ());
    expect_unit (call t (Rpc.Delete { oid = fh }));
    invalidate t fh;
    remove_entry t ~sync:true dir name

let do_write t fh off data =
  let len = Bytes.length data in
  let attr = get_attr t fh in
  if attr.N.ftype = N.Fdir then fail N.Eisdir;
  let attr = { attr with N.size = max attr.N.size (off + len); mtime = now t } in
  (* The payload write and the attribute update ride one vectored
     submission: the NFSv2 stability barrier is paid once, after the
     second request, instead of once per RPC. *)
  let resps =
    call_batch t ~sync:true
      [|
        Rpc.Write { oid = fh; off; len; data = Some data };
        Rpc.Set_attr { oid = fh; attr = N.encode_attr attr };
      |]
  in
  expect_unit (lift resps.(0));
  expect_unit (lift resps.(1));
  Hashtbl.replace t.attr_cache fh attr;
  attr

let do_setattr t fh mode size =
  let attr = get_attr t fh in
  (* Truncating a directory through SETATTR would shred its slot
     array. *)
  if size <> None && attr.N.ftype = N.Fdir then fail N.Eisdir;
  let attr = match mode with Some m -> { attr with N.mode = m } | None -> attr in
  let attr =
    match size with
    | Some s ->
      expect_unit (call t (Rpc.Truncate { oid = fh; size = s }));
      { attr with N.size = s; mtime = now t }
    | None -> attr
  in
  set_attr t ~sync:true fh { attr with N.ctime = now t };
  attr

let do_rename t ~from_dir ~from_name ~to_dir ~to_name =
  let src_entries = read_dir t from_dir in
  match find_entry src_entries from_name with
  | None -> fail N.Enoent
  | Some { N.fh; _ } ->
    let same_dir = from_dir = to_dir in
    let dst_entries = if same_dir then src_entries else read_dir t to_dir in
    (* Overwrite semantics: an existing target is removed first. *)
    (match find_entry dst_entries to_name with
     | Some target when target.N.fh <> fh ->
       expect_unit (call t (Rpc.Delete { oid = target.N.fh }));
       invalidate t target.N.fh
     | Some _ | None -> ());
    if same_dir && from_name = to_name then
      (* Renaming an entry onto itself is a (synced) no-op. *)
      ()
    else begin
      (match find_entry dst_entries to_name with
       | Some _ -> remove_entry t to_dir to_name
       | None -> ());
      remove_entry t from_dir from_name;
      add_entry t ~sync:true to_dir { N.name = to_name; fh }
    end

let do_symlink t ~dir ~name ~target =
  let entries = read_dir t dir in
  (match find_entry entries name with Some _ -> fail N.Eexist | None -> ());
  let fh, attr = create_object t N.Flnk ~mode:0o777 ~sync_last:false in
  let data = Bytes.of_string target in
  expect_unit (call t (Rpc.Write { oid = fh; off = 0; len = Bytes.length data; data = Some data }));
  set_attr t fh { attr with N.size = Bytes.length data };
  add_entry t ~sync:true dir { N.name; fh }

let statfs t =
  let total, free = t.backend.Backend.capacity () in
  N.R_statfs { total_bytes = total; free_bytes = free }

let nfs_kind : N.req -> string = function
  | N.Getattr _ -> "getattr"
  | N.Setattr _ -> "setattr"
  | N.Lookup _ -> "lookup"
  | N.Readlink _ -> "readlink"
  | N.Read _ -> "read"
  | N.Write _ -> "write"
  | N.Create _ -> "create"
  | N.Remove _ -> "remove"
  | N.Rename _ -> "rename"
  | N.Mkdir _ -> "mkdir"
  | N.Rmdir _ -> "rmdir"
  | N.Readdir _ -> "readdir"
  | N.Symlink _ -> "symlink"
  | N.Statfs -> "statfs"

let nfs_err_tag : N.error -> string = function
  | N.Enoent -> "not_found"
  | N.Eexist -> "exists"
  | N.Enotdir -> "not_dir"
  | N.Eisdir -> "is_dir"
  | N.Eacces -> "denied"
  | N.Enotempty -> "not_empty"
  | N.Enospc -> "no_space"
  | N.Eio _ -> "io_error"

let handle_inner t req =
  (match t.transport with
   | Remote _ -> S4_util.Simclock.advance (clock_of t) (S4_util.Simclock.of_us loopback_us)
   | Local _ | Backend _ -> ());
  try
    match req with
    | N.Getattr fh -> N.R_attr (get_attr t fh)
    | N.Setattr { fh; mode; size } -> N.R_attr (do_setattr t fh mode size)
    | N.Lookup { dir; name } ->
      (match find_entry (read_dir t dir) name with
       | Some { N.fh; _ } -> N.R_fh (fh, get_attr t fh)
       | None -> N.R_error N.Enoent)
    | N.Readlink fh ->
      let attr = get_attr t fh in
      if attr.N.ftype <> N.Flnk then N.R_error (N.Eio "not a symlink")
      else
        N.R_link
          (Bytes.to_string (expect_data (call t (Rpc.Read { oid = fh; off = 0; len = attr.N.size; at = None }))))
    | N.Read { fh; off; len } ->
      let attr = get_attr t fh in
      if attr.N.ftype = N.Fdir then N.R_error N.Eisdir
      else N.R_data (expect_data (call t (Rpc.Read { oid = fh; off; len; at = None })))
    | N.Write { fh; off; data } -> N.R_attr (do_write t fh off data)
    | N.Create { dir; name; mode } ->
      let fh, attr = do_create t ~dir ~name ~mode ~ftype:N.Freg in
      N.R_fh (fh, attr)
    | N.Remove { dir; name } ->
      do_remove t ~dir ~name ~want_dir:false;
      N.R_unit
    | N.Rename { from_dir; from_name; to_dir; to_name } ->
      do_rename t ~from_dir ~from_name ~to_dir ~to_name;
      N.R_unit
    | N.Mkdir { dir; name; mode } ->
      let fh, attr = do_create t ~dir ~name ~mode ~ftype:N.Fdir in
      N.R_fh (fh, attr)
    | N.Rmdir { dir; name } ->
      do_remove t ~dir ~name ~want_dir:true;
      N.R_unit
    | N.Readdir fh -> N.R_entries (read_dir t fh)
    | N.Symlink { dir; name; target } ->
      do_symlink t ~dir ~name ~target;
      N.R_unit
    | N.Statfs -> statfs t
  with
  | Err e -> N.R_error e
  | Invalid_argument m -> N.R_error (N.Eio m)

let handle t req =
  if not (Trace.on ()) then handle_inner t req
  else begin
    let now () = S4_util.Simclock.now (clock_of t) in
    let h0 = t.attr_hits and m0 = t.attr_misses in
    let tok = Trace.enter Trace.Nfs ~kind:(nfs_kind req) ~now:(now ()) in
    (match req with
     | N.Getattr fh | N.Setattr { fh; _ } | N.Readlink fh | N.Read { fh; _ }
     | N.Write { fh; _ } | N.Readdir fh ->
       Trace.set_oid tok fh
     | _ -> ());
    let fin () = Trace.add_cache tok ~hits:(t.attr_hits - h0) ~misses:(t.attr_misses - m0) in
    match handle_inner t req with
    | resp ->
      (match resp with
       | N.R_data b -> Trace.set_bytes tok (Bytes.length b)
       | N.R_error e -> Trace.fail tok (nfs_err_tag e)
       | _ -> ());
      (match req with
       | N.Write { data; _ } -> Trace.set_bytes tok (Bytes.length data)
       | _ -> ());
      fin ();
      Trace.finish tok ~now:(now ());
      resp
    | exception e ->
      fin ();
      Trace.abort tok ~now:(now ());
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Path helpers                                                        *)

let split_path path = String.split_on_char '/' path |> List.filter (fun s -> s <> "")

let lookup_path t path =
  let rec walk fh = function
    | [] -> Ok (fh, get_attr t fh)
    | name :: rest ->
      (match find_entry (read_dir t fh) name with
       | Some { N.fh = child; _ } -> walk child rest
       | None -> Error N.Enoent)
  in
  try walk t.root (split_path path) with Err e -> Error e

let mkdir_p t path =
  let rec walk fh = function
    | [] -> Ok fh
    | name :: rest ->
      (match find_entry (read_dir t fh) name with
       | Some { N.fh = child; _ } -> walk child rest
       | None ->
         (match handle t (N.Mkdir { dir = fh; name; mode = 0o755 }) with
          | N.R_fh (child, _) -> walk child rest
          | N.R_error e -> Error e
          | _ -> Error (N.Eio "mkdir")))
  in
  try walk t.root (split_path path) with Err e -> Error e

let dirname_basename path =
  match List.rev (split_path path) with
  | [] -> Error N.Enoent
  | base :: rev_dirs -> Ok (List.rev rev_dirs, base)

let write_file t path data =
  match dirname_basename path with
  | Error e -> Error e
  | Ok (dirs, base) ->
    (match mkdir_p t (String.concat "/" dirs) with
     | Error e -> Error e
     | Ok dir ->
       let fh =
         match handle t (N.Create { dir; name = base; mode = 0o644 }) with
         | N.R_fh (fh, _) -> Ok fh
         | N.R_error N.Eexist ->
           (match handle t (N.Lookup { dir; name = base }) with
            | N.R_fh (fh, _) -> Ok fh
            | _ -> Error N.Enoent)
         | N.R_error e -> Error e
         | _ -> Error (N.Eio "create")
       in
       (match fh with
        | Error e -> Error e
        | Ok fh ->
          (match handle t (N.Setattr { fh; mode = None; size = Some 0 }) with
           | N.R_error e -> Error e
           | _ ->
             (match handle t (N.Write { fh; off = 0; data }) with
              | N.R_attr _ -> Ok fh
              | N.R_error e -> Error e
              | _ -> Error (N.Eio "write")))))

let read_file t path =
  match lookup_path t path with
  | Error e -> Error e
  | Ok (fh, attr) ->
    (match handle t (N.Read { fh; off = 0; len = attr.N.size }) with
     | N.R_data b -> Ok b
     | N.R_error e -> Error e
     | _ -> Error (N.Eio "read"))

(* ------------------------------------------------------------------ *)
(* Multi-file batch operations                                         *)

(* Both helpers run the namespace preparation (parent dirs, create or
   lookup, slot bookkeeping) through the normal cached path but with
   every intermediate RPC unsynced, then push the whole set of
   mutations across the backend as ONE [submit ~sync:true]: n files
   share a single group-commit barrier instead of paying one each.
   Results are positional; one file's failure leaves the others'
   outcomes intact (per-request atomicity, per-batch durability). *)

let check_slots resps ~first ~stop ok =
  let rec check i =
    if i >= stop then Ok (ok ())
    else
      match resps.(i) with
      | Rpc.R_unit -> check (i + 1)
      | Rpc.R_error err -> Error (nfs_of_rpc_error err)
      | _ -> Error (N.Eio "unexpected response")
  in
  check first

let write_files t files =
  let reqs = ref [] in
  let nreq = ref 0 in
  let push r =
    reqs := r :: !reqs;
    incr nreq
  in
  let preps =
    List.map
      (fun (path, data) ->
        try
          match dirname_basename path with
          | Error e -> Error e
          | Ok (dirs, base) -> (
            match mkdir_p t (String.concat "/" dirs) with
            | Error e -> Error e
            | Ok dir ->
              let len = Bytes.length data in
              let fh, attr, fresh =
                match find_entry (read_dir t dir) base with
                | Some { N.fh; _ } ->
                  let a = get_attr t fh in
                  if a.N.ftype = N.Fdir then fail N.Eisdir;
                  (fh, a, false)
                | None ->
                  let fh, a = create_object t N.Freg ~mode:0o644 ~sync_last:false in
                  add_entry t ~sync:false dir { N.name = base; fh };
                  (fh, a, true)
              in
              let first = !nreq in
              if (not fresh) && attr.N.size > 0 then push (Rpc.Truncate { oid = fh; size = 0 });
              let attr = { attr with N.size = len; mtime = now t } in
              push (Rpc.Write { oid = fh; off = 0; len; data = Some data });
              push (Rpc.Set_attr { oid = fh; attr = N.encode_attr attr });
              Ok (fh, attr, first, !nreq))
        with Err e -> Error e)
      files
  in
  let resps = call_batch t ~sync:true (Array.of_list (List.rev !reqs)) in
  List.map
    (function
      | Error e -> Error e
      | Ok (fh, attr, first, stop) ->
        check_slots resps ~first ~stop (fun () ->
            Hashtbl.replace t.attr_cache fh attr;
            fh))
    preps

let remove_files t paths =
  let reqs = ref [] in
  let nreq = ref 0 in
  let push r =
    reqs := r :: !reqs;
    incr nreq
  in
  let preps =
    List.map
      (fun path ->
        try
          match dirname_basename path with
          | Error e -> Error e
          | Ok (dirs, base) -> (
            match lookup_path t (String.concat "/" dirs) with
            | Error e -> Error e
            | Ok (dir, _) -> (
              let dc = load_dir t dir in
              match List.find_opt (fun (e, _) -> e.N.name = base) dc.dents with
              | None -> Error N.Enoent
              | Some ({ N.fh; _ }, slot) ->
                let attr = get_attr t fh in
                if attr.N.ftype = N.Fdir then fail N.Eisdir;
                let first = !nreq in
                push (Rpc.Delete { oid = fh });
                push
                  (Rpc.Write
                     {
                       oid = dir;
                       off = slot * N.slot_size;
                       len = N.slot_size;
                       data = Some (N.encode_slot None);
                     });
                (* Optimistic cache update, mirroring the single-op
                   path: the mutation is in flight once enqueued. *)
                dc.dents <- List.filter (fun (_, i) -> i <> slot) dc.dents;
                invalidate t fh;
                Ok (first, !nreq)))
        with Err e -> Error e)
      paths
  in
  let resps = call_batch t ~sync:true (Array.of_list (List.rev !reqs)) in
  List.map
    (function
      | Error e -> Error e
      | Ok (first, stop) -> check_slots resps ~first ~stop (fun () -> ()))
    preps
