let kib = 1024
let mib = 1024 * 1024
let gib = 1024 * 1024 * 1024

let pp_bytes ppf n =
  let f = float_of_int n in
  if n >= gib then Format.fprintf ppf "%.2f GiB" (f /. float_of_int gib)
  else if n >= mib then Format.fprintf ppf "%.2f MiB" (f /. float_of_int mib)
  else if n >= kib then Format.fprintf ppf "%.1f KiB" (f /. float_of_int kib)
  else Format.fprintf ppf "%d B" n

let pp_rate ppf r =
  if r >= float_of_int gib then Format.fprintf ppf "%.2f GiB/s" (r /. float_of_int gib)
  else if r >= float_of_int mib then Format.fprintf ppf "%.2f MiB/s" (r /. float_of_int mib)
  else if r >= float_of_int kib then Format.fprintf ppf "%.1f KiB/s" (r /. float_of_int kib)
  else Format.fprintf ppf "%.0f B/s" r

let percent part whole = if whole = 0.0 then 0.0 else 100.0 *. part /. whole

let round_to digits x =
  let m = 10.0 ** float_of_int digits in
  Float.round (x *. m) /. m

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev = function
  | [] | [ _ ] -> 0.0
  | l ->
    let m = mean l in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 l
      /. float_of_int (List.length l - 1)
    in
    sqrt var
