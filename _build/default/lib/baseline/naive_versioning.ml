type stats = {
  mutable updates : int;
  mutable data_blocks : int;
  mutable indirect_blocks : int;
  mutable inode_blocks : int;
}

type t = {
  block_size : int;
  ppb : int;  (* pointers per indirect block *)
  direct : int;
  mutable size : int;
  s : stats;
}

let create ?(block_size = 4096) ?(pointers_per_block = 1024) ?(direct = 12) () =
  {
    block_size;
    ppb = pointers_per_block;
    direct;
    size = 0;
    s = { updates = 0; data_blocks = 0; indirect_blocks = 0; inode_blocks = 0 };
  }

(* Depth of the indirection path for file block index [i]:
   0 = direct (inode only), 1 = single indirect, ... up to 3. *)
let depth t i =
  if i < t.direct then 0
  else begin
    let i = i - t.direct in
    if i < t.ppb then 1
    else begin
      let i = i - t.ppb in
      if i < t.ppb * t.ppb then 2 else 3
    end
  end

(* Copy-on-write versioning: an update rewrites every data block it
   touches, a private copy of each indirect block on each distinct
   path, and the inode. Indirect blocks shared by several touched data
   blocks are copied once. *)
let write t ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Naive_versioning.write";
  if len > 0 then begin
    let first = off / t.block_size in
    let last = (off + len - 1) / t.block_size in
    t.s.updates <- t.s.updates + 1;
    t.s.data_blocks <- t.s.data_blocks + (last - first + 1);
    t.s.inode_blocks <- t.s.inode_blocks + 1;
    (* Count distinct indirect blocks along the touched paths. *)
    let touched = Hashtbl.create 8 in
    for i = first to last do
      match depth t i with
      | 0 -> ()
      | 1 -> Hashtbl.replace touched (1, (i - t.direct) / t.ppb) ()
      | 2 ->
        let j = i - t.direct - t.ppb in
        Hashtbl.replace touched (2, -1) ();
        (* the double-indirect root *)
        Hashtbl.replace touched (21, j / t.ppb) ()
      | _ ->
        let j = i - t.direct - t.ppb - (t.ppb * t.ppb) in
        Hashtbl.replace touched (3, -1) ();
        Hashtbl.replace touched (31, j / (t.ppb * t.ppb)) ();
        Hashtbl.replace touched (32, j / t.ppb) ()
    done;
    t.s.indirect_blocks <- t.s.indirect_blocks + Hashtbl.length touched;
    t.size <- max t.size (off + len)
  end

let truncate t ~size =
  if size < 0 then invalid_arg "Naive_versioning.truncate";
  t.s.updates <- t.s.updates + 1;
  t.s.inode_blocks <- t.s.inode_blocks + 1;
  t.size <- size

let stats t = t.s
let size t = t.size

let bytes_consumed t =
  (t.s.data_blocks + t.s.indirect_blocks + t.s.inode_blocks) * t.block_size

let metadata_bytes t = (t.s.indirect_blocks + t.s.inode_blocks) * t.block_size

let metadata_overhead t =
  if t.s.data_blocks = 0 then 0.0
  else float_of_int (metadata_bytes t) /. float_of_int (t.s.data_blocks * t.block_size)
