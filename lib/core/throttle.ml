module Simclock = S4_util.Simclock

type config = {
  pressure_threshold : float;
  share_threshold : float;
  max_penalty_ms : float;
  halflife : int64;
}

let default_config =
  {
    pressure_threshold = 0.8;
    share_threshold = 0.5;
    max_penalty_ms = 50.0;
    halflife = 10_000_000_000L (* 10 simulated seconds *);
  }

type counter = { mutable value : float; mutable stamp : int64 }

type t = {
  clock : Simclock.t;
  cfg : config;
  clients : (int, counter) Hashtbl.t;
  mutable pressure : float;
  mutable writes_since_prune : int;
}

(* Counters whose decayed value falls below this contribute nothing to
   any share computation and are dropped by pruning. *)
let prune_floor = 1.0

(* How many note_write calls between pruning sweeps; keeps the sweep
   cost amortised O(1) per write. *)
let prune_interval = 1024

let create ?(config = default_config) clock =
  {
    clock;
    cfg = config;
    clients = Hashtbl.create 16;
    pressure = 0.0;
    writes_since_prune = 0;
  }

(* Exponential decay since the counter was last touched. *)
let decayed t c =
  let dt = Int64.to_float (Int64.sub (Simclock.now t.clock) c.stamp) in
  let hl = Int64.to_float t.cfg.halflife in
  if dt <= 0.0 then c.value else c.value *. (0.5 ** (dt /. hl))

(* Drop fully-decayed counters so the table tracks active clients, not
   every client ever seen (unbounded growth under many-client load). *)
let prune t =
  let dead =
    Hashtbl.fold
      (fun client c acc -> if decayed t c < prune_floor then client :: acc else acc)
      t.clients []
  in
  List.iter (Hashtbl.remove t.clients) dead

let tracked_clients t = Hashtbl.length t.clients

let note_write t ~client ~bytes =
  t.writes_since_prune <- t.writes_since_prune + 1;
  if t.writes_since_prune >= prune_interval then begin
    t.writes_since_prune <- 0;
    prune t
  end;
  let c =
    match Hashtbl.find_opt t.clients client with
    | Some c -> c
    | None ->
      let c = { value = 0.0; stamp = Simclock.now t.clock } in
      Hashtbl.replace t.clients client c;
      c
  in
  c.value <- decayed t c +. float_of_int bytes;
  c.stamp <- Simclock.now t.clock

let pool_pressure t = t.pressure

let set_pool_pressure t p =
  if p < 0.0 then invalid_arg "Throttle.set_pool_pressure";
  t.pressure <- min p 1.0

let total t = Hashtbl.fold (fun _ c acc -> acc +. decayed t c) t.clients 0.0

let client_share t ~client =
  match Hashtbl.find_opt t.clients client with
  | None -> 0.0
  | Some c ->
    let total = total t in
    if total <= 0.0 then 0.0 else decayed t c /. total

let is_throttled t ~client =
  t.pressure >= t.cfg.pressure_threshold && client_share t ~client >= t.cfg.share_threshold

let penalty t ~client =
  if not (is_throttled t ~client) then 0L
  else begin
    (* Penalty scales with how far past the threshold the pool is. *)
    let over =
      (t.pressure -. t.cfg.pressure_threshold) /. (1.0 -. t.cfg.pressure_threshold)
    in
    (* No floor: at exactly pressure_threshold the penalty is zero and
       grows linearly to max_penalty_ms at full pressure. *)
    let ms = t.cfg.max_penalty_ms *. over in
    Simclock.of_ms ms
  end

let throttled_clients t =
  Hashtbl.fold (fun client _ acc -> if is_throttled t ~client then client :: acc else acc)
    t.clients []
  |> List.sort compare

let client_counters t =
  Hashtbl.fold (fun client c acc -> (client, decayed t c) :: acc) t.clients []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* A healthy client schedules at full weight; an active pool-pressure
   penalty shrinks the weight so weighted fair queueing serves the
   offender less often instead of (only) stalling it. 1 ms of penalty
   halves the weight; the WFQ floor keeps even a fully-penalized
   client draining. *)
let weight t ~client =
  let p_ms = Int64.to_float (penalty t ~client) /. 1e6 in
  1.0 /. (1.0 +. p_ms)

let export_metrics t =
  S4_obs.Metrics.set "qos/pool_pressure_pct" (int_of_float (t.pressure *. 100.0));
  S4_obs.Metrics.set "qos/tracked_clients" (Hashtbl.length t.clients);
  S4_obs.Metrics.set "qos/throttled_clients" (List.length (throttled_clients t));
  List.iter
    (fun (client, bytes) ->
      S4_obs.Metrics.set (Printf.sprintf "qos/client%d/history_bytes" client)
        (int_of_float bytes);
      S4_obs.Metrics.set
        (Printf.sprintf "qos/client%d/penalty_us" client)
        (Int64.to_int (Int64.div (penalty t ~client) 1_000L)))
    (client_counters t)
