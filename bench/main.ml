(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 5), plus bechamel micro-benchmarks of
   the core data structures.

   Usage:
     bench/main.exe                 run everything at default scale
     bench/main.exe fig3 fig5       run selected experiments
     bench/main.exe --full ...      paper-scale parameters (slower)
     bench/main.exe --json FILE ... also dump recorded series as JSON
     bench/main.exe --seed N ...    override the workload RNG seed

   Results are simulated time on the modelled 1999-era testbed (Cheetah
   disk, 100 Mb Ethernet, 600 MHz server); shapes, not wall-clock, are
   the point. EXPERIMENTS.md records paper-vs-measured. *)

module Simclock = S4_util.Simclock
module Rng = S4_util.Rng
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Log = S4_seglog.Log
module Store = S4_store.Obj_store
module Cleaner = S4_store.Cleaner
module Drive = S4.Drive
module Rpc = S4.Rpc
module N = S4_nfs.Nfs_types
module Nv = S4_baseline.Naive_versioning
module Systems = S4_workload.Systems
module Postmark = S4_workload.Postmark
module Ssh_build = S4_workload.Ssh_build
module Microbench = S4_workload.Microbench
module Daily = S4_workload.Daily
module Capacity = S4_analysis.Capacity
module Diffstudy = S4_analysis.Diffstudy
module Report = S4_analysis.Report
module Router = S4_shard.Router

let full_scale = ref false
let seed_override : int option ref = ref None

let pm_seeded (c : Postmark.config) =
  match !seed_override with None -> c | Some seed -> { c with Postmark.seed }

let rng_seed default = Option.value !seed_override ~default

(* ------------------------------------------------------------------ *)
(* Table 1: the RPC interface                                          *)

let table1 () =
  Report.heading "Table 1: S4 RPC interface (time-based access support)";
  let rows =
    [
      ("Create", "no", "create an object");
      ("Delete", "no", "delete an object");
      ("Read", "yes", "read data from an object");
      ("Write", "no", "write data to an object");
      ("Append", "no", "append data to the end of an object");
      ("Truncate", "no", "truncate an object to a specified length");
      ("GetAttr", "yes", "get the attributes of an object");
      ("SetAttr", "no", "set the opaque attributes of an object");
      ("GetACLByUser", "yes", "get an ACL entry by UserID");
      ("GetACLByIndex", "yes", "get an ACL entry by table index");
      ("SetACL", "no", "set an ACL entry");
      ("PCreate", "no", "create a partition (name -> ObjectID)");
      ("PDelete", "no", "delete a partition");
      ("PList", "yes", "list the partitions");
      ("PMount", "yes", "retrieve the ObjectID given its name");
      ("Sync", "n/a", "sync the entire cache to disk");
      ("Flush", "n/a", "remove versions older than a time (admin)");
      ("FlushO", "n/a", "remove one object's old versions (admin)");
      ("SetWindow", "n/a", "adjust the guaranteed detection window (admin)");
    ]
  in
  Report.table ~header:[ "RPC"; "time-based"; "description" ]
    (List.map (fun (a, b, c) -> [ a; b; c ]) rows);
  (* Prove the matrix by exercising each RPC against a live drive. *)
  let clock = Simclock.create () in
  let disk =
    Sim_disk.create
      ~geometry:(Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(64 * 1024 * 1024))
      clock
  in
  let drive = Drive.format disk in
  let alice = Rpc.user_cred ~user:1 ~client:1 in
  let ok = ref 0 in
  let exec cred req =
    match Drive.handle drive cred req with
    | Rpc.R_error e -> failwith (Format.asprintf "%a" Rpc.pp_error e)
    | _ -> incr ok
  in
  let oid =
    match Drive.handle drive alice (Rpc.Create { acl = [] }) with
    | Rpc.R_oid o ->
      incr ok;
      o
    | _ -> failwith "create"
  in
  exec alice (Rpc.Write { oid; off = 0; len = 4; data = Some (Bytes.of_string "abcd") });
  exec alice (Rpc.Append { oid; len = 4; data = Some (Bytes.of_string "efgh") });
  exec alice (Rpc.Read { oid; off = 0; len = 8; at = None });
  exec alice (Rpc.Truncate { oid; size = 4 });
  exec alice (Rpc.Get_attr { oid; at = None });
  exec alice (Rpc.Set_attr { oid; attr = Bytes.of_string "attrs" });
  exec alice (Rpc.Get_acl_by_user { oid; acl_user = 1; at = None });
  exec alice (Rpc.Get_acl_by_index { oid; index = 0; at = None });
  exec alice (Rpc.Set_acl { oid; index = 1; entry = S4.Acl.public_read });
  exec alice (Rpc.P_create { name = "vol"; oid });
  exec alice (Rpc.P_list { at = None });
  exec alice (Rpc.P_mount { name = "vol"; at = None });
  exec alice Rpc.Sync;
  exec alice (Rpc.P_delete { name = "vol" });
  exec alice (Rpc.Delete { oid });
  exec Rpc.admin_cred (Rpc.Set_window { window = 1_000_000_000L });
  exec Rpc.admin_cred (Rpc.Flush_object { oid; until = 0L });
  exec Rpc.admin_cred (Rpc.Flush { until = 0L });
  Printf.printf "\nAll 19 RPC types executed successfully against a live drive (%d calls ok).\n" !ok

(* ------------------------------------------------------------------ *)
(* Figure 2: journal-based metadata vs conventional versioning         *)

let fig2 () =
  Report.heading "Figure 2: metadata cost per update (journal-based vs conventional versioning)";
  let scenario name offsets =
    let clock = Simclock.create () in
    let disk =
      Sim_disk.create
        ~geometry:(Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(512 * 1024 * 1024))
        clock
    in
    let log = Log.create disk in
    let store = Store.create ~config:{ Store.default_config with keep_data = false } log in
    let oid = Store.create_object store in
    (* Pre-size the file so updates land in indirect territory. *)
    let max_off = List.fold_left max 0 offsets in
    Store.write store oid ~off:0 ~len:(max_off + 4096) ();
    let nv = Nv.create () in
    Nv.write nv ~off:0 ~len:(max_off + 4096);
    let s4_meta0 = (Store.stats store).Store.journal_bytes in
    let nv_meta0 = Nv.metadata_bytes nv in
    List.iter
      (fun off ->
        Store.write store oid ~off ~len:4096 ();
        Nv.write nv ~off ~len:4096)
      offsets;
    Store.sync store;
    let s4_meta = (Store.stats store).Store.journal_bytes - s4_meta0 in
    let nv_meta = Nv.metadata_bytes nv - nv_meta0 in
    let n = List.length offsets in
    [
      name;
      string_of_int n;
      Printf.sprintf "%d B" (nv_meta / n);
      Printf.sprintf "%d B" (s4_meta / n);
      Printf.sprintf "%.0fx" (float_of_int nv_meta /. float_of_int s4_meta);
    ]
  in
  let direct = List.init 50 (fun i -> i mod 12 * 4096) in
  let single = List.init 50 (fun i -> (12 + (i mod 1000)) * 4096) in
  let double = List.init 50 (fun i -> (12 + 1024 + (i * 13)) * 4096) in
  Report.table
    ~header:
      [ "update pattern"; "updates"; "conventional meta/update"; "S4 journal meta/update"; "ratio" ]
    [
      scenario "direct blocks" direct;
      scenario "single indirect" single;
      scenario "double indirect" double;
    ];
  Report.note
    "conventional versioning copies the indirect chain + inode per update (the paper's up-to-4x growth); a journal entry is tens of bytes"

(* ------------------------------------------------------------------ *)
(* Figure 3: PostMark                                                  *)

let fig3 () =
  Report.heading "Figure 3: PostMark benchmark (four servers)";
  let config =
    pm_seeded
      (if !full_scale then Postmark.default
       else { Postmark.default with Postmark.files = 1000; transactions = 5000 })
  in
  Printf.printf "files=%d transactions=%d\n\n" config.Postmark.files config.Postmark.transactions;
  let results = List.map (fun sys -> Postmark.run ~config sys) (Systems.all_four ()) in
  List.iter
    (fun (r : Postmark.result) ->
      Report.record ~experiment:"fig3" ~label:r.Postmark.system
        [
          ("creation_seconds", r.Postmark.creation_seconds);
          ("transaction_seconds", r.Postmark.transaction_seconds);
          ("transactions_per_second", r.Postmark.transactions_per_second);
        ])
    results;
  Report.table
    ~header:[ "system"; "creation (s)"; "transactions (s)"; "txn/s" ]
    (List.map
       (fun (r : Postmark.result) ->
         [
           r.Postmark.system;
           Printf.sprintf "%.2f" r.Postmark.creation_seconds;
           Printf.sprintf "%.2f" r.Postmark.transaction_seconds;
           Printf.sprintf "%.1f" r.Postmark.transactions_per_second;
         ])
       results);
  print_newline ();
  Report.bars
    (List.map
       (fun (r : Postmark.result) -> (r.Postmark.system ^ " (txn s)", r.Postmark.transaction_seconds))
       results);
  Report.note "paper: S4 comparable to BSD/Linux NFS, slightly better due to its log-structured layout"

(* ------------------------------------------------------------------ *)
(* Figure 4: SSH-build                                                 *)

let fig4 () =
  Report.heading "Figure 4: SSH-build benchmark (unpack / configure / build)";
  let config =
    if !full_scale then Ssh_build.default
    else { Ssh_build.default with Ssh_build.source_files = 60; configure_tests = 30 }
  in
  let results = List.map (fun sys -> Ssh_build.run ~config sys) (Systems.all_four ()) in
  List.iter
    (fun (r : Ssh_build.result) ->
      Report.record ~experiment:"fig4" ~label:r.Ssh_build.system
        [
          ("unpack_seconds", r.Ssh_build.unpack_seconds);
          ("configure_seconds", r.Ssh_build.configure_seconds);
          ("build_seconds", r.Ssh_build.build_seconds);
          ("total_seconds", Ssh_build.total r);
        ])
    results;
  Report.table
    ~header:[ "system"; "unpack (s)"; "configure (s)"; "build (s)"; "total (s)" ]
    (List.map
       (fun (r : Ssh_build.result) ->
         [
           r.Ssh_build.system;
           Printf.sprintf "%.2f" r.Ssh_build.unpack_seconds;
           Printf.sprintf "%.2f" r.Ssh_build.configure_seconds;
           Printf.sprintf "%.2f" r.Ssh_build.build_seconds;
           Printf.sprintf "%.2f" (Ssh_build.total r);
         ])
       results);
  Report.note
    "paper: similar across S4 and BSD; Linux wins configure via its sync-mount write-coalescing flaw"

(* ------------------------------------------------------------------ *)
(* Figure 5: cleaner overhead vs capacity utilisation                  *)

let fig5_rows () =
  Report.heading "Figure 5: cleaner overhead vs capacity utilisation (PostMark transactions)";
  let disk_mb = if !full_scale then 2048 else 512 in
  let transactions = if !full_scale then 50_000 else 8_000 in
  let utilisations = [ 0.02; 0.10; 0.30; 0.50; 0.60; 0.80; 0.90 ] in
  Printf.printf "disk=%d MB, transactions=%d\n\n" disk_mb transactions;
  (* Utilisation is measured in occupied blocks: a PostMark file
     (uniform 512..9216 B) occupies ~1.71 4KB blocks, plus ~0.2 blocks
     of metadata (journal + packed checkpoint share). *)
  let blocks_per_file = 1.9 in
  let run ~mode util =
    (* Tiny window so overwritten data expires immediately; the
       cleaner (when enabled) competes with foreground work. *)
    let drive_config =
      {
        Systems.benchmark_drive_config with
        Drive.window = 0L;
        cleaner_live_threshold = 0.9;
        cleaner_max_segments = 16;
      }
    in
    let sys =
      Systems.s4_nfs_server
        ~config:{ Systems.Config.default with disk_mb = Some disk_mb; drive_config }
        ()
    in
    (match sys.Systems.drive with
     | Some d -> Cleaner.set_mode (Drive.cleaner d) mode
     | None -> ());
    let usable =
      match sys.Systems.drive with
      | Some d -> S4_seglog.Log.usable_blocks (Drive.log d)
      | None -> disk_mb * 256
    in
    let files = int_of_float (util *. float_of_int usable /. blocks_per_file) in
    (* The paper ran the cleaner continuously competing with foreground
       activity; a short period approximates that. *)
    let config =
      pm_seeded { Postmark.default with Postmark.files; transactions; cleaner_every = Some 50 }
    in
    let r = Postmark.run ~config sys in
    r.Postmark.transactions_per_second
  in
  let rows =
    List.map
      (fun util ->
        (* Free mode: cleaning happens (it must, to keep space) but
           costs nothing - the paper's solid "no cleaning" line. *)
        let normal = run ~mode:Cleaner.Free util in
        (* Charged: the paper's untuned continuous *foreground* cleaner
           (the dashed line / worst case). *)
        let fg = run ~mode:Cleaner.Charged util in
        (* Overlapped: the Sec 5.1.5 remedy - cleaning soaks up idle
           disk time first. *)
        let bg = run ~mode:Cleaner.Overlapped util in
        Report.record ~experiment:"fig5"
          [
            ("utilisation", util);
            ("tps_no_cleaning", normal);
            ("tps_foreground", fg);
            ("tps_overlapped", bg);
          ];
        (util, normal, fg, bg))
      utilisations
  in
  Report.table
    ~header:
      [ "utilisation"; "txn/s (no cleaning cost)"; "txn/s (foreground cleaner)"; "degradation";
        "txn/s (idle-overlapped)"; "bg degradation" ]
    (List.map
       (fun (u, n, fg, bg) ->
         [
           Printf.sprintf "%.0f%%" (100.0 *. u);
           Printf.sprintf "%.1f" n;
           Printf.sprintf "%.1f" fg;
           Printf.sprintf "%.0f%%" (100.0 *. (1.0 -. (fg /. n)));
           Printf.sprintf "%.1f" bg;
           Printf.sprintf "%.0f%%" (100.0 *. (1.0 -. (bg /. n)));
         ])
       rows);
  Report.note
    "paper: sharp drop 2%->10% as the set leaves the cache; continuous foreground cleaning costs up to ~50%; idle-time cleaning is the paper's proposed remedy (Sec 5.1.5)";
  List.map (fun (u, n, fg, _) -> (u, n, fg)) rows

let fig5 () = ignore (fig5_rows ())

let fundamental () =
  Report.heading "Section 5.1.5: fundamental cost of keeping the history pool";
  let rows = fig5_rows () in
  let find u = List.find_opt (fun (x, _, _) -> abs_float (x -. u) < 0.01) rows in
  match (find 0.60, find 0.80) with
  | Some (_, n60, c60), Some (_, n80, c80) ->
    let d60 = 1.0 -. (c60 /. n60) and d80 = 1.0 -. (c80 /. n80) in
    Report.kv
      [
        ("cleaning overhead at 60% (active set only)", Printf.sprintf "%.0f%%" (100.0 *. d60));
        ( "cleaning overhead at 80% (active set + history pool)",
          Printf.sprintf "%.0f%%" (100.0 *. d80) );
        ( "extra overhead attributable to the history pool",
          Printf.sprintf "%.0f%%" (100.0 *. (d80 -. d60)) );
      ];
    Report.note
      "paper's example: 43% at 60% utilisation vs 53% at 80% -> the history pool itself costs ~10%"
  | _ -> print_endline "fig5 points missing"

(* ------------------------------------------------------------------ *)
(* Figure 6: audit-log overhead microbenchmark                         *)

let fig6 () =
  Report.heading "Figure 6: audit-log overhead (create/read/delete 1KB files)";
  let files = if !full_scale then 10_000 else 4_000 in
  Printf.printf "files=%d in 10 directories\n\n" files;
  let run audit =
    let drive_config = { Systems.benchmark_drive_config with Drive.audit_enabled = audit } in
    let sys = Systems.s4_nfs_server ~config:{ Systems.Config.default with drive_config } () in
    Microbench.run ~config:{ Microbench.default with Microbench.files } sys
  in
  let off = run false in
  let on = run true in
  let pct a b = 100.0 *. (a -. b) /. b in
  Report.record ~experiment:"fig6"
    [
      ("create_off_s", off.Microbench.create_seconds);
      ("create_on_s", on.Microbench.create_seconds);
      ("read_off_s", off.Microbench.read_seconds);
      ("read_on_s", on.Microbench.read_seconds);
      ("delete_off_s", off.Microbench.delete_seconds);
      ("delete_on_s", on.Microbench.delete_seconds);
    ];
  Report.table
    ~header:[ "phase"; "audit off (s)"; "audit on (s)"; "penalty" ]
    [
      [
        "create";
        Printf.sprintf "%.2f" off.Microbench.create_seconds;
        Printf.sprintf "%.2f" on.Microbench.create_seconds;
        Printf.sprintf "%.1f%%" (pct on.Microbench.create_seconds off.Microbench.create_seconds);
      ];
      [
        "read";
        Printf.sprintf "%.2f" off.Microbench.read_seconds;
        Printf.sprintf "%.2f" on.Microbench.read_seconds;
        Printf.sprintf "%.1f%%" (pct on.Microbench.read_seconds off.Microbench.read_seconds);
      ];
      [
        "delete";
        Printf.sprintf "%.2f" off.Microbench.delete_seconds;
        Printf.sprintf "%.2f" on.Microbench.delete_seconds;
        Printf.sprintf "%.1f%%" (pct on.Microbench.delete_seconds off.Microbench.delete_seconds);
      ];
    ];
  Report.note
    "paper: create 2.8%, read 7.2% (audit blocks interleave with data in segments), delete 2.9%"

let audit_macro () =
  Report.heading "Section 5.1.4: audit overhead on an application benchmark (PostMark)";
  let config = pm_seeded { Postmark.default with Postmark.files = 1000; transactions = 5000 } in
  let run audit =
    let drive_config = { Systems.benchmark_drive_config with Drive.audit_enabled = audit } in
    Postmark.run ~config
      (Systems.s4_nfs_server ~config:{ Systems.Config.default with drive_config } ())
  in
  let off = run false and on = run true in
  let t r = r.Postmark.creation_seconds +. r.Postmark.transaction_seconds in
  Report.record ~experiment:"audit-macro"
    [
      ("audit_off_s", t off);
      ("audit_on_s", t on);
      ("penalty_pct", 100.0 *. ((t on /. t off) -. 1.0));
    ];
  Report.kv
    [
      ("audit off", Printf.sprintf "%.2f s" (t off));
      ("audit on", Printf.sprintf "%.2f s" (t on));
      ("penalty", Printf.sprintf "%.1f%%" (100.0 *. ((t on /. t off) -. 1.0)));
    ];
  Report.note "paper: 1-3% on the macro benchmarks"

(* ------------------------------------------------------------------ *)
(* Figure 7: projected detection window                                *)

let fig7 () =
  Report.heading "Figure 7: projected detection window (10 GB history pool)";
  print_endline "(a) with the paper's differencing/compression factors (3x / 5x):";
  let projections = Capacity.project_all () in
  Report.table
    ~header:[ "workload"; "MB/day"; "baseline (days)"; "+differencing"; "+diff+compression" ]
    (List.map
       (fun (p : Capacity.projection) ->
         [
           p.Capacity.p_study;
           Printf.sprintf "%.0f" (float_of_int p.Capacity.daily_write_bytes /. 1048576.0);
           Printf.sprintf "%.0f" p.Capacity.baseline_days;
           Printf.sprintf "%.0f" p.Capacity.differenced_days;
           Printf.sprintf "%.0f" p.Capacity.compressed_days;
         ])
       projections);
  print_newline ();
  print_endline "(b) with OUR measured differencing/compression factors (see diffstudy):";
  let d = Diffstudy.run ~files:(if !full_scale then 60 else 30) () in
  let projections =
    Capacity.project_all ~diff_factor:d.Diffstudy.diff_efficiency
      ~comp_factor:(Float.max d.Diffstudy.comp_efficiency d.Diffstudy.diff_efficiency)
      ()
  in
  Printf.printf "measured: differencing %.1fx, differencing+compression %.1fx\n"
    d.Diffstudy.diff_efficiency d.Diffstudy.comp_efficiency;
  Report.table
    ~header:[ "workload"; "baseline (days)"; "+differencing"; "+diff+compression" ]
    (List.map
       (fun (p : Capacity.projection) ->
         [
           p.Capacity.p_study;
           Printf.sprintf "%.0f" p.Capacity.baseline_days;
           Printf.sprintf "%.0f" p.Capacity.differenced_days;
           Printf.sprintf "%.0f" p.Capacity.compressed_days;
         ])
       projections);
  print_newline ();
  print_endline "(c) measured history growth, scaled replay on a live S4 drive:";
  List.iter
    (fun study ->
      let sys = Systems.s4_remote () in
      let m = Daily.replay ~scale:0.002 ~days:3 study sys in
      Format.printf "  %a@." Daily.pp_measurement m)
    Daily.all;
  Report.note
    "paper: 70+ days (AFS), 10 days (NT), 90+ days (Santry); 50-470 days with differencing+compression"

(* ------------------------------------------------------------------ *)
(* Section 5.2: differencing experiment                                *)

let diffstudy () =
  Report.heading "Section 5.2: cross-version differencing + compression (7 daily snapshots)";
  let r = Diffstudy.run ~files:(if !full_scale then 80 else 40) () in
  Report.table
    ~header:[ "day"; "tree (KB)"; "delta vs prev (KB)"; "delta+lz (KB)" ]
    (List.map
       (fun (d : Diffstudy.day) ->
         [
           string_of_int d.Diffstudy.day_index;
           Printf.sprintf "%.0f" (float_of_int d.Diffstudy.tree_bytes /. 1024.0);
           Printf.sprintf "%.0f" (float_of_int d.Diffstudy.delta_bytes /. 1024.0);
           Printf.sprintf "%.0f" (float_of_int d.Diffstudy.delta_lz_bytes /. 1024.0);
         ])
       r.Diffstudy.days);
  print_newline ();
  Report.record ~experiment:"diffstudy"
    [
      ("diff_efficiency", r.Diffstudy.diff_efficiency);
      ("comp_efficiency", r.Diffstudy.comp_efficiency);
    ];
  Report.kv
    [
      ( "space efficiency from differencing",
        Printf.sprintf "%.1fx (paper ~3x)" r.Diffstudy.diff_efficiency );
      ("with compression on top", Printf.sprintf "%.1fx (paper ~5x)" r.Diffstudy.comp_efficiency);
    ]

(* ------------------------------------------------------------------ *)
(* Section 6 discussion: versioning vs snapshots                       *)

let snapshots () =
  Report.heading "Section 6: comprehensive versioning vs periodic snapshots";
  let module Snap = S4_analysis.Snapshots in
  let periods = [ 60.0; 600.0; 3600.0; 86_400.0 ] in
  let rows = Snap.sweep ~periods_s:periods () in
  let fmt_period p =
    if p >= 86_400.0 then Printf.sprintf "%.0f d" (p /. 86_400.0)
    else if p >= 3600.0 then Printf.sprintf "%.0f h" (p /. 3600.0)
    else Printf.sprintf "%.0f min" (p /. 60.0)
  in
  Report.table
    ~header:
      [ "snapshot period"; "files captured"; "short-lived files"; "intermediate versions";
        "mean loss window" ]
    (List.map
       (fun (r : Snap.result) ->
         [
           fmt_period r.Snap.period_s;
           Printf.sprintf "%.0f%%" (100.0 *. r.Snap.files_captured);
           Printf.sprintf "%.0f%%" (100.0 *. r.Snap.short_lived_captured);
           Printf.sprintf "%.0f%%" (100.0 *. r.Snap.versions_captured);
           Printf.sprintf "%.0f s" (r.Snap.mean_loss_window_s);
         ])
       rows
     @ [ [ "every modification (S4)"; "100%"; "100%"; "100%"; "0 s" ] ]);
  Report.note
    "paper: snapshots often cannot recover short-lived files (exploit tools) or intermediate versions (scrubbed log updates); comprehensive versioning is the end-point of shrinking the period"

(* ------------------------------------------------------------------ *)
(* Ablations of S4 design choices                                      *)

let ablation () =
  Report.heading "Ablations: S4 design-parameter sensitivity (small PostMark / microbench)";
  let pm_config = pm_seeded { Postmark.default with Postmark.files = 500; transactions = 2_500 } in
  let run_pm drive_config =
    let sys = Systems.s4_nfs_server ~config:{ Systems.Config.default with drive_config } () in
    (Postmark.run ~config:pm_config sys).Postmark.transactions_per_second
  in
  print_endline "(a) block (buffer) cache size - the Figure 5 knee:";
  Report.table ~header:[ "cache"; "txn/s" ]
    (List.map
       (fun mb ->
         let dc =
           { Systems.benchmark_drive_config with
             Drive.store =
               { Systems.benchmark_drive_config.Drive.store with
                 Store.block_cache_bytes = mb * 1024 * 1024 } }
         in
         [ Printf.sprintf "%d MB" mb; Printf.sprintf "%.1f" (run_pm dc) ])
       [ 2; 8; 32; 128 ]);
  print_endline "\n(b) read-ahead (blocks per cache miss) - microbench cold reads:";
  Report.table ~header:[ "readahead"; "read phase (s)" ]
    (List.map
       (fun ra ->
         let dc =
           { Systems.benchmark_drive_config with
             Drive.store =
               { Systems.benchmark_drive_config.Drive.store with Store.readahead_blocks = ra } }
         in
         let sys =
           Systems.s4_nfs_server
             ~config:{ Systems.Config.default with drive_config = dc }
             ()
         in
         let r = Microbench.run ~config:{ Microbench.default with Microbench.files = 2000 } sys in
         [ string_of_int ra; Printf.sprintf "%.2f" r.Microbench.read_seconds ])
       [ 1; 8; 32; 64 ]);
  print_endline "\n(c) checkpoint interval (journal entries between metadata images):";
  Report.table ~header:[ "interval"; "txn/s"; "ckpt blocks written" ]
    (List.map
       (fun iv ->
         let dc =
           { Systems.benchmark_drive_config with
             Drive.store =
               { Systems.benchmark_drive_config.Drive.store with Store.checkpoint_interval = iv } }
         in
         let sys =
           Systems.s4_nfs_server
             ~config:{ Systems.Config.default with drive_config = dc }
             ()
         in
         let tps = (Postmark.run ~config:pm_config sys).Postmark.transactions_per_second in
         let ckpt =
           match sys.Systems.drive with
           | Some d -> (Store.stats (Drive.store d)).Store.checkpoint_blocks_written
           | None -> 0
         in
         [ string_of_int iv; Printf.sprintf "%.1f" tps; string_of_int ckpt ])
       [ 16; 64; 128; 512 ]);
  Report.note "journal-based metadata keeps checkpoints rare; performance is flat across sane intervals"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)

let micro () =
  Report.heading "Micro-benchmarks (bechamel; real host time per operation)";
  let open Bechamel in
  let mk_store () =
    let clock = Simclock.create () in
    let disk =
      Sim_disk.create
        ~geometry:(Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(256 * 1024 * 1024))
        clock
    in
    let log = Log.create disk in
    Store.create ~config:{ Store.default_config with keep_data = false } log
  in
  let store = mk_store () in
  let woid = Store.create_object store in
  let roid = Store.create_object store in
  Store.write store roid ~off:0 ~len:65536 ();
  let rng = Rng.create ~seed:1 in
  let payload = Rng.bytes rng 4096 in
  let payload2 =
    let b = Bytes.copy payload in
    Bytes.blit (Rng.bytes rng 256) 0 b 1024 256;
    b
  in
  let tests =
    [
      Test.make ~name:"store-write-4k"
        (Staged.stage (fun () -> Store.write store woid ~off:0 ~len:4096 ()));
      Test.make ~name:"store-read-64k"
        (Staged.stage (fun () -> ignore (Store.read store roid ~off:0 ~len:65536)));
      Test.make ~name:"store-sync" (Staged.stage (fun () -> Store.sync store));
      Test.make ~name:"crc32-4k" (Staged.stage (fun () -> ignore (S4_util.Crc32.bytes payload)));
      Test.make ~name:"lz-compress-4k"
        (Staged.stage (fun () -> ignore (S4_compress.Lz.compress payload)));
      Test.make ~name:"delta-encode-4k"
        (Staged.stage (fun () -> ignore (S4_compress.Delta.encode ~source:payload ~target:payload2)));
      Test.make ~name:"acl-check"
        (Staged.stage (fun () ->
             ignore
               (S4.Acl.allows
                  [ S4.Acl.owner_entry ~user:1; S4.Acl.public_read ]
                  ~user:2 ~client:3 S4.Acl.Read)));
    ]
  in
  let grouped = Test.make_grouped ~name:"s4" tests in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> rows := (name, nan) :: !rows)
    results;
  List.iter
    (fun (name, est) -> Printf.printf "  %-40s %12.0f ns/op\n" name est)
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* Fault sweep: throughput and recovery under injected media faults    *)

let faults () =
  Report.heading "Fault sweep: injected media faults vs throughput and retries";
  let ops = if !full_scale then 20_000 else 4_000 in
  let payload = Bytes.make 4096 'f' in
  let run_at rate =
    let clock = Simclock.create () in
    let disk =
      Sim_disk.create
        ~geometry:(Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(256 * 1024 * 1024))
        clock
    in
    let drive = Drive.format disk in
    let policy =
      S4_disk.Fault.create
        ~config:
          {
            S4_disk.Fault.quiet with
            transient_write_rate = rate;
            transient_read_rate = rate /. 10.;
          }
        (Rng.create ~seed:(rng_seed 97))
    in
    Sim_disk.set_fault disk (Some policy);
    let cred = Rpc.user_cred ~user:1 ~client:1 in
    let oids =
      Drive.submit drive cred (Array.init 8 (fun _ -> Rpc.Create { acl = [] }))
      |> Array.to_list
      |> List.map (function
           | Rpc.R_oid o -> o
           | r -> failwith (Format.asprintf "create: %a" Rpc.pp_resp r))
    in
    let completed = ref 0 and errors = ref 0 in
    for i = 0 to ops - 1 do
      let oid = List.nth oids (i mod 8) in
      let req =
        if i mod 8 = 7 then Rpc.Sync
        else Rpc.Write { oid; off = 4096 * (i mod 64); len = 4096; data = Some payload }
      in
      match Drive.handle drive cred req with
      | Rpc.R_error _ -> incr errors
      | _ -> incr completed
    done;
    Sim_disk.set_fault disk None;
    let secs = Int64.to_float (Simclock.now clock) /. 1e9 in
    let retries = (Log.stats (Drive.log drive)).Log.io_retries in
    ( rate,
      float_of_int !completed /. secs,
      retries,
      Drive.io_errors drive,
      !errors,
      Drive.degraded drive )
  in
  let rows =
    List.map
      (fun rate ->
        let rate, tput, retries, io_errors, rpc_errors, degraded = run_at rate in
        Report.record ~experiment:"faults"
          [
            ("fault_rate", rate);
            ("ops_per_sim_second", tput);
            ("io_retries", float_of_int retries);
            ("io_errors", float_of_int io_errors);
            ("rpc_errors", float_of_int rpc_errors);
            ("degraded", if degraded then 1.0 else 0.0);
          ];
        [
          Printf.sprintf "%.0e" rate;
          Printf.sprintf "%.0f" tput;
          string_of_int retries;
          string_of_int io_errors;
          string_of_int rpc_errors;
          (if degraded then "yes" else "no");
        ])
      [ 0.0; 1e-4; 1e-3; 1e-2 ]
  in
  Report.table
    ~header:[ "fault rate"; "ops/sim-s"; "io retries"; "io errors"; "rpc errors"; "degraded" ]
    rows;
  (* Crash-recovery spot check: random crash points through the same
     machinery the test suite sweeps exhaustively. *)
  let reports = S4_tools.Crashtest.sweep ~seed:(rng_seed 23) ~runs:(if !full_scale then 60 else 20) () in
  let failed = S4_tools.Crashtest.failed_reports reports in
  let snaps = List.fold_left (fun a r -> a + r.S4_tools.Crashtest.snapshots) 0 reports in
  let audit = List.fold_left (fun a r -> a + r.S4_tools.Crashtest.audit_checked) 0 reports in
  Printf.printf
    "\nCrash sweep: %d randomized crash points, %d snapshot states and %d audit records verified, %d invariant violations.\n"
    (List.length reports) snaps audit (List.length failed);
  List.iter
    (fun r -> Format.printf "  VIOLATION %a@." S4_tools.Crashtest.pp_report r)
    failed

(* ------------------------------------------------------------------ *)
(* Scale: sharded-array throughput scaling + online rebalance cost     *)

let scale () =
  Report.heading "Scale: sharded S4 array, 1..8 drives (PostMark + small-file microbench)";
  let pm_config =
    pm_seeded
      (if !full_scale then { Postmark.default with Postmark.files = 12_000 }
       else { Postmark.default with Postmark.files = 3_000; transactions = 6_000 })
  in
  let mb_files = if !full_scale then 10_000 else 2_000 in
  let counts = [ 1; 2; 4; 8 ] in
  (* Per-drive caches sized below the PostMark working set: a single
     drive thrashes, while each added shard brings its own cache and
     spindle — the aggregate-resources effect that makes scale-out
     arrays scale. *)
  let drive_config =
    {
      Systems.benchmark_drive_config with
      Drive.store =
        {
          Systems.benchmark_drive_config.Drive.store with
          Store.block_cache_bytes = 4 * 1024 * 1024;
          object_cache_bytes = 4 * 1024 * 1024;
        };
    }
  in
  Printf.printf "postmark: files=%d transactions=%d; microbench: files=%d x 1KB; 4MB caches/drive\n\n"
    pm_config.Postmark.files pm_config.Postmark.transactions mb_files;
  let rows =
    List.map
      (fun shards ->
        let cfg = { Systems.Config.serial with drive_config } in
        let pm = Postmark.run ~config:pm_config (Systems.s4_array ~config:cfg ~shards ()) in
        let mb =
          Microbench.run
            ~config:{ Microbench.default with Microbench.files = mb_files }
            (Systems.s4_array ~config:cfg ~shards ())
        in
        (shards, pm, mb))
      counts
  in
  let base_tps =
    match rows with
    | (_, pm, _) :: _ -> pm.Postmark.transactions_per_second
    | [] -> 1.0
  in
  List.iter
    (fun (shards, (pm : Postmark.result), (mb : Microbench.result)) ->
      Report.record ~experiment:"scale"
        [
          ("shards", float_of_int shards);
          ("postmark_tps", pm.Postmark.transactions_per_second);
          ("postmark_speedup", pm.Postmark.transactions_per_second /. base_tps);
          ("postmark_transaction_seconds", pm.Postmark.transaction_seconds);
          ("micro_create_s", mb.Microbench.create_seconds);
          ("micro_read_s", mb.Microbench.read_seconds);
          ("micro_delete_s", mb.Microbench.delete_seconds);
        ])
    rows;
  Report.table
    ~header:
      [ "shards"; "postmark txn/s"; "speedup"; "micro create (s)"; "read (s)"; "delete (s)" ]
    (List.map
       (fun (shards, (pm : Postmark.result), (mb : Microbench.result)) ->
         [
           string_of_int shards;
           Printf.sprintf "%.1f" pm.Postmark.transactions_per_second;
           Printf.sprintf "%.2fx" (pm.Postmark.transactions_per_second /. base_tps);
           Printf.sprintf "%.2f" mb.Microbench.create_seconds;
           Printf.sprintf "%.2f" mb.Microbench.read_seconds;
           Printf.sprintf "%.2f" mb.Microbench.delete_seconds;
         ])
       rows);
  print_newline ();
  Report.bars
    (List.map
       (fun (n, (pm : Postmark.result), _) ->
         (Printf.sprintf "%d shard%s (txn/s)" n (if n = 1 then "" else "s"),
          pm.Postmark.transactions_per_second))
       rows);
  (* Per-shard worker domains: the same PostMark-shaped object mix,
     submitted as vectored batches straight at the router, serial vs
     one worker domain per shard. Two honest columns per row: the
     simulated clock (the model's parallel charge — a batch window
     spanning k shards costs the slowest lane instead of the sum) and
     host wall-clock (true parallelism, bounded by the cores actually
     available — on a single-core host the wall column shows no
     speedup by construction, and the [cores] field says so). *)
  print_newline ();
  Report.heading "Scale: per-shard worker domains (vectored object workload)";
  let cores = Domain.recommended_domain_count () in
  let files = if !full_scale then 1024 else 256 in
  let batches = if !full_scale then 400 else 120 in
  let batch = 64 in
  Printf.printf "host cores: %d%s; %d objects, %d batches x %d requests\n\n" cores
    (if cores < 2 then " (wall-clock parallelism unavailable on this host)" else "")
    files batches batch;
  let payload = Bytes.make 4096 'd' in
  let run_mode ~shards ~domains =
    let clock = Simclock.create () in
    let members =
      List.init shards (fun i ->
          ( i,
            Router.Single
              (Drive.format ~config:drive_config
                 (Sim_disk.create ~geometry:Geometry.cheetah_9gb clock)) ))
    in
    let router = Router.create members in
    Router.set_domains router domains;
    let cred = Rpc.user_cred ~user:1 ~client:1 in
    let oids =
      Router.submit router cred
        (Array.init files (fun _ -> Rpc.Create { acl = S4.Acl.default ~owner:1 }))
      |> Array.map (function
           | Rpc.R_oid oid -> oid
           | r -> Format.kasprintf failwith "scale domains: create: %a" Rpc.pp_resp r)
    in
    ignore
      (Router.submit router cred ~sync:true
         (Array.map
            (fun oid -> Rpc.Write { oid; off = 0; len = 4096; data = Some payload })
            oids));
    let rng = Rng.create ~seed:(rng_seed 424) in
    let sim0 = Simclock.now clock and wall0 = Unix.gettimeofday () in
    for _ = 1 to batches do
      let reqs =
        Array.init batch (fun _ ->
            let oid = oids.(Rng.int rng files) in
            match Rng.int rng 4 with
            | 0 | 1 -> Rpc.Read { oid; off = 4096 * Rng.int rng 4; len = 4096; at = None }
            | 2 -> Rpc.Write { oid; off = 4096 * Rng.int rng 4; len = 4096; data = Some payload }
            | _ -> Rpc.Append { oid; len = 1024; data = Some (Bytes.sub payload 0 1024) })
      in
      ignore (Router.submit router cred ~sync:true reqs)
    done;
    let wall = Unix.gettimeofday () -. wall0 in
    let sim = Int64.to_float (Int64.sub (Simclock.now clock) sim0) /. 1e9 in
    Router.close_domains router;
    let ops = float_of_int (batches * batch) in
    (ops /. sim, ops /. wall)
  in
  let domain_rows =
    List.map
      (fun shards ->
        let s_sim, s_wall = run_mode ~shards ~domains:1 in
        let d_sim, d_wall = run_mode ~shards ~domains:shards in
        Report.record ~experiment:"scale_domains"
          [
            ("shards", float_of_int shards);
            ("cores", float_of_int cores);
            ("ops", float_of_int (batches * batch));
            ("sim_tps_serial", s_sim);
            ("sim_tps_domains", d_sim);
            ("sim_speedup", d_sim /. s_sim);
            ("wall_tps_serial", s_wall);
            ("wall_tps_domains", d_wall);
            ("wall_speedup", d_wall /. s_wall);
          ];
        (shards, s_sim, d_sim, s_wall, d_wall))
      counts
  in
  Report.table
    ~header:
      [
        "shards"; "sim txn/s serial"; "sim txn/s domains"; "sim speedup";
        "wall txn/s serial"; "wall txn/s domains"; "wall speedup";
      ]
    (List.map
       (fun (shards, s_sim, d_sim, s_wall, d_wall) ->
         [
           string_of_int shards;
           Printf.sprintf "%.0f" s_sim;
           Printf.sprintf "%.0f" d_sim;
           Printf.sprintf "%.2fx" (d_sim /. s_sim);
           Printf.sprintf "%.0f" s_wall;
           Printf.sprintf "%.0f" d_wall;
           Printf.sprintf "%.2fx" (d_wall /. s_wall);
         ])
       domain_rows);
  (* Online rebalance cost: populate a 2-shard array, then add a third
     drive to the live array and drain the migration queue. Default
     caches here — the constrained caches above exist to make the
     throughput sweep disk-bound, but they make the migration verifier
     thrash and would dominate the cost being measured. *)
  print_newline ();
  Report.heading "Scale: online rebalance cost (2 -> 3 drives under a populated array)";
  let sys = Systems.s4_array ~shards:2 () in
  let populate =
    { pm_config with Postmark.transactions = pm_config.Postmark.transactions / 2 }
  in
  ignore (Postmark.run ~config:populate sys);
  let router = Option.get sys.Systems.router in
  let extra =
    Drive.format ~config:Systems.benchmark_drive_config
      (Sim_disk.create ~geometry:Geometry.cheetah_9gb sys.Systems.clock)
  in
  let queued = Router.add_shard router 2 (Router.Single extra) in
  let secs, (moved, errors) =
    Systems.elapsed_seconds sys (fun () -> Router.rebalance router)
  in
  let st = Router.migration_stats router in
  let issues = Router.fsck router in
  Report.kv
    [
      ("moves queued by membership change", string_of_int queued);
      ("objects migrated", string_of_int moved);
      ("journal entries replayed", string_of_int st.Router.entries);
      ("data bytes copied", string_of_int st.Router.bytes);
      ("simulated rebalance time", Printf.sprintf "%.2f s" secs);
      ("migration errors", string_of_int (List.length errors));
      ("post-rebalance fsck issues", string_of_int (List.length issues));
    ];
  List.iter (fun e -> Printf.printf "  error: %s\n" e) errors;
  List.iter (fun i -> Printf.printf "  fsck: %s\n" i) issues;
  Report.record ~experiment:"scale_rebalance"
    [
      ("moves_queued", float_of_int queued);
      ("objects_migrated", float_of_int moved);
      ("entries_replayed", float_of_int st.Router.entries);
      ("bytes_copied", float_of_int st.Router.bytes);
      ("rebalance_seconds", secs);
      ("errors", float_of_int (List.length errors));
      ("fsck_issues", float_of_int (List.length issues));
    ];
  Report.write_json ~experiments:[ "scale"; "scale_domains"; "scale_rebalance" ]
    "BENCH_scale.json";
  Report.note "wrote BENCH_scale.json"

(* ------------------------------------------------------------------ *)
(* Trace: span tracer + metrics registry                               *)

module Trace = S4_obs.Trace
module Metrics = S4_obs.Metrics
module Check = S4_obs.Check
module Histogram = S4_util.Histogram

let trace () =
  Report.heading "Trace: per-request span trees + per-RPC-kind latency (drive and 4-shard array)";
  let pm_config = pm_seeded { Postmark.default with Postmark.files = 300; transactions = 600 } in
  let run_one ~experiment ~label sys =
    Trace.clear ();
    Metrics.reset ();
    Trace.enable ();
    let pm = Postmark.run ~config:pm_config sys in
    Trace.disable ();
    let spans = Trace.spans () in
    let res = Check.run spans in
    Printf.printf "\n%s: %d spans over the postmark run (%.1f txn/s), %d checker violations\n"
      label (Array.length spans) pm.Postmark.transactions_per_second
      (List.length res.Check.violations);
    List.iter (fun v -> Printf.printf "  VIOLATION %s\n" v) res.Check.violations;
    let hists = Metrics.histograms () in
    Report.table
      ~header:[ "layer/kind"; "n"; "mean us"; "p50 us"; "p95 us"; "max us" ]
      (List.map
         (fun (name, h) ->
           [
             name;
             string_of_int (Histogram.count h);
             Printf.sprintf "%.1f" (Histogram.mean h);
             Printf.sprintf "%.1f" (Histogram.percentile h 50.0);
             Printf.sprintf "%.1f" (Histogram.percentile h 95.0);
             Printf.sprintf "%.1f" (Histogram.max_value h);
           ])
         hists);
    List.iter
      (fun (name, h) ->
        Report.record ~experiment ~label:name
          [
            ("n", float_of_int (Histogram.count h));
            ("mean_us", Histogram.mean h);
            ("p50_us", Histogram.percentile h 50.0);
            ("p95_us", Histogram.percentile h 95.0);
            ("max_us", Histogram.max_value h);
          ])
      hists;
    (* A bounded span dump: enough of the head of the run to see whole
       request trees without exploding the JSON. *)
    Array.iteri
      (fun i s ->
        if i < 60 then
          Report.record ~experiment:"trace_spans"
            ~label:(Printf.sprintf "%s:%s/%s" label (Trace.layer_name s.Trace.layer) s.Trace.kind)
            [
              ("id", float_of_int s.Trace.id);
              ("parent", float_of_int s.Trace.parent);
              ("start_us", Int64.to_float s.Trace.start_ns /. 1e3);
              ("dur_us", Int64.to_float (Int64.sub s.Trace.stop_ns s.Trace.start_ns) /. 1e3);
              ("oid", Int64.to_float s.Trace.oid);
              ("bytes", float_of_int s.Trace.bytes);
              ("ok", if s.Trace.ok then 1.0 else 0.0);
            ])
      spans;
    res
  in
  let r1 = run_one ~experiment:"trace_drive" ~label:"drive" (Systems.s4_remote ()) in
  let r2 = run_one ~experiment:"trace_array" ~label:"array4" (Systems.s4_array ~shards:4 ()) in
  Report.write_json ~experiments:[ "trace_drive"; "trace_array"; "trace_spans" ] "BENCH_trace.json";
  Report.note "wrote BENCH_trace.json";
  if r1.Check.violations <> [] || r2.Check.violations <> [] then exit 1

(* ------------------------------------------------------------------ *)
(* Net: wire protocol — in-process vs loopback vs TCP                  *)

module Acl = S4.Acl
module Netserver = S4_net.Server
module Netclient = S4_net.Client
module Nettransport = S4_net.Transport

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let net () =
  Report.heading "Net: wire-protocol overhead — in-process vs loopback vs TCP (wall-clock)";
  let ops = if !full_scale then 20_000 else 4_000 in
  let payload = Bytes.make 1024 'x' in
  let cred = Rpc.user_cred ~user:1 ~client:1 in
  let mk_drive () =
    let clock = Simclock.create () in
    Drive.format ~config:Systems.content_drive_config
      (Sim_disk.create ~geometry:Geometry.cheetah_9gb clock)
  in
  let new_oid handle =
    match handle cred ?sync:None (Rpc.Create { acl = Acl.default ~owner:1 }) with
    | Rpc.R_oid oid -> oid
    | r -> Format.kasprintf failwith "net bench: create failed: %a" Rpc.pp_resp r
  in
  (* The same simulated drive work flows down every path; the wall-clock
     difference is what the codec, the session engine and the socket add. *)
  let run_path label (handle : Rpc.credential -> ?sync:bool -> Rpc.req -> Rpc.resp) =
    let oid = new_oid handle in
    ignore (handle cred (Rpc.Write { oid; off = 0; len = 1024; data = Some payload }));
    let secs, () =
      wall (fun () ->
          for _ = 1 to ops / 2 do
            ignore (handle cred (Rpc.Write { oid; off = 0; len = 1024; data = Some payload }));
            ignore (handle cred (Rpc.Read { oid; off = 0; len = 1024; at = None }))
          done)
    in
    let us_per_op = secs *. 1e6 /. float_of_int ops in
    Report.record ~experiment:"net" ~label
      [
        ("ops", float_of_int ops);
        ("wall_seconds", secs);
        ("us_per_op", us_per_op);
        ("ops_per_second", float_of_int ops /. secs);
      ];
    (label, us_per_op, float_of_int ops /. secs)
  in
  let inproc = run_path "in-process" (Drive.handle (mk_drive ())) in
  let loop_row =
    let srv = Netserver.of_drive (mk_drive ()) in
    let client = Netclient.connect (Nettransport.loopback srv) in
    let row = run_path "loopback" (Netclient.handle client) in
    Netclient.close client;
    row
  in
  let srv = Netserver.of_drive (mk_drive ()) in
  let listener = Netserver.serve_tcp srv in
  let client =
    Netclient.connect (Nettransport.tcp ~host:"127.0.0.1" ~port:(Netserver.port listener))
  in
  let tcp_row = run_path "tcp" (Netclient.handle client) in
  Report.table
    ~header:[ "path"; "us/op"; "ops/s" ]
    (List.map
       (fun (label, us, rate) ->
         [ label; Printf.sprintf "%.1f" us; Printf.sprintf "%.0f" rate ])
       [ inproc; loop_row; tcp_row ]);
  (* Pipelining sweep: request-id multiplexing lets one connection keep
     many requests in flight; depth 1 pays a full round trip per op. *)
  print_newline ();
  Report.heading "Net: TCP pipelining depth sweep (1KB reads)";
  let sweep_reads = if !full_scale then 4096 else 1024 in
  let oid = new_oid (Netclient.handle client) in
  ignore
    (Netclient.handle client cred (Rpc.Write { oid; off = 0; len = 1024; data = Some payload }));
  let read = Rpc.Read { oid; off = 0; len = 1024; at = None } in
  let sweep_rows =
    List.map
      (fun depth ->
        let batches = max 1 (sweep_reads / depth) in
        let secs, () =
          wall (fun () ->
              for _ = 1 to batches do
                ignore (Netclient.pipeline client cred (List.init depth (fun _ -> read)))
              done)
        in
        let n = batches * depth in
        let rate = float_of_int n /. secs in
        Report.record ~experiment:"net_pipeline" ~label:(string_of_int depth)
          [
            ("depth", float_of_int depth);
            ("reads", float_of_int n);
            ("wall_seconds", secs);
            ("reads_per_second", rate);
          ];
        [ string_of_int depth; string_of_int n; Printf.sprintf "%.0f" rate ])
      [ 1; 2; 4; 8; 16; 32 ]
  in
  Report.table ~header:[ "depth"; "reads"; "reads/s" ] sweep_rows;
  Netclient.close client;
  Netserver.shutdown listener;
  (* PostMark through the full stack over real TCP: translator -> net
     client -> socket -> daemon -> drive. *)
  print_newline ();
  Report.heading "Net: PostMark over TCP through the wire protocol";
  let sys, stop = Systems.s4_tcp () in
  let pm_config =
    pm_seeded
      (if !full_scale then Postmark.default
       else { Postmark.default with Postmark.files = 500; transactions = 2_000 })
  in
  let wall_s, pm = wall (fun () -> Postmark.run ~config:pm_config sys) in
  stop ();
  Printf.printf "postmark over tcp: %.1f txn/s simulated, %.2f s wall\n"
    pm.Postmark.transactions_per_second wall_s;
  Report.record ~experiment:"net_postmark" ~label:"tcp"
    [
      ("files", float_of_int pm_config.Postmark.files);
      ("transactions", float_of_int pm_config.Postmark.transactions);
      ("transactions_per_second", pm.Postmark.transactions_per_second);
      ("transaction_seconds", pm.Postmark.transaction_seconds);
      ("wall_seconds", wall_s);
    ];
  Report.record ~experiment:"net" ~label:"counters"
    [
      ("frames_in", float_of_int (Metrics.counter "net/frames_in"));
      ("frames_out", float_of_int (Metrics.counter "net/frames_out"));
      ("bytes_in", float_of_int (Metrics.counter "net/bytes_in"));
      ("bytes_out", float_of_int (Metrics.counter "net/bytes_out"));
      ("decode_reject", float_of_int (Metrics.counter "net/decode_reject"));
      ("retry", float_of_int (Metrics.counter "net/retry"));
      ("reconnect", float_of_int (Metrics.counter "net/reconnect"));
    ];
  Report.write_json ~experiments:[ "net"; "net_pipeline"; "net_postmark" ] "BENCH_net.json";
  Report.note "wrote BENCH_net.json"

(* ------------------------------------------------------------------ *)
(* Batch: vectored submission with group commit                        *)

(* Sweep the batch size over sync-bound mutations on three producers
   of the S4.Backend.t surface. Every batch ends in one durability
   barrier, so size 1 reproduces the old one-sync-per-mutation path
   and larger sizes amortize the barrier (group commit). Direct and
   sharded throughput is simulated time (the barrier is simulated disk
   work); the TCP cell's win is round trips, so it reports wall time —
   its clock is a client-side mirror the wire never advances. *)
let batch () =
  Report.heading "Batch: vectored submission group-commit sweep (batch size 1..64)";
  let total = if !full_scale then 2048 else 512 in
  let sizes = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let payload = Bytes.make 4096 'b' in
  let cred = Rpc.user_cred ~user:1 ~client:1 in
  (* Sync-bound configuration: the default 550us-per-RPC CPU charge
     caps simulated throughput at ~1.8k ops/s regardless of barriers,
     hiding exactly the cost this sweep measures. Dial it down so the
     durability barrier dominates each cell. *)
  let batch_drive_config =
    { Systems.content_drive_config with Drive.cpu_us_per_rpc = 50.0 }
  in
  let mk_drive clock =
    Drive.format ~config:batch_drive_config
      (Sim_disk.create ~geometry:Geometry.cheetah_9gb clock)
  in
  let run_cell (backend : S4.Backend.t) ~total kind k =
    let clock = backend.S4.Backend.clock in
    let targets =
      Array.init 8 (fun _ ->
          match S4.Backend.handle backend cred (Rpc.Create { acl = Acl.default ~owner:1 }) with
          | Rpc.R_oid oid -> oid
          | r -> Format.kasprintf failwith "batch bench: create failed: %a" Rpc.pp_resp r)
    in
    let mk_req i =
      match kind with
      | `Write ->
        Rpc.Write
          { oid = targets.(i mod 8); off = 4096 * (i mod 16); len = 4096; data = Some payload }
      | `Create -> Rpc.Create { acl = Acl.default ~owner:1 }
    in
    let t0 = Simclock.now clock in
    let done_ = ref 0 in
    let wall_s, () =
      wall (fun () ->
          while !done_ < total do
            let n = min k (total - !done_) in
            let reqs = Array.init n (fun j -> mk_req (!done_ + j)) in
            let resps = backend.S4.Backend.submit cred ~sync:true reqs in
            Array.iter
              (function
                | Rpc.R_error e ->
                  Format.kasprintf failwith "batch bench: %s" (Rpc.error_to_string e)
                | _ -> ())
              resps;
            done_ := !done_ + n
          done)
    in
    let sim_s = Simclock.to_seconds (Int64.sub (Simclock.now clock) t0) in
    (sim_s, wall_s)
  in
  (* Wall-clock cells get twice the ops: relative scheduler jitter
     shrinks with run length, and they are still sub-second. *)
  let total_for = function `Sim -> total | `Wall -> 2 * total in
  let workloads = [ ("write", `Write); ("create", `Create) ] in
  let cells =
    [
      ( "direct",
        `Sim,
        fun () ->
          let clock = Simclock.create () in
          (Drive.backend (mk_drive clock), fun () -> ()) );
      ( "shard4",
        `Sim,
        fun () ->
          let clock = Simclock.create () in
          let members = List.init 4 (fun i -> (i, Router.Single (mk_drive clock))) in
          (Router.backend (Router.create members), fun () -> ()) );
      ( "tcp",
        `Wall,
        fun () ->
          let srv = Netserver.of_drive (mk_drive (Simclock.create ())) in
          let listener = Netserver.serve_tcp srv in
          let client =
            Netclient.connect
              (Nettransport.tcp ~host:"127.0.0.1" ~port:(Netserver.port listener))
          in
          let backend = Netclient.backend ~clock:(Simclock.create ()) ~keep_data:true client in
          ( backend,
            fun () ->
              Netclient.close client;
              Netserver.shutdown listener ) );
    ]
  in
  List.iter
    (fun (wl_name, kind) ->
      Printf.printf "\nworkload: sync-bound %ss (%d ops, 1 barrier per batch)\n" wl_name total;
      let rows =
        List.map
          (fun (be_name, basis, mk) ->
            let base = ref 0.0 in
            let row =
              List.map
                (fun k ->
                  let total = total_for basis in
                  let once () =
                    let backend, stop = mk () in
                    let r = run_cell backend ~total kind k in
                    stop ();
                    r
                  in
                  let sim_s, wall_s =
                    match basis with
                    | `Sim -> once ()
                    | `Wall ->
                      (* Wall cells jitter with the OS scheduler: take
                         the best of three. *)
                      List.fold_left
                        (fun (bs, bw) (s, w) -> if w < bw then (s, w) else (bs, bw))
                        (once ())
                        [ once (); once () ]
                  in
                  let secs = match basis with `Sim -> sim_s | `Wall -> wall_s in
                  let rate = float_of_int total /. secs in
                  if k = 1 then base := rate;
                  Report.record ~experiment:"batch"
                    ~label:(Printf.sprintf "%s/%s/%d" be_name wl_name k)
                    [
                      ("batch", float_of_int k);
                      ("ops", float_of_int total);
                      ("sim_seconds", sim_s);
                      ("wall_seconds", wall_s);
                      ("ops_per_second", rate);
                      ("speedup_vs_1", rate /. !base);
                    ];
                  Printf.sprintf "%.0f (%.1fx)" rate (rate /. !base))
                sizes
            in
            (be_name ^ (match basis with `Sim -> " (sim)" | `Wall -> " (wall)")) :: row)
          cells
      in
      Report.table
        ~header:("backend \\ batch" :: List.map string_of_int sizes)
        rows)
    workloads;
  Report.write_json ~experiments:[ "batch" ] "BENCH_batch.json";
  Report.note "wrote BENCH_batch.json"

(* ------------------------------------------------------------------ *)
(* Integrity: what sealing the audit chain costs                       *)

(* Chaining itself is always on (a SHA-256 per audit record, CPU only);
   what the config gates is the per-barrier epoch seal — one extra log
   block riding the same flush as the records it covers. This sweep
   prices that seal against the unsealed drive across batch sizes and
   deployments; group commit amortizes one seal per batch, so the loss
   shrinks as the batch grows. *)
let integrity_bench () =
  Report.heading "Integrity: epoch-seal overhead at the durability barrier (batch 1..64)";
  let total = if !full_scale then 2048 else 512 in
  let sizes = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let payload = Bytes.make 4096 'b' in
  let cred = Rpc.user_cred ~user:1 ~client:1 in
  let config ~integrity =
    { Systems.content_drive_config with Drive.cpu_us_per_rpc = 50.0; integrity }
  in
  let mk_drive ~integrity clock =
    Drive.format ~config:(config ~integrity)
      (Sim_disk.create ~geometry:Geometry.cheetah_9gb clock)
  in
  let run_cell (backend : S4.Backend.t) ~total k =
    let clock = backend.S4.Backend.clock in
    let targets =
      Array.init 8 (fun _ ->
          match S4.Backend.handle backend cred (Rpc.Create { acl = Acl.default ~owner:1 }) with
          | Rpc.R_oid oid -> oid
          | r -> Format.kasprintf failwith "integrity bench: create failed: %a" Rpc.pp_resp r)
    in
    let mk_req i =
      Rpc.Write
        { oid = targets.(i mod 8); off = 4096 * (i mod 16); len = 4096; data = Some payload }
    in
    let t0 = Simclock.now clock in
    let done_ = ref 0 in
    let wall_s, () =
      wall (fun () ->
          while !done_ < total do
            let n = min k (total - !done_) in
            let reqs = Array.init n (fun j -> mk_req (!done_ + j)) in
            let resps = backend.S4.Backend.submit cred ~sync:true reqs in
            Array.iter
              (function
                | Rpc.R_error e ->
                  Format.kasprintf failwith "integrity bench: %s" (Rpc.error_to_string e)
                | _ -> ())
              resps;
            done_ := !done_ + n
          done)
    in
    let sim_s = Simclock.to_seconds (Int64.sub (Simclock.now clock) t0) in
    (sim_s, wall_s)
  in
  let total_for = function `Sim -> total | `Wall -> 2 * total in
  let cells =
    [
      ( "direct",
        `Sim,
        fun ~integrity ->
          let clock = Simclock.create () in
          (Drive.backend (mk_drive ~integrity clock), fun () -> ()) );
      ( "shard4",
        `Sim,
        fun ~integrity ->
          let clock = Simclock.create () in
          let members = List.init 4 (fun i -> (i, Router.Single (mk_drive ~integrity clock))) in
          (Router.backend (Router.create members), fun () -> ()) );
      ( "tcp",
        `Wall,
        fun ~integrity ->
          let srv = Netserver.of_drive (mk_drive ~integrity (Simclock.create ())) in
          let listener = Netserver.serve_tcp srv in
          let client =
            Netclient.connect
              (Nettransport.tcp ~host:"127.0.0.1" ~port:(Netserver.port listener))
          in
          let backend = Netclient.backend ~clock:(Simclock.create ()) ~keep_data:true client in
          ( backend,
            fun () ->
              Netclient.close client;
              Netserver.shutdown listener ) );
    ]
  in
  Printf.printf "\nsync-bound 4 KiB writes (%d ops, 1 barrier per batch); loss = sealed vs unsealed\n"
    total;
  let rows =
    List.map
      (fun (be_name, basis, mk) ->
        let row =
          List.map
            (fun k ->
              let total = total_for basis in
              let rate ~integrity =
                let once () =
                  let backend, stop = mk ~integrity in
                  let r = run_cell backend ~total k in
                  stop ();
                  r
                in
                let sim_s, wall_s =
                  match basis with
                  | `Sim -> once ()
                  | `Wall ->
                    List.fold_left
                      (fun (bs, bw) (s, w) -> if w < bw then (s, w) else (bs, bw))
                      (once ())
                      [ once (); once () ]
                in
                float_of_int total /. (match basis with `Sim -> sim_s | `Wall -> wall_s)
              in
              let unsealed = rate ~integrity:false in
              let sealed = rate ~integrity:true in
              let loss_pct = 100.0 *. (1.0 -. (sealed /. unsealed)) in
              Report.record ~experiment:"integrity"
                ~label:(Printf.sprintf "%s/%d" be_name k)
                [
                  ("batch", float_of_int k);
                  ("ops", float_of_int total);
                  ("sealed_ops_per_second", sealed);
                  ("unsealed_ops_per_second", unsealed);
                  ("loss_pct", loss_pct);
                ];
              Printf.sprintf "%.1f%%" loss_pct)
            sizes
        in
        (be_name ^ (match basis with `Sim -> " (sim)" | `Wall -> " (wall)")) :: row)
      cells
  in
  Report.table ~header:("backend \\ batch" :: List.map string_of_int sizes) rows;
  Report.write_json ~experiments:[ "integrity" ] "BENCH_integrity.json";
  Report.note "wrote BENCH_integrity.json"

(* ------------------------------------------------------------------ *)
(* Persist: what real durability costs                                 *)

module File_disk = S4_disk.File_disk
module Crashtest = S4_tools.Crashtest

(* The batch-16 sync-bound write workload from the group-commit sweep,
   run over the three sector backings: in-memory (the simulation
   baseline, no host I/O), file-backed (pwrite + one fsync per
   barrier), and file-backed with O_DSYNC (every write synchronous).
   Simulated time is identical across backings by construction — the
   timing model doesn't know where sectors live — so the wall-clock
   column is the durability price. *)
let persist () =
  Report.heading "Persist: sector-store backings under sync-bound writes (batch 16)";
  let total = if !full_scale then 2048 else 512 in
  let k = 16 in
  let payload = Bytes.make 4096 'p' in
  let cred = Rpc.user_cred ~user:1 ~client:1 in
  let config = { Systems.content_drive_config with Drive.cpu_us_per_rpc = 50.0 } in
  let pgeom = Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(64 * 1024 * 1024) in
  let run_cell (backend : S4.Backend.t) =
    let clock = backend.S4.Backend.clock in
    let targets =
      Array.init 8 (fun _ ->
          match S4.Backend.handle backend cred (Rpc.Create { acl = Acl.default ~owner:1 }) with
          | Rpc.R_oid oid -> oid
          | r -> Format.kasprintf failwith "persist bench: create failed: %a" Rpc.pp_resp r)
    in
    let t0 = Simclock.now clock in
    let done_ = ref 0 in
    let wall_s, () =
      wall (fun () ->
          while !done_ < total do
            let n = min k (total - !done_) in
            let reqs =
              Array.init n (fun j ->
                  let i = !done_ + j in
                  Rpc.Write
                    { oid = targets.(i mod 8); off = 4096 * (i mod 16); len = 4096;
                      data = Some payload })
            in
            let resps = backend.S4.Backend.submit cred ~sync:true reqs in
            Array.iter
              (function
                | Rpc.R_error e ->
                  Format.kasprintf failwith "persist bench: %s" (Rpc.error_to_string e)
                | _ -> ())
              resps;
            done_ := !done_ + n
          done)
    in
    (Simclock.to_seconds (Int64.sub (Simclock.now clock) t0), wall_s)
  in
  let cells =
    [
      ( "sim",
        fun () ->
          let disk = Sim_disk.create ~geometry:pgeom (Simclock.create ()) in
          (disk, fun () -> ()) );
      ( "file",
        fun () ->
          let path = Filename.temp_file "s4persist" ".s4" in
          let disk = Sim_disk.of_file (File_disk.create ~path pgeom) in
          (disk, fun () -> (try Sys.remove path with Sys_error _ -> ())) );
      ( "file-dsync",
        fun () ->
          let path = Filename.temp_file "s4persist" ".s4" in
          let disk = Sim_disk.of_file (File_disk.create ~dsync:true ~path pgeom) in
          (disk, fun () -> (try Sys.remove path with Sys_error _ -> ())) );
    ]
  in
  let rows =
    List.map
      (fun (name, mk) ->
        let once () =
          let disk, cleanup = mk () in
          let r = run_cell (Drive.backend (Drive.format ~config disk)) in
          let fsyncs =
            match Sim_disk.file_backing disk with Some f -> File_disk.syncs f | None -> 0
          in
          Sim_disk.close disk;
          cleanup ();
          (r, fsyncs)
        in
        (* Wall cells jitter with the OS scheduler: best of three. *)
        let (sim_s, wall_s), fsyncs =
          List.fold_left
            (fun ((((_, bw), _) as best) : (float * float) * int) (((_, w), _) as r) ->
              if w < bw then r else best)
            (once ())
            [ once (); once () ]
        in
        let wall_rate = float_of_int total /. wall_s in
        Report.record ~experiment:"persist" ~label:name
          [
            ("batch", float_of_int k);
            ("ops", float_of_int total);
            ("sim_seconds", sim_s);
            ("wall_seconds", wall_s);
            ("wall_ops_per_second", wall_rate);
            ("sim_ops_per_second", float_of_int total /. sim_s);
            ("fsyncs", float_of_int fsyncs);
          ];
        [
          name;
          Printf.sprintf "%.3f" sim_s;
          Printf.sprintf "%.4f" wall_s;
          Printf.sprintf "%.0f" wall_rate;
          string_of_int fsyncs;
        ])
      cells
  in
  Report.table
    ~header:[ "backing"; "sim s"; "wall s (best of 3)"; "wall writes/s"; "fsyncs" ]
    rows;
  Report.write_json ~experiments:[ "persist" ] "BENCH_persist.json";
  Report.note "wrote BENCH_persist.json"

(* ------------------------------------------------------------------ *)
(* Kill -9: acked-write durability across real process kills           *)

let kill9 () =
  Report.heading "Kill -9: fork a server, kill it cold, verify every acked sync";
  let runs = if !full_scale then 60 else 30 in
  let seed = rng_seed 42 in
  let reports = Crashtest.kill9_sweep ~seed ~runs () in
  List.iter (fun r -> Format.printf "  %a@." Crashtest.pp_report r) reports;
  let failed = Crashtest.failed_reports reports in
  let sum f = List.fold_left (fun a r -> a + f r) 0 reports in
  let acked = sum (fun r -> r.Crashtest.ops_before_crash) in
  let snaps = sum (fun r -> r.Crashtest.snapshots) in
  let audit = sum (fun r -> r.Crashtest.audit_checked) in
  Report.record ~experiment:"kill9" ~label:"sweep"
    [
      ("runs", float_of_int runs);
      ("failed", float_of_int (List.length failed));
      ("acked_ops", float_of_int acked);
      ("snapshots_checked", float_of_int snaps);
      ("audit_records_matched", float_of_int audit);
    ];
  Printf.printf
    "%d kills: %d acked ops, %d synced snapshots verified, %d audit records matched, %d failed\n"
    runs acked snaps audit (List.length failed);
  if failed <> [] then begin
    Printf.eprintf "kill9: %d runs lost acknowledged writes or broke invariants\n"
      (List.length failed);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Intrusion campaigns: detection, forensics and rollback end to end   *)

module Campaign = S4_tools.Campaign

(* Seeded attacker campaigns (trojaned binaries, log scrubbing,
   timestomping, mass deletion, slow exfiltration) against a single
   drive and a 4-shard mirrored array, at growing damage scales. Each
   cell reports detection latency per attack class, rollback time
   against damage size, and the RPC rate sustained during recovery —
   and is gated on the ground-truth oracle: any undetected class,
   surviving attacker mutation, lost legitimate write or broken audit
   chain fails the whole run. *)
let intrusion () =
  Report.heading "Intrusion campaigns: detection latency, rollback cost, recovery throughput";
  let seed = rng_seed 42 in
  let scales = if !full_scale then [ 2; 4; 8; 12 ] else [ 2; 4; 8 ] in
  let cells =
    List.concat_map
      (fun apc ->
        [
          ( Printf.sprintf "drive/x%d" apc,
            { Campaign.default with Campaign.seed; attacks_per_class = apc } );
          ( Printf.sprintf "array4m/x%d" apc,
            { Campaign.default with
              Campaign.seed;
              attacks_per_class = apc;
              deployment = Campaign.Array { shards = 4; mirrored = true };
              disk_mb = 32 } );
        ])
      scales
  in
  let failures = ref 0 in
  let rows =
    List.map
      (fun (label, cfg) ->
        let o = Campaign.run cfg in
        (match Campaign.problems o with
         | [] -> ()
         | ps ->
           incr failures;
           Printf.eprintf "intrusion %s: oracle violations:\n" label;
           List.iter (fun p -> Printf.eprintf "  %s\n" p) ps);
        let lats = List.map snd o.Campaign.o_classes in
        let worst = List.fold_left max 0.0 lats in
        let mean = List.fold_left ( +. ) 0.0 lats /. float_of_int (List.length lats) in
        Report.record ~experiment:"intrusion" ~label
          ([
             ("attack_ops", float_of_int o.Campaign.o_attack_ops);
             ("damage_objects", float_of_int o.Campaign.o_damage_objects);
             ("damage_bytes", float_of_int o.Campaign.o_damage_bytes);
             ("denied_probes", float_of_int o.Campaign.o_denied_probes);
             ("detect_latency_mean_s", mean);
             ("detect_latency_worst_s", worst);
             ("rollback_s", o.Campaign.o_rollback_s);
             ("recovery_rpcs", float_of_int o.Campaign.o_recovery_rpcs);
             ("recovery_ops_per_s", o.Campaign.o_recovery_ops_per_s);
             ("files_restored", float_of_int o.Campaign.o_report.S4_tools.Recovery.files_restored);
             ("intruder_entries_removed", float_of_int o.Campaign.o_report.S4_tools.Recovery.files_removed);
             ("oracle_violations", float_of_int (List.length (Campaign.problems o)));
           ]
          @ List.map (fun (c, l) -> ("detect_" ^ c ^ "_s", l)) o.Campaign.o_classes);
        [
          label;
          string_of_int o.Campaign.o_damage_objects;
          string_of_int o.Campaign.o_damage_bytes;
          Printf.sprintf "%.2f" mean;
          Printf.sprintf "%.2f" worst;
          Printf.sprintf "%.3f" o.Campaign.o_rollback_s;
          Printf.sprintf "%.0f" o.Campaign.o_recovery_ops_per_s;
          (if Campaign.clean o then "clean" else "VIOLATED");
        ])
      cells
  in
  Report.table
    ~header:
      [ "cell"; "objects"; "bytes"; "detect mean s"; "detect worst s"; "rollback s";
        "rec ops/s"; "oracle" ]
    rows;
  Report.write_json ~experiments:[ "intrusion" ] "BENCH_intrusion.json";
  Report.note "wrote BENCH_intrusion.json";
  Report.note
    "every cell is oracle-gated: all five attack classes detected, zero surviving attacker \
     mutations, zero lost legitimate writes, audit chain verified end to end";
  if !failures > 0 then begin
    Printf.eprintf "intrusion: %d cells violated the recovery oracle\n" !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Readscale: replica reads + client cache + per-client fair queueing  *)

module Mirror = S4_multi.Mirror
module Wire = S4_net.Wire
module Wfq = S4_qos.Wfq

(* Read-path scale-out, oracle-gated:
   (a) balanced mirror reads + overlapped batch charging must beat
       primary-only reads by >= 1.5x at >= 4 clients;
   (b) the lease-backed client cache must serve hot-set hits without
       touching the wire at all;
   (c) under a flooding client, an honest client's p99 read latency on
       the weighted-fair server must stay within 2x of the no-hog
       baseline. *)
let readscale () =
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let cred = Rpc.user_cred ~user:1 ~client:1 in
  let p99 lats =
    let a = Array.of_list lats in
    Array.sort compare a;
    let n = Array.length a in
    a.(min (n - 1) (int_of_float (ceil (0.99 *. float_of_int n)) - 1))
  in

  (* --- (a) replica reads: ops/s vs client count ------------------- *)
  Report.heading "Readscale: replica reads — mirrored 4-shard array, balanced vs primary-only";
  let objects = 1024 in
  let obj_bytes = 4096 in
  let reads_per_client = 16 in
  let rounds = if !full_scale then 60 else 20 in
  let client_counts = [ 1; 2; 4; 8; 16 ] in
  let payload = Bytes.make obj_bytes 'r' in
  (* Caches sized well below the 4 MB working set per replica: random
     reads are spindle reads, so the sweep measures disk parallelism,
     not RAM. *)
  let mirror_drive_config =
    {
      Systems.content_drive_config with
      Drive.store =
        {
          Systems.content_drive_config.Drive.store with
          Store.block_cache_bytes = 256 * 1024;
          object_cache_bytes = 256 * 1024;
        };
    }
  in
  let read_rate ~balanced clients =
    let sys =
      Systems.s4_array
        ~config:
          {
            Systems.Config.default with
            mirrored = true;
            balanced;
            read_overlap = true;
            drive_config = mirror_drive_config;
          }
        ~shards:4 ()
    in
    let router = Option.get sys.Systems.router in
    let oids =
      Router.submit router cred
        (Array.init objects (fun _ -> Rpc.Create { acl = S4.Acl.default ~owner:1 }))
      |> Array.mapi (fun i -> function
           | Rpc.R_oid oid -> oid
           | r -> Format.kasprintf failwith "readscale: create %d failed: %a" i Rpc.pp_resp r)
    in
    ignore
      (Router.submit router cred
         (Array.map
            (fun oid -> Rpc.Write { oid; off = 0; len = obj_bytes; data = Some payload })
            oids));
    Router.sync_all router;
    let rng = Rng.create ~seed:(rng_seed 1811) in
    let idx = Array.init objects (fun i -> i) in
    let shuffle () =
      for i = objects - 1 downto 1 do
        let j = Rng.int rng (i + 1) in
        let tmp = idx.(i) in
        idx.(i) <- idx.(j);
        idx.(j) <- tmp
      done
    in
    Systems.drop_all_caches sys;
    let t0 = Simclock.now sys.Systems.clock in
    for _ = 1 to rounds do
      (* Distinct objects per round; each client contributes a run of
         reads, interleaved round-robin the way concurrent readers
         arrive at a shared array. *)
      shuffle ();
      let n = clients * reads_per_client in
      let reqs =
        Array.init n (fun k ->
            Rpc.Read { oid = oids.(idx.(k mod objects)); off = 0; len = obj_bytes; at = None })
      in
      Array.iteri
        (fun i r ->
          match r with
          | Rpc.R_data _ -> ()
          | r -> Format.kasprintf failwith "readscale: read %d failed: %a" i Rpc.pp_resp r)
        (Router.submit router cred reqs)
    done;
    let secs = Simclock.to_seconds (Int64.sub (Simclock.now sys.Systems.clock) t0) in
    let prim, sec =
      List.fold_left
        (fun (p, s) id ->
          match Router.member router id with
          | Router.Mirrored m ->
            let mp, ms = Mirror.read_counts m in
            (p + mp, s + ms)
          | Router.Single _ -> (p, s))
        (0, 0) (Router.shard_ids router)
    in
    (float_of_int (rounds * clients * reads_per_client) /. secs, prim, sec)
  in
  let mirror_rows =
    List.map
      (fun clients ->
        let base, _, _ = read_rate ~balanced:false clients in
        let bal, prim, sec = read_rate ~balanced:true clients in
        let speedup = bal /. base in
        Report.record ~experiment:"readscale_mirror" ~label:(string_of_int clients)
          [
            ("clients", float_of_int clients);
            ("primary_only_ops_per_s", base);
            ("balanced_ops_per_s", bal);
            ("speedup", speedup);
            ("balanced_primary_reads", float_of_int prim);
            ("balanced_secondary_reads", float_of_int sec);
          ];
        (clients, base, bal, speedup, prim, sec))
      client_counts
  in
  Report.table
    ~header:[ "clients"; "primary-only ops/s"; "balanced ops/s"; "speedup"; "replica split" ]
    (List.map
       (fun (c, base, bal, sp, prim, sec) ->
         [
           string_of_int c;
           Printf.sprintf "%.0f" base;
           Printf.sprintf "%.0f" bal;
           Printf.sprintf "%.2fx" sp;
           Printf.sprintf "%d/%d" prim sec;
         ])
       mirror_rows);
  if
    not
      (List.exists (fun (c, _, _, sp, _, _) -> c >= 4 && sp >= 1.5) mirror_rows)
  then
    violate "mirrored reads never reached 1.5x primary-only at >= 4 clients";
  (List.iter (fun (c, _, _, _, prim, sec) ->
       if c >= 2 && (prim = 0 || sec = 0) then
         violate "balanced policy never touched one replica (%d clients: %d/%d)" c prim sec))
    mirror_rows;

  (* --- (b) lease-backed client cache: hot-set sweep ---------------- *)
  print_newline ();
  Report.heading "Readscale: lease-backed client cache — hot-set hit-rate sweep (loopback wire)";
  let files = 96 in
  let hot_set = 8 in
  let sweep_reads = if !full_scale then 4_000 else 1_500 in
  let file_bytes = 1024 in
  let cache_cell hot_fraction =
    let clock = Simclock.create () in
    let drive =
      Drive.format ~config:Systems.content_drive_config
        (Sim_disk.create ~geometry:Geometry.cheetah_9gb clock)
    in
    let server_config =
      { Netserver.default_config with Netserver.lease_ns = 120_000_000_000L }
    in
    let srv = Netserver.of_drive ~config:server_config drive in
    (* Budget ~24 cached reads: the 8-object hot set fits and stays,
       the cold tail churns through the LRU. *)
    let client_config =
      {
        Netclient.default_config with
        Netclient.cache_budget = 24 * (file_bytes + 32);
        cache_journal = true;
      }
    in
    let client = Netclient.connect ~config:client_config (Nettransport.loopback srv) in
    let data = Bytes.make file_bytes 'c' in
    let oids =
      Array.init files (fun i ->
          match Netclient.handle client cred (Rpc.Create { acl = S4.Acl.default ~owner:1 }) with
          | Rpc.R_oid oid ->
            ignore
              (Netclient.handle client cred
                 (Rpc.Write { oid; off = 0; len = file_bytes; data = Some data }));
            oid
          | r -> Format.kasprintf failwith "cache cell: create %d: %a" i Rpc.pp_resp r)
    in
    ignore (Netclient.handle client Rpc.admin_cred Rpc.Sync);
    let rng = Rng.create ~seed:(rng_seed 2203) in
    let frames_before = Metrics.counter "net/frames_in" in
    let t0 = Simclock.now clock in
    for _ = 1 to sweep_reads do
      let oid =
        if Rng.float rng 1.0 < hot_fraction then oids.(Rng.int rng hot_set)
        else oids.(hot_set + Rng.int rng (files - hot_set))
      in
      match Netclient.handle client cred (Rpc.Read { oid; off = 0; len = file_bytes; at = None }) with
      | Rpc.R_data _ -> ()
      | r -> Format.kasprintf failwith "cache cell: read: %a" Rpc.pp_resp r
    done;
    let secs = Simclock.to_seconds (Int64.sub (Simclock.now clock) t0) in
    let wire_frames = Metrics.counter "net/frames_in" - frames_before in
    let cache = Option.get (Netclient.cache client) in
    let hits = S4_net.Cache.hits cache and misses = S4_net.Cache.misses cache in
    (match S4_net.Cache.check cache with
     | Ok () -> ()
     | Error e -> violate "lease checker (hot=%.1f): %s" hot_fraction e);
    if hits + misses <> sweep_reads then
      violate "cache accounting: %d hits + %d misses <> %d reads" hits misses sweep_reads;
    (* The whole point: a hit never crosses the wire. Wire traffic is
       bounded by the misses (one Request frame each). *)
    if hot_fraction > 0.0 && hits = 0 then violate "hot set produced no cache hits";
    (* One miss = one round trip = two frame-received events (one at
       the server, one at the client). A hit contributes neither. *)
    if wire_frames > 2 * (sweep_reads - hits) then
      violate "cache hits leaked onto the wire: %d frame events for %d misses" wire_frames
        (sweep_reads - hits);
    Netclient.close client;
    (hot_fraction, float_of_int sweep_reads /. secs, hits, misses, wire_frames / 2)
  in
  let cache_rows = List.map cache_cell [ 0.0; 0.5; 0.9 ] in
  List.iter
    (fun (hot, rate, hits, misses, frames) ->
      Report.record ~experiment:"readscale_cache" ~label:(Printf.sprintf "hot%.1f" hot)
        [
          ("hot_fraction", hot);
          ("reads", float_of_int sweep_reads);
          ("ops_per_s", rate);
          ("cache_hits", float_of_int hits);
          ("cache_misses", float_of_int misses);
          ("wire_round_trips", float_of_int frames);
          ("hit_rate", float_of_int hits /. float_of_int sweep_reads);
        ])
    cache_rows;
  Report.table
    ~header:[ "hot fraction"; "ops/s"; "hits"; "misses"; "wire round trips" ]
    (List.map
       (fun (hot, rate, hits, misses, frames) ->
         [
           Printf.sprintf "%.1f" hot;
           Printf.sprintf "%.0f" rate;
           string_of_int hits;
           string_of_int misses;
           string_of_int frames;
         ])
       cache_rows);

  (* --- (c) noisy neighbor: honest p99 under a flooding client ------ *)
  print_newline ();
  Report.heading "Readscale: per-client fair queueing — honest p99 under a flooding client";
  let qos_rounds = if !full_scale then 120 else 60 in
  let hog_batches = 6 and hog_batch = 24 in
  let hog_bytes = 2048 in
  let mk_pair ~qos =
    let clock = Simclock.create () in
    let drive =
      Drive.format ~config:Systems.content_drive_config
        (Sim_disk.create ~geometry:Geometry.cheetah_9gb clock)
    in
    let config =
      { Netserver.default_config with Netserver.qos; max_inflight = 4096 }
    in
    let srv = Netserver.of_drive ~config drive in
    let hog = Netserver.Session.create ~identity:7 srv in
    let honest = Netserver.Session.create ~identity:8 srv in
    (* Seed one object per client. *)
    let mk_oid sess =
      let frame =
        Wire.encode
          (Wire.Request { xid = 1L; cred; sync = false; req = Rpc.Create { acl = [] } })
      in
      Netserver.Session.feed sess frame 0 (Bytes.length frame);
      Netserver.Session.run sess;
      let rec find pos b =
        match Wire.decode b ~pos ~avail:(Bytes.length b - pos) with
        | Wire.Frame (Wire.Response { resp = Rpc.R_oid oid; _ }, _) -> oid
        | Wire.Frame (_, used) -> find (pos + used) b
        | _ -> failwith "readscale qos: no oid response"
      in
      find 0 (Netserver.Session.output sess)
    in
    let hog_oid = mk_oid hog and honest_oid = mk_oid honest in
    let wframe =
      let data = Some (Bytes.make hog_bytes 'h') in
      Wire.encode
        (Wire.Batch
           {
             xid = 99L;
             cred = Rpc.user_cred ~user:2 ~client:7;
             sync = false;
             reqs =
               Array.init hog_batch (fun _ ->
                   Rpc.Write { oid = hog_oid; off = 0; len = hog_bytes; data });
           })
    in
    let seed =
      Wire.encode
        (Wire.Request
           {
             xid = 2L;
             cred;
             sync = false;
             req = Rpc.Write { oid = honest_oid; off = 0; len = 1024; data = Some (Bytes.make 1024 'o') };
           })
    in
    Netserver.Session.feed honest seed 0 (Bytes.length seed);
    Netserver.Session.run honest;
    ignore (Netserver.Session.output honest);
    (clock, drive, srv, hog, honest, honest_oid, wframe)
  in
  let honest_read honest_oid xid =
    Wire.encode
      (Wire.Request
         { xid; cred; sync = false; req = Rpc.Read { oid = honest_oid; off = 0; len = 1024; at = None } })
  in
  let run_cell ~qos ~with_hog label =
    let clock, drive, srv, hog, honest, honest_oid, wframe = mk_pair ~qos in
    ignore drive;
    let lats = ref [] in
    for round = 1 to qos_rounds do
      Store.drop_caches (Drive.store drive);
      if with_hog then
        for _ = 1 to hog_batches do
          Netserver.Session.feed hog wframe 0 (Bytes.length wframe)
        done;
      let rframe = honest_read honest_oid (Int64.of_int (100 + round)) in
      Netserver.Session.feed honest rframe 0 (Bytes.length rframe);
      let t0 = Simclock.now clock in
      if not qos then begin
        (* Per-session FIFO service in arrival order: the flood runs
           first, the honest read waits behind all of it. *)
        if with_hog then Netserver.Session.run hog;
        ignore (Netserver.Session.step honest)
      end
      else begin
        (* Shared weighted-fair queue: step until the honest reply is
           out; its cost-1 read outranks the hog's cost-24 batches. *)
        let answered = ref false in
        while not !answered do
          if not (Netserver.Session.step honest) then answered := true
          else if Bytes.length (Netserver.Session.output honest) > 0 then answered := true
        done
      end;
      lats := Int64.to_float (Int64.sub (Simclock.now clock) t0) :: !lats;
      (* Drain the remaining flood before the next round. *)
      Netserver.Session.run hog;
      ignore (Netserver.Session.output hog);
      ignore (Netserver.Session.output honest)
    done;
    (match Netserver.scheduler srv with
     | Some sched ->
       Printf.printf "  %s: wfq served hog=%.0f honest=%.0f units, vtime %.1f\n" label
         (Wfq.served sched ~client:7) (Wfq.served sched ~client:8)
         (Wfq.virtual_time sched)
     | None -> ());
    !lats
  in
  let base = run_cell ~qos:true ~with_hog:false "no-hog" in
  let fifo = run_cell ~qos:false ~with_hog:true "fifo+hog" in
  let fair = run_cell ~qos:true ~with_hog:true "wfq+hog" in
  let ms v = v /. 1e6 in
  let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  let rows =
    [
      ("no hog (baseline)", base); ("hog, per-session FIFO", fifo); ("hog, weighted-fair", fair);
    ]
  in
  List.iter
    (fun (label, lats) ->
      Report.record ~experiment:"readscale_qos" ~label
        [
          ("rounds", float_of_int qos_rounds);
          ("p99_ms", ms (p99 lats));
          ("mean_ms", ms (mean lats));
        ])
    rows;
  Report.table
    ~header:[ "cell"; "honest mean (ms)"; "honest p99 (ms)" ]
    (List.map
       (fun (label, lats) ->
         [ label; Printf.sprintf "%.2f" (ms (mean lats)); Printf.sprintf "%.2f" (ms (p99 lats)) ])
       rows);
  let p99_base = p99 base and p99_fair = p99 fair and p99_fifo = p99 fifo in
  if p99_fair > 2.0 *. p99_base then
    violate "honest p99 under WFQ is %.2f ms, more than 2x the %.2f ms no-hog baseline"
      (ms p99_fair) (ms p99_base);
  if p99_fifo < p99_fair then
    violate "FIFO out-isolated WFQ (%.2f ms < %.2f ms): scheduler not engaging" (ms p99_fifo)
      (ms p99_fair);

  Report.write_json
    ~experiments:[ "readscale_mirror"; "readscale_cache"; "readscale_qos" ]
    "BENCH_readscale.json";
  Report.note "wrote BENCH_readscale.json";
  Report.note
    "oracle-gated: balanced reads >= 1.5x at >= 4 clients; cache hits never touch the wire \
     (lease checker clean); honest p99 under a hog within 2x of no-hog";
  match !violations with
  | [] -> ()
  | vs ->
    List.iter (fun v -> Printf.eprintf "readscale ORACLE VIOLATION: %s\n" v) (List.rev vs);
    exit 1

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ("table1", "Table 1: RPC interface exercise", table1);
    ("fig2", "Figure 2: journal-based metadata space", fig2);
    ("fig3", "Figure 3: PostMark, four servers", fig3);
    ("fig4", "Figure 4: SSH-build, four servers", fig4);
    ("fig5", "Figure 5: cleaner overhead sweep", fig5);
    ("fig6", "Figure 6: audit microbenchmark", fig6);
    ("audit-macro", "Sec 5.1.4: audit penalty on PostMark", audit_macro);
    ("fundamental", "Sec 5.1.5: history-pool cleaning surcharge", fundamental);
    ("fig7", "Figure 7: projected detection window", fig7);
    ("diffstudy", "Sec 5.2: differencing + compression", diffstudy);
    ("snapshots", "Sec 6: versioning vs snapshots", snapshots);
    ("ablation", "design-parameter sensitivity sweeps", ablation);
    ("faults", "media-fault sweep + crash-recovery spot check", faults);
    ("scale", "sharded-array throughput scaling + rebalance cost", scale);
    ("net", "wire protocol: in-process vs loopback vs TCP + pipelining", net);
    ("batch", "vectored submission group-commit sweep, batch size 1..64", batch);
    ("integrity", "audit-chain seal overhead vs unsealed, batch size 1..64", integrity_bench);
    ("persist", "sector-store backings: sim vs file vs file+O_DSYNC", persist);
    ("kill9", "kill -9 a live server at random points; verify acked syncs", kill9);
    ("intrusion", "attacker campaigns: detect, attribute, roll back (oracle-gated)", intrusion);
    ("readscale", "read-path scale-out: replica reads, client cache, WFQ (oracle-gated)", readscale);
    ("trace", "span tracer + metrics registry over drive and array runs", trace);
    ("micro", "bechamel micro-benchmarks", micro);
  ]

(* "fundamental" re-runs the fig5 sweep itself, so the run-everything
   default skips the redundant separate fig5 pass. *)
let default_run =
  [ "table1"; "fig2"; "fig3"; "fig4"; "fundamental"; "fig6"; "audit-macro"; "fig7"; "diffstudy";
    "snapshots"; "ablation"; "faults"; "scale"; "net"; "batch"; "integrity"; "persist"; "micro" ]

let () =
  let json_file = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--full" :: rest ->
      full_scale := true;
      parse acc rest
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse acc rest
    | "--seed" :: n :: rest ->
      (match int_of_string_opt n with
      | Some s -> seed_override := Some s
      | None ->
        Printf.eprintf "--seed expects an integer, got %S\n" n;
        exit 1);
      parse acc rest
    | [ ("--json" | "--seed") ] ->
      Printf.eprintf "missing value for trailing flag\n";
      exit 1
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let selected = match args with [] -> default_run | names -> names in
  List.iter
    (fun name ->
      match List.find_opt (fun (n, _, _) -> n = name) experiments with
      | Some (_, _, f) -> f ()
      | None ->
        Printf.eprintf "unknown experiment %S; available: %s\n" name
          (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
        exit 1)
    selected;
  (match !json_file with
  | Some file ->
    Report.write_json file;
    Printf.printf "\nwrote %s\n" file
  | None -> ());
  print_newline ()
