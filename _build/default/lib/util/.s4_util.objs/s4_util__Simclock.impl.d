lib/util/simclock.ml: Format Int64
