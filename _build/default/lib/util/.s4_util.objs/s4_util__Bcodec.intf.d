lib/util/bcodec.mli: Bytes
