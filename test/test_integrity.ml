(* Tests for the tamper-evident audit subsystem: chain/seal codecs,
   the pure verification state machine over synthetic chains, the
   cross-shard catalog, and the crashtest tamper-injection scenarios
   (a real drive, a real persisted log, an attacker with the platter). *)

module Rng = S4_util.Rng
module Bcodec = S4_util.Bcodec
module Chain = S4_integrity.Chain
module Catalog = S4_integrity.Catalog
module Crashtest = S4_tools.Crashtest

let check = Alcotest.check
let qtest = Qseed.qtest

(* --- generators ----------------------------------------------------- *)

let gen_hash = QCheck.Gen.(string_size ~gen:char (return Chain.hash_len))

let gen_head =
  QCheck.Gen.(
    map3
      (fun epoch records hash -> { Chain.epoch; records; hash })
      (0 -- 10_000) (0 -- 1_000_000) gen_hash)

let arb_head = QCheck.make ~print:(Format.asprintf "%a" Chain.pp_head) gen_head

(* A well-formed synthetic chain: [nblocks] blocks of [1..per_block]
   random records each, priors computed honestly, a seal after every
   [seal_every]th block. Returns the items plus the sealed heads in
   epoch order. *)
let build_chain ~seed ~nblocks ~per_block ~seal_every =
  let rng = Rng.create ~seed in
  let canon () =
    let n = 4 + Rng.int rng 28 in
    let b = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.set b i (Char.chr (Rng.int rng 256))
    done;
    b
  in
  let items = ref [] in
  let seals = ref [] in
  let idx = ref 0 in
  let hash = ref Chain.genesis_hash in
  let epoch = ref 0 in
  for k = 0 to nblocks - 1 do
    let canons = List.init (1 + Rng.int rng per_block) (fun _ -> canon ()) in
    items := Chain.Block { b_start = !idx; b_prior = !hash; b_canons = canons } :: !items;
    idx := !idx + List.length canons;
    hash := Chain.extend_all !hash canons;
    if (k + 1) mod seal_every = 0 then begin
      incr epoch;
      let h = { Chain.epoch = !epoch; records = !idx; hash = !hash } in
      seals := h :: !seals;
      items := Chain.Seal { s_head = h; s_at = Int64.of_int (1000 * !epoch) } :: !items
    end
  done;
  (List.rev !items, List.rev !seals, !idx)

let flip_bit b i bit = Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)))

(* --- codecs ---------------------------------------------------------- *)

let prop_head_roundtrip =
  QCheck.Test.make ~name:"head codec round-trips" ~count:300 arb_head (fun h ->
      let w = Bcodec.writer () in
      Chain.write_head w h;
      Chain.equal_head h (Chain.read_head (Bcodec.reader (Bcodec.contents w))))

let gen_result =
  QCheck.Gen.(
    map
      (fun ((records, sealed, epochs), (head, tail), (pruned, first_bad, errors)) ->
        {
          Chain.v_records = records;
          v_sealed = sealed;
          v_epochs = epochs;
          v_head = head;
          v_tail = tail;
          v_pruned = pruned;
          v_first_bad = first_bad;
          v_errors = errors;
        })
      (triple
         (triple (0 -- 100_000) (0 -- 100_000) (0 -- 1000))
         (pair (opt gen_head) (0 -- 1000))
         (triple (0 -- 1000) (-1 -- 50) (list_size (0 -- 8) (string_size (0 -- 60))))))

let prop_result_roundtrip =
  QCheck.Test.make ~name:"verify_result codec round-trips" ~count:300 (QCheck.make gen_result)
    (fun r ->
      let w = Bcodec.writer () in
      Chain.write_result w r;
      let r' = Chain.read_result (Bcodec.reader (Bcodec.contents w)) in
      r = r')

let test_result_codec_bounds () =
  (* A forged error count past the payload must be rejected, not
     allocate or walk off the buffer. *)
  let r =
    {
      Chain.v_records = 1;
      v_sealed = 1;
      v_epochs = 1;
      v_head = None;
      v_tail = 0;
      v_pruned = 0;
      v_first_bad = -1;
      v_errors = [ "x" ];
    }
  in
  let w = Bcodec.writer () in
  Chain.write_result w r;
  match Chain.read_result ~max_errors:0 (Bcodec.reader (Bcodec.contents w)) with
  | _ -> Alcotest.fail "oversized error list accepted"
  | exception Bcodec.Decode_error _ -> ()

(* --- verification over synthetic chains ------------------------------ *)

let prop_clean_chain_verifies =
  QCheck.Test.make ~name:"honest chain verifies clean (and from any sealed head)" ~count:60
    QCheck.(triple small_nat small_nat small_nat)
    (fun (s, nb, se) ->
      let seed = 9000 + s and nblocks = 2 + (nb mod 8) in
      let seal_every = 1 + (se mod 3) in
      let items, seals, total = build_chain ~seed ~nblocks ~per_block:5 ~seal_every in
      let r = Chain.verify items in
      Chain.clean r && r.Chain.v_records = total
      && r.Chain.v_epochs = List.length seals
      && List.for_all (fun h -> Chain.clean (Chain.verify ~from:h items)) seals)

let prop_flip_pinpoints_record =
  (* One bit anywhere in a sealed record: verification must fail and
     v_first_bad must land inside the damaged block's window — after
     the seal preceding the flipped record, no later than the end of
     the block holding it. (The error surfaces either at the covering
     seal's hash check or at the next block's broken prior linkage,
     whichever localizes it.) *)
  QCheck.Test.make ~name:"bit flip in sealed region pinpoints the record" ~count:120
    QCheck.(triple small_nat small_nat small_nat)
    (fun (s, pick, bit) ->
      let seed = 4000 + s in
      let items, seals, _total = build_chain ~seed ~nblocks:6 ~per_block:4 ~seal_every:2 in
      let sealed_limit = (List.nth seals (List.length seals - 1)).Chain.records in
      (* Sealed records as (victim canon, global index, end of its block). *)
      let sealed_canons =
        List.concat_map
          (function
            | Chain.Block b ->
              let bend = b.Chain.b_start + List.length b.Chain.b_canons in
              List.filteri (fun i _ -> b.Chain.b_start + i < sealed_limit) b.Chain.b_canons
              |> List.mapi (fun i c -> (c, b.Chain.b_start + i, bend))
            | _ -> [])
          items
      in
      let victim, victim_idx, block_end =
        List.nth sealed_canons (pick mod List.length sealed_canons)
      in
      let prev_seal =
        List.fold_left
          (fun acc h -> if h.Chain.records <= victim_idx then h.Chain.records else acc)
          0 seals
      in
      flip_bit victim (Rng.int (Rng.create ~seed:(seed + pick)) (Bytes.length victim)) (bit mod 8);
      let r = Chain.verify items in
      (not (Chain.clean r))
      && r.Chain.v_first_bad >= prev_seal
      && r.Chain.v_first_bad <= block_end)

let test_truncation_after_seal_is_tail_loss () =
  (* Drop every block past the newest seal: still clean, tail zero. *)
  let items, seals, _ = build_chain ~seed:77 ~nblocks:7 ~per_block:4 ~seal_every:2 in
  let last = List.nth seals (List.length seals - 1) in
  let truncated =
    List.filter
      (function
        | Chain.Block b -> b.Chain.b_start < last.Chain.records
        | _ -> true)
      items
  in
  let r = Chain.verify truncated in
  check Alcotest.bool "clean" true (Chain.clean r);
  check Alcotest.int "no tail left" 0 r.Chain.v_tail;
  check Alcotest.int "all sealed" last.Chain.records r.Chain.v_sealed;
  let r' = Chain.verify ~from:last truncated in
  check Alcotest.bool "anchor still on chain" true (Chain.clean r')

let test_torn_block_lenient_vs_strict () =
  let items, _, _ = build_chain ~seed:78 ~nblocks:4 ~per_block:4 ~seal_every:4 in
  let with_bad = items @ [ Chain.Bad "audit block at 42 failed to decode" ] in
  let strict = Chain.verify with_bad in
  check Alcotest.bool "strict flags the torn block" false (Chain.clean strict);
  let lenient = Chain.verify ~lenient_tail:true with_bad in
  check Alcotest.bool "lenient reads it as crash tail loss" true (Chain.clean lenient)

let test_sealed_truncation_is_error_even_lenient () =
  (* A seal claiming more records than survive is tampering even under
     a lenient tail: within a barrier the seal is written after its
     records, so a torn flush loses the seal first. *)
  let items, seals, _ = build_chain ~seed:79 ~nblocks:6 ~per_block:4 ~seal_every:3 in
  let last = List.nth seals (List.length seals - 1) in
  let dropped =
    List.filter
      (function
        | Chain.Block b -> b.Chain.b_start + List.length b.Chain.b_canons < last.Chain.records
        | _ -> true)
      items
  in
  let r = Chain.verify ~lenient_tail:true dropped in
  check Alcotest.bool "sealed truncation detected" false (Chain.clean r)

let test_rollback_detected () =
  let items, seals, _ = build_chain ~seed:80 ~nblocks:4 ~per_block:4 ~seal_every:2 in
  let future =
    { Chain.epoch = 99; records = 10_000; hash = Chain.extend Chain.genesis_hash (Bytes.create 1) }
  in
  let r = Chain.verify ~from:future items in
  check Alcotest.bool "rollback detected" false (Chain.clean r);
  ignore seals

(* --- catalog --------------------------------------------------------- *)

let gen_entry =
  QCheck.Gen.(
    map2
      (fun (shard, replica, head) at -> { Catalog.shard; replica; head; at })
      (map3 (fun s r h -> (s, r, h)) (0 -- 64) (0 -- 3) gen_head)
      (map Int64.of_int (0 -- 1_000_000)))

let prop_catalog_roundtrip =
  QCheck.Test.make ~name:"catalog codec round-trips" ~count:200
    (QCheck.make QCheck.Gen.(list_size (0 -- 12) gen_entry))
    (fun entries -> Catalog.decode (Catalog.encode entries) = Some entries)

let test_catalog_reject_garbage () =
  check Alcotest.bool "empty" true (Catalog.decode Bytes.empty = None);
  check Alcotest.bool "noise" true (Catalog.decode (Bytes.make 64 '\xAB') = None);
  let good = Catalog.encode [ { Catalog.shard = 1; replica = 0; head = Chain.genesis; at = 7L } ] in
  let torn = Bytes.sub good 0 (Bytes.length good - 3) in
  check Alcotest.bool "torn" true (Catalog.decode torn = None)

let test_catalog_check_statuses () =
  let h epoch records tag =
    { Chain.epoch; records; hash = S4_util.Sha256.digest_string tag }
  in
  let cat = h 5 100 "a" in
  check Alcotest.bool "consistent" true (Catalog.check ~catalog:cat ~member:cat = Catalog.Consistent);
  check Alcotest.bool "stale catalog" true
    (Catalog.check ~catalog:cat ~member:(h 7 140 "b") = Catalog.Stale_catalog);
  check Alcotest.bool "rolled back" true
    (Catalog.check ~catalog:cat ~member:(h 3 60 "c") = Catalog.Rolled_back);
  check Alcotest.bool "forked" true
    (Catalog.check ~catalog:cat ~member:(h 5 100 "d") = Catalog.Forked)

let test_catalog_find_set () =
  let e = Catalog.set [] ~shard:2 ~replica:1 ~at:10L Chain.genesis in
  let h2 = { Chain.epoch = 3; records = 9; hash = Chain.genesis_hash } in
  let e = Catalog.set e ~shard:2 ~replica:1 ~at:20L h2 in
  check Alcotest.int "replace not append" 1 (List.length e);
  check Alcotest.bool "find updated" true (Catalog.find e ~shard:2 ~replica:1 = Some h2);
  check Alcotest.bool "stamp updated" true
    ((Catalog.find_entry e ~shard:2 ~replica:1 |> Option.get).Catalog.at = 20L);
  check Alcotest.bool "miss" true (Catalog.find e ~shard:0 ~replica:0 = None)

let test_catalog_v1_decode () =
  (* A pre-[at] catalog (codec v1) must still decode: entries surface
     with [at = 0], i.e. "age unknown, from the beginning of time". *)
  let w = S4_util.Bcodec.writer () in
  S4_util.Bcodec.w_u16 w 0x5343;
  S4_util.Bcodec.w_u8 w 1;
  S4_util.Bcodec.w_int w 1;
  S4_util.Bcodec.w_int w 3;
  S4_util.Bcodec.w_int w 0;
  Chain.write_head w Chain.genesis;
  match Catalog.decode (S4_util.Bcodec.contents w) with
  | Some [ e ] ->
    check Alcotest.int "shard" 3 e.Catalog.shard;
    check Alcotest.int "replica" 0 e.Catalog.replica;
    check Alcotest.bool "at defaults to 0" true (Int64.equal e.Catalog.at 0L)
  | _ -> Alcotest.fail "v1 catalog did not decode"

let test_catalog_prune_ages_floors () =
  (* Floors for departed members age out of the detection window;
     live members' floors survive any age. *)
  let h tag = { Chain.epoch = 1; records = 4; hash = S4_util.Sha256.digest_string tag } in
  let e =
    Catalog.set
      (Catalog.set (Catalog.set [] ~shard:0 ~replica:0 ~at:100L (h "live-old")) ~shard:1 ~replica:0
         ~at:100L (h "gone-old"))
      ~shard:2 ~replica:0 ~at:900L (h "gone-new")
  in
  let live ~shard ~replica = shard = 0 && replica = 0 in
  let pruned = Catalog.prune e ~now:1000L ~window:500L ~live in
  check Alcotest.bool "old live floor kept" true
    (Catalog.find pruned ~shard:0 ~replica:0 <> None);
  check Alcotest.bool "old departed floor pruned" true
    (Catalog.find pruned ~shard:1 ~replica:0 = None);
  check Alcotest.bool "in-window departed floor kept" true
    (Catalog.find pruned ~shard:2 ~replica:0 <> None)

(* --- tamper injection on a real drive -------------------------------- *)

let tamper_case t () =
  let detected, errors = Crashtest.tamper_run ~seed:31 t in
  if not detected then
    Alcotest.failf "%s not detected (errors: %s)" (Crashtest.tamper_name t)
      (String.concat "; " errors)

let test_tamper_control () =
  let detected, errors = Crashtest.tamper_clean ~seed:31 in
  if detected then Alcotest.failf "clean run flagged: %s" (String.concat "; " errors)

let () =
  Alcotest.run "s4_integrity"
    [
      ( "codec",
        [
          qtest prop_head_roundtrip;
          qtest prop_result_roundtrip;
          Alcotest.test_case "error-count bound enforced" `Quick test_result_codec_bounds;
        ] );
      ( "verify",
        [
          qtest prop_clean_chain_verifies;
          qtest prop_flip_pinpoints_record;
          Alcotest.test_case "truncation after last seal = tail loss" `Quick
            test_truncation_after_seal_is_tail_loss;
          Alcotest.test_case "torn block: strict fails, lenient passes" `Quick
            test_torn_block_lenient_vs_strict;
          Alcotest.test_case "sealed truncation fails even lenient" `Quick
            test_sealed_truncation_is_error_even_lenient;
          Alcotest.test_case "anchor beyond log = rollback" `Quick test_rollback_detected;
        ] );
      ( "catalog",
        [
          qtest prop_catalog_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_catalog_reject_garbage;
          Alcotest.test_case "check statuses" `Quick test_catalog_check_statuses;
          Alcotest.test_case "find/set" `Quick test_catalog_find_set;
          Alcotest.test_case "v1 layout decodes (at = 0)" `Quick test_catalog_v1_decode;
          Alcotest.test_case "pruning ages departed floors" `Quick test_catalog_prune_ages_floors;
        ] );
      ( "tamper",
        [
          Alcotest.test_case "rewrite detected" `Quick (tamper_case Crashtest.Rewrite);
          Alcotest.test_case "drop detected" `Quick (tamper_case Crashtest.Drop);
          Alcotest.test_case "reorder detected" `Quick (tamper_case Crashtest.Reorder);
          Alcotest.test_case "fork detected" `Quick (tamper_case Crashtest.Fork);
          Alcotest.test_case "clean control" `Quick test_tamper_control;
        ] );
    ]
