(** History-pool exhaustion defence (Section 3.3's hybrid approach).

    Deliberately filling the history pool cannot be prevented outright;
    instead the drive detects probable abuse and slows the offending
    source machines down, buying time for human intervention while
    well-behaved clients keep working.

    The detector keeps a decaying per-client count of bytes pushed into
    the history pool. When pool pressure (history blocks relative to
    the space reserved for them) crosses a threshold, clients
    responsible for a disproportionate share of recent history growth
    are penalised with a latency that grows with pressure. *)

type t

type config = {
  pressure_threshold : float;
      (** pool pressure above which throttling engages (0..1) *)
  share_threshold : float;
      (** fraction of recent history growth that singles a client out *)
  max_penalty_ms : float;  (** penalty at 100% pressure *)
  halflife : int64;  (** decay half-life of the per-client counters, ns *)
}

val default_config : config
val create : ?config:config -> S4_util.Simclock.t -> t

val note_write : t -> client:int -> bytes:int -> unit
(** Record history-pool growth caused by a client's request. Counters
    whose decayed value has dropped below a small floor are pruned
    periodically, so the table tracks active clients only. *)

val tracked_clients : t -> int
(** Clients currently holding a counter (post-pruning). *)

val pool_pressure : t -> float
val set_pool_pressure : t -> float -> unit
(** Updated by the drive from live store statistics. *)

val penalty : t -> client:int -> int64
(** Extra latency (ns) to impose on this client's next request; 0 when
    the pool is healthy or the client is not a significant
    contributor. *)

val is_throttled : t -> client:int -> bool
val client_share : t -> client:int -> float
(** This client's decayed share of recent history growth (0..1). *)

val throttled_clients : t -> int list

val client_counters : t -> (int * float) list
(** Every tracked client with its decayed history-growth counter
    (bytes), sorted by client id — the state QoS decisions are made
    from. *)

val weight : t -> client:int -> float
(** Weighted-fair-queueing weight for this client: 1.0 when healthy,
    shrinking as the pool-pressure penalty grows (1 ms of penalty
    halves it). Feeds the server's per-client scheduler. *)

val export_metrics : t -> unit
(** Snapshot the per-client counters, penalties, pool pressure and
    throttled-client count into the {!S4_obs.Metrics} registry as
    [qos/*] gauges. *)
