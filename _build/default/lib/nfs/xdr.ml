module N = Nfs_types

exception Err = S4_util.Bcodec.Decode_error

let fail fmt = Format.kasprintf (fun s -> raise (Err s)) fmt

(* --- XDR primitives (big-endian 4-byte words) ----------------------- *)

type w = Buffer.t

let w_u32 (b : w) v =
  Buffer.add_int32_be b (Int32.of_int (v land 0xFFFFFFFF))

let w_opaque_fixed b bytes n =
  Buffer.add_bytes b bytes;
  let pad = (4 - (Bytes.length bytes mod 4)) mod 4 in
  ignore n;
  Buffer.add_string b (String.make pad '\000')

let w_opaque b bytes =
  w_u32 b (Bytes.length bytes);
  w_opaque_fixed b bytes (Bytes.length bytes)

let w_string b s = w_opaque b (Bytes.unsafe_of_string s)

type r = { buf : Bytes.t; mutable pos : int }

let r_u32 r =
  if r.pos + 4 > Bytes.length r.buf then fail "xdr: truncated u32";
  let v = Int32.to_int (Bytes.get_int32_be r.buf r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let r_opaque_fixed r n =
  if r.pos + n > Bytes.length r.buf then fail "xdr: truncated opaque";
  let b = Bytes.sub r.buf r.pos n in
  r.pos <- r.pos + n + ((4 - (n mod 4)) mod 4);
  b

let r_opaque r =
  let n = r_u32 r in
  r_opaque_fixed r n

let r_string r = Bytes.unsafe_to_string (r_opaque r)

(* --- NFSv2 structures ------------------------------------------------ *)

(* 32-byte opaque fhandle: the ObjectID in the first 8 bytes. *)
let w_fh b (fh : N.fh) =
  let h = Bytes.make 32 '\000' in
  Bytes.set_int64_be h 0 fh;
  Buffer.add_bytes b h

let r_fh r =
  let h = r_opaque_fixed r 32 in
  Bytes.get_int64_be h 0

let ftype_code = function N.Freg -> 1 | N.Fdir -> 2 | N.Flnk -> 5

let ftype_of_code = function
  | 1 -> N.Freg
  | 2 -> N.Fdir
  | 5 -> N.Flnk
  | c -> fail "xdr: bad ftype %d" c

let split_time ns = (Int64.to_int (Int64.div ns 1_000_000_000L), Int64.to_int (Int64.rem ns 1_000_000_000L) / 1000)
let join_time (s, us) = Int64.add (Int64.mul (Int64.of_int s) 1_000_000_000L) (Int64.of_int (us * 1000))

(* fattr: type, mode, nlink, uid, gid, size, blocksize, rdev, blocks,
   fsid, fileid, atime, mtime, ctime (each time = 2 words). *)
let w_fattr b (a : N.attr) ~fileid =
  w_u32 b (ftype_code a.N.ftype);
  w_u32 b a.N.mode;
  w_u32 b a.N.nlink;
  w_u32 b a.N.uid;
  w_u32 b a.N.gid;
  w_u32 b a.N.size;
  w_u32 b 4096;
  w_u32 b 0;
  w_u32 b ((a.N.size + 511) / 512);
  w_u32 b 1;
  w_u32 b (Int64.to_int fileid land 0xFFFFFFFF);
  let at_s, at_us = split_time a.N.atime in
  w_u32 b at_s;
  w_u32 b at_us;
  let mt_s, mt_us = split_time a.N.mtime in
  w_u32 b mt_s;
  w_u32 b mt_us;
  let ct_s, ct_us = split_time a.N.ctime in
  w_u32 b ct_s;
  w_u32 b ct_us

let r_fattr r =
  let ftype = ftype_of_code (r_u32 r) in
  let mode = r_u32 r in
  let nlink = r_u32 r in
  let uid = r_u32 r in
  let gid = r_u32 r in
  let size = r_u32 r in
  let _bsize = r_u32 r in
  let _rdev = r_u32 r in
  let _blocks = r_u32 r in
  let _fsid = r_u32 r in
  let _fileid = r_u32 r in
  let at_s = r_u32 r in
  let at_us = r_u32 r in
  let mt_s = r_u32 r in
  let mt_us = r_u32 r in
  let ct_s = r_u32 r in
  let ct_us = r_u32 r in
  {
    N.ftype;
    mode;
    nlink;
    uid;
    gid;
    size;
    atime = join_time (at_s, at_us);
    mtime = join_time (mt_s, mt_us);
    ctime = join_time (ct_s, ct_us);
  }

(* NFSv2 status codes for our error type. *)
let status_of_error = function
  | N.Enoent -> 2
  | N.Eio _ -> 5
  | N.Eacces -> 13
  | N.Eexist -> 17
  | N.Enotdir -> 20
  | N.Eisdir -> 21
  | N.Enospc -> 28
  | N.Enotempty -> 66

let error_of_status = function
  | 2 -> N.Enoent
  | 5 -> N.Eio "remote"
  | 13 -> N.Eacces
  | 17 -> N.Eexist
  | 20 -> N.Enotdir
  | 21 -> N.Eisdir
  | 28 -> N.Enospc
  | 66 -> N.Enotempty
  | c -> fail "xdr: unknown nfsstat %d" c

(* --- procedures ------------------------------------------------------- *)

let proc_number : N.req -> int = function
  | N.Getattr _ -> 1
  | N.Setattr _ -> 2
  | N.Lookup _ -> 4
  | N.Readlink _ -> 5
  | N.Read _ -> 6
  | N.Write _ -> 8
  | N.Create _ -> 9
  | N.Remove _ -> 10
  | N.Rename _ -> 11
  | N.Symlink _ -> 13
  | N.Mkdir _ -> 14
  | N.Rmdir _ -> 15
  | N.Readdir _ -> 16
  | N.Statfs -> 17

let nfs_prog = 100_003
let nfs_vers = 2

(* RPC call header: xid, CALL, rpcvers=2, prog, vers, proc, null cred,
   null verf. *)
let w_call_header b ~xid ~proc =
  w_u32 b xid;
  w_u32 b 0;
  w_u32 b 2;
  w_u32 b nfs_prog;
  w_u32 b nfs_vers;
  w_u32 b proc;
  w_u32 b 0;
  w_u32 b 0;
  (* AUTH_NULL cred *)
  w_u32 b 0;
  w_u32 b 0
(* AUTH_NULL verf *)

let r_call_header r =
  let xid = r_u32 r in
  let mtype = r_u32 r in
  if mtype <> 0 then fail "xdr: not a CALL";
  let rpcvers = r_u32 r in
  if rpcvers <> 2 then fail "xdr: bad rpc version";
  let prog = r_u32 r in
  if prog <> nfs_prog then fail "xdr: not NFS";
  let vers = r_u32 r in
  if vers <> nfs_vers then fail "xdr: not NFSv2";
  let proc = r_u32 r in
  let _cred_flavor = r_u32 r in
  let _cred_len = r_u32 r in
  let _verf_flavor = r_u32 r in
  let _verf_len = r_u32 r in
  (xid, proc)

(* sattr: mode,uid,gid,size,atime,mtime; -1 (0xFFFFFFFF) = don't set. *)
let w_sattr b ~mode ~size =
  w_u32 b (Option.value ~default:0xFFFFFFFF mode);
  w_u32 b 0xFFFFFFFF;
  w_u32 b 0xFFFFFFFF;
  w_u32 b (Option.value ~default:0xFFFFFFFF size);
  w_u32 b 0xFFFFFFFF;
  w_u32 b 0xFFFFFFFF;
  w_u32 b 0xFFFFFFFF;
  w_u32 b 0xFFFFFFFF

let r_sattr r =
  let unset v = if v = 0xFFFFFFFF then None else Some v in
  let mode = unset (r_u32 r) in
  let _uid = r_u32 r in
  let _gid = r_u32 r in
  let size = unset (r_u32 r) in
  let _ = r_u32 r and _ = r_u32 r and _ = r_u32 r and _ = r_u32 r in
  (mode, size)

let encode_req ~xid req =
  let b = Buffer.create 128 in
  w_call_header b ~xid ~proc:(proc_number req);
  (match req with
   | N.Getattr fh | N.Readlink fh | N.Readdir fh -> w_fh b fh
   | N.Setattr { fh; mode; size } ->
     w_fh b fh;
     w_sattr b ~mode ~size
   | N.Lookup { dir; name } | N.Remove { dir; name } | N.Rmdir { dir; name } ->
     w_fh b dir;
     w_string b name
   | N.Read { fh; off; len } ->
     w_fh b fh;
     w_u32 b off;
     w_u32 b len;
     w_u32 b 0
   | N.Write { fh; off; data } ->
     w_fh b fh;
     w_u32 b 0;
     w_u32 b off;
     w_u32 b 0;
     w_opaque b data
   | N.Create { dir; name; mode } | N.Mkdir { dir; name; mode } ->
     w_fh b dir;
     w_string b name;
     w_sattr b ~mode:(Some mode) ~size:(Some 0)
   | N.Rename { from_dir; from_name; to_dir; to_name } ->
     w_fh b from_dir;
     w_string b from_name;
     w_fh b to_dir;
     w_string b to_name
   | N.Symlink { dir; name; target } ->
     w_fh b dir;
     w_string b name;
     w_string b target;
     w_sattr b ~mode:(Some 0o777) ~size:None
   | N.Statfs -> w_fh b 0L);
  Buffer.to_bytes b

let decode_req buf =
  let r = { buf; pos = 0 } in
  let xid, proc = r_call_header r in
  let req =
    match proc with
    | 1 -> N.Getattr (r_fh r)
    | 2 ->
      let fh = r_fh r in
      let mode, size = r_sattr r in
      N.Setattr { fh; mode; size }
    | 4 ->
      let dir = r_fh r in
      N.Lookup { dir; name = r_string r }
    | 5 -> N.Readlink (r_fh r)
    | 6 ->
      let fh = r_fh r in
      let off = r_u32 r in
      let len = r_u32 r in
      let _total = r_u32 r in
      N.Read { fh; off; len }
    | 8 ->
      let fh = r_fh r in
      let _begin_off = r_u32 r in
      let off = r_u32 r in
      let _total = r_u32 r in
      N.Write { fh; off; data = r_opaque r }
    | 9 | 14 ->
      let dir = r_fh r in
      let name = r_string r in
      let mode, _ = r_sattr r in
      let mode = Option.value ~default:0o644 mode in
      if proc = 9 then N.Create { dir; name; mode } else N.Mkdir { dir; name; mode }
    | 10 ->
      let dir = r_fh r in
      N.Remove { dir; name = r_string r }
    | 11 ->
      let from_dir = r_fh r in
      let from_name = r_string r in
      let to_dir = r_fh r in
      let to_name = r_string r in
      N.Rename { from_dir; from_name; to_dir; to_name }
    | 13 ->
      let dir = r_fh r in
      let name = r_string r in
      let target = r_string r in
      let _ = r_sattr r in
      N.Symlink { dir; name; target }
    | 15 ->
      let dir = r_fh r in
      N.Rmdir { dir; name = r_string r }
    | 16 -> N.Readdir (r_fh r)
    | 17 ->
      let _ = r_fh r in
      N.Statfs
    | p -> fail "xdr: unknown procedure %d" p
  in
  (xid, req)

(* RPC reply header: xid, REPLY, MSG_ACCEPTED, null verf, SUCCESS. *)
let w_reply_header b ~xid =
  w_u32 b xid;
  w_u32 b 1;
  w_u32 b 0;
  w_u32 b 0;
  w_u32 b 0;
  w_u32 b 0

let r_reply_header r =
  let xid = r_u32 r in
  let mtype = r_u32 r in
  if mtype <> 1 then fail "xdr: not a REPLY";
  let _accepted = r_u32 r in
  let _verf_flavor = r_u32 r in
  let _verf_len = r_u32 r in
  let _accept_stat = r_u32 r in
  xid

let encode_resp ~xid ~proc resp =
  let b = Buffer.create 128 in
  w_reply_header b ~xid;
  (match resp with
   | N.R_error e -> w_u32 b (status_of_error e)
   | _ ->
     w_u32 b 0 (* NFS_OK *);
     (match (resp, proc) with
      | N.R_attr a, _ -> w_fattr b a ~fileid:0L
      | N.R_fh (fh, a), _ ->
        w_fh b fh;
        w_fattr b a ~fileid:fh
      | N.R_data data, 6 ->
        w_fattr b (N.fresh_attr N.Freg ~uid:0 ~now:0L) ~fileid:0L;
        w_opaque b data
      | N.R_data data, _ -> w_opaque b data
      | N.R_link s, _ -> w_string b s
      | N.R_entries entries, _ ->
        List.iteri
          (fun i (e : N.dirent) ->
            w_u32 b 1 (* value follows *);
            w_u32 b (Int64.to_int e.N.fh land 0xFFFFFFFF);
            w_string b e.N.name;
            w_u32 b (i + 1) (* cookie *))
          entries;
        w_u32 b 0 (* no more *);
        w_u32 b 1 (* eof *)
      | N.R_unit, _ -> ()
      | N.R_statfs { total_bytes; free_bytes }, _ ->
        w_u32 b 8192;
        w_u32 b 4096;
        w_u32 b (total_bytes / 4096);
        w_u32 b (free_bytes / 4096);
        w_u32 b (free_bytes / 4096)
      | N.R_error _, _ -> assert false (* handled above *)));
  Buffer.to_bytes b

let decode_resp ~proc buf =
  let r = { buf; pos = 0 } in
  let xid = r_reply_header r in
  let status = r_u32 r in
  if status <> 0 then (xid, N.R_error (error_of_status status))
  else begin
    let resp =
      match proc with
      | 1 | 2 | 8 -> N.R_attr (r_fattr r)
      | 4 | 9 | 14 ->
        let fh = r_fh r in
        N.R_fh (fh, r_fattr r)
      | 5 -> N.R_link (r_string r)
      | 6 ->
        let _attr = r_fattr r in
        N.R_data (r_opaque r)
      | 10 | 11 | 13 | 15 -> N.R_unit
      | 16 ->
        let rec entries acc =
          if r_u32 r = 1 then begin
            let fileid = r_u32 r in
            let name = r_string r in
            let _cookie = r_u32 r in
            entries ({ N.name; fh = Int64.of_int fileid } :: acc)
          end
          else List.rev acc
        in
        let es = entries [] in
        let _eof = r_u32 r in
        N.R_entries es
      | 17 ->
        let _tsize = r_u32 r in
        let bsize = r_u32 r in
        let blocks = r_u32 r in
        let _bfree = r_u32 r in
        let bavail = r_u32 r in
        N.R_statfs { total_bytes = blocks * bsize; free_bytes = bavail * bsize }
      | p -> fail "xdr: unknown reply procedure %d" p
    in
    (xid, resp)
  end

let req_wire_bytes req = Bytes.length (encode_req ~xid:0 req)
let resp_wire_bytes resp =
  (* Size does not depend on the procedure except for READ replies,
     which prepend attributes; use proc 6 for data replies. *)
  let proc = match resp with N.R_data _ -> 6 | _ -> 0 in
  Bytes.length (encode_resp ~xid:0 ~proc resp)
