(** The one backend call surface.

    Every S4 request producer in the repo — the in-process drive, a
    mirrored pair behind a shard router, the sharded array itself, the
    wire-protocol client, the modelled-network client stub — exposes
    this single record, and every consumer (NFS translator, s4cli,
    crashtest, the benches) speaks it. It replaces the translator's
    private [backend] record and the half-dozen near-duplicate
    [Drive.handle]-shaped closures that used to be rebuilt at each
    layer boundary.

    The surface is {e vectored}: {!submit} takes an array of requests
    and returns the positionally matching array of responses. Requests
    execute in array order with full per-request semantics (throttle,
    ACL check, audit record, trace span), but the durability barrier
    — when [sync:true] — is paid {e once}, after the last request
    (group commit). Atomicity is per-request: a failed request yields
    its [R_error] in its slot and the rest of the batch still runs.
    If the end-of-batch barrier itself fails, every response that
    reported success is rewritten to the barrier's [Io_error] — the
    caller must not believe un-persisted mutations are stable, exactly
    as with single-request [sync].

    {2 Threading model}

    Concurrency is part of the contract, not a comment. Every backend
    declares a {!concurrency} capability:

    - [Serial] — the producer's state is confined to one domain (or
      one systhread at a time). Callers that share the backend across
      threads or domains must serialize every {!submit}/{!handle}/
      [close] themselves; {!Net.Server} does this with its global
      backend lock. The bare drive stack ([Drive], [Mirror], the
      modelled and wire clients) is [Serial].
    - [Domain_safe] — concurrent {!submit} calls from different
      domains are safe. The producer provides its own internal
      synchronization and may execute independent work in parallel
      (the sharded array dispatches disjoint shards onto per-shard
      worker domains; see [Shard_domain] and the DESIGN threading
      section). Two guarantees survive the concurrency: requests of a
      {e single} [submit] batch still execute in array order with one
      end-of-batch barrier, and per-object state transitions remain
      linearizable because each object lives on exactly one shard,
      owned by exactly one domain. Ordering {e between} concurrent
      batches from different callers is whatever the interleaving
      gives — per-session ordering is the caller's job (the server
      keeps it by pinning a session's batches to one thread at a
      time).

    Whatever the capability, [clock], [keep_data] and [capacity] are
    safe to read from any domain; [close] must be called exactly once,
    after all in-flight submits have returned. *)

type concurrency =
  | Serial  (** caller must serialize all access *)
  | Domain_safe  (** concurrent [submit] from multiple domains is safe *)

type t = {
  clock : S4_util.Simclock.t;  (** the clock every request charges *)
  keep_data : bool;
      (** whether the backing store retains object contents (content
          systems) or only sizes (timing-only benchmark config) *)
  capacity : unit -> int * int;
      (** (total bytes, free bytes) of the backing store *)
  concurrency : concurrency;
      (** the producer's threading contract; see the module docs *)
  submit : Rpc.credential -> ?sync:bool -> Rpc.req array -> Rpc.resp array;
      (** Execute a batch in order; one durability barrier at batch
          end when [sync]. Response [i] answers request [i]. An empty
          batch with [sync:true] is a pure barrier (no audit records). *)
  close : unit -> unit;
      (** Release transport resources (sockets, threads). In-process
          backends make this a no-op. *)
}

val handle : t -> Rpc.credential -> ?sync:bool -> Rpc.req -> Rpc.resp
(** Single-request compatibility shim: [submit] of a one-element
    batch. [handle b cred ~sync req] is bit-for-bit equivalent to the
    old per-layer [handle] functions. *)

val make :
  clock:S4_util.Simclock.t ->
  keep_data:bool ->
  capacity:(unit -> int * int) ->
  ?concurrency:concurrency ->
  ?close:(unit -> unit) ->
  (Rpc.credential -> ?sync:bool -> Rpc.req array -> Rpc.resp array) ->
  t
(** Build a backend. [concurrency] defaults to [Serial]; only declare
    [Domain_safe] when every entry point really is. *)

val of_handle :
  clock:S4_util.Simclock.t ->
  keep_data:bool ->
  capacity:(unit -> int * int) ->
  ?close:(unit -> unit) ->
  (Rpc.credential -> ?sync:bool -> Rpc.req -> Rpc.resp) ->
  t
  [@@ocaml.deprecated
    "use Backend.make with a native vectored submit; of_handle cannot group-commit"]
(** Wrap a legacy single-request handler that has no native group
    commit: the batch runs one request at a time with [sync:false]
    and, when [sync], the barrier is a trailing [Rpc.Sync] request.

    @deprecated Every in-repo producer now implements [submit]
    natively (drive, mirror, router, wire client, modelled client);
    new producers should too. The wrapper survives one more release
    for out-of-tree callers and then goes away. *)
