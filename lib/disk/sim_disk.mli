(** Sector-addressed simulated disk.

    The simulator models service time (seek + rotation + transfer) and
    advances the shared {!S4_util.Simclock} on every request. Requests
    that continue exactly where the previous one ended are recognised
    as sequential and pay transfer cost only.

    Sector *contents* are stored sparsely and only when the caller
    provides them: large timing-only experiments write without data and
    read back zeroed sectors, while metadata structures and
    content-carrying tests store real bytes. *)

type t

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable sectors_read : int;
  mutable sectors_written : int;
  mutable seeks : int;
  mutable sequential : int;  (** requests that paid no positioning cost *)
  mutable busy_ns : int64;  (** total mechanical service time *)
  read_latency : S4_util.Histogram.t;  (** per-request service time, ms *)
  write_latency : S4_util.Histogram.t;
}

val create : ?geometry:Geometry.t -> S4_util.Simclock.t -> t
(** A fresh disk (default geometry {!Geometry.cheetah_9gb}) with the
    head parked at sector 0. *)

(** {1 File backing}

    A disk constructed over a {!File_disk.t} keeps its sector contents
    in a real host file instead of the in-memory table: every content
    write goes straight to [pwrite] and {!barrier} flushes the file, so
    acknowledged data survives [kill -9] (and, after a barrier, a host
    crash). Timing, stats and fault injection behave identically. *)

val of_file : File_disk.t -> t
(** Wrap an open file-backed store. Geometry comes from the store's
    header and a fresh clock resumes from the last barrier's
    [clock_ns]; recovery then advances it past any newer replayed
    journal entries. *)

val file_backing : t -> File_disk.t option
val barrier : t -> unit
(** Durability barrier: snapshot the registered chain head into the
    device anchor, then flush a file backing ({!File_disk.sync} at the
    current clock); contents flushing is a no-op for memory-backed
    disks. *)

(** {1 Chain-head anchor}

    The drive above registers a provider for its sealed audit-chain
    head; every {!barrier} snapshots the provider's current value as
    the device-held anchor (persisted in the {!File_disk} header, and
    carried by {!S4_tools.Disk_image} saves). On reattach the anchor
    cross-checks the recovered chain: a log rewound or rewritten behind
    the device's back can no longer reproduce it. *)

val set_head_provider : t -> (unit -> S4_integrity.Chain.head option) -> unit
val current_head : t -> S4_integrity.Chain.head option
(** The provider's live value ({!saved_head} when none is registered). *)

val saved_head : t -> S4_integrity.Chain.head option
(** Anchor as of the last barrier (or image load / file open). *)

val set_saved_head : t -> S4_integrity.Chain.head option -> unit
(** Used by image load to install the anchor carried in the image. *)

val close : t -> unit
(** Release the file backing's descriptor (no-op for memory). Not a
    barrier. *)

val geometry : t -> Geometry.t
val clock : t -> S4_util.Simclock.t
val capacity_sectors : t -> int
val capacity_bytes : t -> int

val read : t -> lba:int -> sectors:int -> unit
(** Timed read of a sector run; contents are not returned (use
    {!read_bytes}). Raises [Invalid_argument] if out of range. *)

val write : t -> ?tcq:bool -> ?data:Bytes.t -> lba:int -> sectors:int -> unit -> unit
(** Timed write. When [data] is given it must be exactly
    [sectors * sector_size] bytes and is retained for later
    {!read_bytes}. Without [data] any previously stored contents for
    the range are dropped (the range reads back as zeros). [?tcq]
    models SCSI tagged command queuing on a busy server: the drive
    reorders queued writes, halving the expected rotational latency. *)

val read_bytes : t -> lba:int -> sectors:int -> Bytes.t
(** Timed read returning stored contents; unwritten sectors are zeros. *)

val peek : t -> lba:int -> sectors:int -> Bytes.t
(** Contents without advancing time (used by integrity checkers and by
    crash-recovery scans whose cost is modelled separately). *)

val poke : t -> lba:int -> data:Bytes.t -> unit
(** Store contents without advancing time or stats; used when I/O cost
    is accounted separately (e.g. the uncharged-cleaner baseline). *)

val stats : t -> stats
val reset_stats : t -> unit

(** {1 Fault injection}

    With a {!Fault.t} policy attached, every {!read}, {!write} and
    {!read_bytes} consults it first: requests may raise
    {!Fault.Read_fault} / {!Fault.Write_fault}, persist only a torn
    sector prefix, flip a stored bit, or raise {!Fault.Crashed} (after
    which all further timed I/O raises {!Fault.Crashed} until the
    policy is detached). {!peek} and {!poke} bypass the policy — they
    model post-mortem platter access, not in-band I/O. *)

val set_fault : t -> Fault.t option -> unit
val fault : t -> Fault.t option

(** {1 Phantom accounting}

    In phantom mode, requests update the head position and accumulate
    their would-be service time in a separate counter instead of
    advancing the clock — used to model background work (the cleaner)
    that overlaps with foreground idle disk time. *)

val set_phantom : t -> bool -> unit
val phantom_ns : t -> int64
val reset_phantom : t -> unit

val busy_seconds : t -> float
val pp_stats : Format.formatter -> t -> unit
