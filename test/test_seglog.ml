(* Tests for the segment log: codecs, allocation, sync, liveness,
   reclaim and reattach. *)

module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Tag = S4_seglog.Tag
module Jblock = S4_seglog.Jblock
module Summary = S4_seglog.Summary
module Log = S4_seglog.Log

let check = Alcotest.check
let qtest = Qseed.qtest

let small_geom = Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(16 * 1024 * 1024)

let mk () =
  let clock = Simclock.create () in
  let disk = Sim_disk.create ~geometry:small_geom clock in
  (clock, disk, Log.create disk)

let block n c = Bytes.make n c

(* --- Tag codec ------------------------------------------------------ *)

let tag = Alcotest.testable Tag.pp Tag.equal

let test_tag_roundtrip () =
  let roundtrip tg =
    let w = S4_util.Bcodec.writer () in
    Tag.encode w tg;
    let r = S4_util.Bcodec.reader (S4_util.Bcodec.contents w) in
    check tag "roundtrip" tg (Tag.decode r)
  in
  List.iter roundtrip
    [
      Tag.Data { oid = 42L; fblock = 17 };
      Tag.Journal;
      Tag.Checkpoint { oid = 7L };
      Tag.Objmap;
      Tag.Audit;
      Tag.Summary;
    ]

let test_tag_oid () =
  check (Alcotest.option Alcotest.int64) "data oid" (Some 3L)
    (Tag.oid (Tag.Data { oid = 3L; fblock = 0 }));
  check (Alcotest.option Alcotest.int64) "journal none" None (Tag.oid Tag.Journal)

(* --- Jblock codec --------------------------------------------------- *)

let je oid seq kind payload =
  { Jblock.oid; seq; time = Int64.of_int (seq * 1000); kind; payload = Bytes.of_string payload }

let test_jblock_roundtrip () =
  let entries = [ je 1L 1 0 ""; je 1L 2 1 "payload-a"; je 2L 1 3 "x" ] in
  let b = Jblock.encode ~block_size:4096 ~prev:1234 entries in
  check Alcotest.int "block sized" 4096 (Bytes.length b);
  match Jblock.decode b with
  | None -> Alcotest.fail "decode failed"
  | Some (prev, decoded) ->
    check Alcotest.int "prev" 1234 prev;
    check Alcotest.int "count" 3 (List.length decoded);
    List.iter2
      (fun (a : Jblock.entry) (b : Jblock.entry) ->
        check Alcotest.int64 "oid" a.Jblock.oid b.Jblock.oid;
        check Alcotest.int "seq" a.seq b.seq;
        check Alcotest.int64 "time" a.time b.time;
        check Alcotest.int "kind" a.kind b.kind;
        check Alcotest.bytes "payload" a.payload b.payload)
      entries decoded

let test_jblock_crc_rejects_corruption () =
  let b = Jblock.encode ~block_size:4096 ~prev:(-1) [ je 1L 1 0 "data" ] in
  Bytes.set b 100 'Z';
  check Alcotest.bool "corrupted rejected" true (Jblock.decode b = None)

let test_jblock_not_a_block () =
  check Alcotest.bool "zeros rejected" true (Jblock.decode (Bytes.make 4096 '\000') = None);
  check Alcotest.bool "short rejected" true (Jblock.decode (Bytes.create 4) = None)

let test_jblock_overflow_rejected () =
  let big = je 1L 1 1 (String.make 5000 'x') in
  check Alcotest.bool "too big raises" true
    (try
       ignore (Jblock.encode ~block_size:4096 ~prev:(-1) [ big ]);
       false
     with Invalid_argument _ -> true)

let test_jblock_fits () =
  let e = je 1L 1 1 "0123456789" in
  let sz = Jblock.entry_size e in
  check Alcotest.bool "fits in empty" true (Jblock.fits ~block_size:4096 ~current:0 e);
  check Alcotest.bool "does not fit when nearly full" false
    (Jblock.fits ~block_size:4096 ~current:(4096 - sz) e)

(* --- Summary codec --------------------------------------------------- *)

let test_summary_roundtrip () =
  let tags = Array.init 127 (fun i -> if i mod 2 = 0 then Tag.Journal else Tag.Data { oid = Int64.of_int i; fblock = i }) in
  let b = Summary.encode ~block_size:4096 { Summary.epoch = 99; tags } in
  match Summary.decode b with
  | None -> Alcotest.fail "decode failed"
  | Some s ->
    check Alcotest.int "epoch" 99 s.Summary.epoch;
    check Alcotest.int "tags" 127 (Array.length s.Summary.tags);
    Array.iteri (fun i tg -> check tag "tag" tags.(i) tg) s.Summary.tags

let test_summary_crc () =
  let b = Summary.encode ~block_size:4096 { Summary.epoch = 1; tags = [| Tag.Journal |] } in
  Bytes.set b 3 '\255';
  check Alcotest.bool "corrupt rejected" true (Summary.decode b = None)

(* --- Log ------------------------------------------------------------- *)

let test_log_layout () =
  let _, _, log = mk () in
  check Alcotest.int "block size" 4096 (Log.block_size log);
  check Alcotest.int "blocks per segment" 128 (Log.blocks_per_segment log);
  (* 16 MiB disk = 32 segments, minus 1 reserved = 31, 127 usable each *)
  check Alcotest.int "segments" 31 (Log.total_segments log);
  check Alcotest.int "usable blocks" (31 * 127) (Log.usable_blocks log)

let test_append_assigns_increasing_addrs () =
  let _, _, log = mk () in
  let a1 = Log.append log Tag.Journal () in
  let a2 = Log.append log Tag.Journal () in
  check Alcotest.bool "increasing" true (a2 = a1 + 1)

let test_buffered_until_sync () =
  let _, disk, log = mk () in
  let before = (Sim_disk.stats disk).Sim_disk.writes in
  let _ = Log.append log Tag.Journal ~data:(block 4096 'j') () in
  check Alcotest.int "no disk write yet" before (Sim_disk.stats disk).Sim_disk.writes;
  Log.sync log;
  check Alcotest.bool "disk write on sync" true ((Sim_disk.stats disk).Sim_disk.writes > before)

let test_read_buffered_is_free () =
  let clock, _, log = mk () in
  let a = Log.append log Tag.Journal ~data:(block 4096 'b') () in
  let t = Simclock.now clock in
  let b = Log.read log a in
  check Alcotest.bytes "contents" (block 4096 'b') b;
  check Alcotest.int64 "free read" t (Simclock.now clock)

let test_read_after_sync_charges () =
  let clock, _, log = mk () in
  let a = Log.append log Tag.Audit ~data:(block 4096 'c') () in
  Log.sync log;
  let t = Simclock.now clock in
  let b = Log.read log a in
  check Alcotest.bytes "contents" (block 4096 'c') b;
  check Alcotest.bool "charged" true (Int64.compare (Simclock.now clock) t > 0)

let test_segment_close_writes_summary () =
  let _, disk, log = mk () in
  for _ = 1 to 127 do
    ignore (Log.append log Tag.Journal ~data:(block 4096 's') ())
  done;
  check Alcotest.int "one summary written" 1 (Log.stats log).Log.summaries_written;
  (* Summary block is at slot 127 of segment 0 (after the reserved segment). *)
  let summary_addr = 128 + 127 in
  let sblock = Sim_disk.peek disk ~lba:(summary_addr * 8) ~sectors:8 in
  match Summary.decode sblock with
  | None -> Alcotest.fail "summary not on disk"
  | Some s -> check Alcotest.int "epoch 1" 1 s.Summary.epoch

let test_kill_and_liveness () =
  let _, _, log = mk () in
  let a = Log.append log Tag.Journal () in
  check Alcotest.bool "live" true (Log.is_live log a);
  Log.kill log a;
  check Alcotest.bool "dead" false (Log.is_live log a);
  Log.kill log a;
  (* idempotent *)
  check Alcotest.int "live count" 0 (Log.live_blocks log)

let test_tag_of () =
  let _, _, log = mk () in
  let a = Log.append log (Tag.Data { oid = 5L; fblock = 2 }) () in
  check (Alcotest.option tag) "tag" (Some (Tag.Data { oid = 5L; fblock = 2 })) (Log.tag_of log a);
  Log.kill log a;
  check (Alcotest.option tag) "tag survives kill" (Some (Tag.Data { oid = 5L; fblock = 2 }))
    (Log.tag_of log a)

let test_reclaim_dead_segments () =
  let _, _, log = mk () in
  let addrs = List.init 127 (fun _ -> Log.append log Tag.Journal ()) in
  let free_before = Log.free_segments log in
  List.iter (Log.kill log) addrs;
  let n = Log.reclaim_dead_segments log in
  check Alcotest.int "one segment reclaimed" 1 n;
  check Alcotest.int "free grew" (free_before + 1) (Log.free_segments log)

let test_auto_reclaim_on_full () =
  let clock = Simclock.create () in
  let disk = Sim_disk.create ~geometry:(Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(2 * 1024 * 1024)) clock in
  let log = Log.create disk in
  (* 4 segments - 1 reserved = 3 segments; fill and kill as we go. *)
  for _ = 1 to 127 * 5 do
    let a = Log.append log Tag.Journal () in
    Log.kill log a
  done;
  check Alcotest.bool "auto reclaimed" true ((Log.stats log).Log.segments_reclaimed > 0)

let test_log_full_raises () =
  let clock = Simclock.create () in
  let disk = Sim_disk.create ~geometry:(Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(2 * 1024 * 1024)) clock in
  let log = Log.create disk in
  check Alcotest.bool "raises Log_full" true
    (try
       for _ = 1 to 127 * 4 do
         ignore (Log.append log Tag.Journal ())
       done;
       false
     with Log.Log_full -> true)

let test_read_run_clamps () =
  let _, _, log = mk () in
  let first = Log.append log Tag.Journal ~data:(block 4096 '0') () in
  for i = 1 to 9 do
    ignore (Log.append log Tag.Journal ~data:(block 4096 (Char.chr (48 + i))) ())
  done;
  Log.sync log;
  let run = Log.read_run log first 100 in
  check Alcotest.int "clamped to written extent" 10 (List.length run);
  List.iteri
    (fun i (a, b) ->
      check Alcotest.int "addr" (first + i) a;
      check Alcotest.bytes "content" (block 4096 (Char.chr (48 + i))) b)
    run

let test_charge_io_toggle () =
  let clock, _, log = mk () in
  Log.charge_io log false;
  let a = Log.append log Tag.Journal ~data:(block 4096 'u') () in
  Log.sync log;
  check Alcotest.int64 "uncharged sync free" 0L (Simclock.now clock);
  Log.charge_io log true;
  (* contents still stored *)
  check Alcotest.bytes "contents stored" (block 4096 'u') (Log.peek log a)

let test_superblock_roundtrip () =
  let _, _, log = mk () in
  Log.write_superblock log (Bytes.of_string "s4-superblock-v1");
  let b = Log.read_superblock log in
  check Alcotest.string "superblock" "s4-superblock-v1" (Bytes.to_string (Bytes.sub b 0 16))

let test_utilization () =
  let _, _, log = mk () in
  check (Alcotest.float 1e-9) "empty" 0.0 (Log.utilization log);
  ignore (Log.append log Tag.Journal ());
  check Alcotest.bool "nonzero" true (Log.utilization log > 0.0)

(* --- Reattach / crash recovery -------------------------------------- *)

let test_reattach_closed_segments () =
  let _, disk, log = mk () in
  (* Fill two segments with journal blocks. *)
  for i = 0 to 253 do
    ignore (Log.append log Tag.Journal ~data:(Jblock.encode ~block_size:4096 ~prev:(-1) [ je 1L (i + 1) 0 "" ]) ())
  done;
  Log.sync log;
  let log2 = Log.reattach disk in
  let infos = Log.segments log2 in
  let closed = Array.to_list infos |> List.filter (fun i -> i.Log.seg_state = Log.Closed) in
  check Alcotest.int "two closed segments" 2 (List.length closed);
  let jbs = Log.journal_blocks log2 in
  check Alcotest.int "254 journal blocks found" 254 (List.length jbs)

let test_reattach_open_segment_probed () =
  let _, disk, log = mk () in
  (* Write a handful of journal blocks, not enough to close a segment. *)
  for i = 0 to 4 do
    ignore (Log.append log Tag.Journal ~data:(Jblock.encode ~block_size:4096 ~prev:(-1) [ je 2L (i + 1) 0 "z" ]) ())
  done;
  Log.sync log;
  let log2 = Log.reattach disk in
  let jbs = Log.journal_blocks log2 in
  check Alcotest.int "probed journal blocks" 5 (List.length jbs)

let test_reattach_loses_unsynced () =
  let _, disk, log = mk () in
  ignore (Log.append log Tag.Journal ~data:(Jblock.encode ~block_size:4096 ~prev:(-1) [ je 3L 1 0 "" ]) ());
  (* no sync: the block never reached the disk *)
  let log2 = Log.reattach disk in
  check Alcotest.int "nothing found" 0 (List.length (Log.journal_blocks log2))

let test_all_tagged () =
  let _, _, log = mk () in
  let a = Log.append log Tag.Journal () in
  let b = Log.append log (Tag.Data { oid = 1L; fblock = 0 }) () in
  Log.kill log b;
  let tags = Log.all_tagged log in
  (* Dead blocks keep their tags until the segment is reclaimed. *)
  check Alcotest.bool "journal listed" true (List.mem_assoc a tags);
  check Alcotest.bool "dead data still listed" true (List.mem_assoc b tags)

let test_mark_live_after_reattach () =
  let _, disk, log = mk () in
  let a = Log.append log Tag.Journal ~data:(Jblock.encode ~block_size:4096 ~prev:(-1) [ je 4L 1 0 "" ]) () in
  Log.sync log;
  let log2 = Log.reattach disk in
  check Alcotest.bool "dead after reattach" false (Log.is_live log2 a);
  Log.mark_live log2 a Tag.Journal;
  check Alcotest.bool "live after mark" true (Log.is_live log2 a);
  Log.mark_live log2 a Tag.Journal;
  check Alcotest.int "idempotent" 1 (Log.live_blocks log2)

let prop_summary_roundtrip =
  QCheck.Test.make ~name:"summary roundtrip (random tags)" ~count:100
    QCheck.(list_of_size Gen.(1 -- 127) (pair small_nat small_nat))
    (fun pairs ->
      let tags =
        Array.of_list
          (List.map
             (fun (a, b) ->
               match a mod 4 with
               | 0 -> Tag.Journal
               | 1 -> Tag.Data { oid = Int64.of_int a; fblock = b }
               | 2 -> Tag.Checkpoint { oid = Int64.of_int b }
               | _ -> Tag.Audit)
             pairs)
      in
      match Summary.decode (Summary.encode ~block_size:4096 { Summary.epoch = 5; tags }) with
      | Some s -> s.Summary.tags = tags && s.Summary.epoch = 5
      | None -> false)

let () =
  Alcotest.run "s4_seglog"
    [
      ( "tag",
        [
          Alcotest.test_case "roundtrip" `Quick test_tag_roundtrip;
          Alcotest.test_case "oid" `Quick test_tag_oid;
        ] );
      ( "jblock",
        [
          Alcotest.test_case "roundtrip" `Quick test_jblock_roundtrip;
          Alcotest.test_case "crc" `Quick test_jblock_crc_rejects_corruption;
          Alcotest.test_case "not a block" `Quick test_jblock_not_a_block;
          Alcotest.test_case "overflow" `Quick test_jblock_overflow_rejected;
          Alcotest.test_case "fits" `Quick test_jblock_fits;
        ] );
      ( "summary",
        [
          Alcotest.test_case "roundtrip" `Quick test_summary_roundtrip;
          Alcotest.test_case "crc" `Quick test_summary_crc;
          qtest prop_summary_roundtrip;
        ] );
      ( "log",
        [
          Alcotest.test_case "layout" `Quick test_log_layout;
          Alcotest.test_case "append addrs" `Quick test_append_assigns_increasing_addrs;
          Alcotest.test_case "buffered until sync" `Quick test_buffered_until_sync;
          Alcotest.test_case "buffered read free" `Quick test_read_buffered_is_free;
          Alcotest.test_case "synced read charged" `Quick test_read_after_sync_charges;
          Alcotest.test_case "segment close summary" `Quick test_segment_close_writes_summary;
          Alcotest.test_case "kill and liveness" `Quick test_kill_and_liveness;
          Alcotest.test_case "tag_of" `Quick test_tag_of;
          Alcotest.test_case "reclaim dead" `Quick test_reclaim_dead_segments;
          Alcotest.test_case "auto reclaim" `Quick test_auto_reclaim_on_full;
          Alcotest.test_case "log full" `Quick test_log_full_raises;
          Alcotest.test_case "read_run clamps" `Quick test_read_run_clamps;
          Alcotest.test_case "charge toggle" `Quick test_charge_io_toggle;
          Alcotest.test_case "superblock" `Quick test_superblock_roundtrip;
          Alcotest.test_case "utilization" `Quick test_utilization;
        ] );
      ( "reattach",
        [
          Alcotest.test_case "closed segments" `Quick test_reattach_closed_segments;
          Alcotest.test_case "open segment probe" `Quick test_reattach_open_segment_probed;
          Alcotest.test_case "unsynced lost" `Quick test_reattach_loses_unsynced;
          Alcotest.test_case "mark live" `Quick test_mark_live_after_reattach;
          Alcotest.test_case "all_tagged" `Quick test_all_tagged;
        ] );
    ]
