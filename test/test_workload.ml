(* Tests for the workload generators and the four-system factory. *)

module Simclock = S4_util.Simclock
module Rng = S4_util.Rng
module N = S4_nfs.Nfs_types
module Systems = S4_workload.Systems
module Postmark = S4_workload.Postmark
module Ssh_build = S4_workload.Ssh_build
module Microbench = S4_workload.Microbench
module Daily = S4_workload.Daily
module Source_tree = S4_workload.Source_tree

let check = Alcotest.check

(* Workload comparisons assert timing relationships between systems;
   pin the serial config so the S4_DOMAINS environment knob cannot
   perturb them. *)
let sized mb = { Systems.Config.serial with Systems.Config.disk_mb = Some mb }

let small_pm = { Postmark.default with Postmark.files = 100; transactions = 300 }

(* --- Systems factory --------------------------------------------------- *)

let test_all_four_distinct () =
  let systems = Systems.all_four ~config:(sized 64) () in
  check Alcotest.int "four systems" 4 (List.length systems);
  let names = List.map (fun s -> s.Systems.name) systems in
  check Alcotest.int "distinct names" 4 (List.length (List.sort_uniq compare names));
  List.iter
    (fun sys ->
      match Systems.(sys.server.S4_nfs.Server.handle) N.Statfs with
      | N.R_statfs _ -> ()
      | _ -> Alcotest.failf "%s statfs failed" sys.Systems.name)
    systems

let test_s4_systems_expose_drive () =
  check Alcotest.bool "remote has drive" true
    (Option.is_some (Systems.s4_remote ~config:(sized 64) ()).Systems.drive);
  check Alcotest.bool "ffs has none" true
    (Option.is_none (Systems.bsd_ffs ~config:(sized 64) ()).Systems.drive)

let test_elapsed_seconds () =
  let sys = Systems.bsd_ffs ~config:(sized 64) () in
  let s, v = Systems.elapsed_seconds sys (fun () -> Simclock.advance sys.Systems.clock 2_000_000_000L; 42) in
  check Alcotest.int "value" 42 v;
  check (Alcotest.float 1e-6) "2 seconds" 2.0 s

(* --- PostMark ----------------------------------------------------------- *)

let test_postmark_runs_on_all_systems () =
  List.iter
    (fun sys ->
      let r = Postmark.run ~config:small_pm sys in
      check Alcotest.bool
        (sys.Systems.name ^ " creation time positive")
        true (r.Postmark.creation_seconds > 0.0);
      check Alcotest.bool
        (sys.Systems.name ^ " txn time positive")
        true (r.Postmark.transaction_seconds > 0.0);
      check Alcotest.bool "ops happened" true
        (r.Postmark.files_read + r.Postmark.files_appended > 0))
    (Systems.all_four ~config:(sized 256) ())

let test_postmark_deterministic () =
  let run () = Postmark.run ~config:small_pm (Systems.s4_nfs_server ~config:(sized 128) ()) in
  let a = run () and b = run () in
  check (Alcotest.float 1e-12) "same creation" a.Postmark.creation_seconds b.Postmark.creation_seconds;
  check (Alcotest.float 1e-12) "same txn" a.Postmark.transaction_seconds b.Postmark.transaction_seconds;
  check Alcotest.int "same deletes" a.Postmark.files_deleted b.Postmark.files_deleted

let test_postmark_s4_wins_ffs () =
  (* The Figure 3 headline: S4's log batching beats synchronous
     in-place writes. *)
  let s4 = Postmark.run ~config:small_pm (Systems.s4_nfs_server ~config:(sized 256) ()) in
  let ffs = Postmark.run ~config:small_pm (Systems.bsd_ffs ~config:(sized 256) ()) in
  check Alcotest.bool "S4 transactions faster" true
    (s4.Postmark.transaction_seconds < ffs.Postmark.transaction_seconds)

let test_postmark_cleaner_hook () =
  let config = { small_pm with Postmark.cleaner_every = Some 50 } in
  let sys = Systems.s4_nfs_server ~config:(sized 128) () in
  let r = Postmark.run ~config sys in
  check Alcotest.bool "completed with cleaner" true (r.Postmark.transaction_seconds > 0.0)

(* --- SSH-build ----------------------------------------------------------- *)

let small_ssh =
  { Ssh_build.default with Ssh_build.source_files = 25; configure_tests = 10 }

let test_ssh_build_phases () =
  List.iter
    (fun sys ->
      let r = Ssh_build.run ~config:small_ssh sys in
      check Alcotest.bool (sys.Systems.name ^ " unpack>0") true (r.Ssh_build.unpack_seconds > 0.0);
      check Alcotest.bool (sys.Systems.name ^ " configure>0") true (r.Ssh_build.configure_seconds > 0.0);
      check Alcotest.bool (sys.Systems.name ^ " build>0") true (r.Ssh_build.build_seconds > 0.0);
      (* Build is CPU-dominated: the largest phase on every system. *)
      check Alcotest.bool (sys.Systems.name ^ " build largest") true
        (r.Ssh_build.build_seconds > r.Ssh_build.unpack_seconds))
    (Systems.all_four ~config:(sized 256) ())

let test_ssh_build_cpu_shared () =
  (* CPU time is charged identically: differences across systems are
     bounded by the I/O, far less than total build time. *)
  let results = List.map (Ssh_build.run ~config:small_ssh) (Systems.all_four ~config:(sized 256) ()) in
  let builds = List.map (fun r -> r.Ssh_build.build_seconds) results in
  let mn = List.fold_left Float.min infinity builds in
  let mx = List.fold_left Float.max 0.0 builds in
  check Alcotest.bool "build times within 2x" true (mx < 2.0 *. mn)

let test_ssh_ext2_configure_advantage () =
  (* The Figure 4 anomaly: Linux's sync-mount flaw gives it the edge in
     the metadata-heavy configure phase vs FFS. *)
  let ffs = Ssh_build.run ~config:small_ssh (Systems.bsd_ffs ~config:(sized 256) ()) in
  let ext2 = Ssh_build.run ~config:small_ssh (Systems.linux_ext2 ~config:(sized 256) ()) in
  check Alcotest.bool "ext2 configure faster" true
    (ext2.Ssh_build.configure_seconds < ffs.Ssh_build.configure_seconds)

(* --- Microbench ----------------------------------------------------------- *)

let small_micro = { Microbench.default with Microbench.files = 300 }

let test_microbench_phases () =
  let sys = Systems.s4_nfs_server ~config:(sized 128) () in
  let r = Microbench.run ~config:small_micro sys in
  check Alcotest.bool "create>0" true (r.Microbench.create_seconds > 0.0);
  check Alcotest.bool "read>0" true (r.Microbench.read_seconds > 0.0);
  check Alcotest.bool "delete>0" true (r.Microbench.delete_seconds > 0.0)

let test_microbench_audit_costs () =
  (* Figure 6: audit on vs off. The audited run must not be faster. *)
  let run audit =
    let config =
      { Systems.benchmark_drive_config with S4.Drive.audit_enabled = audit }
    in
    let sys = Systems.s4_nfs_server ~config:{ (sized 256) with Systems.Config.drive_config = config } () in
    Microbench.run ~config:{ small_micro with Microbench.files = 1000 } sys
  in
  let on = run true and off = run false in
  let total r = r.Microbench.create_seconds +. r.Microbench.read_seconds +. r.Microbench.delete_seconds in
  check Alcotest.bool "auditing not free, not catastrophic" true
    (total on >= total off && total on < 1.3 *. total off)

let test_microbench_cold_read_slower () =
  let sys () = Systems.s4_nfs_server ~config:(sized 256) () in
  let cold = Microbench.run ~config:{ small_micro with Microbench.cold_read = true } (sys ()) in
  let warm = Microbench.run ~config:{ small_micro with Microbench.cold_read = false } (sys ()) in
  check Alcotest.bool "cold read slower" true
    (cold.Microbench.read_seconds > warm.Microbench.read_seconds)

(* --- Daily --------------------------------------------------------------- *)

let test_daily_studies () =
  check Alcotest.int "three studies" 3 (List.length Daily.all);
  check Alcotest.bool "NT biggest" true
    (List.for_all (fun s -> s.Daily.daily_write_bytes <= Daily.nt.Daily.daily_write_bytes) Daily.all)

let test_daily_replay () =
  let sys = Systems.s4_remote ~config:(sized 512) () in
  let m = Daily.replay ~scale:0.001 ~days:3 Daily.santry sys in
  check Alcotest.bool "history grows" true (m.Daily.history_bytes_per_day > 0.0);
  check Alcotest.bool "extrapolation scales" true
    (m.Daily.scaled_up_bytes_per_day > m.Daily.history_bytes_per_day);
  check Alcotest.bool "metadata fraction sane" true
    (m.Daily.metadata_fraction >= 0.0 && m.Daily.metadata_fraction < 0.5)

let test_daily_replay_requires_s4 () =
  check Alcotest.bool "rejects baseline" true
    (try
       ignore (Daily.replay ~scale:0.001 ~days:1 Daily.afs (Systems.bsd_ffs ~config:(sized 64) ()));
       false
     with Invalid_argument _ -> true)

(* --- Source tree ----------------------------------------------------------- *)

let test_source_tree_generation () =
  let rng = Rng.create ~seed:5 in
  let tree = Source_tree.generate rng ~files:10 in
  (* 10 sources + 10 derived objects *)
  check Alcotest.int "files" 20 (List.length tree);
  check Alcotest.bool "non-empty" true (Source_tree.total_bytes tree > 1000)

let test_source_tree_text_is_compressible () =
  let rng = Rng.create ~seed:6 in
  let tree = Source_tree.generate rng ~files:5 in
  let src = Option.get (Source_tree.find tree "src/mod000.ml") in
  check Alcotest.bool "program text compresses >2x" true (S4_compress.Lz.ratio src < 0.45)

let test_source_tree_evolution_is_incremental () =
  let rng = Rng.create ~seed:7 in
  let t0 = Source_tree.generate rng ~files:20 in
  let t1 = Source_tree.evolve rng t0 in
  (* Most files unchanged; some changed. *)
  let changed, unchanged =
    List.fold_left
      (fun (c, u) (f : Source_tree.file) ->
        match Source_tree.find t0 f.Source_tree.path with
        | Some old when Bytes.equal old f.Source_tree.content -> (c, u + 1)
        | Some _ -> (c + 1, u)
        | None -> (c + 1, u))
      (0, 0) t1
  in
  check Alcotest.bool "some changed" true (changed > 0);
  check Alcotest.bool "most unchanged" true (unchanged > changed)

let test_source_tree_objects_track_sources () =
  let rng = Rng.create ~seed:8 in
  let t0 = Source_tree.generate rng ~files:10 in
  let t1 = Source_tree.evolve rng ~churn:1.0 t0 in
  (* With 100% churn every source changed; every object must differ. *)
  List.iter
    (fun (f : Source_tree.file) ->
      if Filename.check_suffix f.Source_tree.path ".o" then begin
        match Source_tree.find t0 f.Source_tree.path with
        | Some old ->
          check Alcotest.bool (f.Source_tree.path ^ " object changed") false
            (Bytes.equal old f.Source_tree.content)
        | None -> ()
      end)
    t1

let () =
  Alcotest.run "s4_workload"
    [
      ( "systems",
        [
          Alcotest.test_case "all four" `Quick test_all_four_distinct;
          Alcotest.test_case "drives exposed" `Quick test_s4_systems_expose_drive;
          Alcotest.test_case "elapsed" `Quick test_elapsed_seconds;
        ] );
      ( "postmark",
        [
          Alcotest.test_case "runs on all systems" `Slow test_postmark_runs_on_all_systems;
          Alcotest.test_case "deterministic" `Quick test_postmark_deterministic;
          Alcotest.test_case "s4 beats ffs" `Quick test_postmark_s4_wins_ffs;
          Alcotest.test_case "cleaner hook" `Quick test_postmark_cleaner_hook;
        ] );
      ( "ssh-build",
        [
          Alcotest.test_case "phases" `Slow test_ssh_build_phases;
          Alcotest.test_case "cpu shared" `Slow test_ssh_build_cpu_shared;
          Alcotest.test_case "ext2 configure advantage" `Quick test_ssh_ext2_configure_advantage;
        ] );
      ( "microbench",
        [
          Alcotest.test_case "phases" `Quick test_microbench_phases;
          Alcotest.test_case "audit cost" `Slow test_microbench_audit_costs;
          Alcotest.test_case "cold read" `Quick test_microbench_cold_read_slower;
        ] );
      ( "daily",
        [
          Alcotest.test_case "studies" `Quick test_daily_studies;
          Alcotest.test_case "replay" `Slow test_daily_replay;
          Alcotest.test_case "requires s4" `Quick test_daily_replay_requires_s4;
        ] );
      ( "source-tree",
        [
          Alcotest.test_case "generation" `Quick test_source_tree_generation;
          Alcotest.test_case "compressible" `Quick test_source_tree_text_is_compressible;
          Alcotest.test_case "incremental evolution" `Quick test_source_tree_evolution_is_incremental;
          Alcotest.test_case "objects track sources" `Quick test_source_tree_objects_track_sources;
        ] );
    ]
