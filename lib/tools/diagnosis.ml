module Audit = S4.Audit

type activity = {
  a_oid : int64;
  a_reads : int;
  a_writes : int;
  a_deleted : bool;
  a_created : bool;
  a_acl_changed : bool;
  a_denied : int;
  a_first : int64;
  a_last : int64;
}

let matches ?user ?client (r : Audit.record) =
  (match user with Some u -> r.Audit.user = u | None -> true)
  && (match client with Some c -> r.Audit.client = c | None -> true)

let records_in target ~since ~until = Target.audit_records ~since ~until target

let damage_report ?user ?client ~since ~until target =
  let tbl : (int64, activity) Hashtbl.t = Hashtbl.create 64 in
  let note (r : Audit.record) =
    if r.Audit.oid <> 0L && matches ?user ?client r then begin
      let a =
        match Hashtbl.find_opt tbl r.Audit.oid with
        | Some a -> a
        | None ->
          {
            a_oid = r.Audit.oid;
            a_reads = 0;
            a_writes = 0;
            a_deleted = false;
            a_created = false;
            a_acl_changed = false;
            a_denied = 0;
            a_first = r.Audit.at;
            a_last = r.Audit.at;
          }
      in
      (* A rejected request is damage evidence too — an attacker's
         failed probe (ACL-denied delete, rejected admin call) must
         stay visible to forensics — but it changed nothing, so it
         only bumps the denial counter. *)
      let a =
        if not r.Audit.ok then { a with a_denied = a.a_denied + 1 }
        else
          match r.Audit.op with
          | "read" | "getattr" | "getacl_user" | "getacl_index" -> { a with a_reads = a.a_reads + 1 }
          | "write" | "append" | "truncate" | "setattr" -> { a with a_writes = a.a_writes + 1 }
          | "delete" -> { a with a_deleted = true }
          | "create" -> { a with a_created = true }
          | "setacl" -> { a with a_acl_changed = true }
          | _ -> a
      in
      Hashtbl.replace tbl r.Audit.oid { a with a_last = max a.a_last r.Audit.at }
    end
  in
  List.iter note (records_in target ~since ~until);
  Hashtbl.fold (fun _ a acc -> a :: acc) tbl []
  |> List.sort (fun x y -> compare y.a_last x.a_last)

type taint_edge = { src : int64; dst : int64; gap_ns : int64 }

let is_read_op op = op = "read"
let is_write_op op = op = "write" || op = "append"

let taint_edges ?user ?client ?(horizon_ns = 5_000_000_000L) ~since ~until target =
  let records =
    List.filter (fun r -> r.Audit.ok && matches ?user ?client r) (records_in target ~since ~until)
  in
  let seen = Hashtbl.create 64 in
  let edges = ref [] in
  (* For each write, look back for reads by the same principal within
     the horizon. *)
  let rec scan_back writes reads =
    match writes with
    | [] -> ()
    | (w : Audit.record) :: rest ->
      List.iter
        (fun (r : Audit.record) ->
          let gap = Int64.sub w.Audit.at r.Audit.at in
          if
            Int64.compare gap 0L >= 0
            && Int64.compare gap horizon_ns <= 0
            && r.Audit.oid <> w.Audit.oid
            && r.Audit.user = w.Audit.user
            && r.Audit.client = w.Audit.client
            && not (Hashtbl.mem seen (r.Audit.oid, w.Audit.oid))
          then begin
            Hashtbl.replace seen (r.Audit.oid, w.Audit.oid) ();
            edges := { src = r.Audit.oid; dst = w.Audit.oid; gap_ns = gap } :: !edges
          end)
        reads;
      scan_back rest reads
  in
  let writes = List.filter (fun r -> is_write_op r.Audit.op) records in
  let reads = List.filter (fun r -> is_read_op r.Audit.op) records in
  scan_back writes reads;
  List.rev !edges

let timeline ~oid ~since ~until target =
  List.filter (fun (r : Audit.record) -> r.Audit.oid = oid) (records_in target ~since ~until)

let suspicious_denials ~since ~until target =
  List.filter (fun (r : Audit.record) -> not r.Audit.ok) (records_in target ~since ~until)

let pp_activity ppf a =
  Format.fprintf ppf "oid %Ld: %d reads, %d writes%s%s%s%s" a.a_oid a.a_reads a.a_writes
    (if a.a_created then ", created" else "")
    (if a.a_deleted then ", DELETED" else "")
    (if a.a_acl_changed then ", ACL CHANGED" else "")
    (if a.a_denied > 0 then Printf.sprintf ", %d DENIED" a.a_denied else "")

let pp_taint_edge ppf e =
  Format.fprintf ppf "%Ld -> %Ld (read %.2f s before write)" e.src e.dst
    (Int64.to_float e.gap_ns /. 1e9)
