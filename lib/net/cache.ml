module Rpc = S4.Rpc
module Lru = S4_store.Lru
module Metrics = S4_obs.Metrics

(* The credential is part of the key: the server ACL-checks per
   (user, admin), so a reply earned by one principal must never be
   replayed to another one sharing the connection. *)
type key =
  | K_data of {
      user : int;
      admin : bool;
      oid : int64;
      at : int64 option;
      off : int;
      len : int;
    }
  | K_attr of { user : int; admin : bool; oid : int64; at : int64 option }

type event =
  | Grant of { key : key; expiry : int64; now : int64 }
  | Hit of { key : key; now : int64 }
  | Invalidate of { oid : int64; now : int64 }
  | Clear of { now : int64 }

type entry = { resp : Rpc.resp; expiry : int64 }

type t = {
  lru : (key, entry) Lru.t;
  journal : bool;
  mutable events : event list; (* newest first *)
  mutable observed_now : int64;
  (* Own counters, not the LRU's: a lease-expired entry is found in
     the LRU but NOT served, and must count as a miss. *)
  mutable n_hits : int;
  mutable n_misses : int;
}

let create ?(journal = false) ~budget () =
  {
    lru = Lru.create ~budget ();
    journal;
    events = [];
    observed_now = 0L;
    n_hits = 0;
    n_misses = 0;
  }

let record t e = if t.journal then t.events <- e :: t.events

let observe_now t now = if now > t.observed_now then t.observed_now <- now
let now t = t.observed_now

let key_oid = function K_data { oid; _ } -> oid | K_attr { oid; _ } -> oid

let key_of_req (cred : Rpc.credential) = function
  | Rpc.Read { oid; off; len; at } ->
    Some (K_data { user = cred.Rpc.user; admin = cred.Rpc.admin; oid; at; off; len })
  | Rpc.Get_attr { oid; at } ->
    Some (K_attr { user = cred.Rpc.user; admin = cred.Rpc.admin; oid; at })
  | _ -> None

let find t cred req =
  match key_of_req cred req with
  | None -> None
  | Some key -> (
    match Lru.find t.lru key with
    | None ->
      t.n_misses <- t.n_misses + 1;
      None
    | Some e when e.expiry <= t.observed_now ->
      (* Lease ran out: the server may have let another client change
         what this read observes. Treat as a miss. *)
      Lru.remove t.lru key;
      t.n_misses <- t.n_misses + 1;
      None
    | Some e ->
      record t (Hit { key; now = t.observed_now });
      Metrics.incr "cache/hit";
      t.n_hits <- t.n_hits + 1;
      Some e.resp)

let cacheable_resp = function
  | Rpc.R_error _ -> false
  | _ -> true

let cost_of = function
  | Rpc.R_data b -> 32 + Bytes.length b
  | Rpc.R_attr b -> 32 + Bytes.length b
  | _ -> 32

let store t cred req resp ~lease =
  if lease > t.observed_now && cacheable_resp resp then
    match key_of_req cred req with
    | None -> ()
    | Some key ->
      record t (Grant { key; expiry = lease; now = t.observed_now });
      Lru.insert t.lru key { resp; expiry = lease } ~cost:(cost_of resp)

let invalidate_oid t oid =
  let doomed = ref [] in
  Lru.iter t.lru (fun k _ -> if Int64.equal (key_oid k) oid then doomed := k :: !doomed);
  if !doomed <> [] then begin
    record t (Invalidate { oid; now = t.observed_now });
    List.iter (Lru.remove t.lru) !doomed
  end

let clear t =
  if Lru.length t.lru > 0 then record t (Clear { now = t.observed_now });
  Lru.clear t.lru

let invalidate_req t req =
  match req with
  | Rpc.Delete { oid }
  | Rpc.Write { oid; _ }
  | Rpc.Append { oid; _ }
  | Rpc.Truncate { oid; _ }
  | Rpc.Set_attr { oid; _ }
  | Rpc.Set_acl { oid; _ }
  | Rpc.Flush_object { oid; _ } -> invalidate_oid t oid
  | Rpc.Flush _ | Rpc.Set_window _ ->
    (* History pruning is not per-oid: time-based reads anywhere may
       now answer differently. *)
    clear t
  | _ -> ()

let hits t = t.n_hits
let misses t = t.n_misses
let length t = Lru.length t.lru
let events t = List.rev t.events

let pp_key () = function
  | K_data { user; oid; off; len; _ } ->
    Printf.sprintf "data(u%d,%Ld,%d,%d)" user oid off len
  | K_attr { user; oid; _ } -> Printf.sprintf "attr(u%d,%Ld)" user oid

let check t =
  let grants : (key, int64) Hashtbl.t = Hashtbl.create 64 in
  let rec go = function
    | [] -> Ok ()
    | Grant { key; expiry; _ } :: rest ->
      Hashtbl.replace grants key expiry;
      go rest
    | Invalidate { oid; _ } :: rest ->
      Hashtbl.iter
        (fun k _ -> if Int64.equal (key_oid k) oid then Hashtbl.remove grants k)
        (Hashtbl.copy grants);
      go rest
    | Clear _ :: rest ->
      Hashtbl.reset grants;
      go rest
    | Hit { key; now } :: rest -> (
      match Hashtbl.find_opt grants key with
      | None -> Error (Printf.sprintf "cache hit on %a without a live lease" pp_key key)
      | Some expiry when expiry <= now ->
        Error
          (Printf.sprintf "cache hit on %a at %Ld after lease expiry %Ld" pp_key key now
             expiry)
      | Some _ -> go rest)
  in
  go (events t)
