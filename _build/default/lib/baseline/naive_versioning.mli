(** Conventional-versioning space model (the Figure 2 comparison).

    A versioning system built on an FFS-style inode — 12 direct
    pointers, then single/double/triple indirect blocks — that creates
    a version per update the naive way: each update writes the new data
    blocks {e plus} a fresh copy of every indirect block on the path to
    them {e plus} a new inode. The paper measured up to 4x disk-usage
    growth from this, which is precisely what journal-based metadata
    eliminates (one small journal entry per update instead).

    This module only accounts space (and optionally time); it does not
    store contents. *)

type t

type stats = {
  mutable updates : int;
  mutable data_blocks : int;
  mutable indirect_blocks : int;
  mutable inode_blocks : int;
}

val create : ?block_size:int -> ?pointers_per_block:int -> ?direct:int -> unit -> t
(** Defaults: 4 KiB blocks, 1024 pointers per indirect block, 12 direct
    pointers — the classic FFS shape. *)

val write : t -> off:int -> len:int -> unit
(** One update (one new version). *)

val truncate : t -> size:int -> unit
val stats : t -> stats
val size : t -> int

val bytes_consumed : t -> int
(** Total bytes appended to versioned storage so far. *)

val metadata_bytes : t -> int
(** Bytes of those that are metadata (indirect + inode copies). *)

val metadata_overhead : t -> float
(** metadata bytes / data bytes; the Fig. 2 blow-up factor is
    [1 + metadata_overhead]. *)
