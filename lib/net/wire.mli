(** Versioned, length-prefixed binary wire protocol for S4 RPC.

    This is the drive's real security boundary: everything that
    arrives on a connection is hostile until this codec has accepted
    it. Each frame is

    {v
      offset size  field
      0      4     magic "S4WP"
      4      1     protocol version (1, 2 or 3)
      5      1     frame kind
      6      2     reserved (must be zero)
      8      8     xid (request id; 0 for control frames)
      16     4     payload length (bytes)
      20     len   payload (kind-specific)
      20+len 4     CRC-32 of bytes [0, 20+len)
    v}

    {b Versioning.} A peer advertises its best protocol version in
    [Hello]; the server answers [Hello_ack] with the minimum of the
    two and every later frame on the connection is encoded at that
    negotiated version. Version 2 adds the vectored [Batch] /
    [Batch_reply] frames (group-commit submission) and a max-batch
    advertisement in [Stat_ack]; both are rejected inside a v1
    stream, and a client negotiated down to v1 falls back to
    pipelining individual [Request] frames. Version 3 piggybacks the
    server clock and client-cache leases on reply frames ([now] /
    [lease] on [Response], [now] / [leases] on [Batch_reply]); on a
    v1/v2 stream the fields are absent and decode as 0, so an older
    peer simply never caches.

    Decoding is strict and bounded: a declared payload longer than the
    decoder's [max_frame] is rejected {e before} any payload arrives
    (so a hostile peer cannot make the server buffer unbounded input),
    the CRC must match, every payload must parse completely with no
    trailing bytes, and embedded counts are validated against the
    bytes actually present before any list is allocated. Malformed
    input yields {!Corrupt}, never an exception. *)

type frame =
  | Hello of { version : int; claim : int }
      (** client handshake; [claim] is the client id the host {e
          claims} — the server derives the real identity from the
          connection and echoes it in {!Hello_ack} *)
  | Hello_ack of { version : int; identity : int; now : int64 }
  | Request of { xid : int64; cred : S4.Rpc.credential; sync : bool; req : S4.Rpc.req }
  | Response of { xid : int64; resp : S4.Rpc.resp; now : int64; lease : int64 }
      (** [now] is the server's clock when the reply was made; [lease]
          the absolute server-time instant until which the client may
          serve this reply from its cache (0 = not cacheable). Both 0
          on a v1/v2 session. *)
  | Proto_error of { xid : int64; message : string }
      (** protocol-level rejection (bad frame, limit exceeded); the
          sender closes the connection after emitting one *)
  | Stat of { xid : int64 }
  | Stat_ack of { xid : int64; total : int; free : int; now : int64; batch : int }
      (** [batch] is the server's max accepted batch size (0 on a v1
          session: the field is absent from the v1 payload) *)
  | Goodbye  (** graceful close: the peer drains in-flight requests *)
  | Batch of
      { xid : int64; cred : S4.Rpc.credential; sync : bool; reqs : S4.Rpc.req array }
      (** v2: one vectored submission; [sync] asks for a single
          group-commit barrier after the last request *)
  | Batch_reply of
      { xid : int64; resps : S4.Rpc.resp array; now : int64; leases : int64 array }
      (** v2: positional responses to a [Batch]. v3 adds the server
          clock and one lease per response ([0L] = not cacheable);
          [leases] is empty on a v1/v2 session. *)

val version : int
(** Best protocol version this build speaks (3). *)

val min_version : int
(** Oldest version still accepted on the wire (1). *)

val header_len : int
(** Fixed frame header size (before the payload). *)

val overhead : int
(** Header plus CRC trailer: bytes a frame occupies beyond its payload. *)

val max_frame_default : int
(** Default payload-size cap (4 MiB). *)

val encode : ?version:int -> frame -> Bytes.t
(** A complete frame, CRC included, encoded at the session's
    negotiated [version] (default: this build's best). Encoding a
    batch frame at v1 is a programming error ([Invalid_argument]). *)

type decoded =
  | Frame of frame * int  (** a whole frame and the bytes it consumed *)
  | Need_more of int  (** incomplete: at least this many more bytes *)
  | Corrupt of string  (** unrecoverable: reject and close the stream *)

val decode : ?max_frame:int -> Bytes.t -> pos:int -> avail:int -> decoded
(** Decode one frame from [avail] bytes starting at [pos]. Never
    raises and never allocates more than [avail + O(1)] bytes. *)

val frame_name : frame -> string

val ensure_metrics : unit -> unit
(** Register the net layer's error-path counters
    ([net/decode_reject], [net/retry], [net/reconnect]) at zero so
    they are visible in a metrics dump even before any failure. *)
