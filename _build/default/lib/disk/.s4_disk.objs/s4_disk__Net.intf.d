lib/disk/net.mli: Format S4_util
