(* Differential testing: the S4-backed NFS systems and the
   update-in-place comparison servers implement the same NFSv2
   semantics, so any random operation sequence must leave all four
   systems with identical observable state (namespace, contents,
   sizes) and produce the same per-operation outcome. *)

module Rng = S4_util.Rng
module N = S4_nfs.Nfs_types
module Server = S4_nfs.Server
module Systems = S4_workload.Systems

let check = Alcotest.check
let qtest = Qseed.qtest

(* Content-retaining, serial-pinned config: this suite asserts the
   serial bit-identity contracts, so the [S4_DOMAINS] environment knob
   must not leak in (the domains group below opts in explicitly). *)
let ccfg mb =
  {
    Systems.Config.serial with
    Systems.Config.disk_mb = Some mb;
    drive_config = Systems.content_drive_config;
  }

(* Abstract operations over a small fixed namespace. *)
type aop =
  | Acreate of int * int  (* dir index, file index *)
  | Awrite of int * int * int * int * char
  | Atruncate of int * int * int
  | Aremove of int * int
  | Arename of int * int * int * int
  | Amkdir_file_clash of int * int  (* mkdir with a file's name *)
  | Aread of int * int

let dir_name i = Printf.sprintf "dir%d" i
let file_name i = Printf.sprintf "file%d" i

let outcome_string = function
  | N.R_attr a -> Printf.sprintf "attr:%d" a.N.size
  | N.R_fh (_, a) -> Printf.sprintf "fh:%d" a.N.size
  | N.R_data b -> Printf.sprintf "data:%s" (Digest.to_hex (Digest.bytes b))
  | N.R_entries es ->
    Printf.sprintf "entries:%s" (String.concat "," (List.sort compare (List.map (fun e -> e.N.name) es)))
  | N.R_link s -> "link:" ^ s
  | N.R_unit -> "ok"
  | N.R_statfs _ -> "statfs"
  | N.R_error e -> Format.asprintf "error:%a" N.pp_error e

(* Apply one abstract op; returns a string outcome for comparison. *)
let apply sys dirs op =
  let handle req = sys.Systems.server.Server.handle req in
  let lookup d n =
    match handle (N.Lookup { dir = dirs.(d); name = file_name n }) with
    | N.R_fh (fh, a) -> Some (fh, a)
    | _ -> None
  in
  match op with
  | Acreate (d, n) -> outcome_string (handle (N.Create { dir = dirs.(d); name = file_name n; mode = 0o644 }))
  | Awrite (d, n, off, len, c) ->
    (match lookup d n with
     | Some (fh, _) -> outcome_string (handle (N.Write { fh; off; data = Bytes.make len c }))
     | None -> "no-file")
  | Atruncate (d, n, size) ->
    (match lookup d n with
     | Some (fh, _) -> outcome_string (handle (N.Setattr { fh; mode = None; size = Some size }))
     | None -> "no-file")
  | Aremove (d, n) -> outcome_string (handle (N.Remove { dir = dirs.(d); name = file_name n }))
  | Arename (d1, n1, d2, n2) ->
    outcome_string
      (handle
         (N.Rename
            { from_dir = dirs.(d1); from_name = file_name n1; to_dir = dirs.(d2); to_name = file_name n2 }))
  | Amkdir_file_clash (d, n) ->
    outcome_string (handle (N.Mkdir { dir = dirs.(d); name = file_name n; mode = 0o755 }))
  | Aread (d, n) ->
    (match lookup d n with
     | Some (fh, a) -> outcome_string (handle (N.Read { fh; off = 0; len = a.N.size }))
     | None -> "no-file")

(* Observable final state: sorted (dir, name, size, content digest). *)
let snapshot sys dirs =
  let handle req = sys.Systems.server.Server.handle req in
  List.concat
    (List.mapi
       (fun d dir ->
         match handle (N.Readdir dir) with
         | N.R_entries es ->
           List.map
             (fun (e : N.dirent) ->
               match handle (N.Getattr e.N.fh) with
               | N.R_attr a ->
                 let digest =
                   match handle (N.Read { fh = e.N.fh; off = 0; len = a.N.size }) with
                   | N.R_data b -> Digest.to_hex (Digest.bytes b)
                   | _ -> "?"
                 in
                 Printf.sprintf "%d/%s size=%d %s" d e.N.name a.N.size digest
               | _ -> Printf.sprintf "%d/%s ?" d e.N.name)
             es
         | _ -> [ Printf.sprintf "%d unreadable" d ])
       (Array.to_list dirs))
  |> List.sort compare

let setup sys =
  Array.init 2 (fun i ->
      match
        sys.Systems.server.Server.handle
          (N.Mkdir { dir = sys.Systems.server.Server.root; name = dir_name i; mode = 0o755 })
      with
      | N.R_fh (fh, _) -> fh
      | _ -> failwith "setup mkdir")

let gen_ops =
  QCheck.Gen.(
    list_size (1 -- 40)
      (oneof
         [
           map2 (fun d n -> Acreate (d, n)) (0 -- 1) (0 -- 4);
           (let* d = 0 -- 1 and* n = 0 -- 4 and* off = 0 -- 6000 and* len = 1 -- 5000 and* c = char_range 'a' 'z' in
            return (Awrite (d, n, off, len, c)));
           map3 (fun d n s -> Atruncate (d, n, s)) (0 -- 1) (0 -- 4) (0 -- 8000);
           map2 (fun d n -> Aremove (d, n)) (0 -- 1) (0 -- 4);
           (let* d1 = 0 -- 1 and* n1 = 0 -- 4 and* d2 = 0 -- 1 and* n2 = 0 -- 4 in
            return (Arename (d1, n1, d2, n2)));
           map2 (fun d n -> Amkdir_file_clash (d, n)) (0 -- 1) (0 -- 4);
           map2 (fun d n -> Aread (d, n)) (0 -- 1) (0 -- 4);
         ]))

let pp_aop = function
  | Acreate (d, n) -> Printf.sprintf "create(%d,%d)" d n
  | Awrite (d, n, off, len, c) -> Printf.sprintf "write(%d,%d,%d,%d,%c)" d n off len c
  | Atruncate (d, n, s) -> Printf.sprintf "trunc(%d,%d,%d)" d n s
  | Aremove (d, n) -> Printf.sprintf "rm(%d,%d)" d n
  | Arename (a, b, c, d) -> Printf.sprintf "mv(%d,%d->%d,%d)" a b c d
  | Amkdir_file_clash (d, n) -> Printf.sprintf "mkdir(%d,%d)" d n
  | Aread (d, n) -> Printf.sprintf "read(%d,%d)" d n

let arb_ops =
  QCheck.make ~print:(fun l -> String.concat "; " (List.map pp_aop l)) gen_ops

let run_equivalence ops =
  let systems =
    (* Content retention on the S4 drives: we compare actual bytes.
       The sharded arrays must be indistinguishable from the
       single-drive systems at the NFS surface: a 1-shard array is the
       router's identity case, and a 3-shard array additionally
       exercises placement, forwarding and the meta shard. *)
    Systems.all_four ~config:(ccfg 128) ()
    @ [
        Systems.s4_array ~config:(ccfg 128) ~shards:1 ();
        Systems.s4_array ~config:(ccfg 128) ~shards:3 ();
      ]
  in
  let states =
    List.map
      (fun sys ->
        let dirs = setup sys in
        let outcomes = List.map (apply sys dirs) ops in
        (sys.Systems.name, outcomes, snapshot sys dirs))
      systems
  in
  match states with
  | [] -> true
  | (_, ref_out, ref_snap) :: rest ->
    List.for_all
      (fun (name, out, snap) ->
        if out <> ref_out then begin
          QCheck.Test.fail_reportf "%s diverged in outcomes:\n%s\nvs\n%s" name
            (String.concat ";" out) (String.concat ";" ref_out)
        end;
        if snap <> ref_snap then begin
          QCheck.Test.fail_reportf "%s diverged in final state:\n%s\nvs\n%s" name
            (String.concat "\n" snap) (String.concat "\n" ref_snap)
        end;
        true)
      rest

let prop_four_systems_agree =
  QCheck.Test.make ~name:"all four systems implement identical NFS semantics" ~count:30 arb_ops
    run_equivalence

(* A couple of fixed regression sequences (cheap to debug when they
   break). *)
let test_fixed_sequence () =
  let ops =
    [
      Acreate (0, 0);
      Awrite (0, 0, 0, 100, 'x');
      Acreate (0, 0);
      (* EEXIST everywhere *)
      Arename (0, 0, 1, 1);
      Awrite (1, 1, 50, 100, 'y');
      Atruncate (1, 1, 70);
      Aread (1, 1);
      Aremove (0, 0);
      (* ENOENT everywhere *)
      Amkdir_file_clash (1, 1);
      (* EEXIST *)
      Aremove (1, 1);
    ]
  in
  check Alcotest.bool "agree" true (run_equivalence ops)

let test_sparse_and_grow () =
  let ops =
    [ Acreate (0, 2); Awrite (0, 2, 7000, 10, 'z'); Aread (0, 2); Atruncate (0, 2, 9000); Aread (0, 2) ]
  in
  check Alcotest.bool "agree" true (run_equivalence ops)

(* --- Tracing is observationally free ---------------------------------- *)

(* The span tracer's hard correctness requirement: with tracing
   enabled, a run must be bit- and simulated-time-identical to the
   same run untraced. We drive two fresh instances of the same system
   through the same operation sequence — one traced, one not — then
   compare the final simulated clock and a sector-by-sector digest of
   every member disk. *)

module Trace = S4_obs.Trace
module Check = S4_obs.Check
module Simclock = S4_util.Simclock
module Sim_disk = S4_disk.Sim_disk
module Geometry = S4_disk.Geometry
module Log = S4_seglog.Log
module Drive = S4.Drive
module Audit = S4.Audit
module Router = S4_shard.Router

let disk_digest disk =
  let g = Sim_disk.geometry disk in
  let chunk = 4096 in
  let b = Buffer.create 1024 in
  let lba = ref 0 in
  while !lba < g.Geometry.sectors do
    let n = min chunk (g.Geometry.sectors - !lba) in
    Buffer.add_string b (Digest.to_hex (Digest.bytes (Sim_disk.peek disk ~lba:!lba ~sectors:n)));
    lba := !lba + n
  done;
  Digest.to_hex (Digest.string (Buffer.contents b))

let member_disks sys =
  match sys.Systems.router with
  | Some r -> List.map (fun d -> Log.disk (Drive.log d)) (Router.all_drives r)
  | None -> [ sys.Systems.disk ]

let trace_free_ops =
  [
    Acreate (0, 0); Awrite (0, 0, 0, 3000, 'a'); Acreate (1, 1);
    Awrite (1, 1, 500, 2000, 'b'); Aread (0, 0); Atruncate (0, 0, 1200);
    Arename (0, 0, 1, 2); Aread (1, 2); Aremove (1, 1); Awrite (1, 2, 100, 400, 'c');
    Amkdir_file_clash (1, 2); Aread (1, 2);
  ]

let run_traced_pair mk =
  (* Untraced reference run. *)
  let ref_sys = mk () in
  let ref_dirs = setup ref_sys in
  let ref_out = List.map (apply ref_sys ref_dirs) trace_free_ops in
  let ref_snap = snapshot ref_sys ref_dirs in
  let ref_clock = Simclock.now ref_sys.Systems.clock in
  let ref_digests = List.map disk_digest (member_disks ref_sys) in
  (* Same workload with the tracer on for the whole run. *)
  Trace.clear ();
  Trace.enable ();
  let sys, out, snap =
    Fun.protect ~finally:Trace.disable (fun () ->
        let sys = mk () in
        let dirs = setup sys in
        let out = List.map (apply sys dirs) trace_free_ops in
        (sys, out, snapshot sys dirs))
  in
  let clock = Simclock.now sys.Systems.clock in
  let digests = List.map disk_digest (member_disks sys) in
  check (Alcotest.list Alcotest.string) "traced run: same op outcomes" ref_out out;
  check (Alcotest.list Alcotest.string) "traced run: same final namespace" ref_snap snap;
  check Alcotest.int64 "traced run: identical final simulated clock" ref_clock clock;
  check (Alcotest.list Alcotest.string) "traced run: identical disk images" ref_digests digests;
  check Alcotest.bool "tracer actually recorded spans" true (Trace.count () > 0);
  sys

let test_tracing_free_single_drive () =
  let sys =
    run_traced_pair (fun () ->
        Systems.s4_nfs_server ~config:(ccfg 64) ())
  in
  (* The trace and the audit log independently witnessed the same run:
     make them corroborate each other, exhaustively in both
     directions. *)
  let drive = Option.get sys.Systems.drive in
  let audit =
    List.map
      (fun (r : Audit.record) ->
        { Check.a_at = r.Audit.at; a_op = r.Audit.op; a_oid = r.Audit.oid; a_ok = r.Audit.ok })
      (Audit.records (Drive.audit drive) ())
  in
  let r = Check.run ~audit ~complete:true (Trace.spans ()) in
  if r.Check.violations <> [] then
    Alcotest.failf "trace checker: %s" (String.concat "; " r.Check.violations);
  check Alcotest.bool "audit records matched to spans" true (r.Check.audit_matched > 0);
  Trace.clear ()

let test_tracing_free_array () =
  let sys =
    run_traced_pair (fun () ->
        Systems.s4_array ~config:(ccfg 64) ~shards:3 ())
  in
  ignore sys;
  let r = Check.run (Trace.spans ()) in
  if r.Check.violations <> [] then
    Alcotest.failf "trace checker: %s" (String.concat "; " r.Check.violations);
  Trace.clear ()

(* --- The network layer is semantically invisible ---------------------- *)

(* Serving every S4 RPC through the wire codec and a server session
   (loopback transport) must be indistinguishable from calling the
   drive in process: same NFS outcomes, same namespace, and — because
   the net layer adds no simulated time — the same final simulated
   clock and a sector-identical disk image. *)

let run_networked_pair ops =
  let mk f = f ?config:(Some (ccfg 64)) () in
  let run sys =
    let dirs = setup sys in
    let out = List.map (apply sys dirs) ops in
    ( out,
      snapshot sys dirs,
      Simclock.now sys.Systems.clock,
      List.map disk_digest (member_disks sys) )
  in
  let d_out, d_snap, d_clock, d_digests = run (mk Systems.s4_direct) in
  let l_out, l_snap, l_clock, l_digests =
    run (mk Systems.s4_loopback)
  in
  check (Alcotest.list Alcotest.string) "networked: same op outcomes" d_out l_out;
  check (Alcotest.list Alcotest.string) "networked: same final namespace" d_snap l_snap;
  check Alcotest.int64 "networked: identical final simulated clock" d_clock l_clock;
  check (Alcotest.list Alcotest.string) "networked: identical disk images" d_digests l_digests

let test_networked_fixed () = run_networked_pair trace_free_ops

let prop_networked_agree =
  QCheck.Test.make ~name:"loopback-served S4 is bit-identical to in-process" ~count:15 arb_ops
    (fun ops ->
      run_networked_pair ops;
      true)

(* --- Batched submission is equivalent to one-at-a-time ----------------- *)

(* The vectored [S4.Backend.submit] contract: splitting a request
   sequence into arbitrary batches must not be observable. Each batch
   runs its requests in order with full per-request semantics and pays
   one group-commit barrier at batch end, so the reference run is
   one-at-a-time [handle ~sync:false] followed by an explicit
   empty-batch barrier wherever the batched run would pay one. We
   compare responses, final per-slot object state, audit record
   count, the simulated clock and a sector-level digest of every
   member disk — on a single drive, a 3-shard array, and a
   loopback-served drive (where batches travel as one wire frame). *)

module Backend = S4.Backend
module Rpc = S4.Rpc
module Acl = S4.Acl
module Netserver = S4_net.Server
module Netclient = S4_net.Client
module Nettransport = S4_net.Transport

let s4_cred = Rpc.user_cred ~user:1 ~client:1

(* Abstract S4-level ops over four object slots; slots are bound to
   concrete oids by a pilot run, so the same concrete request list can
   be replayed on fresh instances. *)
type sop =
  | Screate of int
  | Swrite of int * int * int * char  (* slot, off, len, fill *)
  | Sappend of int * int * char
  | Struncate of int * int
  | Sread of int * int * int
  | Sgetattr of int
  | Ssetattr of int * string
  | Sdelete of int
  | Ssync

let pp_sop = function
  | Screate s -> Printf.sprintf "create(%d)" s
  | Swrite (s, off, len, c) -> Printf.sprintf "write(%d,%d,%d,%c)" s off len c
  | Sappend (s, len, c) -> Printf.sprintf "append(%d,%d,%c)" s len c
  | Struncate (s, size) -> Printf.sprintf "trunc(%d,%d)" s size
  | Sread (s, off, len) -> Printf.sprintf "read(%d,%d,%d)" s off len
  | Sgetattr s -> Printf.sprintf "getattr(%d)" s
  | Ssetattr (s, a) -> Printf.sprintf "setattr(%d,%s)" s a
  | Sdelete s -> Printf.sprintf "rm(%d)" s
  | Ssync -> "sync"

let gen_sop =
  QCheck.Gen.(
    let slot = 0 -- 3 in
    oneof
      [
        map (fun s -> Screate s) slot;
        (let* s = slot and* off = 0 -- 4000 and* len = 1 -- 2000 and* c = char_range 'a' 'z' in
         return (Swrite (s, off, len, c)));
        (let* s = slot and* len = 1 -- 1000 and* c = char_range 'a' 'z' in
         return (Sappend (s, len, c)));
        map2 (fun s size -> Struncate (s, size)) slot (0 -- 5000);
        (let* s = slot and* off = 0 -- 4000 and* len = 0 -- 2000 in
         return (Sread (s, off, len)));
        map (fun s -> Sgetattr s) slot;
        map2
          (fun s a -> Ssetattr (s, a))
          slot
          (string_size ~gen:(char_range 'a' 'z') (0 -- 24));
        map (fun s -> Sdelete s) slot;
        return Ssync;
      ])

(* A sequence plus a cyclic pattern of batch sizes: the partition is
   part of the generated input, so shrinking finds minimal splits. *)
let gen_batched_case =
  QCheck.Gen.(
    let* ops = list_size (1 -- 28) gen_sop in
    let* cuts = list_size (1 -- 6) (1 -- 7) in
    return (ops, cuts))

let arb_batched_case =
  QCheck.make
    ~print:(fun (ops, cuts) ->
      Printf.sprintf "[%s] / batches %s"
        (String.concat "; " (List.map pp_sop ops))
        (String.concat "," (List.map string_of_int cuts)))
    gen_batched_case

(* Slot with no object yet: a deliberately absent oid, so the request
   deterministically fails the same way on every run. *)
let absent_oid = 999_999_999L

let concretize oids op =
  let oid_of s = match oids.(s) with Some o -> o | None -> absent_oid in
  match op with
  | Screate _ -> Rpc.Create { acl = Acl.default ~owner:1 }
  | Swrite (s, off, len, c) ->
    Rpc.Write { oid = oid_of s; off; len; data = Some (Bytes.make len c) }
  | Sappend (s, len, c) -> Rpc.Append { oid = oid_of s; len; data = Some (Bytes.make len c) }
  | Struncate (s, size) -> Rpc.Truncate { oid = oid_of s; size }
  | Sread (s, off, len) -> Rpc.Read { oid = oid_of s; off; len; at = None }
  | Sgetattr s -> Rpc.Get_attr { oid = oid_of s; at = None }
  | Ssetattr (s, a) -> Rpc.Set_attr { oid = oid_of s; attr = Bytes.of_string a }
  | Sdelete s -> Rpc.Delete { oid = oid_of s }
  | Ssync -> Rpc.Sync

type binstance = {
  b_backend : Backend.t;
  b_drives : Drive.t list;
  b_cleanup : unit -> unit;
}

let bgeom mb = Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(mb * 1024 * 1024)

let bmk_drive clock =
  Drive.format ~config:Systems.content_drive_config
    (Sim_disk.create ~geometry:(bgeom 64) clock)

let mk_single_b () =
  let drive = bmk_drive (Simclock.create ()) in
  { b_backend = Drive.backend drive; b_drives = [ drive ]; b_cleanup = (fun () -> ()) }

let mk_shard_b () =
  let clock = Simclock.create () in
  let members = List.init 3 (fun i -> (i, Router.Single (bmk_drive clock))) in
  let router = Router.create members in
  {
    b_backend = Router.backend router;
    b_drives = Router.all_drives router;
    b_cleanup = (fun () -> ());
  }

let mk_loopback_b () =
  let drive = bmk_drive (Simclock.create ()) in
  let srv = Netserver.of_drive drive in
  let client = Netclient.connect (Nettransport.loopback srv) in
  {
    b_backend = Netclient.backend ~clock:(Drive.clock drive) ~keep_data:true client;
    b_drives = [ drive ];
    b_cleanup = (fun () -> Netclient.close client);
  }

let backend_kinds =
  [ ("single-drive", mk_single_b); ("3-shard-array", mk_shard_b); ("loopback", mk_loopback_b) ]

(* Bind slots to concrete oids on a throwaway instance of the same
   kind (oid allocation is deterministic per kind, not across kinds). *)
let concrete_reqs mk ops =
  let inst = mk () in
  let oids = Array.make 4 None in
  let reqs =
    List.map
      (fun op ->
        let req = concretize oids op in
        (match (op, Backend.handle inst.b_backend s4_cred req) with
        | Screate s, Rpc.R_oid oid -> oids.(s) <- Some oid
        | _ -> ());
        req)
      ops
  in
  inst.b_cleanup ();
  (reqs, oids)

let partition cuts reqs =
  let sizes = match List.filter (fun k -> k > 0) cuts with [] -> [ 3 ] | l -> l in
  let nsizes = List.length sizes in
  let rec take n = function
    | [] -> ([], [])
    | l when n = 0 -> ([], l)
    | x :: tl ->
      let a, b = take (n - 1) tl in
      (x :: a, b)
  in
  let rec go i = function
    | [] -> []
    | l ->
      let batch, rest = take (List.nth sizes (i mod nsizes)) l in
      batch :: go (i + 1) rest
  in
  go 0 reqs

let resp_str r = Format.asprintf "%a" Rpc.pp_resp r
let resp_ok = function Rpc.R_error _ -> false | _ -> true

(* Reference: one-at-a-time, unsynced, then the barrier the batched
   run would pay (an empty sync submit) — skipped, as [submit] skips
   it, when nothing in the batch succeeded. *)
let run_sequential backend batches =
  List.concat_map
    (fun batch ->
      let rs = List.map (fun req -> Backend.handle backend s4_cred req) batch in
      if batch = [] || List.exists resp_ok rs then
        ignore (backend.Backend.submit s4_cred ~sync:true [||]);
      List.map resp_str rs)
    batches

let run_batched backend batches =
  List.concat_map
    (fun batch ->
      backend.Backend.submit s4_cred ~sync:true (Array.of_list batch)
      |> Array.to_list |> List.map resp_str)
    batches

let audit_count inst =
  List.fold_left
    (fun n d -> n + List.length (Audit.records (Drive.audit d) ()))
    0 inst.b_drives

let bstate inst =
  ( audit_count inst,
    List.map (fun d -> disk_digest (Log.disk (Drive.log d))) inst.b_drives,
    Simclock.now (Drive.clock (List.hd inst.b_drives)) )

(* Final namespace at the RPC surface: attributes and contents of
   every slot that was ever bound. Probed after [bstate] so the probe
   itself cannot mask a divergence. *)
let probe_slots inst oids =
  Array.to_list oids
  |> List.concat_map (function
       | None -> []
       | Some oid ->
         [
           resp_str (Backend.handle inst.b_backend s4_cred (Rpc.Get_attr { oid; at = None }));
           resp_str
             (Backend.handle inst.b_backend s4_cred
                (Rpc.Read { oid; off = 0; len = 8192; at = None }));
         ])

let run_batched_equivalence (ops, cuts) =
  List.iter
    (fun (kind, mk) ->
      let reqs, oids = concrete_reqs mk ops in
      let batches = partition cuts reqs in
      let seq = mk () and bat = mk () in
      let out_s = run_sequential seq.b_backend batches in
      let out_b = run_batched bat.b_backend batches in
      if out_s <> out_b then
        QCheck.Test.fail_reportf "%s: batched responses diverged:\n%s\nvs sequential\n%s" kind
          (String.concat ";" out_b) (String.concat ";" out_s);
      let audit_s, digests_s, clock_s = bstate seq in
      let audit_b, digests_b, clock_b = bstate bat in
      if audit_s <> audit_b then
        QCheck.Test.fail_reportf "%s: audit record count %d (batched) vs %d (sequential)" kind
          audit_b audit_s;
      if clock_s <> clock_b then
        QCheck.Test.fail_reportf "%s: clock %Ld (batched) vs %Ld (sequential)" kind clock_b
          clock_s;
      if digests_s <> digests_b then
        QCheck.Test.fail_reportf "%s: member disk images diverged" kind;
      let ns_s = probe_slots seq oids and ns_b = probe_slots bat oids in
      if ns_s <> ns_b then
        QCheck.Test.fail_reportf "%s: final namespace diverged:\n%s\nvs\n%s" kind
          (String.concat ";" ns_b) (String.concat ";" ns_s);
      seq.b_cleanup ();
      bat.b_cleanup ())
    backend_kinds;
  true

let prop_batched_equals_sequential =
  QCheck.Test.make
    ~name:"arbitrary batching is unobservable (drive, 3-shard array, loopback)" ~count:20
    arb_batched_case run_batched_equivalence

(* Cheap fixed split for debugging, same machinery. *)
let test_batched_fixed () =
  let ops =
    [
      Screate 0; Swrite (0, 0, 2048, 'a'); Screate 1; Sappend (1, 700, 'b'); Sread (0, 0, 4096);
      Struncate (0, 900); Ssetattr (1, "label"); Sgetattr 0; Sdelete 1; Sread (1, 0, 100);
      Ssync; Swrite (2, 10, 10, 'c') (* slot 2 never created: deterministic failure *);
    ]
  in
  check Alcotest.bool "batched ≡ sequential" true (run_batched_equivalence (ops, [ 4; 1; 3 ]))

(* Group commit pays one barrier: a sync batch matches — bit for bit,
   clock tick for clock tick — sequential unsynced execution plus a
   single trailing barrier. (The throughput consequence is measured by
   [bench/main.exe batch], not asserted here: on workloads this small
   the simulated flush pattern can favour either side.) *)
let test_group_commit_single_barrier () =
  let ops =
    [ Screate 0; Swrite (0, 0, 2048, 'x'); Sappend (0, 512, 'y'); Screate 1; Swrite (1, 100, 300, 'z') ]
  in
  let reqs, _ = concrete_reqs mk_single_b ops in
  let bat = mk_single_b () in
  let resps = bat.b_backend.Backend.submit s4_cred ~sync:true (Array.of_list reqs) in
  Array.iter (fun r -> check Alcotest.bool "batch response ok" true (resp_ok r)) resps;
  let seq = mk_single_b () in
  List.iter (fun r -> ignore (Backend.handle seq.b_backend s4_cred r)) reqs;
  ignore (seq.b_backend.Backend.submit s4_cred ~sync:true [||]);
  check Alcotest.bool "one trailing barrier reproduces the sync batch" true
    (bstate bat = bstate seq)

(* A batched workload under the span tracer still satisfies the
   whole-run checker, including the positional audit↔span bijection:
   [Drive.submit] emits one Drive span per request, exactly as the
   one-at-a-time path does. *)
let test_batched_trace_checker () =
  Trace.clear ();
  Trace.enable ();
  let inst =
    Fun.protect ~finally:Trace.disable (fun () ->
        let inst = mk_single_b () in
        let submit reqs =
          inst.b_backend.Backend.submit s4_cred ~sync:true (Array.of_list reqs)
        in
        let oids =
          submit (List.init 4 (fun _ -> Rpc.Create { acl = Acl.default ~owner:1 }))
          |> Array.to_list
          |> List.map (function
               | Rpc.R_oid oid -> oid
               | r -> Alcotest.failf "create: %a" Rpc.pp_resp r)
        in
        let w i oid =
          Rpc.Write { oid; off = i * 512; len = 1024; data = Some (Bytes.make 1024 'b') }
        in
        ignore (submit (List.mapi w oids @ List.mapi w oids));
        ignore
          (submit (List.map (fun oid -> Rpc.Read { oid; off = 0; len = 2048; at = None }) oids));
        let victim = List.hd oids in
        ignore
          (submit
             [ Rpc.Delete { oid = victim }; Rpc.Get_attr { oid = victim; at = None }; Rpc.Sync ]);
        inst)
  in
  let drive = List.hd inst.b_drives in
  let audit =
    List.map
      (fun (r : Audit.record) ->
        { Check.a_at = r.Audit.at; a_op = r.Audit.op; a_oid = r.Audit.oid; a_ok = r.Audit.ok })
      (Audit.records (Drive.audit drive) ())
  in
  let r = Check.run ~audit ~complete:true (Trace.spans ()) in
  if r.Check.violations <> [] then
    Alcotest.failf "trace checker over batched run: %s" (String.concat "; " r.Check.violations);
  check Alcotest.bool "audit records matched to spans" true (r.Check.audit_matched > 0);
  Trace.clear ()

(* --- Read-path scale-out is observationally invisible ------------------ *)

(* The readscale subsystem's safety contract: serving reads from either
   replica (with batch read runs charged concurrently) and answering
   reads from the client's lease cache must both be invisible at the
   NFS surface — same per-op outcomes, same final namespace, and the
   same audit evidence. For replica balancing the TOTAL audit count
   across both replicas is invariant (each read is audited exactly once
   on whichever replica served it; mutations land on both). For the
   lease cache every hit is exactly one drive request that never
   happened, so uncached_audit = cached_audit + hits — the cache can
   hide work from the wire, never from the audit trail's accounting.
   Clocks and disk images legitimately differ (that is the point), so
   unlike the groups above we do NOT compare them. *)

module Translator = S4_nfs.Translator
module Mirror = S4_multi.Mirror
module Cache = S4_net.Cache

let audit_total drives =
  List.fold_left (fun n d -> n + List.length (Audit.records (Drive.audit d) ())) 0 drives

let readscale_ops =
  (* Repeated reads of the same files make the lease cache earn hits;
     interleaved mutations force invalidations. *)
  trace_free_ops
  @ [ Aread (1, 2); Aread (1, 2); Awrite (1, 2, 0, 64, 'd'); Aread (1, 2); Aread (1, 2) ]

let run_balanced_equivalence ops =
  let mk ~balanced () =
    Systems.s4_array
      ~config:{ (ccfg 64) with Systems.Config.mirrored = true; balanced; read_overlap = balanced }
      ~shards:2 ()
  in
  let run sys =
    let dirs = setup sys in
    let out = List.map (apply sys dirs) ops in
    let snap = snapshot sys dirs in
    let router = Option.get sys.Systems.router in
    (out, snap, audit_total (Router.all_drives router), router)
  in
  let p_out, p_snap, p_audit, _ = run (mk ~balanced:false ()) in
  let b_out, b_snap, b_audit, b_router = run (mk ~balanced:true ()) in
  if b_out <> p_out then
    QCheck.Test.fail_reportf "balanced array diverged in outcomes:\n%s\nvs\n%s"
      (String.concat ";" b_out) (String.concat ";" p_out);
  if b_snap <> p_snap then
    QCheck.Test.fail_reportf "balanced array diverged in final state:\n%s\nvs\n%s"
      (String.concat "\n" b_snap) (String.concat "\n" p_snap);
  if b_audit <> p_audit then
    QCheck.Test.fail_reportf "audit total %d (balanced) vs %d (primary-only)" b_audit p_audit;
  (* How split the balancing was (the fixed test asserts it happened). *)
  List.fold_left
    (fun (p, s) id ->
      match Router.member b_router id with
      | Router.Mirrored m ->
        let mp, ms = Mirror.read_counts m in
        (p + mp, s + ms)
      | Router.Single _ -> (p, s))
    (0, 0) (Router.shard_ids b_router)

let mk_cached_loopback () =
  let clock = Simclock.create () in
  let disk =
    Sim_disk.create ~geometry:(Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(64 * 1024 * 1024)) clock
  in
  let drive = Drive.format ~config:Systems.content_drive_config disk in
  let server_config =
    { Netserver.default_config with Netserver.lease_ns = 3_600_000_000_000L }
  in
  let srv = Netserver.of_drive ~config:server_config drive in
  let client_config =
    { Netclient.default_config with Netclient.cache_budget = 1 lsl 20; cache_journal = true }
  in
  let client = Netclient.connect ~config:client_config (Nettransport.loopback ~identity:1 srv) in
  let tr = Translator.mount (Translator.Backend (Netclient.backend ~clock ~keep_data:true client)) in
  let sys =
    {
      Systems.name = "S4-cached";
      server = Server.of_translator ~name:"S4-cached" tr;
      clock;
      disk;
      drive = Some drive;
      translator = Some tr;
      router = None;
    }
  in
  (sys, client)

let run_cached_equivalence ops =
  let run sys =
    let dirs = setup sys in
    let out = List.map (apply sys dirs) ops in
    let snap = snapshot sys dirs in
    (out, snap, audit_total [ Option.get sys.Systems.drive ])
  in
  let d_sys = Systems.s4_direct ~config:(ccfg 64) () in
  let d_out, d_snap, d_audit = run d_sys in
  let c_sys, client = mk_cached_loopback () in
  let c_out, c_snap, c_audit = run c_sys in
  if c_out <> d_out then
    QCheck.Test.fail_reportf "cached client diverged in outcomes:\n%s\nvs\n%s"
      (String.concat ";" c_out) (String.concat ";" d_out);
  if c_snap <> d_snap then
    QCheck.Test.fail_reportf "cached client diverged in final state:\n%s\nvs\n%s"
      (String.concat "\n" c_snap) (String.concat "\n" d_snap);
  let cache = Option.get (Netclient.cache client) in
  let hits = Cache.hits cache in
  if d_audit <> c_audit + hits then begin
    let ops_of sys =
      List.map
        (fun (r : Audit.record) -> Printf.sprintf "%s(%Ld)" r.Audit.op r.Audit.oid)
        (Audit.records (Drive.audit (Option.get sys.Systems.drive)) ())
    in
    QCheck.Test.fail_reportf
      "audit accounting: %d uncached <> %d cached + %d hits\nuncached: %s\ncached:   %s"
      d_audit c_audit hits
      (String.concat " " (ops_of d_sys))
      (String.concat " " (ops_of c_sys))
  end;
  (* The lease safety rule: the journal proves no reply was ever served
     from cache after its lease expired or was invalidated. *)
  (match Cache.check cache with
  | Ok () -> ()
  | Error e -> QCheck.Test.fail_reportf "lease checker: %s" e);
  hits

let test_readscale_balanced_fixed () =
  let _, s = run_balanced_equivalence readscale_ops in
  check Alcotest.bool "secondary replicas actually served reads" true (s > 0)

let test_readscale_cached_fixed () =
  let hits = run_cached_equivalence readscale_ops in
  check Alcotest.bool "cache actually served hits" true (hits > 0)

let prop_readscale_balanced =
  QCheck.Test.make ~name:"replica-balanced reads are observationally invisible" ~count:10
    arb_ops
    (fun ops ->
      ignore (run_balanced_equivalence ops);
      true)

let prop_readscale_cached =
  QCheck.Test.make ~name:"lease-cached reads are observationally invisible" ~count:10 arb_ops
    (fun ops ->
      ignore (run_cached_equivalence ops);
      true)

(* --- Per-shard worker domains ------------------------------------------ *)

(* The multicore contract (ROADMAP item 1): with the knob pinned to 1
   the router takes the untouched serial dispatch path, so a domains=1
   run must be bit-identical to a build that never heard of domains —
   responses, audit count, member disk images, final sim clock.  With
   the knob above 1 a run is still deterministic (repeatable bit for
   bit: lanes fork at a common origin and the shared clock advances by
   the slowest lane, independent of host scheduling) and semantically
   identical to serial — same responses, same final namespace, same
   audit accounting.  Only time accounting differs: parallel windows
   cost the max of their members instead of the sum, so the parallel
   clock can only be at or ahead of (i.e. ≤) the serial clock, and the
   on-disk timestamps shift with it, which is why disk digests are
   deliberately NOT compared across that boundary. *)

let mk_plain4_b () =
  let clock = Simclock.create () in
  let members = List.init 4 (fun i -> (i, Router.Single (bmk_drive clock))) in
  let router = Router.create members in
  {
    b_backend = Router.backend router;
    b_drives = Router.all_drives router;
    b_cleanup = (fun () -> Router.close_domains router);
  }

let mk_domains_b n () =
  let clock = Simclock.create () in
  let members = List.init 4 (fun i -> (i, Router.Single (bmk_drive clock))) in
  let router = Router.create members in
  Router.set_domains router n;
  {
    b_backend = Router.backend router;
    b_drives = Router.all_drives router;
    b_cleanup = (fun () -> Router.close_domains router);
  }

(* Four objects (one per shard with high likelihood) and batches of
   consecutive object-routed requests, so parallel windows actually
   form. *)
let domains_ops =
  [
    Screate 0; Screate 1; Screate 2; Screate 3;
    Swrite (0, 0, 2048, 'a'); Swrite (1, 512, 1024, 'b'); Sappend (2, 700, 'c');
    Swrite (3, 0, 4096, 'd');
    Sread (0, 0, 2048); Sread (1, 0, 2048); Sread (2, 0, 1024); Sread (3, 0, 4096);
    Struncate (0, 900); Ssetattr (1, "label"); Sappend (2, 300, 'e'); Swrite (3, 100, 64, 'f');
    Sgetattr 0; Sdelete 1; Sread (1, 0, 64); Ssync;
  ]

let run_domains mk (ops, cuts) =
  let reqs, oids = concrete_reqs mk ops in
  let inst = mk () in
  let out = run_batched inst.b_backend (partition cuts reqs) in
  let st = bstate inst in
  let ns = probe_slots inst oids in
  inst.b_cleanup ();
  (out, st, ns)

let test_domains_pinned_bit_identical () =
  let case = (domains_ops, [ 4; 8; 8 ]) in
  let plain = run_domains mk_plain4_b case in
  let pinned = run_domains (mk_domains_b 1) case in
  check Alcotest.bool "domains=1 is bit-identical to the serial build" true (plain = pinned)

let test_domains_deterministic () =
  let case = (domains_ops, [ 4; 8; 8 ]) in
  let a = run_domains (mk_domains_b 4) case in
  let b = run_domains (mk_domains_b 4) case in
  check Alcotest.bool "two domains=4 runs are bit-identical" true (a = b)

let compare_serial_vs_domains n (ops, cuts) =
  let s_out, (s_audit, _, s_clock), s_ns = run_domains mk_plain4_b (ops, cuts) in
  let p_out, (p_audit, _, p_clock), p_ns = run_domains (mk_domains_b n) (ops, cuts) in
  if p_out <> s_out then
    QCheck.Test.fail_reportf "domains=%d responses diverged:\n%s\nvs serial\n%s" n
      (String.concat ";" p_out) (String.concat ";" s_out);
  if p_audit <> s_audit then
    QCheck.Test.fail_reportf "domains=%d audit count %d vs serial %d" n p_audit s_audit;
  if p_ns <> s_ns then
    QCheck.Test.fail_reportf "domains=%d final namespace diverged:\n%s\nvs\n%s" n
      (String.concat ";" p_ns) (String.concat ";" s_ns);
  if Int64.compare p_clock s_clock > 0 then
    QCheck.Test.fail_reportf "domains=%d clock %Ld behind serial %Ld" n p_clock s_clock;
  (s_clock, p_clock)

let test_domains_semantics_fixed () =
  let s_clock, p_clock = compare_serial_vs_domains 4 (domains_ops, [ 4; 8; 8 ]) in
  (* The fixed workload routes consecutive requests to distinct shards,
     so at least one window must have been charged max-of-lanes. *)
  check Alcotest.bool "parallel windows actually formed (clock strictly ahead)" true
    (Int64.compare p_clock s_clock < 0)

let prop_domains_equals_serial =
  QCheck.Test.make ~name:"multi-domain dispatch is semantically invisible" ~count:15
    arb_batched_case
    (fun case ->
      ignore (compare_serial_vs_domains 4 case);
      true)

let () =
  Alcotest.run "s4_equivalence"
    [
      ( "differential",
        [
          Alcotest.test_case "fixed sequence" `Quick test_fixed_sequence;
          Alcotest.test_case "sparse and grow" `Quick test_sparse_and_grow;
          qtest prop_four_systems_agree;
        ] );
      ( "traced",
        [
          Alcotest.test_case "tracing is free (single drive)" `Quick
            test_tracing_free_single_drive;
          Alcotest.test_case "tracing is free (3-shard array)" `Quick test_tracing_free_array;
        ] );
      ( "networked",
        [
          Alcotest.test_case "fixed sequence over loopback" `Quick test_networked_fixed;
          qtest prop_networked_agree;
        ] );
      ( "batched",
        [
          Alcotest.test_case "fixed split" `Quick test_batched_fixed;
          Alcotest.test_case "group commit pays one barrier" `Quick
            test_group_commit_single_barrier;
          Alcotest.test_case "trace checker over a batched workload" `Quick
            test_batched_trace_checker;
          qtest prop_batched_equals_sequential;
        ] );
      ( "readscale",
        [
          Alcotest.test_case "balanced mirrored array (fixed)" `Quick
            test_readscale_balanced_fixed;
          Alcotest.test_case "lease-cached client (fixed)" `Quick test_readscale_cached_fixed;
          qtest prop_readscale_balanced;
          qtest prop_readscale_cached;
        ] );
      ( "domains",
        [
          Alcotest.test_case "domains=1 bit-identical to serial" `Quick
            test_domains_pinned_bit_identical;
          Alcotest.test_case "domains=4 deterministic" `Quick test_domains_deterministic;
          Alcotest.test_case "domains=4 semantically invisible (fixed)" `Quick
            test_domains_semantics_fixed;
          qtest prop_domains_equals_serial;
        ] );
    ]
