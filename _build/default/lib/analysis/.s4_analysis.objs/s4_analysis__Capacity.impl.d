lib/analysis/capacity.ml: Format List S4_workload
