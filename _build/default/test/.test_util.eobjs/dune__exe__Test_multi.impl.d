test/test_multi.ml: Alcotest Bytes Int64 List S4 S4_analysis S4_disk S4_multi S4_store S4_util String
