lib/store/lru.ml: Hashtbl Option
