(** What the administrative tools operate on: a single self-securing
    drive or a whole sharded array behind a {!S4_shard.Router}.

    Both expose the same request surface ([credential + req -> resp]),
    so {!History}, {!Recovery}, {!Diagnosis} and {!Landmark} are
    written once against this type and work unchanged at array scale.
    The device-side accessors ([store_of], [members], [audit_records])
    are the administrator's physical-access privilege from the paper's
    model: the tools run {e on} the storage side of the security
    perimeter, not through a possibly-compromised client. *)

type t = Drive of S4.Drive.t | Array of S4_shard.Router.t

val of_drive : S4.Drive.t -> t
val of_router : S4_shard.Router.t -> t

val handle : t -> S4.Rpc.credential -> S4.Rpc.req -> S4.Rpc.resp

val submit :
  t -> S4.Rpc.credential -> ?sync:bool -> S4.Rpc.req array -> S4.Rpc.resp array
(** Vectored {!handle} — the native submission surface of both targets
    ({!S4.Drive.submit}, {!S4_shard.Router.submit}). Tools that issue
    runs of independent requests (ACL slot rewrites, a file's restore
    sequence) go through this so a whole run is one submission and —
    when [sync] — pays a single group-commit barrier. *)

val clock : t -> S4_util.Simclock.t
val ops_handled : t -> int
val fsck : t -> string list
val barrier : t -> S4.Rpc.error option

val members : t -> (int * int * S4.Drive.t) list
(** Member drives as [(shard, replica, drive)]; a bare drive is
    [(0, 0, d)]. *)

val store_of : t -> int64 -> S4_store.Obj_store.t
(** The authoritative store holding an oid (for an array: the holder
    shard's live replica). *)

val landmark_barrier :
  t -> ((int * int * S4_integrity.Chain.head) list, string) result
(** One consistent durability barrier over every member, returning the
    sealed audit-chain head per [(shard, replica)] — the raw material
    of a {!Landmark} mark. See {!S4_shard.Router.landmark_barrier}. *)

val audit_records :
  ?since:int64 -> ?until:int64 -> t -> S4.Audit.record list
(** Device-side audit trail, merged across shards in time order
    (primary replicas only — both mirror replicas log identically). *)
