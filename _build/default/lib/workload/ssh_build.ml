module Rng = S4_util.Rng
module Simclock = S4_util.Simclock
module N = S4_nfs.Nfs_types
module Server = S4_nfs.Server

type config = {
  seed : int;
  source_files : int;
  avg_source_bytes : int;
  configure_tests : int;
  compile_ms_per_file : float;
  configure_ms_per_test : float;
  unpack_cpu_ms : float;
  link_ms : float;
}

let default =
  {
    seed = 7;
    source_files = 160;
    avg_source_bytes = 22_000;
    configure_tests = 70;
    compile_ms_per_file = 700.0;
    configure_ms_per_test = 250.0;
    unpack_cpu_ms = 1_500.0;
    link_ms = 3_000.0;
  }

type result = {
  system : string;
  unpack_seconds : float;
  configure_seconds : float;
  build_seconds : float;
}

let total r = r.unpack_seconds +. r.configure_seconds +. r.build_seconds

let cpu sys ms = Simclock.advance sys.Systems.clock (Simclock.of_ms ms)
let handle sys req = Server.handle_exn sys.Systems.server req

let mkdir sys ~dir name =
  match handle sys (N.Mkdir { dir; name; mode = 0o755 }) with
  | N.R_fh (fh, _) -> fh
  | _ -> failwith "ssh-build: mkdir"

let create_write sys ~dir name data =
  match handle sys (N.Create { dir; name; mode = 0o644 }) with
  | N.R_fh (fh, _) ->
    ignore (handle sys (N.Write { fh; off = 0; data }));
    fh
  | _ -> failwith "ssh-build: create"

let read_whole sys fh len = ignore (handle sys (N.Read { fh; off = 0; len }))
let remove sys ~dir name = ignore (handle sys (N.Remove { dir; name }))

type tree = {
  src_dir : N.fh;
  obj_dir : N.fh;
  tmp_dir : N.fh;
  sources : (string * N.fh * int) array;  (* name, handle, size *)
}

(* Phase 1: unpack - write the whole source tree. *)
let unpack cfg rng sys =
  let root = sys.Systems.server.S4_nfs.Server.root in
  let top = mkdir sys ~dir:root "ssh-1.2.27" in
  let src_dir = mkdir sys ~dir:top "src" in
  let obj_dir = mkdir sys ~dir:top "obj" in
  let tmp_dir = mkdir sys ~dir:top "tmp" in
  cpu sys cfg.unpack_cpu_ms;
  let sources =
    Array.init cfg.source_files (fun i ->
        let name = Printf.sprintf "file%03d.c" i in
        let size =
          max 512 (int_of_float (Rng.exponential rng ~mean:(float_of_int cfg.avg_source_bytes)))
        in
        let fh = create_write sys ~dir:src_dir name (Bytes.make size 'c') in
        (name, fh, size))
  in
  { src_dir; obj_dir; tmp_dir; sources }

(* Phase 2: configure - feature tests: write a tiny program, compile
   it (CPU), write its binary, run it (read), delete both. *)
let configure cfg _rng sys tree =
  for i = 0 to cfg.configure_tests - 1 do
    let cname = Printf.sprintf "conftest%02d.c" i in
    let bname = Printf.sprintf "conftest%02d" i in
    let _cfh = create_write sys ~dir:tree.tmp_dir cname (Bytes.make 300 't') in
    cpu sys cfg.configure_ms_per_test;
    let bfh = create_write sys ~dir:tree.tmp_dir bname (Bytes.make 12_288 'b') in
    read_whole sys bfh 12_288;
    remove sys ~dir:tree.tmp_dir cname;
    remove sys ~dir:tree.tmp_dir bname
  done;
  (* Generated headers and makefiles. *)
  for i = 0 to 9 do
    ignore (create_write sys ~dir:tree.src_dir (Printf.sprintf "config%d.h" i) (Bytes.make 4_000 'h'))
  done

(* Phase 3: build - compile each source (read source, CPU, write .o),
   then link (read all objects, CPU, write executables), then clean
   temporaries. *)
let build cfg _rng sys tree =
  let objects =
    Array.map
      (fun (name, fh, size) ->
        read_whole sys fh size;
        cpu sys cfg.compile_ms_per_file;
        let oname = Filename.remove_extension name ^ ".o" in
        let osize = (size / 2) + 2_048 in
        let ofh = create_write sys ~dir:tree.obj_dir oname (Bytes.make osize 'o');
        in
        (oname, ofh, osize))
      tree.sources
  in
  (* Link the main binaries. *)
  Array.iter (fun (_, ofh, osize) -> read_whole sys ofh osize) objects;
  cpu sys cfg.link_ms;
  List.iter
    (fun (name, size) -> ignore (create_write sys ~dir:tree.obj_dir name (Bytes.make size 'x')))
    [ ("ssh", 1_100_000); ("sshd", 1_200_000); ("scp", 400_000); ("ssh-keygen", 350_000) ];
  (* Remove temporary files. *)
  Array.iter (fun (oname, _, _) -> remove sys ~dir:tree.obj_dir oname) objects

let run ?(config = default) sys =
  let rng = Rng.create ~seed:config.seed in
  let tree = ref None in
  let unpack_seconds, () =
    Systems.elapsed_seconds sys (fun () -> tree := Some (unpack config rng sys))
  in
  let tree = Option.get !tree in
  let configure_seconds, () =
    Systems.elapsed_seconds sys (fun () -> configure config rng sys tree)
  in
  let build_seconds, () = Systems.elapsed_seconds sys (fun () -> build config rng sys tree) in
  { system = sys.Systems.name; unpack_seconds; configure_seconds; build_seconds }

let pp_result ppf r =
  Format.fprintf ppf "%-12s unpack %6.2f s   configure %6.2f s   build %7.2f s   total %7.2f s"
    r.system r.unpack_seconds r.configure_seconds r.build_seconds (total r)
