lib/util/bcodec.ml: Buffer Bytes Char Format String
