lib/core/audit.mli: Bytes S4_seglog
