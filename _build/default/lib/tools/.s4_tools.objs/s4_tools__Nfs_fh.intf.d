lib/tools/nfs_fh.mli:
