(** Seeded intrusion campaigns: the paper's threat model made
    executable.

    A compromised client machine holding a legitimate user's
    credentials attacks the system tree while two honest users keep
    working — trojaned binaries, scrubbed logs, timestomped
    attributes, mass deletion, and slow exfiltration reads interleaved
    into ordinary traffic. A storage-side detector scans the
    device-side audit trail (which the intruder cannot scrub — it
    lives below the security perimeter); forensics attributes the
    damage; recovery rolls the system tree back to a pre-intrusion
    cross-shard {!Landmark} mark; and a ground-truth oracle checks the
    paper's core claims: every attacker mutation detected and
    reverted, every legitimate write preserved, the audit chain
    verifiable end to end.

    Everything is deterministic given [seed] and runs identically on a
    single drive and on a sharded (optionally mirrored) array. *)

type deployment = Single_drive | Array of { shards : int; mirrored : bool }

type config = {
  seed : int;
  deployment : deployment;
  files_per_dir : int;  (** per populated directory; [>= 6] keeps every attack class viable *)
  legit_ops : int;  (** honest operations interleaved into the window *)
  attacks_per_class : int;  (** [>= 2] so every class has enough volume to detect *)
  detect_every_s : float;  (** detector scan period (simulated seconds) *)
  disk_mb : int;
  trace : bool;  (** run the cross-layer trace checker over the whole story *)
}

val default : config
(** Single drive, seed 42, 8 files/dir, 60 legitimate ops, 4 attacks
    per class, 2 s detection scans. *)

type outcome = {
  o_mark : Landmark.mark;  (** the pre-intrusion rollback point *)
  o_classes : (string * float) list;
      (** per attack class, detection latency in simulated seconds
          from the class's first operation to the detector scan that
          flagged it; negative if never detected *)
  o_attack_ops : int;
  o_legit_ops : int;
  o_denied_probes : int;  (** {!Diagnosis.suspicious_denials} in the window *)
  o_damage_objects : int;  (** distinct objects the attacker mutated *)
  o_damage_bytes : int;
  o_false_negatives : string list;
      (** attacker activity missing from {!Diagnosis.damage_report} *)
  o_false_positives : string list;
      (** damage-report entries with no ground truth behind them *)
  o_rollback_s : float;  (** simulated time for the rollback *)
  o_recovery_rpcs : int;
  o_recovery_ops_per_s : float;
  o_report : Recovery.report;
  o_surviving : string list;  (** attacker effects that outlived the rollback *)
  o_lost : string list;  (** legitimate data the rollback destroyed *)
  o_violations : string list;
      (** audit-chain, landmark-verification, fsck or trace-checker failures *)
}

val run : config -> outcome
(** Build the deployment, populate it, take a pre-intrusion mark, run
    the campaign with periodic detection scans, attribute the damage,
    roll back, and judge the whole story against ground truth.
    @raise Failure only on harness errors (setup RPCs failing), never
    for attack outcomes — those land in the outcome's lists. *)

val detected : outcome -> bool
(** Every attack class was flagged by the detector. *)

val clean : outcome -> bool
(** The paper's claims all held: all classes detected, no surviving
    attacker effect, no lost legitimate write, exact attribution, no
    verification failures. *)

val problems : outcome -> string list
(** Everything {!clean} would complain about, as one flat list. *)

val pp_outcome : Format.formatter -> outcome -> unit
