module Log = S4_seglog.Log
module Tag = S4_seglog.Tag
module Jblock = S4_seglog.Jblock
module Bcodec = S4_util.Bcodec
module Simclock = S4_util.Simclock
module Trace = S4_obs.Trace

type oid = int64
type addr = int

exception No_such_object of oid
exception Is_deleted of oid

type config = {
  keep_data : bool;
  block_cache_bytes : int;
  object_cache_bytes : int;
  readahead_blocks : int;
  checkpoint_interval : int;
}

let default_config =
  {
    keep_data = true;
    block_cache_bytes = 128 * 1024 * 1024;
    object_cache_bytes = 32 * 1024 * 1024;
    readahead_blocks = 32;
    checkpoint_interval = 128;
  }

type stats = {
  mutable ops : int;
  mutable journal_entries : int;
  mutable journal_bytes : int;
  mutable journal_blocks_written : int;
  mutable checkpoint_blocks_written : int;
  mutable data_blocks_written : int;
  mutable bytes_written : int;
  mutable bytes_read : int;
  mutable entries_expired : int;
  mutable blocks_expired : int;
  mutable objects_expired : int;
}

let fresh_stats () =
  {
    ops = 0;
    journal_entries = 0;
    journal_bytes = 0;
    journal_blocks_written = 0;
    checkpoint_blocks_written = 0;
    data_blocks_written = 0;
    bytes_written = 0;
    bytes_read = 0;
    entries_expired = 0;
    blocks_expired = 0;
    objects_expired = 0;
  }

(* A retained journal entry; [jaddr] is the journal block holding it
   once flushed (Log.none while still pending). [e] is rewritten in
   place when the cleaner relocates blocks the entry references. *)
type rentry = { mutable e : Entry.t; mutable jaddr : addr }

type obj = {
  o_oid : oid;
  mutable o_exists : bool;
  mutable o_size : int;
  mutable o_attr : Bytes.t;
  mutable o_acl : Bytes.t;
  mutable o_table : addr array;
  mutable o_entries : rentry list;  (* newest first *)
  mutable o_seq : int;
  mutable o_created : int64;
  mutable o_ckpt_addrs : addr list;
  mutable o_ckpt_seq : int;
  mutable o_dirty : int;
}

type t = {
  log : Log.t;
  cfg : config;
  objects : (oid, obj) Hashtbl.t;
  bcache : (addr, Bytes.t option) Lru.t;
  mutable ocache : (oid, unit) Lru.t;
  mutable pending : rentry list;  (* reverse chronological *)
  jrefs : (addr, int ref) Hashtbl.t;
  jback : (addr, rentry list ref) Hashtbl.t;  (* journal block -> resident entries *)
  mutable cpending : (obj * Bytes.t * int) list;  (* small images awaiting a pack flush *)
  cpack_refs : (addr, int ref) Hashtbl.t;  (* pack block -> live member count *)
  cpack_members : (addr, oid list ref) Hashtbl.t;
  mutable last_jaddr : addr;
  mutable oid_counter : int64;
  mutable oid_allocator : (unit -> oid) option;
  s : stats;
}

let log t = t.log
let clock t = Log.clock t.log
let config t = t.cfg
let stats t = t.s
let now t = Simclock.now (clock t)
let bs t = Log.block_size t.log
let nblocks_of t size = (size + bs t - 1) / bs t

(* ------------------------------------------------------------------ *)
(* Table helpers                                                       *)

let table_get obj i = if i < Array.length obj.o_table then obj.o_table.(i) else Log.none

let table_set obj i a =
  let n = Array.length obj.o_table in
  if i >= n then begin
    let grown = Array.make (max (i + 1) (max 8 (2 * n))) Log.none in
    Array.blit obj.o_table 0 grown 0 n;
    obj.o_table <- grown
  end;
  obj.o_table.(i) <- a

(* ------------------------------------------------------------------ *)
(* Block cache                                                         *)

let zeros t = Bytes.make (bs t) '\000'

let cache_block t a content =
  Lru.insert t.bcache a (if t.cfg.keep_data then content else None) ~cost:(bs t)

let get_block t a =
  match Lru.find t.bcache a with
  | Some (Some b) -> b
  | Some None -> zeros t
  | None ->
    let run = Log.read_run t.log a t.cfg.readahead_blocks in
    List.iter (fun (ra, rb) -> cache_block t ra (Some rb)) run;
    (match run with
     | (a0, b0) :: _ when a0 = a -> b0
     | _ -> Log.read t.log a)

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)

let jref_get t jaddr re =
  (match Hashtbl.find_opt t.jrefs jaddr with
   | Some r -> incr r
   | None -> Hashtbl.replace t.jrefs jaddr (ref 1));
  match Hashtbl.find_opt t.jback jaddr with
  | Some l -> l := re :: !l
  | None -> Hashtbl.replace t.jback jaddr (ref [ re ])

let jref_put t jaddr re =
  (match Hashtbl.find_opt t.jback jaddr with
   | Some l -> l := List.filter (fun x -> x != re) !l
   | None -> ());
  match Hashtbl.find_opt t.jrefs jaddr with
  | Some r ->
    decr r;
    if !r <= 0 then begin
      Hashtbl.remove t.jrefs jaddr;
      Hashtbl.remove t.jback jaddr;
      Log.kill t.log jaddr
    end
  | None -> ()

let flush_journal t =
  match t.pending with
  | [] -> ()
  | pending ->
    let chronological = List.rev pending in
    t.pending <- [];
    let block_size = bs t in
    let emit group_rev =
      match group_rev with
      | [] -> ()
      | _ ->
        let group = List.rev group_rev in
        let jes = List.map (fun re -> Entry.to_jentry re.e) group in
        let data = Jblock.encode ~block_size ~prev:t.last_jaddr jes in
        let jaddr = Log.append t.log Tag.Journal ~data () in
        List.iter
          (fun re ->
            re.jaddr <- jaddr;
            jref_get t jaddr re)
          group;
        t.last_jaddr <- jaddr;
        t.s.journal_blocks_written <- t.s.journal_blocks_written + 1
    in
    let group = ref [] in
    let group_size = ref 0 in
    let add re =
      let je = Entry.to_jentry re.e in
      let sz = Jblock.entry_size je in
      if not (Jblock.fits ~block_size ~current:!group_size je) then begin
        emit !group;
        group := [];
        group_size := 0
      end;
      group := re :: !group;
      group_size := !group_size + sz
    in
    List.iter add chronological;
    emit !group

let push_entry t obj op =
  obj.o_seq <- obj.o_seq + 1;
  let e = { Entry.oid = obj.o_oid; seq = obj.o_seq; time = now t; op } in
  let re = { e; jaddr = Log.none } in
  obj.o_entries <- re :: obj.o_entries;
  t.pending <- re :: t.pending;
  obj.o_dirty <- obj.o_dirty + 1;
  t.s.journal_entries <- t.s.journal_entries + 1;
  t.s.journal_bytes <- t.s.journal_bytes + Entry.size e

let kill_block_raw t a =
  if a <> Log.none then begin
    Log.kill t.log a;
    Lru.remove t.bcache a;
    t.s.blocks_expired <- t.s.blocks_expired + 1
  end

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)

let encode_checkpoint t obj =
  let w = Bcodec.writer ~capacity:(64 + (8 * Array.length obj.o_table)) () in
  Bcodec.w_i64 w obj.o_oid;
  Bcodec.w_int w obj.o_seq;
  Bcodec.w_i64 w obj.o_created;
  Bcodec.w_u8 w (if obj.o_exists then 1 else 0);
  Bcodec.w_int w obj.o_size;
  Bcodec.w_bytes w obj.o_attr;
  Bcodec.w_bytes w obj.o_acl;
  let n = nblocks_of t obj.o_size in
  Bcodec.w_int w n;
  for i = 0 to n - 1 do
    Bcodec.w_int w (table_get obj i + 1)
  done;
  Bcodec.contents w

type ckpt_image = {
  ci_oid : oid;
  ci_seq : int;
  ci_created : int64;
  ci_exists : bool;
  ci_size : int;
  ci_attr : Bytes.t;
  ci_acl : Bytes.t;
  ci_table : addr array;
}

let decode_checkpoint payload =
  let r = Bcodec.reader payload in
  let ci_oid = Bcodec.r_i64 r in
  let ci_seq = Bcodec.r_int r in
  let ci_created = Bcodec.r_i64 r in
  let ci_exists = Bcodec.r_u8 r = 1 in
  let ci_size = Bcodec.r_int r in
  let ci_attr = Bcodec.r_bytes r in
  let ci_acl = Bcodec.r_bytes r in
  let n = Bcodec.r_int r in
  let ci_table = Array.init n (fun _ -> Bcodec.r_int r - 1) in
  { ci_oid; ci_seq; ci_created; ci_exists; ci_size; ci_attr; ci_acl; ci_table }

(* Checkpoint images are stored self-identifying so crash recovery can
   find them by scanning, without any journal pointer:

   - small images (the common case: ordinary files) are packed several
     to a "ckpack" block, like classic inodes sharing an inode block;
     the pack is reference-counted and dies when every member image has
     been superseded;
   - large images (files with big block tables) get a dedicated chain
     of framed chunks. *)

let ck_magic = 0x4B43 (* "CK": dedicated image chunk *)
let pack_magic = 0x504B (* "KP": packed images *)

let pack_threshold t = bs t / 4

(* Dedicated chunk: magic, oid, seq, idx, nchunks, payload; CRC at the
   block tail. *)
let encode_ckchunk t ~oid ~seq ~idx ~nchunks payload =
  let block_size = bs t in
  let w = Bcodec.writer ~capacity:block_size () in
  Bcodec.w_u16 w ck_magic;
  Bcodec.w_i64 w oid;
  Bcodec.w_int w seq;
  Bcodec.w_int w idx;
  Bcodec.w_int w nchunks;
  Bcodec.w_bytes w payload;
  let body = Bcodec.contents w in
  if Bytes.length body + 4 > block_size then invalid_arg "ckchunk too big";
  let out = Bytes.make block_size '\000' in
  Bytes.blit body 0 out 0 (Bytes.length body);
  let crc = S4_util.Crc32.sub out ~pos:0 ~len:(block_size - 4) in
  Bcodec.set_u32 out (block_size - 4) (Int32.to_int crc land 0xFFFFFFFF);
  out

let decode_ckchunk b =
  let n = Bytes.length b in
  if n < 20 then None
  else if Bcodec.get_u16 b 0 <> ck_magic then None
  else begin
    let stored = Bcodec.get_u32 b (n - 4) in
    let crc = Int32.to_int (S4_util.Crc32.sub b ~pos:0 ~len:(n - 4)) land 0xFFFFFFFF in
    if stored <> crc then None
    else begin
      try
        let r = Bcodec.reader ~pos:2 b in
        let oid = Bcodec.r_i64 r in
        let seq = Bcodec.r_int r in
        let idx = Bcodec.r_int r in
        let nchunks = Bcodec.r_int r in
        let payload = Bcodec.r_bytes r in
        Some (oid, seq, idx, nchunks, payload)
      with Bcodec.Decode_error _ -> None
    end
  end

(* Pack block: magic, count, then (oid, seq, image) triples; CRC. *)
let encode_cpack t triples =
  let block_size = bs t in
  let w = Bcodec.writer ~capacity:block_size () in
  Bcodec.w_u16 w pack_magic;
  Bcodec.w_int w (List.length triples);
  List.iter
    (fun (oid, seq, image) ->
      Bcodec.w_i64 w oid;
      Bcodec.w_int w seq;
      Bcodec.w_bytes w image)
    triples;
  let body = Bcodec.contents w in
  if Bytes.length body + 4 > block_size then invalid_arg "cpack too big";
  let out = Bytes.make block_size '\000' in
  Bytes.blit body 0 out 0 (Bytes.length body);
  let crc = S4_util.Crc32.sub out ~pos:0 ~len:(block_size - 4) in
  Bcodec.set_u32 out (block_size - 4) (Int32.to_int crc land 0xFFFFFFFF);
  out

let decode_cpack b =
  let n = Bytes.length b in
  if n < 10 then None
  else if Bcodec.get_u16 b 0 <> pack_magic then None
  else begin
    let stored = Bcodec.get_u32 b (n - 4) in
    let crc = Int32.to_int (S4_util.Crc32.sub b ~pos:0 ~len:(n - 4)) land 0xFFFFFFFF in
    if stored <> crc then None
    else begin
      try
        let r = Bcodec.reader ~pos:2 b in
        let count = Bcodec.r_int r in
        Some
          (List.init count (fun _ ->
               let oid = Bcodec.r_i64 r in
               let seq = Bcodec.r_int r in
               let image = Bcodec.r_bytes r in
               (oid, seq, image)))
      with Bcodec.Decode_error _ -> None
    end
  end

let is_packed t a = Hashtbl.mem t.cpack_refs a

(* Release the object's current on-disk checkpoint (pack member or
   dedicated chunks). *)
let release_ckpt t obj =
  (match obj.o_ckpt_addrs with
   | [ a ] when is_packed t a ->
     (match Hashtbl.find_opt t.cpack_members a with
      | Some l -> l := List.filter (fun o -> o <> obj.o_oid) !l
      | None -> ());
     (match Hashtbl.find_opt t.cpack_refs a with
      | Some r ->
        decr r;
        if !r <= 0 then begin
          Hashtbl.remove t.cpack_refs a;
          Hashtbl.remove t.cpack_members a;
          kill_block_raw t a
        end
      | None -> ())
   | addrs -> List.iter (kill_block_raw t) addrs);
  obj.o_ckpt_addrs <- []

(* Flush pending small images into pack blocks. *)
let flush_cpack t =
  match t.cpending with
  | [] -> ()
  | pend ->
    t.cpending <- [];
    let block_size = bs t in
    let budget = block_size - 16 in
    let entry_size image = 8 + 4 + Bytes.length image + 4 in
    let emit group =
      match group with
      | [] -> ()
      | _ ->
        let triples = List.map (fun (obj, image, seq) -> (obj.o_oid, seq, image)) group in
        let data = encode_cpack t triples in
        let a = Log.append t.log Tag.Ckpack ~data () in
        Hashtbl.replace t.cpack_refs a (ref (List.length group));
        Hashtbl.replace t.cpack_members a (ref (List.map (fun (obj, _, _) -> obj.o_oid) group));
        List.iter
          (fun (obj, _, _) ->
            release_ckpt t obj;
            obj.o_ckpt_addrs <- [ a ])
          group;
        t.s.checkpoint_blocks_written <- t.s.checkpoint_blocks_written + 1
    in
    let group = ref [] in
    let used = ref 0 in
    List.iter
      (fun ((_, image, _) as item) ->
        let sz = entry_size image in
        if !used + sz > budget && !group <> [] then begin
          emit (List.rev !group);
          group := [];
          used := 0
        end;
        group := item :: !group;
        used := !used + sz)
      (List.rev pend);
    emit (List.rev !group)

let checkpoint_object_internal t obj =
  let image = encode_checkpoint t obj in
  let seq_at_image = obj.o_seq in
  obj.o_ckpt_seq <- seq_at_image;
  obj.o_dirty <- 0;
  if Bytes.length image <= pack_threshold t then begin
    (* Replace any not-yet-flushed image of the same object. *)
    t.cpending <-
      (obj, image, seq_at_image) :: List.filter (fun (o, _, _) -> o != obj) t.cpending;
    if List.length t.cpending * (pack_threshold t / 2) > bs t * 4 then flush_cpack t
  end
  else begin
    release_ckpt t obj;
    let payload_budget = bs t - 64 in
    let total = Bytes.length image in
    let nchunks = (total + payload_budget - 1) / payload_budget in
    let addrs =
      List.init nchunks (fun idx ->
          let off = idx * payload_budget in
          let len = min payload_budget (total - off) in
          let chunk =
            encode_ckchunk t ~oid:obj.o_oid ~seq:seq_at_image ~idx ~nchunks
              (Bytes.sub image off len)
          in
          Log.append t.log (Tag.Checkpoint { oid = obj.o_oid }) ~data:chunk ())
    in
    obj.o_ckpt_addrs <- addrs;
    t.s.checkpoint_blocks_written <- t.s.checkpoint_blocks_written + nchunks
  end

let maybe_checkpoint t obj =
  if obj.o_dirty >= t.cfg.checkpoint_interval then checkpoint_object_internal t obj

(* ------------------------------------------------------------------ *)
(* Object cache                                                        *)

let object_cost obj = 256 + (8 * Array.length obj.o_table)

let touch_object t obj =
  match Lru.find t.ocache obj.o_oid with
  | Some () -> ()
  | None ->
    (* Metadata fault: read the checkpoint image and the journal blocks
       written since (bounded; they are usually cached). *)
    List.iter (fun a -> ignore (get_block t a)) obj.o_ckpt_addrs;
    let distinct = Hashtbl.create 8 in
    let budget = ref 16 in
    List.iter
      (fun re ->
        if !budget > 0 && re.jaddr <> Log.none && not (Hashtbl.mem distinct re.jaddr) then begin
          Hashtbl.replace distinct re.jaddr ();
          decr budget;
          ignore (get_block t re.jaddr)
        end)
      obj.o_entries;
    Lru.insert t.ocache obj.o_oid () ~cost:(object_cost obj)

let find_obj t oid =
  match Hashtbl.find_opt t.objects oid with
  | Some obj -> obj
  | None -> raise (No_such_object oid)

let get_obj t oid =
  let obj = find_obj t oid in
  touch_object t obj;
  obj

let get_live_obj t oid =
  let obj = get_obj t oid in
  if not obj.o_exists then raise (Is_deleted oid);
  obj

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create ?(config = default_config) log =
  let t =
    {
      log;
      cfg = config;
      objects = Hashtbl.create 1024;
      bcache = Lru.create ~budget:config.block_cache_bytes ();
      ocache = Lru.create ~budget:config.object_cache_bytes ();
      pending = [];
      jrefs = Hashtbl.create 1024;
      jback = Hashtbl.create 1024;
      cpending = [];
      cpack_refs = Hashtbl.create 256;
      cpack_members = Hashtbl.create 256;
      last_jaddr = Log.none;
      oid_counter = 1L;
      oid_allocator = None;
      s = fresh_stats ();
    }
  in
  (* Wire the eviction callback now that [t] exists: dirty metadata is
     checkpointed to the log before leaving the object cache. *)
  t.ocache <-
    Lru.create ~budget:config.object_cache_bytes
      ~on_evict:(fun oid () ->
        match Hashtbl.find_opt t.objects oid with
        | Some obj when obj.o_dirty > 0 && obj.o_exists -> checkpoint_object_internal t obj
        | Some _ | None -> ())
      ();
  t

(* ------------------------------------------------------------------ *)
(* Mutations                                                           *)

let set_oid_allocator t f = t.oid_allocator <- f
let oid_allocator t = t.oid_allocator
let next_oid t = t.oid_counter

(* Span wrapper for the store's public entry points; block-cache hit
   and miss deltas over the op are charged to the span. Guarded on
   [Trace.on] so the untraced path allocates nothing. *)
let traced t kind ?(oid = -1L) ?(bytes = 0) f =
  if not (Trace.on ()) then f ()
  else begin
    let h0 = Lru.hits t.bcache and m0 = Lru.misses t.bcache in
    let tok = Trace.enter Trace.Store ~kind ~now:(now t) in
    Trace.set_oid tok oid;
    Trace.set_bytes tok bytes;
    let fin () =
      Trace.add_cache tok ~hits:(Lru.hits t.bcache - h0) ~misses:(Lru.misses t.bcache - m0)
    in
    match f () with
    | v ->
      fin ();
      Trace.finish tok ~now:(now t);
      v
    | exception e ->
      fin ();
      Trace.abort tok ~now:(now t);
      raise e
  end

let create_object_inner t =
  let oid =
    match t.oid_allocator with
    | None ->
      let o = t.oid_counter in
      t.oid_counter <- Int64.add o 1L;
      o
    | Some alloc ->
      (* Externally-governed oid space (shard router): the allocator
         hands out globally-unique oids; keep the local counter ahead
         so dropping the allocator can never reuse one. *)
      let o = alloc () in
      if Hashtbl.mem t.objects o then
        invalid_arg (Printf.sprintf "create_object: oid %Ld already present" o);
      if Int64.compare o t.oid_counter >= 0 then t.oid_counter <- Int64.add o 1L;
      o
  in
  let obj =
    {
      o_oid = oid;
      o_exists = true;
      o_size = 0;
      o_attr = Bytes.empty;
      o_acl = Bytes.empty;
      o_table = Array.make 4 Log.none;
      o_entries = [];
      o_seq = 0;
      o_created = now t;
      o_ckpt_addrs = [];
      o_ckpt_seq = 0;
      o_dirty = 0;
    }
  in
  Hashtbl.replace t.objects oid obj;
  push_entry t obj Entry.Create;
  Lru.insert t.ocache oid () ~cost:(object_cost obj);
  t.s.ops <- t.s.ops + 1;
  oid

let create_object t = traced t "create" (fun () -> create_object_inner t)

let delete_object t oid =
  traced t "delete" ~oid (fun () ->
      let obj = get_live_obj t oid in
      push_entry t obj (Entry.Delete { old_size = obj.o_size });
      obj.o_exists <- false;
      t.s.ops <- t.s.ops + 1;
      maybe_checkpoint t obj)

(* Split huge writes so each journal entry stays well under a block. *)
let max_blocks_per_entry = 200

let write_chunk t obj ~off ~len data_slice =
  let block_size = bs t in
  let first = off / block_size in
  let last = (off + len - 1) / block_size in
  let old_size = obj.o_size in
  let new_size = max old_size (off + len) in
  let blocks = ref [] in
  (* If the log fills mid-write, undo the partial block allocation so
     the object stays consistent (the caller sees No_space). *)
  let rollback () =
    List.iter
      (fun (fb, fresh, old) ->
        table_set obj fb old;
        kill_block_raw t fresh)
      !blocks
  in
  try
    for fb = last downto first do
      let old = table_get obj fb in
      let block_start = fb * block_size in
      let covers_fully = off <= block_start && off + len >= block_start + block_size in
      let content =
        if not t.cfg.keep_data then None
        else begin
          let base =
            if old <> Log.none && not covers_fully then Bytes.copy (get_block t old)
            else zeros t
          in
          let from = max off block_start in
          let until = min (off + len) (block_start + block_size) in
          (match data_slice with
           | Some d -> Bytes.blit d (from - off) base (from - block_start) (until - from)
           | None -> ());
          Some base
        end
      in
      (* Even without retained contents, a partial overwrite of an
         existing block costs a read-modify-write. *)
      if old <> Log.none && not covers_fully && not t.cfg.keep_data then ignore (get_block t old);
      let fresh = Log.append t.log (Tag.Data { oid = obj.o_oid; fblock = fb }) ?data:content () in
      cache_block t fresh content;
      table_set obj fb fresh;
      blocks := (fb, fresh, old) :: !blocks;
      t.s.data_blocks_written <- t.s.data_blocks_written + 1
    done;
    obj.o_size <- new_size;
    push_entry t obj (Entry.Write { off; len; old_size; new_size; blocks = !blocks });
    t.s.bytes_written <- t.s.bytes_written + len
  with Log.Log_full ->
    rollback ();
    raise Log.Log_full

let write_outer t oid ~off ?data ~len () =
  if off < 0 || len < 0 then invalid_arg "Obj_store.write";
  (match data with
   | Some d when Bytes.length d <> len -> invalid_arg "Obj_store.write: data length"
   | Some _ | None -> ());
  let obj = get_live_obj t oid in
  t.s.ops <- t.s.ops + 1;
  if len > 0 then begin
    let block_size = bs t in
    let chunk_bytes = max_blocks_per_entry * block_size in
    let rec go off' remaining doff =
      if remaining > 0 then begin
        (* Align chunk ends to block boundaries to bound the entry. *)
        let this = min remaining (chunk_bytes - (off' mod block_size)) in
        let slice = Option.map (fun d -> Bytes.sub d doff this) data in
        write_chunk t obj ~off:off' ~len:this slice;
        go (off' + this) (remaining - this) (doff + this)
      end
    in
    go off len 0;
    maybe_checkpoint t obj
  end

let write t oid ~off ?data ~len () =
  traced t "write" ~oid ~bytes:len (fun () -> write_outer t oid ~off ?data ~len ())

let append t oid ?data ~len () =
  traced t "append" ~oid ~bytes:len (fun () ->
      let obj = get_live_obj t oid in
      write_outer t oid ~off:obj.o_size ?data ~len ())

let truncate_inner t oid ~size =
  if size < 0 then invalid_arg "Obj_store.truncate";
  let obj = get_live_obj t oid in
  t.s.ops <- t.s.ops + 1;
  let old_size = obj.o_size in
  let keep = nblocks_of t size in
  (* Shrinking into the middle of a block: the new version's last block
     must read back zeros past the new size, so write a zero-tailed
     copy first (the old block stays in the history pool). *)
  (if size < old_size && size mod bs t <> 0 && table_get obj (keep - 1) <> Log.none then begin
     let zero_until = min old_size (keep * bs t) in
     if zero_until > size then begin
       let pad = zero_until - size in
       write_chunk t obj ~off:size ~len:pad
         (if t.cfg.keep_data then Some (Bytes.make pad '\000') else None)
     end
   end);
  let had = nblocks_of t old_size in
  let freed = ref [] in
  for fb = had - 1 downto keep do
    let a = table_get obj fb in
    if a <> Log.none then begin
      freed := (fb, a) :: !freed;
      table_set obj fb Log.none
    end
  done;
  obj.o_size <- size;
  push_entry t obj (Entry.Truncate { old_size; new_size = size; freed = !freed });
  maybe_checkpoint t obj

let truncate t oid ~size = traced t "truncate" ~oid (fun () -> truncate_inner t oid ~size)

let set_attr t oid attr =
  traced t "setattr" ~oid ~bytes:(Bytes.length attr) (fun () ->
      let obj = get_live_obj t oid in
      t.s.ops <- t.s.ops + 1;
      push_entry t obj (Entry.Set_attr { old_attr = obj.o_attr; new_attr = Bytes.copy attr });
      obj.o_attr <- Bytes.copy attr;
      maybe_checkpoint t obj)

let set_acl_raw t oid acl =
  let obj = get_live_obj t oid in
  t.s.ops <- t.s.ops + 1;
  push_entry t obj (Entry.Set_acl { old_acl = obj.o_acl; new_acl = Bytes.copy acl });
  obj.o_acl <- Bytes.copy acl;
  maybe_checkpoint t obj

let sync t =
  traced t "sync" (fun () ->
      flush_cpack t;
      flush_journal t;
      Log.sync t.log)

(* ------------------------------------------------------------------ *)
(* Time-based views                                                    *)

type view = {
  v_exists : bool;
  v_size : int;
  v_attr : Bytes.t;
  v_acl : Bytes.t;
  v_overrides : (int, addr) Hashtbl.t;
  v_obj : obj;
}

(* Roll the current state backward through every entry newer than
   [at]. Also charges reads of the traversed journal blocks, modelling
   on-disk history traversal. *)
let view_at t obj ~at =
  let v_overrides = Hashtbl.create 8 in
  let exists = ref obj.o_exists in
  let size = ref obj.o_size in
  let attr = ref obj.o_attr in
  let acl = ref obj.o_acl in
  let touched = Hashtbl.create 4 in
  let undo re =
    if re.jaddr <> Log.none && not (Hashtbl.mem touched re.jaddr) then begin
      Hashtbl.replace touched re.jaddr ();
      ignore (get_block t re.jaddr)
    end;
    match re.e.Entry.op with
    | Entry.Create -> exists := false
    | Entry.Write { old_size; blocks; _ } ->
      size := old_size;
      List.iter (fun (fb, _, old) -> Hashtbl.replace v_overrides fb old) blocks
    | Entry.Truncate { old_size; freed; _ } ->
      size := old_size;
      List.iter (fun (fb, a) -> Hashtbl.replace v_overrides fb a) freed
    | Entry.Set_attr { old_attr; _ } -> attr := old_attr
    | Entry.Set_acl { old_acl; _ } -> acl := old_acl
    | Entry.Delete { old_size } ->
      exists := true;
      size := old_size
    | Entry.Checkpoint _ -> ()
    | Entry.Relocate _ ->
      (* Relocations are transparent to views: in-memory references
         were rewritten when the move happened. *)
      ()
  in
  let rec walk = function
    | re :: rest when re.e.Entry.time > at ->
      undo re;
      walk rest
    | _ -> ()
  in
  walk obj.o_entries;
  if not !exists then None
  else Some { v_exists = !exists; v_size = !size; v_attr = !attr; v_acl = !acl; v_overrides; v_obj = obj }

let view t ?at oid =
  let obj = get_obj t oid in
  match at with
  | None ->
    if obj.o_exists then
      Some
        {
          v_exists = true;
          v_size = obj.o_size;
          v_attr = obj.o_attr;
          v_acl = obj.o_acl;
          v_overrides = Hashtbl.create 1;
          v_obj = obj;
        }
    else None
  | Some at -> view_at t obj ~at

let view_exn t ?at oid =
  match view t ?at oid with Some v -> v | None -> raise (No_such_object oid)

let view_block v fb =
  match Hashtbl.find_opt v.v_overrides fb with
  | Some a -> a
  | None -> table_get v.v_obj fb

let exists t ?at oid =
  match Hashtbl.find_opt t.objects oid with
  | None -> false
  | Some obj ->
    touch_object t obj;
    (match at with
     | None -> obj.o_exists
     | Some at -> Option.is_some (view_at t obj ~at))

let size t ?at oid = (view_exn t ?at oid).v_size
let seq t oid = (find_obj t oid).o_seq
let created_time t oid = (find_obj t oid).o_created
let get_attr t ?at oid = Bytes.copy (view_exn t ?at oid).v_attr
let get_acl_raw t ?at oid = Bytes.copy (view_exn t ?at oid).v_acl
let current_acl_raw t oid = Bytes.copy (find_obj t oid).o_acl

let read_inner t ?at oid ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Obj_store.read";
  let v = view_exn t ?at oid in
  t.s.ops <- t.s.ops + 1;
  if off >= v.v_size || len = 0 then Bytes.empty
  else begin
    let block_size = bs t in
    let len = min len (v.v_size - off) in
    let out = Bytes.make len '\000' in
    let first = off / block_size in
    let last = (off + len - 1) / block_size in
    for fb = first to last do
      let a = view_block v fb in
      if a <> Log.none then begin
        let b = get_block t a in
        let block_start = fb * block_size in
        let from = max off block_start in
        let until = min (off + len) (block_start + block_size) in
        if t.cfg.keep_data then Bytes.blit b (from - block_start) out (from - off) (until - from)
      end
    done;
    t.s.bytes_read <- t.s.bytes_read + len;
    out
  end

let read t ?at oid ~off ~len = traced t "read" ~oid ~bytes:len (fun () -> read_inner t ?at oid ~off ~len)

let list_objects t =
  Hashtbl.fold (fun oid obj acc -> if obj.o_exists then oid :: acc else acc) t.objects []
  |> List.sort compare

let list_all t = Hashtbl.fold (fun oid _ acc -> oid :: acc) t.objects [] |> List.sort compare

let journal t oid = List.map (fun re -> re.e) (find_obj t oid).o_entries

let versions t oid =
  List.filter
    (fun (e : Entry.t) -> match e.Entry.op with Entry.Checkpoint _ -> false | _ -> true)
    (journal t oid)

let oldest_time t oid =
  match (find_obj t oid).o_entries with
  | [] -> None
  | entries ->
    let rec last = function [ re ] -> Some re.e.Entry.time | _ :: rest -> last rest | [] -> None in
    last entries

let checkpoint_object t oid = checkpoint_object_internal t (find_obj t oid)

(* ------------------------------------------------------------------ *)
(* History migration (shard rebalancing)

   An export captures an object's *entire retained history* in
   device-independent form: the rolled-back base state (only needed
   when the Create entry has already expired) plus every retained
   journal entry as a semantic operation carrying its original seq and
   time and the full content of each block it wrote. Importing replays
   that history block-for-block on another store, so time-based reads
   ([?at]) answer identically on the new home at every timestamp — the
   detection-window guarantee survives the move. *)

type xop =
  | X_create
  | X_write of {
      off : int;
      len : int;
      old_size : int;
      new_size : int;
      blocks : (int * Bytes.t option) list;  (* fblock, post-write content *)
    }
  | X_truncate of { old_size : int; new_size : int }
  | X_set_attr of { old_attr : Bytes.t; new_attr : Bytes.t }
  | X_set_acl of { old_acl : Bytes.t; new_acl : Bytes.t }
  | X_delete of { old_size : int }

type xentry = { x_seq : int; x_time : int64; x_op : xop }

type xbase = {
  xb_seq : int;
  xb_size : int;
  xb_attr : Bytes.t;
  xb_acl : Bytes.t;
  xb_blocks : (int * Bytes.t option) list;
}

type export = {
  x_oid : oid;
  x_created : int64;
  x_base : xbase option;
  x_entries : xentry list;  (* oldest first *)
}

(* Reading a block for export charges real I/O on the source (the
   migrator streams the history off the disk). [None] content only in
   timing-only mode; a hole simply doesn't appear in the block list. *)
let export_block t a =
  let b = get_block t a in
  t.s.bytes_read <- t.s.bytes_read + bs t;
  if t.cfg.keep_data then Some (Bytes.copy b) else None

let export_history t oid =
  let obj = get_obj t oid in
  t.s.ops <- t.s.ops + 1;
  let retained = List.rev obj.o_entries in
  (* oldest first *)
  let xentries =
    List.filter_map
      (fun re ->
        let seq = re.e.Entry.seq and time = re.e.Entry.time in
        let mk x_op = Some { x_seq = seq; x_time = time; x_op } in
        match re.e.Entry.op with
        | Entry.Checkpoint _ | Entry.Relocate _ ->
          (* Device-local bookkeeping: meaningless on another store. *)
          None
        | Entry.Create -> mk X_create
        | Entry.Write { off; len; old_size; new_size; blocks } ->
          let blocks =
            List.filter_map
              (fun (fb, nw, _old) -> if nw = Log.none then None else Some (fb, export_block t nw))
              blocks
          in
          mk (X_write { off; len; old_size; new_size; blocks })
        | Entry.Truncate { old_size; new_size; _ } -> mk (X_truncate { old_size; new_size })
        | Entry.Set_attr { old_attr; new_attr } ->
          mk (X_set_attr { old_attr = Bytes.copy old_attr; new_attr = Bytes.copy new_attr })
        | Entry.Set_acl { old_acl; new_acl } ->
          mk (X_set_acl { old_acl = Bytes.copy old_acl; new_acl = Bytes.copy new_acl })
        | Entry.Delete { old_size } -> mk (X_delete { old_size }))
      retained
  in
  let has_create = List.exists (fun xe -> xe.x_op = X_create) xentries in
  let x_base =
    if has_create then None
    else begin
      (* The Create has aged out: the oldest version inside the window
         is not reconstructable from entries alone. Capture the state
         just before the oldest retained entry. *)
      let at =
        match retained with
        | re :: _ -> Int64.sub re.e.Entry.time 1L
        | [] -> now t
      in
      match view_at t obj ~at with
      | None -> invalid_arg (Printf.sprintf "export_history: oid %Ld has no base state" oid)
      | Some v ->
        let xb_seq =
          match retained with re :: _ -> re.e.Entry.seq - 1 | [] -> obj.o_seq
        in
        let nb = nblocks_of t v.v_size in
        let blocks = ref [] in
        for fb = nb - 1 downto 0 do
          let a = view_block v fb in
          if a <> Log.none then blocks := (fb, export_block t a) :: !blocks
        done;
        Some
          {
            xb_seq;
            xb_size = v.v_size;
            xb_attr = Bytes.copy v.v_attr;
            xb_acl = Bytes.copy v.v_acl;
            xb_blocks = !blocks;
          }
    end
  in
  { x_oid = oid; x_created = obj.o_created; x_base; x_entries = xentries }

(* Append one imported block and point the table at it. *)
let import_block t obj fb content =
  let data = match content with Some b when t.cfg.keep_data -> Some (Bytes.copy b) | _ -> None in
  let fresh = Log.append t.log (Tag.Data { oid = obj.o_oid; fblock = fb }) ?data () in
  cache_block t fresh data;
  table_set obj fb fresh;
  t.s.data_blocks_written <- t.s.data_blocks_written + 1;
  fresh

(* Push a replayed entry carrying its *historical* seq and time
   (bypasses [push_entry], which would stamp the present). *)
let import_entry t obj ~seq ~time op =
  let e = { Entry.oid = obj.o_oid; seq; time; op } in
  let re = { e; jaddr = Log.none } in
  obj.o_entries <- re :: obj.o_entries;
  t.pending <- re :: t.pending;
  obj.o_seq <- seq;
  obj.o_dirty <- obj.o_dirty + 1;
  t.s.journal_entries <- t.s.journal_entries + 1;
  t.s.journal_bytes <- t.s.journal_bytes + Entry.size e

let import_history t (x : export) =
  if Hashtbl.mem t.objects x.x_oid then
    invalid_arg (Printf.sprintf "import_history: oid %Ld already present" x.x_oid);
  t.s.ops <- t.s.ops + 1;
  let obj =
    {
      o_oid = x.x_oid;
      o_exists = false;
      o_size = 0;
      o_attr = Bytes.empty;
      o_acl = Bytes.empty;
      o_table = Array.make 4 Log.none;
      o_entries = [];
      o_seq = 0;
      o_created = x.x_created;
      o_ckpt_addrs = [];
      o_ckpt_seq = 0;
      o_dirty = 0;
    }
  in
  Hashtbl.replace t.objects x.x_oid obj;
  if Int64.compare x.x_oid t.oid_counter >= 0 then t.oid_counter <- Int64.add x.x_oid 1L;
  (match x.x_base with
   | None -> ()
   | Some b ->
     obj.o_exists <- true;
     obj.o_size <- b.xb_size;
     obj.o_attr <- Bytes.copy b.xb_attr;
     obj.o_acl <- Bytes.copy b.xb_acl;
     obj.o_seq <- b.xb_seq;
     List.iter (fun (fb, content) -> ignore (import_block t obj fb content)) b.xb_blocks;
     (* The base predates every entry we are about to replay, so no
        journal record covers it: persist a checkpoint image now or a
        crash would lose the oldest in-window versions. *)
     checkpoint_object_internal t obj);
  (match (x.x_base, x.x_entries) with
   | None, first :: _ -> obj.o_seq <- first.x_seq - 1
   | _ -> ());
  List.iter
    (fun xe ->
      match xe.x_op with
      | X_create ->
        obj.o_exists <- true;
        obj.o_created <- xe.x_time;
        import_entry t obj ~seq:xe.x_seq ~time:xe.x_time Entry.Create
      | X_write { off; len; old_size; new_size; blocks } ->
        (* Superseded pointers come from the *target's* table: by
           induction it holds exactly the pre-entry block layout, so
           [view_at] rollback works on the new home. *)
        let placed =
          List.map
            (fun (fb, content) ->
              let old = table_get obj fb in
              let fresh = import_block t obj fb content in
              (fb, fresh, old))
            blocks
        in
        obj.o_size <- new_size;
        t.s.bytes_written <- t.s.bytes_written + len;
        import_entry t obj ~seq:xe.x_seq ~time:xe.x_time
          (Entry.Write { off; len; old_size; new_size; blocks = placed })
      | X_truncate { old_size; new_size } ->
        let keep = nblocks_of t new_size in
        let had = nblocks_of t old_size in
        let freed = ref [] in
        for fb = had - 1 downto keep do
          let a = table_get obj fb in
          if a <> Log.none then begin
            freed := (fb, a) :: !freed;
            table_set obj fb Log.none
          end
        done;
        obj.o_size <- new_size;
        import_entry t obj ~seq:xe.x_seq ~time:xe.x_time
          (Entry.Truncate { old_size; new_size; freed = !freed })
      | X_set_attr { old_attr; new_attr } ->
        obj.o_attr <- Bytes.copy new_attr;
        import_entry t obj ~seq:xe.x_seq ~time:xe.x_time
          (Entry.Set_attr { old_attr = Bytes.copy old_attr; new_attr = Bytes.copy new_attr })
      | X_set_acl { old_acl; new_acl } ->
        obj.o_acl <- Bytes.copy new_acl;
        import_entry t obj ~seq:xe.x_seq ~time:xe.x_time
          (Entry.Set_acl { old_acl = Bytes.copy old_acl; new_acl = Bytes.copy new_acl })
      | X_delete { old_size } ->
        obj.o_exists <- false;
        import_entry t obj ~seq:xe.x_seq ~time:xe.x_time (Entry.Delete { old_size }))
    x.x_entries;
  Lru.insert t.ocache x.x_oid () ~cost:(object_cost obj);
  maybe_checkpoint t obj

let forget_object t oid =
  let obj = find_obj t oid in
  (* Unflushed entries must not reach the journal: a later flush would
     persist records for an object this store no longer owns, and
     recovery would resurrect a partial copy. *)
  t.pending <- List.filter (fun re -> not (Int64.equal re.e.Entry.oid oid)) t.pending;
  List.iter
    (fun re ->
      List.iter (kill_block_raw t) (Entry.superseded_blocks re.e.Entry.op);
      if re.jaddr <> Log.none then jref_put t re.jaddr re;
      t.s.entries_expired <- t.s.entries_expired + 1)
    obj.o_entries;
  Array.iter (kill_block_raw t) obj.o_table;
  release_ckpt t obj;
  t.cpending <- List.filter (fun (o, _, _) -> o != obj) t.cpending;
  Hashtbl.remove t.objects oid;
  Lru.remove t.ocache oid;
  t.s.objects_expired <- t.s.objects_expired + 1

(* ------------------------------------------------------------------ *)
(* Expiration (history-pool aging)                                     *)

let kill_block = kill_block_raw

(* An entry whose loss would make the on-disk image stale: everything
   except Checkpoint bookkeeping changes reconstructable state
   (Relocate moves block addresses, so it counts). *)
let state_changing (op : Entry.op) =
  match op with Entry.Checkpoint _ -> false | _ -> true

(* Split newest-first entries into (retained, dropped): an entry may be
   dropped only if it is flushed and strictly older than the cutoff,
   and only as part of the oldest suffix. *)
let split_entries entries ~cutoff =
  let rec go acc = function
    | re :: rest when re.e.Entry.time >= cutoff || re.jaddr = Log.none -> go (re :: acc) rest
    | older -> (List.rev acc, older)
  in
  go [] entries

let drop_entry t re =
  List.iter (kill_block t) (Entry.superseded_blocks re.e.Entry.op);
  if re.jaddr <> Log.none then jref_put t re.jaddr re;
  t.s.entries_expired <- t.s.entries_expired + 1

let expire_object t obj ~cutoff =
  let retained, dropped = split_entries obj.o_entries ~cutoff in
  if dropped <> [] then begin
    if (not obj.o_exists) && retained = [] then begin
      (* The object's delete has aged out: reclaim everything. *)
      List.iter (fun re -> drop_entry t re) dropped;
      Array.iter (kill_block t) obj.o_table;
      release_ckpt t obj;
      t.cpending <- List.filter (fun (o, _, _) -> o != obj) t.cpending;
      Hashtbl.remove t.objects obj.o_oid;
      Lru.remove t.ocache obj.o_oid;
      t.s.objects_expired <- t.s.objects_expired + 1
    end
    else begin
      (* Dropping a state change newer than the last image would leave
         the on-disk checkpoint stale: write a fresh one first. *)
      if
        List.exists
          (fun re -> re.e.Entry.seq > obj.o_ckpt_seq && state_changing re.e.Entry.op)
          dropped
      then checkpoint_object_internal t obj;
      obj.o_entries <- retained;
      List.iter (fun re -> drop_entry t re) dropped
    end
  end

let expire t ~cutoff =
  let objs = Hashtbl.fold (fun _ obj acc -> obj :: acc) t.objects [] in
  List.iter (fun obj -> expire_object t obj ~cutoff) objs

let expire_one t oid ~cutoff = expire_object t (find_obj t oid) ~cutoff

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)

let current_block_count t =
  Hashtbl.fold
    (fun _ obj acc ->
      if obj.o_exists then begin
        let n = nblocks_of t obj.o_size in
        let c = ref 0 in
        for i = 0 to n - 1 do
          if table_get obj i <> Log.none then incr c
        done;
        acc + !c
      end
      else acc)
    t.objects 0

let metadata_block_count t =
  let jblocks = Hashtbl.length t.jrefs in
  let packs = Hashtbl.length t.cpack_refs in
  let chunks =
    Hashtbl.fold
      (fun _ obj acc ->
        match obj.o_ckpt_addrs with
        | [ a ] when is_packed t a -> acc
        | addrs -> acc + List.length addrs)
      t.objects 0
  in
  jblocks + packs + chunks

let history_block_count t =
  Log.live_blocks t.log - current_block_count t - metadata_block_count t

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

let recover ?(config = default_config) log =
  let t =
    let base = create ~config log in
    base
  in
  let jbs = Log.journal_blocks log in
  (* Collect entries per object, ascending by seq. *)
  let per_obj : (oid, rentry list ref) Hashtbl.t = Hashtbl.create 256 in
  let tmax = ref Int64.min_int in
  let note jaddr je =
    let e = Entry.decode je in
    let re = { e; jaddr } in
    (match Hashtbl.find_opt per_obj e.Entry.oid with
     | Some l -> l := re :: !l
     | None -> Hashtbl.replace per_obj e.Entry.oid (ref [ re ]));
    if Int64.compare e.Entry.time !tmax > 0 then tmax := e.Entry.time;
    if Int64.compare e.Entry.oid t.oid_counter >= 0 then
      t.oid_counter <- Int64.add e.Entry.oid 1L
  in
  List.iter (fun (jaddr, _prev, jes) -> List.iter (note jaddr) jes) jbs;
  (match jbs with
   | [] -> ()
   | _ ->
     let rec last = function [ (a, _, _) ] -> a | _ :: rest -> last rest | [] -> Log.none in
     t.last_jaddr <- last jbs);
  (* Discover self-identifying checkpoint images (pack blocks and
     dedicated framed chunks), keeping the newest per object. *)
  let images :
      (oid, int * ckpt_image * [ `Pack of addr | `Chunks of addr list ]) Hashtbl.t =
    Hashtbl.create 256
  in
  let consider oid seq image src =
    try
      let img = decode_checkpoint image in
      match Hashtbl.find_opt images oid with
      | Some (s0, _, _) when s0 >= seq -> ()
      | _ -> Hashtbl.replace images oid (seq, img, src)
    with Bcodec.Decode_error _ | Invalid_argument _ -> ()
  in
  let chunk_parts : (oid * int, (int * addr * Bytes.t) list ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (a, tag) ->
      match tag with
      | Tag.Ckpack | Tag.Unknown | Tag.Checkpoint _ ->
        let b = Log.peek log a in
        (match decode_cpack b with
         | Some triples -> List.iter (fun (oid, seq, image) -> consider oid seq image (`Pack a)) triples
         | None ->
           (match decode_ckchunk b with
            | Some (oid, seq, idx, nchunks, payload) ->
              let key = (oid, seq) in
              let parts =
                match Hashtbl.find_opt chunk_parts key with
                | Some l -> l
                | None ->
                  let l = ref [] in
                  Hashtbl.replace chunk_parts key l;
                  l
              in
              if not (List.exists (fun (i, _, _) -> i = idx) !parts) then begin
                parts := (idx, a, payload) :: !parts;
                if List.length !parts = nchunks then begin
                  let sorted = List.sort compare !parts in
                  let image = Bytes.concat Bytes.empty (List.map (fun (_, _, p) -> p) sorted) in
                  let addrs = List.map (fun (_, a, _) -> a) sorted in
                  consider oid seq image (`Chunks addrs)
                end
              end
            | None -> ()))
      | Tag.Data _ | Tag.Journal | Tag.Objmap | Tag.Audit | Tag.Summary -> ())
    (Log.all_tagged log);
  (* Cold objects may have an image but no surviving journal entries. *)
  Hashtbl.iter
    (fun oid _ ->
      if not (Hashtbl.mem per_obj oid) then Hashtbl.replace per_obj oid (ref []);
      if Int64.compare oid t.oid_counter >= 0 then t.oid_counter <- Int64.add oid 1L)
    images;
  let cpack_note a oid =
    (match Hashtbl.find_opt t.cpack_refs a with
     | Some r -> incr r
     | None -> Hashtbl.replace t.cpack_refs a (ref 1));
    match Hashtbl.find_opt t.cpack_members a with
    | Some l -> l := oid :: !l
    | None -> Hashtbl.replace t.cpack_members a (ref [ oid ])
  in
  let rebuild oid entries_ref =
    let ascending =
      (* Sort by seq and deduplicate: a journal block relocated by the
         cleaner can leave a stale (dead but still decodable) copy of
         its entries on disk. *)
      let sorted = List.sort (fun a b -> compare a.e.Entry.seq b.e.Entry.seq) !entries_ref in
      let rec dedup = function
        | a :: b :: rest when a.e.Entry.seq = b.e.Entry.seq -> dedup (b :: rest)
        | a :: rest -> a :: dedup rest
        | [] -> []
      in
      dedup sorted
    in
    (* Relocations apply to every *earlier* entry: walk newest-first,
       accumulating the remap, and rewrite each entry's addresses. *)
    let remap_tbl : (addr, addr) Hashtbl.t = Hashtbl.create 8 in
    let resolve a =
      let rec chase a n =
        if n > 64 then a
        else match Hashtbl.find_opt remap_tbl a with Some b -> chase b (n + 1) | None -> a
      in
      chase a 0
    in
    List.iter
      (fun re ->
        re.e <- { re.e with Entry.op = Entry.remap resolve re.e.Entry.op };
        match re.e.Entry.op with
        | Entry.Relocate { moves } ->
          List.iter (fun (_, from_, to_) -> Hashtbl.replace remap_tbl from_ to_) moves
        | _ -> ())
      (List.rev ascending);
    let newest_ckpt = Hashtbl.find_opt images oid in
    let obj =
      match newest_ckpt with
      | Some (_seq, img, src) ->
        let addrs = match src with `Pack a -> [ a ] | `Chunks l -> l in
        {
          o_oid = oid;
          o_exists = img.ci_exists;
          o_size = img.ci_size;
          o_attr = img.ci_attr;
          o_acl = img.ci_acl;
          o_table =
            (let a = Array.make (max 4 (Array.length img.ci_table)) Log.none in
             Array.blit img.ci_table 0 a 0 (Array.length img.ci_table);
             a);
          o_entries = [];
          o_seq = img.ci_seq;
          o_created = img.ci_created;
          o_ckpt_addrs = addrs;
          o_ckpt_seq = img.ci_seq;
          o_dirty = 0;
        }
      | None ->
        {
          o_oid = oid;
          o_exists = false;
          o_size = 0;
          o_attr = Bytes.empty;
          o_acl = Bytes.empty;
          o_table = Array.make 4 Log.none;
          o_entries = [];
          o_seq = 0;
          o_created = 0L;
          o_ckpt_addrs = [];
          o_ckpt_seq = 0;
          o_dirty = 0;
        }
    in
    let apply re =
      if re.e.Entry.seq > obj.o_ckpt_seq then begin
        (match re.e.Entry.op with
         | Entry.Create ->
           obj.o_exists <- true;
           obj.o_created <- re.e.Entry.time
         | Entry.Write { new_size; blocks; _ } ->
           List.iter (fun (fb, nw, _) -> table_set obj fb nw) blocks;
           obj.o_size <- new_size
         | Entry.Truncate { new_size; freed; _ } ->
           List.iter (fun (fb, _) -> table_set obj fb Log.none) freed;
           obj.o_size <- new_size
         | Entry.Set_attr { new_attr; _ } -> obj.o_attr <- new_attr
         | Entry.Set_acl { new_acl; _ } -> obj.o_acl <- new_acl
         | Entry.Delete _ -> obj.o_exists <- false
         | Entry.Checkpoint _ -> ()
         | Entry.Relocate { moves } ->
           (* Fix table slots inherited from a pre-relocation
              checkpoint image (later Write entries already carry
              resolved addresses). *)
           List.iter
             (fun (fb, from_, to_) ->
               if fb >= 0 && table_get obj fb = from_ then table_set obj fb to_)
             moves);
        obj.o_seq <- max obj.o_seq re.e.Entry.seq
      end
    in
    List.iter apply ascending;
    obj.o_entries <- List.rev ascending;
    (* Re-mark liveness: journal blocks, checkpoint blocks, current
       table blocks and all superseded (history) blocks of retained
       entries. *)
    List.iter
      (fun re ->
        if re.jaddr <> Log.none then begin
          Log.mark_live log re.jaddr Tag.Journal;
          jref_get t re.jaddr re
        end)
      ascending;
    (match newest_ckpt with
     | Some (_, _, `Pack a) ->
       Log.mark_live log a Tag.Ckpack;
       cpack_note a oid
     | Some (_, _, `Chunks addrs) ->
       List.iter (fun a -> Log.mark_live log a (Tag.Checkpoint { oid })) addrs
     | None -> ());
    let n = nblocks_of t obj.o_size in
    for i = 0 to n - 1 do
      let a = table_get obj i in
      if a <> Log.none then Log.mark_live log a (Tag.Data { oid; fblock = i })
    done;
    List.iter
      (fun re ->
        match re.e.Entry.op with
        | Entry.Write { blocks; _ } ->
          List.iter
            (fun (fb, _, old) -> if old <> Log.none then Log.mark_live log old (Tag.Data { oid; fblock = fb }))
            blocks
        | Entry.Truncate { freed; _ } ->
          List.iter (fun (fb, a) -> Log.mark_live log a (Tag.Data { oid; fblock = fb })) freed
        | _ -> ())
      ascending;
    (* Historical "new" blocks that are no longer current are covered
       by the superseding entry's old pointer; nothing more to mark. *)
    Hashtbl.replace t.objects oid obj
  in
  Hashtbl.iter rebuild per_obj;
  (* A file-backed restart resumes the clock from the last barrier, but
     journal blocks flushed at segment close may carry newer entry
     times. Keep mutation times monotone across the restart. *)
  (let clock = Log.clock log in
   if Int64.compare !tmax (Simclock.now clock) >= 0 then
     Simclock.set clock (Int64.add !tmax 1L));
  t

(* ------------------------------------------------------------------ *)
(* Segment compaction (cleaner mechanism)                              *)

(* Rewrite every reference this object holds to [from_] so it points at
   [to_]: the block table, and the old/new pointers of every retained
   journal entry (including still-pending ones, so the on-disk journal
   is written with final addresses). *)
let rewrite_refs obj ~from_ ~to_ =
  for i = 0 to Array.length obj.o_table - 1 do
    if obj.o_table.(i) = from_ then obj.o_table.(i) <- to_
  done;
  let f a = if a = from_ then to_ else a in
  List.iter
    (fun re -> re.e <- { re.e with Entry.op = Entry.remap f re.e.Entry.op })
    obj.o_entries

let compact_segment t ~seg ?(on_audit_move = fun _ _ -> ()) () =
  let log = t.log in
  let infos = Log.segments log in
  if seg < 0 || seg >= Array.length infos then invalid_arg "compact_segment: bad segment";
  let info = infos.(seg) in
  if info.Log.seg_state <> Log.Closed then Error "segment not closed"
  else begin
    let victims = Log.seg_live_addrs log seg in
    match victims with
    | [] -> Ok 0
    | (first, _) :: _ ->
      (* One sequential read covers the whole victim span. *)
      let last = List.fold_left (fun acc (a, _) -> max acc a) first victims in
      ignore (Log.read_run log first (last - first + 1));
      let moved = ref 0 in
      let relocations : (oid, (int * addr * addr) list ref) Hashtbl.t = Hashtbl.create 8 in
      let note_move oid fb from_ to_ =
        match Hashtbl.find_opt relocations oid with
        | Some l -> l := (fb, from_, to_) :: !l
        | None -> Hashtbl.replace relocations oid (ref [ (fb, from_, to_) ])
      in
      let move_block ?(force_data = false) addr tag =
        (* Metadata streams (journal, checkpoints, audit) always carry
           real on-disk content, even in timing-only mode. *)
        let content =
          if t.cfg.keep_data || force_data then Some (Log.peek log addr) else None
        in
        let fresh = Log.append log tag ?data:content () in
        Log.kill log addr;
        Lru.remove t.bcache addr;
        cache_block t fresh content;
        incr moved;
        fresh
      in
      let handle (addr, tag) =
        if Log.is_live log addr then
          match tag with
          | Tag.Data { oid; fblock } ->
            (match Hashtbl.find_opt t.objects oid with
             | None ->
               (* Orphaned block (owner fully expired): just reclaim. *)
               kill_block t addr
             | Some obj ->
               let fresh = move_block addr tag in
               rewrite_refs obj ~from_:addr ~to_:fresh;
               note_move oid fblock addr fresh)
          | Tag.Journal ->
            let entries =
              match Hashtbl.find_opt t.jback addr with Some l -> !l | None -> []
            in
            if entries = [] then kill_block t addr
            else begin
              let fresh = move_block ~force_data:true addr Tag.Journal in
              (match Hashtbl.find_opt t.jrefs addr with
               | Some r ->
                 Hashtbl.remove t.jrefs addr;
                 Hashtbl.replace t.jrefs fresh r
               | None -> ());
              (match Hashtbl.find_opt t.jback addr with
               | Some l ->
                 Hashtbl.remove t.jback addr;
                 Hashtbl.replace t.jback fresh l
               | None -> ());
              List.iter (fun re -> re.jaddr <- fresh) entries;
              if t.last_jaddr = addr then t.last_jaddr <- fresh
            end
          | Tag.Checkpoint { oid } ->
            (match Hashtbl.find_opt t.objects oid with
             | None -> kill_block t addr
             | Some obj ->
               (* Rather than moving a checkpoint image, write a fresh
                  one (kills all the old image blocks, wherever they
                  are). *)
               checkpoint_object_internal t obj;
               incr moved)
          | Tag.Audit ->
            let fresh = move_block ~force_data:true addr Tag.Audit in
            on_audit_move addr fresh
          | Tag.Ckpack ->
            (match Hashtbl.find_opt t.cpack_members addr with
             | None -> kill_block t addr
             | Some members ->
               let fresh = move_block ~force_data:true addr Tag.Ckpack in
               (match Hashtbl.find_opt t.cpack_refs addr with
                | Some r ->
                  Hashtbl.remove t.cpack_refs addr;
                  Hashtbl.replace t.cpack_refs fresh r
                | None -> ());
               Hashtbl.remove t.cpack_members addr;
               Hashtbl.replace t.cpack_members fresh members;
               List.iter
                 (fun oid ->
                   match Hashtbl.find_opt t.objects oid with
                   | Some obj ->
                     obj.o_ckpt_addrs <-
                       List.map (fun a -> if a = addr then fresh else a) obj.o_ckpt_addrs
                   | None -> ())
                 !members)
          | Tag.Objmap | Tag.Summary | Tag.Unknown ->
            (* Not expected among live data slots; reclaim. *)
            kill_block t addr
      in
      List.iter handle victims;
      Hashtbl.iter
        (fun oid moves ->
          match Hashtbl.find_opt t.objects oid with
          | Some obj -> push_entry t obj (Entry.Relocate { moves = !moves })
          | None -> ())
        relocations;
      Ok !moved
  end

(* ------------------------------------------------------------------ *)
(* Invariant checking                                                  *)

let check ?(extra_live = []) t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let expected : (addr, Tag.t) Hashtbl.t = Hashtbl.create 1024 in
  let expect a tag =
    if a <> Log.none then
      if Hashtbl.mem expected a then err "block %d expected live twice" a
      else Hashtbl.replace expected a tag
  in
  Hashtbl.iter
    (fun oid obj ->
      let n = nblocks_of t obj.o_size in
      for i = 0 to n - 1 do
        let a = table_get obj i in
        if a <> Log.none then expect a (Tag.Data { oid; fblock = i })
      done;
      (match obj.o_ckpt_addrs with
       | [ a ] when is_packed t a -> ()  (* accounted via cpack_refs *)
       | addrs -> List.iter (fun a -> expect a (Tag.Checkpoint { oid })) addrs);
      List.iter
        (fun re ->
          List.iter
            (fun a -> expect a (Tag.Data { oid; fblock = -1 }))
            (Entry.superseded_blocks re.e.Entry.op))
        obj.o_entries)
    t.objects;
  Hashtbl.iter (fun a _ -> expect a Tag.Journal) t.jrefs;
  Hashtbl.iter (fun a _ -> expect a Tag.Ckpack) t.cpack_refs;
  (* Pack reference counts must match the objects that point at them. *)
  (let computed : (addr, int ref) Hashtbl.t = Hashtbl.create 16 in
   Hashtbl.iter
     (fun _ obj ->
       match obj.o_ckpt_addrs with
       | [ a ] when is_packed t a -> (
         match Hashtbl.find_opt computed a with
         | Some r -> incr r
         | None -> Hashtbl.replace computed a (ref 1))
       | _ -> ())
     t.objects;
   Hashtbl.iter
     (fun a r ->
       let c = match Hashtbl.find_opt computed a with Some c -> !c | None -> 0 in
       if c <> !r then err "pack block %d refcount %d but %d objects point at it" a !r c)
     t.cpack_refs);
  List.iter (fun a -> expect a Tag.Audit) extra_live;
  Hashtbl.iter
    (fun a tag ->
      if not (Log.is_live t.log a) then err "block %d (%a) expected live but dead" a Tag.pp tag
      else begin
        match (tag, Log.tag_of t.log a) with
        | Tag.Data { oid; fblock }, Some (Tag.Data d) ->
          if d.oid <> oid then err "block %d belongs to %Ld, expected %Ld" a d.oid oid
          else if fblock >= 0 && d.fblock <> fblock then
            err "block %d fblock %d, expected %d" a d.fblock fblock
        | Tag.Journal, Some Tag.Journal -> ()
        | Tag.Ckpack, Some Tag.Ckpack -> ()
        | Tag.Checkpoint { oid }, Some (Tag.Checkpoint c) ->
          if c.oid <> oid then err "checkpoint block %d oid mismatch" a
        | Tag.Audit, Some Tag.Audit -> ()
        | _, other ->
          err "block %d tag mismatch: expected %a, found %s" a Tag.pp tag
            (match other with Some tg -> Format.asprintf "%a" Tag.pp tg | None -> "none")
      end)
    expected;
  let live = Log.live_blocks t.log in
  let exp = Hashtbl.length expected in
  if live <> exp then err "live block count %d <> expected %d" live exp;
  List.rev !errors

let drop_caches t =
  Lru.clear t.bcache;
  Lru.clear t.ocache

let cache_stats t = (Lru.hits t.bcache, Lru.misses t.bcache)

let pp_stats ppf t =
  let s = t.s in
  Format.fprintf ppf
    "store: %d ops, %d entries (%d B journal, %d jblocks), %d ckpt blocks, %d data blocks, %dB written, %dB read, expired %d entries/%d blocks/%d objects"
    s.ops s.journal_entries s.journal_bytes s.journal_blocks_written
    s.checkpoint_blocks_written s.data_blocks_written s.bytes_written s.bytes_read
    s.entries_expired s.blocks_expired s.objects_expired
