module N = S4_nfs.Nfs_types
module Server = S4_nfs.Server

type config = { files : int; directories : int; file_bytes : int; cold_read : bool }

let default = { files = 10_000; directories = 10; file_bytes = 1_024; cold_read = true }

type result = {
  system : string;
  create_seconds : float;
  read_seconds : float;
  delete_seconds : float;
}

let run ?(config = default) sys =
  let handle req = Server.handle_exn sys.Systems.server req in
  let root = sys.Systems.server.Server.root in
  let dirs =
    Array.init config.directories (fun i ->
        match handle (N.Mkdir { dir = root; name = Printf.sprintf "d%02d" i; mode = 0o755 }) with
        | N.R_fh (fh, _) -> fh
        | _ -> failwith "microbench: mkdir")
  in
  let data = Bytes.make config.file_bytes 'm' in
  let files = Array.make config.files (0L, 0L, "") in
  let create_seconds, () =
    Systems.elapsed_seconds sys (fun () ->
        for i = 0 to config.files - 1 do
          let dir = dirs.(i mod config.directories) in
          let name = Printf.sprintf "f%05d" i in
          match handle (N.Create { dir; name; mode = 0o644 }) with
          | N.R_fh (fh, _) ->
            ignore (handle (N.Write { fh; off = 0; data }));
            files.(i) <- (fh, dir, name)
          | _ -> failwith "microbench: create"
        done)
  in
  if config.cold_read then Systems.drop_all_caches sys;
  let read_seconds, () =
    Systems.elapsed_seconds sys (fun () ->
        Array.iter (fun (fh, _, _) -> ignore (handle (N.Read { fh; off = 0; len = config.file_bytes }))) files)
  in
  let delete_seconds, () =
    Systems.elapsed_seconds sys (fun () ->
        Array.iter (fun (_, dir, name) -> ignore (handle (N.Remove { dir; name }))) files)
  in
  { system = sys.Systems.name; create_seconds; read_seconds; delete_seconds }

let pp_result ppf r =
  Format.fprintf ppf "%-12s create %7.2f s   read %7.2f s   delete %7.2f s" r.system
    r.create_seconds r.read_seconds r.delete_seconds
