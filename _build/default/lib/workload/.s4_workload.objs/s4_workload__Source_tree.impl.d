lib/workload/source_tree.ml: Array Buffer Bytes Char Filename List Option Printf S4_util String
