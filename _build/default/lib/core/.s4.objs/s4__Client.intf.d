lib/core/client.mli: Drive Rpc S4_disk
