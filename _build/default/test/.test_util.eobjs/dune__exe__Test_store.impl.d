test/test_store.ml: Alcotest Array Bytes Char Gen Int64 List Printf QCheck QCheck_alcotest S4_disk S4_seglog S4_store S4_util String
