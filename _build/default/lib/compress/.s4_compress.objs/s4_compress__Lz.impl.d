lib/compress/lz.ml: Array Buffer Bytes Char S4_util
