module Rng = S4_util.Rng
module Source_tree = S4_workload.Source_tree
module Delta = S4_compress.Delta
module Lz = S4_compress.Lz

type day = { day_index : int; tree_bytes : int; delta_bytes : int; delta_lz_bytes : int }

type result = {
  days : day list;
  total_raw : int;
  total_delta : int;
  total_delta_lz : int;
  diff_efficiency : float;
  comp_efficiency : float;
}

(* Delta a snapshot against its predecessor file by file (files absent
   yesterday are stored whole, as xdelta would). *)
let day_delta ~prev ~cur =
  List.fold_left
    (fun (d, dlz) (f : Source_tree.file) ->
      match Source_tree.find prev f.Source_tree.path with
      | Some old ->
        let delta = Delta.encode ~source:old ~target:f.Source_tree.content in
        (d + Bytes.length delta, dlz + Bytes.length (Lz.compress delta))
      | None ->
        let fresh = f.Source_tree.content in
        (d + Bytes.length fresh, dlz + Bytes.length (Lz.compress fresh)))
    (0, 0) cur

let run ?(seed = 20_000_623) ?(files = 60) ?(days = 7) ?(churn = 0.12) () =
  if days < 2 then invalid_arg "Diffstudy.run: need at least 2 days";
  let rng = Rng.create ~seed in
  let first = Source_tree.generate rng ~files in
  let rec evolve_days acc prev i =
    if i >= days then List.rev acc
    else begin
      let cur = Source_tree.evolve rng ~churn prev in
      let d, dlz = day_delta ~prev ~cur in
      let day =
        { day_index = i; tree_bytes = Source_tree.total_bytes cur; delta_bytes = d; delta_lz_bytes = dlz }
      in
      evolve_days ((day, cur) :: acc) cur (i + 1)
    end
  in
  let first_day =
    {
      day_index = 0;
      tree_bytes = Source_tree.total_bytes first;
      delta_bytes = Source_tree.total_bytes first;
      delta_lz_bytes = Bytes.length (Lz.compress (Bytes.concat Bytes.empty (List.map (fun f -> f.Source_tree.content) first)));
    }
  in
  let rest = evolve_days [] first 1 in
  let days_list = first_day :: List.map fst rest in
  let total_raw = List.fold_left (fun acc d -> acc + d.tree_bytes) 0 days_list in
  let total_delta = List.fold_left (fun acc d -> acc + d.delta_bytes) 0 days_list in
  let total_delta_lz = List.fold_left (fun acc d -> acc + d.delta_lz_bytes) 0 days_list in
  {
    days = days_list;
    total_raw;
    total_delta;
    total_delta_lz;
    diff_efficiency = float_of_int total_raw /. float_of_int total_delta;
    comp_efficiency = float_of_int total_raw /. float_of_int total_delta_lz;
  }

let pp_result ppf r =
  Format.fprintf ppf "raw %d B | delta %d B (%.1fx) | delta+lz %d B (%.1fx)" r.total_raw
    r.total_delta r.diff_efficiency r.total_delta_lz r.comp_efficiency
