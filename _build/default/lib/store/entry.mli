(** Semantic journal entries (the store-defined payload of
    {!S4_seglog.Jblock.entry}).

    Every mutation of an object is described by exactly one entry
    carrying both the *new* and the *old* state it supersedes — enough
    to roll an object's metadata backward for time-based reads and to
    reclaim superseded blocks once an entry ages out of the detection
    window. This is the paper's journal-based metadata: a write through
    an indirect block costs one compact entry instead of a new inode
    and indirect-block chain. *)

type addr = int

type op =
  | Create
  | Write of {
      off : int;
      len : int;
      old_size : int;
      new_size : int;
      blocks : (int * addr * addr) list;
          (** (file block index, new block, superseded block or
              {!S4_seglog.Log.none}) *)
    }
  | Truncate of {
      old_size : int;
      new_size : int;
      freed : (int * addr) list;  (** (file block index, superseded block) *)
    }
  | Set_attr of { old_attr : Bytes.t; new_attr : Bytes.t }
  | Set_acl of { old_acl : Bytes.t; new_acl : Bytes.t }
  | Delete of { old_size : int }
  | Checkpoint of { addrs : addr list }
      (** location of a full metadata checkpoint image *)
  | Relocate of { moves : (int * addr * addr) list }
      (** cleaner moved blocks: (file block index or -1, from, to).
          Replay must remap [from]->[to] in all earlier entries and in
          the block table; in-memory state is rewritten eagerly, so
          this entry exists for on-disk recovery only. *)

type t = {
  oid : int64;
  seq : int;  (** per-object version number, 1-based *)
  time : int64;  (** simulated ns *)
  op : op;
}

val kind : op -> int
val encode_payload : op -> Bytes.t
val decode : S4_seglog.Jblock.entry -> t
(** @raise S4_util.Bcodec.Decode_error on unknown kind or bad payload. *)

val to_jentry : t -> S4_seglog.Jblock.entry
val size : t -> int
(** Encoded size in a journal block, bytes. *)

val superseded_blocks : op -> addr list
(** Blocks this entry pushed into the history pool (the "old" block
    pointers). *)

val new_blocks : op -> addr list

val remap : (addr -> addr) -> op -> op
(** Rewrite every block address through the given map (used when the
    cleaner relocates blocks). *)

val pp : Format.formatter -> t -> unit
