(* Consistent-hash ring with virtual nodes.

   Each member shard contributes [vnodes] points on a 64-bit hash
   circle; an oid is owned by the member whose point follows the oid's
   hash (clockwise, with wraparound). Adding a member moves only the
   keys that fall into the new member's arcs — roughly 1/N of the
   space — and every moved key lands on the new member, which is what
   makes online rebalancing tractable. *)

type t = {
  vnodes : int;
  mutable points : (int64 * int) array;  (* (point hash, shard id), sorted *)
  mutable members : int list;  (* ascending *)
}

(* SplitMix64 finaliser: a cheap, well-mixed 64-bit permutation.
   Deterministic across runs — placement must be a pure function of
   (oid, membership). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let key_hash oid = mix64 (Int64.logxor oid 0x9e3779b97f4a7c15L)

let point_hash ~shard ~replica =
  mix64 (Int64.logxor (Int64.of_int shard) (Int64.shift_left (Int64.of_int (replica + 1)) 20))

let create ?(vnodes = 64) () =
  if vnodes <= 0 then invalid_arg "Ring.create: vnodes must be positive";
  { vnodes; points = [||]; members = [] }

let members t = t.members
let vnodes t = t.vnodes
let is_empty t = t.members = []

let cmp (h1, s1) (h2, s2) =
  let c = Int64.unsigned_compare h1 h2 in
  if c <> 0 then c else compare s1 s2

let rebuild t =
  let pts =
    List.concat_map
      (fun shard -> List.init t.vnodes (fun replica -> (point_hash ~shard ~replica, shard)))
      t.members
  in
  let arr = Array.of_list pts in
  Array.sort cmp arr;
  t.points <- arr

let add t shard =
  if List.mem shard t.members then invalid_arg "Ring.add: member already present";
  t.members <- List.sort compare (shard :: t.members);
  rebuild t

let remove t shard =
  if not (List.mem shard t.members) then invalid_arg "Ring.remove: no such member";
  t.members <- List.filter (fun s -> s <> shard) t.members;
  rebuild t

(* First point with hash >= h, wrapping to points.(0). *)
let successor t h =
  let n = Array.length t.points in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then bsearch (mid + 1) hi
      else bsearch lo mid
    end
  in
  let i = bsearch 0 n in
  if i = n then 0 else i

let owner t oid =
  if t.points = [||] then invalid_arg "Ring.owner: empty ring";
  snd t.points.(successor t (key_hash oid))

let owner_opt t oid = if t.points = [||] then None else Some (owner t oid)
