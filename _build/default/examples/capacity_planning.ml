(* Capacity planning for a self-securing deployment: how long a
   detection window can a given history-pool budget sustain for your
   workload? Reproduces the Figure 7 arithmetic with both the paper's
   differencing factors and factors measured with this library's own
   delta/LZ coders, and validates the write-rate model with a scaled
   replay against a live simulated drive.

   Run with: dune exec examples/capacity_planning.exe *)

module Daily = S4_workload.Daily
module Systems = S4_workload.Systems
module Capacity = S4_analysis.Capacity
module Diffstudy = S4_analysis.Diffstudy
module Report = S4_analysis.Report

let () =
  Report.heading "How big a detection window can you afford?";
  Printf.printf
    "history pool budget: %d GB (20%% of a 50 GB disk, as in the paper)\n\n"
    (Capacity.default_pool_bytes / (1024 * 1024 * 1024));

  Printf.printf "with the paper's Xdelta-derived factors (3x diff, 5x diff+comp):\n";
  List.iter (fun p -> Format.printf "  %a@." Capacity.pp_projection p) (Capacity.project_all ());

  (* Measure our own differencing technology on a week of synthetic
     source-tree snapshots. *)
  Printf.printf "\nmeasuring this library's delta+LZ coders on 7 daily snapshots...\n";
  let d = Diffstudy.run ~files:40 () in
  Printf.printf "  differencing alone : %.1fx\n" d.Diffstudy.diff_efficiency;
  Printf.printf "  with compression   : %.1fx\n\n" d.Diffstudy.comp_efficiency;
  Printf.printf "projections with the measured factors:\n";
  List.iter
    (fun p -> Format.printf "  %a@." Capacity.pp_projection p)
    (Capacity.project_all ~diff_factor:d.Diffstudy.diff_efficiency
       ~comp_factor:(Float.max d.Diffstudy.comp_efficiency d.Diffstudy.diff_efficiency) ());

  (* The projection assumes history grows exactly at the write rate;
     replaying a scaled workload on a real drive includes journal and
     checkpoint overheads too. *)
  Printf.printf "\nvalidating against a live drive (0.2%% scaled replay, 3 days):\n";
  List.iter
    (fun study ->
      let sys = Systems.s4_remote () in
      let m = Daily.replay ~scale:0.002 ~days:3 study sys in
      Format.printf "  %a@." Daily.pp_measurement m;
      let effective = m.Daily.scaled_up_bytes_per_day in
      let days = float_of_int Capacity.default_pool_bytes /. effective in
      Printf.printf "    -> measured-rate window: %.0f days (projection said %.0f)\n" days
        (float_of_int Capacity.default_pool_bytes /. float_of_int study.Daily.daily_write_bytes))
    Daily.all;

  Printf.printf "\nrule of thumb: pool_GB * 1024 / daily_MB = window days; differencing\n";
  Printf.printf "and compression of aged versions multiply it by ~3-5x.\n"
