module Bcodec = S4_util.Bcodec
module Jblock = S4_seglog.Jblock
module Log = S4_seglog.Log

type addr = int

type op =
  | Create
  | Write of {
      off : int;
      len : int;
      old_size : int;
      new_size : int;
      blocks : (int * addr * addr) list;
    }
  | Truncate of { old_size : int; new_size : int; freed : (int * addr) list }
  | Set_attr of { old_attr : Bytes.t; new_attr : Bytes.t }
  | Set_acl of { old_acl : Bytes.t; new_acl : Bytes.t }
  | Delete of { old_size : int }
  | Checkpoint of { addrs : addr list }
  | Relocate of { moves : (int * addr * addr) list }

type t = { oid : int64; seq : int; time : int64; op : op }

let kind = function
  | Create -> 0
  | Write _ -> 1
  | Truncate _ -> 2
  | Set_attr _ -> 3
  | Set_acl _ -> 4
  | Delete _ -> 5
  | Checkpoint _ -> 6
  | Relocate _ -> 7

(* Addresses may be Log.none (-1); shift by one for varint encoding. *)
let w_addr w a = Bcodec.w_int w (a + 1)
let r_addr r = Bcodec.r_int r - 1

let encode_payload op =
  let w = Bcodec.writer () in
  (match op with
   | Create -> ()
   | Write { off; len; old_size; new_size; blocks } ->
     Bcodec.w_int w off;
     Bcodec.w_int w len;
     Bcodec.w_int w old_size;
     Bcodec.w_int w new_size;
     Bcodec.w_int w (List.length blocks);
     List.iter
       (fun (fblock, nw, old) ->
         Bcodec.w_int w fblock;
         w_addr w nw;
         w_addr w old)
       blocks
   | Truncate { old_size; new_size; freed } ->
     Bcodec.w_int w old_size;
     Bcodec.w_int w new_size;
     Bcodec.w_int w (List.length freed);
     List.iter
       (fun (fblock, a) ->
         Bcodec.w_int w fblock;
         w_addr w a)
       freed
   | Set_attr { old_attr; new_attr } ->
     Bcodec.w_bytes w old_attr;
     Bcodec.w_bytes w new_attr
   | Set_acl { old_acl; new_acl } ->
     Bcodec.w_bytes w old_acl;
     Bcodec.w_bytes w new_acl
   | Delete { old_size } -> Bcodec.w_int w old_size
   | Checkpoint { addrs } ->
     Bcodec.w_int w (List.length addrs);
     List.iter (w_addr w) addrs
   | Relocate { moves } ->
     Bcodec.w_int w (List.length moves);
     List.iter
       (fun (fblock, from_, to_) ->
         Bcodec.w_int w (fblock + 1);
         w_addr w from_;
         w_addr w to_)
       moves);
  Bcodec.contents w

let decode_payload kind payload =
  let r = Bcodec.reader payload in
  match kind with
  | 0 -> Create
  | 1 ->
    let off = Bcodec.r_int r in
    let len = Bcodec.r_int r in
    let old_size = Bcodec.r_int r in
    let new_size = Bcodec.r_int r in
    let n = Bcodec.r_int r in
    let blocks =
      List.init n (fun _ ->
          let fblock = Bcodec.r_int r in
          let nw = r_addr r in
          let old = r_addr r in
          (fblock, nw, old))
    in
    Write { off; len; old_size; new_size; blocks }
  | 2 ->
    let old_size = Bcodec.r_int r in
    let new_size = Bcodec.r_int r in
    let n = Bcodec.r_int r in
    let freed =
      List.init n (fun _ ->
          let fblock = Bcodec.r_int r in
          let a = r_addr r in
          (fblock, a))
    in
    Truncate { old_size; new_size; freed }
  | 3 ->
    let old_attr = Bcodec.r_bytes r in
    let new_attr = Bcodec.r_bytes r in
    Set_attr { old_attr; new_attr }
  | 4 ->
    let old_acl = Bcodec.r_bytes r in
    let new_acl = Bcodec.r_bytes r in
    Set_acl { old_acl; new_acl }
  | 5 ->
    let old_size = Bcodec.r_int r in
    Delete { old_size }
  | 6 ->
    let n = Bcodec.r_int r in
    Checkpoint { addrs = List.init n (fun _ -> r_addr r) }
  | 7 ->
    let n = Bcodec.r_int r in
    let moves =
      List.init n (fun _ ->
          let fblock = Bcodec.r_int r - 1 in
          let from_ = r_addr r in
          let to_ = r_addr r in
          (fblock, from_, to_))
    in
    Relocate { moves }
  | k -> raise (Bcodec.Decode_error (Printf.sprintf "Entry: unknown kind %d" k))

let decode (je : Jblock.entry) =
  { oid = je.Jblock.oid; seq = je.seq; time = je.time; op = decode_payload je.kind je.payload }

let to_jentry t =
  {
    Jblock.oid = t.oid;
    seq = t.seq;
    time = t.time;
    kind = kind t.op;
    payload = encode_payload t.op;
  }

let size t = Jblock.entry_size (to_jentry t)

let superseded_blocks = function
  | Create | Set_attr _ | Set_acl _ | Delete _ | Checkpoint _ | Relocate _ -> []
  | Write { blocks; _ } ->
    List.filter_map (fun (_, _, old) -> if old = Log.none then None else Some old) blocks
  | Truncate { freed; _ } -> List.map snd freed

let new_blocks = function
  | Create | Set_attr _ | Set_acl _ | Delete _ | Truncate _ | Relocate _ -> []
  | Write { blocks; _ } -> List.map (fun (_, nw, _) -> nw) blocks
  | Checkpoint { addrs } -> addrs

let pp_op ppf = function
  | Create -> Format.fprintf ppf "create"
  | Write { off; len; blocks; _ } ->
    Format.fprintf ppf "write off=%d len=%d (%d blocks)" off len (List.length blocks)
  | Truncate { old_size; new_size; _ } ->
    Format.fprintf ppf "truncate %d -> %d" old_size new_size
  | Set_attr _ -> Format.fprintf ppf "set_attr"
  | Set_acl _ -> Format.fprintf ppf "set_acl"
  | Delete _ -> Format.fprintf ppf "delete"
  | Checkpoint { addrs } -> Format.fprintf ppf "checkpoint (%d blocks)" (List.length addrs)
  | Relocate { moves } -> Format.fprintf ppf "relocate (%d moves)" (List.length moves)

let pp ppf t = Format.fprintf ppf "#%Ld.%d @%Ld %a" t.oid t.seq t.time pp_op t.op

let map_addr f a = if a = Log.none then a else f a

let remap f = function
  | Create as op -> op
  | Write { off; len; old_size; new_size; blocks } ->
    Write
      {
        off;
        len;
        old_size;
        new_size;
        blocks = List.map (fun (fb, nw, old) -> (fb, map_addr f nw, map_addr f old)) blocks;
      }
  | Truncate { old_size; new_size; freed } ->
    Truncate { old_size; new_size; freed = List.map (fun (fb, a) -> (fb, map_addr f a)) freed }
  | (Set_attr _ | Set_acl _ | Delete _) as op -> op
  | Checkpoint { addrs } -> Checkpoint { addrs = List.map (map_addr f) addrs }
  | Relocate _ as op -> op
