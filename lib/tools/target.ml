module Rpc = S4.Rpc
module Drive = S4.Drive
module Audit = S4.Audit
module Chain = S4_integrity.Chain
module Store = S4_store.Obj_store
module Router = S4_shard.Router
module Simclock = S4_util.Simclock

type t = Drive of Drive.t | Array of Router.t

let of_drive d = Drive d
let of_router r = Array r

let handle t cred req =
  match t with
  | Drive d -> Drive.handle d cred req
  | Array r -> Router.handle r cred req

let submit t cred ?sync reqs =
  match t with
  | Drive d -> Drive.submit d cred ?sync reqs
  | Array r -> Router.submit r cred ?sync reqs

let clock = function Drive d -> Drive.clock d | Array r -> Router.clock r
let ops_handled = function Drive d -> Drive.ops_handled d | Array r -> Router.ops_handled r
let fsck = function Drive d -> Drive.fsck d | Array r -> Router.fsck r
let barrier = function Drive d -> Drive.barrier d | Array r -> Router.barrier r

let members = function
  | Drive d -> [ (0, 0, d) ]
  | Array r -> Router.members r

let store_of t oid =
  match t with
  | Drive d -> Drive.store d
  | Array r -> Router.store_of r oid

let landmark_barrier = function
  | Drive d ->
    (match Drive.barrier d with
     | Some e -> Error (Format.asprintf "landmark barrier: %a" Rpc.pp_error e)
     | None -> Ok [ (0, 0, Audit.sealed_head (Drive.audit d)) ])
  | Array r -> Router.landmark_barrier r

(* Device-side audit access, merged across shards by time. For a
   mirrored shard the primary replica's trail is the reference copy —
   both replicas audit every request identically, so including the
   secondary would double-count. *)
let audit_records ?(since = 0L) ?(until = Int64.max_int) t =
  match t with
  | Drive d -> Audit.records (Drive.audit d) ~since ~until ()
  | Array r ->
    List.filter_map
      (fun (_, ri, d) ->
        if ri = 0 then Some (Audit.records (Drive.audit d) ~since ~until ()) else None)
      (Router.members r)
    |> List.concat
    |> List.stable_sort (fun (a : Audit.record) (b : Audit.record) ->
           compare a.Audit.at b.Audit.at)
