let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let widths rows =
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 rows in
  let w = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> if String.length cell > w.(i) then w.(i) <- String.length cell))
    rows;
  w

let print_row w cells =
  List.iteri (fun i cell -> Printf.printf "%-*s  " w.(i) cell) cells;
  print_newline ()

let table ~header rows =
  let all = header :: rows in
  let w = widths all in
  print_row w header;
  print_row w (List.map (fun n -> String.make n '-') (Array.to_list (Array.sub w 0 (List.length header))));
  List.iter (print_row w) rows

let bars ?(width = 50) items =
  let vmax = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 items in
  let lmax = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 items in
  List.iter
    (fun (label, v) ->
      let n = if vmax <= 0.0 then 0 else int_of_float (v /. vmax *. float_of_int width) in
      Printf.printf "%-*s  %s %.2f\n" lmax label (String.make n '#') v)
    items

let series ?(width = 40) ~x_label ~y_label points =
  Printf.printf "%-12s %-12s\n" x_label y_label;
  let vmax = List.fold_left (fun acc (_, y) -> Float.max acc y) 0.0 points in
  List.iter
    (fun (x, y) ->
      let n = if vmax <= 0.0 then 0 else int_of_float (y /. vmax *. float_of_int width) in
      Printf.printf "%-12.3g %-12.3g %s\n" x y (String.make n '#'))
    points

let kv pairs =
  let lmax = List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs in
  List.iter (fun (k, v) -> Printf.printf "%-*s : %s\n" lmax k v) pairs

let note s = Printf.printf "  (%s)\n" s
