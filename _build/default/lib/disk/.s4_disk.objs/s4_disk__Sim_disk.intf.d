lib/disk/sim_disk.mli: Bytes Format Geometry S4_util
