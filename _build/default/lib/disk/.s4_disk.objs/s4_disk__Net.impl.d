lib/disk/net.ml: Format Int64 S4_util
