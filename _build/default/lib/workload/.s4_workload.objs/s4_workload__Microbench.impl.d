lib/workload/microbench.ml: Array Bytes Format Printf S4_nfs Systems
