(* Buckets are powers of two over the positive floats: bucket i holds
   samples in [2^(i-64), 2^(i-63)). Index computed from frexp. *)

let buckets = 129

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

let create () =
  { counts = Array.make buckets 0; n = 0; sum = 0.0; minv = infinity; maxv = neg_infinity }

let bucket_of v =
  if v <= 0.0 then 0
  else
    let _, e = Float.frexp v in
    let i = e + 64 in
    if i < 0 then 0 else if i >= buckets then buckets - 1 else i

let upper_bound i = if i = 0 then 0.0 else Float.ldexp 1.0 (i - 64)

let add t v =
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v < t.minv then t.minv <- v;
  if v > t.maxv then t.maxv <- v

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
let max_value t = if t.n = 0 then 0.0 else t.maxv
let min_value t = if t.n = 0 then 0.0 else t.minv

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let target = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
    let target = if target < 1 then 1 else target in
    let acc = ref 0 in
    let result = ref (upper_bound (buckets - 1)) in
    (try
       for i = 0 to buckets - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= target then begin
           result := upper_bound i;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let merge a b =
  let t = create () in
  for i = 0 to buckets - 1 do
    t.counts.(i) <- a.counts.(i) + b.counts.(i)
  done;
  t.n <- a.n + b.n;
  t.sum <- a.sum +. b.sum;
  t.minv <- Float.min a.minv b.minv;
  t.maxv <- Float.max a.maxv b.maxv;
  t

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.3g p50=%.3g p99=%.3g max=%.3g" t.n (mean t)
    (percentile t 50.0) (percentile t 99.0) (max_value t)
