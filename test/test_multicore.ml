(* Multicore tests: domain-local simclock lanes, the per-shard worker
   pool, atomic metrics, domain-safe tracing, backend concurrency
   capabilities, and stress runs hammering a Domain_safe array backend
   from concurrent client domains. The bit-identity contracts
   (domains=1 ≡ serial, domains=N deterministic) live in
   test_equivalence's "domains" group; this file covers the
   concurrency machinery itself. *)

module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Drive = S4.Drive
module Rpc = S4.Rpc
module Backend = S4.Backend
module Acl = S4.Acl
module Audit = S4.Audit
module Store = S4_store.Obj_store
module Router = S4_shard.Router
module Shard_domain = S4_multi.Shard_domain
module Metrics = S4_obs.Metrics
module Trace = S4_obs.Trace
module Check = S4_obs.Check

let check = Alcotest.check
let alice = Rpc.user_cred ~user:1 ~client:1
let geom mb = Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(mb * 1024 * 1024)

let content_config =
  { Drive.default_config with store = { Store.default_config with keep_data = true } }

let mk_drive ?(mb = 64) clock =
  Drive.format ~config:content_config (Sim_disk.create ~geometry:(geom mb) clock)

let mk_array ?(mb = 64) ?(domains = 1) n =
  let clock = Simclock.create () in
  let members = List.init n (fun i -> (i, Router.Single (mk_drive ~mb clock))) in
  let router = Router.create members in
  Router.set_domains router domains;
  (clock, router)

let raises f = match f () with exception _ -> true | _ -> false

(* --- Simclock lanes ----------------------------------------------------- *)

let test_lane_basic () =
  let c = Simclock.create () in
  Simclock.advance c 100L;
  check Alcotest.bool "no lane initially" false (Simclock.in_lane c);
  Simclock.fork_lane c ~at:(Simclock.now c);
  check Alcotest.bool "lane active" true (Simclock.in_lane c);
  Simclock.advance c 40L;
  check Alcotest.int64 "lane view of now" 140L (Simclock.now c);
  Simclock.set c 150L;
  let elapsed = Simclock.join_lane c in
  check Alcotest.int64 "lane elapsed" 50L elapsed;
  check Alcotest.bool "lane cleared" false (Simclock.in_lane c);
  check Alcotest.int64 "shared clock unmoved by lane charges" 100L (Simclock.now c);
  (* The parent applies the joined elapsed explicitly. *)
  Simclock.advance c elapsed;
  check Alcotest.int64 "parent advances by joined elapsed" 150L (Simclock.now c)

let test_lane_errors () =
  let c = Simclock.create () in
  check Alcotest.bool "join without fork raises" true
    (raises (fun () -> ignore (Simclock.join_lane c)));
  Simclock.fork_lane c ~at:0L;
  check Alcotest.bool "double fork raises" true
    (raises (fun () -> Simclock.fork_lane c ~at:0L));
  ignore (Simclock.join_lane c)

let test_lane_keyed_per_clock () =
  let a = Simclock.create () and b = Simclock.create () in
  Simclock.advance b 7L;
  Simclock.fork_lane a ~at:0L;
  Simclock.advance a 10L;
  (* Clock [b] is not the lane owner: reads and charges go straight to
     its shared state even while a lane for [a] is active. *)
  check Alcotest.int64 "other clock reads shared state" 7L (Simclock.now b);
  Simclock.advance b 3L;
  check Alcotest.int64 "other clock advances shared state" 10L (Simclock.now b);
  check Alcotest.int64 "lane charge stayed on a's lane" 10L (Simclock.join_lane a);
  check Alcotest.int64 "a's shared clock untouched" 0L (Simclock.now a)

let test_lanes_isolate_worker_domains () =
  let c = Simclock.create () in
  Simclock.advance c 1000L;
  let start = Simclock.now c in
  let elapsed = Array.make 4 0L in
  let doms =
    Array.init 4 (fun i ->
        Domain.spawn (fun () ->
            Simclock.fork_lane c ~at:start;
            Simclock.advance c (Int64.of_int ((i + 1) * 10));
            elapsed.(i) <- Simclock.join_lane c))
  in
  Array.iter Domain.join doms;
  check Alcotest.int64 "shared clock untouched by four lanes" 1000L (Simclock.now c);
  Array.iteri
    (fun i e -> check Alcotest.int64 "per-domain elapsed" (Int64.of_int ((i + 1) * 10)) e)
    elapsed

(* --- Shard_domain worker pool ------------------------------------------- *)

let test_pool_runs_jobs () =
  let pool = Shard_domain.create 3 in
  check Alcotest.int "pool size" 3 (Shard_domain.size pool);
  let out = Array.make 8 (-1) in
  let jobs = List.init 8 (fun slot -> (slot, fun () -> out.(slot) <- slot * slot)) in
  Shard_domain.run pool jobs;
  Array.iteri (fun i v -> check Alcotest.int "job executed" (i * i) v) out;
  (* Reuse across calls, including the single-job inline path. *)
  Shard_domain.run pool [ (5, fun () -> out.(5) <- 99) ];
  check Alcotest.int "single job ran inline" 99 out.(5);
  Shard_domain.run pool [];
  Shard_domain.close pool

let test_pool_slot_order () =
  (* Jobs sharing a worker (same slot mod size) run in submission
     order, so a same-shard sequence keeps its program order. *)
  let pool = Shard_domain.create 2 in
  let trail = ref [] in
  let m = Mutex.create () in
  let push v = Mutex.lock m; trail := v :: !trail; Mutex.unlock m in
  (* Slots 0, 2, 4 all map to worker 0 and must run as 0;2;4. *)
  Shard_domain.run pool [ (0, fun () -> push 0); (2, fun () -> push 2); (4, fun () -> push 4) ];
  check (Alcotest.list Alcotest.int) "same-worker jobs keep submission order" [ 0; 2; 4 ]
    (List.rev !trail);
  Shard_domain.close pool

let test_pool_exception_propagates () =
  let pool = Shard_domain.create 2 in
  let ran = ref 0 in
  let boom = Failure "boom" in
  check Alcotest.bool "job exception re-raised" true
    (raises (fun () ->
         Shard_domain.run pool
           [ (0, fun () -> incr ran); (1, fun () -> raise boom); (2, fun () -> incr ran) ]));
  check Alcotest.int "other jobs still completed" 2 !ran;
  (* The pool survives a failing batch. *)
  Shard_domain.run pool [ (0, fun () -> incr ran); (1, fun () -> incr ran) ];
  check Alcotest.int "pool usable after failure" 4 !ran;
  Shard_domain.close pool

let test_pool_close () =
  let pool = Shard_domain.create 2 in
  let hit = ref false in
  Shard_domain.run pool [ (0, fun () -> hit := true); (1, fun () -> ()) ];
  Shard_domain.close pool;
  check Alcotest.bool "work completed before close" true !hit;
  check Alcotest.bool "run after close raises" true
    (raises (fun () -> Shard_domain.run pool [ (0, fun () -> ()); (1, fun () -> ()) ]))

(* --- Atomic metrics ------------------------------------------------------ *)

let test_metrics_hammer () =
  Metrics.reset ();
  let domains = 4 and per = 50_000 in
  let doms =
    Array.init domains (fun i ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Metrics.incr "mc.shared";
              Metrics.incr ~by:2 (Printf.sprintf "mc.domain%d" i)
            done))
  in
  Array.iter Domain.join doms;
  check Alcotest.int "shared counter exact under contention" (domains * per)
    (Metrics.counter "mc.shared");
  for i = 0 to domains - 1 do
    check Alcotest.int "per-domain counter exact" (2 * per)
      (Metrics.counter (Printf.sprintf "mc.domain%d" i))
  done;
  Metrics.reset ()

(* --- Domain-safe tracing ------------------------------------------------- *)

let test_trace_hammer () =
  Trace.clear ();
  Trace.enable ();
  let domains = 4 and per = 1_000 in
  Fun.protect ~finally:Trace.disable (fun () ->
      let doms =
        Array.init domains (fun i ->
            Domain.spawn (fun () ->
                for j = 1 to per do
                  (* Nested spans exercise the per-domain open-span stack:
                     the child must resolve its parent within this domain. *)
                  let outer = Trace.enter Trace.Nfs ~kind:"mc.outer" ~now:0L in
                  Trace.set_oid outer (Int64.of_int ((i * per) + j));
                  let inner = Trace.enter Trace.Store ~kind:"mc.inner" ~now:1L in
                  Trace.finish inner ~now:2L;
                  Trace.finish outer ~now:3L
                done))
      in
      Array.iter Domain.join doms);
  let spans = Trace.spans () in
  check Alcotest.int "every span recorded exactly once" (2 * domains * per)
    (Array.length spans);
  let spans = Array.to_list spans in
  let outers = List.filter (fun (s : Trace.span) -> s.Trace.kind = "mc.outer") spans in
  check Alcotest.int "outer spans" (domains * per) (List.length outers);
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.kind = "mc.inner" then
        check Alcotest.bool "inner has a parent from its own domain" true
          (s.Trace.parent >= 0))
    spans;
  Trace.clear ()

(* --- Backend concurrency capabilities ------------------------------------ *)

let test_backend_capabilities () =
  let clock = Simclock.create () in
  let drive = mk_drive clock in
  check Alcotest.bool "bare drive backend is Serial" true
    ((Drive.backend drive).Backend.concurrency = Backend.Serial);
  let _, router = mk_array 2 in
  let b = Router.backend router in
  check Alcotest.bool "router backend is Domain_safe" true
    (b.Backend.concurrency = Backend.Domain_safe);
  b.Backend.close ()

(* --- Concurrent clients against a Domain_safe array ---------------------- *)

let submit b reqs = b.Backend.submit alice ~sync:true (Array.of_list reqs)

let oid_of = function
  | Rpc.R_oid oid -> oid
  | r -> Alcotest.failf "expected oid, got %a" Rpc.pp_resp r

(* Each client domain owns a disjoint set of objects: writes race only
   at the router's mutex, never on an object, so final contents are
   deterministic per object even though arrival order is not. *)
let run_client b id =
  let oids =
    submit b (List.init 4 (fun _ -> Rpc.Create { acl = Acl.default ~owner:1 }))
    |> Array.to_list |> List.map oid_of
  in
  let fill = Char.chr (Char.code 'a' + id) in
  for round = 0 to 2 do
    let ws =
      List.map
        (fun oid ->
          Rpc.Write { oid; off = round * 1024; len = 1024; data = Some (Bytes.make 1024 fill) })
        oids
    in
    let rs = submit b ws in
    Array.iter
      (function
        | Rpc.R_error _ as r -> Alcotest.failf "client %d write: %a" id Rpc.pp_resp r
        | _ -> ())
      rs
  done;
  ignore (submit b (List.map (fun oid -> Rpc.Read { oid; off = 0; len = 3072; at = None }) oids));
  (id, oids)

let verify_client b (id, oids) =
  let fill = Char.chr (Char.code 'a' + id) in
  List.iter
    (fun oid ->
      match Backend.handle b alice (Rpc.Read { oid; off = 0; len = 3072; at = None }) with
      | Rpc.R_data data ->
        check Alcotest.int "object size" 3072 (Bytes.length data);
        check Alcotest.bool "contents are the owner's fill byte" true
          (Bytes.for_all (fun c -> c = fill) data)
      | r -> Alcotest.failf "verify client %d oid %Ld: %a" id oid Rpc.pp_resp r)
    oids

let audit_total router =
  List.fold_left
    (fun n d -> n + List.length (Audit.records (Drive.audit d) ()))
    0
    (Router.all_drives router)

let test_concurrent_clients_stress () =
  let _, router = mk_array ~domains:4 4 in
  let b = Router.backend router in
  let clients = 4 in
  let doms = Array.init clients (fun id -> Domain.spawn (fun () -> run_client b id)) in
  let owned = Array.map Domain.join doms in
  Array.iter (verify_client b) owned;
  (* Every drive-level request leaves an audit record: 4 clients x
     (4 creates + 12 writes + 4 reads) object ops, plus the final
     verify reads, are all accounted for. *)
  check Alcotest.bool "audit trail accounted the storm" true
    (audit_total router >= clients * (4 + 12 + 4));
  b.Backend.close ()

(* Tracing forces the serial dispatch path inside the router, but the
   spans themselves are opened and closed from whichever client domain
   holds the router mutex — so a traced concurrent run exercises the
   domain-safe tracer end to end, and the whole-run checker (including
   the positional audit-to-span bijection) must still pass. *)
let test_concurrent_clients_traced_checker () =
  Trace.clear ();
  Trace.enable ();
  let router =
    Fun.protect ~finally:Trace.disable (fun () ->
        let _, router = mk_array ~domains:4 1 in
        let b = Router.backend router in
        let doms = Array.init 3 (fun id -> Domain.spawn (fun () -> run_client b id)) in
        let owned = Array.map Domain.join doms in
        Array.iter (verify_client b) owned;
        router)
  in
  let audit =
    List.concat_map
      (fun d ->
        List.map
          (fun (r : Audit.record) ->
            { Check.a_at = r.Audit.at; a_op = r.Audit.op; a_oid = r.Audit.oid; a_ok = r.Audit.ok })
          (Audit.records (Drive.audit d) ()))
      (Router.all_drives router)
  in
  let r = Check.run ~audit ~complete:true (Trace.spans ()) in
  if r.Check.violations <> [] then
    Alcotest.failf "trace checker over concurrent-client run: %s"
      (String.concat "; " r.Check.violations);
  check Alcotest.bool "audit records matched to spans" true (r.Check.audit_matched > 0);
  (Router.backend router).Backend.close ();
  Trace.clear ()

let () =
  Alcotest.run "s4_multicore"
    [
      ( "simclock-lanes",
        [
          Alcotest.test_case "fork, charge, join" `Quick test_lane_basic;
          Alcotest.test_case "misuse raises" `Quick test_lane_errors;
          Alcotest.test_case "lane is keyed per clock" `Quick test_lane_keyed_per_clock;
          Alcotest.test_case "lanes isolate worker domains" `Quick
            test_lanes_isolate_worker_domains;
        ] );
      ( "worker-pool",
        [
          Alcotest.test_case "runs jobs by slot" `Quick test_pool_runs_jobs;
          Alcotest.test_case "same-worker submission order" `Quick test_pool_slot_order;
          Alcotest.test_case "exceptions propagate" `Quick test_pool_exception_propagates;
          Alcotest.test_case "close joins workers" `Quick test_pool_close;
        ] );
      ( "obs",
        [
          Alcotest.test_case "metrics counters are atomic" `Quick test_metrics_hammer;
          Alcotest.test_case "tracer is domain-safe" `Quick test_trace_hammer;
        ] );
      ( "backend",
        [ Alcotest.test_case "concurrency capabilities" `Quick test_backend_capabilities ] );
      ( "stress",
        [
          Alcotest.test_case "concurrent clients, multi-domain array" `Quick
            test_concurrent_clients_stress;
          Alcotest.test_case "traced concurrent run satisfies checker" `Quick
            test_concurrent_clients_traced_checker;
        ] );
    ]
