lib/util/units.ml: Float Format List
