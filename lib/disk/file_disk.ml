(* File-backed sector store: real durability under a simulated drive.

   One host file holds a checksummed format header followed by the raw
   sector array, so a `kill -9` of the owning process (or daemon)
   loses nothing that was pwritten before the kill, and nothing that
   was acknowledged after an fsync barrier survives even a host crash.
   Sim_disk dispatches its sector contents here when constructed with
   [Sim_disk.of_file]; the timing model, fault layer and every layer
   above run unchanged. *)

module Bcodec = S4_util.Bcodec
module Crc32 = S4_util.Crc32
module Chain = S4_integrity.Chain

let magic = "S4FDSK1\n"
let header_bytes = 4096

type t = {
  path : string;
  fd : Unix.file_descr;
  geometry : Geometry.t;
  dsync : bool;
  mutable clock_ns : int64;  (* as of the last completed barrier *)
  mutable head : Chain.head option;  (* sealed audit-chain head, ditto *)
  mutable syncs : int;
  mutable closed : bool;
  lock : Mutex.t;
}

let corrupt path fmt =
  Printf.ksprintf (fun s -> failwith (path ^ ": corrupt store (" ^ s ^ ")")) fmt

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let check_open t = if t.closed then invalid_arg "File_disk: store is closed"

(* pread/pwrite built from lseek + read/write under the store's lock
   (the Unix module exposes no positional I/O). A short read means the
   range lies past EOF of a truncated file; the tail reads back as
   zeros, matching the never-written-sector contract, and fsck judges
   the contents. *)

let really_pread fd ~off buf =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let len = Bytes.length buf in
  let rec go pos =
    if pos < len then begin
      let n = Unix.read fd buf pos (len - pos) in
      if n > 0 then go (pos + n)
    end
  in
  go 0

let really_pwrite fd ~off buf =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let len = Bytes.length buf in
  let rec go pos =
    if pos < len then begin
      let n = Unix.write fd buf pos (len - pos) in
      go (pos + n)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Format header: magic | u32 payload length | u32 CRC-32 of payload |
   payload (geometry + barrier clock + optional sealed chain head),
   zero-padded to [header_bytes]. The head field is absent entirely in
   pre-integrity stores (payload ends after the clock), so old files
   open unchanged. *)

let encode_header ~geometry ~clock_ns ~head =
  let w = Bcodec.writer () in
  Geometry.encode w geometry;
  Bcodec.w_i64 w clock_ns;
  (match head with
   | None -> Bcodec.w_u8 w 0
   | Some h ->
     Bcodec.w_u8 w 1;
     Chain.write_head w h);
  let payload = Bcodec.contents w in
  let plen = Bytes.length payload in
  if String.length magic + 8 + plen > header_bytes then invalid_arg "File_disk: header overflow";
  let out = Bytes.make header_bytes '\000' in
  Bytes.blit_string magic 0 out 0 (String.length magic);
  Bcodec.set_u32 out 8 plen;
  Bcodec.set_u32 out 12 (Int32.to_int (Crc32.bytes payload) land 0xFFFFFFFF);
  Bytes.blit payload 0 out 16 plen;
  out

let decode_header path b =
  if Bytes.length b < 16 then corrupt path "truncated header";
  if Bytes.sub_string b 0 (String.length magic) <> magic then
    failwith (path ^ ": not an S4 file-backed store");
  let plen = Bcodec.get_u32 b 8 in
  if plen < 0 || 16 + plen > Bytes.length b then corrupt path "bad header length %d" plen;
  let payload = Bytes.sub b 16 plen in
  let stored = Bcodec.get_u32 b 12 in
  let crc = Int32.to_int (Crc32.bytes payload) land 0xFFFFFFFF in
  if stored <> crc then corrupt path "header CRC mismatch (stored %08x, computed %08x)" stored crc;
  match
    let r = Bcodec.reader payload in
    let geometry = Geometry.decode r in
    let clock_ns = Bcodec.r_i64 r in
    let head =
      if Bcodec.remaining r = 0 then None
      else if Bcodec.r_u8 r = 0 then None
      else Some (Chain.read_head r)
    in
    (geometry, clock_ns, head)
  with
  | (_, clock_ns, _) when Int64.compare clock_ns 0L < 0 -> corrupt path "negative clock"
  | parsed -> parsed
  | exception Bcodec.Decode_error m -> corrupt path "bad header payload: %s" m

let write_header t =
  really_pwrite t.fd ~off:0 (encode_header ~geometry:t.geometry ~clock_ns:t.clock_ns ~head:t.head)

(* ------------------------------------------------------------------ *)

let open_flags ~dsync base = if dsync then Unix.O_DSYNC :: base else base

let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let full_size geometry = header_bytes + Geometry.capacity_bytes geometry

let create ?(dsync = false) ~path geometry =
  let fd =
    Unix.openfile path (open_flags ~dsync [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ]) 0o644
  in
  let t =
    { path; fd; geometry; dsync; clock_ns = 0L; head = None; syncs = 0; closed = false;
      lock = Mutex.create () }
  in
  (try
     (* Reserve the full logical extent (the file stays sparse) so
        later preads never hit EOF, then make the format itself
        durable: header + length, and the directory entry. *)
     Unix.ftruncate fd (full_size geometry);
     write_header t;
     Unix.fsync fd
   with e ->
     Unix.close fd;
     raise e);
  fsync_dir path;
  t

let open_file ?(dsync = false) path =
  let fd = Unix.openfile path (open_flags ~dsync [ Unix.O_RDWR ]) 0o644 in
  match
    let b = Bytes.make header_bytes '\000' in
    really_pread fd ~off:0 b;
    decode_header path b
  with
  | geometry, clock_ns, head ->
    (* Heal a short file (e.g. a crash between create's ftruncate and
       the first barrier): missing tail sectors read back as zeros,
       exactly as if never written. *)
    if (Unix.fstat fd).Unix.st_size < full_size geometry then
      Unix.ftruncate fd (full_size geometry);
    { path; fd; geometry; dsync; clock_ns; head; syncs = 0; closed = false;
      lock = Mutex.create () }
  | exception e ->
    Unix.close fd;
    raise e

let geometry t = t.geometry
let clock_ns t = t.clock_ns
let head t = t.head
let set_head t h = t.head <- h
let path t = t.path
let dsync t = t.dsync
let syncs t = t.syncs

let off_of t lba = header_bytes + (lba * t.geometry.Geometry.sector_size)

let check_range t ~lba ~sectors =
  if lba < 0 || sectors <= 0 || lba + sectors > t.geometry.Geometry.sectors then
    invalid_arg
      (Printf.sprintf "File_disk: range [%d, %d) outside [0, %d)" lba (lba + sectors)
         t.geometry.Geometry.sectors)

let read t ~lba ~sectors =
  check_open t;
  check_range t ~lba ~sectors;
  let out = Bytes.make (sectors * t.geometry.Geometry.sector_size) '\000' in
  with_lock t (fun () -> really_pread t.fd ~off:(off_of t lba) out);
  out

let write t ~lba data =
  check_open t;
  let ss = t.geometry.Geometry.sector_size in
  if Bytes.length data = 0 || Bytes.length data mod ss <> 0 then
    invalid_arg "File_disk.write: not sector aligned";
  check_range t ~lba ~sectors:(Bytes.length data / ss);
  with_lock t (fun () -> really_pwrite t.fd ~off:(off_of t lba) data)

let erase t ~lba ~sectors =
  check_open t;
  check_range t ~lba ~sectors;
  let zeros = Bytes.make (sectors * t.geometry.Geometry.sector_size) '\000' in
  with_lock t (fun () -> really_pwrite t.fd ~off:(off_of t lba) zeros)

let sync t ~clock_ns =
  check_open t;
  with_lock t (fun () ->
      t.clock_ns <- clock_ns;
      write_header t;
      (* In O_DSYNC mode every pwrite — including the header rewrite
         just issued — is already stable; the explicit flush is the
         per-barrier cost of the buffered mode. *)
      if not t.dsync then Unix.fsync t.fd;
      t.syncs <- t.syncs + 1)

let close t =
  if not t.closed then begin
    t.closed <- true;
    Unix.close t.fd
  end
