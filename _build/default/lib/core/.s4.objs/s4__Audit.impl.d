lib/core/audit.ml: Array Bytes Int32 Int64 List S4_seglog S4_util
