examples/intrusion_recovery.ml: Bytes Format Int64 List Printf S4 S4_disk S4_nfs S4_tools S4_util
