(** Simulated time.

    The whole storage stack is driven by a single simulated clock so
    experiments are deterministic and independent of host speed. Time
    is kept in integer nanoseconds since simulation start.

    Components that consume time ({!Sim_disk}, [Net], CPU models in the
    workloads) call {!advance}; everything else only reads {!now}. *)

type t

type ns = int64
(** Nanoseconds since simulation start. *)

val create : unit -> t
(** A clock at time zero. *)

val now : t -> ns
val advance : t -> ns -> unit
(** [advance t d] moves the clock forward by [d] >= 0 ns. *)

val advance_s : t -> float -> unit
(** Advance by a duration in (fractional) seconds. *)

val set : t -> ns -> unit
(** Jump to an absolute time >= now; used by trace replay to model idle
    periods. *)

val seconds : t -> float
(** Current time in seconds. *)

(** {2 Domain-local lanes}

    A worker domain that owns a slice of the array during a parallel
    fan-out charges time to a private {e lane} instead of the shared
    clock. The dispatching domain forks one lane per worker at the
    shared [now]; while a lane is active on a domain, {!now},
    {!advance} and {!set} for that clock operate on the lane; the
    dispatcher then joins the lanes and advances the shared clock by
    the maximum elapsed lane time (slowest member defines batch
    latency). Lanes are keyed per (domain, clock) pair, and code that
    never forks a lane observes the shared clock unchanged. *)

val fork_lane : t -> at:ns -> unit
(** Activate a lane for [t] on the calling domain, starting at [at]
    (normally the shared [now]). Raises if a lane is already active. *)

val join_lane : t -> ns
(** Deactivate the calling domain's lane for [t] and return the
    elapsed lane time since {!fork_lane}. Raises if no lane is
    active. *)

val in_lane : t -> bool
(** Whether the calling domain currently has a lane for [t]. *)

val of_seconds : float -> ns
val to_seconds : ns -> float
val of_ms : float -> ns
val of_us : float -> ns

val pp_duration : Format.formatter -> ns -> unit
(** Human-readable duration ("3.21 s", "417 us", ...). *)
