module Bcodec = S4_util.Bcodec
module Crc32 = S4_util.Crc32
module Simclock = S4_util.Simclock
module Chain = S4_integrity.Chain
module Log = S4_seglog.Log
module Tag = S4_seglog.Tag

type record = {
  at : int64;
  user : int;
  client : int;
  op : string;
  oid : int64;
  info : string;
  ok : bool;
}

let magic_v1 = 0x5541 (* "AU": pre-chain blocks, still decodable *)
let magic = 0x5542 (* "BU": chained blocks carrying start index + prior head *)
let seal_magic = 0x5345 (* "ES": epoch seal *)

type t = {
  log : Log.t;
  mutable enabled : bool;
  mutable buffer : record list;  (* newest first *)
  mutable buffer_bytes : int;
  mutable blocks : (int * int64) list;  (* (addr, newest record time), newest first *)
  mutable nrecords : int;
  (* Hash chain state over flushed records. Buffered records are not
     yet chained: they join the chain in flush order, so the chain is
     exactly the persisted record sequence. *)
  mutable chain_head : string;  (* head after the last flushed record *)
  mutable chained : int;  (* global index: flushed records since format *)
  mutable seals : (int * Chain.seal) list;  (* (addr, seal), newest first *)
  mutable last_seal : Chain.head;
}

let create ?(enabled = true) log =
  {
    log;
    enabled;
    buffer = [];
    buffer_bytes = 0;
    blocks = [];
    nrecords = 0;
    chain_head = Chain.genesis_hash;
    chained = 0;
    seals = [];
    last_seal = Chain.genesis;
  }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

(* Compact wire encoding, so an audit block holds hundreds of records
   (the paper reports roughly one audit write per 750 operations):
   - op names from the fixed RPC vocabulary become a single byte;
   - times are varint deltas against the first record of the block;
   - the argument summary is stored as a short string (it is already
     terse, e.g. "oid=5 off=0 len=64"). *)

let op_codes =
  [|
    "create"; "delete"; "read"; "write"; "append"; "truncate"; "getattr"; "setattr";
    "getacl_user"; "getacl_index"; "setacl"; "pcreate"; "pdelete"; "plist"; "pmount";
    "sync"; "flush"; "flusho"; "setwindow"; "readaudit"; "verifylog";
  |]

let code_of_op op =
  let rec find i = if i >= Array.length op_codes then None else if op_codes.(i) = op then Some i else find (i + 1) in
  find 0

let w_record w ~base r =
  (match code_of_op r.op with
   | Some c -> Bcodec.w_u8 w ((c lsl 1) lor if r.ok then 1 else 0)
   | None ->
     Bcodec.w_u8 w ((0xFF lsl 1) land 0xFF lor if r.ok then 1 else 0);
     Bcodec.w_string w r.op);
  Bcodec.w_int w (Int64.to_int (Int64.sub r.at base));
  Bcodec.w_int w (r.user + 1);
  Bcodec.w_int w (r.client + 1);
  Bcodec.w_int w (Int64.to_int r.oid);
  Bcodec.w_string w r.info

let r_record rd ~base =
  let tagbyte = Bcodec.r_u8 rd in
  let ok = tagbyte land 1 = 1 in
  let code = tagbyte lsr 1 in
  let op = if code < Array.length op_codes then op_codes.(code) else Bcodec.r_string rd in
  let at = Int64.add base (Int64.of_int (Bcodec.r_int rd)) in
  let user = Bcodec.r_int rd - 1 in
  let client = Bcodec.r_int rd - 1 in
  let oid = Int64.of_int (Bcodec.r_int rd) in
  let info = Bcodec.r_string rd in
  { at; user; client; op; oid; info; ok }

let record_wire_bytes r =
  let w = Bcodec.writer () in
  w_record w ~base:r.at r;
  (* Slack for the varint time delta against the block base (up to 9
     bytes for multi-hour gaps) and unknown-op strings. *)
  Bcodec.length w + 10

(* The canonical encoding the hash chain runs over. Deliberately
   self-delimiting and independent of the block-level delta encoding,
   so the chain can be recomputed from decoded records alone. *)
let canonical r =
  let w = Bcodec.writer ~capacity:64 () in
  Bcodec.w_i64 w r.at;
  Bcodec.w_int w (r.user + 1);
  Bcodec.w_int w (r.client + 1);
  Bcodec.w_string w r.op;
  Bcodec.w_i64 w r.oid;
  Bcodec.w_string w r.info;
  Bcodec.w_u8 w (if r.ok then 1 else 0);
  Bcodec.contents w

(* Block layout: magic, base time, chain start index, prior head, count,
   records..., zero pad, crc in the last 4 bytes — self-identifying
   like journal blocks. The start index and prior head let verification
   resume at any block boundary (incremental verify, pruned logs). *)
let encode_block block_size ~start ~prior records_chrono =
  let base = match records_chrono with r :: _ -> r.at | [] -> 0L in
  let w = Bcodec.writer ~capacity:block_size () in
  Bcodec.w_u16 w magic;
  Bcodec.w_i64 w base;
  Bcodec.w_int w start;
  Bcodec.w_raw w (Bytes.of_string prior);
  Bcodec.w_int w (List.length records_chrono);
  List.iter (fun r -> w_record w ~base r) records_chrono;
  let body = Bcodec.contents w in
  if Bytes.length body + 4 > block_size then invalid_arg "Audit: block overflow";
  let out = Bytes.make block_size '\000' in
  Bytes.blit body 0 out 0 (Bytes.length body);
  let crc = Crc32.sub out ~pos:0 ~len:(block_size - 4) in
  Bcodec.set_u32 out (block_size - 4) (Int32.to_int crc land 0xFFFFFFFF);
  out

(* Decodes either block generation; chain info is [None] for v1. *)
let decode_block_chained b =
  let n = Bytes.length b in
  if n < 18 then None
  else begin
    let m = Bcodec.get_u16 b 0 in
    if m <> magic && m <> magic_v1 then None
    else begin
      let stored = Bcodec.get_u32 b (n - 4) in
      let crc = Int32.to_int (Crc32.sub b ~pos:0 ~len:(n - 4)) land 0xFFFFFFFF in
      if stored <> crc then None
      else begin
        try
          let rd = Bcodec.reader ~pos:2 b in
          let base = Bcodec.r_i64 rd in
          let chain =
            if m = magic then begin
              let start = Bcodec.r_int rd in
              let prior = Bytes.to_string (Bcodec.r_raw rd Chain.hash_len) in
              Some (start, prior)
            end
            else None
          in
          let count = Bcodec.r_int rd in
          Some (List.init count (fun _ -> r_record rd ~base), chain)
        with Bcodec.Decode_error _ -> None
      end
    end
  end

let decode_block b = Option.map fst (decode_block_chained b)

(* Seal layout: magic, epoch, records, seal time, head hash, pad, crc. *)
let encode_seal block_size (s : Chain.seal) =
  let w = Bcodec.writer ~capacity:64 () in
  Bcodec.w_u16 w seal_magic;
  Bcodec.w_int w s.Chain.s_head.Chain.epoch;
  Bcodec.w_int w s.Chain.s_head.Chain.records;
  Bcodec.w_i64 w s.Chain.s_at;
  Bcodec.w_raw w (Bytes.of_string s.Chain.s_head.Chain.hash);
  let body = Bcodec.contents w in
  if Bytes.length body + 4 > block_size then invalid_arg "Audit: seal overflow";
  let out = Bytes.make block_size '\000' in
  Bytes.blit body 0 out 0 (Bytes.length body);
  let crc = Crc32.sub out ~pos:0 ~len:(block_size - 4) in
  Bcodec.set_u32 out (block_size - 4) (Int32.to_int crc land 0xFFFFFFFF);
  out

let decode_seal b : Chain.seal option =
  let n = Bytes.length b in
  if n < 10 then None
  else if Bcodec.get_u16 b 0 <> seal_magic then None
  else begin
    let stored = Bcodec.get_u32 b (n - 4) in
    let crc = Int32.to_int (Crc32.sub b ~pos:0 ~len:(n - 4)) land 0xFFFFFFFF in
    if stored <> crc then None
    else begin
      try
        let rd = Bcodec.reader ~pos:2 b in
        let epoch = Bcodec.r_int rd in
        let records = Bcodec.r_int rd in
        let s_at = Bcodec.r_i64 rd in
        let hash = Bytes.to_string (Bcodec.r_raw rd Chain.hash_len) in
        Some { Chain.s_head = { Chain.epoch; records; hash }; s_at }
      with Bcodec.Decode_error _ -> None
    end
  end

let flush_block t =
  match t.buffer with
  | [] -> ()
  | newest_first ->
    let block_size = Log.block_size t.log in
    let chrono = List.rev newest_first in
    t.buffer <- [];
    t.buffer_bytes <- 0;
    (* Pack greedily by actual encoded size (time deltas vary); each
       emitted block records where it sits on the chain, then extends
       the running head with its records. *)
    let emit group_rev =
      match group_rev with
      | [] -> ()
      | newest :: _ as group_rev ->
        let group = List.rev group_rev in
        let data = encode_block block_size ~start:t.chained ~prior:t.chain_head group in
        let addr = Log.append t.log Tag.Audit ~data () in
        t.blocks <- (addr, newest.at) :: t.blocks;
        List.iter
          (fun r ->
            t.chain_head <- Chain.extend t.chain_head (canonical r);
            t.chained <- t.chained + 1)
          group
    in
    let base = ref (match chrono with r :: _ -> r.at | [] -> 0L) in
    let group = ref [] in
    let used = ref 0 in
    List.iter
      (fun r ->
        let w = Bcodec.writer () in
        w_record w ~base:!base r;
        let sz = Bcodec.length w in
        if !used + sz + 17 + 10 + Chain.hash_len > block_size && !group <> [] then begin
          emit !group;
          group := [];
          used := 0;
          base := r.at
        end;
        group := r :: !group;
        used := !used + sz)
      chrono;
    emit !group

let append t r =
  if t.enabled then begin
    let sz = record_wire_bytes r in
    (* header (2) + base (8) + start (10) + prior (32) + count varint
       (3) + crc (4) *)
    if t.buffer_bytes + sz + 27 + Chain.hash_len > Log.block_size t.log then flush_block t;
    t.buffer <- r :: t.buffer;
    t.buffer_bytes <- t.buffer_bytes + sz;
    t.nrecords <- t.nrecords + 1
  end

let flush t = flush_block t
let block_count t = List.length t.blocks
let block_addrs t = List.map fst t.blocks
let record_count t = t.nrecords

(* ------------------------------------------------------------------ *)
(* Chain state and sealing                                             *)

let chain_head t = t.chain_head
let chained t = t.chained
let sealed_head t = t.last_seal
let seal_count t = List.length t.seals

let prospective_head t =
  if t.chained > t.last_seal.Chain.records then
    { Chain.epoch = t.last_seal.Chain.epoch + 1; records = t.chained; hash = t.chain_head }
  else t.last_seal

(* Seal the chain at a durability barrier: called after [flush], before
   the log sync, so the seal travels in the same flush as the records
   it covers. A crash between the record blocks and the seal reaching
   the platter therefore loses the seal first — verification sees an
   unsealed tail (legitimate truncation), never a sealed region with
   missing records. Barriers with nothing new to seal write nothing. *)
let seal t =
  if t.enabled && t.chained > t.last_seal.Chain.records then begin
    let head = prospective_head t in
    let s = { Chain.s_head = head; s_at = Simclock.now (Log.clock t.log) } in
    let data = encode_seal (Log.block_size t.log) s in
    let addr = Log.append t.log Tag.Audit ~data () in
    t.seals <- (addr, s) :: t.seals;
    t.last_seal <- head
  end

let live_addrs t = List.map fst t.blocks @ List.map fst t.seals

let records t ?(since = 0L) ?(until = Int64.max_int) () =
  let in_range r = Int64.compare r.at since >= 0 && Int64.compare r.at until <= 0 in
  let from_blocks =
    List.concat_map
      (fun (addr, _) ->
        match decode_block (Log.read t.log addr) with
        | Some rs -> List.filter in_range rs
        | None -> [])
      (List.rev t.blocks)
  in
  from_blocks @ List.filter in_range (List.rev t.buffer)

let expire t ~cutoff =
  let expired, kept =
    List.partition (fun (_, newest) -> Int64.compare newest cutoff < 0) t.blocks
  in
  List.iter (fun (addr, _) -> Log.kill t.log addr) expired;
  t.blocks <- kept;
  (* Old seals go with their records, but the newest seal is always
     kept: it anchors the surviving suffix of the chain. *)
  let newest_epoch = t.last_seal.Chain.epoch in
  let dead_seals, kept_seals =
    List.partition
      (fun (_, (s : Chain.seal)) ->
        s.Chain.s_head.Chain.epoch <> newest_epoch && Int64.compare s.Chain.s_at cutoff < 0)
      t.seals
  in
  List.iter (fun (addr, _) -> Log.kill t.log addr) dead_seals;
  t.seals <- kept_seals;
  List.length expired + List.length dead_seals

let on_move t ~old_addr ~new_addr =
  t.blocks <-
    List.map (fun (a, newest) -> if a = old_addr then (new_addr, newest) else (a, newest)) t.blocks;
  t.seals <- List.map (fun (a, s) -> if a = old_addr then (new_addr, s) else (a, s)) t.seals

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)

(* Assemble chain items from the persisted log. Forensic [Log.peek]
   (uncharged) — verification is an offline examination, not workload
   I/O. A block the drive believes is live but no longer decodes is
   reported as Bad; seal-magic and record-magic blocks route to their
   item kinds; v1 (pre-chain) blocks cannot be verified and are
   flagged. *)
let chain_items t =
  List.filter_map
    (fun (addr, tag) ->
      match tag with
      | Tag.Audit -> (
        let b = Log.peek t.log addr in
        match decode_seal b with
        | Some s -> Some (Chain.Seal s)
        | None -> (
          match decode_block_chained b with
          | Some (rs, Some (start, prior)) ->
            Some
              (Chain.Block
                 { Chain.b_start = start; b_prior = prior; b_canons = List.map canonical rs })
          | Some (_, None) ->
            Some (Chain.Bad (Printf.sprintf "pre-chain audit block at addr %d (unverifiable)" addr))
          | None ->
            Some (Chain.Bad (Printf.sprintf "undecodable audit block at addr %d" addr))))
      | _ -> None)
    (Log.all_tagged t.log)

let verify ?from ?lenient_tail t = Chain.verify ?from ?lenient_tail (chain_items t)

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

let recover t =
  let record_blocks = ref [] in
  List.iter
    (fun (addr, tag) ->
      match tag with
      | Tag.Audit | Tag.Unknown -> (
        let b = Log.peek t.log addr in
        match decode_seal b with
        | Some s ->
          Log.mark_live t.log addr Tag.Audit;
          t.seals <- (addr, s) :: t.seals
        | None -> (
          match decode_block_chained b with
          | Some ([], _) -> ()
          | Some (rs, chain) ->
            let newest = List.fold_left (fun acc r -> max acc r.at) 0L rs in
            Log.mark_live t.log addr Tag.Audit;
            t.nrecords <- t.nrecords + List.length rs;
            t.blocks <- (addr, newest) :: t.blocks;
            record_blocks := (chain, rs) :: !record_blocks
          | None -> ()))
      | _ -> ())
    (Log.all_tagged t.log);
  t.blocks <- List.sort (fun (_, a) (_, b) -> compare b a) t.blocks;
  t.seals <-
    List.sort
      (fun (_, (a : Chain.seal)) (_, b) -> compare b.Chain.s_head.Chain.epoch a.Chain.s_head.Chain.epoch)
      t.seals;
  (match t.seals with
   | (_, s) :: _ -> t.last_seal <- s.Chain.s_head
   | [] -> ());
  (* Rebuild the running head by replaying the chained blocks in index
     order. Anomalies (gaps, mismatched priors — verification's job to
     report) resync on each block's self-declared prior so the drive
     keeps a usable head for new records. *)
  let chained_blocks =
    List.filter_map
      (function Some (start, prior), rs -> Some (start, prior, rs) | None, _ -> None)
      !record_blocks
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  (match chained_blocks with
   | [] -> ()
   | (start0, prior0, _) :: _ ->
     let idx = ref start0 and hash = ref prior0 in
     List.iter
       (fun (start, prior, rs) ->
         if start <> !idx then begin
           idx := start;
           hash := prior
         end;
         List.iter
           (fun r ->
             hash := Chain.extend !hash (canonical r);
             incr idx)
           rs)
       chained_blocks;
     t.chained <- !idx;
     t.chain_head <- !hash);
  (* A sealed count ahead of the recovered blocks (sealed-region
     truncation: verification will flag it) must not make the next seal
     claim fewer records than the last. *)
  if t.chained < t.last_seal.Chain.records then t.chained <- t.last_seal.Chain.records;
  (* Same monotonicity guard as Obj_store.recover: recovered audit
     records may postdate the barrier clock a file-backed restart
     resumed from. *)
  let tmax = List.fold_left (fun acc (_, newest) -> max acc newest) Int64.min_int t.blocks in
  let tmax =
    List.fold_left (fun acc (_, (s : Chain.seal)) -> max acc s.Chain.s_at) tmax t.seals
  in
  let clock = Log.clock t.log in
  if Int64.compare tmax (Simclock.now clock) >= 0 then
    Simclock.set clock (Int64.add tmax 1L)
