(* Tests for the LZ compressor and the xdelta-style differencer. *)

module Lz = S4_compress.Lz
module Delta = S4_compress.Delta
module Rng = S4_util.Rng
module Bcodec = S4_util.Bcodec

let check = Alcotest.check
let qtest = Qseed.qtest
let bytes_of = Bytes.of_string

(* --- LZ ------------------------------------------------------------ *)

let lz_roundtrip s =
  let b = bytes_of s in
  check Alcotest.bytes (Printf.sprintf "roundtrip %d bytes" (String.length s)) b
    (Lz.decompress (Lz.compress b))

let test_lz_empty () = lz_roundtrip ""
let test_lz_single () = lz_roundtrip "x"

let test_lz_repetitive () =
  let s = String.concat "" (List.init 200 (fun _ -> "abcabcabc")) in
  lz_roundtrip s;
  let ratio = Lz.ratio (bytes_of s) in
  check Alcotest.bool "compresses well" true (ratio < 0.1)

let test_lz_text_like () =
  let s =
    String.concat "\n"
      (List.init 100 (fun i ->
           Printf.sprintf "let f_%d x = x + %d (* a comment about f_%d *)" i i i))
  in
  lz_roundtrip s;
  check Alcotest.bool "text compresses >2x" true (Lz.ratio (bytes_of s) < 0.5)

let test_lz_incompressible () =
  let rng = Rng.create ~seed:11 in
  let b = Rng.bytes rng 4096 in
  check Alcotest.bytes "random roundtrip" b (Lz.decompress (Lz.compress b));
  check Alcotest.bool "bounded expansion" true (Lz.ratio b < 1.2)

let test_lz_overlapping_match () =
  (* "aaaa..." forces matches that overlap their own output. *)
  lz_roundtrip (String.make 1000 'a')

let test_lz_all_byte_values () =
  let b = Bytes.init 1024 (fun i -> Char.chr (i mod 256)) in
  check Alcotest.bytes "binary roundtrip" b (Lz.decompress (Lz.compress b))

let test_lz_rejects_garbage () =
  check Alcotest.bool "bad magic" true
    (try
       ignore (Lz.decompress (bytes_of "garbage!"));
       false
     with Bcodec.Decode_error _ -> true)

let prop_lz_roundtrip =
  QCheck.Test.make ~name:"lz roundtrip (arbitrary strings)" ~count:300
    QCheck.(string_of_size Gen.(0 -- 2000))
    (fun s ->
      let b = bytes_of s in
      Bytes.equal b (Lz.decompress (Lz.compress b)))

let prop_lz_roundtrip_structured =
  QCheck.Test.make ~name:"lz roundtrip (repetitive strings)" ~count:100
    QCheck.(pair (string_of_size Gen.(1 -- 50)) (int_range 1 100))
    (fun (unit_, n) ->
      let s = String.concat "" (List.init n (fun _ -> unit_)) in
      let b = bytes_of s in
      Bytes.equal b (Lz.decompress (Lz.compress b)))

(* --- Delta ---------------------------------------------------------- *)

let delta_roundtrip ~source ~target =
  let d = Delta.encode ~source ~target in
  check Alcotest.bytes "apply rebuilds target" target (Delta.apply ~source ~delta:d);
  d

let test_delta_identical () =
  let b = bytes_of (String.concat "" (List.init 64 (fun i -> Printf.sprintf "line %d\n" i))) in
  let d = delta_roundtrip ~source:b ~target:b in
  check Alcotest.bool "identical content -> tiny delta" true
    (Bytes.length d < Bytes.length b / 4)

let test_delta_small_edit () =
  let source =
    bytes_of (String.concat "" (List.init 100 (fun i -> Printf.sprintf "line %04d: some content here\n" i)))
  in
  let s = Bytes.to_string source in
  let target = bytes_of (String.sub s 0 500 ^ "EDITED!" ^ String.sub s 500 (String.length s - 500)) in
  let d = delta_roundtrip ~source ~target in
  check Alcotest.bool "small edit -> small delta" true (Bytes.length d < Bytes.length target / 5)

let test_delta_empty_source () =
  let target = bytes_of "brand new content" in
  let d = delta_roundtrip ~source:Bytes.empty ~target in
  check Alcotest.bool "all literal" true (Bytes.length d >= Bytes.length target)

let test_delta_empty_target () =
  ignore (delta_roundtrip ~source:(bytes_of "whatever") ~target:Bytes.empty)

let test_delta_unrelated () =
  let rng = Rng.create ~seed:21 in
  let source = Rng.bytes rng 1000 in
  let target = Rng.bytes rng 1000 in
  ignore (delta_roundtrip ~source ~target)

let test_delta_source_length_check () =
  let source = bytes_of "hello world hello world" in
  let d = Delta.encode ~source ~target:(bytes_of "hello world hello") in
  check Alcotest.bool "wrong source rejected" true
    (try
       ignore (Delta.apply ~source:(bytes_of "wrong") ~delta:d);
       false
     with Bcodec.Decode_error _ -> true)

let test_delta_corruption_detected () =
  let source = bytes_of (String.make 200 'q') in
  let target = bytes_of (String.make 100 'q' ^ String.make 100 'r') in
  let d = Delta.encode ~source ~target in
  (* Corrupt a byte past the header (magic 2 + varints + crc 4 = flip
     the last byte, which lives in instruction data). *)
  Bytes.set d (Bytes.length d - 1) 'X';
  check Alcotest.bool "corruption detected" true
    (try
       ignore (Delta.apply ~source ~delta:d);
       false
     with Bcodec.Decode_error _ -> true)

let test_delta_instructions_cover_target () =
  let source = bytes_of (String.concat "" (List.init 50 (fun i -> Printf.sprintf "block-%d " i))) in
  let target = Bytes.cat source (bytes_of "trailer") in
  let d = Delta.encode ~source ~target in
  let len =
    List.fold_left
      (fun acc -> function
        | Delta.Copy { len; _ } -> acc + len
        | Delta.Insert b -> acc + Bytes.length b)
      0
      (Delta.instructions ~delta:d)
  in
  check Alcotest.int "instructions cover target" (Bytes.length target) len

let test_delta_saved_metric () =
  let source = bytes_of (String.make 4096 'z') in
  let saved = Delta.saved ~source ~target:source in
  check Alcotest.bool "identical saves >90%" true (saved > 0.9)

let prop_delta_roundtrip =
  QCheck.Test.make ~name:"delta roundtrip (arbitrary pairs)" ~count:300
    QCheck.(pair (string_of_size Gen.(0 -- 1500)) (string_of_size Gen.(0 -- 1500)))
    (fun (s, t) ->
      let source = bytes_of s and target = bytes_of t in
      let d = Delta.encode ~source ~target in
      Bytes.equal target (Delta.apply ~source ~delta:d))

let prop_delta_roundtrip_mutations =
  QCheck.Test.make ~name:"delta roundtrip (mutated source)" ~count:200
    QCheck.(triple (string_of_size Gen.(100 -- 1000)) small_nat (string_of_size Gen.(0 -- 40)))
    (fun (s, pos, insert) ->
      let source = bytes_of s in
      let pos = pos mod (String.length s + 1) in
      let t = String.sub s 0 pos ^ insert ^ String.sub s pos (String.length s - pos) in
      let target = bytes_of t in
      let d = Delta.encode ~source ~target in
      Bytes.equal target (Delta.apply ~source ~delta:d))

let prop_delta_efficient_on_similar_inputs =
  QCheck.Test.make ~name:"delta smaller than target for large shared content" ~count:50
    QCheck.(string_of_size Gen.(return 2000))
    (fun s ->
      let source = bytes_of (s ^ s) in
      let target = bytes_of (s ^ "edit" ^ s) in
      let d = Delta.encode ~source ~target in
      Bytes.length d < Bytes.length target / 2)

let () =
  Alcotest.run "s4_compress"
    [
      ( "lz",
        [
          Alcotest.test_case "empty" `Quick test_lz_empty;
          Alcotest.test_case "single byte" `Quick test_lz_single;
          Alcotest.test_case "repetitive" `Quick test_lz_repetitive;
          Alcotest.test_case "text-like" `Quick test_lz_text_like;
          Alcotest.test_case "incompressible" `Quick test_lz_incompressible;
          Alcotest.test_case "overlapping match" `Quick test_lz_overlapping_match;
          Alcotest.test_case "all byte values" `Quick test_lz_all_byte_values;
          Alcotest.test_case "garbage rejected" `Quick test_lz_rejects_garbage;
          qtest prop_lz_roundtrip;
          qtest prop_lz_roundtrip_structured;
        ] );
      ( "delta",
        [
          Alcotest.test_case "identical" `Quick test_delta_identical;
          Alcotest.test_case "small edit" `Quick test_delta_small_edit;
          Alcotest.test_case "empty source" `Quick test_delta_empty_source;
          Alcotest.test_case "empty target" `Quick test_delta_empty_target;
          Alcotest.test_case "unrelated" `Quick test_delta_unrelated;
          Alcotest.test_case "source check" `Quick test_delta_source_length_check;
          Alcotest.test_case "corruption detected" `Quick test_delta_corruption_detected;
          Alcotest.test_case "instruction coverage" `Quick test_delta_instructions_cover_target;
          Alcotest.test_case "saved metric" `Quick test_delta_saved_metric;
          qtest prop_delta_roundtrip;
          qtest prop_delta_roundtrip_mutations;
          qtest prop_delta_efficient_on_similar_inputs;
        ] );
    ]
