module Sim_disk = S4_disk.Sim_disk
module Geometry = S4_disk.Geometry
module Fault = S4_disk.Fault
module Simclock = S4_util.Simclock
module Trace = S4_obs.Trace

type addr = int

let none = -1

exception Log_full

type seg_state = Free | Open | Closed

type seg_info = {
  seg_index : int;
  seg_state : seg_state;
  seg_epoch : int;
  seg_live : int;
  seg_written : int;
}

type stats = {
  mutable appends : int;
  mutable flush_ops : int;
  mutable blocks_flushed : int;
  mutable summaries_written : int;
  mutable blocks_read : int;
  mutable segments_opened : int;
  mutable segments_reclaimed : int;
  mutable io_retries : int;
}

type seg = {
  index : int;
  mutable state : seg_state;
  mutable epoch : int;
  mutable live : int;
  mutable written : int;  (* slots consumed, 0..usable *)
  mutable tags : Tag.t option array;  (* length usable; None = never written *)
  mutable live_bits : Bytes.t;  (* 1 bit per usable slot *)
}

type t = {
  disk : Sim_disk.t;
  block_size : int;
  spb : int;  (* sectors per block *)
  bps : int;  (* blocks per segment, incl. summary slot *)
  usable : int;  (* data slots per segment = bps - 1 *)
  nsegs : int;  (* segments usable for data (excludes reserved) *)
  reserved_blocks : int;  (* blocks before segment 0 of the log area *)
  segs : seg array;
  auto_reclaim : bool;
  mutable charge : bool;
  mutable current : int;  (* index into segs of the open segment *)
  mutable frontier : int;  (* next slot in current *)
  mutable flushed : int;  (* slots of current already on disk *)
  pending : (addr, Bytes.t option) Hashtbl.t;  (* buffered contents *)
  mutable epoch_counter : int;
  mutable rotor : int;  (* next segment index to try *)
  mutable live_total : int;
  mutable retry_limit : int;  (* transient-fault re-issues per I/O *)
  mutable retry_backoff_ms : float;
  s : stats;
}

let fresh_stats () =
  {
    appends = 0;
    flush_ops = 0;
    blocks_flushed = 0;
    summaries_written = 0;
    blocks_read = 0;
    segments_opened = 0;
    segments_reclaimed = 0;
    io_retries = 0;
  }

let fresh_seg ~usable index =
  {
    index;
    state = Free;
    epoch = 0;
    live = 0;
    written = 0;
    tags = Array.make usable None;
    live_bits = Bytes.make ((usable + 7) / 8) '\000';
  }

let bit_get b i = Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i v =
  let byte = Char.code (Bytes.get b (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.set b (i lsr 3) (Char.chr byte)

let open_segment_exn t =
  let n = t.nsegs in
  let rec find tried =
    if tried >= n then begin
      if t.auto_reclaim then begin
        let freed = ref 0 in
        Array.iter
          (fun sg ->
            if sg.state = Closed && sg.live = 0 then begin
              sg.state <- Free;
              sg.written <- 0;
              sg.epoch <- 0;
              Array.fill sg.tags 0 (Array.length sg.tags) None;
              Bytes.fill sg.live_bits 0 (Bytes.length sg.live_bits) '\000';
              incr freed
            end)
          t.segs;
        t.s.segments_reclaimed <- t.s.segments_reclaimed + !freed;
        if !freed = 0 then raise Log_full else find_again ()
      end
      else raise Log_full
    end
    else begin
      let i = (t.rotor + tried) mod n in
      if t.segs.(i).state = Free then begin
        t.rotor <- (i + 1) mod n;
        i
      end
      else find (tried + 1)
    end
  and find_again () =
    let rec loop tried =
      if tried >= n then raise Log_full
      else begin
        let i = (t.rotor + tried) mod n in
        if t.segs.(i).state = Free then begin
          t.rotor <- (i + 1) mod n;
          i
        end
        else loop (tried + 1)
      end
    in
    loop 0
  in
  let i = find 0 in
  let sg = t.segs.(i) in
  t.epoch_counter <- t.epoch_counter + 1;
  sg.state <- Open;
  sg.epoch <- t.epoch_counter;
  sg.written <- 0;
  t.current <- i;
  t.frontier <- 0;
  t.flushed <- 0;
  t.s.segments_opened <- t.s.segments_opened + 1

let create ?(block_size = 4096) ?(blocks_per_segment = 128) ?(auto_reclaim = true) disk =
  let g = Sim_disk.geometry disk in
  let spb = block_size / g.Geometry.sector_size in
  if spb * g.Geometry.sector_size <> block_size then invalid_arg "Log.create: block size";
  let total_blocks = Sim_disk.capacity_sectors disk / spb in
  let reserved_blocks = blocks_per_segment (* one reserved segment for the superblock *) in
  let nsegs = (total_blocks - reserved_blocks) / blocks_per_segment in
  if nsegs < 2 then invalid_arg "Log.create: disk too small";
  let usable = blocks_per_segment - 1 in
  let t =
    {
      disk;
      block_size;
      spb;
      bps = blocks_per_segment;
      usable;
      nsegs;
      reserved_blocks;
      segs = Array.init nsegs (fresh_seg ~usable);
      auto_reclaim;
      charge = true;
      current = 0;
      frontier = 0;
      flushed = 0;
      pending = Hashtbl.create 256;
      epoch_counter = 0;
      rotor = 0;
      live_total = 0;
      retry_limit = 0;
      retry_backoff_ms = 1.0;
      s = fresh_stats ();
    }
  in
  open_segment_exn t;
  t

let block_size t = t.block_size
let blocks_per_segment t = t.bps
let disk t = t.disk
let clock t = Sim_disk.clock t.disk
let total_segments t = t.nsegs
let usable_blocks t = t.nsegs * t.usable
let live_blocks t = t.live_total

let free_segments t =
  Array.fold_left (fun acc sg -> if sg.state = Free then acc + 1 else acc) 0 t.segs

let utilization t = float_of_int t.live_total /. float_of_int (usable_blocks t)
let charge_io t v = t.charge <- v
let stats t = t.s

(* Address arithmetic. Block address = reserved + seg*bps + slot. *)
let addr_of t ~seg ~slot = t.reserved_blocks + (seg * t.bps) + slot
let seg_of t addr = (addr - t.reserved_blocks) / t.bps
let slot_of t addr = (addr - t.reserved_blocks) mod t.bps
let lba_of t addr = addr * t.spb

let check_addr t addr =
  if addr < t.reserved_blocks || seg_of t addr >= t.nsegs then
    invalid_arg (Printf.sprintf "Log: bad address %d" addr)

let set_io_retry t ~limit ~backoff_ms =
  if limit < 0 || backoff_ms < 0.0 then invalid_arg "Log.set_io_retry";
  t.retry_limit <- limit;
  t.retry_backoff_ms <- backoff_ms

(* Re-issue an I/O that faulted transiently, paying exponential
   backoff on the simulated clock. Sound at this level because the
   retried request targets the exact same sectors — unlike replaying
   a whole store operation, which is not idempotent. Permanent faults
   (and exhausted retries) propagate to the drive's RPC perimeter. *)
let with_retry t f =
  let rec go attempt =
    try f () with
    | (Fault.Read_fault { transient = true; _ } | Fault.Write_fault { transient = true; _ })
      when attempt < t.retry_limit ->
      Simclock.advance (Sim_disk.clock t.disk)
        (Simclock.of_ms (t.retry_backoff_ms *. float_of_int (1 lsl attempt)));
      t.s.io_retries <- t.s.io_retries + 1;
      go (attempt + 1)
  in
  go 0

let disk_write t ~addr ?data () =
  if t.charge then
    with_retry t (fun () ->
        Sim_disk.write t.disk ?data ~lba:(lba_of t addr) ~sectors:t.spb ())
  else
    match data with
    | Some d -> Sim_disk.poke t.disk ~lba:(lba_of t addr) ~data:d
    | None -> ()

let disk_read t ~addr ~blocks =
  if t.charge then
    with_retry t (fun () ->
        Sim_disk.read t.disk ~lba:(lba_of t addr) ~sectors:(blocks * t.spb));
  t.s.blocks_read <- t.s.blocks_read + blocks

(* Flush buffered slots [flushed, frontier) of the open segment.
   [flushed] advances slot by slot: if a write faults mid-flush, a
   retried flush resumes at the first unwritten slot rather than
   re-flushing slots whose pending entries are already gone (which
   would store [None] over their persisted contents). *)
let flush_buffered t =
  if t.frontier > t.flushed then begin
    let sg = t.segs.(t.current) in
    for slot = t.flushed to t.frontier - 1 do
      let addr = addr_of t ~seg:sg.index ~slot in
      let data = Option.join (Hashtbl.find_opt t.pending addr) in
      disk_write t ~addr ?data ();
      Hashtbl.remove t.pending addr;
      t.flushed <- slot + 1;
      t.s.blocks_flushed <- t.s.blocks_flushed + 1
    done;
    t.s.flush_ops <- t.s.flush_ops + 1
  end

let close_segment t =
  flush_buffered t;
  let sg = t.segs.(t.current) in
  let tags =
    Array.map (function Some tg -> tg | None -> Tag.Summary (* unreachable *)) sg.tags
  in
  let summary = Summary.encode ~block_size:t.block_size { Summary.epoch = sg.epoch; tags } in
  let saddr = addr_of t ~seg:sg.index ~slot:t.usable in
  disk_write t ~addr:saddr ~data:summary ();
  t.s.summaries_written <- t.s.summaries_written + 1;
  sg.state <- Closed;
  open_segment_exn t

(* Span wrapper for the log's public entry points. Guarded on
   [Trace.on] so the untraced path allocates nothing; retries absorbed
   by [with_retry] during the op are charged to the span. *)
let traced t kind ~bytes f =
  if not (Trace.on ()) then f ()
  else begin
    let r0 = t.s.io_retries in
    let tok = Trace.enter Trace.Seglog ~kind ~now:(Simclock.now (clock t)) in
    Trace.set_bytes tok bytes;
    match f () with
    | v ->
      Trace.add_retries tok (t.s.io_retries - r0);
      Trace.finish tok ~now:(Simclock.now (clock t));
      v
    | exception e ->
      Trace.add_retries tok (t.s.io_retries - r0);
      Trace.abort tok ~now:(Simclock.now (clock t));
      raise e
  end

let append_inner t tag ?data () =
  (match data with
   | Some d when Bytes.length d <> t.block_size -> invalid_arg "Log.append: data size"
   | Some _ | None -> ());
  (* A faulted close_segment can leave the segment full but still
     open; complete the close before placing the new block, or the
     append would land in the summary slot. *)
  if t.frontier = t.usable then close_segment t;
  let sg = t.segs.(t.current) in
  let slot = t.frontier in
  let addr = addr_of t ~seg:sg.index ~slot in
  sg.tags.(slot) <- Some tag;
  bit_set sg.live_bits slot true;
  sg.live <- sg.live + 1;
  sg.written <- sg.written + 1;
  t.live_total <- t.live_total + 1;
  Hashtbl.replace t.pending addr data;
  t.frontier <- t.frontier + 1;
  t.s.appends <- t.s.appends + 1;
  if t.frontier = t.usable then close_segment t;
  addr

let append t tag ?data () =
  traced t "append" ~bytes:t.block_size (fun () -> append_inner t tag ?data ())

let sync t =
  traced t "sync" ~bytes:0 (fun () ->
      flush_buffered t;
      (* On a file-backed disk this is the real durability point: fsync
         (or nothing extra under O_DSYNC) after the buffered blocks
         reach the backing file. Memory backings ignore it. *)
      Sim_disk.barrier t.disk)

let write_superblock t payload =
  if Bytes.length payload > t.block_size then invalid_arg "Log.write_superblock: too big";
  let block = Bytes.make t.block_size '\000' in
  Bytes.blit payload 0 block 0 (Bytes.length payload);
  disk_write t ~addr:0 ~data:block ()

let read_superblock t =
  disk_read t ~addr:0 ~blocks:1;
  Sim_disk.peek t.disk ~lba:0 ~sectors:t.spb

let peek t addr =
  check_addr t addr;
  match Hashtbl.find_opt t.pending addr with
  | Some (Some data) -> Bytes.copy data
  | Some None -> Bytes.make t.block_size '\000'
  | None -> Sim_disk.peek t.disk ~lba:(lba_of t addr) ~sectors:t.spb

let read_inner t addr =
  check_addr t addr;
  match Hashtbl.find_opt t.pending addr with
  | Some (Some data) -> Bytes.copy data
  | Some None -> Bytes.make t.block_size '\000'
  | None ->
    disk_read t ~addr ~blocks:1;
    Sim_disk.peek t.disk ~lba:(lba_of t addr) ~sectors:t.spb

let read t addr = traced t "read" ~bytes:t.block_size (fun () -> read_inner t addr)

let written_extent t seg =
  let sg = t.segs.(seg) in
  if sg.state = Open && seg = t.segs.(t.current).index then t.flushed else sg.written

let read_run_inner t addr n =
  check_addr t addr;
  if n <= 0 then invalid_arg "Log.read_run";
  let seg = seg_of t addr in
  let slot = slot_of t addr in
  let extent = written_extent t seg in
  if slot >= extent then [ (addr, read t addr) ]
  else begin
    let count = min n (extent - slot) in
    disk_read t ~addr ~blocks:count;
    List.init count (fun i ->
        let a = addr + i in
        (a, Sim_disk.peek t.disk ~lba:(lba_of t a) ~sectors:t.spb))
  end

let read_run t addr n =
  traced t "read_run" ~bytes:(n * t.block_size) (fun () -> read_run_inner t addr n)

let kill t addr =
  check_addr t addr;
  let sg = t.segs.(seg_of t addr) in
  let slot = slot_of t addr in
  if slot < t.usable && bit_get sg.live_bits slot then begin
    bit_set sg.live_bits slot false;
    sg.live <- sg.live - 1;
    t.live_total <- t.live_total - 1
  end

let is_live t addr =
  check_addr t addr;
  let slot = slot_of t addr in
  slot < t.usable && bit_get t.segs.(seg_of t addr).live_bits slot

let tag_of t addr =
  check_addr t addr;
  let slot = slot_of t addr in
  if slot >= t.usable then None else t.segs.(seg_of t addr).tags.(slot)

let seg_of t addr =
  check_addr t addr;
  seg_of t addr

let info_of_seg sg =
  {
    seg_index = sg.index;
    seg_state = sg.state;
    seg_epoch = sg.epoch;
    seg_live = sg.live;
    seg_written = sg.written;
  }

let segments t = Array.map info_of_seg t.segs

let seg_live_addrs t seg =
  let sg = t.segs.(seg) in
  let acc = ref [] in
  for slot = t.usable - 1 downto 0 do
    if bit_get sg.live_bits slot then begin
      match sg.tags.(slot) with
      | Some tag -> acc := (addr_of t ~seg ~slot, tag) :: !acc
      | None -> ()
    end
  done;
  !acc

let all_tagged t =
  let acc = ref [] in
  for seg = t.nsegs - 1 downto 0 do
    let sg = t.segs.(seg) in
    if sg.state <> Free then
      for slot = t.usable - 1 downto 0 do
        match sg.tags.(slot) with
        | Some tag -> acc := (addr_of t ~seg ~slot, tag) :: !acc
        | None -> ()
      done
  done;
  !acc

let reclaim_dead_segments t =
  let freed = ref 0 in
  Array.iter
    (fun sg ->
      if sg.state = Closed && sg.live = 0 then begin
        sg.state <- Free;
        sg.written <- 0;
        sg.epoch <- 0;
        Array.fill sg.tags 0 (Array.length sg.tags) None;
        Bytes.fill sg.live_bits 0 (Bytes.length sg.live_bits) '\000';
        incr freed
      end)
    t.segs;
  t.s.segments_reclaimed <- t.s.segments_reclaimed + !freed;
  !freed

let reattach disk =
  let t = create disk in
  (* create opened a fresh segment; undo its accounting and rebuild
     from on-disk summaries instead. *)
  t.epoch_counter <- 0;
  Array.iter
    (fun sg ->
      sg.state <- Free;
      sg.epoch <- 0;
      sg.live <- 0;
      sg.written <- 0;
      Array.fill sg.tags 0 (Array.length sg.tags) None;
      Bytes.fill sg.live_bits 0 (Bytes.length sg.live_bits) '\000')
    t.segs;
  t.live_total <- 0;
  let crashed = ref [] in
  for seg = 0 to t.nsegs - 1 do
    let sg = t.segs.(seg) in
    let saddr = addr_of t ~seg ~slot:t.usable in
    let sblock = Sim_disk.peek disk ~lba:(lba_of t saddr) ~sectors:t.spb in
    disk_read t ~addr:saddr ~blocks:1;
    match Summary.decode sblock with
    | Some { Summary.epoch; tags } ->
      sg.state <- Closed;
      sg.epoch <- epoch;
      sg.written <- t.usable;
      Array.iteri (fun slot tag -> if slot < t.usable then sg.tags.(slot) <- Some tag) tags;
      if epoch > t.epoch_counter then t.epoch_counter <- epoch
    | None ->
      (* Possibly an open (crashed) segment: probe slots for
         self-identifying journal blocks; treat any such segment as
         consumed up to its last decodable block. *)
      let last = ref (-1) in
      let tmax = ref Int64.min_int in
      let nonzero b =
        let n = Bytes.length b in
        let rec go i = i < n && (Bytes.unsafe_get b i <> '\000' || go (i + 1)) in
        go 0
      in
      for slot = 0 to t.usable - 1 do
        let a = addr_of t ~seg ~slot in
        let b = Sim_disk.peek disk ~lba:(lba_of t a) ~sectors:t.spb in
        match Jblock.decode b with
        | Some (_, entries) ->
          sg.tags.(slot) <- Some Tag.Journal;
          last := slot;
          List.iter
            (fun e -> if e.Jblock.time > !tmax then tmax := e.Jblock.time)
            entries
        | None ->
          (* Blocks we cannot identify (data, audit, checkpoints) are
             kept as Unknown; their owners re-tag them during
             recovery. *)
          if nonzero b then begin
            sg.tags.(slot) <- Some Tag.Unknown;
            last := slot
          end
      done;
      if !last >= 0 then begin
        sg.state <- Closed;
        sg.written <- !last + 1;
        crashed := (seg, !tmax) :: !crashed
      end
  done;
  (* Crashed-open segments are newer than every summarized one. Order
     them by the latest journal-entry time they hold (simulated time
     is monotonic, so it reflects write order; physical index breaks
     ties for segments with no decodable journal blocks) and hand out
     fresh epochs above [epoch_counter], advancing it past them so the
     segment opened next — and everything after — sorts later still. *)
  List.sort
    (fun (sa, ta) (sb, tb) ->
      if ta <> tb then Int64.compare ta tb else compare sa sb)
    !crashed
  |> List.iter (fun (seg, _) ->
         t.epoch_counter <- t.epoch_counter + 1;
         t.segs.(seg).epoch <- t.epoch_counter);
  open_segment_exn t;
  t

let mark_live t addr tag =
  check_addr t addr;
  let sg = t.segs.(Stdlib.( / ) (addr - t.reserved_blocks) t.bps) in
  let slot = slot_of t addr in
  if slot < t.usable && not (bit_get sg.live_bits slot) then begin
    bit_set sg.live_bits slot true;
    sg.live <- sg.live + 1;
    sg.tags.(slot) <- Some tag;
    t.live_total <- t.live_total + 1
  end

let journal_blocks t =
  let segs =
    Array.to_list t.segs
    |> List.filter (fun sg -> sg.state <> Free && sg.written > 0)
    |> List.sort (fun a b -> compare a.epoch b.epoch)
  in
  let of_seg sg =
    let extent = written_extent t sg.index in
    if extent > 0 then disk_read t ~addr:(addr_of t ~seg:sg.index ~slot:0) ~blocks:extent;
    let acc = ref [] in
    for slot = extent - 1 downto 0 do
      match sg.tags.(slot) with
      | Some Tag.Journal ->
        let addr = addr_of t ~seg:sg.index ~slot in
        (match Jblock.decode (peek t addr) with
         | Some (prev, entries) -> acc := (addr, prev, entries) :: !acc
         | None -> ())
      | Some _ | None -> ()
    done;
    !acc
  in
  List.concat_map of_seg segs

let pp_stats ppf t =
  let s = t.s in
  Format.fprintf ppf
    "log: %d appends, %d flushes (%d blocks), %d summaries, %d reads, %d segs opened, %d reclaimed, %d io retries, util %.1f%%"
    s.appends s.flush_ops s.blocks_flushed s.summaries_written s.blocks_read
    s.segments_opened s.segments_reclaimed s.io_retries
    (100.0 *. utilization t)
