module N = Nfs_types
module Net = S4_disk.Net

type t = {
  name : string;
  root : N.fh;
  handle : N.req -> N.resp;
  reset_caches : unit -> unit;
}

let of_translator ~name tr =
  {
    name;
    root = Translator.root tr;
    handle = Translator.handle tr;
    reset_caches = (fun () -> Translator.invalidate_caches tr);
  }

(* NFSv2-over-UDP message sizes: exact XDR encoding plus UDP/IP/
   Ethernet framing. *)
let framing = 42
let header = 100

let nfs_req_bytes = function
  | N.Getattr _ -> header + 32
  | N.Setattr _ -> header + 64
  | N.Lookup { name; _ } -> header + 32 + String.length name
  | N.Readlink _ -> header + 32
  | N.Read _ -> header + 48
  | N.Write { data; _ } -> header + 48 + Bytes.length data
  | N.Create { name; _ } -> header + 64 + String.length name
  | N.Remove { name; _ } -> header + 32 + String.length name
  | N.Rename { from_name; to_name; _ } ->
    header + 64 + String.length from_name + String.length to_name
  | N.Mkdir { name; _ } -> header + 64 + String.length name
  | N.Rmdir { name; _ } -> header + 32 + String.length name
  | N.Readdir _ -> header + 40
  | N.Symlink { name; target; _ } -> header + 64 + String.length name + String.length target
  | N.Statfs -> header

let nfs_resp_bytes = function
  | N.R_attr _ -> header + 68
  | N.R_fh _ -> header + 100
  | N.R_data b -> header + Bytes.length b
  | N.R_entries entries ->
    header + List.fold_left (fun acc e -> acc + 24 + String.length e.N.name) 0 entries
  | N.R_link s -> header + String.length s
  | N.R_unit -> header
  | N.R_statfs _ -> header + 20
  | N.R_error _ -> header + 4

let over_net net t =
  {
    t with
    handle =
      (fun req ->
        let resp = t.handle req in
        Net.rpc net
          ~req_bytes:(framing + Xdr.req_wire_bytes req)
          ~resp_bytes:(framing + Xdr.resp_wire_bytes resp);
        resp);
  }

let handle_exn t req =
  match t.handle req with
  | N.R_error e -> failwith (Format.asprintf "%s: %s failed: %a" t.name (N.req_name req) N.pp_error e)
  | resp -> resp
