module Histogram = S4_util.Histogram

let counters_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 64
let histograms_tbl : (string, Histogram.t) Hashtbl.t = Hashtbl.create 64

let incr ?(by = 1) name =
  match Hashtbl.find_opt counters_tbl name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace counters_tbl name (ref by)

(* Gauge semantics: overwrite instead of accumulate (e.g. a decaying
   per-client byte counter exported on each refresh). *)
let set name v =
  match Hashtbl.find_opt counters_tbl name with
  | Some r -> r := v
  | None -> Hashtbl.replace counters_tbl name (ref v)

let observe name v =
  let h =
    match Hashtbl.find_opt histograms_tbl name with
    | Some h -> h
    | None ->
      let h = Histogram.create () in
      Hashtbl.replace histograms_tbl name h;
      h
  in
  Histogram.add h v

let counter name = match Hashtbl.find_opt counters_tbl name with Some r -> !r | None -> 0
let histogram name = Hashtbl.find_opt histograms_tbl name

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters () = sorted_bindings counters_tbl (fun r -> !r)
let histograms () = sorted_bindings histograms_tbl Fun.id

let reset () =
  Hashtbl.reset counters_tbl;
  Hashtbl.reset histograms_tbl

let pp ppf () =
  let cs = counters () and hs = histograms () in
  if cs = [] && hs = [] then Format.fprintf ppf "(no metrics recorded)"
  else begin
    List.iter (fun (name, v) -> Format.fprintf ppf "%-32s %d@." name v) cs;
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf "%-32s n=%d mean=%.1f p50=%.1f p95=%.1f max=%.1f@." name
          (Histogram.count h) (Histogram.mean h) (Histogram.percentile h 50.0)
          (Histogram.percentile h 95.0) (Histogram.max_value h))
      hs
  end
