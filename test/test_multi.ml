(* Tests for mirrored self-securing drives and the snapshot-vs-
   versioning analysis. *)

module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Drive = S4.Drive
module Rpc = S4.Rpc
module Mirror = S4_multi.Mirror
module Snapshots = S4_analysis.Snapshots

let check = Alcotest.check

let geom mb = Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(mb * 1024 * 1024)

let mk_mirror ?(mb = 64) () =
  let clock = Simclock.create () in
  let mk () = Drive.format (Sim_disk.create ~geometry:(geom mb) clock) in
  let primary = mk () in
  let secondary = mk () in
  (clock, Mirror.create primary secondary)

let alice = Rpc.user_cred ~user:1 ~client:1
let tick clock = Simclock.advance clock 1_000_000L

let expect_oid = function
  | Rpc.R_oid oid -> oid
  | r -> Alcotest.failf "expected oid, got %a" Rpc.pp_resp r

let expect_unit = function
  | Rpc.R_unit -> ()
  | r -> Alcotest.failf "expected unit, got %a" Rpc.pp_resp r

let read_str ?at m oid =
  match Mirror.handle m alice (Rpc.Read { oid; off = 0; len = 1 lsl 16; at }) with
  | Rpc.R_data b -> Bytes.to_string b
  | r -> Alcotest.failf "read: %a" Rpc.pp_resp r

let write m oid s =
  expect_unit
    (Mirror.handle m alice (Rpc.Write { oid; off = 0; len = String.length s; data = Some (Bytes.of_string s) }))

(* --- Mirror ----------------------------------------------------------- *)

let test_mirror_basic () =
  let _, m = mk_mirror () in
  let oid = expect_oid (Mirror.handle m alice (Rpc.Create { acl = [] })) in
  write m oid "mirrored data";
  check Alcotest.string "read" "mirrored data" (read_str m oid);
  check (Alcotest.list Alcotest.string) "replicas agree" [] (Mirror.divergence m);
  (* Both replicas really hold the data. *)
  List.iter
    (fun r ->
      match Drive.handle (Mirror.drive m r) alice (Rpc.Read { oid; off = 0; len = 13; at = None }) with
      | Rpc.R_data b -> check Alcotest.string "replica copy" "mirrored data" (Bytes.to_string b)
      | resp -> Alcotest.failf "replica read: %a" Rpc.pp_resp resp)
    [ Mirror.Primary; Mirror.Secondary ]

let test_mirror_identical_oids () =
  let _, m = mk_mirror () in
  let a = expect_oid (Mirror.handle m alice (Rpc.Create { acl = [] })) in
  let b = expect_oid (Mirror.handle m alice (Rpc.Create { acl = [] })) in
  check Alcotest.bool "distinct" true (a <> b);
  check (Alcotest.list Alcotest.string) "agree" [] (Mirror.divergence m)

let test_mirror_secondary_failure_and_resync () =
  let _, m = mk_mirror () in
  let oid = expect_oid (Mirror.handle m alice (Rpc.Create { acl = [] })) in
  write m oid "before failure";
  Mirror.set_failed m Mirror.Secondary true;
  write m oid "during failure!";
  check Alcotest.bool "mutations journalled" true (Mirror.lag m > 0);
  check Alcotest.string "primary serves" "during failure!" (read_str m oid);
  Mirror.set_failed m Mirror.Secondary false;
  (match Mirror.resync m with
   | Ok n -> check Alcotest.bool "replayed" true (n > 0)
   | Error e -> Alcotest.fail e);
  check Alcotest.int "lag cleared" 0 (Mirror.lag m);
  check (Alcotest.list Alcotest.string) "replicas re-converged" [] (Mirror.divergence m)

let test_mirror_primary_failover () =
  let clock, m = mk_mirror () in
  let oid = expect_oid (Mirror.handle m alice (Rpc.Create { acl = [] })) in
  write m oid "v1";
  let t1 = Simclock.now clock in
  tick clock;
  write m oid "v2";
  Mirror.set_failed m Mirror.Primary true;
  (* Reads — including time-based history reads — keep working off the
     secondary, which holds the full history pool too. *)
  check Alcotest.string "current from secondary" "v2" (read_str m oid);
  check Alcotest.string "history from secondary" "v1"
    (match Mirror.handle m Rpc.admin_cred (Rpc.Read { oid; off = 0; len = 2; at = Some t1 }) with
     | Rpc.R_data b -> Bytes.to_string b
     | r -> Alcotest.failf "history read: %a" Rpc.pp_resp r);
  (* Writes continue; the primary catches up on repair. *)
  write m oid "v3";
  Mirror.set_failed m Mirror.Primary false;
  (match Mirror.resync m with Ok _ -> () | Error e -> Alcotest.fail e);
  check (Alcotest.list Alcotest.string) "converged" [] (Mirror.divergence m)

let test_mirror_create_during_failure_resync () =
  let _, m = mk_mirror () in
  Mirror.set_failed m Mirror.Secondary true;
  (* The journal records the oid the live replica resolved, so the
     replay recreates the object under the same id instead of asking
     the target's allocator for a fresh one. *)
  let oid = expect_oid (Mirror.handle m alice (Rpc.Create { acl = [] })) in
  write m oid "born degraded";
  Mirror.set_failed m Mirror.Secondary false;
  (match Mirror.resync m with
   | Ok n -> check Alcotest.bool "create + write replayed" true (n >= 2)
   | Error e -> Alcotest.fail e);
  check (Alcotest.list Alcotest.string) "converged" [] (Mirror.divergence m);
  match
    Drive.handle (Mirror.drive m Mirror.Secondary) alice
      (Rpc.Read { oid; off = 0; len = 13; at = None })
  with
  | Rpc.R_data b -> check Alcotest.string "secondary copy under same oid" "born degraded" (Bytes.to_string b)
  | r -> Alcotest.failf "secondary read: %a" Rpc.pp_resp r

let test_mirror_both_failed () =
  let _, m = mk_mirror () in
  Mirror.set_failed m Mirror.Primary true;
  Mirror.set_failed m Mirror.Secondary true;
  (match Mirror.handle m alice (Rpc.Create { acl = [] }) with
   | Rpc.R_error (Rpc.Bad_request _) -> ()
   | r -> Alcotest.failf "expected failure, got %a" Rpc.pp_resp r);
  match Mirror.resync m with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "resync with no live replica"

let test_mirror_divergence_detected () =
  let _, m = mk_mirror () in
  let oid = expect_oid (Mirror.handle m alice (Rpc.Create { acl = [] })) in
  write m oid "same";
  (* Corrupt the secondary behind the mirror's back. *)
  let rogue = Drive.store (Mirror.drive m Mirror.Secondary) in
  S4_store.Obj_store.write rogue oid ~off:0 ~data:(Bytes.of_string "DIFF") ~len:4 ();
  check Alcotest.bool "divergence reported" true (Mirror.divergence m <> [])

let test_mirror_parallel_write_cost () =
  (* The mirrored write costs (simulated) time like a single-drive
     write: the secondary overlaps. *)
  let clock, m = mk_mirror () in
  let oid = expect_oid (Mirror.handle m alice (Rpc.Create { acl = [] })) in
  let t0 = Simclock.now clock in
  write m oid (String.make 8192 'p');
  expect_unit (Mirror.handle m alice Rpc.Sync);
  let mirrored = Int64.sub (Simclock.now clock) t0 in
  let clock2 = Simclock.create () in
  let single = Drive.format (Sim_disk.create ~geometry:(geom 64) clock2) in
  let oid2 = expect_oid (Drive.handle single alice (Rpc.Create { acl = [] })) in
  let t0 = Simclock.now clock2 in
  expect_unit
    (Drive.handle single alice (Rpc.Write { oid = oid2; off = 0; len = 8192; data = Some (Bytes.make 8192 'p') }));
  expect_unit (Drive.handle single alice Rpc.Sync);
  let solo = Int64.sub (Simclock.now clock2) t0 in
  (* Within 2.5x: the mirror pays double CPU but not double disk. *)
  check Alcotest.bool "no double disk charge" true
    (Int64.to_float mirrored < 2.5 *. Int64.to_float solo)

(* --- Balanced read routing --------------------------------------------- *)

module Fault = S4_disk.Fault
module Rng = S4_util.Rng
module Store = S4_store.Obj_store
module Audit = S4.Audit

let mk_balanced ?mb () =
  let clock, m = mk_mirror ?mb () in
  Mirror.set_read_policy m Mirror.Balanced;
  (clock, m)

let test_balanced_alternates () =
  let _, m = mk_balanced () in
  let oid = expect_oid (Mirror.handle m alice (Rpc.Create { acl = [] })) in
  write m oid "either replica";
  for _ = 1 to 4 do
    check Alcotest.string "balanced read" "either replica" (read_str m oid)
  done;
  let p, s = Mirror.read_counts m in
  check Alcotest.int "primary served half" 2 p;
  check Alcotest.int "secondary served half" 2 s

let test_balanced_freshness_mid_resync () =
  (* While the missed-op journal is non-empty, a read that a journalled
     mutation could change must route to the authoritative replica;
     reads the journal cannot affect keep balancing. *)
  let _, m = mk_balanced () in
  let stable = expect_oid (Mirror.handle m alice (Rpc.Create { acl = [] })) in
  write m stable "stable";
  let fresh = expect_oid (Mirror.handle m alice (Rpc.Create { acl = [] })) in
  write m fresh "fresh-v1";
  Mirror.set_failed m Mirror.Secondary true;
  write m fresh "fresh-v2";
  (* Replica repaired but NOT yet resynced: both live, journal pending. *)
  Mirror.set_failed m Mirror.Secondary false;
  check Alcotest.bool "journal pending" true (Mirror.lag m > 0);
  let _, s0 = Mirror.read_counts m in
  for _ = 1 to 3 do
    check Alcotest.string "stale oid served fresh" "fresh-v2" (read_str m fresh)
  done;
  let _, s1 = Mirror.read_counts m in
  check Alcotest.int "journalled oid never hits the lagging replica" s0 s1;
  (* An oid the journal does not touch still balances. *)
  check Alcotest.string "untouched oid" "stable" (read_str m stable);
  check Alcotest.string "untouched oid" "stable" (read_str m stable);
  let _, s2 = Mirror.read_counts m in
  check Alcotest.bool "untouched oid reached the lagging replica" true (s2 > s1);
  (* After resync the stale oid balances again — and serves v2 from
     both replicas. *)
  (match Mirror.resync m with Ok n -> check Alcotest.bool "replayed" true (n > 0) | Error e -> Alcotest.fail e);
  let _, s3 = Mirror.read_counts m in
  check Alcotest.string "post-resync" "fresh-v2" (read_str m fresh);
  check Alcotest.string "post-resync" "fresh-v2" (read_str m fresh);
  let _, s4 = Mirror.read_counts m in
  check Alcotest.bool "stale oid balances after resync" true (s4 > s3)

let test_balanced_read_born_degraded () =
  (* An object created while a replica was down exists only on the
     authoritative copy until resync; the freshness rule must keep
     every balanced read on that copy (a misroute would Not_found). *)
  let _, m = mk_balanced () in
  Mirror.set_failed m Mirror.Secondary true;
  let oid = expect_oid (Mirror.handle m alice (Rpc.Create { acl = [] })) in
  write m oid "born degraded";
  Mirror.set_failed m Mirror.Secondary false;
  for _ = 1 to 4 do
    check Alcotest.string "mid-resync read" "born degraded" (read_str m oid)
  done;
  let _, s = Mirror.read_counts m in
  check Alcotest.int "secondary never asked for an object it lacks" 0 s;
  (match Mirror.resync m with Ok _ -> () | Error e -> Alcotest.fail e);
  check (Alcotest.list Alcotest.string) "converged" [] (Mirror.divergence m)

let test_balanced_read_fault_failover () =
  (* A permanent media fault on the replica serving a balanced read
     fails it over and the read is answered by the survivor. *)
  let _, m = mk_balanced () in
  let oid = expect_oid (Mirror.handle m alice (Rpc.Create { acl = [] })) in
  write m oid "survives faults";
  expect_unit (Mirror.handle m alice Rpc.Sync);
  let sdisk = S4_seglog.Log.disk (Drive.log (Mirror.drive m Mirror.Secondary)) in
  let policy =
    Fault.create ~config:{ Fault.quiet with Fault.read_fault_rate = 1.0 } (Rng.create ~seed:11)
  in
  Sim_disk.set_fault sdisk (Some policy);
  (* Cold caches so reads actually touch the media. *)
  List.iter
    (fun r -> Store.drop_caches (Drive.store (Mirror.drive m r)))
    [ Mirror.Primary; Mirror.Secondary ];
  (* First read hits the primary, second is routed to the faulty
     secondary — and must still come back with the data. *)
  check Alcotest.string "read 1" "survives faults" (read_str m oid);
  check Alcotest.string "read across the fault" "survives faults" (read_str m oid);
  check Alcotest.bool "faulty replica failed over" true (Mirror.is_failed m Mirror.Secondary);
  Sim_disk.set_fault sdisk None;
  (* Reads keep flowing from the survivor while degraded. *)
  check Alcotest.string "degraded read" "survives faults" (read_str m oid);
  Mirror.set_failed m Mirror.Secondary false;
  (match Mirror.resync m with Ok _ -> () | Error e -> Alcotest.fail e);
  check (Alcotest.list Alcotest.string) "converged after repair" [] (Mirror.divergence m)

let test_balanced_audit_reads_authoritative () =
  (* Audit-trail reads never balance — Read_audit is served by the
     authoritative replica — but since each replica audits only the
     reads it itself served, the answer merges the peer's read-class
     records so the forensic trail covers BOTH halves of the split. *)
  let _, m = mk_balanced () in
  let oid = expect_oid (Mirror.handle m alice (Rpc.Create { acl = [] })) in
  write m oid "audited";
  ignore (read_str m oid);
  ignore (read_str m oid);
  let p0, s0 = Mirror.read_counts m in
  (match Mirror.handle m Rpc.admin_cred (Rpc.Read_audit { since = 0L; until = Int64.max_int }) with
  | Rpc.R_audit rs ->
    check Alcotest.bool "audit non-empty" true (rs <> []);
    (* Both balanced reads appear, even though one was served by the
       secondary and only mutations replicate to both audit logs. *)
    let reads =
      List.length (List.filter (fun r -> r.Audit.op = "read" && r.Audit.oid = oid) rs)
    in
    check Alcotest.int "merged trail holds every balanced read" 2 reads;
    (* Mutations are audited on both replicas; the merge must not
       double-count them. *)
    let writes =
      List.length (List.filter (fun r -> r.Audit.op = "write" && r.Audit.oid = oid) rs)
    in
    check Alcotest.int "mutations not double-counted" 1 writes;
    check Alcotest.bool "timestamps ordered" true
      (let rec sorted = function
         | a :: (b :: _ as tl) -> a.Audit.at <= b.Audit.at && sorted tl
         | _ -> true
       in
       sorted rs)
  | r -> Alcotest.failf "read_audit: %a" Rpc.pp_resp r);
  let p1, s1 = Mirror.read_counts m in
  check Alcotest.int "audit read went to the primary" (p0 + 1) p1;
  check Alcotest.int "audit read skipped the secondary" s0 s1

let test_balanced_failover_never_serves_stale () =
  (* A read that fails over from a faulted replica must re-check the
     freshness rule against the survivor: if the survivor is the
     lagging replica and the journal touches the oid, answering would
     silently serve pre-failure data. The mirror returns the fault's
     error instead. *)
  let _, m = mk_balanced () in
  let oid = expect_oid (Mirror.handle m alice (Rpc.Create { acl = [] })) in
  let stable = expect_oid (Mirror.handle m alice (Rpc.Create { acl = [] })) in
  write m oid "v1";
  write m stable "steady";
  expect_unit (Mirror.handle m alice Rpc.Sync);
  (* Secondary misses the v2 write: it is now the lagging replica. *)
  Mirror.set_failed m Mirror.Secondary true;
  write m oid "v2";
  Mirror.set_failed m Mirror.Secondary false;
  (* Fault the authoritative primary's media and cool the caches so
     reads really touch the disk. *)
  let pdisk = S4_seglog.Log.disk (Drive.log (Mirror.drive m Mirror.Primary)) in
  let policy =
    Fault.create ~config:{ Fault.quiet with Fault.read_fault_rate = 1.0 } (Rng.create ~seed:7)
  in
  Sim_disk.set_fault pdisk (Some policy);
  List.iter
    (fun r -> Store.drop_caches (Drive.store (Mirror.drive m r)))
    [ Mirror.Primary; Mirror.Secondary ];
  (* The journalled oid routes to the primary (freshness rule), the
     fault fails it over — and the survivor is stale for this oid, so
     the read must error rather than answer "v1". *)
  (match Mirror.handle m alice (Rpc.Read { oid; off = 0; len = 2; at = None }) with
  | Rpc.R_error _ -> ()
  | Rpc.R_data b -> Alcotest.failf "stale data served after failover: %s" (Bytes.to_string b)
  | r -> Alcotest.failf "failover read: %a" Rpc.pp_resp r);
  check Alcotest.bool "faulty primary failed over" true (Mirror.is_failed m Mirror.Primary);
  (* While degraded, the same oid keeps erroring (sole live replica
     lags on it)... *)
  (match Mirror.handle m alice (Rpc.Read { oid; off = 0; len = 2; at = None }) with
  | Rpc.R_error _ -> ()
  | r -> Alcotest.failf "degraded stale read: %a" Rpc.pp_resp r);
  (* ...but an oid the journal does not touch still serves. *)
  check Alcotest.string "untouched oid serves from survivor" "steady" (read_str m stable)

(* --- Snapshots analysis ------------------------------------------------- *)

let test_capture_probability () =
  check (Alcotest.float 1e-9) "short file rarely seen" 0.01
    (Snapshots.capture_probability ~period_s:100.0 ~lifetime_s:1.0);
  check (Alcotest.float 1e-9) "long file always seen" 1.0
    (Snapshots.capture_probability ~period_s:100.0 ~lifetime_s:1000.0)

let test_simulation_matches_model () =
  let r = Snapshots.simulate ~period_s:600.0 ~mean_lifetime_s:600.0 () in
  (* Exponential lifetimes, p = mean: capture = E[min(1, L/p)]
     = 1 - (1 - e^-1) * ... ~ 0.63 analytically; allow slack. *)
  check Alcotest.bool "files captured ~0.55-0.72" true
    (r.Snapshots.files_captured > 0.55 && r.Snapshots.files_captured < 0.72)

let test_snapshots_lose_short_lived_files () =
  let hourly = Snapshots.simulate ~period_s:3600.0 () in
  check Alcotest.bool "hourly snapshots miss most exploit tools" true
    (hourly.Snapshots.short_lived_captured < 0.25);
  check Alcotest.bool "and most intermediate versions" true
    (hourly.Snapshots.versions_captured < 0.5);
  check (Alcotest.float 0.0) "comprehensive versioning misses nothing" 1.0
    Snapshots.comprehensive.Snapshots.files_captured

let test_shrinking_period_approaches_versioning () =
  let p60 = Snapshots.simulate ~period_s:60.0 () in
  let p600 = Snapshots.simulate ~period_s:600.0 () in
  let p6000 = Snapshots.simulate ~period_s:6000.0 () in
  check Alcotest.bool "monotone in period" true
    (p60.Snapshots.files_captured > p600.Snapshots.files_captured
    && p600.Snapshots.files_captured > p6000.Snapshots.files_captured);
  check Alcotest.bool "1-minute snapshots still imperfect" true
    (p60.Snapshots.versions_captured < 1.0)

let () =
  Alcotest.run "s4_multi"
    [
      ( "mirror",
        [
          Alcotest.test_case "basic" `Quick test_mirror_basic;
          Alcotest.test_case "identical oids" `Quick test_mirror_identical_oids;
          Alcotest.test_case "secondary failure + resync" `Quick test_mirror_secondary_failure_and_resync;
          Alcotest.test_case "create during failure + resync" `Quick
            test_mirror_create_during_failure_resync;
          Alcotest.test_case "primary failover" `Quick test_mirror_primary_failover;
          Alcotest.test_case "both failed" `Quick test_mirror_both_failed;
          Alcotest.test_case "divergence detected" `Quick test_mirror_divergence_detected;
          Alcotest.test_case "parallel write cost" `Quick test_mirror_parallel_write_cost;
        ] );
      ( "balanced reads",
        [
          Alcotest.test_case "reads alternate across replicas" `Quick test_balanced_alternates;
          Alcotest.test_case "freshness rule mid-resync" `Quick
            test_balanced_freshness_mid_resync;
          Alcotest.test_case "object born degraded" `Quick test_balanced_read_born_degraded;
          Alcotest.test_case "read fault fails over" `Quick test_balanced_read_fault_failover;
          Alcotest.test_case "audit reads stay authoritative" `Quick
            test_balanced_audit_reads_authoritative;
          Alcotest.test_case "failover never serves stale" `Quick
            test_balanced_failover_never_serves_stale;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "capture probability" `Quick test_capture_probability;
          Alcotest.test_case "simulation vs model" `Quick test_simulation_matches_model;
          Alcotest.test_case "short-lived files lost" `Quick test_snapshots_lose_short_lived_files;
          Alcotest.test_case "period shrinks to versioning" `Quick test_shrinking_period_approaches_versioning;
        ] );
    ]
