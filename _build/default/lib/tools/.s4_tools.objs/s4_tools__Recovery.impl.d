lib/tools/recovery.ml: Bytes Format History List S4 S4_nfs S4_store
