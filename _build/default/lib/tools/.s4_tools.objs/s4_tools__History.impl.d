lib/tools/history.ml: Bytes Format List Result S4 S4_nfs S4_store String
