examples/intrusion_recovery.mli:
