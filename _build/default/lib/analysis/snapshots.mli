(** Versioning vs. snapshots (the paper's Section 6 discussion).

    Self-securing storage could be built on frequent copy-on-write
    snapshots instead of comprehensive versioning — but snapshots only
    capture state that survives to a snapshot instant. Short-lived
    files (exploit tools staged during an intrusion, scratch files) and
    intermediate versions (individual appends to a system log that were
    later scrubbed) slip through. Comprehensive versioning is the
    limit of snapshot frequency: every modification is a snapshot.

    This module quantifies the gap: given a population of file events
    with realistic lifetimes, what fraction would a snapshot system
    with period [p] capture, versus the 100% that comprehensive
    versioning guarantees? Both a closed-form model and a Monte-Carlo
    simulation (which also measures intermediate-version capture) are
    provided. *)

type result = {
  period_s : float;  (** snapshot period, seconds *)
  files_captured : float;  (** fraction of files visible in >= 1 snapshot *)
  short_lived_captured : float;  (** same, for files living < 5 minutes *)
  versions_captured : float;  (** fraction of all intermediate versions *)
  mean_loss_window_s : float;
      (** expected age of the newest surviving copy of a legitimate
          change destroyed right before a snapshot *)
}

val capture_probability : period_s:float -> lifetime_s:float -> float
(** Closed form: a file alive [lifetime] with a uniformly random start
    is seen by a period-[p] snapshot with probability
    [min 1 (lifetime/p)]. *)

val simulate :
  ?seed:int ->
  ?events:int ->
  ?mean_lifetime_s:float ->
  ?versions_per_file:float ->
  period_s:float ->
  unit ->
  result
(** Monte-Carlo over [events] file histories (default 20 000): lifetime
    exponential with [mean_lifetime_s] (default 600 s — file-lifetime
    studies put most file lifetimes well under an hour), each file
    receiving a geometric number of modifications (mean
    [versions_per_file], default 4) spread over its life. *)

val comprehensive : result
(** What the S4 history pool guarantees inside the window: everything. *)

val sweep : ?seed:int -> periods_s:float list -> unit -> result list
