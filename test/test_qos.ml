(* The read-path scale-out primitives: the weighted-fair-queueing
   scheduler (lib/qos) and the lease-based client cache's safety rule
   (lib/net/cache), both property-tested. *)

module Wfq = S4_qos.Wfq
module Cache = S4_net.Cache
module Rpc = S4.Rpc

let check = Alcotest.check
let qtest = Qseed.qtest

(* --- WFQ --------------------------------------------------------------- *)

let gen_jobs =
  QCheck.Gen.(list_size (1 -- 60) (pair (0 -- 3) (1 -- 5)))

let arb_jobs =
  QCheck.make
    ~print:(fun l ->
      String.concat ";" (List.map (fun (c, k) -> Printf.sprintf "%d:%d" c k) l))
    gen_jobs

(* Items from one client come back in the order that client enqueued
   them, whatever the interleaving with other clients. *)
let prop_wfq_fifo_per_client =
  QCheck.Test.make ~name:"wfq keeps per-client FIFO order" ~count:200 arb_jobs (fun jobs ->
      let q = Wfq.create () in
      List.iteri
        (fun seq (client, cost) -> Wfq.enqueue q ~client ~cost:(float_of_int cost) (client, seq))
        jobs;
      let last = Hashtbl.create 8 in
      let rec drain () =
        match Wfq.pop q with
        | None -> true
        | Some (client, seq) ->
          let prev = try Hashtbl.find last client with Not_found -> -1 in
          if seq <= prev then
            QCheck.Test.fail_reportf "client %d served %d after %d" client seq prev;
          Hashtbl.replace last client seq;
          drain ()
      in
      drain ())

(* Every enqueued item comes back exactly once; length tracks. *)
let prop_wfq_conservation =
  QCheck.Test.make ~name:"wfq loses and invents nothing" ~count:200 arb_jobs (fun jobs ->
      let q = Wfq.create () in
      List.iteri
        (fun seq (client, cost) -> Wfq.enqueue q ~client ~cost:(float_of_int cost) seq)
        jobs;
      if Wfq.length q <> List.length jobs then
        QCheck.Test.fail_reportf "length %d after %d enqueues" (Wfq.length q) (List.length jobs);
      let seen = Hashtbl.create 64 in
      let rec drain () =
        match Wfq.pop q with
        | None -> ()
        | Some seq ->
          if Hashtbl.mem seen seq then QCheck.Test.fail_reportf "item %d served twice" seq;
          Hashtbl.add seen seq ();
          drain ()
      in
      drain ();
      Hashtbl.length seen = List.length jobs && Wfq.pop q = None)

(* Virtual time never goes backwards, whatever the op interleaving. *)
let prop_wfq_vtime_monotone =
  QCheck.Test.make ~name:"wfq virtual time is monotone" ~count:200
    (QCheck.make
       ~print:(fun l -> String.concat ";" (List.map string_of_int l))
       QCheck.Gen.(list_size (1 -- 80) (0 -- 8)))
    (fun ops ->
      (* op 0-5: enqueue for client op/2; 6-8: pop. *)
      let q = Wfq.create () in
      let v = ref (Wfq.virtual_time q) in
      List.for_all
        (fun op ->
          if op <= 5 then Wfq.enqueue q ~client:(op / 2) ~cost:1.0 op
          else ignore (Wfq.pop q);
          let v' = Wfq.virtual_time q in
          let ok = v' >= !v in
          v := v';
          ok)
        ops)

let test_wfq_hog_cannot_starve () =
  (* A hog floods 50 items before an honest client enqueues one; the
     honest item is served almost immediately, not after the flood. *)
  let q = Wfq.create () in
  for i = 1 to 50 do
    Wfq.enqueue q ~client:7 ~cost:1.0 (`Hog i)
  done;
  Wfq.enqueue q ~client:8 ~cost:1.0 `Honest;
  let position = ref None in
  (try
     for i = 1 to 51 do
       match Wfq.pop q with
       | Some `Honest ->
         position := Some i;
         raise Exit
       | _ -> ()
     done
   with Exit -> ());
  match !position with
  | Some p -> check Alcotest.bool "honest item served within the first 2 pops" true (p <= 2)
  | None -> Alcotest.fail "honest item never served"

let test_wfq_weighted_share () =
  (* Both clients backlogged with equal-cost work: service divides by
     weight. *)
  let weight_of c = if c = 0 then 3.0 else 1.0 in
  let q = Wfq.create ~weight_of () in
  for i = 1 to 60 do
    Wfq.enqueue q ~client:0 ~cost:1.0 i;
    Wfq.enqueue q ~client:1 ~cost:1.0 i
  done;
  for _ = 1 to 40 do
    ignore (Wfq.pop q)
  done;
  let s0 = Wfq.served q ~client:0 and s1 = Wfq.served q ~client:1 in
  check Alcotest.bool
    (Printf.sprintf "3:1 weights give ~3:1 service (got %.0f:%.0f)" s0 s1)
    true
    (s1 > 0.0 && s0 /. s1 >= 2.5 && s0 /. s1 <= 3.5)

let test_wfq_penalized_client_still_drains () =
  (* A fully-penalized client (weight 0) is clamped to the floor, not
     starved forever. *)
  let q = Wfq.create ~weight_of:(fun _ -> 0.0) () in
  for i = 1 to 5 do
    Wfq.enqueue q ~client:3 ~cost:4.0 i
  done;
  let drained = ref 0 in
  let rec go () =
    match Wfq.pop q with
    | Some _ ->
      incr drained;
      go ()
    | None -> ()
  in
  go ();
  check Alcotest.int "all items served despite zero weight" 5 !drained;
  check Alcotest.bool "service accounted" true (Wfq.served q ~client:3 > 0.0)

let test_wfq_observability () =
  let q = Wfq.create () in
  Wfq.enqueue q ~client:2 ~cost:1.0 ();
  Wfq.enqueue q ~client:5 ~cost:1.0 ();
  check (Alcotest.list Alcotest.int) "clients listed ascending" [ 2; 5 ] (Wfq.clients q);
  check (Alcotest.option Alcotest.int) "peek matches pop" (Some 2) (Wfq.peek_client q);
  check Alcotest.int "pending per client" 1 (Wfq.pending q ~client:5);
  ignore (Wfq.pop q);
  check Alcotest.int "pending drops after pop" 0 (Wfq.pending q ~client:2)

(* --- Cache safety ------------------------------------------------------ *)

(* Random interleavings of grants, reads, invalidations and observed
   clock advances: the journal replay must always prove the safety
   rule (no hit after expiry or invalidation) — i.e. the cache's
   run-time behaviour and the checker's offline rule agree. *)

type cop =
  | Cstore of int * int  (* oid index, lease term *)
  | Cfind of int
  | Cinval of int
  | Cadvance of int

let gen_cop =
  QCheck.Gen.(
    let oid = 0 -- 2 in
    oneof
      [
        map2 (fun o l -> Cstore (o, l)) oid (0 -- 120);
        map (fun o -> Cfind o) oid;
        map (fun o -> Cinval o) oid;
        map (fun dt -> Cadvance dt) (1 -- 60);
      ])

let pp_cop = function
  | Cstore (o, l) -> Printf.sprintf "store(%d,+%d)" o l
  | Cfind o -> Printf.sprintf "find(%d)" o
  | Cinval o -> Printf.sprintf "inval(%d)" o
  | Cadvance dt -> Printf.sprintf "advance(%d)" dt

let arb_cops =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map pp_cop l))
    QCheck.Gen.(list_size (1 -- 60) gen_cop)

let read_req o = Rpc.Read { oid = Int64.of_int o; off = 0; len = 8; at = None }
let data_resp o = Rpc.R_data (Bytes.make 8 (Char.chr (Char.code 'a' + o)))
let ccred = Rpc.user_cred ~user:1 ~client:1

let prop_cache_journal_always_checks =
  QCheck.Test.make ~name:"cache journal replay proves the lease rule" ~count:300 arb_cops
    (fun ops ->
      let c = Cache.create ~journal:true ~budget:4096 () in
      let now = ref 0L in
      List.iter
        (fun op ->
          match op with
          | Cstore (o, l) ->
            Cache.store c ccred (read_req o) (data_resp o) ~lease:(Int64.add !now (Int64.of_int l))
          | Cfind o -> (
            match Cache.find c ccred (read_req o) with
            | Some (Rpc.R_data b) ->
              (* A served reply is the one stored for that oid. *)
              if Bytes.get b 0 <> Char.chr (Char.code 'a' + o) then
                QCheck.Test.fail_reportf "cache served another oid's bytes"
            | Some _ -> QCheck.Test.fail_reportf "cache served a non-data reply"
            | None -> ())
          | Cinval o -> Cache.invalidate_req c (Rpc.Delete { oid = Int64.of_int o })
          | Cadvance dt ->
            now := Int64.add !now (Int64.of_int dt);
            Cache.observe_now c !now)
        ops;
      match Cache.check c with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "lease checker: %s" e)

let test_cache_expiry_boundary () =
  let c = Cache.create ~journal:true ~budget:4096 () in
  Cache.observe_now c 10L;
  Cache.store c ccred (read_req 0) (data_resp 0) ~lease:100L;
  Cache.observe_now c 99L;
  check Alcotest.bool "live at 99" true (Cache.find c ccred (read_req 0) <> None);
  Cache.observe_now c 100L;
  check Alcotest.bool "dead at expiry instant" true (Cache.find c ccred (read_req 0) = None);
  check Alcotest.int "one hit" 1 (Cache.hits c);
  check Alcotest.int "expired find counted as miss" 1 (Cache.misses c);
  (match Cache.check c with Ok () -> () | Error e -> Alcotest.failf "checker: %s" e)

let test_cache_expired_lease_stores_nothing () =
  let c = Cache.create ~budget:4096 () in
  Cache.observe_now c 50L;
  Cache.store c ccred (read_req 0) (data_resp 0) ~lease:50L;
  Cache.store c ccred (read_req 1) (data_resp 1) ~lease:0L;
  check Alcotest.int "nothing stored" 0 (Cache.length c)

let test_cache_errors_never_cached () =
  let c = Cache.create ~budget:4096 () in
  Cache.observe_now c 1L;
  Cache.store c ccred (read_req 0) (Rpc.R_error Rpc.Not_found) ~lease:1000L;
  check Alcotest.int "error reply not cached" 0 (Cache.length c)

let test_cache_invalidation_is_per_oid () =
  let c = Cache.create ~journal:true ~budget:4096 () in
  Cache.observe_now c 1L;
  Cache.store c ccred (read_req 0) (data_resp 0) ~lease:1000L;
  Cache.store c ccred (read_req 1) (data_resp 1) ~lease:1000L;
  Cache.invalidate_req c
    (Rpc.Write { oid = 0L; off = 0; len = 1; data = Some (Bytes.make 1 'z') });
  check Alcotest.bool "mutated oid dropped" true (Cache.find c ccred (read_req 0) = None);
  check Alcotest.bool "other oid survives" true (Cache.find c ccred (read_req 1) <> None);
  (* History-pruning ops have no per-oid footprint: everything goes. *)
  Cache.invalidate_req c (Rpc.Flush { until = 5L });
  check Alcotest.int "flush clears the cache" 0 (Cache.length c);
  (match Cache.check c with Ok () -> () | Error e -> Alcotest.failf "checker: %s" e)

let test_cache_keys_are_per_credential () =
  (* The server ACL-checks per credential, so a reply cached for one
     principal must never be replayed to another sharing the client:
     the cache key carries (user, admin). *)
  let c = Cache.create ~journal:true ~budget:4096 () in
  Cache.observe_now c 1L;
  Cache.store c ccred (read_req 0) (data_resp 0) ~lease:1000L;
  check Alcotest.bool "another user misses" true
    (Cache.find c (Rpc.user_cred ~user:2 ~client:1) (read_req 0) = None);
  check Alcotest.bool "admin misses" true (Cache.find c Rpc.admin_cred (read_req 0) = None);
  check Alcotest.bool "the caching user hits" true (Cache.find c ccred (read_req 0) <> None);
  (* The connection names the client machine server-side, so the
     client field is NOT part of the key. *)
  check Alcotest.bool "same user, other claimed client still hits" true
    (Cache.find c (Rpc.user_cred ~user:1 ~client:9) (read_req 0) <> None);
  (* Invalidation by oid drops every principal's entries. *)
  Cache.store c (Rpc.user_cred ~user:2 ~client:1) (read_req 0) (data_resp 0) ~lease:1000L;
  Cache.invalidate_req c (Rpc.Delete { oid = 0L });
  check Alcotest.int "all principals' entries dropped" 0 (Cache.length c);
  (match Cache.check c with Ok () -> () | Error e -> Alcotest.failf "checker: %s" e)

let () =
  Alcotest.run "s4_qos"
    [
      ( "wfq",
        [
          qtest prop_wfq_fifo_per_client;
          qtest prop_wfq_conservation;
          qtest prop_wfq_vtime_monotone;
          Alcotest.test_case "hog cannot starve" `Quick test_wfq_hog_cannot_starve;
          Alcotest.test_case "weighted share" `Quick test_wfq_weighted_share;
          Alcotest.test_case "penalized client still drains" `Quick
            test_wfq_penalized_client_still_drains;
          Alcotest.test_case "observability accessors" `Quick test_wfq_observability;
        ] );
      ( "cache",
        [
          qtest prop_cache_journal_always_checks;
          Alcotest.test_case "expiry boundary" `Quick test_cache_expiry_boundary;
          Alcotest.test_case "expired lease stores nothing" `Quick
            test_cache_expired_lease_stores_nothing;
          Alcotest.test_case "errors never cached" `Quick test_cache_errors_never_cached;
          Alcotest.test_case "invalidation per oid; flush clears" `Quick
            test_cache_invalidation_is_per_oid;
          Alcotest.test_case "keys are per credential" `Quick
            test_cache_keys_are_per_credential;
        ] );
    ]
