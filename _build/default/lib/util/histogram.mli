(** Fixed-bucket latency/size histogram with power-of-two buckets.

    Used by the disk simulator and the benchmark harness to summarise
    distributions without retaining every sample. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
val max_value : t -> float
val min_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in 0..100; approximate (bucket upper
    bound). 0 for an empty histogram. *)

val merge : t -> t -> t
val pp : Format.formatter -> t -> unit
