(* Tests for the comprehensive-versioning object store and cleaner. *)

module Simclock = S4_util.Simclock
module Rng = S4_util.Rng
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Log = S4_seglog.Log
module Entry = S4_store.Entry
module Store = S4_store.Obj_store
module Cleaner = S4_store.Cleaner

let check = Alcotest.check
let qtest = Qseed.qtest

let geom mb = Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(mb * 1024 * 1024)

let mk ?(mb = 64) ?(config = Store.default_config) () =
  let clock = Simclock.create () in
  let disk = Sim_disk.create ~geometry:(geom mb) clock in
  let log = Log.create disk in
  (clock, disk, log, Store.create ~config log)

let bytes_of = Bytes.of_string
let tick clock = Simclock.advance clock 1_000_000L (* 1 ms *)

let write_str st oid ~off s = Store.write st oid ~off ~data:(bytes_of s) ~len:(String.length s) ()
let read_str ?at st oid ~off ~len = Bytes.to_string (Store.read st ?at oid ~off ~len)

let no_errors st extra_live =
  match Store.check ~extra_live st with
  | [] -> ()
  | errs -> Alcotest.fail (String.concat "; " errs)

(* --- Entry codec ---------------------------------------------------- *)

let entry_roundtrip op =
  let e = { Entry.oid = 9L; seq = 3; time = 123456789L; op } in
  let e' = Entry.decode (Entry.to_jentry e) in
  check Alcotest.bool "roundtrip" true (e = e')

let test_entry_roundtrips () =
  entry_roundtrip Entry.Create;
  entry_roundtrip
    (Entry.Write { off = 100; len = 5000; old_size = 0; new_size = 5100; blocks = [ (0, 130, -1); (1, 131, 99) ] });
  entry_roundtrip (Entry.Truncate { old_size = 9000; new_size = 100; freed = [ (1, 131); (2, 140) ] });
  entry_roundtrip (Entry.Set_attr { old_attr = bytes_of "old"; new_attr = bytes_of "new" });
  entry_roundtrip (Entry.Set_acl { old_acl = Bytes.empty; new_acl = bytes_of "acl!" });
  entry_roundtrip (Entry.Delete { old_size = 42 });
  entry_roundtrip (Entry.Checkpoint { addrs = [ 1; 2; 3 ] });
  entry_roundtrip (Entry.Relocate { moves = [ (0, 128, 256); (-1, 300, 301) ] })

let test_entry_superseded_and_new () =
  let op = Entry.Write { off = 0; len = 8192; old_size = 8192; new_size = 8192; blocks = [ (0, 200, 150); (1, 201, -1) ] } in
  check (Alcotest.list Alcotest.int) "superseded" [ 150 ] (Entry.superseded_blocks op);
  check (Alcotest.list Alcotest.int) "new" [ 200; 201 ] (Entry.new_blocks op)

let test_entry_remap () =
  let op = Entry.Write { off = 0; len = 4096; old_size = 0; new_size = 4096; blocks = [ (0, 10, 5) ] } in
  match Entry.remap (fun a -> if a = 10 then 99 else a) op with
  | Entry.Write { blocks = [ (0, 99, 5) ]; _ } -> ()
  | _ -> Alcotest.fail "remap failed"

(* --- Basic object operations ---------------------------------------- *)

let test_create_read_write () =
  let _, _, _, st = mk () in
  let oid = Store.create_object st in
  check Alcotest.bool "exists" true (Store.exists st oid);
  check Alcotest.int "empty" 0 (Store.size st oid);
  write_str st oid ~off:0 "hello world";
  check Alcotest.int "size" 11 (Store.size st oid);
  check Alcotest.string "contents" "hello world" (read_str st oid ~off:0 ~len:11);
  check Alcotest.string "partial" "world" (read_str st oid ~off:6 ~len:100)

let test_overwrite () =
  let _, _, _, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 "aaaaaaaaaa";
  write_str st oid ~off:3 "BBB";
  check Alcotest.string "merged" "aaaBBBaaaa" (read_str st oid ~off:0 ~len:10)

let test_cross_block_write () =
  let _, _, _, st = mk () in
  let oid = Store.create_object st in
  let big = String.init 10_000 (fun i -> Char.chr (65 + (i mod 26))) in
  write_str st oid ~off:0 big;
  check Alcotest.string "big roundtrip" big (read_str st oid ~off:0 ~len:10_000);
  (* Unaligned write across a block boundary. *)
  write_str st oid ~off:4090 "0123456789AB";
  check Alcotest.string "straddles boundary" "0123456789AB" (read_str st oid ~off:4090 ~len:12);
  check Alcotest.string "prefix intact" (String.sub big 0 4090) (read_str st oid ~off:0 ~len:4090)

let test_sparse_holes_read_zero () =
  let _, _, _, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:10_000 "end";
  check Alcotest.int "size" 10_003 (Store.size st oid);
  check Alcotest.string "hole is zeros" (String.make 100 '\000') (read_str st oid ~off:100 ~len:100)

let test_append () =
  let _, _, _, st = mk () in
  let oid = Store.create_object st in
  Store.append st oid ~data:(bytes_of "one,") ~len:4 ();
  Store.append st oid ~data:(bytes_of "two") ~len:3 ();
  check Alcotest.string "appended" "one,two" (read_str st oid ~off:0 ~len:7)

let test_truncate () =
  let _, _, _, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 (String.make 9000 'x');
  Store.truncate st oid ~size:100;
  check Alcotest.int "shrunk" 100 (Store.size st oid);
  check Alcotest.string "kept prefix" (String.make 100 'x') (read_str st oid ~off:0 ~len:200);
  Store.truncate st oid ~size:200;
  check Alcotest.int "grown" 200 (Store.size st oid);
  check Alcotest.string "grown tail zeros" (String.make 100 '\000') (read_str st oid ~off:100 ~len:100)

let test_attrs_and_acl () =
  let _, _, _, st = mk () in
  let oid = Store.create_object st in
  Store.set_attr st oid (bytes_of "attr-v1");
  check Alcotest.string "attr" "attr-v1" (Bytes.to_string (Store.get_attr st oid));
  Store.set_acl_raw st oid (bytes_of "acl-v1");
  check Alcotest.string "acl" "acl-v1" (Bytes.to_string (Store.get_acl_raw st oid))

let test_delete_semantics () =
  let _, _, _, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 "precious";
  Store.delete_object st oid;
  check Alcotest.bool "gone" false (Store.exists st oid);
  check Alcotest.bool "write raises Is_deleted" true
    (try
       write_str st oid ~off:0 "nope";
       false
     with Store.Is_deleted _ -> true);
  check Alcotest.bool "delete twice raises" true
    (try
       Store.delete_object st oid;
       false
     with Store.Is_deleted _ -> true)

let test_no_such_object () =
  let _, _, _, st = mk () in
  check Alcotest.bool "read unknown raises" true
    (try
       ignore (Store.read st 999L ~off:0 ~len:1);
       false
     with Store.No_such_object 999L -> true)

let test_list_objects () =
  let _, _, _, st = mk () in
  let a = Store.create_object st in
  let b = Store.create_object st in
  Store.delete_object st a;
  check (Alcotest.list Alcotest.int64) "existing" [ b ] (Store.list_objects st);
  check (Alcotest.list Alcotest.int64) "all" [ a; b ] (Store.list_all st)

(* --- Versioning: the heart of S4 ------------------------------------ *)

let test_time_based_read () =
  let clock, _, _, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 "version-1";
  let t1 = Simclock.now clock in
  tick clock;
  write_str st oid ~off:0 "version-2";
  let t2 = Simclock.now clock in
  tick clock;
  write_str st oid ~off:0 "version-3";
  check Alcotest.string "current" "version-3" (read_str st oid ~off:0 ~len:9);
  check Alcotest.string "at t1" "version-1" (read_str ~at:t1 st oid ~off:0 ~len:9);
  check Alcotest.string "at t2" "version-2" (read_str ~at:t2 st oid ~off:0 ~len:9)

let test_every_modification_is_a_version () =
  (* Unlike close-to-open versioning file systems, S4 keeps one version
     per modification. *)
  let clock, _, _, st = mk () in
  let oid = Store.create_object st in
  let times = ref [] in
  for i = 0 to 9 do
    write_str st oid ~off:0 (Printf.sprintf "v%02d" i);
    times := Simclock.now clock :: !times;
    tick clock
  done;
  List.iteri
    (fun back at ->
      let i = 9 - back in
      check Alcotest.string (Printf.sprintf "version %d" i) (Printf.sprintf "v%02d" i)
        (read_str ~at st oid ~off:0 ~len:3))
    !times;
  check Alcotest.int "10 write versions" 11 (List.length (Store.versions st oid))
(* 10 writes + create *)

let test_version_of_size_changes () =
  let clock, _, _, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 (String.make 5000 'a');
  let t_big = Simclock.now clock in
  tick clock;
  Store.truncate st oid ~size:10;
  check Alcotest.int "current small" 10 (Store.size st oid);
  check Alcotest.int "was big" 5000 (Store.size ~at:t_big st oid);
  check Alcotest.string "old tail readable" (String.make 100 'a')
    (read_str ~at:t_big st oid ~off:4000 ~len:100)

let test_deleted_object_history_readable () =
  let clock, _, _, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 "exploit-tool-source";
  let t = Simclock.now clock in
  tick clock;
  Store.delete_object st oid;
  check Alcotest.bool "gone now" false (Store.exists st oid);
  check Alcotest.bool "existed then" true (Store.exists ~at:t st oid);
  check Alcotest.string "history read" "exploit-tool-source" (read_str ~at:t st oid ~off:0 ~len:19)

let test_attr_history () =
  let clock, _, _, st = mk () in
  let oid = Store.create_object st in
  Store.set_attr st oid (bytes_of "mode=0644");
  let t = Simclock.now clock in
  tick clock;
  Store.set_attr st oid (bytes_of "mode=4755");
  check Alcotest.string "old attr" "mode=0644" (Bytes.to_string (Store.get_attr ~at:t st oid));
  check Alcotest.string "new attr" "mode=4755" (Bytes.to_string (Store.get_attr st oid))

let test_before_creation_not_found () =
  let clock, _, _, st = mk () in
  tick clock;
  let t_before = Simclock.now clock in
  tick clock;
  let oid = Store.create_object st in
  check Alcotest.bool "not there yet" false (Store.exists ~at:t_before st oid);
  check Alcotest.bool "read raises" true
    (try
       ignore (Store.read ~at:t_before st oid ~off:0 ~len:1);
       false
     with Store.No_such_object _ -> true)

let test_overwrite_mid_file_history () =
  let clock, _, _, st = mk () in
  let oid = Store.create_object st in
  let original = String.init 12_288 (fun i -> Char.chr (97 + (i mod 26))) in
  write_str st oid ~off:0 original;
  let t = Simclock.now clock in
  tick clock;
  write_str st oid ~off:5000 (String.make 2000 '!');
  check Alcotest.string "old version intact" original (read_str ~at:t st oid ~off:0 ~len:12_288);
  let now = read_str st oid ~off:0 ~len:12_288 in
  check Alcotest.string "new version edited" (String.make 2000 '!') (String.sub now 5000 2000);
  check Alcotest.string "outside edit untouched" (String.sub original 0 5000) (String.sub now 0 5000)

(* --- Sync and durability -------------------------------------------- *)

let test_sync_writes_journal () =
  let _, _, log, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 "data";
  let before = (Log.stats log).Log.blocks_flushed in
  Store.sync st;
  check Alcotest.bool "flushed blocks" true ((Log.stats log).Log.blocks_flushed > before);
  check Alcotest.bool "journal written" true ((Store.stats st).Store.journal_blocks_written > 0)

let test_invariants_after_workload () =
  let clock, _, _, st = mk () in
  let rng = Rng.create ~seed:1234 in
  let oids = Array.init 20 (fun _ -> Store.create_object st) in
  for _ = 1 to 300 do
    let oid = Rng.pick rng oids in
    (match Rng.int rng 5 with
     | 0 -> write_str st oid ~off:(Rng.int rng 5000) (String.make (1 + Rng.int rng 3000) 'w')
     | 1 -> Store.append st oid ~data:(Bytes.make 100 'a') ~len:100 ()
     | 2 -> Store.truncate st oid ~size:(Rng.int rng 8000)
     | 3 -> Store.set_attr st oid (Bytes.make (Rng.int rng 64) 'x')
     | _ -> ignore (Store.read st oid ~off:0 ~len:2000));
    tick clock
  done;
  Store.sync st;
  no_errors st []

(* --- Checkpoints ----------------------------------------------------- *)

let test_explicit_checkpoint () =
  let _, _, _, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 "some data";
  Store.checkpoint_object st oid;
  Store.sync st;
  check Alcotest.bool "checkpoint blocks written" true
    ((Store.stats st).Store.checkpoint_blocks_written > 0);
  no_errors st []

let test_auto_checkpoint_on_interval () =
  let config = { Store.default_config with checkpoint_interval = 10 } in
  let _, _, _, st = mk ~config () in
  let oid = Store.create_object st in
  for _ = 1 to 25 do
    write_str st oid ~off:0 "x"
  done;
  (* Small images are packed and reach the log at the next sync. *)
  Store.sync st;
  check Alcotest.bool "auto checkpointed" true ((Store.stats st).Store.checkpoint_blocks_written >= 1)

(* --- Expiration ------------------------------------------------------ *)

let test_expire_frees_history () =
  let clock, _, log, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 (String.make 8192 'a');
  tick clock;
  write_str st oid ~off:0 (String.make 8192 'b');
  Store.sync st;
  let live_before = Log.live_blocks log in
  tick clock;
  Store.expire st ~cutoff:(Simclock.now clock);
  Store.sync st;
  check Alcotest.bool "blocks freed" true (Log.live_blocks log < live_before);
  check Alcotest.string "current survives" (String.make 10 'b') (read_str st oid ~off:0 ~len:10);
  no_errors st []

let test_expire_respects_window () =
  let clock, _, _, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 "v1";
  let t1 = Simclock.now clock in
  Simclock.advance clock 10_000_000L;
  write_str st oid ~off:0 "v2";
  Store.sync st;
  (* cutoff before v1: nothing should be reclaimed *)
  Store.expire st ~cutoff:t1;
  check Alcotest.string "v1 still readable" "v1" (read_str ~at:t1 st oid ~off:0 ~len:2);
  no_errors st []

let test_expire_deleted_object_disappears () =
  let clock, _, _, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 "temp";
  tick clock;
  Store.delete_object st oid;
  Store.sync st;
  tick clock;
  Store.expire st ~cutoff:(Simclock.now clock);
  check Alcotest.bool "object fully forgotten" true
    (try
       ignore (Store.journal st oid);
       false
     with Store.No_such_object _ -> true);
  check Alcotest.bool "expired count" true ((Store.stats st).Store.objects_expired = 1);
  no_errors st []

let test_expire_keeps_checkpoint_reachable () =
  let clock, disk, _, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 "cold data";
  Store.sync st;
  Simclock.advance clock 1_000_000_000L;
  Store.expire st ~cutoff:(Simclock.now clock);
  Store.sync st;
  (* The object is cold: its whole journal expired, so its state must
     be held by a self-identifying checkpoint image — prove it by
     crash-recovering from disk alone. *)
  check Alcotest.string "data intact" "cold data" (read_str st oid ~off:0 ~len:9);
  no_errors st [];
  let st2 = Store.recover (Log.reattach disk) in
  check Alcotest.string "cold object survives recovery" "cold data"
    (read_str st2 oid ~off:0 ~len:9)

(* --- Cleaner --------------------------------------------------------- *)

let test_cleaner_run_reclaims () =
  let clock, _, log, st = mk ~mb:16 () in
  let cleaner = Cleaner.create ~window:0L st in
  let oid = Store.create_object st in
  (* Churn enough data to fill segments, overwriting so history builds. *)
  for _ = 1 to 40 do
    write_str st oid ~off:0 (String.make 40_000 'c');
    Store.sync st;
    tick clock
  done;
  let free_before = Log.free_segments log in
  let report = Cleaner.run cleaner in
  check Alcotest.bool "expired something" true (report.Cleaner.expired_blocks > 0);
  check Alcotest.bool "freed space" true (Log.free_segments log >= free_before);
  no_errors st []

let test_cleaner_compaction_moves_blocks () =
  let clock, _, log, st = mk ~mb:16 () in
  let cleaner = Cleaner.create ~window:0L ~live_threshold:0.95 ~max_segments_per_run:64 st in
  let oids = Array.init 8 (fun _ -> Store.create_object st) in
  (* Round 1 writes everything interleaved; later rounds churn only the
     odd objects, so early segments end up sparsely live (the even
     objects' blocks survive there) — compaction victims. *)
  let fill round oid =
    write_str st oid ~off:0 (String.make 20_000 (Char.chr (65 + (round mod 26))))
  in
  Array.iter (fill 1) oids;
  Store.sync st;
  tick clock;
  for round = 2 to 30 do
    Array.iteri (fun i oid -> if i mod 2 = 1 then fill round oid) oids;
    Store.sync st;
    tick clock
  done;
  tick clock;
  let report = Cleaner.run cleaner in
  check Alcotest.bool "compacted segments" true (report.Cleaner.segments_compacted > 0);
  check Alcotest.bool "moved blocks" true (report.Cleaner.blocks_moved > 0);
  (* Data still correct after relocation. *)
  Array.iteri
    (fun i oid ->
      check Alcotest.int "size intact" 20_000 (Store.size st oid);
      let expected = if i mod 2 = 1 then Char.chr (65 + (30 mod 26)) else 'B' in
      check Alcotest.string "content intact" (String.make 50 expected)
        (read_str st oid ~off:1000 ~len:50))
    oids;
  ignore log;
  no_errors st []

let test_cleaner_uncharged_costs_nothing () =
  let clock, _, _, st = mk ~mb:16 () in
  let cleaner = Cleaner.create ~window:0L st in
  Cleaner.set_charged cleaner false;
  let oid = Store.create_object st in
  for _ = 1 to 20 do
    write_str st oid ~off:0 (String.make 30_000 'u');
    Store.sync st;
    tick clock
  done;
  let t = Simclock.now clock in
  ignore (Cleaner.run cleaner);
  check Alcotest.int64 "no simulated time consumed" t (Simclock.now clock);
  no_errors st []

let test_cleaner_overlapped_mode () =
  (* With ample idle credit, overlapped cleaning is free; with none, it
     costs like charged cleaning. *)
  let run idle =
    let clock, _, _, st = mk ~mb:16 () in
    let cleaner = Cleaner.create ~window:0L ~live_threshold:0.95 ~max_segments_per_run:64 st in
    Cleaner.set_mode cleaner Cleaner.Overlapped;
    let oid = Store.create_object st in
    for _ = 1 to 20 do
      write_str st oid ~off:0 (String.make 30_000 'o');
      Store.sync st;
      tick clock
    done;
    let t0 = Simclock.now clock in
    ignore (Cleaner.run ~idle_ns:idle cleaner);
    Int64.sub (Simclock.now clock) t0
  in
  let free_cost = run Int64.max_int in
  let full_cost = run 0L in
  check Alcotest.int64 "fully absorbed by idle time" 0L free_cost;
  check Alcotest.bool "charged when no idle" true (Int64.compare full_cost 0L > 0)

let test_cleaner_window_accessors () =
  let _, _, _, st = mk () in
  let c = Cleaner.create st in
  Cleaner.set_window c 123L;
  check Alcotest.int64 "window" 123L (Cleaner.window c);
  check Alcotest.bool "negative rejected" true
    (try
       Cleaner.set_window c (-1L);
       false
     with Invalid_argument _ -> true)

let test_cleaner_differencing_measurement () =
  let clock, _, _, st = mk () in
  let oid = Store.create_object st in
  (* Successive versions share most content: differencing should shrink
     the history pool a lot. *)
  let base = String.init 8192 (fun i -> Char.chr (97 + (i mod 26))) in
  write_str st oid ~off:0 base;
  for i = 1 to 5 do
    tick clock;
    write_str st oid ~off:(i * 10) "EDIT"
  done;
  Store.sync st;
  let c = Cleaner.create st in
  let d = Cleaner.measure_differencing c in
  check Alcotest.bool "history exists" true (d.Cleaner.history_blocks > 0);
  check Alcotest.bool "differencing shrinks >3x" true
    (d.Cleaner.delta_bytes * 3 < d.Cleaner.history_bytes);
  check Alcotest.bool "compression not larger" true
    (d.Cleaner.delta_compressed_bytes <= d.Cleaner.delta_bytes * 2)

(* --- Crash recovery --------------------------------------------------- *)

let test_recover_basic () =
  let clock, disk, _, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 "survives crashes";
  Store.set_attr st oid (bytes_of "mode=0600");
  Store.checkpoint_object st oid;
  Store.sync st;
  tick clock;
  (* Crash: rebuild everything from disk contents. *)
  let log2 = Log.reattach disk in
  let st2 = Store.recover log2 in
  check Alcotest.string "data recovered" "survives crashes" (read_str st2 oid ~off:0 ~len:16);
  check Alcotest.string "attr recovered" "mode=0600" (Bytes.to_string (Store.get_attr st2 oid));
  no_errors st2 []

let test_recover_without_checkpoint () =
  let _, disk, _, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 "journal only";
  Store.sync st;
  let st2 = Store.recover (Log.reattach disk) in
  check Alcotest.string "rebuilt from journal" "journal only" (read_str st2 oid ~off:0 ~len:12)

let test_recover_loses_unsynced () =
  let _, disk, _, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 "synced";
  Store.sync st;
  write_str st oid ~off:0 "UNSYNC";
  (* no sync before crash *)
  let st2 = Store.recover (Log.reattach disk) in
  check Alcotest.string "pre-crash state" "synced" (read_str st2 oid ~off:0 ~len:6)

let test_recover_history_access () =
  let clock, disk, _, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 "gen-one";
  let t1 = Simclock.now clock in
  tick clock;
  write_str st oid ~off:0 "gen-two";
  Store.sync st;
  let st2 = Store.recover (Log.reattach disk) in
  check Alcotest.string "old version after recovery" "gen-one" (read_str ~at:t1 st2 oid ~off:0 ~len:7);
  check Alcotest.string "current after recovery" "gen-two" (read_str st2 oid ~off:0 ~len:7)

let test_recover_deleted_object () =
  let clock, disk, _, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 "to be deleted";
  let t = Simclock.now clock in
  tick clock;
  Store.delete_object st oid;
  Store.sync st;
  let st2 = Store.recover (Log.reattach disk) in
  check Alcotest.bool "still deleted" false (Store.exists st2 oid);
  check Alcotest.string "history still there" "to be deleted" (read_str ~at:t st2 oid ~off:0 ~len:13)

let test_recover_after_compaction () =
  let clock, disk, _, st = mk ~mb:16 () in
  let cleaner = Cleaner.create ~window:0L ~live_threshold:0.95 ~max_segments_per_run:64 st in
  let oids = Array.init 4 (fun _ -> Store.create_object st) in
  for round = 1 to 20 do
    Array.iter
      (fun oid -> write_str st oid ~off:0 (String.make 15_000 (Char.chr (97 + (round mod 26)))))
      oids;
    Store.sync st;
    tick clock
  done;
  tick clock;
  ignore (Cleaner.run cleaner);
  Store.sync st;
  let st2 = Store.recover (Log.reattach disk) in
  Array.iter
    (fun oid ->
      check Alcotest.int "size recovered" 15_000 (Store.size st2 oid);
      check Alcotest.string "content recovered"
        (String.make 100 (Char.chr (97 + (20 mod 26))))
        (read_str st2 oid ~off:0 ~len:100))
    oids

let test_recover_oid_counter () =
  let _, disk, _, st = mk () in
  let a = Store.create_object st in
  Store.sync st;
  let st2 = Store.recover (Log.reattach disk) in
  let b = Store.create_object st2 in
  check Alcotest.bool "fresh oid distinct" true (Int64.compare b a > 0)

(* --- Property tests --------------------------------------------------- *)

let prop_random_workload_invariants =
  QCheck.Test.make ~name:"invariants hold under random op sequences" ~count:30
    QCheck.(pair small_int (list (pair (int_bound 4) (pair small_nat small_nat))))
    (fun (seed, ops) ->
      let clock, _, _, st = mk ~mb:32 () in
      let rng = Rng.create ~seed in
      let oids = Array.init 5 (fun _ -> Store.create_object st) in
      List.iter
        (fun (kind, (a, b)) ->
          let oid = oids.(Rng.int rng 5) in
          (try
             match kind with
             | 0 ->
               let len = 1 + (b mod 6000) in
               Store.write st oid ~off:(a mod 10_000) ~data:(Bytes.make len 'p') ~len ()
             | 1 -> Store.truncate st oid ~size:(a mod 12_000)
             | 2 -> Store.set_attr st oid (Bytes.make (a mod 32) 'q')
             | 3 -> ignore (Store.read st oid ~off:(a mod 4096) ~len:(b mod 4096))
             | _ -> Store.sync st
           with Store.Is_deleted _ -> ());
          tick clock)
        ops;
      Store.sync st;
      Store.check st = [])

let prop_time_travel_write_read =
  QCheck.Test.make ~name:"any recorded version is exactly re-readable" ~count:25
    QCheck.(list_of_size Gen.(1 -- 12) (pair (int_bound 6000) (int_bound 2000)))
    (fun writes ->
      let clock, _, _, st = mk () in
      let oid = Store.create_object st in
      (* Shadow model: byte array tracking expected contents. *)
      let shadow = Bytes.make 16_384 '\000' in
      let size = ref 0 in
      let snapshots =
        List.mapi
          (fun i (off, len) ->
            let len = 1 + len in
            let c = Char.chr (65 + (i mod 26)) in
            Store.write st oid ~off ~data:(Bytes.make len c) ~len ();
            Bytes.fill shadow off len c;
            size := max !size (off + len);
            let snap = (Simclock.now clock, Bytes.sub shadow 0 !size) in
            tick clock;
            snap)
          writes
      in
      Store.sync st;
      List.for_all
        (fun (at, expected) ->
          let got = Store.read st ~at oid ~off:0 ~len:(Bytes.length expected) in
          Bytes.equal got expected && Store.size st ~at oid = Bytes.length expected)
        snapshots)

let prop_expire_never_touches_window =
  QCheck.Test.make ~name:"expire preserves all versions within the window" ~count:20
    QCheck.(list_of_size Gen.(2 -- 10) (int_bound 1000))
    (fun lens ->
      let clock, _, _, st = mk () in
      QCheck.assume (lens <> []);
      let oid = Store.create_object st in
      let max_size = ref 0 in
      let snaps =
        List.mapi
          (fun i len ->
            let len = 1 + len in
            let c = Char.chr (97 + (i mod 26)) in
            Store.write st oid ~off:0 ~data:(Bytes.make len c) ~len ();
            max_size := max !max_size len;
            (* writes never shrink: expected size is the running max *)
            let s = (Simclock.now clock, c, !max_size) in
            Simclock.advance clock 1_000_000L;
            s)
          lens
      in
      Store.sync st;
      (* Expire with a cutoff placed in the middle of the history. *)
      let n = List.length snaps in
      let mid_time, _, _ = List.nth snaps (n / 2) in
      Store.expire st ~cutoff:mid_time;
      Store.sync st;
      List.for_all
        (fun (at, c, len) ->
          if Int64.compare at mid_time >= 0 then begin
            let got = Store.read st ~at oid ~off:0 ~len:1 in
            Bytes.length got = 1 && Bytes.get got 0 = c && Store.size st ~at oid = len
          end
          else true)
        snaps
      && Store.check st = [])

(* --- Packed checkpoints and failure injection ------------------------- *)

let test_packed_checkpoints_share_blocks () =
  (* Many small objects checkpointed together must land in far fewer
     pack blocks than objects. *)
  let _, _, _, st = mk () in
  let oids = List.init 40 (fun _ -> Store.create_object st) in
  List.iter (fun oid -> write_str st oid ~off:0 "tiny") oids;
  List.iter (fun oid -> Store.checkpoint_object st oid) oids;
  Store.sync st;
  let blocks = (Store.stats st).Store.checkpoint_blocks_written in
  check Alcotest.bool "packed (<= 40/4 blocks)" true (blocks > 0 && blocks <= 10);
  no_errors st []

let test_pack_refcount_churn () =
  (* Re-checkpointing objects releases their old pack slots; packs die
     when the last member leaves. *)
  let clock, _, log, st = mk () in
  let oids = List.init 12 (fun _ -> Store.create_object st) in
  List.iter (fun oid -> write_str st oid ~off:0 "v1") oids;
  List.iter (Store.checkpoint_object st) oids;
  Store.sync st;
  let live1 = Log.live_blocks log in
  for round = 1 to 5 do
    List.iter (fun oid -> write_str st oid ~off:0 (Printf.sprintf "v%d" round)) oids;
    List.iter (Store.checkpoint_object st) oids;
    Store.sync st;
    tick clock
  done;
  (* Expire old versions: superseded packs must be reclaimed too. *)
  Store.expire st ~cutoff:(Simclock.now clock);
  Store.sync st;
  no_errors st [];
  check Alcotest.bool "no pack leak" true (Log.live_blocks log < live1 + 12 * 3)

let test_large_object_dedicated_checkpoint () =
  (* An object with a big block table exceeds the pack threshold and
     gets a dedicated multi-block image; it must survive a crash. *)
  let _, disk, _, st = mk ~mb:128 () in
  let oid = Store.create_object st in
  (* ~8 MB file -> 2048-entry table -> multi-KB image. *)
  Store.write st oid ~off:0 ~data:(Bytes.make 100 'h') ~len:100 ();
  Store.write st oid ~off:(8 * 1024 * 1024) ~data:(Bytes.make 4096 't') ~len:4096 ();
  Store.checkpoint_object st oid;
  Store.sync st;
  no_errors st [];
  (* Recover purely from disk: expire everything first so the journal
     cannot help. *)
  let clock = Store.clock st in
  Simclock.advance clock 1_000_000_000L;
  Store.expire st ~cutoff:(Simclock.now clock);
  Store.sync st;
  no_errors st [];
  let st2 = Store.recover (Log.reattach disk) in
  check Alcotest.int "size recovered" (8 * 1024 * 1024 + 4096) (Store.size st2 oid);
  check Alcotest.string "head recovered" (String.make 100 'h') (read_str st2 oid ~off:0 ~len:100);
  check Alcotest.string "tail recovered" (String.make 50 't')
    (read_str st2 oid ~off:(8 * 1024 * 1024) ~len:50)

let test_corrupt_journal_block_skipped () =
  (* A corrupted journal block must not crash recovery; unaffected
     objects recover fine. *)
  let _, disk, log, st = mk () in
  let a = Store.create_object st in
  write_str st a ~off:0 "object a";
  Store.sync st;
  let b = Store.create_object st in
  write_str st b ~off:0 "object b";
  Store.checkpoint_object st a;
  Store.checkpoint_object st b;
  Store.sync st;
  (* Find a journal block on disk and flip a byte. *)
  let jaddrs =
    List.filter_map
      (fun (addr, tag) -> match tag with S4_seglog.Tag.Journal -> Some addr | _ -> None)
      (Log.all_tagged log)
  in
  check Alcotest.bool "journal blocks exist" true (jaddrs <> []);
  let victim = List.hd jaddrs in
  let lba = victim * 8 in
  let sector = Sim_disk.peek disk ~lba ~sectors:1 in
  Bytes.set sector 7 (Char.chr (Char.code (Bytes.get sector 7) lxor 0xFF));
  Sim_disk.poke disk ~lba ~data:sector;
  let st2 = Store.recover (Log.reattach disk) in
  (* Both objects survive via their checkpoint images even though some
     journal history was lost to corruption. *)
  check Alcotest.string "a recovered" "object a" (read_str st2 a ~off:0 ~len:8);
  check Alcotest.string "b recovered" "object b" (read_str st2 b ~off:0 ~len:8)

let test_corrupt_pack_block_skipped () =
  let _, disk, log, st = mk () in
  let oid = Store.create_object st in
  write_str st oid ~off:0 "packable";
  Store.checkpoint_object st oid;
  Store.sync st;
  let packs =
    List.filter_map
      (fun (addr, tag) -> match tag with S4_seglog.Tag.Ckpack -> Some addr | _ -> None)
      (Log.all_tagged log)
  in
  check Alcotest.bool "pack exists" true (packs <> []);
  let lba = List.hd packs * 8 in
  let sector = Sim_disk.peek disk ~lba ~sectors:1 in
  Bytes.set sector 3 'X';
  Sim_disk.poke disk ~lba ~data:sector;
  (* Recovery must not raise; the journal still rebuilds the object. *)
  let st2 = Store.recover (Log.reattach disk) in
  check Alcotest.string "rebuilt from journal" "packable" (read_str st2 oid ~off:0 ~len:8)

let prop_crash_recovery_equivalence =
  QCheck.Test.make ~name:"synced state survives crash recovery exactly" ~count:15
    QCheck.(pair small_int (list_of_size Gen.(1 -- 25) (pair (int_bound 5) (pair small_nat small_nat))))
    (fun (seed, ops) ->
      let clock, disk, _, st = mk ~mb:64 () in
      let rng = Rng.create ~seed in
      let oids = Array.init 4 (fun _ -> Store.create_object st) in
      List.iter
        (fun (kind, (a, b)) ->
          let oid = oids.(Rng.int rng 4) in
          (try
             match kind with
             | 0 | 1 ->
               let len = 1 + (b mod 5000) in
               Store.write st oid ~off:(a mod 9000)
                 ~data:(Bytes.make len (Char.chr (33 + (b mod 90))))
                 ~len ()
             | 2 -> Store.truncate st oid ~size:(a mod 10_000)
             | 3 -> Store.set_attr st oid (Bytes.make (a mod 40) 'q')
             | 4 -> Store.delete_object st oid
             | _ -> Store.checkpoint_object st oid
           with Store.Is_deleted _ -> ());
          tick clock)
        ops;
      Store.sync st;
      let st2 = Store.recover (Log.reattach disk) in
      Array.for_all
        (fun oid ->
          let ex1 = Store.exists st oid and ex2 = Store.exists st2 oid in
          ex1 = ex2
          &&
          if not ex1 then true
          else begin
            let s1 = Store.size st oid and s2 = Store.size st2 oid in
            s1 = s2
            && Bytes.equal (Store.read st oid ~off:0 ~len:s1) (Store.read st2 oid ~off:0 ~len:s2)
            && Bytes.equal (Store.get_attr st oid) (Store.get_attr st2 oid)
          end)
        oids
      && Store.check st2 = [])

let prop_cleaner_never_loses_in_window_versions =
  (* The headline security property, under active cleaning with
     compaction: every version still inside the detection window stays
     byte-exact no matter how hard the cleaner works. *)
  QCheck.Test.make ~name:"cleaner preserves every in-window version" ~count:10
    QCheck.(pair small_int (list_of_size Gen.(10 -- 30) (pair (int_bound 3) (int_bound 2000))))
    (fun (seed, ops) ->
      let clock, _, _, st = mk ~mb:24 () in
      let window = 50_000_000L (* 50 simulated ms *) in
      let cleaner = Cleaner.create ~window ~live_threshold:0.95 ~max_segments_per_run:8 st in
      ignore seed;
      let oids = Array.init 3 (fun _ -> Store.create_object st) in
      let recorded = ref [] in
      List.iteri
        (fun i (oid_pick, len) ->
          let oid = oids.(oid_pick mod 3) in
          let len = 1 + len in
          let c = Char.chr (33 + (i mod 90)) in
          Store.write st oid ~off:0 ~data:(Bytes.make len c) ~len ();
          recorded := (Simclock.now clock, oid, c, len) :: !recorded;
          Simclock.advance clock 2_000_000L;
          if i mod 5 = 0 then begin
            Store.sync st;
            ignore (Cleaner.run cleaner)
          end)
        ops;
      Store.sync st;
      ignore (Cleaner.run cleaner);
      let cutoff = Cleaner.cutoff cleaner in
      List.for_all
        (fun (at, oid, c, len) ->
          if Int64.compare at cutoff < 0 then true
          else begin
            let b = Store.read st ~at oid ~off:0 ~len:1 in
            Bytes.length b = 1 && Bytes.get b 0 = c && Store.size st ~at oid >= len
          end)
        !recorded
      && Store.check st = [])

let () =
  Alcotest.run "s4_store"
    [
      ( "entry",
        [
          Alcotest.test_case "roundtrips" `Quick test_entry_roundtrips;
          Alcotest.test_case "superseded/new" `Quick test_entry_superseded_and_new;
          Alcotest.test_case "remap" `Quick test_entry_remap;
        ] );
      ( "basic",
        [
          Alcotest.test_case "create/read/write" `Quick test_create_read_write;
          Alcotest.test_case "overwrite" `Quick test_overwrite;
          Alcotest.test_case "cross-block write" `Quick test_cross_block_write;
          Alcotest.test_case "sparse holes" `Quick test_sparse_holes_read_zero;
          Alcotest.test_case "append" `Quick test_append;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "attrs and acl" `Quick test_attrs_and_acl;
          Alcotest.test_case "delete semantics" `Quick test_delete_semantics;
          Alcotest.test_case "no such object" `Quick test_no_such_object;
          Alcotest.test_case "list objects" `Quick test_list_objects;
        ] );
      ( "versioning",
        [
          Alcotest.test_case "time-based read" `Quick test_time_based_read;
          Alcotest.test_case "version per modification" `Quick test_every_modification_is_a_version;
          Alcotest.test_case "size history" `Quick test_version_of_size_changes;
          Alcotest.test_case "deleted history readable" `Quick test_deleted_object_history_readable;
          Alcotest.test_case "attr history" `Quick test_attr_history;
          Alcotest.test_case "before creation" `Quick test_before_creation_not_found;
          Alcotest.test_case "mid-file overwrite history" `Quick test_overwrite_mid_file_history;
        ] );
      ( "durability",
        [
          Alcotest.test_case "sync writes journal" `Quick test_sync_writes_journal;
          Alcotest.test_case "invariants after workload" `Quick test_invariants_after_workload;
          Alcotest.test_case "explicit checkpoint" `Quick test_explicit_checkpoint;
          Alcotest.test_case "auto checkpoint" `Quick test_auto_checkpoint_on_interval;
        ] );
      ( "expiration",
        [
          Alcotest.test_case "frees history" `Quick test_expire_frees_history;
          Alcotest.test_case "respects window" `Quick test_expire_respects_window;
          Alcotest.test_case "deleted object disappears" `Quick test_expire_deleted_object_disappears;
          Alcotest.test_case "checkpoint reachable" `Quick test_expire_keeps_checkpoint_reachable;
        ] );
      ( "cleaner",
        [
          Alcotest.test_case "run reclaims" `Quick test_cleaner_run_reclaims;
          Alcotest.test_case "compaction moves blocks" `Quick test_cleaner_compaction_moves_blocks;
          Alcotest.test_case "uncharged is free" `Quick test_cleaner_uncharged_costs_nothing;
          Alcotest.test_case "overlapped mode" `Quick test_cleaner_overlapped_mode;
          Alcotest.test_case "window accessors" `Quick test_cleaner_window_accessors;
          Alcotest.test_case "differencing measurement" `Quick test_cleaner_differencing_measurement;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "basic" `Quick test_recover_basic;
          Alcotest.test_case "journal only" `Quick test_recover_without_checkpoint;
          Alcotest.test_case "unsynced lost" `Quick test_recover_loses_unsynced;
          Alcotest.test_case "history access" `Quick test_recover_history_access;
          Alcotest.test_case "deleted object" `Quick test_recover_deleted_object;
          Alcotest.test_case "after compaction" `Quick test_recover_after_compaction;
          Alcotest.test_case "oid counter" `Quick test_recover_oid_counter;
        ] );
      ( "checkpoints",
        [
          Alcotest.test_case "packing shares blocks" `Quick test_packed_checkpoints_share_blocks;
          Alcotest.test_case "pack refcount churn" `Quick test_pack_refcount_churn;
          Alcotest.test_case "large object chunks" `Quick test_large_object_dedicated_checkpoint;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "corrupt journal block" `Quick test_corrupt_journal_block_skipped;
          Alcotest.test_case "corrupt pack block" `Quick test_corrupt_pack_block_skipped;
        ] );
      ( "properties",
        [
          qtest prop_random_workload_invariants;
          qtest prop_time_travel_write_read;
          qtest prop_expire_never_touches_window;
          qtest prop_crash_recovery_equivalence;
          qtest prop_cleaner_never_loses_in_window_versions;
        ] );
    ]
