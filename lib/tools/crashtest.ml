module Rng = S4_util.Rng
module Simclock = S4_util.Simclock
module Bcodec = S4_util.Bcodec
module Crc32 = S4_util.Crc32
module Chain = S4_integrity.Chain
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Fault = S4_disk.Fault
module Log = S4_seglog.Log
module Store = S4_store.Obj_store
module Drive = S4.Drive
module Rpc = S4.Rpc
module Audit = S4.Audit
module Mirror = S4_multi.Mirror
module Router = S4_shard.Router
module Trace = S4_obs.Trace
module Check = S4_obs.Check

type report = {
  seed : int;
  crash_after : int;
  crashed : bool;
  ops_before_crash : int;
  snapshots : int;
  audit_checked : int;
  violations : string list;
}

let cred = Rpc.admin_cred
let geom = Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(16 * 1024 * 1024)
let default_ops = 80

(* ------------------------------------------------------------------ *)
(* Oracle: an independent model of what the store should hold.        *)

type oobj = { mutable contents : Bytes.t; mutable attr : Bytes.t; mutable alive : bool }

type snapshot = {
  at : int64;  (* sync completion time; versions here must survive *)
  live : (int64 * Bytes.t * Bytes.t) list;  (* oid, contents, attr *)
  dead : int64 list;
}

type audit_entry = { a_op : string; a_oid : int64; a_ok : bool }

type oracle = {
  objects : (int64, oobj) Hashtbl.t;
  mutable order : int64 list;  (* creation order, newest first *)
  mutable audit_log : audit_entry list;  (* newest first *)
  mutable snaps : snapshot list;  (* newest first *)
}

let fresh_oracle () =
  { objects = Hashtbl.create 64; order = []; audit_log = []; snaps = [] }

let live_oids o =
  List.rev o.order |> List.filter (fun oid -> (Hashtbl.find o.objects oid).alive)

let zero_extend b n =
  if Bytes.length b >= n then b
  else begin
    let out = Bytes.make n '\000' in
    Bytes.blit b 0 out 0 (Bytes.length b);
    out
  end

let oid_of : Rpc.req -> int64 = function
  | Rpc.Delete { oid }
  | Rpc.Read { oid; _ }
  | Rpc.Write { oid; _ }
  | Rpc.Append { oid; _ }
  | Rpc.Truncate { oid; _ }
  | Rpc.Get_attr { oid; _ }
  | Rpc.Set_attr { oid; _ } ->
    oid
  | _ -> 0L

(* Mirror the store's mutation semantics for the ops the workload
   issues. Only called when the drive accepted the request. *)
let o_apply o req resp =
  let find oid = Hashtbl.find o.objects oid in
  match (req, resp) with
  | Rpc.Create _, Rpc.R_oid oid ->
    Hashtbl.replace o.objects oid { contents = Bytes.empty; attr = Bytes.empty; alive = true };
    o.order <- oid :: o.order
  | Rpc.Delete { oid }, Rpc.R_unit -> (find oid).alive <- false
  | Rpc.Write { oid; off; len; data }, Rpc.R_unit ->
    let ob = find oid in
    let data = match data with Some d -> d | None -> Bytes.make len '\000' in
    let b = zero_extend ob.contents (off + len) in
    Bytes.blit data 0 b off len;
    ob.contents <- b
  | Rpc.Append { oid; len; data }, Rpc.R_unit ->
    let ob = find oid in
    let data = match data with Some d -> d | None -> Bytes.make len '\000' in
    ob.contents <- Bytes.cat ob.contents data
  | Rpc.Truncate { oid; size }, Rpc.R_unit ->
    let ob = find oid in
    ob.contents <-
      (if size <= Bytes.length ob.contents then Bytes.sub ob.contents 0 size
       else zero_extend ob.contents size)
  | Rpc.Set_attr { oid; attr }, Rpc.R_unit -> (find oid).attr <- Bytes.copy attr
  | _ -> ()

let expected_read ob ~off ~len =
  let size = Bytes.length ob.contents in
  if off >= size || len = 0 then Bytes.empty else Bytes.sub ob.contents off (min len (size - off))

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)

let gen_req o rng i =
  if i land 7 = 7 then Rpc.Sync
  else begin
    let live = live_oids o in
    if live = [] then Rpc.Create { acl = [] }
    else begin
      let oid = List.nth live (Rng.int rng (List.length live)) in
      let size = Bytes.length (Hashtbl.find o.objects oid).contents in
      let r = Rng.int rng 100 in
      if r < 30 then begin
        let off = Rng.int rng (size + 256) in
        let len = 1 + Rng.int rng 1024 in
        Rpc.Write { oid; off; len; data = Some (Rng.bytes rng len) }
      end
      else if r < 55 then begin
        let len = 1 + Rng.int rng 512 in
        Rpc.Append { oid; len; data = Some (Rng.bytes rng len) }
      end
      else if r < 65 then Rpc.Truncate { oid; size = Rng.int rng (size + 1) }
      else if r < 73 then Rpc.Set_attr { oid; attr = Rng.bytes rng (1 + Rng.int rng 32) }
      else if r < 80 then Rpc.Create { acl = [] }
      else if r < 85 && List.length live > 2 then Rpc.Delete { oid }
      else if r < 93 then begin
        let off = Rng.int rng (size + 1) in
        Rpc.Read { oid; off; len = 1 + Rng.int rng (size + 16); at = None }
      end
      else Rpc.Sync
    end
  end

(* Run the seeded workload until it completes or the disk crashes.
   Returns (completed ops, crashed, in-flight violations). [backend]
   is any producer of the uniform vectored surface: a bare drive or a
   shard router. *)
let exec_workload ~ops ~seed ~(backend : S4.Backend.t) o =
  let clock = backend.S4.Backend.clock in
  let handle req = S4.Backend.handle backend cred req in
  let rng = Rng.create ~seed in
  let completed = ref 0 in
  let violations = ref [] in
  let crashed = ref false in
  (try
     for i = 0 to ops - 1 do
       let req = gen_req o rng i in
       let resp = handle req in
       incr completed;
       let ok = match resp with Rpc.R_error _ -> false | _ -> true in
       o.audit_log <- { a_op = Rpc.op_name req; a_oid = oid_of req; a_ok = ok } :: o.audit_log;
       (match (req, resp) with
        | Rpc.Read { oid; off; len; at = None }, Rpc.R_data b ->
          let ob = Hashtbl.find o.objects oid in
          if not (Bytes.equal b (expected_read ob ~off ~len)) then
            violations := Printf.sprintf "pre-crash read mismatch on oid %Ld" oid :: !violations
        | _ -> ());
       if ok then o_apply o req resp;
       (match (req, resp) with
        | Rpc.Sync, Rpc.R_unit ->
          let live =
            List.map
              (fun oid ->
                let ob = Hashtbl.find o.objects oid in
                (oid, Bytes.copy ob.contents, Bytes.copy ob.attr))
              (live_oids o)
          in
          let dead =
            List.rev o.order
            |> List.filter (fun oid -> not (Hashtbl.find o.objects oid).alive)
          in
          o.snaps <- { at = Simclock.now clock; live; dead } :: o.snaps
        | _ -> ())
     done
   with Fault.Crashed -> crashed := true);
  (!completed, !crashed, List.rev !violations)

(* ------------------------------------------------------------------ *)
(* Post-crash verification                                             *)

let resp_str r = Format.asprintf "%a" Rpc.pp_resp r

(* The recovered drive must keep serving: create, write, sync, read
   back. [adds] receives one message per broken step. *)
let service_check adds t2 =
  match Drive.handle t2 cred (Rpc.Create { acl = [] }) with
  | Rpc.R_oid oid -> (
    let data = Bytes.of_string "post-recovery write" in
    let len = Bytes.length data in
    match Drive.handle t2 cred (Rpc.Write { oid; off = 0; len; data = Some data }) with
    | Rpc.R_unit -> (
      match Drive.handle t2 cred Rpc.Sync with
      | Rpc.R_unit -> (
        match Drive.handle t2 cred (Rpc.Read { oid; off = 0; len; at = None }) with
        | Rpc.R_data b when Bytes.equal b data -> ()
        | r -> adds ("post-recovery read: " ^ resp_str r))
      | r -> adds ("post-recovery sync: " ^ resp_str r))
    | r -> adds ("post-recovery write: " ^ resp_str r))
  | r -> adds ("post-recovery create: " ^ resp_str r)

(* Reattach the surviving disk contents and check every invariant.
   Returns (snapshots checked, audit records matched, violations).
   [lenient_audit_tail] permits recovered records beyond the acked
   ops: a kill -9 run may have handled (and flushed) requests whose
   acks never reached the client — the audit rightly records them. *)
let verify ?(lenient_audit_tail = false) ~disk o =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  match (try Ok (Drive.attach disk) with e -> Error e) with
  | Error e ->
    add "attach raised %s" (Printexc.to_string e);
    (0, 0, List.rev !violations)
  | Ok t2 ->
    (* Capture the recovered audit trail first: the verification reads
       below are themselves audited and would pollute it. *)
    let recovered_audit = Audit.records (Drive.audit t2) () in
    List.iter (fun m -> add "fsck: %s" m) (Drive.fsck t2);
    (* The recovered hash chain must show truncation at worst, never
       tampering: a crash can tear or lose the unsealed tail of the
       final flush (hence lenient), but every sealed record must walk. *)
    List.iter
      (fun e -> add "%s" e)
      (Audit.verify ~lenient_tail:true (Drive.audit t2)).Chain.v_errors;
    let st = Drive.store t2 in
    (* Window survival: every synced version is still readable with a
       time-based read at its sync time. *)
    List.iter
      (fun s ->
        List.iter
          (fun (oid, contents, attr) ->
            let size = Bytes.length contents in
            (match (try Ok (Store.size st ~at:s.at oid) with e -> Error e) with
             | Error e ->
               add "snapshot@%Ld: oid %Ld lost (%s)" s.at oid (Printexc.to_string e)
             | Ok sz when sz <> size ->
               add "snapshot@%Ld: oid %Ld size %d, expected %d" s.at oid sz size
             | Ok _ ->
               (match
                  Drive.handle t2 cred (Rpc.Read { oid; off = 0; len = max size 1; at = Some s.at })
                with
                | Rpc.R_data b ->
                  if not (Bytes.equal b contents) then
                    add "snapshot@%Ld: oid %Ld contents differ" s.at oid
                | r -> add "snapshot@%Ld: read oid %Ld: %s" s.at oid (resp_str r));
               (match Drive.handle t2 cred (Rpc.Get_attr { oid; at = Some s.at }) with
                | Rpc.R_attr b ->
                  if not (Bytes.equal b attr) then
                    add "snapshot@%Ld: oid %Ld attr differs" s.at oid
                | r -> add "snapshot@%Ld: attr oid %Ld: %s" s.at oid (resp_str r))))
          s.live;
        List.iter
          (fun oid ->
            if Store.exists st ~at:s.at oid then
              add "snapshot@%Ld: oid %Ld should be deleted" s.at oid)
          s.dead)
      o.snaps;
    (* Audit continuity: the recovered trail is a contiguous prefix of
       the handled requests — a crash may lose the buffered tail,
       never a middle record. *)
    let recovered = recovered_audit in
    let expected = List.rev o.audit_log in
    let matched = ref 0 in
    let rec go rs es =
      match (rs, es) with
      | [], _ -> ()
      | r :: rs', e :: es' ->
        if r.Audit.op = e.a_op && Int64.equal r.Audit.oid e.a_oid && r.Audit.ok = e.a_ok then begin
          incr matched;
          go rs' es'
        end
        else
          add "audit record %d: got %s/%Ld/%b, expected %s/%Ld/%b" !matched r.Audit.op
            r.Audit.oid r.Audit.ok e.a_op e.a_oid e.a_ok
      | _ :: _, [] ->
        if not lenient_audit_tail then
          add "audit trail has %d records beyond the ops handled" (List.length rs)
    in
    go recovered expected;
    service_check (fun s -> add "%s" s) t2;
    (List.length o.snaps, !matched, List.rev !violations)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let build () =
  let clock = Simclock.create () in
  let disk = Sim_disk.create ~geometry:geom clock in
  (disk, Drive.format disk)

let drive_workload ~ops ~seed ~drive o =
  exec_workload ~ops ~seed ~backend:(Drive.backend drive) o

let workload_writes ?(ops = default_ops) ~seed () =
  let disk, drive = build () in
  let base = (Sim_disk.stats disk).Sim_disk.writes in
  ignore (drive_workload ~ops ~seed ~drive (fresh_oracle ()));
  (Sim_disk.stats disk).Sim_disk.writes - base

(* When the caller has enabled tracing, every run doubles as a trace-
   checker scenario: whatever spans the workload (and the post-crash
   verification reads) produced must satisfy the whole-run invariants. *)
let trace_violations () =
  if not (Trace.on ()) then []
  else
    let r = Check.run (Trace.spans ()) in
    List.map (fun v -> "trace: " ^ v) r.Check.violations

let run ?(ops = default_ops) ~seed ~crash_after () =
  if Trace.on () then Trace.clear ();
  let disk, drive = build () in
  let o = fresh_oracle () in
  let policy = Fault.create (Rng.create ~seed:((seed * 7919) + 17)) in
  Sim_disk.set_fault disk (Some policy);
  if crash_after > 0 then Fault.schedule_crash policy ~after_writes:crash_after;
  let completed, crashed, wviol = drive_workload ~ops ~seed ~drive o in
  Sim_disk.set_fault disk None;
  let snapshots, audit_checked, rviol =
    if crashed then verify ~disk o else (List.length o.snaps, 0, [])
  in
  {
    seed;
    crash_after;
    crashed;
    ops_before_crash = completed;
    snapshots;
    audit_checked;
    violations = wviol @ rviol @ trace_violations ();
  }

let boundary_sweep ?(ops = default_ops) ~seed () =
  let span = workload_writes ~ops ~seed () in
  List.init span (fun i -> run ~ops ~seed ~crash_after:(i + 1) ())

let sweep ?(ops = default_ops) ~seed ~runs () =
  let rng = Rng.create ~seed in
  List.init runs (fun i ->
      let wseed = seed + (i * 101) + 1 in
      let span = max 1 (workload_writes ~ops ~seed:wseed ()) in
      let crash_after = 1 + Rng.int rng span in
      run ~ops ~seed:wseed ~crash_after ())

(* ------------------------------------------------------------------ *)
(* Sharded array: crash mid-rebalance                                  *)

(* Run the seeded workload over a 2-shard array, add a third drive to
   the live array, and crash the whole array partway through the
   migration (the crash point counts the new drive's disk writes).
   Reattach every drive individually, reassemble with [Router.attach]
   and verify the detection-window guarantee survived the interrupted
   membership change. *)
let array_scenario ~ops ~seed ~crash_after =
  let clock = Simclock.create () in
  let mkdisk () = Sim_disk.create ~geometry:geom clock in
  let d0 = mkdisk () and d1 = mkdisk () and d2 = mkdisk () in
  let router =
    Router.create [ (0, Router.Single (Drive.format d0)); (1, Router.Single (Drive.format d1)) ]
  in
  let o = fresh_oracle () in
  let completed, _, wviol = exec_workload ~ops ~seed ~backend:(Router.backend router) o in
  ignore (Router.add_shard router 2 (Router.Single (Drive.format d2)));
  let policy = Fault.create (Rng.create ~seed:((seed * 31) + 5)) in
  Sim_disk.set_fault d2 (Some policy);
  if crash_after > 0 then Fault.schedule_crash policy ~after_writes:crash_after;
  let crashed = ref false in
  (try ignore (Router.rebalance router) with Fault.Crashed -> crashed := true);
  Sim_disk.set_fault d2 None;
  ((d0, d1, d2), o, completed, !crashed, wviol)

let rebalance_writes ?(ops = default_ops) ~seed () =
  let clock = Simclock.create () in
  let mkdisk () = Sim_disk.create ~geometry:geom clock in
  let d0 = mkdisk () and d1 = mkdisk () and d2 = mkdisk () in
  let router =
    Router.create [ (0, Router.Single (Drive.format d0)); (1, Router.Single (Drive.format d1)) ]
  in
  let o = fresh_oracle () in
  ignore (exec_workload ~ops ~seed ~backend:(Router.backend router) o);
  let base = (Sim_disk.stats d2).Sim_disk.writes in
  ignore (Router.add_shard router 2 (Router.Single (Drive.format d2)));
  ignore (Router.rebalance router);
  (Sim_disk.stats d2).Sim_disk.writes - base

(* Post-crash verification for the array: reattach each drive, repair
   placement, and check (1) every object has exactly one authoritative
   holder, (2) every synced in-window version still answers through
   the routed surface, (3) the interrupted migrations complete and the
   array keeps serving. *)
let verify_array (d0, d1, d2) o =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  match (try Ok (Drive.attach d0, Drive.attach d1, Drive.attach d2) with e -> Error e) with
  | Error e ->
    add "attach raised %s" (Printexc.to_string e);
    (0, List.rev !violations)
  | Ok (t0, t1, t2) ->
    let drives = [ t0; t1; t2 ] in
    let router =
      Router.attach [ (0, Router.Single t0); (1, Router.Single t1); (2, Router.Single t2) ]
    in
    (* Exactly one authoritative shard per object: attach must have
       deduplicated double holders and dropped partial copies. *)
    List.iter
      (fun oid ->
        let holders =
          List.filter
            (fun d ->
              (not (Int64.equal oid (Drive.ptable_oid d)))
              && List.mem oid (Store.list_all (Drive.store d)))
            drives
        in
        if List.length holders <> 1 then
          add "oid %Ld held by %d shards after reattach" oid (List.length holders))
      (List.rev o.order);
    (* Window survival through the routed surface: every synced
       version of every object, live and deleted, at each sync time. *)
    List.iter
      (fun s ->
        List.iter
          (fun (oid, contents, attr) ->
            let size = Bytes.length contents in
            (match
               Router.handle router cred (Rpc.Read { oid; off = 0; len = max size 1; at = Some s.at })
             with
            | Rpc.R_data b ->
              if not (Bytes.equal b (expected_read { contents; attr; alive = true } ~off:0 ~len:(max size 1))) then
                add "snapshot@%Ld: oid %Ld contents differ" s.at oid
            | r -> add "snapshot@%Ld: read oid %Ld: %s" s.at oid (resp_str r));
            match Router.handle router cred (Rpc.Get_attr { oid; at = Some s.at }) with
            | Rpc.R_attr b ->
              if not (Bytes.equal b attr) then add "snapshot@%Ld: oid %Ld attr differs" s.at oid
            | r -> add "snapshot@%Ld: attr oid %Ld: %s" s.at oid (resp_str r))
          s.live;
        List.iter
          (fun oid ->
            List.iter
              (fun d ->
                if
                  (not (Int64.equal oid (Drive.ptable_oid d)))
                  && Store.exists (Drive.store d) ~at:s.at oid
                then add "snapshot@%Ld: oid %Ld should be deleted" s.at oid)
              drives)
          s.dead)
      o.snaps;
    (* Interrupted migrations must complete cleanly now. *)
    let _, errs = Router.rebalance router in
    List.iter (fun e -> add "post-crash rebalance: %s" e) errs;
    List.iter (fun m -> add "fsck: %s" m) (Router.fsck router);
    (* The repaired array must keep serving. *)
    (match Router.handle router cred (Rpc.Create { acl = [] }) with
    | Rpc.R_oid oid -> (
      let data = Bytes.of_string "post-recovery write" in
      let len = Bytes.length data in
      match Router.handle router cred (Rpc.Write { oid; off = 0; len; data = Some data }) with
      | Rpc.R_unit -> (
        match Router.handle router cred Rpc.Sync with
        | Rpc.R_unit -> (
          match Router.handle router cred (Rpc.Read { oid; off = 0; len; at = None }) with
          | Rpc.R_data b when Bytes.equal b data -> ()
          | r -> add "post-recovery read: %s" (resp_str r))
        | r -> add "post-recovery sync: %s" (resp_str r))
      | r -> add "post-recovery write: %s" (resp_str r))
    | r -> add "post-recovery create: %s" (resp_str r));
    (List.length o.snaps, List.rev !violations)

let rebalance_run ?(ops = default_ops) ~seed ~crash_after () =
  if Trace.on () then Trace.clear ();
  let disks, o, completed, crashed, wviol = array_scenario ~ops ~seed ~crash_after in
  let snapshots, rviol = if crashed then verify_array disks o else (List.length o.snaps, []) in
  {
    seed;
    crash_after;
    crashed;
    ops_before_crash = completed;
    snapshots;
    audit_checked = 0;
    violations = wviol @ rviol @ trace_violations ();
  }

let rebalance_sweep ~seed ~runs () =
  let rng = Rng.create ~seed in
  List.init runs (fun i ->
      let wseed = seed + (i * 59) + 1 in
      let span = max 1 (rebalance_writes ~seed:wseed ()) in
      let crash_after = 1 + Rng.int rng span in
      rebalance_run ~seed:wseed ~crash_after ())

(* ------------------------------------------------------------------ *)
(* Mirror resync under partial failure                                 *)

type resync_report = {
  r_seed : int;
  fail_writes : int;
  first_error : bool;
  attempts : int;
  r_violations : string list;
}

let resync_run ~seed ~fail_writes () =
  let clock = Simclock.create () in
  let mkd () = Drive.format (Sim_disk.create ~geometry:geom clock) in
  let m = Mirror.create (mkd ()) (mkd ()) in
  let rng = Rng.create ~seed in
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let expect_ok what resp =
    match resp with
    | Rpc.R_error e -> add "%s failed: %s" what (Format.asprintf "%a" Rpc.pp_error e)
    | _ -> ()
  in
  let oid =
    match Mirror.handle m cred (Rpc.Create { acl = [] }) with
    | Rpc.R_oid oid -> oid
    | r ->
      add "create: %s" (resp_str r);
      0L
  in
  expect_ok "seed write"
    (Mirror.handle m cred (Rpc.Write { oid; off = 0; len = 4; data = Some (Bytes.of_string "base") }));
  expect_ok "seed sync" (Mirror.handle m cred Rpc.Sync);
  (* The secondary fails; non-idempotent mutations pile up in the
     missed-journal. Appends never touch the disk until a Sync, so
     during replay only the Syncs can hit an injected write fault. *)
  Mirror.set_failed m Mirror.Secondary true;
  let nmissed = 2 + Rng.int rng 4 in
  for k = 0 to nmissed - 1 do
    let s = Printf.sprintf "m%d" k in
    expect_ok "missed append"
      (Mirror.handle m cred (Rpc.Append { oid; len = String.length s; data = Some (Bytes.of_string s) }));
    expect_ok "missed sync" (Mirror.handle m cred Rpc.Sync)
  done;
  (* Repaired — but its media faults partway through the replay. *)
  Mirror.set_failed m Mirror.Secondary false;
  let sdisk = Log.disk (Drive.log (Mirror.drive m Mirror.Secondary)) in
  let policy = Fault.create (Rng.create ~seed:(seed + 1)) in
  Sim_disk.set_fault sdisk (Some policy);
  if fail_writes > 0 then Fault.fail_next policy ~writes:fail_writes ~transient:false;
  let first_error = ref false in
  let attempts = ref 0 in
  let rec resync_until budget =
    incr attempts;
    match Mirror.resync m with
    | Ok _ -> ()
    | Error e ->
      if !attempts = 1 then first_error := true;
      if budget <= 0 then add "resync never converged: %s" e else resync_until (budget - 1)
  in
  resync_until 10;
  Sim_disk.set_fault sdisk None;
  List.iter (fun d -> add "divergence: %s" d) (Mirror.divergence m);
  if Mirror.lag m <> 0 then add "residual lag %d" (Mirror.lag m);
  {
    r_seed = seed;
    fail_writes;
    first_error = !first_error;
    attempts = !attempts;
    r_violations = List.rev !violations;
  }

let resync_sweep ~seed ~runs () =
  let rng = Rng.create ~seed in
  List.init runs (fun i -> resync_run ~seed:(seed + (i * 37) + 1) ~fail_writes:(Rng.int rng 5) ())

(* ------------------------------------------------------------------ *)
(* Real kill -9: a live server process over a file-backed store        *)

module File_disk = S4_disk.File_disk
module Netserver = S4_net.Server
module Netclient = S4_net.Client
module Transport = S4_net.Transport

(* Fork a child that serves [path] over TCP on an ephemeral port and
   then sleeps until it is SIGKILLed; the port comes back over a pipe.
   The child opens the store itself — sharing a parent fd across the
   fork would share the file offset under it. *)
let fork_server ~path =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    (try
       let disk = Sim_disk.of_file (File_disk.open_file path) in
       let drive = Drive.attach disk in
       let srv = Netserver.of_drive drive in
       let listener = Netserver.serve_tcp ~host:"127.0.0.1" ~port:0 srv in
       let msg = string_of_int (Netserver.port listener) ^ "\n" in
       ignore (Unix.write_substring w msg 0 (String.length msg));
       Unix.close w;
       while true do
         Unix.sleep 3600
       done
     with _ -> (try Unix.close w with Unix.Unix_error _ -> ()));
    Unix._exit 127
  | pid ->
    Unix.close w;
    let buf = Bytes.create 16 in
    let n = try Unix.read r buf 0 16 with Unix.Unix_error _ -> 0 in
    Unix.close r;
    if n <= 0 then begin
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid);
      failwith "kill9: server child failed to start"
    end;
    (pid, int_of_string (String.trim (Bytes.sub_string buf 0 n)))

(* Snapshot instant on the server's clock: a Stat answered after the
   Sync ack (Stat is served at the wire layer — no audit record, no
   clock advance, and no other connection is active at that point). *)
let server_instant client =
  ignore (Netclient.capacity client);
  Netclient.server_now client

let kill9_run ?(dir = Filename.get_temp_dir_name ()) ~seed ~kill_after ~midflight () =
  if Trace.on () then Trace.clear ();
  let path = Filename.concat dir (Printf.sprintf "kill9_%d.s4" seed) in
  (* Format a fresh file-backed store in-process; format ends with a
     barrier, so the empty drive itself is durable. *)
  (let disk0 = Sim_disk.of_file (File_disk.create ~path geom) in
   ignore (Drive.format disk0);
   Sim_disk.close disk0);
  let pid, port = fork_server ~path in
  let o = fresh_oracle () in
  let rng = Rng.create ~seed in
  let client =
    Netclient.connect
      ~config:{ Netclient.default_config with Netclient.req_timeout_s = 30.0; seed }
      (Transport.tcp ~host:"127.0.0.1" ~port)
  in
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let acked = ref 0 in
  (* The acked workload: like [exec_workload], but over the wire, with
     snapshot instants taken from the server's clock. *)
  for i = 0 to kill_after - 1 do
    let req = gen_req o rng i in
    let resp = Netclient.handle client cred req in
    (match resp with
     | Rpc.R_error (Rpc.Io_error _) -> add "op %d: server unreachable before the kill" i
     | _ -> incr acked);
    let ok = match resp with Rpc.R_error _ -> false | _ -> true in
    o.audit_log <- { a_op = Rpc.op_name req; a_oid = oid_of req; a_ok = ok } :: o.audit_log;
    (match (req, resp) with
     | Rpc.Read { oid; off; len; at = None }, Rpc.R_data b ->
       let ob = Hashtbl.find o.objects oid in
       if not (Bytes.equal b (expected_read ob ~off ~len)) then
         add "pre-kill read mismatch on oid %Ld" oid
     | _ -> ());
    if ok then o_apply o req resp;
    match (req, resp) with
    | Rpc.Sync, Rpc.R_unit ->
      let live =
        List.map
          (fun oid ->
            let ob = Hashtbl.find o.objects oid in
            (oid, Bytes.copy ob.contents, Bytes.copy ob.attr))
          (live_oids o)
      in
      let dead =
        List.rev o.order |> List.filter (fun oid -> not (Hashtbl.find o.objects oid).alive)
      in
      o.snaps <- { at = server_instant client; live; dead } :: o.snaps
    | _ -> ()
  done;
  (* Optionally put a doomed batch in flight on a second connection:
     its writes may be half-handled when the KILL lands, exercising
     buffered-but-unacked state in the dying server. The batch is
     never applied to the oracle — whether it survives is the server's
     business, not the contract's. *)
  let doomed =
    if not midflight then None
    else begin
      let targets = Array.of_list (live_oids o) in
      let reqs =
        Array.init 64 (fun _ ->
            if Array.length targets = 0 then Rpc.Create { acl = [] }
            else begin
              let oid = targets.(Rng.int rng (Array.length targets)) in
              let len = 64 + Rng.int rng 192 in
              Rpc.Write { oid; off = Rng.int rng 512; len; data = Some (Rng.bytes rng len) }
            end)
      in
      let th =
        Thread.create
          (fun () ->
            let c2 =
              Netclient.connect
                ~config:
                  {
                    Netclient.default_config with
                    Netclient.req_timeout_s = 2.0;
                    max_retries = 0;
                    seed = seed + 1;
                  }
                (Transport.tcp ~host:"127.0.0.1" ~port)
            in
            ignore (Netclient.submit c2 cred ~sync:true reqs))
          ()
      in
      Thread.delay (float_of_int (Rng.int rng 4) /. 1000.0);
      Some th
    end
  in
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  (match doomed with Some th -> Thread.join th | None -> ());
  (try Netclient.close client with _ -> ());
  (* Reopen whatever survived on the host file and run the full
     verification: window survival, audit continuity (the kill may
     have flushed handled-but-unacked work — a lenient tail), fsck,
     and post-recovery service. *)
  let disk2 = Sim_disk.of_file (File_disk.open_file path) in
  let snapshots, audit_checked, rviol = verify ~lenient_audit_tail:true ~disk:disk2 o in
  Sim_disk.close disk2;
  let report =
    {
      seed;
      crash_after = kill_after;
      crashed = true;
      ops_before_crash = !acked;
      snapshots;
      audit_checked;
      violations = List.rev !violations @ rviol @ trace_violations ();
    }
  in
  if report.violations = [] then (try Sys.remove path with Sys_error _ -> ());
  report

let kill9_sweep ?dir ~seed ~runs () =
  let rng = Rng.create ~seed in
  List.init runs (fun i ->
      let wseed = seed + (i * 73) + 1 in
      let kill_after = 8 + Rng.int rng 72 in
      let midflight = Rng.int rng 2 = 1 in
      kill9_run ?dir ~seed:wseed ~kill_after ~midflight ())

(* ------------------------------------------------------------------ *)
(* Tamper injection: the attacker the hash chain exists for            *)

type tamper = Rewrite | Drop | Reorder | Fork

let tamper_name = function
  | Rewrite -> "rewrite"
  | Drop -> "drop"
  | Reorder -> "reorder"
  | Fork -> "fork"

let final_sync drive =
  match Drive.handle drive cred Rpc.Sync with
  | Rpc.R_unit -> ()
  | r -> failwith ("tamper: final sync: " ^ resp_str r)

let verify_log drive ~from =
  match Drive.handle drive cred (Rpc.Verify_log { from }) with
  | Rpc.R_verify r -> r
  | r -> failwith ("verify-log: " ^ resp_str r)

(* Block CRCs are integrity against media error, not against an
   attacker: anyone with platter access recomputes them. The forgeries
   below do exactly that, so only the hash chain stands in the way. *)
let recrc b =
  let n = Bytes.length b in
  let crc = Int32.to_int (Crc32.sub b ~pos:0 ~len:(n - 4)) land 0xFFFFFFFF in
  Bcodec.set_u32 b (n - 4) crc;
  b

(* Forge a CRC-valid variant of a persisted audit block whose records
   decode differently — a surgical edit of sealed history. Scans for a
   single-byte flip in the record region that keeps the block
   decodable; if none exists the flip at the scan origin stands (an
   undecodable block is also a rewrite the chain must catch). *)
let forge_record_edit original =
  let n = Bytes.length original in
  let flipped i =
    let b = Bytes.copy original in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
    recrc b
  in
  let base = Audit.decode_block original in
  let rec scan i =
    if i >= n - 4 then flipped 44
    else
      let b = flipped i in
      match (base, Audit.decode_block b) with
      | Some r0, Some r1 when r0 <> r1 -> b
      | _ -> scan (i + 1)
  in
  scan 44

let tamper_scenario ~seed inject =
  let disk, drive = build () in
  let o = fresh_oracle () in
  ignore (drive_workload ~ops:default_ops ~seed ~drive o);
  final_sync drive;
  let audit = Drive.audit drive in
  let trusted = Audit.sealed_head audit in
  let log = Drive.log drive in
  let spb = Log.block_size log / (Sim_disk.geometry disk).Geometry.sector_size in
  let poke addr data = Sim_disk.poke disk ~lba:(addr * spb) ~data in
  (* Sealed record blocks, oldest first (everything is sealed after the
     final sync). *)
  let addrs = List.rev (Audit.block_addrs audit) in
  inject ~log ~poke ~addrs;
  let res = verify_log drive ~from:(Some trusted) in
  (not (Chain.clean res), res.Chain.v_errors)

let too_few () = failwith "tamper: workload produced too few audit blocks"

let tamper_run ~seed tamper =
  match tamper with
  | Rewrite ->
    tamper_scenario ~seed (fun ~log ~poke ~addrs ->
        match addrs with
        | addr :: _ -> poke addr (forge_record_edit (Log.peek log addr))
        | [] -> too_few ())
  | Drop ->
    (* Zero a middle block. (Dropping the oldest block is expiry, which
       is legitimate and indistinguishable by design — the catalog's
       epoch floor, not the chain, bounds how much may age out.) *)
    tamper_scenario ~seed (fun ~log ~poke ~addrs ->
        match addrs with
        | _ :: addr :: _ -> poke addr (Bytes.make (Log.block_size log) '\000')
        | _ -> too_few ())
  | Reorder ->
    (* Relocate a block on the chain: patch its claimed start index
       (the low bit of the varint at offset 10, after magic and block
       base time) and re-CRC. Physical placement is immaterial — the
       walk orders blocks by claimed position — so a reorder attack is
       precisely a block claiming somebody else's position. *)
    tamper_scenario ~seed (fun ~log ~poke ~addrs ->
        match addrs with
        | _ :: addr :: _ ->
          let b = Log.peek log addr in
          Bytes.set b 10 (Char.chr (Char.code (Bytes.get b 10) lxor 1));
          poke addr (recrc b)
        | _ -> too_few ())
  | Fork ->
    (* The attacker restores a stale image behind a "crash" and regrows
       different history past the admin's trusted head. Determinism
       stands in for the stolen image: replaying the first half of the
       seeded workload reproduces it bit-for-bit. *)
    let _, drive1 = build () in
    ignore (drive_workload ~ops:default_ops ~seed ~drive:drive1 (fresh_oracle ()));
    final_sync drive1;
    let trusted = Audit.sealed_head (Drive.audit drive1) in
    let _, drive2 = build () in
    let o2 = fresh_oracle () in
    ignore (drive_workload ~ops:(default_ops / 2) ~seed ~drive:drive2 o2);
    ignore (drive_workload ~ops:default_ops ~seed:(seed + 7777) ~drive:drive2 o2);
    final_sync drive2;
    let res = verify_log drive2 ~from:(Some trusted) in
    (not (Chain.clean res), res.Chain.v_errors)

let tamper_clean ~seed =
  let detected, errs = tamper_scenario ~seed (fun ~log:_ ~poke:_ ~addrs:_ -> ()) in
  (detected, errs)

(* ------------------------------------------------------------------ *)
(* Seal atomicity: dying in the flush-to-seal gap is truncation        *)

(* The barrier writes audit records, then the seal, then syncs — one
   flush. A SIGKILL can still land after the records reach the platter
   but before (or while) the seal does; this reproduces that exact
   state in-process: flush and sync the records, tear the freshly
   flushed block down to its first sector, and abandon the process
   state without sealing. Recovery must read it as tail truncation —
   a crash — and never as tampering. *)
let seal_gap_run ?(dir = Filename.get_temp_dir_name ()) ~seed () =
  let path = Filename.concat dir (Printf.sprintf "sealgap_%d.s4" seed) in
  let disk0 = Sim_disk.of_file (File_disk.create ~path geom) in
  let drive = Drive.format disk0 in
  let o = fresh_oracle () in
  ignore (drive_workload ~ops:48 ~seed ~drive o);
  let handled = List.length o.audit_log in
  Audit.flush (Drive.audit drive);
  Log.sync (Drive.log drive);
  (match Audit.block_addrs (Drive.audit drive) with
   | addr :: _ ->
     let log = Drive.log drive in
     let bs = Log.block_size log in
     let ss = (Sim_disk.geometry disk0).Geometry.sector_size in
     let torn = Log.peek log addr in
     Bytes.fill torn ss (bs - ss) '\000';
     Sim_disk.poke disk0 ~lba:(addr * (bs / ss)) ~data:torn
   | [] -> ());
  Sim_disk.close disk0;
  let disk2 = Sim_disk.of_file (File_disk.open_file path) in
  let snapshots, audit_checked, rviol = verify ~lenient_audit_tail:true ~disk:disk2 o in
  Sim_disk.close disk2;
  (* Strict re-walk of what survived: the gap must read as unsealed
     tail loss (no bad record, no chain error), not tampering. *)
  let disk3 = Sim_disk.of_file (File_disk.open_file path) in
  let strict =
    match (try Ok (Drive.attach disk3) with e -> Error e) with
    | Ok t3 -> Audit.verify (Drive.audit t3)
    | Error e -> failwith ("seal gap: reattach raised " ^ Printexc.to_string e)
  in
  Sim_disk.close disk3;
  let report =
    {
      seed;
      crash_after = 0;
      crashed = true;
      ops_before_crash = handled;
      snapshots;
      audit_checked;
      violations = rviol @ trace_violations ();
    }
  in
  if report.violations = [] && Chain.clean strict then (try Sys.remove path with Sys_error _ -> ());
  (report, strict)

(* ------------------------------------------------------------------ *)
(* PostMark under kill -9: zero acked-write loss                       *)

module Systems = S4_workload.Systems
module Postmark = S4_workload.Postmark
module Translator = S4_nfs.Translator
module Nfsserver = S4_nfs.Server

type postmark_report = {
  pm_seed : int;
  pm_completed : bool;  (** PostMark finished all transactions before the kill *)
  pm_checkpoints : int;
  pm_acked : int;  (** audit records covered by the newest checkpoint *)
  pm_recovered : int;  (** audit records recovered after the kill *)
  pm_violations : string list;
}

(* PostMark runs over the full client stack — NFS-level benchmark,
   translator, wire protocol — against the forked server, while a
   second connection takes durability checkpoints: read the server
   clock, Sync, then Read_audit up to the pre-sync instant. Every
   record strictly below that instant was appended before the Sync was
   acked, so the barrier has made it durable; after the SIGKILL the
   recovered audit log must reproduce each checkpoint's records
   exactly. The audit trail is the acked-write oracle — one record per
   accepted RPC. *)
let kill9_postmark_run ?(dir = Filename.get_temp_dir_name ()) ?(transactions = 1500)
    ?(checkpoints = 6) ~seed () =
  if Trace.on () then Trace.clear ();
  let path = Filename.concat dir (Printf.sprintf "kill9pm_%d.s4" seed) in
  (let disk0 = Sim_disk.of_file (File_disk.create ~path geom) in
   ignore (Drive.format disk0);
   Sim_disk.close disk0);
  let pid, port = fork_server ~path in
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let clock = Simclock.create () in
  let client =
    Netclient.connect
      ~config:{ Netclient.default_config with Netclient.req_timeout_s = 10.0; max_retries = 1; seed }
      (Transport.tcp ~host:"127.0.0.1" ~port)
  in
  let tr = Translator.mount (Translator.Backend (Netclient.backend ~clock ~keep_data:true client)) in
  let sys =
    {
      Systems.name = "S4-kill9";
      server = Nfsserver.of_translator ~name:"S4-kill9" tr;
      clock;
      disk = Sim_disk.create ~geometry:geom clock;  (* client-side bookkeeping only *)
      drive = None;
      translator = Some tr;
      router = None;
    }
  in
  let pm_config =
    {
      Postmark.files = 60;
      transactions;
      subdirectories = 4;
      min_size = 512;
      max_size = 4096;
      seed;
      cleaner_every = None;
    }
  in
  let pm_done = ref false in
  let pm_thread =
    Thread.create
      (fun () -> match Postmark.run ~config:pm_config sys with _ -> pm_done := true | exception _ -> ())
      ()
  in
  let c2 =
    Netclient.connect
      ~config:
        { Netclient.default_config with Netclient.req_timeout_s = 10.0; max_retries = 1; seed = seed + 1 }
      (Transport.tcp ~host:"127.0.0.1" ~port)
  in
  let taken = ref [] in
  Thread.delay 0.1;
  for _k = 1 to checkpoints do
    Thread.delay 0.04;
    let t_before = server_instant c2 in
    match Netclient.handle c2 cred Rpc.Sync with
    | Rpc.R_unit -> (
      match
        Netclient.handle c2 cred (Rpc.Read_audit { since = 0L; until = Int64.pred t_before })
      with
      | Rpc.R_audit rs -> taken := (t_before, rs) :: !taken
      | r -> add "checkpoint read_audit: %s" (resp_str r))
    | r -> add "checkpoint sync: %s" (resp_str r)
  done;
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Thread.join pm_thread;
  (try Netclient.close client with _ -> ());
  (try Netclient.close c2 with _ -> ());
  let checkpoints_chrono = List.rev !taken in
  if checkpoints_chrono = [] then add "no checkpoint was captured before the kill";
  let disk2 = Sim_disk.of_file (File_disk.open_file path) in
  let recovered = ref 0 in
  (match (try Ok (Drive.attach disk2) with e -> Error e) with
   | Error e -> add "attach raised %s" (Printexc.to_string e)
   | Ok t2 ->
     let recovered_audit = Audit.records (Drive.audit t2) () in
     recovered := List.length recovered_audit;
     List.iter (fun m -> add "fsck: %s" m) (Drive.fsck t2);
     List.iter
       (fun e -> add "%s" e)
       (Audit.verify ~lenient_tail:true (Drive.audit t2)).Chain.v_errors;
     (* Zero acked-write loss: each checkpoint's records must survive
        verbatim. Records at or past the checkpoint instant were still
        in flight and are the server's business, not the contract's. *)
     List.iter
       (fun (t_before, rs) ->
         let upto =
           List.filter (fun r -> Int64.compare r.Audit.at t_before < 0) recovered_audit
         in
         let rec go i xs ys =
           match (xs, ys) with
           | [], _ -> ()
           | x :: xs', y :: ys' ->
             if x = y then go (i + 1) xs' ys'
             else add "checkpoint@%Ld: acked audit record %d differs after recovery" t_before i
           | rest, [] ->
             add "checkpoint@%Ld: %d acked audit records lost by the kill" t_before
               (List.length rest)
         in
         go 0 rs upto)
       checkpoints_chrono;
     (* Namespace walk: every surviving name must mount and answer. *)
     (match Drive.handle t2 cred (Rpc.P_list { at = None }) with
      | Rpc.R_names names ->
        List.iter
          (fun name ->
            match Drive.handle t2 cred (Rpc.P_mount { name; at = None }) with
            | Rpc.R_oid oid -> (
              match Drive.handle t2 cred (Rpc.Get_attr { oid; at = None }) with
              | Rpc.R_attr _ -> ()
              | r -> add "walk: attr of %s: %s" name (resp_str r))
            | r -> add "walk: mount %s: %s" name (resp_str r))
          names
      | r -> add "walk: list: %s" (resp_str r));
     service_check (fun s -> add "%s" s) t2);
  Sim_disk.close disk2;
  let report =
    {
      pm_seed = seed;
      pm_completed = !pm_done;
      pm_checkpoints = List.length checkpoints_chrono;
      pm_acked =
        (match !taken with (_, rs) :: _ -> List.length rs | [] -> 0);
      pm_recovered = !recovered;
      pm_violations = List.rev !violations @ trace_violations ();
    }
  in
  if report.pm_violations = [] then (try Sys.remove path with Sys_error _ -> ());
  report

let pp_postmark_report ppf r =
  Format.fprintf ppf "postmark kill9 seed=%d: %s, %d checkpoints, %d acked, %d recovered%s"
    r.pm_seed
    (if r.pm_completed then "completed" else "killed mid-run")
    r.pm_checkpoints r.pm_acked r.pm_recovered
    (match r.pm_violations with
     | [] -> ""
     | v -> Printf.sprintf ", %d VIOLATIONS: %s" (List.length v) (String.concat "; " v))

let failed_reports rs = List.filter (fun r -> r.violations <> []) rs

let pp_report ppf r =
  Format.fprintf ppf "crash@%d seed=%d: %s, %d ops, %d snapshots, %d audit ok%s" r.crash_after
    r.seed
    (if r.crashed then "crashed" else "no crash")
    r.ops_before_crash r.snapshots r.audit_checked
    (match r.violations with
     | [] -> ""
     | v -> Printf.sprintf ", %d VIOLATIONS: %s" (List.length v) (String.concat "; " v))
