(** File-backed sector store: real durability for a simulated drive.

    One host file holds a checksummed format header (geometry plus the
    simulated clock as of the last barrier) followed by the raw sector
    array at fixed offsets. Sector contents go straight to [pwrite],
    so a [kill -9] of the owning process loses at most writes that
    were still buffered {e above} the disk (the log's pending slots);
    {!sync} is the durability barrier — it rewrites the header with
    the current clock and flushes ([fsync], or nothing extra in
    [O_DSYNC] mode where every write is already synchronous), after
    which the contents survive a host crash too.

    Constructed stores plug into {!Sim_disk} via [Sim_disk.of_file];
    nothing else in the stack needs to know sectors live in a file. *)

type t

val magic : string
(** First bytes of every file-backed store ("S4FDSK1\n"); used by
    format probes ([S4_tools.Disk_image.kind]). *)

val create : ?dsync:bool -> path:string -> Geometry.t -> t
(** Create (or truncate) the file at [path] for the given geometry:
    reserve the full logical extent (sparse), write the header, and
    fsync file and directory so the empty store itself is durable.
    [dsync] opens with [O_DSYNC]: every write is synchronous and
    {!sync} needs no explicit flush. *)

val open_file : ?dsync:bool -> string -> t
(** Open an existing store, validating magic and header CRC.
    @raise Failure if the file is not a store or the header is corrupt
    ("<path>: corrupt store (...)");
    @raise Unix.Unix_error on I/O problems. *)

val geometry : t -> Geometry.t
val clock_ns : t -> int64
(** Simulated clock stored by the last completed barrier (what a
    restart resumes from; recovery advances past any newer journal
    entries it replays). *)

val head : t -> S4_integrity.Chain.head option
(** Sealed audit-chain head as of the last completed barrier ([None]
    for pre-integrity stores, or when sealing is disabled). A second,
    device-held trust anchor: rewriting the log file cannot update it
    without also passing the header CRC and forging SHA-256. *)

val set_head : t -> S4_integrity.Chain.head option -> unit
(** Stage the head the next {!sync} will persist (it is not written
    until the barrier). *)

val path : t -> string
val dsync : t -> bool

val read : t -> lba:int -> sectors:int -> Bytes.t
(** pread of a sector run; sectors never written (or past the end of a
    truncated file) read back as zeros. *)

val write : t -> lba:int -> Bytes.t -> unit
(** pwrite of a sector-aligned run starting at [lba]. *)

val erase : t -> lba:int -> sectors:int -> unit
(** Store zeros over the run (a dropped-contents write). *)

val sync : t -> clock_ns:int64 -> unit
(** The durability barrier: persist [clock_ns] into the header and
    flush everything written so far. *)

val syncs : t -> int
(** Barriers completed since this handle was opened. *)

val close : t -> unit
(** Close the fd; idempotent. Does NOT imply a barrier. *)
