lib/analysis/report.mli:
