module Bcodec = S4_util.Bcodec
module Simclock = S4_util.Simclock
module Sim_disk = S4_disk.Sim_disk
module Fault = S4_disk.Fault
module Log = S4_seglog.Log
module Store = S4_store.Obj_store
module Cleaner = S4_store.Cleaner
module Trace = S4_obs.Trace

type config = {
  store : Store.config;
  window : int64;
  audit_enabled : bool;
  integrity : bool;
  throttle : Throttle.config option;
  history_reserve : float;
  cleaner_live_threshold : float;
  cleaner_max_segments : int;
  cpu_us_per_rpc : float;
  io_retry_limit : int;
  io_retry_backoff_ms : float;
}

let day_ns = Int64.mul 86_400L 1_000_000_000L

let default_config =
  {
    store = Store.default_config;
    window = Int64.mul 7L day_ns;
    audit_enabled = true;
    integrity = true;
    throttle = Some Throttle.default_config;
    history_reserve = 0.5;
    cleaner_live_threshold = 0.75;
    cleaner_max_segments = 8;
    cpu_us_per_rpc = 550.0;
    io_retry_limit = 3;
    io_retry_backoff_ms = 1.0;
  }

type t = {
  cfg : config;
  log : Log.t;
  store : Store.t;
  audit : Audit.t;
  cleaner : Cleaner.t;
  throttle : Throttle.t option;
  mutable ptable_oid : int64;
  mutable ops : int;
  mutable last_clean_at : int64;
  mutable last_clean_busy : int64;
  mutable io_errors : int;  (* RPCs failed on a permanent media fault *)
  mutable audit_drops : int;  (* audit appends lost to media faults *)
}

let clock t = Store.clock t.store
let store t = t.store
let ptable_oid t = t.ptable_oid
let log t = t.log
let audit t = t.audit
let cleaner t = t.cleaner
let throttle t = t.throttle
let window t = Cleaner.window t.cleaner
let ops_handled t = t.ops
let now t = Simclock.now (clock t)
let io_errors t = t.io_errors
let audit_drops t = t.audit_drops

let degraded t = t.io_errors > 0 || t.audit_drops > 0

let detection_cutoff t =
  let c = Int64.sub (now t) (window t) in
  if Int64.compare c 0L < 0 then 0L else c

(* ------------------------------------------------------------------ *)
(* Superblock                                                          *)

let superblock_magic = 0x5342_3453 (* "S4SB" *)

let write_superblock t =
  let w = Bcodec.writer () in
  Bcodec.w_u32 w superblock_magic;
  Bcodec.w_u8 w 1 (* version *);
  Bcodec.w_i64 w t.ptable_oid;
  Bcodec.w_i64 w (window t);
  Log.write_superblock t.log (Bcodec.contents w)

let read_superblock log =
  let b = Log.read_superblock log in
  let r = Bcodec.reader b in
  if Bcodec.r_u32 r <> superblock_magic then None
  else begin
    let _version = Bcodec.r_u8 r in
    let ptable_oid = Bcodec.r_i64 r in
    let window = Bcodec.r_i64 r in
    Some (ptable_oid, window)
  end

(* ------------------------------------------------------------------ *)
(* Partition (named object) table — itself a versioned object.        *)

let encode_ptable entries =
  let w = Bcodec.writer () in
  Bcodec.w_int w (List.length entries);
  List.iter
    (fun (name, oid) ->
      Bcodec.w_string w name;
      Bcodec.w_i64 w oid)
    entries;
  Bcodec.contents w

let decode_ptable b =
  if Bytes.length b = 0 then []
  else begin
    let r = Bcodec.reader b in
    let n = Bcodec.r_int r in
    List.init n (fun _ ->
        let name = Bcodec.r_string r in
        let oid = Bcodec.r_i64 r in
        (name, oid))
  end

let read_ptable t ?at () =
  let size = Store.size t.store ?at t.ptable_oid in
  if size = 0 then []
  else decode_ptable (Store.read t.store ?at t.ptable_oid ~off:0 ~len:size)

let write_ptable t entries =
  let data = encode_ptable entries in
  let len = Bytes.length data in
  Store.write t.store t.ptable_oid ~off:0 ~data ~len ();
  if Store.size t.store t.ptable_oid > len then Store.truncate t.store t.ptable_oid ~size:len

(* Silent name-table access for array-internal objects (the shard
   router's integrity catalog): no audit record, no RPC cpu charge. *)
let named_oid t name = List.assoc_opt name (read_ptable t ())

let register_name t name oid =
  let entries = read_ptable t () in
  if List.mem_assoc name entries then
    invalid_arg (Printf.sprintf "Drive.register_name: %s exists" name);
  write_ptable t ((name, oid) :: entries)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let build cfg log store ~ptable_oid =
  let cleaner =
    Cleaner.create ~window:cfg.window ~live_threshold:cfg.cleaner_live_threshold
      ~max_segments_per_run:cfg.cleaner_max_segments store
  in
  let audit = Audit.create ~enabled:cfg.audit_enabled log in
  Cleaner.set_on_audit_move cleaner (fun old_addr new_addr -> Audit.on_move audit ~old_addr ~new_addr);
  let throttle = Option.map (fun tc -> Throttle.create ~config:tc (Log.clock log)) cfg.throttle in
  Log.set_io_retry log ~limit:cfg.io_retry_limit ~backoff_ms:cfg.io_retry_backoff_ms;
  (* Every device-level sync snapshots the sealed chain head into the
     disk's own header — a second, device-held trust anchor an attacker
     rewriting the log cannot update without also forging SHA-256. *)
  Sim_disk.set_head_provider (Log.disk log) (fun () ->
      if cfg.integrity && Audit.enabled audit then Some (Audit.sealed_head audit) else None);
  {
    cfg;
    log;
    store;
    audit;
    cleaner;
    throttle;
    ptable_oid;
    ops = 0;
    last_clean_at = 0L;
    last_clean_busy = 0L;
    io_errors = 0;
    audit_drops = 0;
  }

let format ?(config = default_config) disk =
  let log = Log.create disk in
  let store = Store.create ~config:config.store log in
  let ptable_oid = Store.create_object store in
  Store.set_acl_raw store ptable_oid (Acl.encode (Acl.default ~owner:0));
  let t = build config log store ~ptable_oid in
  write_superblock t;
  Store.sync store;
  t

let attach ?(config = default_config) disk =
  let log = Log.reattach disk in
  let store = Store.recover ~config:config.store log in
  let ptable_oid, window =
    match read_superblock log with
    | Some (oid, w) -> (oid, w)
    | None -> invalid_arg "Drive.attach: no valid superblock"
  in
  let t = build { config with window } log store ~ptable_oid in
  Audit.recover t.audit;
  (* Cross-check the device-held anchor: the head recorded in the disk
     header at the last successful sync must still lie on the recovered
     chain. A recovered chain *newer* than the anchor is ordinary crash
     state; an anchor the chain cannot reproduce means the log was
     rewound or rewritten behind the device's back. *)
  (if config.integrity then
     match Sim_disk.saved_head (Log.disk log) with
     | None -> ()
     | Some h ->
       let r = Audit.verify ~from:h ~lenient_tail:true t.audit in
       if not (S4_integrity.Chain.clean r) then
         Logs.warn (fun m ->
             m "attach: audit chain disagrees with device anchor: %a"
               S4_integrity.Chain.pp_result r));
  t

(* ------------------------------------------------------------------ *)
(* Pool pressure / throttling                                          *)

let history_budget_blocks t =
  int_of_float (t.cfg.history_reserve *. float_of_int (Log.usable_blocks t.log))

let pool_pressure t =
  let budget = max 1 (history_budget_blocks t) in
  let history = Store.history_block_count t.store in
  min 1.0 (float_of_int history /. float_of_int budget)

let refresh_pressure t =
  match t.throttle with
  | Some th -> Throttle.set_pool_pressure th (pool_pressure t)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Request processing                                                  *)

let oid_of_req : Rpc.req -> int64 = function
  | Rpc.Delete { oid }
  | Rpc.Read { oid; _ }
  | Rpc.Write { oid; _ }
  | Rpc.Append { oid; _ }
  | Rpc.Truncate { oid; _ }
  | Rpc.Get_attr { oid; _ }
  | Rpc.Set_attr { oid; _ }
  | Rpc.Get_acl_by_user { oid; _ }
  | Rpc.Get_acl_by_index { oid; _ }
  | Rpc.Set_acl { oid; _ }
  | Rpc.Flush_object { oid; _ } ->
    oid
  | Rpc.P_create { oid; _ } -> oid
  | Rpc.Create _ | Rpc.P_delete _ | Rpc.P_list _ | Rpc.P_mount _ | Rpc.Sync | Rpc.Flush _
  | Rpc.Set_window _ | Rpc.Read_audit _ | Rpc.Verify_log _ ->
    0L

exception Denied

let current_acl t oid = Acl.decode (Store.current_acl_raw t.store oid)

let require t (cred : Rpc.credential) oid perm =
  if not cred.Rpc.admin then begin
    let acl = current_acl t oid in
    if not (Acl.allows acl ~user:cred.Rpc.user ~client:cred.Rpc.client perm) then raise Denied
  end

(* Reading a version from the history pool once it has been superseded
   or deleted additionally requires the Recovery flag (or admin). *)
let require_history t (cred : Rpc.credential) oid =
  if not cred.Rpc.admin then begin
    let acl = current_acl t oid in
    if not (Acl.allows_recovery acl ~user:cred.Rpc.user ~client:cred.Rpc.client) then raise Denied
  end

let note_growth t (cred : Rpc.credential) bytes =
  match t.throttle with
  | Some th -> Throttle.note_write th ~client:cred.Rpc.client ~bytes
  | None -> ()

let exec t (cred : Rpc.credential) (req : Rpc.req) : Rpc.resp =
  let st = t.store in
  match req with
  | Rpc.Create { acl } ->
    let oid = Store.create_object st in
    let acl = if acl = [] then Acl.default ~owner:cred.Rpc.user else acl in
    Store.set_acl_raw st oid (Acl.encode acl);
    note_growth t cred 256;
    Rpc.R_oid oid
  | Rpc.Delete { oid } ->
    require t cred oid Acl.Delete;
    Store.delete_object st oid;
    note_growth t cred 256;
    Rpc.R_unit
  | Rpc.Read { oid; off; len; at } ->
    require t cred oid Acl.Read;
    (match at with None -> () | Some _ -> require_history t cred oid);
    Rpc.R_data (Store.read st ?at oid ~off ~len)
  | Rpc.Write { oid; off; len; data } ->
    require t cred oid Acl.Write;
    Store.write st oid ~off ?data ~len ();
    note_growth t cred len;
    Rpc.R_unit
  | Rpc.Append { oid; len; data } ->
    require t cred oid Acl.Write;
    Store.append st oid ?data ~len ();
    note_growth t cred len;
    Rpc.R_unit
  | Rpc.Truncate { oid; size } ->
    require t cred oid Acl.Write;
    Store.truncate st oid ~size;
    note_growth t cred 256;
    Rpc.R_unit
  | Rpc.Get_attr { oid; at } ->
    require t cred oid Acl.Read;
    (match at with None -> () | Some _ -> require_history t cred oid);
    Rpc.R_attr (Store.get_attr st ?at oid)
  | Rpc.Set_attr { oid; attr } ->
    require t cred oid Acl.Set_attr;
    Store.set_attr st oid attr;
    note_growth t cred (Bytes.length attr);
    Rpc.R_unit
  | Rpc.Get_acl_by_user { oid; acl_user; at } ->
    require t cred oid Acl.Read;
    (match at with None -> () | Some _ -> require_history t cred oid);
    let acl = Acl.decode (Store.get_acl_raw st ?at oid) in
    (match Acl.find_by_user acl ~user:acl_user with
     | Some e -> Rpc.R_acl e
     | None -> Rpc.R_error Rpc.Not_found)
  | Rpc.Get_acl_by_index { oid; index; at } ->
    require t cred oid Acl.Read;
    (match at with None -> () | Some _ -> require_history t cred oid);
    let acl = Acl.decode (Store.get_acl_raw st ?at oid) in
    (match Acl.nth acl index with
     | Some e -> Rpc.R_acl e
     | None -> Rpc.R_error Rpc.Not_found)
  | Rpc.Set_acl { oid; index; entry } ->
    require t cred oid Acl.Set_acl;
    let acl = current_acl t oid in
    Store.set_acl_raw st oid (Acl.encode (Acl.set_nth acl index entry));
    note_growth t cred 64;
    Rpc.R_unit
  | Rpc.P_create { name; oid } ->
    let entries = read_ptable t () in
    if List.mem_assoc name entries then Rpc.R_error (Rpc.Bad_request "partition exists")
    else begin
      write_ptable t ((name, oid) :: entries);
      note_growth t cred (String.length name + 16);
      Rpc.R_unit
    end
  | Rpc.P_delete { name } ->
    let entries = read_ptable t () in
    if not (List.mem_assoc name entries) then Rpc.R_error Rpc.Not_found
    else begin
      write_ptable t (List.remove_assoc name entries);
      Rpc.R_unit
    end
  | Rpc.P_list { at } ->
    (match at with None -> () | Some _ -> if not cred.Rpc.admin then raise Denied);
    Rpc.R_names (List.map fst (read_ptable t ?at ()))
  | Rpc.P_mount { name; at } ->
    (match at with None -> () | Some _ -> if not cred.Rpc.admin then raise Denied);
    (match List.assoc_opt name (read_ptable t ?at ()) with
     | Some oid -> Rpc.R_oid oid
     | None -> Rpc.R_error Rpc.Not_found)
  | Rpc.Sync ->
    (* The audit trail shares the durability barrier: records buffered
       up to this point must survive a crash once the sync returns. The
       seal travels in the same flush as the records it covers, so a
       torn flush loses the seal before it can orphan any record. *)
    Audit.flush t.audit;
    if t.cfg.integrity then Audit.seal t.audit;
    Store.sync st;
    Rpc.R_unit
  | Rpc.Flush { until } ->
    if not cred.Rpc.admin then raise Denied;
    let until = min until (now t) in
    Store.expire st ~cutoff:until;
    ignore (Audit.expire t.audit ~cutoff:until);
    ignore (Log.reclaim_dead_segments t.log);
    Rpc.R_unit
  | Rpc.Flush_object { oid; until } ->
    if not cred.Rpc.admin then raise Denied;
    let until = min until (now t) in
    Store.expire_one st oid ~cutoff:until;
    ignore (Log.reclaim_dead_segments t.log);
    Rpc.R_unit
  | Rpc.Set_window { window } ->
    if not cred.Rpc.admin then raise Denied;
    Cleaner.set_window t.cleaner window;
    write_superblock t;
    Rpc.R_unit
  | Rpc.Read_audit { since; until } ->
    if not cred.Rpc.admin then raise Denied;
    Rpc.R_audit (Audit.records t.audit ~since ~until ())
  | Rpc.Verify_log { from } ->
    if not cred.Rpc.admin then raise Denied;
    Rpc.R_verify (Audit.verify ?from t.audit)

let handle_inner t (cred : Rpc.credential) req =
  t.ops <- t.ops + 1;
  Simclock.advance (clock t) (Simclock.of_us t.cfg.cpu_us_per_rpc);
  (* DoS defence: penalise clients abusing the history pool. *)
  (match t.throttle with
   | Some th ->
     let p = Throttle.penalty th ~client:cred.Rpc.client in
     if Int64.compare p 0L > 0 then Simclock.advance (clock t) p
   | None -> ());
  (* Transient faults are retried inside the log (Log.set_io_retry);
     what reaches this perimeter is permanent (or out of retries) and
     is surfaced as a clean R_error. Fault.Crashed is deliberately NOT
     caught: a crashed device has no valid in-memory state left, so
     the owner must discard this drive and reattach. *)
  let io_failed lba transient kind =
    t.io_errors <- t.io_errors + 1;
    Rpc.R_error
      (Rpc.Io_error
         (Printf.sprintf "%s fault at lba %d%s" kind lba
            (if transient then " (retries exhausted)" else "")))
  in
  let resp =
    try exec t cred req with
    | Denied -> Rpc.R_error Rpc.Permission_denied
    | Store.No_such_object _ -> Rpc.R_error Rpc.Not_found
    | Store.Is_deleted _ -> Rpc.R_error Rpc.Object_deleted
    | Log.Log_full -> Rpc.R_error Rpc.No_space
    | Invalid_argument m -> Rpc.R_error (Rpc.Bad_request m)
    | Fault.Read_fault { lba; transient } -> io_failed lba transient "read"
    | Fault.Write_fault { lba; transient } -> io_failed lba transient "write"
  in
  let ok = match resp with Rpc.R_error _ -> false | _ -> true in
  (* A media fault while persisting the audit trail must not take the
     whole drive down; count the loss and keep serving (degraded). *)
  (try
     Audit.append t.audit
       {
         Audit.at = now t;
         user = cred.Rpc.user;
         client = cred.Rpc.client;
         op = Rpc.op_name req;
         oid = oid_of_req req;
         info = Rpc.op_info req;
         ok;
       }
   with Fault.Read_fault _ | Fault.Write_fault _ -> t.audit_drops <- t.audit_drops + 1);
  if t.ops land 1023 = 0 then refresh_pressure t;
  resp

let barrier t =
  (* The durability barrier, shared by single-request [sync] and batch
     group commit: audit records buffered so far must survive a crash
     once the barrier returns (the audit-at-Sync invariant), then the
     store itself is made stable. A media fault here means the caller
     must not be told its mutations are durable. *)
  let io_failed lba transient kind =
    t.io_errors <- t.io_errors + 1;
    Some
      (Rpc.Io_error
         (Printf.sprintf "%s fault at lba %d%s" kind lba
            (if transient then " (retries exhausted)" else "")))
  in
  try
    Audit.flush t.audit;
    if t.cfg.integrity then Audit.seal t.audit;
    Store.sync t.store;
    None
  with
  | Fault.Read_fault { lba; transient } -> io_failed lba transient "sync read"
  | Fault.Write_fault { lba; transient } -> io_failed lba transient "sync write"

let handle_one t (cred : Rpc.credential) req =
  if not (Trace.on ()) then handle_inner t cred req
  else begin
    let disk = Log.disk t.log in
    let dev0 =
      Int64.add (Sim_disk.stats disk).Sim_disk.busy_ns (Sim_disk.phantom_ns disk)
    in
    let f0 = t.io_errors and r0 = (Log.stats t.log).Log.io_retries in
    let tok = Trace.enter Trace.Drive ~kind:(Rpc.op_name req) ~now:(now t) in
    Trace.set_oid tok (oid_of_req req);
    (match req with
     | Rpc.Read { at = Some at; _ } | Rpc.Get_attr { at = Some at; _ }
     | Rpc.Get_acl_by_user { at = Some at; _ } | Rpc.Get_acl_by_index { at = Some at; _ } ->
       Trace.set_at tok at
     | _ -> ());
    Trace.set_cutoff tok (detection_cutoff t);
    let fin () =
      Trace.add_faults tok (t.io_errors - f0);
      Trace.add_retries tok ((Log.stats t.log).Log.io_retries - r0);
      let dev1 =
        Int64.add (Sim_disk.stats disk).Sim_disk.busy_ns (Sim_disk.phantom_ns disk)
      in
      Trace.set_disk_ns tok (Int64.sub dev1 dev0)
    in
    match handle_inner t cred req with
    | resp ->
      (match resp with
       | Rpc.R_oid oid -> Trace.set_oid tok oid  (* Create learns its oid here *)
       | Rpc.R_data b -> Trace.set_bytes tok (Bytes.length b)
       | Rpc.R_error e -> Trace.fail tok (Rpc.err_tag e)
       | _ -> ());
      (match req with
       | Rpc.Write { len; _ } | Rpc.Append { len; _ } -> Trace.set_bytes tok len
       | _ -> ());
      fin ();
      Trace.finish tok ~now:(now t);
      resp
    | exception e ->
      (* Fault.Crashed and friends: the span is aborted, not lost. *)
      fin ();
      Trace.abort tok ~now:(now t);
      raise e
  end

let resp_ok = function Rpc.R_error _ -> false | _ -> true

let submit t (cred : Rpc.credential) ?(sync = false) reqs =
  (* The vectored entry point: every request runs with full
     per-request semantics (throttle, ACL, audit record, trace span),
     in array order; the durability barrier is paid once, after the
     last request (group commit). An empty batch with [sync] is a pure
     barrier. If the barrier fails, every response that claimed
     success is rewritten: un-persisted mutations must not be reported
     stable — the positional generalisation of the single-request
     sync-failure rule. *)
  let resps = Array.map (fun req -> handle_one t cred req) reqs in
  if sync && (Array.length reqs = 0 || Array.exists resp_ok resps) then
    match barrier t with
    | None -> resps
    | Some err ->
      Array.map (fun r -> if resp_ok r then Rpc.R_error err else r) resps
  else resps

let handle t (cred : Rpc.credential) ?(sync = false) req =
  (submit t cred ~sync [| req |]).(0)

let capacity t =
  let log = t.log in
  let block = Log.block_size log in
  (Log.usable_blocks log * block, (Log.usable_blocks log - Log.live_blocks log) * block)

let backend t =
  Backend.make ~clock:(clock t)
    ~keep_data:t.cfg.store.Store.keep_data
    ~capacity:(fun () -> capacity t)
    (submit t)

let run_cleaner t =
  (* Idle disk time accumulated since the last cleaner run: available
     to an overlapped (background) cleaner for free. *)
  let disk = Log.disk t.log in
  let busy = (Sim_disk.stats disk).Sim_disk.busy_ns in
  let elapsed = Int64.sub (now t) t.last_clean_at in
  let busy_delta = Int64.sub busy t.last_clean_busy in
  let idle_ns =
    let i = Int64.sub elapsed busy_delta in
    if Int64.compare i 0L > 0 then i else 0L
  in
  let report = Cleaner.run ~idle_ns t.cleaner in
  t.last_clean_at <- now t;
  t.last_clean_busy <- (Sim_disk.stats disk).Sim_disk.busy_ns;
  ignore (Audit.expire t.audit ~cutoff:(Cleaner.cutoff t.cleaner));
  ignore (Log.reclaim_dead_segments t.log);
  refresh_pressure t;
  report

let integrity_enabled t = t.cfg.integrity

let fsck t =
  Store.check ~extra_live:(Audit.live_addrs t.audit) t.store

let pp_stats ppf t =
  Format.fprintf ppf
    "drive: %d ops, window %.1f days, pressure %.2f, audit %d records%s@.%a@.%a"
    t.ops
    (Int64.to_float (window t) /. Int64.to_float day_ns)
    (pool_pressure t) (Audit.record_count t.audit)
    (if degraded t then
       Printf.sprintf " [DEGRADED: %d io errors, %d audit drops]" t.io_errors t.audit_drops
     else "")
    Store.pp_stats t.store Log.pp_stats t.log
