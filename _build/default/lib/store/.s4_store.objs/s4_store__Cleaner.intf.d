lib/store/cleaner.mli: Obj_store
