(** Randomized crash-recovery harness.

    The paper's guarantees are only as good as the recovery path, and
    recovery code that is never crashed is assumed-correct, not
    correct. This harness runs a deterministic randomized workload
    against a drive whose disk carries a {!S4_disk.Fault} policy,
    crashes the device at an arbitrary write (every run deterministic
    in its seed and crash point), reattaches, and checks the paper's
    invariants against an independently maintained oracle:

    - {b window survival}: every object state captured at a successful
      sync is still readable with a time-based read at the sync time;
    - {b audit continuity}: the recovered audit trail is a contiguous
      prefix of the requests actually handled (a crash may lose the
      buffered tail, never a middle record);
    - {b replay correctness}: the recovered store passes a full fsck
      and keeps serving new requests;
    - {b mirror convergence}: after a partial resync failure, retrying
      converges the replicas with no divergence ({!resync_run}).

    All randomness flows from explicit seeds; any failure is
    reproducible from its [seed] and [crash_after]. *)

type report = {
  seed : int;
  crash_after : int;  (** crash on this many workload disk writes (0 = none) *)
  crashed : bool;  (** whether the crash point was reached *)
  ops_before_crash : int;  (** RPCs completed before the crash *)
  snapshots : int;  (** synced snapshots checked after recovery *)
  audit_checked : int;  (** recovered audit records matched *)
  violations : string list;  (** empty = all invariants held *)
}

val workload_writes : ?ops:int -> seed:int -> unit -> int
(** Disk writes the seeded workload issues after format when run
    fault-free — the valid crash-point range for {!run}. *)

val run : ?ops:int -> seed:int -> crash_after:int -> unit -> report
(** One crash-recovery cycle: format, run the workload, crash on the
    [crash_after]-th disk write, reattach, verify. [crash_after = 0]
    disables the crash (the workload runs to completion and only the
    in-flight sanity checks apply). *)

val boundary_sweep : ?ops:int -> seed:int -> unit -> report list
(** {!run} once per possible crash point: every disk write boundary of
    the workload, [1 .. workload_writes]. *)

val sweep : ?ops:int -> seed:int -> runs:int -> unit -> report list
(** [runs] crash points drawn uniformly from the workload's write
    range, each with a distinct derived workload seed. *)

val rebalance_run : ?ops:int -> seed:int -> crash_after:int -> unit -> report
(** Sharded-array crash mid-rebalance: run the workload over a 2-shard
    array, add a third drive to the live array, and crash the whole
    array on the new drive's [crash_after]-th disk write during the
    migration. Every drive is then individually reattached and the
    array reassembled with [Router.attach]; verification checks that
    each object has exactly one authoritative holder, that every
    synced in-window version still answers through the routed surface,
    and that the interrupted migrations complete cleanly.
    [audit_checked] is always 0 for array runs. *)

val rebalance_writes : ?ops:int -> seed:int -> unit -> int
(** Disk writes the seeded rebalance issues on the newly added drive
    when run crash-free — the valid crash-point range for
    {!rebalance_run}. *)

val rebalance_sweep : seed:int -> runs:int -> unit -> report list
(** {!rebalance_run} at [runs] crash points drawn uniformly from each
    derived workload's rebalance write range. *)

val kill9_run :
  ?dir:string -> seed:int -> kill_after:int -> midflight:bool -> unit -> report
(** A {e real} crash: format a file-backed store under [dir], fork a
    child that serves it over TCP, run the seeded workload through a
    network client for [kill_after] acked requests (snapshot instants
    taken from the server's clock at each acked Sync), then [kill -9]
    the child and verify the surviving host file with the same oracle
    as {!run}. With [midflight] a 64-write batch is put in flight on a
    second connection just before the kill; it is never acked, so the
    oracle ignores it, and the audit check tolerates its trailing
    records ([crash_after] reports [kill_after]; [crashed] is always
    true). The store file is deleted on a clean report, kept for
    post-mortem otherwise. *)

val kill9_sweep : ?dir:string -> seed:int -> runs:int -> unit -> report list
(** {!kill9_run} at [runs] randomized kill points (8–79 acked ops,
    midflight on a coin flip), each with a distinct derived seed. *)

type resync_report = {
  r_seed : int;
  fail_writes : int;  (** secondary disk writes forced to fail *)
  first_error : bool;  (** whether the first resync attempt failed *)
  attempts : int;  (** resync calls until [Ok] *)
  r_violations : string list;
}

val resync_run : seed:int -> fail_writes:int -> unit -> resync_report
(** Mirror partial-failure scenario: the secondary fails, misses
    mutations, is repaired, and its first [fail_writes] disk writes
    during resync fail permanently. Resync is retried until it
    succeeds; the replicas must then be divergence-free with no
    residual lag — double-applied replay entries show up here. *)

val resync_sweep : seed:int -> runs:int -> unit -> resync_report list

val failed_reports : report list -> report list
(** Reports with at least one violation. *)

val pp_report : Format.formatter -> report -> unit
