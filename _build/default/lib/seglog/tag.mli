(** Identity of a log block, recorded in segment summaries.

    Every block written to the log carries a tag saying what it is and,
    where applicable, which object and file offset it belongs to. The
    cleaner uses tags to relocate live blocks; crash recovery uses them
    to find journal and checkpoint blocks. *)

type t =
  | Data of { oid : int64; fblock : int }
      (** object data; [fblock] is the block index within the object *)
  | Journal  (** packed journal entries (possibly several objects) *)
  | Checkpoint of { oid : int64 }
      (** dedicated (multi-block) metadata image for one large object *)
  | Ckpack  (** packed checkpoint block: many small objects' images *)
  | Objmap
      (** reserved for a persistent object map; the store recovers by
          scanning self-identifying blocks instead, so this tag is
          currently unused *)
  | Audit  (** audit-log block (reserved object) *)
  | Summary  (** segment summary block *)
  | Unknown
      (** assigned by crash-recovery probing to non-empty blocks it
          cannot identify (e.g. audit blocks in a segment whose summary
          was never written); their owners re-identify and re-tag them
          via [mark_live] *)

val equal : t -> t -> bool
val encode : S4_util.Bcodec.writer -> t -> unit
val decode : S4_util.Bcodec.reader -> t
val pp : Format.formatter -> t -> unit

val oid : t -> int64 option
(** Owning object, when the tag has one. *)
