lib/core/rpc.mli: Acl Audit Bytes Format
