lib/store/cleaner.ml: Array Bytes Entry Fun Int64 List Obj_store S4_compress S4_disk S4_seglog S4_util
