module Rng = S4_util.Rng

exception Read_fault of { lba : int; transient : bool }
exception Write_fault of { lba : int; transient : bool }
exception Crashed

type config = {
  read_fault_rate : float;
  transient_read_rate : float;
  write_fault_rate : float;
  transient_write_rate : float;
  torn_write_rate : float;
  corrupt_rate : float;
}

let quiet =
  {
    read_fault_rate = 0.0;
    transient_read_rate = 0.0;
    write_fault_rate = 0.0;
    transient_write_rate = 0.0;
    torn_write_rate = 0.0;
    corrupt_rate = 0.0;
  }

let default =
  {
    quiet with
    transient_read_rate = 0.001;
    transient_write_rate = 0.001;
  }

type stats = {
  mutable ops : int;
  mutable read_faults : int;
  mutable write_faults : int;
  mutable torn_writes : int;
  mutable corruptions : int;
  mutable crashes : int;
}

type t = {
  cfg : config;
  rng : Rng.t;
  mutable crash_after : int;  (* writes until crash; 0 = disarmed *)
  mutable is_crashed : bool;
  mutable forced_fails : int;  (* one-shot write failures pending *)
  mutable forced_transient : bool;
  s : stats;
}

let create ?(config = quiet) rng =
  {
    cfg = config;
    rng;
    crash_after = 0;
    is_crashed = false;
    forced_fails = 0;
    forced_transient = false;
    s = { ops = 0; read_faults = 0; write_faults = 0; torn_writes = 0; corruptions = 0; crashes = 0 };
  }

let config t = t.cfg
let stats t = t.s

let schedule_crash t ~after_writes =
  if after_writes <= 0 then invalid_arg "Fault.schedule_crash";
  t.crash_after <- after_writes

let cancel_crash t = t.crash_after <- 0
let crashed t = t.is_crashed

let fail_next t ~writes ~transient =
  if writes < 0 then invalid_arg "Fault.fail_next";
  t.forced_fails <- writes;
  t.forced_transient <- transient

type write_outcome = W_ok | W_torn of int | W_fail of bool | W_crash of int | W_corrupt

type read_outcome = R_ok | R_fail of bool

let hit t rate = rate > 0.0 && Rng.float t.rng 1.0 < rate

let on_write t ~sectors =
  if t.is_crashed then raise Crashed;
  t.s.ops <- t.s.ops + 1;
  if t.crash_after > 0 then begin
    t.crash_after <- t.crash_after - 1;
    if t.crash_after = 0 then begin
      t.is_crashed <- true;
      t.s.crashes <- t.s.crashes + 1;
      (* The dying write tears at an arbitrary sector boundary,
         including "nothing reached the platter". *)
      W_crash (Rng.int t.rng (sectors + 1))
    end
    else W_ok
  end
  else if t.forced_fails > 0 then begin
    t.forced_fails <- t.forced_fails - 1;
    t.s.write_faults <- t.s.write_faults + 1;
    W_fail t.forced_transient
  end
  else if hit t t.cfg.write_fault_rate then begin
    t.s.write_faults <- t.s.write_faults + 1;
    W_fail false
  end
  else if hit t t.cfg.transient_write_rate then begin
    t.s.write_faults <- t.s.write_faults + 1;
    W_fail true
  end
  else if sectors > 1 && hit t t.cfg.torn_write_rate then begin
    t.s.torn_writes <- t.s.torn_writes + 1;
    W_torn (Rng.int_in t.rng ~min:1 ~max:(sectors - 1))
  end
  else if hit t t.cfg.corrupt_rate then W_corrupt
  else W_ok

let on_read t ~sectors:_ =
  if t.is_crashed then raise Crashed;
  t.s.ops <- t.s.ops + 1;
  if hit t t.cfg.read_fault_rate then begin
    t.s.read_faults <- t.s.read_faults + 1;
    R_fail false
  end
  else if hit t t.cfg.transient_read_rate then begin
    t.s.read_faults <- t.s.read_faults + 1;
    R_fail true
  end
  else R_ok

let corrupt_bit t b =
  if Bytes.length b > 0 then begin
    let byte = Rng.int t.rng (Bytes.length b) in
    let bit = Rng.int t.rng 8 in
    Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
    t.s.corruptions <- t.s.corruptions + 1
  end
