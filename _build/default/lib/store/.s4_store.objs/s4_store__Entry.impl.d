lib/store/entry.ml: Bytes Format List Printf S4_seglog S4_util
