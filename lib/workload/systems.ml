module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Net = S4_disk.Net
module Drive = S4.Drive
module Client = S4.Client
module Store = S4_store.Obj_store
module Translator = S4_nfs.Translator
module Server = S4_nfs.Server
module Upfs = S4_baseline.Upfs
module Router = S4_shard.Router
module Mirror = S4_multi.Mirror
module Netserver = S4_net.Server
module Netclient = S4_net.Client
module Nettransport = S4_net.Transport

type t = {
  name : string;
  server : Server.t;
  clock : Simclock.t;
  disk : Sim_disk.t;
  drive : Drive.t option;
  translator : Translator.t option;
  router : Router.t option;
}

let benchmark_drive_config =
  {
    Drive.default_config with
    store = { Store.default_config with keep_data = false };
    throttle = None;
  }

let content_drive_config =
  { benchmark_drive_config with store = { Store.default_config with keep_data = true } }

module Config = struct
  type sys = t

  type t = {
    disk_mb : int option;
    drive_config : Drive.config;
    mirrored : bool;
    balanced : bool;
    read_overlap : bool;
    domains : int;
    server_config : Netserver.config option;
    client_config : Netclient.config option;
  }

  let domains_from_env () =
    match Sys.getenv_opt "S4_DOMAINS" with
    | None -> 1
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)

  let default =
    {
      disk_mb = None;
      drive_config = benchmark_drive_config;
      mirrored = false;
      balanced = false;
      read_overlap = false;
      domains = domains_from_env ();
      server_config = None;
      client_config = None;
    }

  let serial = { default with domains = 1 }
  let content = { default with drive_config = content_drive_config }
end

let mk_disk config () =
  let clock = Simclock.create () in
  let geometry =
    match config.Config.disk_mb with
    | None -> Geometry.cheetah_9gb
    | Some mb -> Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(mb * 1024 * 1024)
  in
  (clock, Sim_disk.create ~geometry clock)

let s4_remote ?(config = Config.default) () =
  let clock, disk = mk_disk config () in
  let drive = Drive.format ~config:config.Config.drive_config disk in
  let net = Net.create clock in
  let client = Client.connect net drive in
  let tr = Translator.mount (Translator.Remote client) in
  {
    name = "S4-remote";
    server = Server.of_translator ~name:"S4-remote" tr;
    clock;
    disk;
    drive = Some drive;
    translator = Some tr;
    router = None;
  }

let s4_nfs_server ?(config = Config.default) () =
  let clock, disk = mk_disk config () in
  let drive = Drive.format ~config:config.Config.drive_config disk in
  let tr = Translator.mount (Translator.Local drive) in
  let net = Net.create clock in
  let server = Server.over_net net (Server.of_translator ~name:"S4-NFS" tr) in
  { name = "S4-NFS"; server; clock; disk; drive = Some drive; translator = Some tr; router = None }

let s4_array ?(config = Config.default) ~shards () =
  if shards <= 0 then invalid_arg "Systems.s4_array: need at least one shard";
  let clock = Simclock.create () in
  let geometry =
    match config.Config.disk_mb with
    | None -> Geometry.cheetah_9gb
    | Some mb -> Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(mb * 1024 * 1024)
  in
  let mk_drive () =
    Drive.format ~config:config.Config.drive_config (Sim_disk.create ~geometry clock)
  in
  let members =
    List.init shards (fun i ->
        if config.Config.mirrored then begin
          let m = Mirror.create (mk_drive ()) (mk_drive ()) in
          if config.Config.balanced then Mirror.set_read_policy m Mirror.Balanced;
          (i, Router.Mirrored m)
        end
        else (i, Router.Single (mk_drive ())))
  in
  let router = Router.create members in
  Router.set_read_overlap router config.Config.read_overlap;
  Router.set_domains router config.Config.domains;
  let tr = Translator.mount (Translator.Backend (Router.backend router)) in
  let name =
    Printf.sprintf "S4-array-%d%s" shards (if config.Config.mirrored then "m" else "")
  in
  let net = Net.create clock in
  {
    name;
    server = Server.over_net net (Server.of_translator ~name tr);
    clock;
    disk = S4_seglog.Log.disk (Drive.log (List.hd (Router.all_drives router)));
    drive = None;
    translator = Some tr;
    router = Some router;
  }

(* Networked deployments: the same drive stack served through lib/net's
   wire protocol instead of an in-process call. *)

let s4_direct ?(config = Config.default) () =
  let clock, disk = mk_disk config () in
  let drive = Drive.format ~config:config.Config.drive_config disk in
  let tr = Translator.mount (Translator.Local drive) in
  {
    name = "S4-direct";
    server = Server.of_translator ~name:"S4-direct" tr;
    clock;
    disk;
    drive = Some drive;
    translator = Some tr;
    router = None;
  }

let s4_loopback ?(config = Config.default) () =
  let clock, disk = mk_disk config () in
  let drive = Drive.format ~config:config.Config.drive_config disk in
  let srv = Netserver.of_drive ?config:config.Config.server_config drive in
  (* Identity 1 matches the translator's default credential client, so
     the connection-derived identity leaves the audit trail identical
     to the in-process deployment. *)
  let client =
    Netclient.connect ?config:config.Config.client_config
      (Nettransport.loopback ~identity:1 srv)
  in
  let keep_data = config.Config.drive_config.Drive.store.Store.keep_data in
  let tr = Translator.mount (Translator.Backend (Netclient.backend ~clock ~keep_data client)) in
  {
    name = "S4-loopback";
    server = Server.of_translator ~name:"S4-loopback" tr;
    clock;
    disk;
    drive = Some drive;
    translator = Some tr;
    router = None;
  }

let s4_tcp ?(config = Config.default) () =
  let clock, disk = mk_disk config () in
  let drive = Drive.format ~config:config.Config.drive_config disk in
  let srv = Netserver.of_drive ?config:config.Config.server_config drive in
  let listener = Netserver.serve_tcp srv in
  let client =
    Netclient.connect ?config:config.Config.client_config
      (Nettransport.tcp ~host:"127.0.0.1" ~port:(Netserver.port listener))
  in
  let keep_data = config.Config.drive_config.Drive.store.Store.keep_data in
  let tr = Translator.mount (Translator.Backend (Netclient.backend ~clock ~keep_data client)) in
  let sys =
    {
      name = "S4-tcp";
      server = Server.of_translator ~name:"S4-tcp" tr;
      clock;
      disk;
      drive = Some drive;
      translator = Some tr;
      router = None;
    }
  in
  let stop () =
    Netclient.close client;
    Netserver.shutdown listener
  in
  (sys, stop)

let baseline name cfg config () =
  let clock, disk = mk_disk config () in
  let fs = Upfs.create cfg disk in
  let net = Net.create clock in
  let server = Server.over_net net (Upfs.server fs) in
  { name; server; clock; disk; drive = None; translator = None; router = None }

let bsd_ffs ?(config = Config.default) () = baseline "BSD-FFS" Upfs.ffs config ()
let linux_ext2 ?(config = Config.default) () = baseline "Linux-ext2" Upfs.ext2_sync config ()

let all_four ?(config = Config.default) () =
  [
    s4_remote ~config ();
    s4_nfs_server ~config ();
    bsd_ffs ~config ();
    linux_ext2 ~config ();
  ]

(* Compat wrappers over the old optional-argument constructors. They
   survive exactly one release; new code builds a {!Config.t}. *)
module Legacy = struct
  let cfg ?disk_mb ?(drive_config = benchmark_drive_config) ?(mirrored = false)
      ?(balanced = false) ?(read_overlap = false) ?server_config ?client_config () =
    {
      Config.default with
      disk_mb;
      drive_config;
      mirrored;
      balanced;
      read_overlap;
      server_config;
      client_config;
    }

  let s4_remote ?disk_mb ?drive_config () =
    s4_remote ~config:(cfg ?disk_mb ?drive_config ()) ()

  let s4_nfs_server ?disk_mb ?drive_config () =
    s4_nfs_server ~config:(cfg ?disk_mb ?drive_config ()) ()

  let s4_array ?disk_mb ?drive_config ?mirrored ?balanced ?read_overlap ~shards () =
    s4_array ~config:(cfg ?disk_mb ?drive_config ?mirrored ?balanced ?read_overlap ()) ~shards ()

  let s4_direct ?disk_mb ?drive_config () =
    s4_direct ~config:(cfg ?disk_mb ?drive_config ()) ()

  let s4_loopback ?disk_mb ?drive_config ?server_config ?client_config () =
    s4_loopback ~config:(cfg ?disk_mb ?drive_config ?server_config ?client_config ()) ()

  let s4_tcp ?disk_mb ?drive_config () = s4_tcp ~config:(cfg ?disk_mb ?drive_config ()) ()
  let bsd_ffs ?disk_mb () = bsd_ffs ~config:(cfg ?disk_mb ()) ()
  let linux_ext2 ?disk_mb () = linux_ext2 ~config:(cfg ?disk_mb ()) ()

  let all_four ?disk_mb ?drive_config () =
    all_four ~config:(cfg ?disk_mb ?drive_config ()) ()
end

let elapsed_seconds t thunk =
  let t0 = Simclock.now t.clock in
  let v = thunk () in
  (Simclock.to_seconds (Int64.sub (Simclock.now t.clock) t0), v)

let drives t =
  match (t.drive, t.router) with
  | Some d, _ -> [ d ]
  | None, Some r -> Router.all_drives r
  | None, None -> []

let drop_all_caches t =
  t.server.Server.reset_caches ();
  List.iter (fun d -> Store.drop_caches (Drive.store d)) (drives t)

let run_cleaner t =
  match (t.drive, t.router) with
  | Some d, _ -> ignore (Drive.run_cleaner d)
  | None, Some r -> Router.run_cleaners r
  | None, None -> ()

let ensure_space t ~min_free_segments =
  let module L = S4_seglog.Log in
  let per_drive clean d =
    let log = Drive.log d in
    let rec loop budget =
      if budget > 0 && L.free_segments log < min_free_segments then begin
        let before = L.free_segments log in
        clean ();
        if L.free_segments log > before then loop (budget - 1)
      end
    in
    loop 64
  in
  match (t.drive, t.router) with
  | Some d, _ -> per_drive (fun () -> ignore (Drive.run_cleaner d)) d
  | None, Some r ->
    List.iter (fun d -> per_drive (fun () -> Router.run_cleaners r) d) (Router.all_drives r)
  | None, None -> ()
