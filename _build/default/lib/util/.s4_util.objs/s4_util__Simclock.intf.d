lib/util/simclock.mli: Format
