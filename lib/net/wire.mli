(** Versioned, length-prefixed binary wire protocol for S4 RPC.

    This is the drive's real security boundary: everything that
    arrives on a connection is hostile until this codec has accepted
    it. Each frame is

    {v
      offset size  field
      0      4     magic "S4WP"
      4      1     protocol version (currently 1)
      5      1     frame kind
      6      2     reserved (must be zero)
      8      8     xid (request id; 0 for control frames)
      16     4     payload length (bytes)
      20     len   payload (kind-specific)
      20+len 4     CRC-32 of bytes [0, 20+len)
    v}

    Decoding is strict and bounded: a declared payload longer than the
    decoder's [max_frame] is rejected {e before} any payload arrives
    (so a hostile peer cannot make the server buffer unbounded input),
    the CRC must match, every payload must parse completely with no
    trailing bytes, and embedded counts are validated against the
    bytes actually present before any list is allocated. Malformed
    input yields {!Corrupt}, never an exception. *)

type frame =
  | Hello of { version : int; claim : int }
      (** client handshake; [claim] is the client id the host {e
          claims} — the server derives the real identity from the
          connection and echoes it in {!Hello_ack} *)
  | Hello_ack of { version : int; identity : int; now : int64 }
  | Request of { xid : int64; cred : S4.Rpc.credential; sync : bool; req : S4.Rpc.req }
  | Response of { xid : int64; resp : S4.Rpc.resp }
  | Proto_error of { xid : int64; message : string }
      (** protocol-level rejection (bad frame, limit exceeded); the
          sender closes the connection after emitting one *)
  | Stat of { xid : int64 }
  | Stat_ack of { xid : int64; total : int; free : int; now : int64 }
  | Goodbye  (** graceful close: the peer drains in-flight requests *)

val version : int
val header_len : int
(** Fixed frame header size (before the payload). *)

val overhead : int
(** Header plus CRC trailer: bytes a frame occupies beyond its payload. *)

val max_frame_default : int
(** Default payload-size cap (4 MiB). *)

val encode : frame -> Bytes.t
(** A complete frame, CRC included. *)

type decoded =
  | Frame of frame * int  (** a whole frame and the bytes it consumed *)
  | Need_more of int  (** incomplete: at least this many more bytes *)
  | Corrupt of string  (** unrecoverable: reject and close the stream *)

val decode : ?max_frame:int -> Bytes.t -> pos:int -> avail:int -> decoded
(** Decode one frame from [avail] bytes starting at [pos]. Never
    raises and never allocates more than [avail + O(1)] bytes. *)

val frame_name : frame -> string

val ensure_metrics : unit -> unit
(** Register the net layer's error-path counters
    ([net/decode_reject], [net/retry], [net/reconnect]) at zero so
    they are visible in a metrics dump even before any failure. *)
