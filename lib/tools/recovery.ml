module Rpc = S4.Rpc
module Acl = S4.Acl
module Store = S4_store.Obj_store
module N = S4_nfs.Nfs_types

type t = { target : Target.t; cred : Rpc.credential; hist : History.t }

type report = {
  files_restored : int;
  files_removed : int;
  dirs_restored : int;
  bytes_restored : int;
}

let of_target ?(cred = Rpc.admin_cred) target =
  { target; cred; hist = History.of_target ~cred target }

let create ?cred drive = of_target ?cred (Target.Drive drive)
let call t req = Target.handle t.target t.cred req

let err fmt = Format.kasprintf (fun s -> Error s) fmt

exception Fail of string

let unit_exn t req =
  match call t req with
  | Rpc.R_unit -> ()
  | Rpc.R_error e -> raise (Fail (Format.asprintf "%s: %a" (Rpc.op_name req) Rpc.pp_error e))
  | _ -> raise (Fail "unexpected response")

(* A run of independent repair requests goes down as one vectored
   submission (same per-request execution order, one round trip). *)
let submit_exn t reqs =
  match reqs with
  | [] -> ()
  | _ ->
    let arr = Array.of_list reqs in
    Array.iteri
      (fun i -> function
        | Rpc.R_error e ->
          raise (Fail (Format.asprintf "%s: %a" (Rpc.op_name arr.(i)) Rpc.pp_error e))
        | _ -> ())
      (Target.submit t.target t.cred arr)

(* An entry that grants nothing: [Set_acl] can only overwrite slots,
   never shorten the list, so entries added since [at] are blanked
   with this instead of removed. *)
let inert_entry = { Acl.user = Acl.any_user; client = Acl.any_client; perms = []; recovery = false }

(* Copy an object's ACL at [at] forward over its current ACL (slot by
   slot through the ordinary Set_acl surface — audited and versioned
   like everything else). Slots the intruder appended are blanked. *)
let restore_acl t ~at fh =
  let st = Target.store_of t.target fh in
  let old_raw = Store.get_acl_raw st ~at fh in
  let now_raw = Store.current_acl_raw st fh in
  if not (Bytes.equal old_raw now_raw) then begin
    let old_acl = Acl.decode old_raw in
    let old_len = List.length old_acl in
    let now_len = List.length (Acl.decode now_raw) in
    submit_exn t
      (List.mapi (fun index entry -> Rpc.Set_acl { oid = fh; index; entry }) old_acl
      @ List.init (max 0 (now_len - old_len)) (fun k ->
            Rpc.Set_acl { oid = fh; index = old_len + k; entry = inert_entry }))
  end

let restore_file t ~at fh =
  match History.stat t.hist ~at fh with
  | Error e -> Error e
  | Ok old_attr ->
    (match History.cat t.hist ~at fh with
     | Error e -> Error e
     | Ok data ->
       (try
          submit_exn t
            ((Rpc.Truncate { oid = fh; size = 0 }
             :: (if Bytes.length data > 0 then
                   [ Rpc.Write { oid = fh; off = 0; len = Bytes.length data; data = Some data } ]
                 else []))
            @ [ Rpc.Set_attr { oid = fh; attr = N.encode_attr old_attr } ]);
          restore_acl t ~at fh;
          unit_exn t Rpc.Sync;
          Ok (Bytes.length data)
        with Fail m -> Error m))

(* The current and historical views of one directory, by name. *)
let dir_views t ~at fh =
  match (History.ls t.hist fh, History.ls t.hist ~at fh) with
  | Ok now, Ok old -> Ok (now, old)
  | Error e, _ | _, Error e -> Error e

let restore_tree t ~at ~path =
  let report = ref { files_restored = 0; files_removed = 0; dirs_restored = 0; bytes_restored = 0 } in
  let bump f = report := f !report in
  let create_object () =
    match call t (Rpc.Create { acl = [] }) with
    | Rpc.R_oid oid -> oid
    | _ -> raise (Fail "create failed")
  in
  (* Directory slot surgery through the drive interface: rebuild the
     slot array of [dir] so its entries match [wanted], and restore
     the directory's own attributes (a timestomped mtime included) to
     their state at [at], corrected for the rebuilt size. *)
  let write_dir_slots dir (wanted : (N.dirent * N.attr) list) =
    let data = N.encode_dir (List.map fst wanted) in
    let attr =
      match History.stat t.hist ~at dir with
      | Ok attr -> attr
      | Error m -> raise (Fail m)
    in
    submit_exn t
      ((Rpc.Truncate { oid = dir; size = 0 }
       :: (if Bytes.length data > 0 then
             [ Rpc.Write { oid = dir; off = 0; len = Bytes.length data; data = Some data } ]
           else []))
      @ [ Rpc.Set_attr { oid = dir; attr = N.encode_attr { attr with N.size = Bytes.length data } } ])
  in
  (* Rebuild a deleted object (file or whole subtree) as of [at] into
     fresh objects — dead ObjectIDs cannot accept new writes. *)
  let rec materialize (e : N.dirent) (a : N.attr) =
    let fresh = create_object () in
    (* Carry the original object's ACL over so ownership and the
       Recovery flag survive resurrection. *)
    (let old_acl = Acl.decode (Store.get_acl_raw (Target.store_of t.target e.N.fh) ~at e.N.fh) in
     submit_exn t
       (List.mapi (fun index entry -> Rpc.Set_acl { oid = fresh; index; entry }) old_acl));
    (match a.N.ftype with
     | N.Fdir ->
       (match History.ls t.hist ~at e.N.fh with
        | Ok children ->
          let rebuilt =
            List.map (fun ((c : N.dirent), ca) -> ({ N.name = c.N.name; fh = materialize c ca }, ca)) children
          in
          let data = N.encode_dir (List.map (fun ((c : N.dirent), _) -> c) rebuilt) in
          if Bytes.length data > 0 then
            unit_exn t (Rpc.Write { oid = fresh; off = 0; len = Bytes.length data; data = Some data });
          bump (fun r -> { r with dirs_restored = r.dirs_restored + 1 })
        | Error m -> raise (Fail m))
     | N.Freg | N.Flnk ->
       (match History.cat t.hist ~at e.N.fh with
        | Ok data ->
          if Bytes.length data > 0 then
            unit_exn t (Rpc.Write { oid = fresh; off = 0; len = Bytes.length data; data = Some data });
          bump (fun r ->
              { r with files_restored = r.files_restored + 1; bytes_restored = r.bytes_restored + Bytes.length data })
        | Error m -> raise (Fail m)));
    unit_exn t (Rpc.Set_attr { oid = fresh; attr = N.encode_attr a });
    fresh
  in
  let rec restore_dir dir =
    match dir_views t ~at dir with
    | Error m -> raise (Fail m)
    | Ok (now, old) ->
      bump (fun r -> { r with dirs_restored = r.dirs_restored + 1 });
      (* Entries that did not exist at [at] are removed from the
         namespace (their objects stay in the history pool). *)
      let stale =
        List.filter
          (fun ((e : N.dirent), _) -> not (List.exists (fun ((o : N.dirent), _) -> o.N.name = e.N.name) old))
          now
      in
      (* Intruder-created directories are removed with their contents
         (the objects stay recoverable in the history pool). *)
      let rec delete_recursive fh (a : N.attr) =
        (match a.N.ftype with
         | N.Fdir ->
           (match History.ls t.hist fh with
            | Ok children -> List.iter (fun ((c : N.dirent), ca) -> delete_recursive c.N.fh ca) children
            | Error _ -> ())
         | N.Freg | N.Flnk -> ());
        unit_exn t (Rpc.Delete { oid = fh });
        bump (fun r -> { r with files_removed = r.files_removed + 1 })
      in
      List.iter (fun ((e : N.dirent), a) -> delete_recursive e.N.fh a) stale;
      (* Restore or resurrect every entry that existed at [at]. *)
      let rebuilt =
        List.map
          (fun ((e : N.dirent), (a : N.attr)) ->
            let live_now =
              match call t (Rpc.Get_attr { oid = e.N.fh; at = None }) with
              | Rpc.R_attr _ -> true
              | _ -> false
            in
            let fh =
              if live_now then begin
                (match a.N.ftype with
                 | N.Fdir -> restore_dir e.N.fh
                 | N.Freg | N.Flnk ->
                   (match restore_file t ~at e.N.fh with
                    | Ok bytes ->
                      bump (fun r ->
                          { r with
                            files_restored = r.files_restored + 1;
                            bytes_restored = r.bytes_restored + bytes })
                    | Error m -> raise (Fail m)));
                e.N.fh
              end
              else materialize e a
            in
            ({ N.name = e.N.name; fh }, a))
          old
      in
      restore_acl t ~at dir;
      write_dir_slots dir rebuilt
  in
  match History.resolve t.hist ~at path with
  | Error e -> err "cannot resolve %s at that time: %s" path e
  | Ok dir ->
    (try
       restore_dir dir;
       unit_exn t Rpc.Sync;
       Ok !report
     with Fail m -> Error m)

let pp_report ppf r =
  Format.fprintf ppf "%d files restored (%d bytes), %d intruder entries removed, %d directories"
    r.files_restored r.bytes_restored r.files_removed r.dirs_restored
