(** Detection-window capacity projection (the paper's Figure 7 and
    Section 5.2 arithmetic).

    Given a history-pool budget (the paper uses 10 GB — 20% of a
    50 GB disk) and a workload's daily write volume, project how many
    days of comprehensive history fit: as raw versions, after
    cross-version differencing, and after differencing plus
    compression. The paper's multipliers, measured with Xdelta on
    daily snapshots of the S4 tree, were ~3x for differencing and ~5x
    with compression on top; ours are measured by
    {!Diffstudy.run} and can be substituted. *)

type projection = {
  p_study : string;
  daily_write_bytes : int;
  pool_bytes : int;
  baseline_days : float;
  differenced_days : float;  (** with cross-version differencing *)
  compressed_days : float;  (** differencing + compression *)
}

val default_pool_bytes : int
(** 10 GB: 20% of the paper's 50 GB state-of-the-art disk. *)

val paper_differencing_factor : float
(** 3.0 — the paper's "space efficiency increased by 200%". *)

val paper_compression_factor : float
(** 5.0 — "+200% more for a total of 500%". *)

val project :
  ?pool_bytes:int ->
  ?diff_factor:float ->
  ?comp_factor:float ->
  S4_workload.Daily.study ->
  projection

val project_all :
  ?pool_bytes:int ->
  ?diff_factor:float ->
  ?comp_factor:float ->
  unit ->
  projection list
(** All three studies (AFS, NT, Santry). *)

val pp_projection : Format.formatter -> projection -> unit
