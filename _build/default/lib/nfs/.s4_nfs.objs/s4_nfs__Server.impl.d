lib/nfs/server.ml: Bytes Format List Nfs_types S4_disk String Translator Xdr
