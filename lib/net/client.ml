module Rpc = S4.Rpc
module Rng = S4_util.Rng
module Metrics = S4_obs.Metrics

type config = {
  req_timeout_s : float;
  max_retries : int;
  backoff_ms : float;
  jitter : float;
  seed : int;
  claim_client : int;
  advertise_version : int;
      (* protocol version offered in Hello; lower it to exercise the
         v1 fallback against a batch-capable server *)
  max_batch : int;  (* largest Batch frame this client will send *)
  cache_budget : int;
      (* lease-cache LRU budget in bytes; 0 disables the cache. Only
         effective on a v3 session — an older server grants no leases,
         which leaves the cache permanently empty. *)
  cache_journal : bool;  (* record the cache event journal for Cache.check *)
}

let default_config =
  {
    req_timeout_s = 5.0;
    max_retries = 3;
    backoff_ms = 5.0;
    jitter = 0.25;
    seed = 42;
    claim_client = 1;
    advertise_version = Wire.version;
    max_batch = 256;
    cache_budget = 0;
    cache_journal = false;
  }

type t = {
  transport : Transport.t;
  cfg : config;
  rng : Rng.t;
  mutable ep : Transport.endpoint option;
  mutable c_identity : int;
  mutable c_server_now : int64;
  mutable c_version : int;  (* negotiated in the handshake *)
  mutable c_batch_limit : int;  (* server's advertised max batch; 0 unknown *)
  mutable next_xid : int64;
  mutable inbuf : Bytes.t;
  mutable in_len : int;
  mutable connected_once : bool;
  mutable n_retries : int;
  mutable n_reconnects : int;
  c_cache : Cache.t option;
}

exception Permanent of string

let connect ?(config = default_config) transport =
  Wire.ensure_metrics ();
  {
    transport;
    cfg = config;
    rng = Rng.create ~seed:config.seed;
    ep = None;
    c_identity = 0;
    c_server_now = 0L;
    c_version = min config.advertise_version Wire.version;
    c_batch_limit = 0;
    next_xid = 1L;
    inbuf = Bytes.create 4096;
    in_len = 0;
    connected_once = false;
    n_retries = 0;
    n_reconnects = 0;
    c_cache =
      (if config.cache_budget > 0 then
         Some (Cache.create ~journal:config.cache_journal ~budget:config.cache_budget ())
       else None);
  }

let identity t = t.c_identity
let server_now t = t.c_server_now
let cache t = t.c_cache

(* Every v3 reply carries the server clock; the cache judges lease
   expiry against the freshest value seen. *)
let observe_now t now =
  if now > t.c_server_now then t.c_server_now <- now;
  match t.c_cache with Some c -> Cache.observe_now c now | None -> ()
let version t = t.c_version
let server_batch_limit t = t.c_batch_limit
let retries t = t.n_retries
let reconnects t = t.n_reconnects

let drop_ep t =
  (match t.ep with Some e -> (try e.Transport.ep_close () with _ -> ()) | None -> ());
  t.ep <- None;
  t.in_len <- 0

let fresh_xid t =
  let x = t.next_xid in
  t.next_xid <- Int64.add x 1L;
  x

let send ?version e frame =
  let b = Wire.encode ?version frame in
  Metrics.incr "net/frames_out";
  Metrics.incr ~by:(Bytes.length b) "net/bytes_out";
  e.Transport.ep_send b

(* Read one frame from the endpoint, buffering partial input. Raises
   Transport.Closed / Transport.Timeout on connection trouble and
   Permanent on an unrecoverable protocol answer. *)
let recv_frame t e : Wire.frame =
  let rec loop () =
    match Wire.decode t.inbuf ~pos:0 ~avail:t.in_len with
    | Wire.Frame (f, used) ->
      let rest = t.in_len - used in
      if rest > 0 then Bytes.blit t.inbuf used t.inbuf 0 rest;
      t.in_len <- rest;
      Metrics.incr "net/frames_in";
      f
    | Wire.Corrupt msg ->
      drop_ep t;
      raise (Permanent ("server sent corrupt frame: " ^ msg))
    | Wire.Need_more _ ->
      if t.in_len = Bytes.length t.inbuf then begin
        let nb = Bytes.create (2 * Bytes.length t.inbuf) in
        Bytes.blit t.inbuf 0 nb 0 t.in_len;
        t.inbuf <- nb
      end;
      let n = e.Transport.ep_recv t.inbuf t.in_len (Bytes.length t.inbuf - t.in_len) in
      if n = 0 then raise Transport.Closed;
      Metrics.incr ~by:n "net/bytes_in";
      t.in_len <- t.in_len + n;
      loop ()
  in
  loop ()

let ensure_ep t =
  match t.ep with
  | Some e -> e
  | None ->
    let e = t.transport.Transport.connect () in
    let ok = ref false in
    Fun.protect
      ~finally:(fun () -> if not !ok then try e.Transport.ep_close () with _ -> ())
      (fun () ->
        e.Transport.ep_set_timeout (Some t.cfg.req_timeout_s);
        t.ep <- Some e;
        t.in_len <- 0;
        (* The Hello bootstraps negotiation, so its header version is
           the floor every peer can decode; the payload advertises our
           best. The server acks the min of the two. *)
        send ~version:Wire.min_version e
          (Wire.Hello { version = t.cfg.advertise_version; claim = t.cfg.claim_client });
        let rec await () =
          match recv_frame t e with
          | Wire.Hello_ack { version; identity; now } ->
            t.c_version <- max Wire.min_version (min version t.cfg.advertise_version);
            t.c_identity <- identity;
            if now > t.c_server_now then t.c_server_now <- now;
            (match t.c_cache with Some c -> Cache.observe_now c now | None -> ())
          | Wire.Proto_error { message; _ } ->
            raise (Permanent ("handshake refused: " ^ message))
          | _ -> await ()
        in
        await ();
        if t.connected_once then begin
          t.n_reconnects <- t.n_reconnects + 1;
          Metrics.incr "net/reconnect"
        end;
        t.connected_once <- true;
        ok := true);
    if not !ok then t.ep <- None;
    e

(* One request on the live endpoint; answers with the response and the
   lease the server piggybacked on it (0 on a v1/v2 session). *)
let rpc_once t cred sync req : Rpc.resp * int64 =
  let e = ensure_ep t in
  let xid = fresh_xid t in
  send ~version:t.c_version e (Wire.Request { xid; cred; sync; req });
  let rec await () =
    match recv_frame t e with
    | Wire.Response { xid = x; resp; now; lease } when Int64.equal x xid ->
      observe_now t now;
      (resp, lease)
    | Wire.Response { now; _ } ->
      (* stale answer from a timed-out request *)
      observe_now t now;
      await ()
    | Wire.Proto_error { message; _ } ->
      drop_ep t;
      raise (Permanent ("server rejected request: " ^ message))
    | Wire.Hello_ack { identity; now; _ } ->
      t.c_identity <- identity;
      observe_now t now;
      await ()
    | Wire.Stat_ack _ | Wire.Batch_reply _ -> await ()
    | Wire.Hello _ | Wire.Request _ | Wire.Stat _ | Wire.Goodbye | Wire.Batch _ ->
      drop_ep t;
      raise Transport.Closed
  in
  await ()

let backoff t attempt =
  let base = t.cfg.backoff_ms *. (2.0 ** float_of_int attempt) in
  let jit = 1.0 +. (t.cfg.jitter *. Rng.float t.rng 1.0) in
  Unix.sleepf (base *. jit /. 1000.0)

let transient_failure = function
  | Transport.Closed | Transport.Timeout -> true
  | Unix.Unix_error _ -> true
  | _ -> false

let failure_message = function
  | Transport.Timeout -> "request timed out"
  | Transport.Closed -> "connection lost"
  | Unix.Unix_error (e, _, _) -> Unix.error_message e
  | exn -> Printexc.to_string exn

let handle_wire t cred ~sync req : Rpc.resp * int64 =
  let idempotent = not (Rpc.is_mutation req) in
  let rec go attempt =
    match rpc_once t cred sync req with
    | answer -> answer
    | exception Permanent msg -> (Rpc.R_error (Rpc.Io_error msg), 0L)
    | exception exn when transient_failure exn ->
      drop_ep t;
      if idempotent && attempt < t.cfg.max_retries then begin
        t.n_retries <- t.n_retries + 1;
        Metrics.incr "net/retry";
        backoff t attempt;
        go (attempt + 1)
      end
      else (Rpc.R_error (Rpc.Io_error (failure_message exn)), 0L)
  in
  go 0

let handle t cred ?(sync = false) req : Rpc.resp =
  match t.c_cache with
  | None -> fst (handle_wire t cred ~sync req)
  | Some cache -> (
    match Cache.find cache cred req with
    | Some resp ->
      Metrics.incr "net/cache_served";
      resp
    | None ->
      let resp, lease = handle_wire t cred ~sync req in
      if Rpc.is_mutation req then Cache.invalidate_req cache req
      else Cache.store cache cred req resp ~lease;
      resp)

let pipeline t cred ?(sync = false) reqs : Rpc.resp list =
  match reqs with
  | [] -> []
  | _ -> (
    let fallback msg = List.map (fun _ -> Rpc.R_error (Rpc.Io_error msg)) reqs in
    match ensure_ep t with
    | exception Permanent msg -> fallback msg
    | exception exn when transient_failure exn ->
      drop_ep t;
      fallback (failure_message exn)
    | e -> (
      try
        let xids =
          List.map
            (fun req ->
              let xid = fresh_xid t in
              send ~version:t.c_version e (Wire.Request { xid; cred; sync; req });
              xid)
            reqs
        in
        let answers : (int64, Rpc.resp) Hashtbl.t = Hashtbl.create (List.length reqs) in
        let outstanding = ref (List.length reqs) in
        while !outstanding > 0 do
          match recv_frame t e with
          | Wire.Response { xid; resp; now; _ } ->
            observe_now t now;
            if not (Hashtbl.mem answers xid) then begin
              Hashtbl.add answers xid resp;
              decr outstanding
            end
          | Wire.Proto_error { message; _ } ->
            drop_ep t;
            raise (Permanent ("server rejected request: " ^ message))
          | _ -> ()
        done;
        List.map
          (fun xid ->
            match Hashtbl.find_opt answers xid with
            | Some r -> r
            | None -> Rpc.R_error (Rpc.Io_error "no response"))
          xids
      with
      | Permanent msg -> fallback msg
      | exn when transient_failure exn ->
        drop_ep t;
        fallback (failure_message exn)))

(* One batched exchange on the live endpoint. On a v2 session this is
   a single [Batch] frame (one group-commit barrier server-side); a
   peer negotiated down to v1 gets pipelined [Request] frames with the
   durability barrier riding on the last one — the closest v1
   approximation of group commit. *)
let batch_once t cred sync (reqs : Rpc.req array) : Rpc.resp array * int64 array =
  let e = ensure_ep t in
  if t.c_version >= 2 then begin
    let xid = fresh_xid t in
    send ~version:t.c_version e (Wire.Batch { xid; cred; sync; reqs });
    let rec await () =
      match recv_frame t e with
      | Wire.Batch_reply { xid = x; resps; now; leases } when Int64.equal x xid ->
        observe_now t now;
        if Array.length resps = Array.length reqs then
          ( resps,
            if Array.length leases = Array.length resps then leases
            else Array.make (Array.length resps) 0L )
        else begin
          drop_ep t;
          raise (Permanent "batch response count mismatch")
        end
      | Wire.Batch_reply _ | Wire.Response _ -> await () (* stale answers *)
      | Wire.Proto_error { message; _ } ->
        drop_ep t;
        raise (Permanent ("server rejected request: " ^ message))
      | Wire.Hello_ack { identity; now; _ } ->
        t.c_identity <- identity;
        observe_now t now;
        await ()
      | Wire.Stat_ack _ -> await ()
      | Wire.Hello _ | Wire.Request _ | Wire.Stat _ | Wire.Goodbye | Wire.Batch _ ->
        drop_ep t;
        raise Transport.Closed
    in
    await ()
  end
  else begin
    let n = Array.length reqs in
    if n = 0 then begin
      (* No request to carry the barrier on a v1 session: an explicit
         (audited) Sync is the only barrier v1 has. *)
      if sync then ignore (rpc_once t cred true Rpc.Sync);
      ([||], [||])
    end
    else begin
      let xids =
        Array.mapi
          (fun i req ->
            let xid = fresh_xid t in
            send ~version:t.c_version e
              (Wire.Request { xid; cred; sync = sync && i = n - 1; req });
            xid)
          reqs
      in
      let answers : (int64, Rpc.resp) Hashtbl.t = Hashtbl.create n in
      let outstanding = ref n in
      while !outstanding > 0 do
        match recv_frame t e with
        | Wire.Response { xid; resp; now; _ } ->
          observe_now t now;
          if not (Hashtbl.mem answers xid) then begin
            Hashtbl.add answers xid resp;
            decr outstanding
          end
        | Wire.Proto_error { message; _ } ->
          drop_ep t;
          raise (Permanent ("server rejected request: " ^ message))
        | _ -> ()
      done;
      ( Array.map
          (fun xid ->
            match Hashtbl.find_opt answers xid with
            | Some r -> r
            | None -> Rpc.R_error (Rpc.Io_error "no response"))
          xids,
        Array.make n 0L )
    end
  end

let submit_wire t cred ~sync (reqs : Rpc.req array) : Rpc.resp array * int64 array =
  let n = Array.length reqs in
  let limit =
    let l = if t.c_batch_limit > 0 then min t.c_batch_limit t.cfg.max_batch else t.cfg.max_batch in
    max 1 l
  in
  let idempotent = not (Array.exists Rpc.is_mutation reqs) in
  let out = Array.make n (Rpc.R_error (Rpc.Io_error "not executed")) in
  let out_leases = Array.make n 0L in
  let fill_from pos msg =
    for i = pos to n - 1 do
      out.(i) <- Rpc.R_error (Rpc.Io_error msg)
    done
  in
  (* An oversize submission is sliced to the batch limit; the barrier
     rides only on the last slice, so the whole submission still pays
     one group commit. *)
  let rec run pos =
    if pos >= n && not (n = 0 && sync) then ()
    else begin
      let len = min limit (n - pos) in
      let chunk = if n = 0 then [||] else Array.sub reqs pos len in
      let last = pos + len >= n in
      let rec attempt k =
        match batch_once t cred (sync && last) chunk with
        | resps, leases ->
          Array.blit resps 0 out pos len;
          if Array.length leases = len then Array.blit leases 0 out_leases pos len;
          if last then () else run (pos + len)
        | exception Permanent msg -> fill_from pos msg
        | exception exn when transient_failure exn ->
          drop_ep t;
          if idempotent && k < t.cfg.max_retries then begin
            t.n_retries <- t.n_retries + 1;
            Metrics.incr "net/retry";
            backoff t k;
            attempt (k + 1)
          end
          else fill_from pos (failure_message exn)
      in
      attempt 0
    end
  in
  run 0;
  (out, out_leases)

let submit t cred ?(sync = false) (reqs : Rpc.req array) : Rpc.resp array =
  match t.c_cache with
  | None -> fst (submit_wire t cred ~sync reqs)
  | Some cache ->
    let n = Array.length reqs in
    let out : Rpc.resp option array = Array.make n None in
    (* Serve what the cache can locally; those requests never cross the
       wire at all. A cached read is only consulted when no {e earlier}
       request in this submission mutates its oid — the server would
       have executed them in order. *)
    let dirty = ref false in
    Array.iteri
      (fun i req ->
        if Rpc.is_mutation req then dirty := true
        else if not !dirty then
          match Cache.find cache cred req with
          | Some resp ->
            Metrics.incr "net/cache_served";
            out.(i) <- Some resp
          | None -> ())
      reqs;
    let miss_idx = ref [] in
    Array.iteri (fun i _ -> if out.(i) = None then miss_idx := i :: !miss_idx) reqs;
    let miss_idx = Array.of_list (List.rev !miss_idx) in
    let sub = Array.map (fun i -> reqs.(i)) miss_idx in
    (* All hits: an unsynced submission is fully answered locally; a
       synced one still owes the server its group-commit barrier. *)
    if Array.length sub > 0 || sync then begin
      let resps, leases = submit_wire t cred ~sync sub in
      Array.iteri
        (fun j i ->
          let req = reqs.(i) and resp = resps.(j) in
          out.(i) <- Some resp;
          if Rpc.is_mutation req then Cache.invalidate_req cache req
          else Cache.store cache cred req resp ~lease:leases.(j))
        miss_idx
    end;
    Array.map (function Some r -> r | None -> Rpc.R_error (Rpc.Io_error "not executed")) out

let capacity t =
  let once () =
    let e = ensure_ep t in
    let xid = fresh_xid t in
    send ~version:t.c_version e (Wire.Stat { xid });
    let rec await () =
      match recv_frame t e with
      | Wire.Stat_ack { xid = x; total; free; now; batch } when Int64.equal x xid ->
        observe_now t now;
        if batch > 0 then t.c_batch_limit <- batch;
        (total, free)
      | Wire.Proto_error { message; _ } ->
        drop_ep t;
        raise (Permanent message)
      | _ -> await ()
    in
    await ()
  in
  let rec go attempt =
    match once () with
    | (r : int * int) -> r
    | exception Permanent _ -> (0, 0)
    | exception exn when transient_failure exn ->
      drop_ep t;
      if attempt < t.cfg.max_retries then begin
        t.n_retries <- t.n_retries + 1;
        Metrics.incr "net/retry";
        backoff t attempt;
        go (attempt + 1)
      end
      else (0, 0)
  in
  go 0

let close t =
  (match t.ep with
  | Some e -> ( try send ~version:t.c_version e Wire.Goodbye with _ -> ())
  | None -> ());
  drop_ep t

let backend ~clock ~keep_data t =
  S4.Backend.make ~clock ~keep_data
    ~capacity:(fun () -> capacity t)
    ~close:(fun () -> close t)
    (submit t)
