(** Whole-run invariant checker over a span snapshot.

    The trace and the audit log are independent witnesses of the same
    execution; this checker makes them corroborate each other and
    validates the structural guarantees the S4 design promises:

    - {b audit correspondence}: every audit record matches exactly one
      drive-layer span (same op, oid and outcome, with the record's
      timestamp inside the span); with [~complete:true] the match is
      exhaustive in both directions — every drive span has its record.
    - {b monotonicity}: per object, successful drive-level mutation
      spans start in non-decreasing simulated time; optionally, the
      store's retained version chains have strictly increasing
      sequence numbers and non-decreasing timestamps.
    - {b detection window}: a time-based read at [at >= cutoff] must
      not fail with [not_found] when the trace proves the object
      already existed at [at] (a successful mutation span finished
      before [at]) and no delete preceded it — the in-window history
      guarantee, checked across crashes and migrations.
    - {b fan-out charging}: a router span charges the shared clock at
      the slowest involved member: its duration covers the charge, and
      the charge covers the largest device-time delta any child drive
      span accumulated.
    - {b nesting}: every child span lies within its parent's interval,
      and every span is closed.

    The checker depends only on [s4_util]; callers adapt their audit
    records into {!audit_view} to avoid a dependency cycle. *)

type audit_view = { a_at : int64; a_op : string; a_oid : int64; a_ok : bool }

type result = {
  violations : string list;  (** empty = every invariant held *)
  spans_checked : int;
  audit_matched : int;
}

val run :
  ?audit:audit_view list ->
  ?chain:S4_integrity.Chain.verify_result ->
  ?complete:bool ->
  ?versions:(int64 * (int * int64) list) list ->
  Trace.span array ->
  result
(** [run ?audit ?chain ?complete ?versions spans] checks every
    invariant the inputs allow. [audit] are the recovered audit records
    in log order (possibly a crash-truncated prefix); [chain] is the
    audit hash-chain verdict ({!S4_integrity.Chain.verify}) whose
    errors fold into the violation stream; [complete] (default false)
    asserts the audit trail is loss-free so the span/audit match must
    be a bijection. [versions] are per-object [(seq, time)] version
    chains, oldest first, as exported by the store. *)
