test/test_equivalence.ml: Alcotest Array Bytes Digest Format List Printf QCheck QCheck_alcotest S4_nfs S4_util S4_workload String
