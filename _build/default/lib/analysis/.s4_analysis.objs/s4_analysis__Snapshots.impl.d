lib/analysis/snapshots.ml: Array Float List S4_util
