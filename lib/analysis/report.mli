(** Table/series rendering for the benchmark harness: each experiment
    prints its figure or table as aligned rows, plus a crude text bar
    chart for series, so [bench/main.exe] output reads like the paper's
    figures. *)

val heading : string -> unit
(** Prints an underlined section heading to stdout. *)

val table : header:string list -> string list list -> unit
(** Column-aligned table. *)

val bars : ?width:int -> (string * float) list -> unit
(** Labelled horizontal bars scaled to the maximum value. *)

val series : ?width:int -> x_label:string -> y_label:string -> (float * float) list -> unit
(** A (x, y) series as rows with bars. *)

val kv : (string * string) list -> unit
(** Aligned key: value lines. *)

val note : string -> unit

(** {1 Machine-readable output} *)

val record : experiment:string -> ?label:string -> (string * float) list -> unit
(** Append one row of named numbers (optionally tagged with a string
    [label], e.g. the system name) to [experiment]'s series, kept in
    memory until {!write_json}. *)

val reset : unit -> unit
(** Drop every recorded row (test isolation). *)

val write_json : ?experiments:string list -> string -> unit
(** Write every recorded row to [path] as JSON: an object mapping each
    experiment name to an array of row objects, in recording order.
    [experiments] restricts the dump to the named subset. *)
