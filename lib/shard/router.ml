module Rpc = S4.Rpc
module Drive = S4.Drive
module Audit = S4.Audit
module Acl = S4.Acl
module Fault = S4_disk.Fault
module Chain = S4_integrity.Chain
module Catalog = S4_integrity.Catalog
module Store = S4_store.Obj_store
module Sim_disk = S4_disk.Sim_disk
module Log = S4_seglog.Log
module Simclock = S4_util.Simclock
module Mirror = S4_multi.Mirror
module Shard_domain = S4_multi.Shard_domain
module Trace = S4_obs.Trace

type member = Single of Drive.t | Mirrored of Mirror.t

type shard = {
  sh_id : int;
  sh_member : member;
  mutable sh_degraded : bool;
  mutable sh_io_errors : int;
  mutable sh_ops : int;
}

type migration = { m_oid : int64; m_src : int; m_dst : int }

type t = {
  clock : Simclock.t;
  ring : Ring.t;
  shards : (int, shard) Hashtbl.t;
  mutable order : int list;  (* shard ids, ascending *)
  (* The meta shard is the first member passed to create/attach — not
     necessarily the smallest id. *)
  meta : int;
  mutable next_oid : int64;
  mutable pending_oid : int64 option;
  forward : (int64, int) Hashtbl.t;  (* oid -> pre-cutover holder *)
  mutable migrations : migration list;  (* FIFO *)
  private_oids : (int64, unit) Hashtbl.t;  (* per-drive ptable objects *)
  mutable catalog_oid : int64 option;  (* meta-shard integrity catalog *)
  mutable catalog_cache : Catalog.entry list option;  (* last written *)
  pmount_cache : (string, int64) Hashtbl.t;
  mutable ops : int;
  mutable migrated_objects : int;
  mutable migrated_entries : int;
  mutable migrated_bytes : int;
  mutable trace_tok : int;  (* open router span, or Trace.null *)
  mutable read_overlap : bool;  (* batch reads charge as parallel work *)
  mutable domains : int;  (* worker-domain knob; <= 1 means serial *)
  mutable pool : Shard_domain.t option;  (* lazily built worker pool *)
}

let member_drives = function
  | Single d -> [ d ]
  | Mirrored m -> [ Mirror.drive m Mirror.Primary; Mirror.drive m Mirror.Secondary ]

let shard_drives sh = member_drives sh.sh_member
let shard_disks sh = List.map (fun d -> Log.disk (Drive.log d)) (shard_drives sh)

(* The store(s) the shard mutates. *)
let shard_stores sh = List.map Drive.store (shard_drives sh)

(* The authoritative store reads (and migration exports) come from:
   for a mirror, the live up-to-date replica — the secondary once the
   primary has failed or is lagging behind the missed-op journal. *)
let shard_store sh =
  match sh.sh_member with
  | Single d -> Drive.store d
  | Mirrored m ->
    let r =
      if Mirror.is_failed m Mirror.Primary || Mirror.lagging m = Some Mirror.Primary then
        Mirror.Secondary
      else Mirror.Primary
    in
    Drive.store (Mirror.drive m r)

let shard t id =
  match Hashtbl.find_opt t.shards id with
  | Some sh -> sh
  | None -> invalid_arg (Printf.sprintf "Router: no shard %d" id)

let shards t = List.map (shard t) t.order
let shard_ids t = t.order
let meta_shard t = t.meta
let clock t = t.clock
let ops_handled t = t.ops
let member t id = (shard t id).sh_member
let set_read_overlap t v = t.read_overlap <- v
let read_overlap t = t.read_overlap

(* --- per-shard worker domains ------------------------------------- *)

let close_domains t =
  match t.pool with
  | Some p ->
    Shard_domain.close p;
    t.pool <- None
  | None -> ()

let set_domains t n =
  let n = max 1 n in
  if n <> t.domains then begin
    (* Pool size depends on the knob; rebuild lazily at next dispatch. *)
    close_domains t;
    t.domains <- n
  end

let domains t = t.domains

(* The pool that parallel dispatch should use right now, if any. Built
   on first use so a router whose knob stays at 1 never spawns a
   domain. One worker per shard up to the knob; shard [id] is pinned
   to worker [id mod size], so each shard's drive stack is only ever
   touched by one domain. *)
let active_pool t =
  if t.domains <= 1 || List.length t.order <= 1 then None
  else
    match t.pool with
    | Some p -> Some p
    | None ->
      let p = Shard_domain.create (min t.domains (List.length t.order)) in
      t.pool <- Some p;
      Some p

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

(* Every member disk runs in phantom mode permanently: the shards of
   the array are physically parallel devices, so a request only costs
   the shared clock the service time of the slowest member it touched
   (see [charge]). Mirror secondaries were already phantom; making the
   whole array phantom subsumes that. *)
let set_all_phantom t =
  List.iter (fun sh -> List.iter (fun d -> Sim_disk.set_phantom d true) (shard_disks sh)) (shards t)

let install_allocator t sh =
  List.iter
    (fun st ->
      Store.set_oid_allocator st
        (Some
           (fun () ->
             match t.pending_oid with
             | Some g -> g
             | None -> invalid_arg "Router: drive-local create bypasses the array oid space")))
    (shard_stores sh)

let register t id m =
  if Hashtbl.mem t.shards id then invalid_arg "Router: duplicate shard id";
  let sh = { sh_id = id; sh_member = m; sh_degraded = false; sh_io_errors = 0; sh_ops = 0 } in
  List.iter
    (fun d ->
      if not (Drive.clock d == t.clock) then
        invalid_arg "Router: all member drives must share one Simclock";
      Hashtbl.replace t.private_oids (Drive.ptable_oid d) ())
    (member_drives m);
  Hashtbl.replace t.shards id sh;
  t.order <- List.sort compare (id :: t.order);
  List.iter
    (fun st -> if Int64.compare (Store.next_oid st) t.next_oid > 0 then t.next_oid <- Store.next_oid st)
    (shard_stores sh);
  install_allocator t sh;
  List.iter (fun d -> Sim_disk.set_phantom d true) (shard_disks sh);
  sh

let create_raw ?vnodes members =
  match members with
  | [] -> invalid_arg "Router.create: need at least one shard"
  | (_, m0) :: _ ->
    let clock = Drive.clock (List.hd (member_drives m0)) in
    let t =
      {
        clock;
        ring = Ring.create ?vnodes ();
        shards = Hashtbl.create 8;
        order = [];
        meta = fst (List.hd members);
        next_oid = 1L;
        pending_oid = None;
        forward = Hashtbl.create 64;
        migrations = [];
        private_oids = Hashtbl.create 8;
        catalog_oid = None;
        catalog_cache = None;
        pmount_cache = Hashtbl.create 16;
        ops = 0;
        migrated_objects = 0;
        migrated_entries = 0;
        migrated_bytes = 0;
        trace_tok = Trace.null;
        read_overlap = false;
        domains = 1;
        pool = None;
      }
    in
    List.iter (fun (id, m) -> ignore (register t id m)) members;
    List.iter (fun id -> Ring.add t.ring id) t.order;
    t

(* ------------------------------------------------------------------ *)
(* Time accounting                                                     *)

(* Run [f], then advance the shared clock by the largest phantom-time
   delta any involved disk accumulated: fan-outs complete when the
   slowest member does, not after the sum of all members. *)
let charge t involved f =
  let disks = List.concat_map shard_disks involved in
  let before = List.map (fun d -> (d, Sim_disk.phantom_ns d)) disks in
  let r = f () in
  let worst =
    List.fold_left
      (fun acc (d, b) ->
        let delta = Int64.sub (Sim_disk.phantom_ns d) b in
        if Int64.compare delta acc > 0 then delta else acc)
      0L before
  in
  if Int64.compare worst 0L > 0 then begin
    Simclock.advance t.clock worst;
    if Trace.on () then Trace.add_charged t.trace_tok worst
  end;
  r

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)

let is_io_error = function Rpc.R_error (Rpc.Io_error _) -> true | _ -> false

let dispatch _t sh cred ~sync req =
  sh.sh_ops <- sh.sh_ops + 1;
  let resp =
    match sh.sh_member with
    | Single d -> Drive.handle d cred ~sync req
    | Mirrored m -> Mirror.handle m cred ~sync req
  in
  if is_io_error resp then begin
    (* A mirrored shard only surfaces Io_error once failover inside the
       mirror is exhausted, so in either case the shard is degraded. *)
    sh.sh_degraded <- true;
    sh.sh_io_errors <- sh.sh_io_errors + 1
  end;
  resp

(* Current holder: a not-yet-cut-over migration forwards to the old
   home; everything else is pure ring placement. *)
let holder t oid =
  match Hashtbl.find_opt t.forward oid with
  | Some id -> id
  | None -> Ring.owner t.ring oid

let shard_of = holder

let route_to_holder t oid cred ~sync req =
  let sh = shard t (holder t oid) in
  charge t [ sh ] (fun () -> dispatch t sh cred ~sync req)

let fanout t cred ~sync req ~merge =
  let all = shards t in
  charge t all (fun () -> merge (List.map (fun sh -> (sh, dispatch t sh cred ~sync req)) all))

let merge_units resps =
  match List.find_opt (fun (_, r) -> r <> Rpc.R_unit) resps with
  | Some (_, r) -> r
  | None -> Rpc.R_unit

let merge_audit resps =
  let rec collect acc = function
    | [] ->
      let records = List.concat (List.rev acc) in
      let sorted = List.stable_sort (fun a b -> compare a.Audit.at b.Audit.at) records in
      Rpc.R_audit sorted
    | (_, Rpc.R_audit rs) :: rest -> collect (rs :: acc) rest
    | (_, other) :: _ -> other
  in
  collect [] resps

(* ------------------------------------------------------------------ *)
(* Integrity catalog                                                   *)

(* A meta-shard object replicating every member drive's sealed audit
   chain head. It is written inside the same durability barrier that
   seals the members, so after any crash the catalog is at most one
   epoch away from each member; any deeper disagreement means a chain
   was rolled back or forked behind the array's back. The object is
   array-private (admin-only ACL, excluded from placement) and found
   again at attach through a reserved name in the meta drive's
   partition table. *)

let catalog_name = ".s4/integrity"

let all_drives t = List.concat_map shard_drives (shards t)

let replica_name = function 0 -> "primary" | _ -> "secondary"

let drive_entries t =
  List.concat_map
    (fun sh -> List.mapi (fun i d -> (sh.sh_id, i, d)) (shard_drives sh))
    (shards t)

(* A catalog exists only when there is more than one chain to keep
   honest: a single-drive array stays byte-identical to a bare drive
   (its own seals plus the disk-header anchor already cover it). *)
let catalog_wanted t =
  (match all_drives t with [] | [ _ ] -> false | _ -> true)
  && List.exists
       (fun d -> Drive.integrity_enabled d && Audit.enabled (Drive.audit d))
       (all_drives t)

(* The stores a catalog write lands on: every live replica of the meta
   member (a failed replica's store may be unusable; the next write
   after resync reconverges it, since the whole object is rewritten). *)
let catalog_stores t =
  match (shard t t.meta).sh_member with
  | Single d -> [ Drive.store d ]
  | Mirrored m ->
    List.filter_map
      (fun r -> if Mirror.is_failed m r then None else Some (Drive.store (Mirror.drive m r)))
      [ Mirror.Primary; Mirror.Secondary ]

let read_catalog t =
  match t.catalog_oid with
  | None -> `No_catalog
  | Some oid -> (
    let st = shard_store (shard t t.meta) in
    match Store.size st oid with
    | 0 -> `Ok []
    | size -> (
      match Catalog.decode (Store.read st oid ~off:0 ~len:size) with
      | Some entries -> `Ok entries
      | None -> `Bad)
    | exception Store.No_such_object _ -> `Bad)

let write_catalog t entries =
  match t.catalog_oid with
  | None -> ()
  | Some oid ->
    let data = Catalog.encode entries in
    let len = Bytes.length data in
    List.iter
      (fun st ->
        Store.write st oid ~off:0 ~data ~len ();
        if Store.size st oid > len then Store.truncate st oid ~size:len)
      (catalog_stores t);
    t.catalog_cache <- Some entries

let catalog_init t =
  if t.catalog_oid = None && catalog_wanted t then begin
    let meta_sh = shard t t.meta in
    let meta_drives = shard_drives meta_sh in
    match List.find_map (fun d -> Drive.named_oid d catalog_name) meta_drives with
    | Some oid ->
      t.catalog_oid <- Some oid;
      Hashtbl.replace t.private_oids oid ()
    | None ->
      let g = t.next_oid in
      t.pending_oid <- Some g;
      Fun.protect
        ~finally:(fun () -> t.pending_oid <- None)
        (fun () ->
          List.iter
            (fun st ->
              let oid = Store.create_object st in
              if not (Int64.equal oid g) then
                invalid_arg (Printf.sprintf "Router: catalog allocated oid %Ld, expected %Ld" oid g);
              (* Empty ACL: only the admin credential passes. *)
              Store.set_acl_raw st oid (Acl.encode []))
            (shard_stores meta_sh));
      t.next_oid <- Int64.add g 1L;
      List.iter (fun d -> Drive.register_name d catalog_name g) meta_drives;
      t.catalog_oid <- Some g;
      Hashtbl.replace t.private_oids g ()
  end

(* The widest detection window any member guarantees: a retained floor
   for a departed member stays cross-checkable for as long as any
   surviving drive could still hold in-window history about it. *)
let array_window t =
  List.fold_left
    (fun acc d ->
      let w = Drive.window d in
      if Int64.compare w acc > 0 then w else acc)
    0L (all_drives t)

(* Pin every member's about-to-be-sealed head into the catalog. Runs
   inside the barrier's charge, after chaining all buffered records and
   before the member barriers, so the catalog write is made durable by
   the same barrier whose seals it records. Direct store access: the
   catalog write itself must not generate audit records, or the heads
   it just recorded would be stale the moment it landed.

   The update is a merge, not a rebuild: a member that is absent this
   barrier (shard removed, integrity switched off) keeps its last
   recorded floor — still evidence against a rewrite — until the
   floor's [at] stamp ages past the detection window, at which point
   it is pruned like any other expired history. *)
let update_catalog t =
  match t.catalog_oid with
  | None -> ()
  | Some _ -> (
    try
      List.iter (fun d -> Audit.flush (Drive.audit d)) (all_drives t);
      let now = Simclock.now t.clock in
      let prev =
        match t.catalog_cache with
        | Some e -> e
        | None -> ( match read_catalog t with `Ok e -> e | `No_catalog | `Bad -> [])
      in
      let live_heads =
        List.filter_map
          (fun (sid, ri, d) ->
            if Drive.integrity_enabled d && Audit.enabled (Drive.audit d) then
              Some (sid, ri, Audit.prospective_head (Drive.audit d))
            else None)
          (drive_entries t)
      in
      let live ~shard ~replica =
        List.exists (fun (sid, ri, _) -> sid = shard && ri = replica) live_heads
      in
      let entries =
        List.fold_left
          (fun acc (sid, ri, head) ->
            match Catalog.find_entry acc ~shard:sid ~replica:ri with
            (* Unchanged head keeps its stamp, so a quiescent array
               does not rewrite the catalog at every barrier. *)
            | Some e when e.Catalog.head = head -> acc
            | _ -> Catalog.set acc ~shard:sid ~replica:ri ~at:now head)
          prev live_heads
        |> Catalog.prune ~now ~window:(array_window t) ~live
      in
      if t.catalog_cache <> Some entries then write_catalog t entries
    with Fault.Read_fault _ | Fault.Write_fault _ | Log.Log_full ->
      let sh = shard t t.meta in
      sh.sh_degraded <- true;
      sh.sh_io_errors <- sh.sh_io_errors + 1)

(* Catalog vs. member cross-check, shared by [fsck] and [Verify_log].
   The catalog is a floor: a member chain must contain its catalog
   entry as an ancestor. *)
let catalog_errors t =
  match read_catalog t with
  | `No_catalog -> []
  | `Bad -> [ "integrity catalog is undecodable" ]
  | `Ok entries ->
    List.concat_map
      (fun (sid, ri, d) ->
        if not (Drive.integrity_enabled d && Audit.enabled (Drive.audit d)) then []
        else begin
          let member = Audit.sealed_head (Drive.audit d) in
          let where = Printf.sprintf "shard %d/%s" sid (replica_name ri) in
          match Catalog.find entries ~shard:sid ~replica:ri with
          | None ->
            if member.Chain.records > 0 then
              [ where ^ ": sealed chain missing from the integrity catalog" ]
            else []
          | Some ch -> (
            match Catalog.check ~catalog:ch ~member with
            | Catalog.Consistent -> []
            | Catalog.Forked ->
              [ Printf.sprintf
                  "%s: chain forked against the catalog at epoch %d (%d records): history                    rewritten"
                  where ch.Chain.epoch ch.Chain.records ]
            | Catalog.Rolled_back ->
              [ Printf.sprintf
                  "%s: chain rolled back behind the catalog (catalog epoch %d/%d records, member                    %d/%d)"
                  where ch.Chain.epoch ch.Chain.records member.Chain.epoch member.Chain.records ]
            | Catalog.Stale_catalog ->
              if Chain.clean (Audit.verify ~from:ch (Drive.audit d)) then
                [ Printf.sprintf "%s: catalog entry is stale (epoch %d/%d behind member %d/%d)"
                    where ch.Chain.epoch ch.Chain.records member.Chain.epoch member.Chain.records ]
              else
                [ where
                  ^ ": catalog head is not an ancestor of the member chain: history rewritten" ])
        end)
      (drive_entries t)

(* Attach-time repair: a crash can strand the catalog one epoch away
   from a member in either direction — behind it (the meta barrier was
   the one that died) or ahead by exactly one (the catalog synced but
   the member's seal was torn with the rest of its un-acked batch).
   Both are repaired to the member's recovered head; anything deeper,
   or a forked hash, is evidence and is left in place for [fsck] and
   verify-log to report. *)
let repair_catalog t =
  match read_catalog t with
  | `No_catalog | `Bad -> ()
  | `Ok entries ->
    let at = Simclock.now t.clock in
    let entries' =
      List.fold_left
        (fun acc (sid, ri, d) ->
          if not (Drive.integrity_enabled d && Audit.enabled (Drive.audit d)) then acc
          else begin
            let member = Audit.sealed_head (Drive.audit d) in
            match Catalog.find acc ~shard:sid ~replica:ri with
            | None -> Catalog.set acc ~shard:sid ~replica:ri ~at member
            | Some ch -> (
              match Catalog.check ~catalog:ch ~member with
              | Catalog.Consistent -> acc
              | Catalog.Stale_catalog ->
                if Chain.clean (Audit.verify ~from:ch (Drive.audit d)) then
                  Catalog.set acc ~shard:sid ~replica:ri ~at member
                else acc
              | Catalog.Rolled_back when ch.Chain.epoch - member.Chain.epoch <= 1 ->
                Catalog.set acc ~shard:sid ~replica:ri ~at member
              | Catalog.Rolled_back | Catalog.Forked -> acc)
          end)
        entries (drive_entries t)
    in
    if entries' <> entries then begin
      write_catalog t entries';
      List.iter Store.sync (catalog_stores t)
    end
    else t.catalog_cache <- Some entries

(* Fan a Verify_log out to every drive of every shard — mirror
   secondaries included, which ordinary dispatch never reaches — and
   merge the per-chain results under shard/replica prefixes, folding in
   the catalog cross-check. A caller-supplied anchor only names a
   specific chain when the array has exactly one; otherwise the catalog
   plays that role and the anchor is ignored. *)
let verify_all t cred ~from =
  let entries = drive_entries t in
  let from = if List.length entries = 1 then from else None in
  let results =
    charge t (shards t)
      (fun () ->
        List.map
          (fun (sid, ri, d) -> (sid, ri, Drive.handle d cred (Rpc.Verify_log { from })))
          entries)
  in
  match List.find_opt (fun (_, _, r) -> match r with Rpc.R_verify _ -> false | _ -> true) results with
  | Some (_, _, r) -> r
  | None ->
    let vs =
      List.filter_map
        (fun (sid, ri, r) -> match r with Rpc.R_verify v -> Some (sid, ri, v) | _ -> None)
        results
    in
    let sum f = List.fold_left (fun acc (_, _, v) -> acc + f v) 0 vs in
    let catalog_errs = List.map (fun e -> "catalog: " ^ e) (catalog_errors t) in
    let errors =
      List.concat_map
        (fun (sid, ri, v) ->
          List.map
            (fun e -> Printf.sprintf "shard %d/%s: %s" sid (replica_name ri) e)
            v.Chain.v_errors)
        vs
      @ catalog_errs
    in
    let first_bad =
      List.fold_left
        (fun acc (_, _, v) -> if acc = -1 then v.Chain.v_first_bad else acc)
        (-1) vs
    in
    Rpc.R_verify
      {
        Chain.v_records = sum (fun v -> v.Chain.v_records);
        v_sealed = sum (fun v -> v.Chain.v_sealed);
        v_epochs = sum (fun v -> v.Chain.v_epochs);
        v_head = (match vs with [ (_, _, v) ] -> v.Chain.v_head | _ -> None);
        v_tail = sum (fun v -> v.Chain.v_tail);
        v_pruned = sum (fun v -> v.Chain.v_pruned);
        v_first_bad = (if catalog_errs <> [] && first_bad = -1 then 0 else first_bad);
        v_errors = errors;
      }

let create ?vnodes members =
  let t = create_raw ?vnodes members in
  catalog_init t;
  t

let handle_inner t cred ~sync req =
  t.ops <- t.ops + 1;
  match req with
  | Rpc.Create _ ->
    let g = t.next_oid in
    let sh = shard t (Ring.owner t.ring g) in
    t.pending_oid <- Some g;
    let resp =
      Fun.protect
        ~finally:(fun () -> t.pending_oid <- None)
        (fun () -> charge t [ sh ] (fun () -> dispatch t sh cred ~sync req))
    in
    (match resp with
     | Rpc.R_oid oid when Int64.equal oid g -> t.next_oid <- Int64.add g 1L
     | Rpc.R_oid oid ->
       (* Cannot happen with the allocator installed; be loud if it does. *)
       invalid_arg (Printf.sprintf "Router: shard allocated oid %Ld, expected %Ld" oid g)
     | _ -> ());
    resp
  | Rpc.P_create { name; _ } | Rpc.P_delete { name } ->
    Hashtbl.remove t.pmount_cache name;
    let sh = shard t t.meta in
    charge t [ sh ] (fun () -> dispatch t sh cred ~sync req)
  | Rpc.P_list _ -> (
    let sh = shard t t.meta in
    match charge t [ sh ] (fun () -> dispatch t sh cred ~sync req) with
    | Rpc.R_names ns ->
      (* The catalog's reserved name is array-private. *)
      Rpc.R_names (List.filter (fun n -> not (String.equal n catalog_name)) ns)
    | r -> r)
  | Rpc.P_mount { name; at = None } -> (
    match Hashtbl.find_opt t.pmount_cache name with
    | Some oid -> Rpc.R_oid oid
    | None ->
      let sh = shard t t.meta in
      let resp = charge t [ sh ] (fun () -> dispatch t sh cred ~sync req) in
      (match resp with
       | Rpc.R_oid oid -> Hashtbl.replace t.pmount_cache name oid
       | _ -> ());
      resp)
  | Rpc.P_mount _ ->
    (* Time-based mounts see the meta shard's history; never cached. *)
    let sh = shard t t.meta in
    charge t [ sh ] (fun () -> dispatch t sh cred ~sync req)
  | Rpc.Sync ->
    (* The admin-path durability barrier: pin every member's head into
       the catalog first, then fan the Sync out — each member's seal
       then matches the entry just recorded, and the catalog write
       itself is synced by the meta member's barrier. *)
    let all = shards t in
    charge t all
      (fun () ->
        update_catalog t;
        merge_units (List.map (fun sh -> (sh, dispatch t sh cred ~sync req)) all))
  | Rpc.Flush _ | Rpc.Set_window _ -> fanout t cred ~sync req ~merge:merge_units
  | Rpc.Read_audit _ -> fanout t cred ~sync req ~merge:merge_audit
  | Rpc.Verify_log { from } -> verify_all t cred ~from
  | Rpc.Delete { oid }
  | Rpc.Read { oid; _ }
  | Rpc.Write { oid; _ }
  | Rpc.Append { oid; _ }
  | Rpc.Truncate { oid; _ }
  | Rpc.Get_attr { oid; _ }
  | Rpc.Set_attr { oid; _ }
  | Rpc.Get_acl_by_user { oid; _ }
  | Rpc.Get_acl_by_index { oid; _ }
  | Rpc.Set_acl { oid; _ }
  | Rpc.Flush_object { oid; _ } ->
    route_to_holder t oid cred ~sync req

let handle t cred ?(sync = false) req =
  if not (Trace.on ()) then handle_inner t cred ~sync req
  else begin
    let tok = Trace.enter Trace.Router ~kind:(Rpc.op_name req) ~now:(Simclock.now t.clock) in
    (match req with
     | Rpc.Delete { oid }
     | Rpc.Read { oid; _ }
     | Rpc.Write { oid; _ }
     | Rpc.Append { oid; _ }
     | Rpc.Truncate { oid; _ }
     | Rpc.Get_attr { oid; _ }
     | Rpc.Set_attr { oid; _ }
     | Rpc.Get_acl_by_user { oid; _ }
     | Rpc.Get_acl_by_index { oid; _ }
     | Rpc.Set_acl { oid; _ }
     | Rpc.Flush_object { oid; _ } ->
       Trace.set_oid tok oid;
       Trace.set_shard tok (holder t oid)
     | Rpc.P_create _ | Rpc.P_delete _ | Rpc.P_list _ | Rpc.P_mount _ ->
       Trace.set_shard tok t.meta
     | _ -> ());
    let saved = t.trace_tok in
    t.trace_tok <- tok;
    match handle_inner t cred ~sync req with
    | resp ->
      t.trace_tok <- saved;
      (match resp with
       | Rpc.R_oid oid ->
         Trace.set_oid tok oid;
         (match req with
          | Rpc.Create _ -> Trace.set_shard tok (Ring.owner t.ring oid)
          | _ -> ())
       | Rpc.R_data b -> Trace.set_bytes tok (Bytes.length b)
       | Rpc.R_error e -> Trace.fail tok (Rpc.err_tag e)
       | _ -> ());
      Trace.finish tok ~now:(Simclock.now t.clock);
      resp
    | exception e ->
      t.trace_tok <- saved;
      Trace.abort tok ~now:(Simclock.now t.clock);
      raise e
  end

let barrier t =
  (* Group commit across the array: one durability barrier fanned out
     to every member, charged as parallel work (the batch completes
     when the slowest member's barrier does). Mutations of a batch may
     have landed on any shard, so all of them flush. *)
  let all = shards t in
  charge t all (fun () ->
      update_catalog t;
      let errs =
        List.filter_map
          (fun sh ->
            let e =
              match sh.sh_member with
              | Single d -> Drive.barrier d
              | Mirrored m -> Mirror.barrier m
            in
            (match e with
             | Some (Rpc.Io_error _) ->
               sh.sh_degraded <- true;
               sh.sh_io_errors <- sh.sh_io_errors + 1
             | _ -> ());
            e)
          all
      in
      match errs with [] -> None | e :: _ -> Some e)

(* ------------------------------------------------------------------ *)
(* Cross-shard landmark barrier                                        *)

(* A consistent array-wide rollback point. Requests are routed
   synchronously (there is no queued work beyond what [submit] is
   currently running), so by the time this is called the array is
   quiescent; the barrier then pins every member's head into the
   integrity catalog and fans one durability barrier out to all
   members, sealing each chain. The sealed heads collected afterwards
   are therefore mutually consistent: every operation acknowledged
   before the landmark is covered by some head, and none after it is.
   The returned [(shard, replica, head)] list is the landmark record a
   caller persists; verification later replays each chain from its
   recorded head. *)
let landmark_barrier t =
  match barrier t with
  | Some e -> Error (Format.asprintf "landmark barrier: %a" Rpc.pp_error e)
  | None ->
    Ok
      (List.filter_map
         (fun (sid, ri, d) ->
           if Audit.enabled (Drive.audit d) then
             Some (sid, ri, Audit.sealed_head (Drive.audit d))
           else None)
         (drive_entries t))

let members = drive_entries

let store_of t oid = shard_store (shard t (holder t oid))

let resp_ok = function Rpc.R_error _ -> false | _ -> true

(* Reads routed purely by oid: no global state consulted, no state
   mutated, so a run of them may execute back-to-back and be charged
   as concurrent work across the distinct shards (and mirror replicas)
   they land on. *)
let routable_read = function
  | Rpc.Read _ | Rpc.Get_attr _ | Rpc.Get_acl_by_user _ | Rpc.Get_acl_by_index _ -> true
  | _ -> false

let read_oid = function
  | Rpc.Read { oid; _ }
  | Rpc.Get_attr { oid; _ }
  | Rpc.Get_acl_by_user { oid; _ }
  | Rpc.Get_acl_by_index { oid; _ } -> oid
  | _ -> invalid_arg "Router.read_oid: not a routable read"

(* Requests routed purely by oid, mutations included: the whole
   per-request effect (store mutation, audit record, degraded marks,
   time charge) is confined to the holder shard, so a run of them may
   be partitioned by holder and executed on per-shard worker domains.
   Everything else (Create's oid allocation, partition ops, fan-outs)
   consults or mutates router-global state and stays on the
   dispatching domain. *)
let routed_oid = function
  | Rpc.Delete { oid }
  | Rpc.Read { oid; _ }
  | Rpc.Write { oid; _ }
  | Rpc.Append { oid; _ }
  | Rpc.Truncate { oid; _ }
  | Rpc.Get_attr { oid; _ }
  | Rpc.Set_attr { oid; _ }
  | Rpc.Get_acl_by_user { oid; _ }
  | Rpc.Get_acl_by_index { oid; _ }
  | Rpc.Set_acl { oid; _ }
  | Rpc.Flush_object { oid; _ } -> Some oid
  | _ -> None

(* Execute the maximal run of oid-routed requests starting at [i] on
   the worker pool, one sub-batch per holder shard. Returns how many
   requests were consumed (0 when the run is too small or lands on a
   single shard — the caller falls back to the serial path).

   Each worker charges time to a domain-local clock lane forked at the
   shared [now]; after the join the shared clock advances by the
   slowest lane — the same slowest-member rule [charge] applies to
   phantom disks, lifted one level up to whole shards. Audit records
   written by a shard carry its lane time, which is deterministic
   (each shard's sub-batch is a fixed sequence from a fixed start), so
   a multi-domain run is reproducible regardless of how the host
   schedules the domains. Responses are positionally identical to
   serial execution; only time accounting differs, exactly as with
   {!set_read_overlap}. *)
let parallel_run t pool cred reqs resps i =
  let n = Array.length reqs in
  let j = ref i in
  while !j < n && routed_oid reqs.(!j) <> None do incr j done;
  if !j - i < 2 then 0
  else begin
    let groups : (int, (shard * int list ref)) Hashtbl.t = Hashtbl.create 8 in
    for k = !j - 1 downto i do
      let sid = holder t (Option.get (routed_oid reqs.(k))) in
      match Hashtbl.find_opt groups sid with
      | Some (_, idxs) -> idxs := k :: !idxs
      | None -> Hashtbl.replace groups sid (shard t sid, ref [ k ])
    done;
    if Hashtbl.length groups < 2 then 0
    else begin
      t.ops <- t.ops + (!j - i);
      let start = Simclock.now t.clock in
      let jobs =
        Hashtbl.fold (fun sid (sh, idxs) acc -> (sid, sh, !idxs) :: acc) groups []
        |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
      in
      let elapsed = Array.make (List.length jobs) 0L in
      Shard_domain.run pool
        (List.mapi
           (fun w (sid, sh, idxs) ->
             ( sid,
               fun () ->
                 Simclock.fork_lane t.clock ~at:start;
                 Fun.protect
                   ~finally:(fun () -> elapsed.(w) <- Simclock.join_lane t.clock)
                   (fun () ->
                     List.iter
                       (fun k ->
                         resps.(k) <-
                           charge t [ sh ] (fun () ->
                               dispatch t sh cred ~sync:false reqs.(k)))
                       idxs) ))
           jobs);
      let worst = Array.fold_left (fun acc e -> if Int64.compare e acc > 0 then e else acc) 0L elapsed in
      if Int64.compare worst 0L > 0 then Simclock.advance t.clock worst;
      !j - i
    end
  end

let submit t cred ?(sync = false) reqs =
  (* Requests run in arrival order through the normal per-request
     dispatch (each charged its own shard's time, exactly as
     sequential submission would), so a batched run is bit-identical
     to an unsynced sequential one; the group-commit win is the single
     end-of-batch barrier replacing a per-mutation barrier.

     With {!set_read_overlap} on, a maximal run of consecutive
     oid-routed reads is instead charged as ONE parallel fan-out: the
     run completes when the slowest involved disk does. Responses are
     unchanged (reads execute in order against immutable versions);
     only the clock differs, which is why the mode is opt-in. Tracing
     keeps per-request spans, so an active tracer falls back to
     sequential charging.

     With the domains knob above 1, a maximal run of consecutive
     oid-routed requests — mutations included — is partitioned by
     holder shard and executed on per-shard worker domains (see
     {!parallel_run}); runs that land on a single shard, and
     everything that consults router-global state, keep the serial
     path. Tracing again forces serial execution: spans record the
     per-request charge sequence, which the parallel charge rule
     replaces wholesale. *)
  let n = Array.length reqs in
  let tracing = Trace.on () in
  let overlap = t.read_overlap && not tracing in
  let pool = if tracing then None else active_pool t in
  let resps = Array.make n Rpc.R_unit in
  let i = ref 0 in
  while !i < n do
    let consumed =
      match pool with
      | Some p -> parallel_run t p cred reqs resps !i
      | None -> 0
    in
    if consumed > 0 then i := !i + consumed
    else begin
    let j = ref !i in
    if overlap then while !j < n && routable_read reqs.(!j) do incr j done;
    if !j - !i >= 2 then begin
      let idxs = List.init (!j - !i) (fun k -> !i + k) in
      let involved =
        List.sort_uniq compare (List.map (fun k -> holder t (read_oid reqs.(k))) idxs)
        |> List.map (shard t)
      in
      charge t involved (fun () ->
          List.iter
            (fun k ->
              t.ops <- t.ops + 1;
              let sh = shard t (holder t (read_oid reqs.(k))) in
              resps.(k) <- dispatch t sh cred ~sync:false reqs.(k))
            idxs);
      i := !j
    end
    else begin
      resps.(!i) <- handle t cred ~sync:false reqs.(!i);
      incr i
    end
    end
  done;
  if sync && (n = 0 || Array.exists resp_ok resps) then
    match barrier t with
    | None -> resps
    | Some err ->
      Array.map (fun r -> if resp_ok r then Rpc.R_error err else r) resps
  else resps

(* ------------------------------------------------------------------ *)
(* Degraded-mode reporting                                             *)

let degraded_shards t =
  List.filter_map (fun sh -> if sh.sh_degraded then Some sh.sh_id else None) (shards t)

let degraded t = degraded_shards t <> []
let io_errors t = List.fold_left (fun acc sh -> acc + sh.sh_io_errors) 0 (shards t)

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)

(* Per-shard cleaners run in parallel on independent devices: charge
   the slowest. Overlapped cleaner mode manipulates the phantom flag
   itself and must not be used under a router; re-assert phantom mode
   afterwards so a misconfigured cleaner cannot silently break the
   array's time accounting. *)
let run_cleaners t =
  List.iter
    (fun sh ->
      ignore
        (charge t [ sh ]
           (fun () -> List.iter (fun d -> ignore (Drive.run_cleaner d)) (shard_drives sh))))
    (shards t);
  set_all_phantom t

let sync_all t =
  ignore (handle t Rpc.admin_cred Rpc.Sync)

(* ------------------------------------------------------------------ *)
(* Online rebalancing                                                  *)

let pending_migrations t = List.length t.migrations

let is_private t oid = Hashtbl.mem t.private_oids oid

(* Objects a shard holds that are eligible for placement (everything
   but the drives' own partition-table objects). *)
let held_oids sh =
  let st = shard_store sh in
  List.filter
    (fun oid ->
      not (List.exists (fun d -> Int64.equal (Drive.ptable_oid d) oid) (shard_drives sh)))
    (Store.list_all st)

let plan_moves t ~against =
  (* [against]: oids currently held, with their holder. Any object
     whose ring owner differs from its holder must move. *)
  List.filter_map
    (fun (oid, src) ->
      if is_private t oid then None
      else begin
        let dst = Ring.owner t.ring oid in
        if dst = src then None else Some { m_oid = oid; m_src = src; m_dst = dst }
      end)
    against

let add_shard t id m =
  ignore (register t id m);
  (* Growing past one drive brings the cross-shard catalog into play. *)
  catalog_init t;
  let held =
    List.concat_map (fun sh -> List.map (fun oid -> (oid, sh.sh_id)) (held_oids sh)) (shards t)
  in
  Ring.add t.ring id;
  (* Queued moves from an unfinished earlier rebalance carry
     destinations computed against the pre-[id] ring; executing one of
     them would strand the object on a shard the ring no longer points
     at. [held] reflects physical placement of every object, so
     replanning against the new ring supersedes the old queue and its
     forward entries wholesale. *)
  t.migrations <- [];
  Hashtbl.reset t.forward;
  let moves = plan_moves t ~against:held in
  List.iter
    (fun mv ->
      (* Read-forwarding: until the copy is verified and cut over, the
         object is served from its old home. *)
      Hashtbl.replace t.forward mv.m_oid mv.m_src)
    moves;
  t.migrations <- moves;
  List.length moves

(* --- verification ------------------------------------------------- *)

let digest_at st oid ~at =
  match Store.exists st ?at oid with
  | false -> None
  | true ->
    let size = Store.size st ?at oid in
    let data = Store.read st ?at oid ~off:0 ~len:size in
    Some
      ( size,
        Digest.bytes data,
        Digest.bytes (Store.get_attr st ?at oid),
        Digest.bytes (Store.get_acl_raw st ?at oid) )

(* Every retained version of the object must answer identically on the
   new home: compare current state and the state at each entry
   timestamp (and just before the oldest, covering the base). *)
let verify_copy ~src ~dst oid =
  let times =
    let ts = List.map (fun (e : S4_store.Entry.t) -> e.S4_store.Entry.time) (Store.versions src oid) in
    let ts = List.sort_uniq compare ts in
    match ts with [] -> [] | oldest :: _ -> Int64.sub oldest 1L :: ts
  in
  let ats = None :: List.map (fun at -> Some at) times in
  let mismatches =
    List.filter_map
      (fun at ->
        let a = try digest_at src oid ~at with Store.No_such_object _ -> None in
        let b = try digest_at dst oid ~at with Store.No_such_object _ -> None in
        if a = b then None
        else
          Some
            (Printf.sprintf "oid %Ld diverges at %s" oid
               (match at with None -> "current" | Some x -> Int64.to_string x)))
      ats
  in
  if mismatches = [] then Ok () else Error (String.concat "; " mismatches)

let forget_everywhere sh oid =
  List.iter
    (fun st ->
      (try Store.forget_object st oid with Store.No_such_object _ -> ());
      Store.sync st;
      ignore (Log.reclaim_dead_segments (Store.log st)))
    (shard_stores sh)

(* Drop the oid's forward entry only if this move owns it: a stale
   queued move must not tear down forwarding installed by a newer plan
   whose source is a different shard. *)
let unforward t mv =
  match Hashtbl.find_opt t.forward mv.m_oid with
  | Some src when src = mv.m_src -> Hashtbl.remove t.forward mv.m_oid
  | _ -> ()

(* A mirrored shard with journalled missed mutations has exactly one
   up-to-date replica and a repair debt; migrating through it would
   either export a converging-but-incomplete pair or leave resync
   replaying onto an object that moved away. Refuse until drained. *)
let mirror_lag sh =
  match sh.sh_member with Single _ -> 0 | Mirrored m -> Mirror.lag m

(* Migrate one object: stream its entire retained history off the old
   home, replay it on the new one, make it durable, verify every
   in-window version, then cut over and purge the source. A crash
   anywhere in the middle leaves either the source authoritative (dst
   copy unsynced or partial — dropped or repaired at attach) or both
   copies whole (deduplicated at attach); no synced in-window version
   is ever lost. *)
let migrate_one t mv =
  let src_sh = shard t mv.m_src in
  (* The ring is the placement authority at execution time: a later
     [add_shard] may have reassigned the object since this move was
     queued, making the planned [m_dst] stale. *)
  let dst_id = Ring.owner t.ring mv.m_oid in
  let src = shard_store src_sh in
  if not (List.mem mv.m_oid (Store.list_all src)) then begin
    (* Expired (or repaired/moved away) since planning; nothing to move. *)
    unforward t mv;
    Ok None
  end
  else if dst_id = mv.m_src then begin
    (* Ownership swung back to the holder; the object is already home. *)
    unforward t mv;
    Ok None
  end
  else begin
    let dst_sh = shard t dst_id in
    let src_lag = mirror_lag src_sh and dst_lag = mirror_lag dst_sh in
    if src_lag > 0 || dst_lag > 0 then
      Error
        (Printf.sprintf "shard %d mirror lags %d ops: resync before migrating oid %Ld"
           (if src_lag > 0 then mv.m_src else dst_id)
           (max src_lag dst_lag) mv.m_oid)
    else begin
      let result =
        charge t [ src_sh; dst_sh ]
          (fun () ->
            let x = Store.export_history src mv.m_oid in
            List.iter (fun st -> Store.import_history st x) (shard_stores dst_sh);
            (* Durability point: after these syncs the new home holds
               the full chain on stable storage. *)
            List.iter Store.sync (shard_stores dst_sh);
            match verify_copy ~src ~dst:(shard_store dst_sh) mv.m_oid with
            | Error e -> Error (x, e)
            | Ok () -> Ok x)
      in
      match result with
      | Error (_, e) ->
        (* Failed verification: drop the copy, keep serving from the old
           home (the forward entry stays). *)
        forget_everywhere dst_sh mv.m_oid;
        Error (Printf.sprintf "migration verify failed: %s" e)
      | Ok x ->
        (* Cut over: new requests now route to the ring owner. *)
        unforward t mv;
        (* Purge the old copy and reclaim its space. *)
        charge t [ src_sh ] (fun () -> forget_everywhere src_sh mv.m_oid);
        t.migrated_objects <- t.migrated_objects + 1;
        t.migrated_entries <- t.migrated_entries + List.length x.Store.x_entries;
        t.migrated_bytes <-
          t.migrated_bytes
          + List.fold_left
              (fun acc (xe : Store.xentry) ->
                match xe.Store.x_op with Store.X_write { len; _ } -> acc + len | _ -> acc)
              0 x.Store.x_entries;
        Ok (Some (mv.m_oid, mv.m_src, dst_id))
    end
  end

let rebalance_step t =
  match t.migrations with
  | [] -> Ok None
  | mv :: rest -> (
    t.migrations <- rest;
    match migrate_one t mv with
    | Ok r -> Ok r
    | Error e ->
      (* Push the failed move to the back so the rest can proceed. *)
      t.migrations <- t.migrations @ [ mv ];
      Error e)

let rebalance t =
  let rec go n errs budget =
    if budget = 0 then (n, List.rev errs)
    else
      match rebalance_step t with
      | Ok None -> (n, List.rev errs)
      | Ok (Some _) -> go (n + 1) errs (budget - 1)
      | Error e -> go n (e :: errs) (budget - 1)
  in
  go 0 [] (2 * (1 + pending_migrations t))

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)

(* Reattach an array after a crash. Drives were individually recovered
   by [Drive.attach]; what is left to repair is *placement*:
   - an object on a non-owner shard only (cut-over never happened, or
     the ring changed): resume its migration with a forward entry;
   - an object on two shards (crash between the new home's sync and
     the old home's purge — or a purged source resurrected from
     dead-but-decodable journal blocks): keep exactly one authoritative
     copy. The copy with the longer history (higher seq) wins; on a tie
     the ring owner does. The loser is purged. *)
let attach ?vnodes members =
  let t = create ?vnodes members in
  let holders : (int64, int list ref) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun sh ->
      List.iter
        (fun oid ->
          if not (is_private t oid) then begin
            match Hashtbl.find_opt holders oid with
            | Some l -> l := sh.sh_id :: !l
            | None -> Hashtbl.replace holders oid (ref [ sh.sh_id ])
          end)
        (held_oids sh))
    (shards t);
  let moves = ref [] in
  Hashtbl.iter
    (fun oid holders_ref ->
      let hs = List.sort compare !holders_ref in
      let owner = Ring.owner t.ring oid in
      let seq_of id = Store.seq (shard_store (shard t id)) oid in
      let winner =
        match hs with
        | [ h ] -> h
        | _ ->
          List.fold_left
            (fun best h ->
              let sb = seq_of best and sh_ = seq_of h in
              if sh_ > sb then h
              else if sh_ = sb && h = owner then h
              else best)
            (List.hd hs) (List.tl hs)
      in
      List.iter (fun h -> if h <> winner then forget_everywhere (shard t h) oid) hs;
      if winner <> owner then begin
        Hashtbl.replace t.forward oid winner;
        moves := { m_oid = oid; m_src = winner; m_dst = owner } :: !moves
      end)
    holders;
  t.migrations <- List.sort compare !moves;
  repair_catalog t;
  t

(* ------------------------------------------------------------------ *)
(* Health and stats                                                    *)

let fsck t =
  let errs = ref [] in
  List.iter
    (fun sh ->
      List.iter
        (fun d ->
          List.iter
            (fun e -> errs := Printf.sprintf "shard %d: %s" sh.sh_id e :: !errs)
            (Drive.fsck d))
        (shard_drives sh);
      (* Placement: every eligible object must live on exactly its
         routing target (array-private objects, like the integrity
         catalog, are pinned to the meta shard by construction). *)
      List.iter
        (fun oid ->
          if not (is_private t oid) then begin
            let h = holder t oid in
            if h <> sh.sh_id then
              errs :=
                Printf.sprintf "oid %Ld held by shard %d, routed to %d" oid sh.sh_id h :: !errs
          end)
        (held_oids sh))
    (shards t);
  List.iter (fun e -> errs := ("catalog: " ^ e) :: !errs) (catalog_errors t);
  List.rev !errs

type migration_stats = { objects : int; entries : int; bytes : int }

let migration_stats t =
  { objects = t.migrated_objects; entries = t.migrated_entries; bytes = t.migrated_bytes }

let pp_stats ppf t =
  Format.fprintf ppf "array: %d shards (meta %d), %d ops, %d pending migrations, moved %d objects/%d entries/%d bytes%s"
    (List.length t.order) t.meta t.ops (pending_migrations t) t.migrated_objects
    t.migrated_entries t.migrated_bytes
    (match degraded_shards t with
     | [] -> ""
     | ds ->
       Printf.sprintf " [DEGRADED shards: %s]" (String.concat "," (List.map string_of_int ds)))

let backend t =
  (* The array backend is [Domain_safe]: one internal mutex makes
     concurrent submits from different domains linearize at the router
     (per-batch atomicity of the router-global state: oid allocation,
     forwarding, the trace token), while the parallelism lives one
     level down — inside a batch, {!parallel_run} fans disjoint shards
     out to worker domains. [Net.Server] uses the capability to drop
     its own global backend lock. *)
  let m = Mutex.create () in
  let locked f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
  in
  S4.Backend.make ~clock:t.clock
    ~keep_data:
      (S4_store.Obj_store.config (Drive.store (List.hd (all_drives t))))
        .S4_store.Obj_store.keep_data
    ~capacity:(fun () ->
      locked (fun () ->
          List.fold_left
            (fun (total, free) d ->
              let dt, df = Drive.capacity d in
              (total + dt, free + df))
            (0, 0) (all_drives t)))
    ~concurrency:S4.Backend.Domain_safe
    ~close:(fun () -> locked (fun () -> close_domains t))
    (fun cred ?sync reqs -> locked (fun () -> submit t cred ?sync reqs))
