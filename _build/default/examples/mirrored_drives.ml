(* Multi-device coordination (paper Section 6): a mirrored pair of
   self-securing drives keeps serving — current data AND history —
   through the failure of either replica.

   Run with: dune exec examples/mirrored_drives.exe *)

module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Drive = S4.Drive
module Rpc = S4.Rpc
module Mirror = S4_multi.Mirror

let alice = Rpc.user_cred ~user:1 ~client:1

let expect_oid = function
  | Rpc.R_oid oid -> oid
  | r -> Format.kasprintf failwith "expected oid: %a" Rpc.pp_resp r

let ok = function
  | Rpc.R_error e -> Format.kasprintf failwith "failed: %a" Rpc.pp_error e
  | _ -> ()

let () =
  let clock = Simclock.create () in
  let geometry = Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(64 * 1024 * 1024) in
  let mk () = Drive.format (Sim_disk.create ~geometry clock) in
  let m = Mirror.create (mk ()) (mk ()) in

  let write oid s =
    ok (Mirror.handle m alice (Rpc.Write { oid; off = 0; len = String.length s; data = Some (Bytes.of_string s) }))
  in
  let read ?at oid =
    match Mirror.handle m alice (Rpc.Read { oid; off = 0; len = 4096; at }) with
    | Rpc.R_data b -> Bytes.to_string b
    | r -> Format.kasprintf failwith "read: %a" Rpc.pp_resp r
  in

  let oid = expect_oid (Mirror.handle m alice (Rpc.Create { acl = [] })) in
  write oid "generation one";
  let t1 = Simclock.now clock in
  Simclock.advance clock (Simclock.of_seconds 60.0);
  write oid "generation TWO";
  Printf.printf "mirrored object %Ld: %S (replicas agree: %b)\n" oid (read oid)
    (Mirror.divergence m = []);

  (* The primary dies. Nothing is lost: the secondary has the current
     data and the full history pool. *)
  Mirror.set_failed m Mirror.Primary true;
  Printf.printf "\nprimary FAILED\n";
  Printf.printf "  current from secondary : %S\n" (read oid);
  Printf.printf "  history from secondary : %S\n" (read ~at:t1 oid);

  (* Writes continue on the survivor; the mirror journals them. *)
  write oid "generation three (degraded)";
  Printf.printf "  degraded write accepted; %d mutations journalled for resync\n" (Mirror.lag m);

  (* The primary is repaired and catches up. *)
  Mirror.set_failed m Mirror.Primary false;
  (match Mirror.resync m with
   | Ok n -> Printf.printf "\nprimary repaired: %d mutations replayed\n" n
   | Error e -> failwith e);
  Printf.printf "replicas agree again: %b\n" (Mirror.divergence m = []);
  Printf.printf "history survives on both replicas: %S\n"
    (match Drive.handle (Mirror.drive m Mirror.Primary) Rpc.admin_cred (Rpc.Read { oid; off = 0; len = 64; at = Some t1 }) with
     | Rpc.R_data b -> Bytes.to_string b
     | r -> Format.asprintf "%a" Rpc.pp_resp r)
