lib/core/throttle.ml: Hashtbl Int64 List S4_util
