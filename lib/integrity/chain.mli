(** Tamper-evident hash chain over the audit trail.

    Every audit record extends a running SHA-256 head
    ([head' = SHA256(head || canonical_record)]); at each durability
    barrier the head is sealed into an epoch record flushed with the
    records it covers. A drive-level attacker can truncate the unsealed
    tail (indistinguishable from a crash, and reported as tail loss),
    but cannot rewrite, drop, reorder or fork any sealed record without
    {!verify} pinpointing the damage. *)

type head = {
  epoch : int;  (** seal count; 0 = nothing sealed yet *)
  records : int;  (** records chained up to this head *)
  hash : string;  (** 32-byte SHA-256 running digest *)
}

val hash_len : int
val genesis_hash : string
val genesis : head

val extend : string -> Bytes.t -> string
(** [extend head canon] is the head after chaining one record. *)

val extend_all : string -> Bytes.t list -> string
val equal_head : head -> head -> bool
val pp_head : Format.formatter -> head -> unit
val short_hex : string -> string

val write_head : S4_util.Bcodec.writer -> head -> unit
val read_head : S4_util.Bcodec.reader -> head
(** Raises [Bcodec.Decode_error] on truncated or negative input. *)

(** {1 Verification} *)

type block = { b_start : int; b_prior : string; b_canons : Bytes.t list }
type seal = { s_head : head; s_at : int64 }

type item = Block of block | Seal of seal | Bad of string

type verify_result = {
  v_records : int;
  v_sealed : int;
  v_epochs : int;
  v_head : head option;
  v_tail : int;
  v_pruned : int;
  v_first_bad : int;  (** global index of the first provably bad record; -1 = none *)
  v_errors : string list;
}

val verify : ?from:head -> ?lenient_tail:bool -> item list -> verify_result
(** Pure chain verification. [from] is a previously trusted head that
    must still lie on the chain (incremental verification / rollback
    detection). [lenient_tail] accepts undecodable blocks as long as
    every sealed record is accounted for — the kill -9 recovery case,
    where only the unsealed suffix of the final flush can be torn. *)

val clean : verify_result -> bool
val pp_result : Format.formatter -> verify_result -> unit

val write_result : S4_util.Bcodec.writer -> verify_result -> unit
val read_result : ?max_errors:int -> S4_util.Bcodec.reader -> verify_result
