lib/workload/ssh_build.mli: Format Systems
