(** Simulated time.

    The whole storage stack is driven by a single simulated clock so
    experiments are deterministic and independent of host speed. Time
    is kept in integer nanoseconds since simulation start.

    Components that consume time ({!Sim_disk}, [Net], CPU models in the
    workloads) call {!advance}; everything else only reads {!now}. *)

type t

type ns = int64
(** Nanoseconds since simulation start. *)

val create : unit -> t
(** A clock at time zero. *)

val now : t -> ns
val advance : t -> ns -> unit
(** [advance t d] moves the clock forward by [d] >= 0 ns. *)

val advance_s : t -> float -> unit
(** Advance by a duration in (fractional) seconds. *)

val set : t -> ns -> unit
(** Jump to an absolute time >= now; used by trace replay to model idle
    periods. *)

val seconds : t -> float
(** Current time in seconds. *)

val of_seconds : float -> ns
val to_seconds : ns -> float
val of_ms : float -> ns
val of_us : float -> ns

val pp_duration : Format.formatter -> ns -> unit
(** Human-readable duration ("3.21 s", "417 us", ...). *)
