type credential = { user : int; client : int; admin : bool }

let user_cred ~user ~client = { user; client; admin = false }
let admin_cred = { user = 0; client = 0; admin = true }

type req =
  | Create of { acl : Acl.t }
  | Delete of { oid : int64 }
  | Read of { oid : int64; off : int; len : int; at : int64 option }
  | Write of { oid : int64; off : int; len : int; data : Bytes.t option }
  | Append of { oid : int64; len : int; data : Bytes.t option }
  | Truncate of { oid : int64; size : int }
  | Get_attr of { oid : int64; at : int64 option }
  | Set_attr of { oid : int64; attr : Bytes.t }
  | Get_acl_by_user of { oid : int64; acl_user : int; at : int64 option }
  | Get_acl_by_index of { oid : int64; index : int; at : int64 option }
  | Set_acl of { oid : int64; index : int; entry : Acl.entry }
  | P_create of { name : string; oid : int64 }
  | P_delete of { name : string }
  | P_list of { at : int64 option }
  | P_mount of { name : string; at : int64 option }
  | Sync
  | Flush of { until : int64 }
  | Flush_object of { oid : int64; until : int64 }
  | Set_window of { window : int64 }
  | Read_audit of { since : int64; until : int64 }
  | Verify_log of { from : S4_integrity.Chain.head option }

type error =
  | Not_found
  | Permission_denied
  | Object_deleted
  | No_space
  | Bad_request of string
  | Io_error of string

type resp =
  | R_unit
  | R_oid of int64
  | R_data of Bytes.t
  | R_size of int
  | R_attr of Bytes.t
  | R_acl of Acl.entry
  | R_names of string list
  | R_audit of Audit.record list
  | R_verify of S4_integrity.Chain.verify_result
  | R_error of error

let op_name = function
  | Create _ -> "create"
  | Delete _ -> "delete"
  | Read _ -> "read"
  | Write _ -> "write"
  | Append _ -> "append"
  | Truncate _ -> "truncate"
  | Get_attr _ -> "getattr"
  | Set_attr _ -> "setattr"
  | Get_acl_by_user _ -> "getacl_user"
  | Get_acl_by_index _ -> "getacl_index"
  | Set_acl _ -> "setacl"
  | P_create _ -> "pcreate"
  | P_delete _ -> "pdelete"
  | P_list _ -> "plist"
  | P_mount _ -> "pmount"
  | Sync -> "sync"
  | Flush _ -> "flush"
  | Flush_object _ -> "flusho"
  | Set_window _ -> "setwindow"
  | Read_audit _ -> "readaudit"
  | Verify_log _ -> "verifylog"

let at_info = function None -> "" | Some t -> Printf.sprintf " at=%Ld" t

let op_info = function
  | Create _ -> ""
  | Delete { oid } -> Printf.sprintf "oid=%Ld" oid
  | Read { oid; off; len; at } -> Printf.sprintf "oid=%Ld off=%d len=%d%s" oid off len (at_info at)
  | Write { oid; off; len; _ } -> Printf.sprintf "oid=%Ld off=%d len=%d" oid off len
  | Append { oid; len; _ } -> Printf.sprintf "oid=%Ld len=%d" oid len
  | Truncate { oid; size } -> Printf.sprintf "oid=%Ld size=%d" oid size
  | Get_attr { oid; at } -> Printf.sprintf "oid=%Ld%s" oid (at_info at)
  | Set_attr { oid; attr } -> Printf.sprintf "oid=%Ld attr_len=%d" oid (Bytes.length attr)
  | Get_acl_by_user { oid; acl_user; at } ->
    Printf.sprintf "oid=%Ld user=%d%s" oid acl_user (at_info at)
  | Get_acl_by_index { oid; index; at } -> Printf.sprintf "oid=%Ld index=%d%s" oid index (at_info at)
  | Set_acl { oid; index; _ } -> Printf.sprintf "oid=%Ld index=%d" oid index
  | P_create { name; oid } -> Printf.sprintf "name=%s oid=%Ld" name oid
  | P_delete { name } -> Printf.sprintf "name=%s" name
  | P_list { at } -> String.trim (at_info at)
  | P_mount { name; at } -> Printf.sprintf "name=%s%s" name (at_info at)
  | Sync -> ""
  | Flush { until } -> Printf.sprintf "until=%Ld" until
  | Flush_object { oid; until } -> Printf.sprintf "oid=%Ld until=%Ld" oid until
  | Set_window { window } -> Printf.sprintf "window=%Ld" window
  | Read_audit { since; until } -> Printf.sprintf "since=%Ld until=%Ld" since until
  | Verify_log { from } -> (
    match from with
    | None -> ""
    | Some h -> Printf.sprintf "from=%d/%d" h.S4_integrity.Chain.epoch h.S4_integrity.Chain.records)

let is_mutation = function
  | Create _ | Delete _ | Write _ | Append _ | Truncate _ | Set_attr _ | Set_acl _ | P_create _
  | P_delete _ | Sync | Flush _ | Flush_object _ | Set_window _ ->
    true
  | Read _ | Get_attr _ | Get_acl_by_user _ | Get_acl_by_index _ | P_list _ | P_mount _
  | Read_audit _ | Verify_log _ ->
    false

let is_admin_op = function
  | Flush _ | Flush_object _ | Set_window _ | Read_audit _ | Verify_log _ -> true
  | Create _ | Delete _ | Read _ | Write _ | Append _ | Truncate _ | Get_attr _ | Set_attr _
  | Get_acl_by_user _ | Get_acl_by_index _ | Set_acl _ | P_create _ | P_delete _ | P_list _
  | P_mount _ | Sync ->
    false

(* Wire-size model: a fixed header (credential, op code, xid) plus
   payload. We do not serialise requests bit-for-bit — the network
   model only needs sizes. *)
let header = 40

let req_wire_bytes = function
  | Create { acl } -> header + Bytes.length (Acl.encode acl)
  | Delete _ -> header + 8
  | Read _ -> header + 24
  | Write { len; _ } -> header + 24 + len
  | Append { len; _ } -> header + 16 + len
  | Truncate _ -> header + 16
  | Get_attr _ -> header + 16
  | Set_attr { attr; _ } -> header + 8 + Bytes.length attr
  | Get_acl_by_user _ | Get_acl_by_index _ -> header + 20
  | Set_acl _ -> header + 24
  | P_create { name; _ } -> header + 8 + String.length name
  | P_delete { name } -> header + String.length name
  | P_list _ -> header + 8
  | P_mount { name; _ } -> header + 8 + String.length name
  | Sync -> header
  | Flush _ -> header + 8
  | Flush_object _ -> header + 16
  | Set_window _ -> header + 8
  | Read_audit _ -> header + 16
  | Verify_log { from } -> header + (match from with None -> 1 | Some _ -> 45)

let resp_wire_bytes = function
  | R_unit -> header
  | R_oid _ -> header + 8
  | R_data b -> header + Bytes.length b
  | R_size n -> header + n  (* synthetic data still crosses the wire *)
  | R_attr b -> header + Bytes.length b
  | R_acl _ -> header + 16
  | R_names names -> header + List.fold_left (fun acc n -> acc + String.length n + 4) 0 names
  | R_audit rs -> header + (64 * List.length rs)
  | R_verify r ->
    header + 64
    + List.fold_left (fun acc e -> acc + String.length e + 4) 0 r.S4_integrity.Chain.v_errors
  | R_error _ -> header + 4

let pp_error ppf = function
  | Not_found -> Format.fprintf ppf "not found"
  | Permission_denied -> Format.fprintf ppf "permission denied"
  | Object_deleted -> Format.fprintf ppf "object deleted"
  | No_space -> Format.fprintf ppf "no space"
  | Bad_request m -> Format.fprintf ppf "bad request: %s" m
  | Io_error m -> Format.fprintf ppf "I/O error: %s" m

let err_tag : error -> string = function
  | Not_found -> "not_found"
  | Permission_denied -> "denied"
  | Object_deleted -> "deleted"
  | No_space -> "no_space"
  | Bad_request _ -> "bad_request"
  | Io_error _ -> "io_error"

let error_to_string e = Format.asprintf "%a" pp_error e

let pp_resp ppf = function
  | R_unit -> Format.fprintf ppf "ok"
  | R_oid oid -> Format.fprintf ppf "oid %Ld" oid
  | R_data b -> Format.fprintf ppf "%d bytes" (Bytes.length b)
  | R_size n -> Format.fprintf ppf "%d bytes (synthetic)" n
  | R_attr b -> Format.fprintf ppf "attr (%d bytes)" (Bytes.length b)
  | R_acl e -> Acl.pp_entry ppf e
  | R_names names -> Format.fprintf ppf "names [%s]" (String.concat "; " names)
  | R_audit rs -> Format.fprintf ppf "%d audit records" (List.length rs)
  | R_verify r -> Format.fprintf ppf "verify: %a" S4_integrity.Chain.pp_result r
  | R_error e -> Format.fprintf ppf "error: %a" pp_error e
