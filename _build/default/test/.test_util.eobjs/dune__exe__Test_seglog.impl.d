test/test_seglog.ml: Alcotest Array Bytes Char Gen Int64 List QCheck QCheck_alcotest S4_disk S4_seglog S4_util String
