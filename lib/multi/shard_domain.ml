(* Per-shard worker domains.

   A pool owns N OCaml 5 domains, each looping on its own bounded
   MPSC channel (mutex + condition, capacity-bounded so a runaway
   producer blocks instead of ballooning the queue). Work is pinned by
   slot: [run] sends job [slot] to worker [slot mod size], so a given
   shard always executes on the same domain — that domain owns the
   shard's drive stack exclusively for the duration of the dispatch
   and no shard state is ever touched by two domains at once.

   Domains are spawned lazily on first use: a pool that is created but
   never dispatched to (domains knob left at 1) costs nothing. *)

type task = unit -> unit

type worker = {
  mutable dom : unit Domain.t option;
  m : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  q : task Queue.t;
  mutable stop : bool;
}

type t = { workers : worker array; bound : int }

let make_worker () =
  {
    dom = None;
    m = Mutex.create ();
    nonempty = Condition.create ();
    nonfull = Condition.create ();
    q = Queue.create ();
    stop = false;
  }

let create n =
  if n < 1 then invalid_arg "Shard_domain.create: need at least one worker";
  { workers = Array.init n (fun _ -> make_worker ()); bound = 64 }

let size t = Array.length t.workers

let rec worker_loop w =
  Mutex.lock w.m;
  while Queue.is_empty w.q && not w.stop do
    Condition.wait w.nonempty w.m
  done;
  if Queue.is_empty w.q then Mutex.unlock w.m (* stop, queue drained *)
  else begin
    let task = Queue.pop w.q in
    Condition.signal w.nonfull;
    Mutex.unlock w.m;
    task ();
    worker_loop w
  end

let enqueue t w task =
  Mutex.lock w.m;
  if w.stop then begin
    Mutex.unlock w.m;
    invalid_arg "Shard_domain: pool is closed"
  end;
  while Queue.length w.q >= t.bound do
    Condition.wait w.nonfull w.m
  done;
  Queue.push task w.q;
  if w.dom = None then w.dom <- Some (Domain.spawn (fun () -> worker_loop w));
  Condition.signal w.nonempty;
  Mutex.unlock w.m

let run t jobs =
  match jobs with
  | [] -> ()
  | [ (_, f) ] -> f () (* one job: no cross-domain hop needed *)
  | jobs ->
    let lm = Mutex.create () in
    let done_ = Condition.create () in
    let remaining = ref (List.length jobs) in
    let failure = ref None in
    List.iter
      (fun (slot, f) ->
        let wrapped () =
          (try f ()
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             Mutex.lock lm;
             if !failure = None then failure := Some (e, bt);
             Mutex.unlock lm);
          Mutex.lock lm;
          decr remaining;
          if !remaining = 0 then Condition.signal done_;
          Mutex.unlock lm
        in
        enqueue t t.workers.(slot mod Array.length t.workers) wrapped)
      jobs;
    Mutex.lock lm;
    while !remaining > 0 do
      Condition.wait done_ lm
    done;
    Mutex.unlock lm;
    match !failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()

let close t =
  Array.iter
    (fun w ->
      Mutex.lock w.m;
      w.stop <- true;
      Condition.broadcast w.nonempty;
      Mutex.unlock w.m)
    t.workers;
  Array.iter
    (fun w ->
      match w.dom with
      | Some d ->
        Domain.join d;
        w.dom <- None
      | None -> ())
    t.workers
