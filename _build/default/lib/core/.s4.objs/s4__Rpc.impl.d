lib/core/rpc.ml: Acl Audit Bytes Format List Printf String
