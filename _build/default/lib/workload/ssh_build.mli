(** The SSH-build benchmark (the paper's replacement for the Andrew
    benchmark): unpack, configure and build SSH 1.2.27.

    The three phases are modelled from the paper's description:
    - {b unpack} decompresses and writes the source tree (~1 MB
      archive, a few hundred files) — metadata-heavy;
    - {b configure} builds and runs many small feature-test programs —
      small create/write/read/delete cycles plus compiler CPU time;
    - {b build} compiles every source file and links — CPU-dominated,
      with object files and executables written along the way.

    CPU costs are charged identically on every system (the client and
    compiler don't change across servers); only the I/O behaviour
    differs, as in the paper. *)

type config = {
  seed : int;
  source_files : int;  (** .c/.h files in the tree *)
  avg_source_bytes : int;
  configure_tests : int;
  compile_ms_per_file : float;  (** 600 MHz-era compile time *)
  configure_ms_per_test : float;
  unpack_cpu_ms : float;
  link_ms : float;
}

val default : config

type result = {
  system : string;
  unpack_seconds : float;
  configure_seconds : float;
  build_seconds : float;
}

val total : result -> float
val run : ?config:config -> Systems.t -> result
val pp_result : Format.formatter -> result -> unit
