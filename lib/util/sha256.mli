(** Pure-OCaml SHA-256 (FIPS 180-4). Digests are raw 32-byte strings;
    use {!to_hex} for display. Streaming interface for callers hashing
    a concatenation without building it. *)

type ctx

val init : unit -> ctx
val feed : ctx -> Bytes.t -> unit
val feed_sub : ctx -> Bytes.t -> int -> int -> unit
val feed_string : ctx -> string -> unit

val finish : ctx -> string
(** Finalizes and returns the 32-byte digest. The context must not be
    reused afterwards. *)

val digest_bytes : Bytes.t -> string
val digest_string : string -> string

val to_hex : string -> string
