(* The intrusion-campaign suite: seeded attacker scenarios against a
   live system (single drive and sharded array), cross-shard landmark
   marks, and the forensics-to-recovery pipeline — detection from the
   device-side audit trail, damage attribution, rollback to a mark,
   and ground-truth oracles over the whole story. *)

module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Rng = S4_util.Rng
module Drive = S4.Drive
module Rpc = S4.Rpc
module Acl = S4.Acl
module N = S4_nfs.Nfs_types
module Translator = S4_nfs.Translator
module Systems = S4_workload.Systems
module Target = S4_tools.Target
module History = S4_tools.History
module Recovery = S4_tools.Recovery
module Diagnosis = S4_tools.Diagnosis
module Landmark = S4_tools.Landmark
module Campaign = S4_tools.Campaign
module Store = S4_store.Obj_store

let check = Alcotest.check
let qtest = Qseed.qtest

let geom mb = Geometry.with_capacity Geometry.cheetah_9gb ~bytes:(mb * 1024 * 1024)

let mk_single ?(mb = 64) () =
  let clock = Simclock.create () in
  let disk = Sim_disk.create ~geometry:(geom mb) clock in
  let drive = Drive.format ~config:Systems.content_drive_config disk in
  let tr = Translator.mount (Translator.Local drive) in
  (clock, drive, Target.Drive drive, tr)

let mk_array ?(mb = 48) ?(mirrored = false) ~shards () =
  let s =
    Systems.s4_array
      ~config:
        {
          Systems.Config.content with
          Systems.Config.disk_mb = Some mb;
          mirrored;
        }
      ~shards ()
  in
  let router = Option.get s.Systems.router in
  (s.Systems.clock, Target.Array router, Option.get s.Systems.translator)

let tick clock = Simclock.advance clock 1_000_000L

let write_file tr path s =
  Translator.invalidate_caches tr;
  match Translator.write_file tr path (Bytes.of_string s) with
  | Ok fh -> fh
  | Error e -> Alcotest.failf "write %s: %a" path N.pp_error e

(* --- the full campaign ------------------------------------------------ *)

let assert_clean label o =
  (match Campaign.problems o with
   | [] -> ()
   | ps -> Alcotest.failf "%s: %s" label (String.concat "\n  " ps));
  check Alcotest.bool (label ^ ": all classes detected") true (Campaign.detected o);
  check Alcotest.bool (label ^ ": damage found") true (o.Campaign.o_damage_objects > 0);
  check Alcotest.bool (label ^ ": bytes damaged") true (o.Campaign.o_damage_bytes > 0);
  check Alcotest.bool (label ^ ": denied probes seen") true (o.Campaign.o_denied_probes > 0);
  check Alcotest.bool (label ^ ": rollback did work") true
    (o.Campaign.o_report.Recovery.files_restored > 0
    && o.Campaign.o_report.Recovery.files_removed > 0);
  List.iter
    (fun (cls, lat) ->
      check Alcotest.bool (Printf.sprintf "%s: %s latency sane" label cls) true
        (lat >= 0.0 && lat < 60.0))
    o.Campaign.o_classes

let test_campaign_single_drive () =
  assert_clean "single drive"
    (Campaign.run { Campaign.default with Campaign.trace = true })

(* The acceptance scenario: all five attack classes on a 4-shard
   mirrored array, detected, attributed, and fully rolled back. *)
let test_campaign_mirrored_array () =
  let o =
    Campaign.run
      { Campaign.default with
        Campaign.deployment = Campaign.Array { shards = 4; mirrored = true };
        disk_mb = 32 }
  in
  assert_clean "4-shard mirrored array" o;
  (* The mark covers every member chain: 4 shards x 2 replicas. *)
  check Alcotest.int "mark spans 8 member chains" 8
    (List.length o.Campaign.o_mark.Landmark.m_heads)

let test_campaign_seed_stability () =
  (* Different seed, same guarantees. *)
  assert_clean "seed 7" (Campaign.run { Campaign.default with Campaign.seed = 7 })

(* --- cross-shard marks ------------------------------------------------ *)

let test_mark_roundtrip_single () =
  let clock, drive, target, tr = mk_single () in
  ignore (write_file tr "etc/passwd" "root:x:0:0");
  tick clock;
  let lm = Landmark.of_target target in
  let m =
    match Landmark.mark lm ~name:"clean" with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  check Alcotest.int "one member chain" 1 (List.length m.Landmark.m_heads);
  (match Landmark.mark lm ~name:"clean" with
   | Ok _ -> Alcotest.fail "duplicate mark name accepted"
   | Error _ -> ());
  (* The mark survives re-opening the index, and verifies after more
     (legitimate) history is appended. *)
  tick clock;
  ignore (write_file tr "etc/passwd" "root:x:0:0:again");
  (match Drive.handle drive Rpc.admin_cred Rpc.Sync with Rpc.R_unit -> () | _ -> ());
  let lm2 = Landmark.of_target target in
  (match Landmark.find_mark lm2 "clean" with
   | None -> Alcotest.fail "mark lost across handles"
   | Some m2 ->
     check Alcotest.bool "same instant" true (m2.Landmark.m_at = m.Landmark.m_at);
     (match Landmark.verify_since lm2 m2 with
      | Ok () -> ()
      | Error es -> Alcotest.failf "verify_since: %s" (String.concat "; " es)))

let test_mark_array_heads () =
  let clock, target, tr = mk_array ~shards:3 () in
  ignore (write_file tr "a/f" "spread me across shards");
  ignore (write_file tr "b/g" "and me");
  tick clock;
  let lm = Landmark.of_target target in
  let m =
    match Landmark.mark lm ~name:"pre" with Ok m -> m | Error e -> Alcotest.fail e
  in
  check Alcotest.int "one sealed head per shard" 3 (List.length m.Landmark.m_heads);
  ignore (write_file tr "a/f" "post-mark history");
  (match Landmark.verify_since lm m with
   | Ok () -> ()
   | Error es -> Alcotest.failf "verify_since: %s" (String.concat "; " es));
  (* Rolling the array back to the mark restores the pre-mark state. *)
  let rec_ = Recovery.of_target target in
  (match Recovery.restore_tree rec_ ~at:m.Landmark.m_at ~path:"" with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  Translator.invalidate_caches tr;
  (match Translator.read_file tr "a/f" with
   | Ok b -> check Alcotest.string "rolled back" "spread me across shards" (Bytes.to_string b)
   | Error e -> Alcotest.failf "read after rollback: %a" N.pp_error e)

(* Satellite: Landmark.create must fail loudly, not return a handle
   whose every later operation fails obscurely. Poison the partition
   table: register "landmarks" naming an object, then delete it. *)
let test_landmark_create_poisoned_index () =
  let _, drive, target, _ = mk_single () in
  let oid =
    match Drive.handle drive Rpc.admin_cred (Rpc.Create { acl = [] }) with
    | Rpc.R_oid oid -> oid
    | r -> Alcotest.failf "create: %a" Rpc.pp_resp r
  in
  (match Drive.handle drive Rpc.admin_cred (Rpc.P_create { name = "landmarks"; oid }) with
   | Rpc.R_unit -> ()
   | r -> Alcotest.failf "pcreate: %a" Rpc.pp_resp r);
  (match Drive.handle drive Rpc.admin_cred (Rpc.Delete { oid }) with
   | Rpc.R_unit -> ()
   | r -> Alcotest.failf "delete: %a" Rpc.pp_resp r);
  match Landmark.of_target target with
  | exception Failure m ->
    check Alcotest.bool "diagnostic names the tool" true
      (String.length m >= 16 && String.sub m 0 16 = "Landmark.create:")
  | _ -> Alcotest.fail "Landmark.of_target accepted a dead index object"

(* --- damage reports --------------------------------------------------- *)

(* Satellite: denied requests must appear in the report (they place
   the principal at the object) without inflating the read/write
   counts. *)
let test_denied_ops_reported () =
  let clock, drive, target, _ = mk_single () in
  let secret =
    match
      Drive.handle drive Rpc.admin_cred (Rpc.Create { acl = [ Acl.owner_entry ~user:2 ] })
    with
    | Rpc.R_oid oid -> oid
    | r -> Alcotest.failf "create: %a" Rpc.pp_resp r
  in
  tick clock;
  let since = Simclock.now clock in
  tick clock;
  let snoop = Rpc.user_cred ~user:1 ~client:5 in
  (match Drive.handle drive snoop (Rpc.Read { oid = secret; off = 0; len = 16; at = None }) with
   | Rpc.R_error Rpc.Permission_denied -> ()
   | r -> Alcotest.failf "read should be denied: %a" Rpc.pp_resp r);
  (match
     Drive.handle drive snoop
       (Rpc.Write { oid = secret; off = 0; len = 3; data = Some (Bytes.of_string "led") })
   with
   | Rpc.R_error Rpc.Permission_denied -> ()
   | r -> Alcotest.failf "write should be denied: %a" Rpc.pp_resp r);
  match Diagnosis.damage_report ~client:5 ~since ~until:Int64.max_int target with
  | [ a ] ->
    check Alcotest.bool "right object" true (a.Diagnosis.a_oid = secret);
    check Alcotest.int "two denials" 2 a.Diagnosis.a_denied;
    check Alcotest.int "no reads counted" 0 a.Diagnosis.a_reads;
    check Alcotest.int "no writes counted" 0 a.Diagnosis.a_writes;
    check Alcotest.bool "nothing deleted" false a.Diagnosis.a_deleted
  | report -> Alcotest.failf "expected one activity entry, got %d" (List.length report)

(* --- property: rollback is an exact inverse --------------------------- *)

(* A normalized snapshot of the namespace: path, kind, contents and
   mtime for files, and the ACL with inert (nothing-granting) slots
   dropped — Set_acl cannot shorten a list, so recovery blanks
   attacker-appended slots instead of removing them. *)
type snap_entry = {
  s_path : string;
  s_dir : bool;
  s_data : string;
  s_mtime : int64;
  s_acl : Acl.entry list;
}

let normalize_acl raw =
  List.filter
    (fun (e : Acl.entry) -> e.Acl.perms <> [] || e.Acl.recovery)
    (Acl.decode raw)

let snapshot target =
  let h = History.of_target target in
  let out = ref [] in
  let rec walk prefix fh =
    match History.ls h fh with
    | Error e -> Alcotest.failf "snapshot ls %s: %s" prefix e
    | Ok entries ->
      List.iter
        (fun ((e : N.dirent), (a : N.attr)) ->
          let path = if prefix = "" then e.N.name else prefix ^ "/" ^ e.N.name in
          let acl = normalize_acl (Store.current_acl_raw (Target.store_of target e.N.fh) e.N.fh) in
          match a.N.ftype with
          | N.Fdir ->
            out := { s_path = path; s_dir = true; s_data = ""; s_mtime = 0L; s_acl = acl } :: !out;
            walk path e.N.fh
          | N.Freg | N.Flnk ->
            let data =
              match History.cat h e.N.fh with
              | Ok b -> Bytes.to_string b
              | Error e -> Alcotest.failf "snapshot cat %s: %s" path e
            in
            out :=
              { s_path = path; s_dir = false; s_data = data; s_mtime = a.N.mtime; s_acl = acl }
              :: !out)
        entries
  in
  (match History.resolve h "" with
   | Ok root -> walk "" root
   | Error e -> Alcotest.failf "snapshot resolve root: %s" e);
  List.sort (fun a b -> compare a.s_path b.s_path) !out

let pp_snap s =
  Printf.sprintf "%s%s (%d bytes, %d acl entries)" s.s_path
    (if s.s_dir then "/" else "")
    (String.length s.s_data) (List.length s.s_acl)

let dirs_pool = [| "a"; "a/b"; "c" |]
let files_pool = [| "a/f0"; "a/f1"; "a/b/f2"; "c/f3"; "f4" |]

(* One scripted mutation against the live system, driving every
   namespace-changing surface recovery has to invert: writes,
   deletions (files and directories), creations, and ACL changes. *)
let apply_op clock target tr (kind, (a, b)) =
  tick clock;
  Translator.invalidate_caches tr;
  (match kind mod 6 with
   | 0 | 1 ->
     let p = files_pool.(a mod Array.length files_pool) in
     ignore (Translator.write_file tr p (Bytes.make (1 + (b mod 400)) (Char.chr (97 + (b mod 26)))))
   | 2 ->
     let p = files_pool.(a mod Array.length files_pool) in
     (match Translator.lookup_path tr (Filename.dirname p) with
      | Ok (dir, _) ->
        ignore (Translator.handle tr (N.Remove { dir; name = Filename.basename p }))
      | Error _ -> ())
   | 3 -> ignore (Translator.mkdir_p tr dirs_pool.(a mod Array.length dirs_pool))
   | 4 ->
     (* Remove a whole directory if it is empty at this point. *)
     let p = dirs_pool.(a mod Array.length dirs_pool) in
     (match Translator.lookup_path tr (Filename.dirname p) with
      | Ok (dir, _) ->
        ignore (Translator.handle tr (N.Rmdir { dir; name = Filename.basename p }))
      | Error _ -> ())
   | _ ->
     (* An ACL change through the drive surface. *)
     let p = files_pool.(a mod Array.length files_pool) in
     (match Translator.lookup_path tr p with
      | Ok (fh, _) ->
        ignore
          (Target.handle target Rpc.admin_cred
             (Rpc.Set_acl
                { oid = fh; index = b mod 2; entry = Acl.owner_entry ~user:(1 + (a mod 3)) }))
      | Error _ -> ()));
  tick clock

let rollback_roundtrip mk (prefix, suffix) =
  let clock, target, tr = mk () in
  (* A base population so the prefix has something to mutate. *)
  Array.iter (fun d -> ignore (Translator.mkdir_p tr d)) dirs_pool;
  Array.iteri (fun i p -> ignore (write_file tr p (Printf.sprintf "base-%d" i))) files_pool;
  List.iter (apply_op clock target tr) prefix;
  (match Target.barrier target with None -> () | Some e -> Alcotest.failf "barrier: %a" Rpc.pp_error e);
  tick clock;
  let t = Simclock.now clock in
  let want = snapshot target in
  tick clock;
  List.iter (apply_op clock target tr) suffix;
  let rec_ = Recovery.of_target target in
  (match Recovery.restore_tree rec_ ~at:t ~path:"" with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "restore_tree: %s" e);
  let got = snapshot target in
  if List.length want <> List.length got then
    Alcotest.failf "namespace differs: %d entries then, %d after rollback\nthen: %s\nafter: %s"
      (List.length want) (List.length got)
      (String.concat ", " (List.map pp_snap want))
      (String.concat ", " (List.map pp_snap got));
  List.iter2
    (fun w g ->
      if w.s_path <> g.s_path then Alcotest.failf "path %s became %s" w.s_path g.s_path;
      if w.s_dir <> g.s_dir then Alcotest.failf "%s changed kind" w.s_path;
      if w.s_data <> g.s_data then
        Alcotest.failf "%s: contents differ after rollback (%d vs %d bytes)" w.s_path
          (String.length w.s_data) (String.length g.s_data);
      if (not w.s_dir) && w.s_mtime <> g.s_mtime then
        Alcotest.failf "%s: mtime %Ld not restored (got %Ld)" w.s_path w.s_mtime g.s_mtime;
      if w.s_acl <> g.s_acl then Alcotest.failf "%s: ACL differs after rollback" w.s_path)
    want got;
  (match Target.fsck target with
   | [] -> true
   | errs -> Alcotest.failf "fsck after rollback: %s" (String.concat "; " errs))

let ops_gen =
  QCheck.(
    pair
      (list_of_size Gen.(1 -- 12) (pair (int_bound 5) (pair small_nat small_nat)))
      (list_of_size Gen.(1 -- 15) (pair (int_bound 5) (pair small_nat small_nat))))

let prop_rollback_roundtrip_drive =
  QCheck.Test.make ~count:10
    ~name:"recovery to t reproduces the namespace at t exactly (single drive)" ops_gen
    (rollback_roundtrip (fun () ->
         let clock, _, target, tr = mk_single ~mb:48 () in
         (clock, target, tr)))

let prop_rollback_roundtrip_array =
  QCheck.Test.make ~count:5
    ~name:"recovery to t reproduces the namespace at t exactly (3-shard array)" ops_gen
    (rollback_roundtrip (fun () -> mk_array ~mb:32 ~shards:3 ()))

(* --- property: attribution is exact ----------------------------------- *)

(* Two principals act on private and shared objects through raw drive
   RPCs; the damage report for each principal must list exactly the
   objects that principal touched, with denied probes kept apart from
   effective operations. *)
let prop_attribution_exact =
  QCheck.Test.make ~count:15
    ~name:"damage_report attributes exactly the principal's object set"
    QCheck.(list_of_size Gen.(1 -- 40) (triple bool (int_bound 2) small_nat))
    (fun script ->
      let clock, drive, target, _ = mk_single ~mb:32 () in
      let mk_obj acl =
        match Drive.handle drive Rpc.admin_cred (Rpc.Create { acl }) with
        | Rpc.R_oid oid -> oid
        | r -> Alcotest.failf "create: %a" Rpc.pp_resp r
      in
      let priv_a = mk_obj [ Acl.owner_entry ~user:1 ] in
      let priv_b = mk_obj [ Acl.owner_entry ~user:2 ] in
      let shared = mk_obj [ Acl.owner_entry ~user:1; Acl.owner_entry ~user:2 ] in
      tick clock;
      let since = Simclock.now clock in
      let cred_a = Rpc.user_cred ~user:1 ~client:7 in
      let cred_b = Rpc.user_cred ~user:2 ~client:8 in
      let truth = Hashtbl.create 16 in
      (* (cred, oid) -> (reads, writes, denials) *)
      let bump cred oid f =
        let k = (cred.Rpc.client, oid) in
        let r, w, d = Option.value ~default:(0, 0, 0) (Hashtbl.find_opt truth k) in
        Hashtbl.replace truth k (f (r, w, d))
      in
      List.iter
        (fun (who, kind, pick) ->
          tick clock;
          let cred = if who then cred_a else cred_b in
          let own = if who then priv_a else priv_b in
          let other = if who then priv_b else priv_a in
          let objs = [| own; shared; other |] in
          let oid = objs.(pick mod 3) in
          let expect_denied = oid = other in
          match kind with
          | 0 ->
            (match Drive.handle drive cred (Rpc.Read { oid; off = 0; len = 8; at = None }) with
             | Rpc.R_data _ when not expect_denied ->
               bump cred oid (fun (r, w, d) -> (r + 1, w, d))
             | Rpc.R_error Rpc.Permission_denied when expect_denied ->
               bump cred oid (fun (r, w, d) -> (r, w, d + 1))
             | r -> Alcotest.failf "read: %a" Rpc.pp_resp r)
          | _ ->
            (match
               Drive.handle drive cred
                 (Rpc.Write { oid; off = 0; len = 4; data = Some (Bytes.of_string "data") })
             with
             | Rpc.R_unit when not expect_denied ->
               bump cred oid (fun (r, w, d) -> (r, w + 1, d))
             | Rpc.R_error Rpc.Permission_denied when expect_denied ->
               bump cred oid (fun (r, w, d) -> (r, w, d + 1))
             | r -> Alcotest.failf "write: %a" Rpc.pp_resp r))
        script;
      List.iter
        (fun (cred : Rpc.credential) ->
          let report =
            Diagnosis.damage_report ~user:cred.Rpc.user ~client:cred.Rpc.client ~since
              ~until:Int64.max_int target
          in
          (* No false positives: every reported object has ground truth. *)
          List.iter
            (fun (a : Diagnosis.activity) ->
              match Hashtbl.find_opt truth (cred.Rpc.client, a.Diagnosis.a_oid) with
              | None ->
                Alcotest.failf "client %d blamed for untouched oid %Ld" cred.Rpc.client
                  a.Diagnosis.a_oid
              | Some (r, w, d) ->
                check Alcotest.int "reads" r a.Diagnosis.a_reads;
                check Alcotest.int "writes" w a.Diagnosis.a_writes;
                check Alcotest.int "denials" d a.Diagnosis.a_denied)
            report;
          (* No false negatives: every touched object is reported. *)
          Hashtbl.iter
            (fun (client, oid) _ ->
              if client = cred.Rpc.client then
                match
                  List.find_opt (fun a -> a.Diagnosis.a_oid = oid) report
                with
                | Some _ -> ()
                | None -> Alcotest.failf "client %d's activity at oid %Ld unreported" client oid)
            truth)
        [ cred_a; cred_b ];
      ignore priv_b;
      true)

let () =
  Alcotest.run "s4_intrusion"
    [
      ( "campaign",
        [
          Alcotest.test_case "single drive, all classes, clean oracle" `Slow
            test_campaign_single_drive;
          Alcotest.test_case "4-shard mirrored array, clean oracle" `Slow
            test_campaign_mirrored_array;
          Alcotest.test_case "another seed, same guarantees" `Slow test_campaign_seed_stability;
        ] );
      ( "marks",
        [
          Alcotest.test_case "mark round-trips and verifies (single)" `Quick
            test_mark_roundtrip_single;
          Alcotest.test_case "mark records one head per shard" `Quick test_mark_array_heads;
          Alcotest.test_case "create fails loudly on a poisoned index" `Quick
            test_landmark_create_poisoned_index;
        ] );
      ( "forensics",
        [ Alcotest.test_case "denied ops reported separately" `Quick test_denied_ops_reported ] );
      ( "properties",
        [
          qtest prop_rollback_roundtrip_drive;
          qtest prop_rollback_roundtrip_array;
          qtest prop_attribution_exact;
        ] );
    ]
