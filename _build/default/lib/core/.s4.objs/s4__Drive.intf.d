lib/core/drive.mli: Audit Format Rpc S4_disk S4_seglog S4_store S4_util Throttle
