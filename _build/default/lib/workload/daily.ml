module Rng = S4_util.Rng
module Simclock = S4_util.Simclock
module N = S4_nfs.Nfs_types
module Server = S4_nfs.Server
module Log = S4_seglog.Log
module Store = S4_store.Obj_store
module Drive = S4.Drive

type study = { study_name : string; description : string; daily_write_bytes : int }

let mb = 1024 * 1024

let afs =
  {
    study_name = "AFS";
    description = "Spasojevic & Satyanarayanan wide-area AFS study: ~143 MB/day/server";
    daily_write_bytes = 143 * mb;
  }

let nt =
  {
    study_name = "NT";
    description = "Vogels' Windows NT 4.0 file-usage study: ~1 GB/day/server";
    daily_write_bytes = 1024 * mb;
  }

let santry =
  {
    study_name = "Santry";
    description = "Santry et al. (Elephant) research group: ~110 MB/day";
    daily_write_bytes = 110 * mb;
  }

let all = [ afs; nt; santry ]

type measurement = {
  m_study : string;
  days : int;
  scale : float;
  history_bytes_per_day : float;
  scaled_up_bytes_per_day : float;
  metadata_fraction : float;
}

let day_ns = Int64.mul 86_400L 1_000_000_000L

let replay ?(seed = 99) ?(scale = 0.01) ?(days = 5) study sys =
  let drive =
    match sys.Systems.drive with
    | Some d -> d
    | None -> invalid_arg "Daily.replay: needs an S4 system"
  in
  let store = Drive.store drive in
  let log = Drive.log drive in
  let block = Log.block_size log in
  let rng = Rng.create ~seed in
  let handle req = Server.handle_exn sys.Systems.server req in
  let root = sys.Systems.server.Server.root in
  let dir =
    match handle (N.Mkdir { dir = root; name = "daily"; mode = 0o755 }) with
    | N.R_fh (fh, _) -> fh
    | _ -> failwith "daily: mkdir"
  in
  let daily_bytes = int_of_float (scale *. float_of_int study.daily_write_bytes) in
  let files = ref [] in
  let nfiles = ref 0 in
  let write_some written_target =
    let written = ref 0 in
    while !written < written_target do
      let size = 2_048 + Rng.int rng 30_000 in
      let overwrite = !nfiles > 20 && Rng.float rng 1.0 < 0.6 in
      (if overwrite then begin
         (* Overwrite or append to an existing file: versions pile up. *)
         let fh, old_size = List.nth !files (Rng.int rng (min 50 !nfiles)) in
         let off = if Rng.bool rng then 0 else old_size in
         ignore (handle (N.Write { fh; off; data = Bytes.make size 'd' }))
       end
       else begin
         let name = Printf.sprintf "f%06d" !nfiles in
         match handle (N.Create { dir; name; mode = 0o644 }) with
         | N.R_fh (fh, _) ->
           ignore (handle (N.Write { fh; off = 0; data = Bytes.make size 'd' }));
           files := (fh, size) :: !files;
           incr nfiles
         | _ -> failwith "daily: create"
       end);
      written := !written + size
    done
  in
  (* Warm-up day establishes the file population, then measure. *)
  write_some daily_bytes;
  Simclock.advance sys.Systems.clock day_ns;
  let live0 = Log.live_blocks log * block in
  let meta0 = Store.metadata_block_count store * block in
  for _ = 1 to days do
    write_some daily_bytes;
    ignore (Drive.run_cleaner drive);
    Simclock.advance sys.Systems.clock day_ns
  done;
  let live1 = Log.live_blocks log * block in
  let meta1 = Store.metadata_block_count store * block in
  let per_day = float_of_int (live1 - live0) /. float_of_int days in
  let meta_per_day = float_of_int (meta1 - meta0) /. float_of_int days in
  {
    m_study = study.study_name;
    days;
    scale;
    history_bytes_per_day = per_day;
    scaled_up_bytes_per_day = per_day /. scale;
    metadata_fraction = (if per_day > 0.0 then meta_per_day /. per_day else 0.0);
  }

let pp_measurement ppf m =
  Format.fprintf ppf
    "%-7s %d days at %.1f%%: %.2f MB/day history at scale (%.0f MB/day full; %.1f%% metadata)"
    m.m_study m.days (100.0 *. m.scale)
    (m.history_bytes_per_day /. 1048576.0)
    (m.scaled_up_bytes_per_day /. 1048576.0)
    (100.0 *. m.metadata_fraction)
