module Bcodec = S4_util.Bcodec

type fh = int64
type ftype = Freg | Fdir | Flnk

type attr = {
  ftype : ftype;
  mode : int;
  nlink : int;
  uid : int;
  gid : int;
  size : int;
  mtime : int64;
  ctime : int64;
  atime : int64;
}

let fresh_attr ftype ~uid ~now =
  {
    ftype;
    mode = (match ftype with Fdir -> 0o755 | Freg | Flnk -> 0o644);
    nlink = (match ftype with Fdir -> 2 | Freg | Flnk -> 1);
    uid;
    gid = uid;
    size = 0;
    mtime = now;
    ctime = now;
    atime = now;
  }

let ftype_code = function Freg -> 0 | Fdir -> 1 | Flnk -> 2

let ftype_of_code = function
  | 0 -> Freg
  | 1 -> Fdir
  | 2 -> Flnk
  | c -> raise (Bcodec.Decode_error (Printf.sprintf "nfs attr: bad ftype %d" c))

let encode_attr a =
  let w = Bcodec.writer ~capacity:48 () in
  Bcodec.w_u8 w (ftype_code a.ftype);
  Bcodec.w_u32 w a.mode;
  Bcodec.w_int w a.nlink;
  Bcodec.w_int w a.uid;
  Bcodec.w_int w a.gid;
  Bcodec.w_int w a.size;
  Bcodec.w_i64 w a.mtime;
  Bcodec.w_i64 w a.ctime;
  Bcodec.w_i64 w a.atime;
  Bcodec.contents w

let decode_attr b =
  let r = Bcodec.reader b in
  let ftype = ftype_of_code (Bcodec.r_u8 r) in
  let mode = Bcodec.r_u32 r in
  let nlink = Bcodec.r_int r in
  let uid = Bcodec.r_int r in
  let gid = Bcodec.r_int r in
  let size = Bcodec.r_int r in
  let mtime = Bcodec.r_i64 r in
  let ctime = Bcodec.r_i64 r in
  let atime = Bcodec.r_i64 r in
  { ftype; mode; nlink; uid; gid; size; mtime; ctime; atime }

type dirent = { name : string; fh : fh }

let slot_size = 64
let max_name = 54

let encode_slot = function
  | None -> Bytes.make slot_size '\000'
  | Some e ->
    let n = String.length e.name in
    if n = 0 || n > max_name then invalid_arg "nfs dir: name length";
    let b = Bytes.make slot_size '\000' in
    Bytes.set b 0 (Char.chr n);
    Bytes.blit_string e.name 0 b 1 n;
    Bcodec.set_i64 b (slot_size - 8) e.fh;
    b

let decode_slot b ~pos =
  let n = Char.code (Bytes.get b pos) in
  if n = 0 then None
  else if n > max_name then raise (Bcodec.Decode_error "nfs dir: bad slot")
  else begin
    let name = Bytes.sub_string b (pos + 1) n in
    let fh = Bcodec.get_i64 b (pos + slot_size - 8) in
    Some { name; fh }
  end

let encode_dir entries =
  let b = Bytes.create (slot_size * List.length entries) in
  List.iteri (fun i e -> Bytes.blit (encode_slot (Some e)) 0 b (i * slot_size) slot_size) entries;
  b

let decode_dir_slots b =
  let nslots = Bytes.length b / slot_size in
  let acc = ref [] in
  for i = nslots - 1 downto 0 do
    match decode_slot b ~pos:(i * slot_size) with
    | Some e -> acc := (e, i) :: !acc
    | None -> ()
  done;
  (!acc, nslots)

let decode_dir b = List.map fst (fst (decode_dir_slots b))

type error =
  | Enoent
  | Eexist
  | Enotdir
  | Eisdir
  | Eacces
  | Enotempty
  | Enospc
  | Eio of string

let pp_error ppf = function
  | Enoent -> Format.fprintf ppf "ENOENT"
  | Eexist -> Format.fprintf ppf "EEXIST"
  | Enotdir -> Format.fprintf ppf "ENOTDIR"
  | Eisdir -> Format.fprintf ppf "EISDIR"
  | Eacces -> Format.fprintf ppf "EACCES"
  | Enotempty -> Format.fprintf ppf "ENOTEMPTY"
  | Enospc -> Format.fprintf ppf "ENOSPC"
  | Eio m -> Format.fprintf ppf "EIO(%s)" m

type req =
  | Getattr of fh
  | Setattr of { fh : fh; mode : int option; size : int option }
  | Lookup of { dir : fh; name : string }
  | Readlink of fh
  | Read of { fh : fh; off : int; len : int }
  | Write of { fh : fh; off : int; data : Bytes.t }
  | Create of { dir : fh; name : string; mode : int }
  | Remove of { dir : fh; name : string }
  | Rename of { from_dir : fh; from_name : string; to_dir : fh; to_name : string }
  | Mkdir of { dir : fh; name : string; mode : int }
  | Rmdir of { dir : fh; name : string }
  | Readdir of fh
  | Symlink of { dir : fh; name : string; target : string }
  | Statfs

type resp =
  | R_attr of attr
  | R_fh of fh * attr
  | R_data of Bytes.t
  | R_entries of dirent list
  | R_link of string
  | R_unit
  | R_statfs of { total_bytes : int; free_bytes : int }
  | R_error of error

let req_name = function
  | Getattr _ -> "getattr"
  | Setattr _ -> "setattr"
  | Lookup _ -> "lookup"
  | Readlink _ -> "readlink"
  | Read _ -> "read"
  | Write _ -> "write"
  | Create _ -> "create"
  | Remove _ -> "remove"
  | Rename _ -> "rename"
  | Mkdir _ -> "mkdir"
  | Rmdir _ -> "rmdir"
  | Readdir _ -> "readdir"
  | Symlink _ -> "symlink"
  | Statfs -> "statfs"

let is_modifying = function
  | Setattr _ | Write _ | Create _ | Remove _ | Rename _ | Mkdir _ | Rmdir _ | Symlink _ -> true
  | Getattr _ | Lookup _ | Readlink _ | Read _ | Readdir _ | Statfs -> false
