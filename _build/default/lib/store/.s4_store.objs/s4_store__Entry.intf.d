lib/store/entry.mli: Bytes Format S4_seglog
