module Rpc = S4.Rpc
module Drive = S4.Drive
module Backend = S4.Backend
module Simclock = S4_util.Simclock
module Metrics = S4_obs.Metrics
module Trace = S4_obs.Trace

type audit_garbage = client:int -> info:string -> unit

(* The garbage-audit hook for a drive-backed server: malformed input
   is recorded inside the perimeter like any other request, charged to
   the connection-derived identity. *)
let drive_audit_garbage drive ~client ~info =
  let audit = Drive.audit drive in
  let at = Simclock.now (Drive.clock drive) in
  try
    S4.Audit.append audit
      { S4.Audit.at; user = -1; client; op = "net_reject"; oid = 0L; info; ok = false }
  with _ -> ()

type config = {
  max_frame : int;
  max_inflight : int;
  max_io : int;
  allow_admin : bool;
  max_batch : int;  (** largest accepted [Batch]; advertised in [Stat_ack] *)
  lease_ns : int64;
      (** client-cache lease term granted on read replies (v3
          sessions); 0 grants no leases *)
  qos : bool;
      (** arbitrate pending work across every session with weighted
          fair queueing instead of per-session FIFO *)
}

let default_config =
  {
    max_frame = Wire.max_frame_default;
    max_inflight = 64;
    max_io = 16 * 1024 * 1024;
    allow_admin = true;
    max_batch = 256;
    lease_ns = 0L;
    qos = false;
  }

type t = {
  backend : Backend.t;
  audit_garbage : audit_garbage option;
  cfg : config;
  lock : Mutex.t;
      (** serializes backend calls when the backend is [Serial] (the
          drive stack is single-owner), and guards [sched]/[leases]
          whenever those features are on; bypassed entirely for a
          [Domain_safe] backend with neither — see [direct] *)
  sched : (unit -> unit) S4_qos.Wfq.t option;
      (** [qos] mode: one WFQ over every session's pending work; items
          are execute-and-reply thunks, guarded by [lock] *)
  leases : (int64, (int * bool, int64) Hashtbl.t) Hashtbl.t;
      (** live client-cache leases, by oid: (holder connection
          identity, current-version?) -> absolute expiry. Guarded by
          [lock]. *)
}

let create ?(config = default_config) ?audit_garbage ?weight_of backend =
  Wire.ensure_metrics ();
  {
    backend;
    audit_garbage;
    cfg = config;
    lock = Mutex.create ();
    sched = (if config.qos then Some (S4_qos.Wfq.create ?weight_of ()) else None);
    leases = Hashtbl.create 64;
  }

(* A drive-backed server schedules clients by the drive's own DoS
   detector: an active history-pool penalty shrinks the client's WFQ
   weight, so the noisy client is served less often while honest
   clients keep their share. *)
let of_drive ?config ?weight_of drive =
  let weight_of =
    match weight_of with
    | Some _ -> weight_of
    | None -> (
      match Drive.throttle drive with
      | Some th -> Some (fun client -> S4.Throttle.weight th ~client)
      | None -> None)
  in
  create ?config ?weight_of
    ~audit_garbage:(drive_audit_garbage drive)
    (Drive.backend drive)

let config t = t.cfg
let scheduler t = t.sched

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* When the backend declares itself [Domain_safe] and neither the
   shared WFQ scheduler nor the lease registry is in play, sessions
   skip the server lock entirely: every connection calls straight into
   the backend, which serializes (or parallelizes) internally.
   Per-session ordering is untouched — a session still drains its own
   FIFO on its own thread — but independent sessions no longer
   serialize on this mutex. With [qos] the lock is what makes the
   shared queue's arbitration atomic, and with leases it guards the
   registry and the fence's clock wait, so either feature keeps the
   lock. *)
let direct t =
  t.backend.Backend.concurrency = Backend.Domain_safe
  && Option.is_none t.sched
  && Int64.compare t.cfg.lease_ns 0L <= 0

let with_backend t f = if direct t then f () else with_lock t f

(* ------------------------------------------------------------------ *)
(* Client-cache lease registry                                         *)

(* Leases follow the classic write-through discipline: a mutation that
   could change what an outstanding lease's holder observes may not
   apply until that lease has expired. The protocol has no callback
   channel to recall a lease, so the "recall" is a wait — the server
   advances the clock to the conflicting expiry before executing the
   mutation (bounded by [lease_ns], which is why the term should stay
   small). A client's own mutations never wait for its own leases: the
   client invalidates its cache the moment it sends one. This is what
   makes cached reads linearizable across clients — a cached serve
   orders before any conflicting write, because that write only
   committed after the lease died. *)

let record_lease t ~oid ~holder ~current ~expiry ~now =
  let tbl =
    match Hashtbl.find_opt t.leases oid with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 4 in
      Hashtbl.add t.leases oid tbl;
      tbl
  in
  (* Drop this oid's dead grants while we are here, keeping the
     registry bounded by live leases. *)
  let dead =
    Hashtbl.fold (fun k e acc -> if e <= now then k :: acc else acc) tbl []
  in
  List.iter (Hashtbl.remove tbl) dead;
  match Hashtbl.find_opt tbl (holder, current) with
  | Some e when e >= expiry -> ()
  | _ -> Hashtbl.replace tbl (holder, current) expiry

(* Latest expiry among leases [req] from [holder] conflicts with (0 =
   none). Current-version leases conflict with any mutation of their
   object; explicit-version leases name immutable history and conflict
   only with pruning ([Flush]/[Flush_object]/[Set_window]), which can
   retire the very version they cache. *)
let conflicting_lease_expiry t ~holder ~now req =
  let scan ~all oid acc =
    match Hashtbl.find_opt t.leases oid with
    | None -> acc
    | Some tbl ->
      Hashtbl.fold
        (fun (h, current) e acc ->
          if e <= now || h = holder || not (all || current) then acc else max acc e)
        tbl acc
  in
  match req with
  | Rpc.Delete { oid }
  | Rpc.Write { oid; _ }
  | Rpc.Append { oid; _ }
  | Rpc.Truncate { oid; _ }
  | Rpc.Set_attr { oid; _ }
  | Rpc.Set_acl { oid; _ } -> scan ~all:false oid 0L
  | Rpc.Flush_object { oid; _ } -> scan ~all:true oid 0L
  | Rpc.Flush _ | Rpc.Set_window _ ->
    Hashtbl.fold (fun oid _ acc -> scan ~all:true oid acc) t.leases 0L
  | _ -> 0L

(* ------------------------------------------------------------------ *)
(* Sans-IO protocol session                                            *)

module Session = struct
  type work =
    | W_one of int64 * Rpc.credential * bool * Rpc.req
    | W_batch of int64 * Rpc.credential * bool * Rpc.req array

  let work_units = function W_one _ -> 1 | W_batch (_, _, _, reqs) -> Array.length reqs

  type s = {
    srv : t;
    s_identity : int;
    s_trace : bool;
    mutable s_version : int;
        (* negotiated protocol version: every frame out is encoded at
           it. Starts at our best; a [Hello] can only lower it. *)
    mutable inbuf : Bytes.t;
    mutable in_start : int;
    mutable in_len : int;
    pending : work Queue.t;
    mutable s_inflight : int;  (* requests queued, batches flattened *)
    out : Buffer.t;
    out_lock : Mutex.t;
        (* In [qos] mode any session's thread may execute this
           session's work and emit its reply; the buffer gets its own
           lock (always innermost, after the server lock). *)
    mutable s_closing : bool;
  }

  let create ?(identity = 1) ?(trace = false) srv =
    {
      srv;
      s_identity = identity;
      s_trace = trace;
      s_version = Wire.version;
      inbuf = Bytes.create 4096;
      in_start = 0;
      in_len = 0;
      pending = Queue.create ();
      s_inflight = 0;
      out = Buffer.create 256;
      out_lock = Mutex.create ();
      s_closing = false;
    }

  let identity s = s.s_identity
  let version s = s.s_version
  let closing s = s.s_closing

  let finished s =
    s.s_closing && s.s_inflight = 0 && Queue.is_empty s.pending && Buffer.length s.out = 0

  let emit s frame =
    let b = Wire.encode ~version:s.s_version frame in
    Metrics.incr "net/frames_out";
    Metrics.incr ~by:(Bytes.length b) "net/bytes_out";
    Mutex.lock s.out_lock;
    Buffer.add_bytes s.out b;
    Mutex.unlock s.out_lock

  let output s =
    Mutex.lock s.out_lock;
    let b = Buffer.to_bytes s.out in
    Buffer.clear s.out;
    Mutex.unlock s.out_lock;
    b

  (* Reject the stream: protocol error out, audit the garbage, stop
     reading. Queued valid requests still execute before the close. *)
  let reject s msg =
    Metrics.incr "net/decode_reject";
    (match s.srv.audit_garbage with
    | Some f -> f ~client:s.s_identity ~info:msg
    | None -> ());
    emit s (Wire.Proto_error { xid = 0L; message = msg });
    s.s_closing <- true;
    s.in_len <- 0;
    s.in_start <- 0

  let now s = Simclock.now s.srv.backend.Backend.clock

  let oversized_io cfg (req : Rpc.req) =
    match req with
    | Rpc.Read { len; _ } | Rpc.Write { len; _ } | Rpc.Append { len; _ } ->
      len > cfg.max_io || len < 0
    | Rpc.Truncate { size; _ } -> size > cfg.max_io || size < 0
    | _ -> false

  let bad_data (req : Rpc.req) =
    match req with
    | Rpc.Write { len; data = Some d; _ } | Rpc.Append { len; data = Some d; _ } ->
      Bytes.length d <> len
    | _ -> false

  (* Execute a (possibly one-element) batch; the caller must hold the
     server lock. Per-request policy violations (oversized IO,
     inconsistent data length) answer positionally without reaching
     the backend; the surviving requests go down as ONE vectored
     submission, so a [sync] batch pays a single group-commit
     barrier. *)
  let execute_batch_locked s cred sync reqs =
    let cfg = s.srv.cfg in
    (* The connection, not the request, names the client. *)
    let cred = { cred with Rpc.client = s.s_identity } in
    let n = Array.length reqs in
    if cred.Rpc.admin && not cfg.allow_admin then
      Array.make n (Rpc.R_error Rpc.Permission_denied)
    else begin
      let resps = Array.make n Rpc.R_unit in
      let valid = ref [] in
      Array.iteri
        (fun i req ->
          if oversized_io cfg req then
            resps.(i) <- Rpc.R_error (Rpc.Bad_request "io size exceeds server limit")
          else if bad_data req then
            resps.(i) <- Rpc.R_error (Rpc.Bad_request "data length mismatch")
          else valid := (i, req) :: !valid)
        reqs;
      let valid = Array.of_list (List.rev !valid) in
      let kind =
        if n = 1 then Rpc.op_name reqs.(0) else Printf.sprintf "batch/%d" n
      in
      let tok =
        if s.s_trace && Trace.on () then Trace.enter Trace.Net ~kind ~now:(now s)
        else Trace.null
      in
      let sub = Array.map snd valid in
      (* Lease fence: wait out every other client's lease this batch's
         mutations conflict with before any of it executes. *)
      let fence =
        Array.fold_left
          (fun acc req ->
            if Rpc.is_mutation req then
              max acc
                (conflicting_lease_expiry s.srv ~holder:s.s_identity ~now:(now s) req)
            else acc)
          0L sub
      in
      if fence > now s then begin
        Metrics.incr "net/lease_wait";
        Simclock.set s.srv.backend.Backend.clock fence
      end;
      let out =
        try s.srv.backend.Backend.submit cred ~sync sub
        with exn ->
          Array.make (Array.length sub) (Rpc.R_error (Rpc.Io_error (Printexc.to_string exn)))
      in
      if Array.length out = Array.length sub then
        Array.iteri (fun j (i, _) -> resps.(i) <- out.(j)) valid
      else
        (* A backend answering off-count is broken: fail the batch. *)
        Array.iteri
          (fun j (i, _) ->
            resps.(i) <-
              (if j < Array.length out then out.(j)
               else Rpc.R_error (Rpc.Io_error "backend response count mismatch")))
          valid;
      (match resps with
      | [| Rpc.R_error e |] -> Trace.fail tok (Rpc.err_tag e)
      | _ -> ());
      Trace.finish tok ~now:(now s);
      resps
    end

  (* The lease piggybacked on a read reply: how long the client may
     serve this answer from its cache, as an absolute expiry on the
     server's clock. Only granted on v3 sessions, only for plain
     object reads — never for errors, and never for audit-trail reads
     (whose answers must always come from the drive). Every grant is
     recorded in the server's registry so conflicting mutations from
     other clients wait it out (the lease fence above). *)
  let lease_for s (req : Rpc.req) (resp : Rpc.resp) =
    let term = s.srv.cfg.lease_ns in
    if s.s_version < 3 || Int64.compare term 0L <= 0 then 0L
    else
      match (req, resp) with
      | (Rpc.Read { oid; at; _ } | Rpc.Get_attr { oid; at }), (Rpc.R_data _ | Rpc.R_attr _)
        ->
        let n = now s in
        let expiry = Int64.add n term in
        record_lease s.srv ~oid ~holder:s.s_identity ~current:(at = None) ~expiry
          ~now:n;
        expiry
      | _ -> 0L

  (* Execute one unit of queued work and emit its reply; the caller
     must hold the server lock in [qos] mode. *)
  let finish_work s w =
    s.s_inflight <- s.s_inflight - work_units w;
    match w with
    | W_one (xid, cred, sync, req) ->
      let resp = (execute_batch_locked s cred sync [| req |]).(0) in
      emit s (Wire.Response { xid; resp; now = now s; lease = lease_for s req resp })
    | W_batch (xid, cred, sync, reqs) ->
      let resps = execute_batch_locked s cred sync reqs in
      let leases = Array.mapi (fun i resp -> lease_for s reqs.(i) resp) resps in
      emit s (Wire.Batch_reply { xid; resps; now = now s; leases })

  let enqueue s w =
    let n = work_units w in
    if s.s_inflight + n > s.srv.cfg.max_inflight then
      reject s (Printf.sprintf "more than %d requests in flight" s.srv.cfg.max_inflight)
    else
      match s.srv.sched with
      | None ->
        s.s_inflight <- s.s_inflight + n;
        Queue.add w s.pending
      | Some sched ->
        (* Shared weighted-fair queue: the item's cost is its request
           count and its weight is sampled from the server's weight
           source (the drive throttle, under [of_drive]), so a noisy
           client's flood interleaves behind honest clients' work
           instead of ahead of it. *)
        with_lock s.srv (fun () ->
            s.s_inflight <- s.s_inflight + n;
            S4_qos.Wfq.enqueue sched ~client:s.s_identity ~cost:(float_of_int n)
              (fun () -> finish_work s w))

  let on_frame s (frame : Wire.frame) =
    match frame with
    | Wire.Hello { version; claim = _ } ->
      if version < Wire.min_version then
        reject s (Printf.sprintf "unsupported client version %d" version)
      else begin
        (* Negotiate down to the best version both sides speak. *)
        s.s_version <- min version Wire.version;
        emit s
          (Wire.Hello_ack { version = s.s_version; identity = s.s_identity; now = now s })
      end
    | Wire.Request { xid; cred; sync; req } -> enqueue s (W_one (xid, cred, sync, req))
    | Wire.Batch { xid; cred; sync; reqs } ->
      (* The decoder already rejects kind-8 frames in a v1 stream; this
         catches a peer that negotiated v1 yet still sent v2 frames. *)
      if s.s_version < 2 then reject s "batch frame on a v1 session"
      else if Array.length reqs > s.srv.cfg.max_batch then
        reject s
          (Printf.sprintf "batch of %d exceeds limit %d" (Array.length reqs)
             s.srv.cfg.max_batch)
      else enqueue s (W_batch (xid, cred, sync, reqs))
    | Wire.Stat { xid } ->
      let total, free = with_backend s.srv (fun () -> s.srv.backend.Backend.capacity ()) in
      emit s
        (Wire.Stat_ack { xid; total; free; now = now s; batch = s.srv.cfg.max_batch })
    | Wire.Goodbye -> s.s_closing <- true
    | Wire.Hello_ack _ | Wire.Response _ | Wire.Proto_error _ | Wire.Stat_ack _
    | Wire.Batch_reply _ ->
      reject s (Printf.sprintf "unexpected %s frame from client" (Wire.frame_name frame))

  let compact s =
    if s.in_start > 0 then begin
      Bytes.blit s.inbuf s.in_start s.inbuf 0 s.in_len;
      s.in_start <- 0
    end

  let parse s =
    let continue = ref true in
    while !continue do
      match
        Wire.decode ~max_frame:s.srv.cfg.max_frame s.inbuf ~pos:s.in_start ~avail:s.in_len
      with
      | Wire.Frame (f, used) ->
        s.in_start <- s.in_start + used;
        s.in_len <- s.in_len - used;
        Metrics.incr "net/frames_in";
        on_frame s f;
        if s.s_closing then continue := false
      | Wire.Need_more _ -> continue := false
      | Wire.Corrupt msg ->
        reject s msg;
        continue := false
    done;
    if s.in_len = 0 then s.in_start <- 0

  let feed s buf off len =
    if len < 0 || off < 0 || off + len > Bytes.length buf then
      invalid_arg "Session.feed: bad range";
    if (not s.s_closing) && len > 0 then begin
      Metrics.incr ~by:len "net/bytes_in";
      compact s;
      if s.in_len + len > Bytes.length s.inbuf then begin
        let ncap = max (s.in_len + len) (2 * Bytes.length s.inbuf) in
        let nb = Bytes.create ncap in
        Bytes.blit s.inbuf 0 nb 0 s.in_len;
        s.inbuf <- nb
      end;
      Bytes.blit buf off s.inbuf s.in_len len;
      s.in_len <- s.in_len + len;
      parse s
    end

  (* One scheduling step. FIFO mode serves this session's own queue;
     [qos] mode serves whichever session's work the weighted-fair
     queue puts first — any session's [run] drains everyone's
     highest-priority work, which is what makes the arbitration
     global. *)
  let step s =
    match s.srv.sched with
    | None -> (
      match Queue.take_opt s.pending with
      | None -> false
      | Some w ->
        with_backend s.srv (fun () -> finish_work s w);
        true)
    | Some sched ->
      with_lock s.srv (fun () ->
          match S4_qos.Wfq.pop sched with
          | None -> false
          | Some thunk ->
            thunk ();
            true)

  let rec run s = if step s then run s
end

(* ------------------------------------------------------------------ *)
(* TCP daemon                                                          *)

type listener = {
  l_sock : Unix.file_descr;
  l_port : int;
  mutable l_stopping : bool;
  l_threads : (Mutex.t * Thread.t list ref);
  mutable l_accepted : int;
  mutable l_accept_thread : Thread.t option;
}

let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd b !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* Distinct peer IPs get distinct, stable identities. *)
let id_lock = Mutex.create ()
let id_table : (string, int) Hashtbl.t = Hashtbl.create 7
let id_next = ref 1

let identity_of_addr = function
  | Unix.ADDR_INET (ip, _) ->
    let key = Unix.string_of_inet_addr ip in
    Mutex.lock id_lock;
    let id =
      match Hashtbl.find_opt id_table key with
      | Some id -> id
      | None ->
        let id = !id_next in
        incr id_next;
        Hashtbl.add id_table key id;
        id
    in
    Mutex.unlock id_lock;
    id
  | Unix.ADDR_UNIX _ -> 0

let serve_connection srv l fd peer =
  let sess = Session.create ~identity:(identity_of_addr peer) srv in
  let buf = Bytes.create 65536 in
  (* A short receive timeout keeps the loop responsive to shutdown. *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25 with Unix.Unix_error _ -> ());
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let alive = ref true in
  (try
     while !alive do
       if l.l_stopping then sess.Session.s_closing <- true;
       if not (Session.closing sess) then begin
         match Unix.read fd buf 0 (Bytes.length buf) with
         | 0 -> sess.Session.s_closing <- true
         | n -> Session.feed sess buf 0 n
         | exception
             Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT | Unix.EINTR), _, _)
           ->
           ()
         | exception Unix.Unix_error (_, _, _) -> sess.Session.s_closing <- true
       end;
       Session.run sess;
       let out = Session.output sess in
       if Bytes.length out > 0 then write_all fd out;
       if Session.finished sess then alive := false
     done
   with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec accept_loop srv l =
  if not l.l_stopping then begin
    match Unix.select [ l.l_sock ] [] [] 0.25 with
    | [], _, _ -> accept_loop srv l
    | _ :: _, _, _ ->
      (match Unix.accept l.l_sock with
      | fd, peer ->
        l.l_accepted <- l.l_accepted + 1;
        let th = Thread.create (fun () -> serve_connection srv l fd peer) () in
        let m, lst = l.l_threads in
        Mutex.lock m;
        lst := th :: !lst;
        Mutex.unlock m
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> l.l_stopping <- true);
      accept_loop srv l
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop srv l
    | exception Unix.Unix_error (_, _, _) -> l.l_stopping <- true
  end

let serve_tcp ?(host = "127.0.0.1") ?(port = 0) srv =
  Lazy.force ignore_sigpipe;
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (addr, port));
  Unix.listen sock 64;
  let actual_port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let l =
    {
      l_sock = sock;
      l_port = actual_port;
      l_stopping = false;
      l_threads = (Mutex.create (), ref []);
      l_accepted = 0;
      l_accept_thread = None;
    }
  in
  l.l_accept_thread <- Some (Thread.create (fun () -> accept_loop srv l) ());
  l

let port l = l.l_port
let connections l = l.l_accepted

let shutdown l =
  l.l_stopping <- true;
  (match l.l_accept_thread with Some th -> Thread.join th | None -> ());
  (try Unix.close l.l_sock with Unix.Unix_error _ -> ());
  let m, lst = l.l_threads in
  Mutex.lock m;
  let threads = !lst in
  lst := [];
  Mutex.unlock m;
  List.iter Thread.join threads
