(** Drive-internal audit log.

    Every RPC handled by the drive — reads, writes and administrative
    commands alike — is recorded with its originating user and client.
    The log lives behind the security perimeter as a reserved,
    append-only stream that only the drive front end can write: records
    are packed into blocks that enter the same segment stream as data
    (which is what perturbs read locality in the paper's Figure 6
    microbenchmark). The audit log is not versioned; it is pruned only
    by aging.

    Records are buffered in memory and written out when a full block
    accumulates — the paper's "one disk write roughly every 750
    operations" behaviour — so a crash can lose the tail of the audit
    log, as in the prototype.

    The persisted log is additionally tamper-evident: each flushed
    record extends a SHA-256 hash chain ({!S4_integrity.Chain}), every
    block records its chain position and prior head, and {!seal} pins
    the head into an epoch record at each durability barrier. {!verify}
    re-walks the persisted chain and pinpoints any rewrite, drop,
    reorder or fork of sealed history. *)

type record = {
  at : int64;  (** simulated time of the request *)
  user : int;
  client : int;
  op : string;  (** RPC name, e.g. "write" *)
  oid : int64;  (** object concerned, 0 when not applicable *)
  info : string;  (** argument summary, e.g. "off=0 len=4096" *)
  ok : bool;  (** whether the drive accepted the request *)
}

type t

val create : ?enabled:bool -> S4_seglog.Log.t -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit
(** Disabling stops recording (used for the Figure 6 comparison);
    already-recorded history remains. *)

val append : t -> record -> unit
val flush : t -> unit
(** Force the partial buffer into a block (e.g. at shutdown). *)

val block_count : t -> int
val record_count : t -> int

val block_addrs : t -> int list
(** Addresses of flushed audit blocks, newest first (for cross-layer
    liveness checks). *)

val records : t -> ?since:int64 -> ?until:int64 -> unit -> record list
(** Chronological records in the given (inclusive) time range; reads
    audit blocks through the log (charged). *)

val expire : t -> cutoff:int64 -> int
(** Free audit blocks whose newest record is older than the cutoff;
    returns blocks freed. *)

val on_move : t -> old_addr:int -> new_addr:int -> unit
(** Cleaner relocation callback. *)

val recover : t -> unit
(** After a crash ({!S4_seglog.Log.reattach} + store recovery), re-find
    audit blocks from segment summaries and re-mark them live. *)

val record_wire_bytes : record -> int
(** Encoded size of one record (compact encoding: op-code byte,
    varint principals, time delta against the block base). *)

val decode_block : Bytes.t -> record list option
(** Exposed for tests and forensic tools. *)

(** {1 Hash chain} *)

val canonical : record -> Bytes.t
(** The canonical encoding the hash chain runs over (independent of
    the block-level delta encoding). *)

val chain_head : t -> string
(** Running SHA-256 head after the last flushed record. *)

val chained : t -> int
(** Global index of the next record to be chained (flushed records
    since format). *)

val sealed_head : t -> S4_integrity.Chain.head
(** Head pinned by the newest seal; {!S4_integrity.Chain.genesis} if
    nothing is sealed yet. *)

val seal_count : t -> int

val prospective_head : t -> S4_integrity.Chain.head
(** The head the next {!seal} would write (equals {!sealed_head} when
    nothing new has been flushed). The shard router records these in
    the integrity catalog before fanning out member barriers. *)

val seal : t -> unit
(** Seal the chain at a durability barrier: call after {!flush} and
    before the log sync so the epoch record travels in the same flush
    as the records it covers. No-op when nothing new was flushed. *)

val live_addrs : t -> int list
(** Record blocks plus seals (for cross-layer liveness checks). *)

val verify :
  ?from:S4_integrity.Chain.head ->
  ?lenient_tail:bool ->
  t ->
  S4_integrity.Chain.verify_result
(** Re-walk the persisted chain from the log (forensic reads,
    uncharged). [from] resumes from a trusted head; [lenient_tail]
    accepts a torn unsealed tail (crash recovery). *)
