lib/nfs/nfs_types.ml: Bytes Char Format List Printf S4_util String
