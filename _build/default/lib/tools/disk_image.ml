(* Host-file persistence for simulated disks, so the CLI can operate on
   a drive across invocations. The image holds the geometry, the
   simulated clock, and the sparse sector contents. *)

module Bcodec = S4_util.Bcodec
module Simclock = S4_util.Simclock
module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk

let magic = "S4IMG1\n"

let save path (clock : Simclock.t) (disk : Sim_disk.t) =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let g = Sim_disk.geometry disk in
      let w = Bcodec.writer () in
      Bcodec.w_string w g.Geometry.name;
      Bcodec.w_int w g.Geometry.sector_size;
      Bcodec.w_int w g.Geometry.sectors;
      Bcodec.w_int w g.Geometry.rpm;
      Bcodec.w_int w g.Geometry.track_sectors;
      Bcodec.w_i64 w (Int64.bits_of_float g.Geometry.min_seek_ms);
      Bcodec.w_i64 w (Int64.bits_of_float g.Geometry.avg_seek_ms);
      Bcodec.w_i64 w (Int64.bits_of_float g.Geometry.max_seek_ms);
      Bcodec.w_i64 w (Int64.bits_of_float g.Geometry.transfer_mb_s);
      Bcodec.w_i64 w (Simclock.now clock);
      let header = Bcodec.contents w in
      output_binary_int oc (Bytes.length header);
      output_bytes oc header;
      (* Sparse sector dump: scan for sectors with content. *)
      let ss = g.Geometry.sector_size in
      let zero = Bytes.make ss '\000' in
      let count = ref 0 in
      let payload = Buffer.create (1 lsl 20) in
      for lba = 0 to g.Geometry.sectors - 1 do
        let b = Sim_disk.peek disk ~lba ~sectors:1 in
        if not (Bytes.equal b zero) then begin
          incr count;
          Buffer.add_int32_be payload (Int32.of_int lba);
          Buffer.add_bytes payload b
        end
      done;
      output_binary_int oc !count;
      Buffer.output_buffer oc payload)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then failwith (path ^ ": not an S4 image");
      let hlen = input_binary_int ic in
      let header = Bytes.create hlen in
      really_input ic header 0 hlen;
      let r = Bcodec.reader header in
      let name = Bcodec.r_string r in
      let sector_size = Bcodec.r_int r in
      let sectors = Bcodec.r_int r in
      let rpm = Bcodec.r_int r in
      let track_sectors = Bcodec.r_int r in
      let min_seek_ms = Int64.float_of_bits (Bcodec.r_i64 r) in
      let avg_seek_ms = Int64.float_of_bits (Bcodec.r_i64 r) in
      let max_seek_ms = Int64.float_of_bits (Bcodec.r_i64 r) in
      let transfer_mb_s = Int64.float_of_bits (Bcodec.r_i64 r) in
      let now = Bcodec.r_i64 r in
      let geometry =
        {
          Geometry.name;
          sector_size;
          sectors;
          rpm;
          track_sectors;
          min_seek_ms;
          avg_seek_ms;
          max_seek_ms;
          transfer_mb_s;
        }
      in
      let clock = Simclock.create () in
      Simclock.set clock now;
      let disk = Sim_disk.create ~geometry clock in
      let count = input_binary_int ic in
      let ss = sector_size in
      for _ = 1 to count do
        let lba_buf = Bytes.create 4 in
        really_input ic lba_buf 0 4;
        let lba = Int32.to_int (Bytes.get_int32_be lba_buf 0) in
        let data = Bytes.create ss in
        really_input ic data 0 ss;
        Sim_disk.poke disk ~lba ~data
      done;
      (clock, disk))
