type fh = int64
