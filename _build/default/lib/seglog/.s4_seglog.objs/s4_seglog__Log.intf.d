lib/seglog/log.mli: Bytes Format Jblock S4_disk S4_util Tag
