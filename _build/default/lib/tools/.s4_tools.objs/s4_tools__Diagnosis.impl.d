lib/tools/diagnosis.ml: Format Hashtbl Int64 List S4
