(* Tests for the disk simulator and network model. *)

module Geometry = S4_disk.Geometry
module Sim_disk = S4_disk.Sim_disk
module Net = S4_disk.Net
module Simclock = S4_util.Simclock

let check = Alcotest.check

let small_geom =
  Geometry.
    {
      name = "test 64MB";
      sector_size = 512;
      sectors = 131_072;
      rpm = 10_000;
      track_sectors = 334;
      min_seek_ms = 0.6;
      avg_seek_ms = 5.4;
      max_seek_ms = 10.5;
      transfer_mb_s = 21.0;
    }

let mk () =
  let clock = Simclock.create () in
  (clock, Sim_disk.create ~geometry:small_geom clock)

(* --- Geometry ------------------------------------------------------ *)

let test_geometry_presets () =
  check Alcotest.bool "cheetah ~9GB" true
    (abs (Geometry.capacity_bytes Geometry.cheetah_9gb - (9 * 1024 * 1024 * 1024)) < Geometry.capacity_bytes Geometry.cheetah_9gb / 4);
  check Alcotest.int "2GB capacity" (2 * 1024 * 1024 * 1024)
    (Geometry.capacity_bytes Geometry.cheetah_2gb);
  check (Alcotest.float 1e-9) "10k rpm rotation = 6ms" 6.0 (Geometry.rotation_ms Geometry.cheetah_9gb)

let test_seek_model () =
  let g = small_geom in
  check (Alcotest.float 1e-9) "zero distance" 0.0 (Geometry.seek_ms g ~distance_sectors:0);
  let short = Geometry.seek_ms g ~distance_sectors:1 in
  let long = Geometry.seek_ms g ~distance_sectors:g.Geometry.sectors in
  check Alcotest.bool "short > 0" true (short > 0.0);
  check Alcotest.bool "monotone" true (long > short);
  check (Alcotest.float 1e-6) "full stroke = max" g.Geometry.max_seek_ms long

let test_transfer_time () =
  (* 21 MB/s -> 1 MB takes ~47.6 ms *)
  let ms = Geometry.transfer_ms small_geom ~bytes:1_000_000 in
  check Alcotest.bool "1MB transfer ~47.6ms" true (abs_float (ms -. 47.6) < 0.2)

(* --- Sim_disk timing ----------------------------------------------- *)

let test_sequential_cheaper_than_random () =
  let clock, disk = mk () in
  (* Sequential: 100 x 8-sector reads continuing head position. *)
  for i = 0 to 99 do
    Sim_disk.read disk ~lba:(i * 8) ~sectors:8
  done;
  let sequential = Simclock.now clock in
  let clock2 = Simclock.create () in
  let disk2 = Sim_disk.create ~geometry:small_geom clock2 in
  for i = 0 to 99 do
    Sim_disk.read disk2 ~lba:(i * 1000) ~sectors:8
  done;
  let random = Simclock.now clock2 in
  check Alcotest.bool "sequential at least 10x cheaper" true
    (Int64.to_float random > 10.0 *. Int64.to_float sequential)

let test_first_access_pays_positioning () =
  let clock, disk = mk () in
  Sim_disk.read disk ~lba:0 ~sectors:8;
  (* Head starts at 0 so lba 0 is "sequential": transfer only. *)
  let t1 = Simclock.now clock in
  Sim_disk.read disk ~lba:5000 ~sectors:8;
  let t2 = Int64.sub (Simclock.now clock) t1 in
  check Alcotest.bool "random access slower than sequential start" true (Int64.compare t2 t1 > 0)

let test_stats_accounting () =
  let _, disk = mk () in
  Sim_disk.read disk ~lba:0 ~sectors:8;
  Sim_disk.write disk ~lba:8 ~sectors:16 ();
  let s = Sim_disk.stats disk in
  check Alcotest.int "reads" 1 s.Sim_disk.reads;
  check Alcotest.int "writes" 1 s.Sim_disk.writes;
  check Alcotest.int "sectors read" 8 s.Sim_disk.sectors_read;
  check Alcotest.int "sectors written" 16 s.Sim_disk.sectors_written;
  check Alcotest.int "both sequential" 2 s.Sim_disk.sequential;
  Sim_disk.reset_stats disk;
  check Alcotest.int "reset" 0 (Sim_disk.stats disk).Sim_disk.reads

let test_busy_time_advances_clock () =
  let clock, disk = mk () in
  Sim_disk.read disk ~lba:50_000 ~sectors:8;
  check Alcotest.bool "clock advanced" true (Int64.compare (Simclock.now clock) 0L > 0);
  check Alcotest.int64 "busy = clock (only user)" (Simclock.now clock)
    (Sim_disk.stats disk).Sim_disk.busy_ns

let test_out_of_range_rejected () =
  let _, disk = mk () in
  let cap = Sim_disk.capacity_sectors disk in
  check Alcotest.bool "read past end raises" true
    (try
       Sim_disk.read disk ~lba:(cap - 4) ~sectors:8;
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "negative lba raises" true
    (try
       Sim_disk.read disk ~lba:(-1) ~sectors:1;
       false
     with Invalid_argument _ -> true)

(* --- Sim_disk contents --------------------------------------------- *)

let test_contents_roundtrip () =
  let _, disk = mk () in
  let data = Bytes.init (512 * 4) (fun i -> Char.chr (i mod 256)) in
  Sim_disk.write disk ~data ~lba:100 ~sectors:4 ();
  let back = Sim_disk.read_bytes disk ~lba:100 ~sectors:4 in
  check Alcotest.bytes "roundtrip" data back

let test_unwritten_reads_zero () =
  let _, disk = mk () in
  let b = Sim_disk.read_bytes disk ~lba:10 ~sectors:2 in
  check Alcotest.bytes "zeros" (Bytes.make 1024 '\000') b

let test_dataless_write_clears () =
  let _, disk = mk () in
  let data = Bytes.make 512 'x' in
  Sim_disk.write disk ~data ~lba:5 ~sectors:1 ();
  Sim_disk.write disk ~lba:5 ~sectors:1 ();
  check Alcotest.bytes "cleared" (Bytes.make 512 '\000') (Sim_disk.peek disk ~lba:5 ~sectors:1)

let test_peek_untimed () =
  let clock, disk = mk () in
  let data = Bytes.make 512 'y' in
  Sim_disk.write disk ~data ~lba:7 ~sectors:1 ();
  let t = Simclock.now clock in
  let b = Sim_disk.peek disk ~lba:7 ~sectors:1 in
  check Alcotest.bytes "contents" data b;
  check Alcotest.int64 "no time passed" t (Simclock.now clock)

let test_poke_untimed_write () =
  let clock, disk = mk () in
  let t = Simclock.now clock in
  Sim_disk.poke disk ~lba:9 ~data:(Bytes.make 512 'z');
  check Alcotest.int64 "no time passed" t (Simclock.now clock);
  check Alcotest.bytes "stored" (Bytes.make 512 'z') (Sim_disk.peek disk ~lba:9 ~sectors:1)

let test_write_data_length_mismatch () =
  let _, disk = mk () in
  check Alcotest.bool "mismatch raises" true
    (try
       Sim_disk.write disk ~data:(Bytes.create 100) ~lba:0 ~sectors:1 ();
       false
     with Invalid_argument _ -> true)

let test_partial_overwrite () =
  let _, disk = mk () in
  Sim_disk.write disk ~data:(Bytes.make 1024 'a') ~lba:0 ~sectors:2 ();
  Sim_disk.write disk ~data:(Bytes.make 512 'b') ~lba:1 ~sectors:1 ();
  let b = Sim_disk.peek disk ~lba:0 ~sectors:2 in
  check Alcotest.bytes "first sector a, second b"
    (Bytes.cat (Bytes.make 512 'a') (Bytes.make 512 'b'))
    b

(* --- Net ----------------------------------------------------------- *)

let test_net_rpc_cost () =
  let clock = Simclock.create () in
  let net = Net.create ~latency_us:100.0 ~bandwidth_mb_s:12.5 clock in
  Net.rpc net ~req_bytes:0 ~resp_bytes:0;
  (* 2 x 100us latency *)
  check Alcotest.int64 "latency only" 200_000L (Simclock.now clock)

let test_net_bandwidth () =
  let clock = Simclock.create () in
  let net = Net.create ~latency_us:0.0 ~bandwidth_mb_s:12.5 clock in
  Net.rpc net ~req_bytes:12_500_000 ~resp_bytes:0;
  (* 12.5 MB at 12.5 MB/s = 1 s *)
  check Alcotest.int64 "1 second" 1_000_000_000L (Simclock.now clock)

let test_net_stats () =
  let clock = Simclock.create () in
  let net = Net.create clock in
  Net.rpc net ~req_bytes:100 ~resp_bytes:200;
  Net.oneway net ~bytes:50;
  let s = Net.stats net in
  check Alcotest.int "rpcs" 1 s.Net.rpcs;
  check Alcotest.int "sent" 150 s.Net.bytes_sent;
  check Alcotest.int "received" 200 s.Net.bytes_received;
  Net.reset_stats net;
  check Alcotest.int "reset" 0 (Net.stats net).Net.rpcs

let () =
  Alcotest.run "s4_disk"
    [
      ( "geometry",
        [
          Alcotest.test_case "presets" `Quick test_geometry_presets;
          Alcotest.test_case "seek model" `Quick test_seek_model;
          Alcotest.test_case "transfer time" `Quick test_transfer_time;
        ] );
      ( "timing",
        [
          Alcotest.test_case "sequential vs random" `Quick test_sequential_cheaper_than_random;
          Alcotest.test_case "positioning cost" `Quick test_first_access_pays_positioning;
          Alcotest.test_case "stats" `Quick test_stats_accounting;
          Alcotest.test_case "busy time" `Quick test_busy_time_advances_clock;
          Alcotest.test_case "range checks" `Quick test_out_of_range_rejected;
        ] );
      ( "contents",
        [
          Alcotest.test_case "roundtrip" `Quick test_contents_roundtrip;
          Alcotest.test_case "unwritten zeros" `Quick test_unwritten_reads_zero;
          Alcotest.test_case "dataless write clears" `Quick test_dataless_write_clears;
          Alcotest.test_case "peek untimed" `Quick test_peek_untimed;
          Alcotest.test_case "poke untimed" `Quick test_poke_untimed_write;
          Alcotest.test_case "length mismatch" `Quick test_write_data_length_mismatch;
          Alcotest.test_case "partial overwrite" `Quick test_partial_overwrite;
        ] );
      ( "net",
        [
          Alcotest.test_case "rpc latency" `Quick test_net_rpc_cost;
          Alcotest.test_case "bandwidth" `Quick test_net_bandwidth;
          Alcotest.test_case "stats" `Quick test_net_stats;
        ] );
    ]
