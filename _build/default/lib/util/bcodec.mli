(** Little-endian byte codecs for on-disk structures.

    All on-disk integers in this code base are little-endian. A
    [writer] appends into a growable buffer; a [reader] consumes a byte
    string with bounds checking, raising {!Decode_error} on truncation
    or corruption so callers can treat bad sectors uniformly. *)

exception Decode_error of string

(** {1 Raw accessors} *)

val get_u16 : Bytes.t -> int -> int
val set_u16 : Bytes.t -> int -> int -> unit
val get_u32 : Bytes.t -> int -> int
(** 32-bit value returned as a non-negative OCaml int. *)

val set_u32 : Bytes.t -> int -> int -> unit
val get_i64 : Bytes.t -> int -> int64
val set_i64 : Bytes.t -> int -> int64 -> unit

(** {1 Growable writer} *)

type writer

val writer : ?capacity:int -> unit -> writer
val w_u8 : writer -> int -> unit
val w_u16 : writer -> int -> unit
val w_u32 : writer -> int -> unit
val w_i64 : writer -> int64 -> unit
val w_int : writer -> int -> unit
(** Varint (LEB128) encoding of a non-negative int. *)

val w_bytes : writer -> Bytes.t -> unit
(** Length-prefixed (varint) byte string. *)

val w_string : writer -> string -> unit
val w_raw : writer -> Bytes.t -> unit
(** Raw append without a length prefix. *)

val length : writer -> int
val contents : writer -> Bytes.t

(** {1 Reader} *)

type reader

val reader : ?pos:int -> Bytes.t -> reader
val r_u8 : reader -> int
val r_u16 : reader -> int
val r_u32 : reader -> int
val r_i64 : reader -> int64
val r_int : reader -> int
val r_bytes : reader -> Bytes.t
val r_string : reader -> string
val r_raw : reader -> int -> Bytes.t
val remaining : reader -> int
val position : reader -> int
