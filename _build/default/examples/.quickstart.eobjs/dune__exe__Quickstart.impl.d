examples/quickstart.ml: Bytes Format Int64 List Printf S4 S4_disk S4_util String
