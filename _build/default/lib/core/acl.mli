(** Object access-control lists.

    Each object carries a small table of entries granting rights to
    principals (users, optionally scoped to a client machine). Beyond
    the traditional flags, each entry has the paper's {b Recovery}
    flag: whether that principal may read versions of the object from
    the history pool after they have been overwritten or deleted. When
    clear, only the device administrator can see old versions —
    letting users decide, file by file, how sensitive their history
    is. *)

type perm =
  | Read
  | Write
  | Delete
  | Set_attr
  | Set_acl

type entry = {
  user : int;  (** principal; {!any_user} matches everyone *)
  client : int;  (** client machine; {!any_client} matches all *)
  perms : perm list;
  recovery : bool;  (** may resurrect old versions of this object *)
}

type t = entry list
(** Ordered table; entries are addressed by index (GetACLByIndex). *)

val any_user : int
val any_client : int

val owner_entry : user:int -> entry
(** All permissions plus recovery, any client. *)

val public_read : entry
(** Read-only for everyone, no recovery. *)

val default : owner:int -> t
(** Owner entry only. *)

val allows : t -> user:int -> client:int -> perm -> bool
val allows_recovery : t -> user:int -> client:int -> bool

val find_by_user : t -> user:int -> entry option
(** First entry whose [user] field matches exactly (GetACLByUser). *)

val nth : t -> int -> entry option
val set_nth : t -> int -> entry -> t
(** Replace or append ([index >= length] appends). *)

val encode : t -> Bytes.t
val decode : Bytes.t -> t
(** @raise S4_util.Bcodec.Decode_error on corrupt input. Decoding
    [Bytes.empty] yields the empty table. *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
