(** Client-side RPC stub.

    Connects a client machine to a network-attached S4 drive
    (Figure 1a): each call pays the modelled network round trip for its
    request and response sizes, then executes inside the drive's
    security perimeter. For the combined-server configuration
    (Figure 1b), bypass this module and call {!Drive.handle}
    directly. *)

type t

val connect : S4_disk.Net.t -> Drive.t -> t
val net : t -> S4_disk.Net.t
val drive : t -> Drive.t

val call : t -> Rpc.credential -> ?sync:bool -> Rpc.req -> Rpc.resp
(** One RPC: request transfer, drive processing, response transfer. *)

val call_exn : t -> Rpc.credential -> ?sync:bool -> Rpc.req -> Rpc.resp
(** Like {!call} but raises [Failure] on an [R_error] response; for
    tests and examples where errors are unexpected. *)

val submit : t -> Rpc.credential -> ?sync:bool -> Rpc.req array -> Rpc.resp array
(** Batched submission: one network exchange carrying the whole batch
    (each request still pays its transfer size), group-committed by
    the drive ({!Drive.submit}). *)

val backend : t -> Backend.t
(** This client stub as the uniform {!Backend.t} surface. *)

val rpc_count : t -> int
