(** Host-file persistence for simulated disks.

    Lets tools (notably [bin/s4cli]) keep a whole self-securing drive —
    geometry, simulated clock, and sparse sector contents — in an
    ordinary file across process runs, exercising the crash-recovery
    path ({!S4.Drive.attach}) on every load. *)

val save : string -> S4_util.Simclock.t -> S4_disk.Sim_disk.t -> unit

val load : string -> S4_util.Simclock.t * S4_disk.Sim_disk.t
(** @raise Failure if the file is not an S4 image;
    @raise Sys_error on I/O problems. *)
