test/test_core.ml: Alcotest Bytes Gen Int64 List Option QCheck QCheck_alcotest S4 S4_disk S4_seglog S4_store S4_util String
