lib/core/throttle.mli: S4_util
