(** Sharded S4 array: N self-securing drives behind one drive-shaped
    request surface.

    The router exposes exactly {!S4.Drive.handle}'s contract
    (credential + request → response), so clients, the NFS translator
    and every workload generator run over the array unchanged.
    Placement is consistent hashing over oids ({!Ring}); the partition
    (named-object) table lives on a designated {e meta shard} with
    cached [PMount] lookups; administrative commands and audit reads
    fan out to every shard and merge. All member drives share one
    [Simclock] and run their disks in phantom mode: a fan-out costs
    the slowest member's service time, not the sum (parallel devices).

    {b Online rebalancing:} {!add_shard} plans a move for every object
    whose ring owner changed and installs read-forwarding for each;
    {!rebalance_step} then copies one object's {e entire retained
    version chain} (journal history and base state, not just current
    data) to its new home, makes it durable, verifies every in-window
    version answers identically, cuts over, and purges the old copy —
    the detection-window guarantee survives membership change.
    {!attach} repairs placement after a crash: partial copies are
    dropped, duplicate copies deduplicated to one authoritative home,
    interrupted migrations re-queued. *)

type member = Single of S4.Drive.t | Mirrored of S4_multi.Mirror.t

type t

val create : ?vnodes:int -> (int * member) list -> t
(** Assemble an array over freshly formatted members. The first listed
    member is the meta shard (stable across {!attach}!); all drives
    must share one [Simclock]. Installs the array's global oid
    allocator on every member store and puts every disk in phantom
    mode. *)

val attach : ?vnodes:int -> (int * member) list -> t
(** Reassemble after a crash from individually recovered drives
    ([Drive.attach] each first). Repairs placement — deduplicates
    double-held objects (longer history wins, ring owner breaks ties),
    re-queues interrupted migrations with read-forwarding. *)

val handle : t -> S4.Rpc.credential -> ?sync:bool -> S4.Rpc.req -> S4.Rpc.resp
(** Route one request: per-object ops to the holding shard, partition
    ops to the meta shard, [Sync]/[Flush]/[SetWindow]/[ReadAudit]
    fan-out-and-merge. *)

val submit :
  t -> S4.Rpc.credential -> ?sync:bool -> S4.Rpc.req array -> S4.Rpc.resp array
(** Batched {!handle} with group commit: requests execute in arrival
    order through the normal per-request routing (so a batched run is
    bit-identical to an unsynced sequential one), then — when [sync]
    — ONE durability {!barrier} fans out across every member, charged
    as parallel work (slowest member). If the barrier fails,
    successful responses are rewritten to its error. With
    {!set_read_overlap} on, maximal runs of consecutive oid-routed
    reads in a batch are charged as one parallel fan-out instead. *)

val set_read_overlap : t -> bool -> unit
(** Charge batch read runs as concurrent work across the distinct
    shards (and mirror replicas) they land on, instead of summing
    their service times. Responses are unchanged — versions are
    immutable and the reads still execute in order — only the clock
    accounting differs, so the mode is opt-in (default off) to keep
    batched and sequential runs bit-identical, clock included. *)

val read_overlap : t -> bool

val set_domains : t -> int -> unit
(** Set the worker-domain knob. Above 1, {!submit} partitions maximal
    runs of consecutive oid-routed requests — mutations included — by
    holder shard and executes the sub-batches on per-shard OCaml
    domains (at most [min knob shards] workers, spawned lazily; shard
    [id] is pinned to worker [id mod workers], so each shard's drive
    stack stays owned by exactly one domain). The shared clock
    advances by the slowest shard's domain-local time lane, the same
    slowest-member rule {!set_read_overlap} applies to disks.
    Responses are positionally identical to serial execution and a
    given knob value is fully deterministic, but time accounting (and
    thus attribute timestamps) differs from serial; at 1 — the
    default — dispatch is bit-identical to the serial implementation,
    clock included. Tracing forces the serial path. Changing the knob
    tears the old pool down; {!close_domains} does so explicitly. *)

val domains : t -> int
val close_domains : t -> unit
(** Stop and join the worker domains, if any were spawned. The knob is
    unchanged; a later {!submit} rebuilds the pool on demand. *)

val barrier : t -> S4.Rpc.error option
(** One durability barrier on every member ([Drive.barrier] /
    [Mirror.barrier]), charged slowest-member. A member whose barrier
    surfaces [Io_error] marks its shard degraded. *)

val landmark_barrier :
  t -> ((int * int * S4_integrity.Chain.head) list, string) result
(** A consistent array-wide rollback point: quiesce (request routing
    is synchronous, so the array is idle between calls), pin every
    member's chain head into the integrity catalog, fan one durability
    barrier out to all members (sealing each audit chain), and collect
    the sealed [(shard, replica, head)] triples. Every operation
    acknowledged before the call is covered by some returned head and
    none after it is, so the triples form one consistent landmark
    record for {!S4_tools}' [Landmark]/[Recovery] to persist and later
    verify the chains from. [Error] if any member's barrier failed —
    no landmark must be trusted over an unflushed member. *)

val members : t -> (int * int * S4.Drive.t) list
(** Every member drive as [(shard, replica, drive)], mirror
    secondaries included (replica 0 is the primary). Device-side
    administrative access for forensics tools. *)

val store_of : t -> int64 -> S4_store.Obj_store.t
(** The authoritative store currently holding an oid (the mirror's
    live up-to-date replica for a mirrored shard) — device-side access
    for tools that need raw version chains or ACL history. *)

val backend : t -> S4.Backend.t
(** The array as the uniform {!S4.Backend.t} surface. *)

val clock : t -> S4_util.Simclock.t
val shard_ids : t -> int list
val meta_shard : t -> int
val member : t -> int -> member
val shard_of : t -> int64 -> int
(** Current holder of an oid: forwarding entry if mid-migration, ring
    owner otherwise. *)

val ops_handled : t -> int
val all_drives : t -> S4.Drive.t list

(** {1 Online rebalancing} *)

val add_shard : t -> int -> member -> int
(** Add a member to the live array: joins the ring, plans migrations
    for every object the new placement reassigns (each with a
    read-forwarding entry so it keeps being served from its old home),
    and returns how many moves were queued. Call {!rebalance} or
    {!rebalance_step} to actually move data. Calling it again while
    moves are still queued is safe: the old queue is superseded by a
    fresh plan against the new ring (and destinations are recomputed
    from the ring at execution time regardless). *)

val pending_migrations : t -> int

val rebalance_step : t -> ((int64 * int * int) option, string) result
(** Migrate the next queued object. [Ok (Some (oid, src, dst))] moved
    one; [Ok None] means the queue is empty; [Error _] re-queues the
    failed move at the back. The whole chain is copied (off the
    mirror's authoritative replica for a mirrored source), synced,
    verified at every retained timestamp, then cut over and purged
    from the source. A move touching a mirrored shard whose missed-op
    journal is non-empty is refused ([Error]) until [Mirror.resync]
    has drained it: while a replica lags, migrating the object away
    would race the pending repair. *)

val rebalance : t -> int * string list
(** Drain the migration queue (bounded; persistent failures are
    reported, not retried forever). Returns (objects moved, errors). *)

type migration_stats = { objects : int; entries : int; bytes : int }

val migration_stats : t -> migration_stats

(** {1 Degraded-mode reporting} *)

val degraded_shards : t -> int list
(** Shards that surfaced [Io_error] (for a mirrored shard: after
    failover inside the mirror was exhausted). *)

val degraded : t -> bool
val io_errors : t -> int

(** {1 Maintenance} *)

val run_cleaners : t -> unit
(** One cleaner pass per member drive, charged as parallel work. Do
    not use the [Overlapped] cleaner mode under a router — the router
    owns the phantom accounting; overlapped-mode phantom juggling is
    reverted after each pass. *)

val sync_all : t -> unit

val fsck : t -> string list
(** Every member drive's {!S4.Drive.fsck} plus array placement
    invariants (each object held exactly where routing points). *)

val pp_stats : Format.formatter -> t -> unit
