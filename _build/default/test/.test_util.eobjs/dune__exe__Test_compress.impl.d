test/test_compress.ml: Alcotest Bytes Char Gen List Printf QCheck QCheck_alcotest S4_compress S4_util String
