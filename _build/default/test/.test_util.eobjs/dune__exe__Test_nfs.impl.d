test/test_nfs.ml: Alcotest Bytes Format Gen Int64 List Printf QCheck QCheck_alcotest S4 S4_disk S4_nfs S4_util String
