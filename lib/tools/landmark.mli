(** Landmark versioning on top of the history pool (the paper's
    Section 6: "By combining self-securing storage with long-term
    landmark versioning, recovery from users' accidents could be
    enhanced while also maintaining the benefits of intrusion
    survival").

    The history pool guarantees a bounded window; landmarks preserve
    chosen versions {e beyond} it, without weakening the pool's
    security properties: a landmark is a copy-forward of a specific
    version into a fresh, ordinary object (versioned and audited like
    everything else), indexed under a name.

    A {e mark} is the array-scale counterpart: a named, consistent
    rollback point over every member of a {!Target.t} — the shared
    clock instant of one cross-shard durability barrier, together with
    every member's sealed audit-chain head. Rolling back to a mark
    ({!Recovery.restore_tree} at [m_at]) is consistent across shards
    because the barrier quiesced and flushed all of them at once, and
    {!verify_since} proves no member's history was tampered with since
    the mark was taken. *)

type t

type landmark = {
  l_name : string;
  l_source : int64;  (** object the landmark was taken of *)
  l_taken_at : int64;  (** the version instant preserved *)
  l_object : int64;  (** the archive object holding the copy *)
  l_bytes : int;
}

type mark = {
  m_name : string;
  m_at : int64;  (** shared-clock instant of the cross-shard barrier *)
  m_heads : (int * int * S4_integrity.Chain.head) list;
      (** sealed chain head per (shard, replica) at the barrier *)
}

val create : ?cred:S4.Rpc.credential -> S4.Drive.t -> t
(** Uses (or creates) the drive partition ["landmarks"] as the archive
    index. Default credential: admin.

    @raise Failure with a ["Landmark.create: ..."] diagnostic if the
    partition cannot be mounted or created, or if the partition table
    names a dead index object — no handle with an unusable index is
    ever returned. *)

val of_target : ?cred:S4.Rpc.credential -> Target.t -> t
(** Same, over a drive or a sharded array (the index then lives on the
    array's meta shard, where the partition table is).
    @raise Failure as {!create}. *)

val take : t -> name:string -> at:int64 -> int64 -> (landmark, string) result
(** [take t ~name ~at oid] preserves [oid]'s version at time [at]
    (contents and attributes) under [name]. Fails if the name is
    already used or the version is no longer in the pool. *)

val list : t -> landmark list
(** All landmarks, newest first. *)

val find : t -> string -> landmark option

val contents : t -> string -> (Bytes.t, string) result
(** Read a landmark's preserved contents (a normal current read — no
    history access needed, which is the point). *)

val restore_to : t -> string -> int64 -> (int, string) result
(** Copy a landmark's contents forward onto a (live) object; returns
    bytes written. *)

(** {1 Cross-shard marks} *)

val mark : t -> name:string -> (mark, string) result
(** Take a named, consistent rollback point: one
    {!Target.landmark_barrier} over every member (quiesce, pin heads
    into the integrity catalog, seal every chain), then persist the
    barrier instant and the sealed heads in the landmark index. Fails
    if the name is taken or any member's barrier failed. *)

val marks : t -> mark list
(** All marks, newest first. *)

val find_mark : t -> string -> mark option

val verify_since : t -> mark -> (unit, string list) result
(** Prove every member's audit chain is an untampered extension of the
    head recorded in the mark ([Audit.verify ~from] per member):
    the precondition for trusting a rollback to [m_at]. Errors name
    the offending shard/replica. *)

val pp_mark : Format.formatter -> mark -> unit
