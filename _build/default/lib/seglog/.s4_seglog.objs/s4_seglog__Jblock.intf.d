lib/seglog/jblock.mli: Bytes
