lib/nfs/translator.mli: Bytes Nfs_types S4
