(** Cross-version differencing (xdelta-style).

    Encodes a [target] byte string as a sequence of [Copy] ranges from
    a [source] (the previous version) and [Insert] literals, using a
    rolling hash over fixed-size source blocks with greedy forward and
    backward extension. This is the technology Section 5.2 of the paper
    evaluates (via Xdelta) for shrinking the history pool, and what the
    cleaner's differencing mode uses.

    The encoded delta is self-describing and includes the expected
    source and target lengths plus a CRC of the target for apply-time
    verification. *)

type instruction =
  | Copy of { src_off : int; len : int }
  | Insert of Bytes.t

val encode : source:Bytes.t -> target:Bytes.t -> Bytes.t
(** Delta that rebuilds [target] from [source]. *)

val apply : source:Bytes.t -> delta:Bytes.t -> Bytes.t
(** @raise S4_util.Bcodec.Decode_error on malformed or mismatched
    input (including CRC failure). *)

val instructions : delta:Bytes.t -> instruction list
(** Decoded instruction stream, for inspection and tests. *)

val saved : source:Bytes.t -> target:Bytes.t -> float
(** Fraction of [target] bytes avoided: [1 - |delta| / |target|]
    (may be negative for adversarial inputs). *)
