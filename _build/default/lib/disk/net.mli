(** Network cost model for RPC traffic.

    Models the paper's setup: a 100 Mb/s switched Ethernet between one
    client and one server. Each RPC pays fixed per-message latency both
    ways plus serialisation time for the request and response bodies.
    Like the disk, it advances the shared simulated clock. *)

type t

type stats = {
  mutable rpcs : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable wire_ns : int64;
}

val create :
  ?latency_us:float ->
  ?bandwidth_mb_s:float ->
  S4_util.Simclock.t ->
  t
(** Defaults: 120 us one-way latency (switched 100 Mb Ethernet + stack),
    12.5 MB/s line rate. *)

val rpc : t -> req_bytes:int -> resp_bytes:int -> unit
(** Account one round trip. *)

val oneway : t -> bytes:int -> unit
(** Account a single unacknowledged message (e.g. an async callback). *)

val stats : t -> stats
val reset_stats : t -> unit
val pp_stats : Format.formatter -> t -> unit
