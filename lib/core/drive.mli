(** The S4 drive: a self-securing storage device.

    This is the security perimeter of the paper. The drive is a
    single-purpose device exporting only the Table-1 RPC interface; it
    verifies every command against the caller's credential and the
    target object's ACL, audits every request (including rejected
    ones), versions every modification, and guarantees that versions
    survive for the detection window regardless of what commands the —
    possibly compromised — host sends. Administrative commands need the
    separate admin credential, modelling a physical switch or
    well-protected key.

    The drive owns the object store, the cleaner, the audit log, the
    partition (named-object) table — itself an ordinary versioned
    object, per the paper — and the DoS throttle. *)

type t

type config = {
  store : S4_store.Obj_store.config;
  window : int64;  (** guaranteed detection window, ns *)
  audit_enabled : bool;
  integrity : bool;
      (** seal the audit hash chain at every durability barrier and
          snapshot the sealed head into the disk header (chaining
          itself always runs; this gates only the persisted seals) *)
  throttle : Throttle.config option;  (** [None] disables throttling *)
  history_reserve : float;
      (** fraction of capacity budgeted for the history pool, used to
          compute pool pressure for the throttle *)
  cleaner_live_threshold : float;
  cleaner_max_segments : int;
  cpu_us_per_rpc : float;
      (** drive firmware processing cost per request (600 MHz-era
          user-level server) *)
  io_retry_limit : int;
      (** transient-fault re-issues per disk I/O (see
          {!S4_seglog.Log.set_io_retry}) *)
  io_retry_backoff_ms : float;  (** initial retry backoff, doubling *)
}

val default_config : config

val format : ?config:config -> S4_disk.Sim_disk.t -> t
(** Initialise a fresh self-securing drive on the disk: lays out the
    segment log, creates the partition-table object and writes the
    superblock. *)

val attach : ?config:config -> S4_disk.Sim_disk.t -> t
(** Crash recovery: rebuild the drive from on-disk state (segment
    summaries, journal blocks, checkpoints, audit blocks,
    superblock). Unsynced pre-crash state is lost. *)

val submit : t -> Rpc.credential -> ?sync:bool -> Rpc.req array -> Rpc.resp array
(** Process a batch of RPCs inside the perimeter. Each request gets
    full per-request treatment — throttle check, permission check,
    execution, audit record, trace span — in array order; response
    [i] answers request [i]. [?sync] is the drive's op+sync batching
    generalised to group commit: ONE log flush + sync barrier after
    the last request makes the whole batch (and its audit records)
    durable at once. An empty batch with [sync:true] is a pure
    barrier. If the end-of-batch barrier fails, every response that
    claimed success is rewritten to the barrier's [Io_error]. Media
    faults surface as [R_error Io_error] after the configured retries;
    the only exception that escapes is {!S4_disk.Fault.Crashed} — a
    crashed device has no valid in-memory state, the owner must
    {!attach} a fresh drive. *)

val handle : t -> Rpc.credential -> ?sync:bool -> Rpc.req -> Rpc.resp
(** [submit] of a one-element batch (compatibility shim). *)

val barrier : t -> Rpc.error option
(** The durability barrier on its own: flush buffered audit records,
    then sync the store. [None] on success; [Some (Io_error _)] if the
    media failed while persisting (the drive keeps serving, degraded).
    Exposed so multi-drive layers (mirror, shard router) can end their
    own batches with one barrier per member. *)

val capacity : t -> int * int
(** (total bytes, free bytes) of the backing log. *)

val backend : t -> Backend.t
(** This drive as the uniform {!Backend.t} surface. *)

val clock : t -> S4_util.Simclock.t
val store : t -> S4_store.Obj_store.t

val ptable_oid : t -> int64
(** The oid of this drive's partition-table object (drive-private
    metadata: a shard router must exclude it from migration). *)

val named_oid : t -> string -> int64 option
(** Look a name up in the partition table without the RPC surface: no
    audit record, no cpu charge (array-internal bootstrap). *)

val register_name : t -> string -> int64 -> unit
(** Silent counterpart of [P_create], for drive/array-private objects.
    Raises [Invalid_argument] if the name exists. *)

val log : t -> S4_seglog.Log.t
val audit : t -> Audit.t
val cleaner : t -> S4_store.Cleaner.t
val throttle : t -> Throttle.t option

val window : t -> int64
val detection_cutoff : t -> int64
(** Oldest time guaranteed recoverable right now ([now - window]). *)

val run_cleaner : t -> S4_store.Cleaner.report
(** One background-cleaner pass (expire + reclaim + compact). Keeps
    the audit index consistent across relocations and refreshes pool
    pressure. *)

val pool_pressure : t -> float
(** History-pool pressure in 0..1 (1 = reserve exhausted). *)

val fsck : t -> string list
(** Full cross-layer invariant check; empty = healthy. *)

val integrity_enabled : t -> bool

val ops_handled : t -> int

(** {1 Degraded-mode reporting}

    A drive that has seen permanent media faults keeps serving what it
    can, but reports itself degraded so an operator (or the mirror
    layer) can schedule replacement. *)

val io_errors : t -> int
(** RPCs that failed on a permanent (or retry-exhausted) media fault. *)

val audit_drops : t -> int
(** Audit records lost because the audit trail could not be persisted. *)

val degraded : t -> bool
val pp_stats : Format.formatter -> t -> unit
